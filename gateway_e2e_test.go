package repro

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/gateway/ring"
	"repro/internal/resilience"
	"repro/internal/scenario"
)

// TestGatewayChaosEndToEnd is the replicated-serving acceptance gate: three
// anomalyd replicas behind the anomalygw gateway, one killed mid-replay.
// The drill must keep the client-visible failure rate bounded with a clean
// taxonomy, re-home every affected trace to exactly one surviving replica
// with fleet-merged monitor verdicts identical to a single node's, deliver
// each replica's alerts in input order through the fan-in stream, recover
// its tail latency once the ejection settles, and leak zero goroutines after
// shutdown.
func TestGatewayChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	det := e2eDetector(t)
	before := runtime.NumGoroutine()

	// Three replicas, each its own registry and HTTP server over the shared
	// detector (batch scoring is read-only; trace state is per-registry —
	// exactly what the ring protects).
	const n = 3
	regs := make([]*core.Registry, n)
	srvs := make([]*core.Server, n)
	https := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		regs[i] = core.NewRegistry()
		if err := regs[i].Add("genome-sft", det, core.BatchConfig{MaxBatch: 64, Workers: 2}); err != nil {
			t.Fatal(err)
		}
		srvs[i] = core.NewServerRegistry(regs[i])
		srvs[i].SetInstance(fmt.Sprintf("r%d", i))
		https[i] = httptest.NewServer(srvs[i])
		urls[i] = https[i].URL
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g, err := gateway.New(ctx, gateway.Config{
		Replicas:       urls,
		HealthInterval: 25 * time.Millisecond, // ejection inside the compressed replay
	})
	if err != nil {
		t.Fatal(err)
	}
	gs := httptest.NewServer(g)

	d, err := scenario.Lookup("steady")
	if err != nil {
		t.Fatal(err)
	}
	// ~150 lines/s for ~4s of wall time: enough runway for the kill, the
	// ejection, and a post window, while staying under fleet capacity on a
	// contended CI box — over-driving trips the replicas' admission control
	// (saturated /readyz -> ejection -> boundary shed) and turns the clean
	// baseline into a shed measurement. The race detector slows inference
	// ~10x, so the race build drives an order of magnitude gentler.
	events, rate := 600, 150.0
	if raceEnabled {
		events, rate = 250, 25.0
	}
	s := d.Generate(scenario.Config{Workflow: "1000-genome", Events: events, Seed: 42, Rate: rate})
	const speed = 1.0
	rcfg := scenario.ReplayConfig{BaseURL: gs.URL, Model: "genome-sft", Speed: speed, Timeout: 30 * time.Second}

	// Plain builds must serve the clean windows perfectly; under the race
	// detector's slowdown, transient queue saturation can blip a replica's
	// /readyz and shed a handful of requests at the boundary, so the race
	// build gets a 2% budget instead of zero.
	cleanBudget := 0
	if raceEnabled {
		cleanBudget = events / 50
	}

	// Phase 1 — clean fleet baseline.
	clean, err := scenario.Replay(ctx, s, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Errors > cleanBudget {
		t.Fatalf("clean fleet replay failed %d/%d requests (%+v)", clean.Errors, clean.Requests, clean.Failures)
	}

	// Phase 2 — the same stream with one replica killed mid-replay. The kill
	// lands a third of the way in, so the run records a pre window, the
	// outage + ejection, and a post window on the surviving fleet.
	victim := 2
	wall := time.Duration(float64(s.Duration()) / speed)
	killT := time.AfterFunc(wall/3, func() {
		https[victim].CloseClientConnections()
		https[victim].Close()
	})
	defer killT.Stop()
	ccfg := rcfg
	ccfg.Retry = &resilience.Client{Policy: resilience.DefaultPolicy(42), Budget: resilience.NewBudget(32, 0.1)}
	chaos, err := scenario.Replay(ctx, s, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("kill drill: errors %d/%d %+v; retries %d; clean p99 %.1fms chaos p99 %.1fms",
		chaos.Errors, chaos.Requests, chaos.Failures, ccfg.Retry.RetriesSent.Load(),
		clean.ClientP99Ms, chaos.ClientP99Ms)

	// Bounded, well-typed failure: retries + rotation absorb most of the
	// outage; what leaks through must be part of the taxonomy, not hangs.
	if rate := float64(chaos.Errors) / float64(chaos.Requests); rate > 0.25 {
		t.Errorf("failure rate %.3f exceeds 0.25 with one of three replicas killed (%+v)", rate, chaos.Failures)
	}
	if chaos.Failures.Total() != chaos.Errors {
		t.Errorf("taxonomy total %d != errors %d", chaos.Failures.Total(), chaos.Errors)
	}

	// The health checker must have ejected the victim (and only it).
	waitUntil(t, 2*time.Second, func() bool {
		var rr gateway.ReadyResponse
		if err := getJSON(gs.URL+"/readyz", &rr); err != nil {
			return false
		}
		healthy := 0
		victimHealthy := false
		for _, st := range rr.Replicas {
			if st.Healthy {
				healthy++
				if st.URL == urls[victim] {
					victimHealthy = true
				}
			}
		}
		return rr.Ready && healthy == n-1 && !victimHealthy
	})

	// Phase 3 — post-window recovery: the surviving fleet must serve the
	// stream cleanly again, with tail latency back at the clean baseline.
	post, err := scenario.Replay(ctx, s, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if post.Errors > cleanBudget {
		t.Fatalf("post-ejection replay failed %d/%d requests (%+v)", post.Errors, post.Requests, post.Failures)
	}
	if !raceEnabled {
		bound := 1.5*clean.ClientP99Ms + 100
		if post.ClientP99Ms > bound {
			t.Errorf("post-ejection p99 %.1fms did not recover to %.1fms (clean p99 %.1fms)",
				post.ClientP99Ms, bound, clean.ClientP99Ms)
		}
	}

	// Phase 4 — trace re-routing correctness. Subscribe to the fan-in alert
	// stream, then demux the full monitor stream through the gateway with the
	// victim dead: no line may be lost, every line must land on a survivor,
	// traces owned by the victim must re-home to their next ring preference,
	// and the fleet-merged report must match a fresh single node bit for bit.
	alerts := subscribeAlerts(t, gs.URL)
	// SSE has no replay: wait until the gateway's per-replica alert readers
	// are attached to both survivors before producing alerts, or the head of
	// the stream is silently missed.
	waitUntil(t, 2*time.Second, func() bool {
		for i := 0; i < n; i++ {
			if i == victim {
				continue
			}
			var mr core.ModelsResponse
			if err := getJSON(urls[i]+"/v1/models", &mr); err != nil || mr.SSE.Subscribers < 1 {
				return false
			}
		}
		return true
	})

	var input strings.Builder
	traceLines := map[int]int{}
	for _, ev := range s.Events {
		input.WriteString(ev.Line)
		input.WriteByte('\n')
		traceLines[ev.Job.TraceID]++
	}
	resp, err := http.Post(gs.URL+"/v1/monitor?model=genome-sft&strict=1", "text/plain", strings.NewReader(input.String()))
	if err != nil {
		t.Fatal(err)
	}
	var agg gateway.MonitorAggregate
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || agg.Error != "" {
		t.Fatalf("gateway monitor: status %d, error %q", resp.StatusCode, agg.Error)
	}
	if agg.Gateway.Lost != 0 {
		t.Fatalf("lost %d monitor lines with two healthy survivors", agg.Gateway.Lost)
	}
	if agg.Processed != len(s.Events) {
		t.Fatalf("fleet processed %d of %d lines", agg.Processed, len(s.Events))
	}
	if lines := agg.Gateway.Lines[urls[victim]]; lines != 0 {
		t.Errorf("%d lines routed to the dead victim", lines)
	}

	// Exactly-one-survivor accounting: with a fresh tracker per registry and
	// no evictions at this scale, distinct traces across survivors must sum
	// to the stream's distinct traces — double-counting (a split trace) or
	// undercounting (a lost trace) both break the equality.
	rg := ring.New(urls, 0)
	survivorTraces := 0
	for i := 0; i < n; i++ {
		infos := regs[i].Info()
		if len(infos) != 1 {
			t.Fatalf("replica %d registry has %d models", i, len(infos))
		}
		active := infos[0].ActiveTraces
		if i == victim {
			if active != 0 {
				t.Errorf("victim tracker saw %d traces after death", active)
			}
			continue
		}
		survivorTraces += active
	}
	if survivorTraces != len(traceLines) {
		t.Errorf("survivors hold %d distinct traces, stream has %d (traces split or lost)",
			survivorTraces, len(traceLines))
	}
	rerouteWant := 0
	for id := range traceLines {
		if rg.Owner(ring.TraceKey(id)) == urls[victim] {
			rerouteWant++
		}
	}
	if rerouteWant == 0 {
		t.Fatal("drill vacuous: the victim owned no traces")
	}
	if agg.Gateway.Rerouted == 0 {
		t.Errorf("victim owned %d traces but the demux re-routed no lines", rerouteWant)
	}

	// Verdict correctness: the fleet-merged report must match a fresh single
	// node ingesting the identical stream — consistent-hash demux must not
	// change what gets flagged.
	refReg := core.NewRegistry()
	if err := refReg.Add("genome-sft", det, core.BatchConfig{MaxBatch: 64, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	refSrv := core.NewServerRegistry(refReg)
	ref, err := refSrv.MonitorIngestModel(ctx, "genome-sft", strings.NewReader(input.String()), true)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Alerts != ref.Alerts || agg.FlaggedTraces != ref.FlaggedTraces ||
		agg.ActiveTraces != ref.ActiveTraces || agg.Malformed != ref.Malformed {
		t.Errorf("fleet-merged report diverges from single node:\n fleet  %+v\n single %+v",
			agg.MonitorReport, ref)
	}
	refSrv.Close()

	// Phase 5 — in-order alerts through the fan-in: events interleave across
	// replicas, but each trace lives on one replica, so per-trace alert order
	// must follow input order.
	perTrace := map[int][]string{}
	for _, ev := range s.Events {
		perTrace[ev.Job.TraceID] = append(perTrace[ev.Job.TraceID], ev.Line)
	}
	got := collectAlerts(t, alerts, agg.Alerts, 20*time.Second)
	pos := map[int]int{}
	for i, a := range got {
		lines := perTrace[a.Trace]
		found := false
		for pos[a.Trace] < len(lines) {
			if lines[pos[a.Trace]] == a.Line {
				found = true
				pos[a.Trace]++
				break
			}
			pos[a.Trace]++
		}
		if !found {
			t.Fatalf("alert %d (trace %d, %q) arrived out of that trace's input order", i, a.Trace, a.Line)
		}
	}
	if len(got) != agg.Alerts {
		t.Errorf("fan-in delivered %d alerts, report counted %d", len(got), agg.Alerts)
	}

	// Wind down everything and verify nothing leaked: gateway health loops,
	// alert fan-in readers, replica worker pools, SSE buses.
	alerts.close()
	gs.Close()
	g.Close()
	for i := 0; i < n; i++ {
		if i != victim {
			https[i].Close()
		}
		srvs[i].Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+5 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after shutdown\n%s",
				before, now, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// alertSub is a live /v1/alerts fan-in subscription feeding parsed alert
// events into a channel.
type alertSub struct {
	ch    chan core.AlertEvent
	close func()
}

func subscribeAlerts(t *testing.T, base string) *alertSub {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/alerts", nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	sub := &alertSub{ch: make(chan core.AlertEvent, 4096)}
	sub.close = func() {
		cancel()
		resp.Body.Close()
	}
	go func() {
		defer close(sub.ch)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		event, data := "", ""
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "" && event != "":
				if event == "alert" {
					var ev core.AlertEvent
					if json.Unmarshal([]byte(data), &ev) == nil {
						sub.ch <- ev
					}
				}
				event, data = "", ""
			}
		}
	}()
	return sub
}

// collectAlerts drains want alert events from the subscription (or times
// out, returning what arrived).
func collectAlerts(t *testing.T, sub *alertSub, want int, timeout time.Duration) []core.AlertEvent {
	t.Helper()
	var out []core.AlertEvent
	deadline := time.After(timeout)
	for len(out) < want {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				return out
			}
			out = append(out, ev)
		case <-deadline:
			return out
		}
	}
	return out
}

func getJSON(url string, v interface{}) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}
