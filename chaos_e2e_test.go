package repro

import (
	"context"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/flowbench"
	"repro/internal/resilience"
	"repro/internal/scenario"
)

// TestChaosReplayEndToEnd is the overload acceptance gate: the trained
// detector serves behind admission control and a brownout fallback, a clean
// replay establishes the latency baseline, then the identical stream is
// replayed through a deterministic fault campaign with client retries on.
// The run must keep the failure rate bounded, recover its p99 after the
// fault window closes, deliver alerts in input order while faults fire, and
// leak zero goroutines once the server winds down.
func TestChaosReplayEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	det := e2eDetector(t)
	ds := flowbench.Generate(flowbench.Genome, 42)
	fb, err := core.FitFallback("pca", ds.Train, 42)
	if err != nil {
		t.Fatal(err)
	}

	d, err := scenario.Lookup("steady")
	if err != nil {
		t.Fatal(err)
	}
	s := d.Generate(scenario.Config{Workflow: flowbench.Genome, Events: 600, Seed: 42, Rate: 400})
	const speed = 1.0
	plan := scenario.ChaosPlan(s, speed, 42)
	inj := faults.New(plan)

	before := runtime.NumGoroutine()

	reg := core.NewRegistry()
	cfg := core.BatchConfig{MaxBatch: 64, Workers: 2, ShedQueueDepth: 64, BrownoutDepth: 48}
	if err := reg.Add("genome-sft", det, cfg); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetFallback("genome-sft", fb); err != nil {
		t.Fatal(err)
	}
	srv := core.NewServerRegistry(reg)
	hs := httptest.NewServer(inj.Wrap(srv)) // disarmed: clean replays pass through

	ctx := context.Background()
	rcfg := scenario.ReplayConfig{BaseURL: hs.URL, Model: "genome-sft", Speed: speed, Timeout: 30 * time.Second}
	clean, err := scenario.Replay(ctx, s, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Errors != 0 {
		t.Fatalf("clean replay failed %d/%d requests (%+v)", clean.Errors, clean.Requests, clean.Failures)
	}

	inj.Arm()
	ccfg := rcfg
	ccfg.FaultWindow = plan.Window
	ccfg.Retry = &resilience.Client{Policy: resilience.DefaultPolicy(42)}
	chaos, err := scenario.Replay(ctx, s, ccfg)
	inj.Disarm()
	if err != nil {
		t.Fatal(err)
	}
	if inj.Total() == 0 {
		t.Fatal("fault campaign never fired")
	}
	t.Logf("faults %d %v; errors %d/%d %+v; retries %d; server shed %d expired %d degraded %d",
		inj.Total(), inj.Counts(), chaos.Errors, chaos.Requests, chaos.Failures,
		ccfg.Retry.RetriesSent.Load(), chaos.Server.Shed, chaos.Server.Expired, chaos.Server.Degraded)

	// Bounded failure rate: retries absorb most injected faults, so at most a
	// quarter of requests may fail even though ~1 in 4 in-window requests was
	// perturbed.
	if rate := float64(chaos.Errors) / float64(chaos.Requests); rate > 0.25 {
		t.Errorf("failure rate %.3f exceeds 0.25 (failures %+v)", rate, chaos.Failures)
	}
	if chaos.Failures.Total() != chaos.Errors {
		t.Errorf("taxonomy total %d != errors %d", chaos.Failures.Total(), chaos.Errors)
	}
	if chaos.Phases == nil {
		t.Fatal("chaos replay recorded no phase latencies")
	}
	t.Logf("p99: clean %.1fms; chaos pre %.1f / during %.1f / post %.1fms; drain recovery %.0fms",
		clean.ClientP99Ms, chaos.Phases.PreP99Ms, chaos.Phases.DuringP99Ms, chaos.Phases.PostP99Ms,
		chaos.Phases.RecoveryMs)

	// Recovery, asserted drain-aware: RecoveryMs marks when completions got
	// back under the pre-fault bound, so a queue backlog outlasting the
	// schedule reads as "not observed" (−1) rather than passing on a
	// post-window percentile the backlog never touched. The steady scenario
	// at this load must both observe recovery and complete it before the
	// clean tail ends. Meaningless under the race detector's ~10x slowdown.
	if !raceEnabled {
		if chaos.Phases.RecoveryMs < 0 {
			t.Errorf("recovery not observed within the run (post p99 %.1fms, pre p99 %.1fms)",
				chaos.Phases.PostP99Ms, chaos.Phases.PreP99Ms)
		}
		// The clean tail is the final third of the schedule; recovery must
		// land inside it, not merely before the process exits.
		tailMs := float64((plan.Window.End - plan.Window.Start) / time.Millisecond)
		if chaos.Phases.RecoveryMs > tailMs {
			t.Errorf("drain recovery took %.0fms, longer than the %.0fms clean tail",
				chaos.Phases.RecoveryMs, tailMs)
		}
		bound := 1.2*clean.ClientP99Ms + 50
		if chaos.Phases.PostP99Ms > bound {
			t.Errorf("post-fault p99 %.1fms did not recover to %.1fms (clean p99 %.1fms)",
				chaos.Phases.PostP99Ms, bound, clean.ClientP99Ms)
		}
	}

	// In-order alert delivery while the campaign is armed: the monitor path
	// shares the engine with the faulted detect path, and its alerts must
	// still arrive as a subsequence of the input.
	inj.Arm()
	var alertLines []string
	sink := core.SinkFuncs{OnAlert: func(a core.Alert) { alertLines = append(alertLines, a.Line) }}
	var input strings.Builder
	for _, ev := range s.Events {
		input.WriteString(ev.Line)
		input.WriteByte('\n')
	}
	report, err := srv.MonitorIngestModel(ctx, "genome-sft", strings.NewReader(input.String()), true, sink)
	inj.Disarm()
	if err != nil {
		t.Fatal(err)
	}
	if report.Processed != len(s.Events) || len(alertLines) == 0 {
		t.Fatalf("monitor under chaos: processed %d, alerts %d", report.Processed, len(alertLines))
	}
	pos := 0
	for i, line := range alertLines {
		found := false
		for pos < len(s.Events) {
			if s.Events[pos].Line == line {
				found = true
				pos++
				break
			}
			pos++
		}
		if !found {
			t.Fatalf("alert %d (%q) arrived out of input order", i, line)
		}
	}

	// Wind down and verify nothing leaked: the worker pools, SSE bus, and
	// every in-flight request goroutine must exit.
	hs.Close()
	srv.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+5 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after shutdown\n%s",
				before, now, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
