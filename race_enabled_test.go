//go:build race

package repro

// raceEnabled reports that this binary runs under the race detector, whose
// ~10x slowdown makes wall-clock latency bounds meaningless.
const raceEnabled = true
