package repro

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/models"
	"repro/internal/pretrain"
	"repro/internal/sft"
	"repro/internal/tokenizer"
)

// Integration tests exercising cross-module flows end to end.

// TestDatasetExportImportRoundTrip covers the cmd/flowgen data path: a full
// split serialized to CSV and raw logs parses back losslessly (metadata and
// labels exactly; feature values at serialization precision).
func TestDatasetExportImportRoundTrip(t *testing.T) {
	ds := flowbench.Generate(flowbench.Genome, 3).Subsample(200, 1, 1, 4)
	var csv bytes.Buffer
	csv.WriteString(logparse.CSVHeader())
	csv.WriteByte('\n')
	for _, j := range ds.Train {
		csv.WriteString(logparse.CSVRow(j))
		csv.WriteByte('\n')
	}
	jobs, err := logparse.ReadCSV(&csv)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(ds.Train) {
		t.Fatalf("round trip lost jobs: %d vs %d", len(jobs), len(ds.Train))
	}
	anomIn, anomOut := 0, 0
	for i := range jobs {
		anomIn += ds.Train[i].Label
		anomOut += jobs[i].Label
		line := logparse.LogLine(ds.Train[i])
		back, err := logparse.ParseLogLine(line)
		if err != nil {
			t.Fatal(err)
		}
		if back.Label != ds.Train[i].Label || back.Anomaly != ds.Train[i].Anomaly {
			t.Fatal("log line round trip mismatch")
		}
	}
	if anomIn != anomOut {
		t.Fatal("anomaly counts changed across CSV round trip")
	}
}

// TestCheckpointAcrossProcessBoundary fine-tunes a model, saves it to disk,
// loads it into a freshly built model of the same architecture, and checks
// predictions survive — the cmd/sfttrain -save path.
func TestCheckpointAcrossProcessBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	ds := flowbench.Generate(flowbench.Genome, 5).Subsample(200, 1, 50, 6)
	corpus := pretrain.BuildCorpus(pretrain.CorpusOptions{SentencesPerWorkflow: 40, ICLDocs: 10, ExamplesPerDoc: 3, Seed: 7})
	corpus = append(corpus, logparse.Corpus(ds.Train)...)
	tok := tokenizer.Build(corpus)
	m := models.MustGet("distilbert-base-uncased").Build(tok.VocabSize())
	clf := sft.NewClassifier(m, tok)
	cfg := sft.DefaultTrainConfig()
	cfg.Epochs = 1
	sft.Train(clf, sft.JobExamples(ds.Train), nil, cfg)

	path := filepath.Join(t.TempDir(), "ckpt.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// A new "process": fresh model from the same registry spec + vocab.
	m2 := models.MustGet("distilbert-base-uncased").Build(tok.VocabSize())
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Load(rf); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	clf2 := sft.NewClassifier(m2, tok)
	for _, j := range ds.Test[:20] {
		p1, _ := clf.PredictJob(j)
		p2, _ := clf2.PredictJob(j)
		if p1 != p2 {
			t.Fatal("loaded checkpoint predicts differently")
		}
	}
}

// TestPipelineDetectorAgreement checks that the core facade and the direct
// sft path classify identically given identical training.
func TestPipelineDetectorAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	det, _, err := core.Train(core.Options{
		Approach: core.SFT, Model: "distilbert-base-uncased",
		TrainSize: 200, PretrainSteps: 60, Epochs: 1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := flowbench.Generate(flowbench.Genome, 11).Subsample(10, 10, 50, 12)
	// The detector must be deterministic across repeated calls.
	for _, j := range ds.Test[:10] {
		a := det.DetectJob(j)
		b := det.DetectJob(j)
		if a != b {
			t.Fatal("detector not deterministic")
		}
	}
}

// TestCommandsBuild verifies every cmd binary compiles (go build ./... runs
// in CI, but this keeps the guarantee inside the test suite).
func TestCommandsBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles binaries")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	out, err := exec.Command("go", "build", "./cmd/...", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("go build failed: %v\n%s", err, out)
	}
}
