package repro

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/flowbench"
	"repro/internal/scenario"
)

// e2eArtifactPath shares the core package's cached test artifact: the training
// recipe below is identical to internal/core's fixture, so a CI cache hit
// there is a cache hit here.
const e2eArtifactPath = "internal/core/testdata/cache/sft-distilbert-tiny.artifact"

func e2eDetector(t *testing.T) core.Detector {
	t.Helper()
	useCache := os.Getenv("REPRO_DETECTOR_CACHE") != ""
	if useCache {
		if det, err := core.LoadDetectorFile(e2eArtifactPath); err == nil {
			return det
		}
	}
	det, report, err := core.Train(core.Options{
		Approach: core.SFT, Model: "distilbert-base-uncased",
		TrainSize: 400, PretrainSteps: 120, Epochs: 2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Test.Accuracy() < 0.6 {
		t.Fatalf("e2e detector too weak: %s", report.Test)
	}
	if useCache {
		if err := os.MkdirAll(filepath.Dir(e2eArtifactPath), 0o755); err == nil {
			_ = core.SaveDetectorFile(e2eArtifactPath, det)
		}
	}
	return det
}

// TestLoadLabEndToEnd is the full production loop: train → save artifact →
// load artifact → serve over HTTP → replay the baseline scenario with the
// load lab → compare detection quality against a seed baseline scored on the
// same stream. This is what `anomalyd -train-out` + `anomalyd -load` +
// `loadlab -addr` compose to, in one process.
func TestLoadLabEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}

	// Train (or load the CI-cached fixture), then force the artifact
	// boundary: what serves below is a detector deserialized from disk.
	art := filepath.Join(t.TempDir(), "detector.artifact")
	if err := core.SaveDetectorFile(art, e2eDetector(t)); err != nil {
		t.Fatal(err)
	}
	det, err := core.LoadDetectorFile(art)
	if err != nil {
		t.Fatal(err)
	}

	reg := core.NewRegistry()
	if err := reg.Add("genome-sft", det, core.BatchConfig{MaxBatch: 64, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	srv := core.NewServerRegistry(reg)
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	// The baseline scenario, compressed hard: replay is compute-bound here,
	// not schedule-bound.
	d, err := scenario.Lookup("steady")
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenario.Config{Workflow: flowbench.Genome, Events: 800, Seed: 42, Rate: 400}
	s := d.Generate(cfg)

	// The generous per-request timeout matters under -race: the whole
	// schedule fires almost at once, so tail requests legitimately sit in
	// queue for minutes behind race-slowed forward passes. Errors==0 below
	// asserts delivery, not latency.
	res, err := scenario.Replay(context.Background(), s, scenario.ReplayConfig{
		BaseURL: hs.URL, Model: "genome-sft", Speed: 500, Timeout: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d failed requests", res.Errors)
	}
	if res.Server.Sentences != int64(res.Events) {
		t.Errorf("server processed %d sentences for %d events", res.Server.Sentences, res.Events)
	}

	// Seed baseline on the same stream, fitted on the same workflow's train
	// split — the cheap comparison row of the lab report.
	ds := flowbench.Generate(cfg.Workflow, cfg.Seed)
	pca, err := baselines.FitScorer("pca", ds.Train, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]flowbench.Job, len(s.Events))
	for i, ev := range s.Events {
		jobs[i] = ev.Job
	}
	scores := pca.Score(jobs)
	cut := baselines.CalibrateThreshold(pca.Score(ds.Train), baselines.AnomalyRate(ds.Train))
	pcaQ := scenario.EvaluateScores(s, scores, baselines.Threshold(scores, cut), core.TracePolicy{})

	t.Logf("served AUC %.4f (trace F1 %.4f), PCA AUC %.4f (trace F1 %.4f)",
		res.Quality.AUC, res.Quality.TraceF1, pcaQ.AUC, pcaQ.TraceF1)
	if res.Quality.AUC < pcaQ.AUC {
		t.Errorf("trained detector (AUC %.4f) should beat the PCA baseline (AUC %.4f) on the steady scenario",
			res.Quality.AUC, pcaQ.AUC)
	}
	if res.Quality.AUC < 0.7 {
		t.Errorf("served AUC %.4f below sanity floor 0.7", res.Quality.AUC)
	}

	// In-order alert delivery: stream the same lines through the monitor
	// with a recording sink. Alerts must arrive as a subsequence of the
	// input — the collector goroutine preserves input order.
	var alertLines []string
	sink := core.SinkFuncs{OnAlert: func(a core.Alert) { alertLines = append(alertLines, a.Line) }}
	var input strings.Builder
	for _, ev := range s.Events {
		input.WriteString(ev.Line)
		input.WriteByte('\n')
	}
	report, err := srv.MonitorIngestModel(context.Background(), "genome-sft", strings.NewReader(input.String()), true, sink)
	if err != nil {
		t.Fatal(err)
	}
	if report.Processed != len(s.Events) {
		t.Errorf("monitor processed %d of %d lines", report.Processed, len(s.Events))
	}
	if len(alertLines) == 0 {
		t.Fatal("no alerts on an anomalous stream")
	}
	if len(alertLines) != report.Alerts {
		t.Errorf("sink saw %d alerts, report says %d", len(alertLines), report.Alerts)
	}
	pos := 0
	for i, line := range alertLines {
		found := false
		for pos < len(s.Events) {
			if s.Events[pos].Line == line {
				found = true
				pos++
				break
			}
			pos++
		}
		if !found {
			t.Fatalf("alert %d (%q) arrived out of input order", i, line)
		}
	}
}
