// Command reprolint runs the repository's static-analysis suite
// (internal/lint) over package patterns and reports every finding that is
// not covered by a justified //lint:ignore suppression.
//
// Usage:
//
//	reprolint [-list] [packages...]
//
// With no patterns it checks ./.... The exit status is 1 when any diagnostic
// survives, 2 on usage or load errors — the same contract as go vet, so
// `make lint` can gate CI. (The classic `go vet -vettool` protocol needs
// golang.org/x/tools/go/analysis/unitchecker, which this offline,
// dependency-free repo cannot vendor; reprolint therefore drives its own
// loader, one `go list -export` away from the same type information.)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: reprolint [-list] [packages...]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(nil, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
