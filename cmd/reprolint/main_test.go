package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestBinarySmoke builds the multichecker and runs it the way make lint
// does: -list must name every analyzer, and a known-clean package must exit
// zero.
func TestBinarySmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "reprolint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building reprolint: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("reprolint -list: %v\n%s", err, out)
	}
	for _, name := range []string{"determinism", "hotalloc", "locksafe", "ctxflow"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("reprolint -list output missing %q:\n%s", name, out)
		}
	}
	if out, err := exec.Command(bin, "repro/internal/resilience").CombinedOutput(); err != nil {
		t.Fatalf("reprolint repro/internal/resilience: %v\n%s", err, out)
	}
}
