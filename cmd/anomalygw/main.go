// Command anomalygw fronts a fleet of anomalyd replicas with one
// overload-safe HTTP endpoint — the replicated-serving tier of ROADMAP
// item 1 (see docs/RELIABILITY.md, "Replicated serving").
//
//	anomalygw -replicas http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080
//
// What the gateway adds over a plain load balancer:
//
//   - Consistent-hash routing on trace ID: /v1/monitor lines (and /v1/detect
//     requests carrying ?trace= or X-Trace-Key) always land on the replica
//     that owns the trace's TraceTracker window, so trace-level verdicts
//     stay correct across a fleet. Stateless traffic load-balances to the
//     least-loaded routable replica.
//   - Active health checking: each replica's /readyz is probed every
//     -health-interval; -eject-after consecutive failures take it out of
//     rotation, -readmit-after successes bring it back. Traces owned by an
//     ejected replica deterministically re-home to their next ring
//     preference.
//   - Hedged retries: a forward that outlives the fleet's recent p99 is
//     raced by a copy on the next replica in preference order; hedges and
//     retries share one retry budget and each replica sits behind its own
//     circuit breaker.
//   - Fleet admission control: a replica's 429 Retry-After becomes a routing
//     cooldown, and when nothing is routable the gateway sheds with its own
//     429 + Retry-After instead of queueing on a saturated fleet.
//
// Endpoints mirror anomalyd's (detect, detect/batch, monitor, models,
// stats/reset, alerts, healthz, readyz) plus the gateway's own Prometheus
// /metrics. GET /v1/models and POST /v1/monitor return fleet-merged bodies
// in the single-node shape, so existing clients (and loadlab -addr) work
// against the gateway unchanged.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
)

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address")
		replicas      = flag.String("replicas", "", "comma-separated anomalyd base URLs (required), e.g. http://127.0.0.1:8080,http://127.0.0.1:8081")
		vnodes        = flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default 128)")
		healthIvl     = flag.Duration("health-interval", time.Second, "period between /readyz probes of each replica")
		healthTimeout = flag.Duration("health-timeout", 0, "per-probe timeout (0 = min(health-interval, 500ms))")
		ejectAfter    = flag.Int("eject-after", 2, "consecutive probe failures that eject a replica from rotation")
		readmitAfter  = flag.Int("readmit-after", 2, "consecutive probe successes that re-admit an ejected replica")
		maxAttempts   = flag.Int("max-attempts", 3, "distinct replicas one request may be forwarded to")
		hedgeDelay    = flag.Duration("hedge-delay", 0, "fixed hedge trigger delay (0 = derive from recent forward p99)")
		hedgeMin      = flag.Duration("hedge-min", 0, "floor for the derived hedge delay (0 = 5ms)")
		hedgeMax      = flag.Duration("hedge-max", 0, "ceiling for the derived hedge delay (0 = 250ms)")
		budgetCap     = flag.Float64("retry-budget", 0, "retry+hedge token bucket capacity (0 = 32)")
		budgetRatio   = flag.Float64("retry-ratio", 0, "retry budget refill per forwarded request (0 = 0.1)")
		breakThresh   = flag.Int("breaker-threshold", 0, "consecutive forward failures that open a replica's circuit (0 = 5)")
		breakCool     = flag.Duration("breaker-cooldown", 0, "open-circuit probe interval (0 = 1s)")
		cooldown      = flag.Duration("cooldown", 0, "routing cooldown for a 429 with no Retry-After hint (0 = 500ms)")
	)
	flag.Parse()
	if *replicas == "" {
		log.Fatal("anomalygw: -replicas is required")
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(strings.TrimSuffix(u, "/")); u != "" {
			urls = append(urls, u)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	g, err := gateway.New(ctx, gateway.Config{
		Replicas:         urls,
		VirtualNodes:     *vnodes,
		HealthInterval:   *healthIvl,
		HealthTimeout:    *healthTimeout,
		EjectAfter:       *ejectAfter,
		ReadmitAfter:     *readmitAfter,
		MaxAttempts:      *maxAttempts,
		HedgeDelay:       *hedgeDelay,
		HedgeMin:         *hedgeMin,
		HedgeMax:         *hedgeMax,
		BudgetCapacity:   *budgetCap,
		BudgetRatio:      *budgetRatio,
		BreakerThreshold: *breakThresh,
		BreakerCooldown:  *breakCool,
		CooldownDefault:  *cooldown,
	})
	if err != nil {
		log.Fatal("anomalygw: ", err)
	}

	log.Printf("gateway listening on %s, %d replicas: %s", *addr, len(urls), strings.Join(urls, ", "))
	srv := &http.Server{Addr: *addr, Handler: g}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		g.Close()
		log.Fatal("anomalygw: ", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, let in-flight forwards and SSE
	// fan-ins finish (Close cancels the health checker, and the signal
	// context's cancellation unwinds the alert readers).
	log.Print("shutting down...")
	stop()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("anomalygw: shutdown: %v", err)
	}
	g.Close()
	log.Print("bye")
}
