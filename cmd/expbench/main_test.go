package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, id := range []string{"table1", "fig4", "table4", "abl-pre"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}

// TestRunTable1Tiny executes one full experiment at tiny scale — the same
// path `expbench -exp table1` takes, in seconds.
func TestRunTable1Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short")
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-exp", "table1", "-scale", "tiny"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "table1 in") {
		t.Errorf("no timing footer in output:\n%s", got)
	}
	if !strings.Contains(got, "1000-genome") {
		t.Errorf("table missing workflow rows:\n%s", got)
	}
}

func TestRunRejectsUnknownScaleAndExp(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-scale", "galactic"}, &out, &errb); err == nil {
		t.Fatal("unknown scale should fail")
	}
	if err := run([]string{"-exp", "fig99", "-scale", "tiny"}, &out, &errb); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}
