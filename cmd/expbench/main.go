// Command expbench regenerates the paper's tables and figures.
//
// Usage:
//
//	expbench -exp all                 # run every experiment at quick scale
//	expbench -exp fig4 -scale standard
//	expbench -list
//
// Each experiment prints a table shaped like the corresponding artifact in
// the paper; EXPERIMENTS.md records paper-reported vs measured values.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		scale = flag.String("scale", "quick", "working scale: quick or standard")
		seed  = flag.Uint64("seed", 42, "experiment seed")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, d := range experiments.All() {
			fmt.Printf("%-8s %s\n", d.ID, d.Paper)
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick()
	case "standard":
		sc = experiments.Standard()
	default:
		fmt.Fprintf(os.Stderr, "expbench: unknown scale %q (want quick or standard)\n", *scale)
		os.Exit(2)
	}
	sc.Seed = *seed
	lab := experiments.NewLab(sc)

	run := func(d experiments.Def) {
		start := time.Now()
		tab := d.Run(lab)
		fmt.Print(tab.String())
		fmt.Printf("(%s in %.1fs)\n\n", d.ID, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, d := range experiments.All() {
			run(d)
		}
		return
	}
	d, err := experiments.Lookup(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "expbench:", err)
		os.Exit(2)
	}
	run(d)
}
