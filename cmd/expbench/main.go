// Command expbench regenerates the paper's tables and figures.
//
// Usage:
//
//	expbench -exp all                 # run every experiment at quick scale
//	expbench -exp fig4 -scale standard
//	expbench -exp table1 -scale tiny  # smoke: seconds, not numbers
//	expbench -list
//
// Each experiment prints a table shaped like the corresponding artifact in
// the paper; EXPERIMENTS.md records paper-reported vs measured values.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "expbench:", err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("expbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp   = fs.String("exp", "all", "experiment id (see -list) or \"all\"")
		scale = fs.String("scale", "quick", "working scale: tiny, quick, or standard")
		seed  = fs.Uint64("seed", 42, "experiment seed")
		list  = fs.Bool("list", false, "list experiment ids and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, d := range experiments.All() {
			fmt.Fprintf(stdout, "%-8s %s\n", d.ID, d.Paper)
		}
		return nil
	}

	var sc experiments.Scale
	switch *scale {
	case "tiny":
		sc = experiments.Tiny()
	case "quick":
		sc = experiments.Quick()
	case "standard":
		sc = experiments.Standard()
	default:
		return fmt.Errorf("unknown scale %q (want tiny, quick, or standard)", *scale)
	}
	sc.Seed = *seed
	lab := experiments.NewLab(sc)

	runOne := func(d experiments.Def) {
		start := time.Now()
		tab := d.Run(lab)
		fmt.Fprint(stdout, tab.String())
		fmt.Fprintf(stdout, "(%s in %.1fs)\n\n", d.ID, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, d := range experiments.All() {
			runOne(d)
		}
		return nil
	}
	d, err := experiments.Lookup(*exp)
	if err != nil {
		return err
	}
	runOne(d)
	return nil
}
