// Command flowgen generates a Flow-Bench-style synthetic dataset and writes
// it to disk in one of three formats:
//
//	flowgen -workflow 1000-genome -out data/ -format csv
//	flowgen -workflow montage -format log        # raw key=value log lines
//	flowgen -workflow all -format sentences      # parsed Fig-2 sentences
//
// One file is written per split (train/validation/test). Counts match the
// paper's Table I exactly.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/flowbench"
	"repro/internal/logparse"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "flowgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flowgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workflow = fs.String("workflow", "all", "1000-genome, montage, predict-future-sales, or all")
		out      = fs.String("out", ".", "output directory")
		format   = fs.String("format", "csv", "csv, log, or sentences")
		seed     = fs.Uint64("seed", 42, "generation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var wfs []flowbench.Workflow
	if *workflow == "all" {
		wfs = flowbench.Workflows
	} else {
		wfs = []flowbench.Workflow{flowbench.Workflow(*workflow)}
	}
	for _, wf := range wfs {
		if err := writeWorkflow(stdout, wf, *out, *format, *seed); err != nil {
			return err
		}
	}
	return nil
}

func writeWorkflow(stdout io.Writer, wf flowbench.Workflow, dir, format string, seed uint64) error {
	ds := flowbench.Generate(wf, seed)
	for _, split := range flowbench.SplitNames {
		jobs := ds.Split(split)
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.%s", wf, split, ext(format)))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		if format == "csv" {
			fmt.Fprintln(w, logparse.CSVHeader())
		}
		for _, j := range jobs {
			switch format {
			case "csv":
				fmt.Fprintln(w, logparse.CSVRow(j))
			case "log":
				fmt.Fprintln(w, logparse.LogLine(j))
			case "sentences":
				fmt.Fprintln(w, logparse.SentenceWithLabel(j))
			default:
				f.Close()
				return fmt.Errorf("unknown format %q", format)
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d jobs)\n", path, len(jobs))
	}
	return nil
}

func ext(format string) string {
	switch format {
	case "csv":
		return "csv"
	case "log":
		return "log"
	default:
		return "txt"
	}
}
