package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunWritesAllFormats executes the command end to end with a tiny config
// per format and checks the emitted files parse back.
func TestRunWritesAllFormats(t *testing.T) {
	for _, format := range []string{"csv", "log", "sentences"} {
		t.Run(format, func(t *testing.T) {
			dir := t.TempDir()
			var out, errb bytes.Buffer
			err := run([]string{"-workflow", "predict-future-sales", "-out", dir, "-format", format, "-seed", "3"}, &out, &errb)
			if err != nil {
				t.Fatalf("run: %v (stderr: %s)", err, errb.String())
			}
			files, _ := filepath.Glob(filepath.Join(dir, "predict-future-sales_*"))
			if len(files) != 3 {
				t.Fatalf("wrote %d files, want 3 (train/validation/test): %v", len(files), files)
			}
			for _, f := range files {
				data, err := os.ReadFile(f)
				if err != nil {
					t.Fatal(err)
				}
				if len(bytes.TrimSpace(data)) == 0 {
					t.Errorf("%s is empty", f)
				}
			}
			if !strings.Contains(out.String(), "wrote") {
				t.Errorf("no progress output: %q", out.String())
			}
		})
	}
}

func TestRunRejectsUnknownFormat(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-workflow", "predict-future-sales", "-out", t.TempDir(), "-format", "parquet"}, &out, &errb); err == nil {
		t.Fatal("unknown format should fail")
	}
}
