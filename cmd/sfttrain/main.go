// Command sfttrain fine-tunes an encoder model on a workflow dataset and
// reports test metrics — the supervised-fine-tuning pipeline of the paper as
// a standalone tool.
//
//	sfttrain -model bert-base-uncased -workflow 1000-genome -epochs 3
//	sfttrain -model distilbert-base-cased -train 2000 -freeze -save genome.artifact
//
// -save writes a complete detector artifact (weights + tokenizer vocabulary,
// checksummed) that anomalyd -load serves with zero training at boot.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/models"
	"repro/internal/pretrain"
	"repro/internal/sft"
	"repro/internal/tokenizer"
)

func main() {
	var (
		model    = flag.String("model", "bert-base-uncased", "encoder model name (see internal/models)")
		workflow = flag.String("workflow", "1000-genome", "training workflow")
		trainN   = flag.Int("train", 1500, "training subsample size")
		testN    = flag.Int("test", 500, "test subsample size")
		epochs   = flag.Int("epochs", 3, "fine-tuning epochs")
		preSteps = flag.Int("pretrain", 400, "MLM pre-training steps before SFT")
		freeze   = flag.Bool("freeze", false, "freeze the backbone; train only the classification head")
		debias   = flag.Bool("debias", false, "add the empty-sentence debiasing augmentation")
		seed     = flag.Uint64("seed", 42, "seed")
		save     = flag.String("save", "", "write the trained detector artifact to this path (serve with anomalyd -load)")
		quantize = flag.Bool("quantize", false, "int8-quantize after training: evaluation and the saved artifact use the integer inference path")
	)
	flag.Parse()

	spec, ok := models.Get(*model)
	if !ok || spec.Kind != models.Encoder {
		fmt.Fprintf(os.Stderr, "sfttrain: %q is not a registered encoder model\n", *model)
		os.Exit(2)
	}

	ds := flowbench.Generate(flowbench.Workflow(*workflow), *seed).
		Subsample(*trainN, 200, *testN, *seed+1)
	corpus := pretrain.BuildCorpus(pretrain.DefaultCorpus())
	corpus = append(corpus, logparse.Corpus(ds.Train)...)
	tok := tokenizer.Build(corpus)

	fmt.Printf("pre-training %s (MLM, %d steps, vocab %d)...\n", *model, *preSteps, tok.VocabSize())
	m := spec.Build(tok.VocabSize())
	loss := pretrain.MLM(m, tok, corpus, pretrain.Options{Steps: *preSteps, LR: 3e-3, Seed: *seed})
	fmt.Printf("pre-training final loss: %.4f\n", loss)

	if *freeze {
		m.FreezeBackbone()
		fmt.Println("backbone frozen: training classification head only")
	}
	c := sft.NewClassifier(m, tok)
	cfg := sft.DefaultTrainConfig()
	cfg.Epochs = *epochs
	cfg.Seed = *seed
	cfg.ValEvery = 1
	if *debias {
		cfg.Augment = sft.DebiasAugmentation(40)
	}
	fmt.Printf("fine-tuning on %d %s jobs for %d epochs...\n", len(ds.Train), *workflow, *epochs)
	for _, st := range sft.Train(c, sft.JobExamples(ds.Train), sft.JobExamples(ds.Val), cfg) {
		fmt.Printf("epoch %d: loss=%.4f val_acc=%.4f val_f1=%.4f (%.1fs)\n",
			st.Epoch, st.TrainLoss, st.Val.Accuracy, st.Val.F1, st.Duration.Seconds())
	}
	if *quantize {
		// Quantize before evaluation so the reported metrics are the served
		// (int8) detector's, not the fp32 weights the artifact no longer has.
		stats := m.QuantizeInt8(0)
		fmt.Printf("quantized %d projections to int8: %d B serialized vs %d B fp32 (%.1fx smaller)\n",
			stats.Layers, stats.CodesBytes, stats.FP32Bytes, float64(stats.FP32Bytes)/float64(stats.CodesBytes))
	}
	conf := sft.Evaluate(c, ds.Test)
	fmt.Printf("test: %s\n", conf)
	probe := sft.BiasProbe(c)
	fmt.Printf("empty-input probe: p(normal)=%.3f p(abnormal)=%.3f\n", probe[0], probe[1])

	if *save != "" {
		if err := core.SaveDetectorFile(*save, core.NewSFTDetector(c)); err != nil {
			fmt.Fprintln(os.Stderr, "sfttrain:", err)
			os.Exit(1)
		}
		fmt.Printf("detector artifact written to %s (serve with: anomalyd -load %s)\n", *save, *save)
	}
}
