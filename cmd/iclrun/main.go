// Command iclrun performs in-context-learning anomaly detection with a
// decoder model: zero-shot or few-shot prompting, optional quantized LoRA
// fine-tuning, and optional chain-of-thought output for a sample query.
//
//	iclrun -model mistral -workflow 1000-genome -shots 5 -mix mixed
//	iclrun -model gpt2 -shots 0                  # zero-shot
//	iclrun -model mistral -ft -cot               # fine-tune, then show CoT
//	iclrun -model mistral -ft -save icl.artifact # save detector for anomalyd -load
//
// -save writes a complete detector artifact — weights (including LoRA
// adapters when -ft is set), tokenizer vocabulary, and the few-shot example
// set — that anomalyd -load serves with zero training at boot.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/flowbench"
	"repro/internal/icl"
	"repro/internal/logparse"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/pretrain"
	"repro/internal/tokenizer"
)

func main() {
	var (
		model    = flag.String("model", "mistral", "decoder model name: gpt2, mistral, llama2")
		workflow = flag.String("workflow", "1000-genome", "evaluation workflow")
		shots    = flag.Int("shots", 5, "number of in-context examples (0 = zero-shot)")
		mixName  = flag.String("mix", "mixed", "example mix: mixed, pos-only, neg-only")
		ft       = flag.Bool("ft", false, "LoRA fine-tune (with 4-bit quantized base) before evaluating")
		ftSteps  = flag.Int("ft-steps", 400, "LoRA fine-tuning steps")
		cot      = flag.Bool("cot", false, "print a chain-of-thought classification of one test job")
		evalN    = flag.Int("eval", 200, "number of test queries")
		preSteps = flag.Int("pretrain", 400, "CLM pre-training steps")
		seed     = flag.Uint64("seed", 42, "seed")
		save     = flag.String("save", "", "write the detector artifact (weights + few-shot examples) to this path")
		quantize = flag.Bool("quantize", false, "int8-quantize after fine-tuning (merging any LoRA adapters): evaluation and the saved artifact use the integer inference path")
	)
	flag.Parse()

	spec, ok := models.Get(*model)
	if !ok || spec.Kind != models.Decoder {
		fmt.Fprintf(os.Stderr, "iclrun: %q is not a registered decoder model\n", *model)
		os.Exit(2)
	}
	var mix icl.ExampleMix
	switch *mixName {
	case "mixed":
		mix = icl.Mixed
	case "pos-only":
		mix = icl.PositiveOnly
	case "neg-only":
		mix = icl.NegativeOnly
	default:
		fmt.Fprintf(os.Stderr, "iclrun: unknown mix %q\n", *mixName)
		os.Exit(2)
	}

	ds := flowbench.Generate(flowbench.Workflow(*workflow), *seed).
		Subsample(1500, 200, *evalN, *seed+1)
	corpus := pretrain.BuildCorpus(pretrain.DefaultCorpus())
	corpus = append(corpus, logparse.Corpus(ds.Train)...)
	tok := tokenizer.Build(corpus)

	fmt.Printf("pre-training %s (CLM, %d steps, vocab %d)...\n", *model, *preSteps, tok.VocabSize())
	m := spec.Build(tok.VocabSize())
	pretrain.CLM(m, tok, corpus, pretrain.Options{Steps: *preSteps, LR: 3e-3, Seed: *seed})
	d := icl.NewDetector(m, tok)

	if *ft {
		cfg := icl.DefaultFineTuneConfig()
		cfg.Steps = *ftSteps
		cfg.Seed = *seed
		fmt.Printf("LoRA fine-tuning (%d steps, rank %d, 4-bit base)...\n", cfg.Steps, cfg.Rank)
		res := icl.FineTune(d, ds.Train, cfg)
		fmt.Printf("trainable %d / %d params (%.2f%%); base weights %d B quantized vs %d B fp32\n",
			res.TrainableParams, res.TotalParams, 100*res.TrainableFraction(),
			res.QuantBytes, res.FP32Bytes)
	}

	if *quantize {
		stats := m.QuantizeInt8(0)
		fmt.Printf("quantized %d projections to int8: %d B serialized vs %d B fp32 (%.1fx smaller)\n",
			stats.Layers, stats.CodesBytes, stats.FP32Bytes, float64(stats.FP32Bytes)/float64(stats.CodesBytes))
	}

	exs := icl.PromptExamples(icl.SelectExamples(ds.Train, *shots, mix, *seed))
	if *save != "" {
		if err := core.SaveDetectorFile(*save, core.NewICLDetector(d, exs)); err != nil {
			fmt.Fprintln(os.Stderr, "iclrun:", err)
			os.Exit(1)
		}
		fmt.Printf("detector artifact written to %s (serve with: anomalyd -load %s)\n", *save, *save)
	}
	fmt.Printf("evaluating %d queries with %d-shot %s prompts...\n", len(ds.Test), *shots, mix)
	conf := icl.Evaluate(d, ds.Test, exs)
	fmt.Printf("test: %s\n", conf)
	labels, scores := icl.AnomalyScores(d, ds.Test, exs)
	fmt.Printf("roc_auc=%.4f ave_prec=%.4f prec@k=%.4f\n",
		metrics.ROCAUC(labels, scores),
		metrics.AveragePrecision(labels, scores),
		metrics.PrecisionAtK(labels, scores, 0))

	if *cot {
		ctx := icl.SelectExamples(ds.Train, max(8, *shots), icl.Mixed, *seed)
		res := icl.ChainOfThought(d, ds.Test[0], ctx)
		fmt.Println("\n--- chain-of-thought example ---")
		fmt.Println(res.Text)
		fmt.Printf("(true label: %s)\n", logparse.LabelWord(ds.Test[0].Label))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
