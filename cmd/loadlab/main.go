// Command loadlab replays labeled, deterministic traffic scenarios against a
// serving anomalyd and reports throughput, stage latency, queue saturation,
// and detection quality per scenario — the serving-grade benchmark suite
// behind `make bench-scenarios`.
//
//	loadlab -list                             # show the scenario taxonomy
//	loadlab                                   # train a small detector, replay all scenarios
//	loadlab -load genome.artifact             # serve a saved artifact in-process
//	loadlab -addr http://10.0.0.5:8080        # drive a remote anomalyd
//	loadlab -scenarios bursty,near-dup -out - # subset, report to stdout
//	loadlab -scenarios chaos-bursty -retries  # fault-injected replay, client retries
//	loadlab -chaos -shed-depth 64 -brownout 48 -deadline-ms 250  # full overload drill
//	loadlab -cascade ngram                    # paired rows per scenario: cascade off, then on
//
// Each scenario (see docs/SCENARIOS.md) is generated from a name + seed and
// is byte-identical across runs, so reports diff meaningfully across commits
// (scripts/benchdiff). The replay is open-loop over real HTTP: requests fire
// at their scheduled instants whether or not the server keeps up, so
// queueing appears in the measurements instead of being absorbed by client
// backpressure. The dark baselines (PCA, isolation forest, MLP autoencoder)
// score the same event streams in-process as cheap comparison rows, and
// -cascade replays each scenario a second time with the calibrated stage-1
// gate armed so cascade off/on land as paired rows.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/baselines"
	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/flowbench"
	"repro/internal/gateway"
	"repro/internal/logparse"
	"repro/internal/resilience"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadlab:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadlab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list      = fs.Bool("list", false, "list scenarios and exit")
		names     = fs.String("scenarios", "all", `comma-separated scenarios to replay, or "all"`)
		events    = fs.Int("events", 2000, "events per scenario stream")
		seed      = fs.Uint64("seed", 42, "scenario generation seed")
		rate      = fs.Float64("rate", 400, "nominal arrival rate (lines/sec at speed 1)")
		workflow  = fs.String("workflow", "1000-genome", "Flow-Bench workflow traffic is drawn from")
		speed     = fs.Float64("speed", 10, "schedule compression factor (10 = replay a 10s schedule in 1s)")
		addr      = fs.String("addr", "", "remote anomalyd base URL (empty = boot one in-process)")
		load      = fs.String("load", "", "detector artifact to serve in-process (skips training)")
		trainN    = fs.Int("train", 400, "training subsample size (in-process training)")
		preSteps  = fs.Int("pretrain", 120, "pre-training steps")
		epochs    = fs.Int("epochs", 2, "SFT epochs")
		model     = fs.String("model", "distilbert-base-uncased", "model registry name for in-process training")
		trainSeed = fs.Uint64("train-seed", 9, "training seed")
		quantize  = fs.Bool("quantize", false, "serve int8-quantized weights")
		baseNames = fs.String("baselines", "pca,iforest,mlpae", `comma-separated dark baselines scored on the same streams ("none" to skip)`)
		monitors  = fs.String("monitor", "steady", `scenarios to additionally replay through /v1/monitor ("all", "none", or a comma list)`)
		out       = fs.String("out", "-", "report path (- = stdout)")
		detName   = fs.String("detector", "", "detector label in report rows (default: sft, int8, or the artifact name)")
		maxBatch  = fs.Int("max-batch", 64, "max sentences per batched model invocation (in-process)")
		flush     = fs.Duration("flush", 2*time.Millisecond, "coalescing flush deadline (in-process)")
		workers   = fs.Int("workers", 0, "inference workers (0 = GOMAXPROCS, in-process)")
		chaos     = fs.Bool("chaos", false, "replay every scenario as its chaos variant: deterministic faults during the middle third of the schedule (in-process only)")
		shedDepth = fs.Int("shed-depth", 0, "admission-control queue depth; enqueues beyond it are shed with 429 (0 = off, in-process)")
		deadline  = fs.Int("deadline-ms", 0, "server-side default request deadline in milliseconds (0 = none, in-process)")
		brownout  = fs.Int("brownout", 0, "queue depth that engages brownout degradation to a calibrated PCA baseline (0 = off, in-process)")
		brownHold = fs.Duration("brownout-hold", 0, "how long the queue must stay saturated before brownout engages (0 = server default 250ms; compressed replays need a hold matched to their timescale)")
		retries   = fs.Bool("retries", false, "send replay requests through the resilience retry client (backoff, budget, Retry-After)")
		cascName  = fs.String("cascade", "", "two-stage inference drill: replay each non-chaos scenario twice, stage-1 gate (ngram, pca, or iforest) off then on, as paired report rows (in-process only)")
		cascRec   = fs.Float64("cascade-recall", cascade.DefaultTargetRecall, "cascade calibration target recall")
		gatewayN  = fs.Int("gateway", 0, "replicated-serving drill: boot N in-process replicas behind an anomalygw gateway and replay each non-chaos scenario against it too, as paired single-node vs fleet rows (in-process only, N >= 2)")
		gwKill    = fs.Bool("gateway-kill", false, "with -gateway: blackhole one replica for the middle third of each gateway replay, exercising ejection, re-routing, and re-admission")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, d := range scenario.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", d.Name, d.Description)
		}
		return nil
	}

	if *gatewayN == 1 {
		return fmt.Errorf("-gateway needs at least 2 replicas to route between")
	}
	if *gwKill && *gatewayN == 0 {
		return fmt.Errorf("-gateway-kill needs -gateway N")
	}
	if *gatewayN > 0 && *cascName != "" {
		return fmt.Errorf("-gateway and -cascade both pair rows against the base replay; run them separately")
	}

	defs, chaosSet, err := pickScenarios(*names)
	if err != nil {
		return err
	}
	if *chaos {
		for _, d := range defs {
			chaosSet[d.Name] = true
		}
	}
	monitorSet, err := pickMonitorSet(*monitors, defs)
	if err != nil {
		return err
	}

	cfg := scenario.Config{
		Workflow: flowbench.Workflow(*workflow),
		Events:   *events,
		Seed:     *seed,
		Rate:     *rate,
	}

	// Resolve the server under test: a remote daemon, a loaded artifact, or
	// a detector trained right here.
	baseURL := *addr
	if baseURL != "" && !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	label := *detName
	var cleanup func()
	var gate *faultGate
	// cascadeArm toggles the in-process model's stage-1 gate between the
	// paired off/on replays; nil when -cascade is off.
	var cascadeArm func(on bool) error
	// monReset clears the in-process model's trace tracker before each
	// monitor replay, so repeated ingests of the same stream (the cascade
	// off/on pair, or the same scenario across runs) report comparable
	// flagged-trace counts instead of latch-suppressed zeros; nil against a
	// remote server.
	var monReset func() error
	// Gateway drill state (nil/empty unless -gateway N): the fleet's base
	// URL, a fleet-wide tracker reset, and the blackhole switch for -gateway-kill.
	var gwURL string
	var gwReset func() error
	var gwKiller *killGate
	remote := baseURL != ""
	if baseURL == "" {
		det, defLabel, err := buildDetector(stderr, *load, *quantize, core.Options{
			Approach:      core.SFT,
			Workflow:      cfg.Workflow,
			Model:         *model,
			TrainSize:     *trainN,
			PretrainSteps: *preSteps,
			Epochs:        *epochs,
			Seed:          *trainSeed,
		})
		if err != nil {
			return err
		}
		if label == "" {
			label = defLabel
		}
		bcfg := core.BatchConfig{
			MaxBatch: *maxBatch, FlushDelay: *flush, Workers: *workers,
			ShedQueueDepth:  *shedDepth,
			DefaultDeadline: time.Duration(*deadline) * time.Millisecond,
			BrownoutDepth:   *brownout,
			BrownoutHold:    *brownHold,
		}
		reg := core.NewRegistry()
		if err := reg.Add(core.DefaultModel, det, bcfg); err != nil {
			return err
		}
		if *brownout > 0 {
			ds := flowbench.Generate(cfg.Workflow, cfg.Seed)
			fb, err := core.FitFallback("pca", ds.Train, cfg.Seed)
			if err != nil {
				return err
			}
			if err := reg.SetFallback(core.DefaultModel, fb); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "brownout fallback fitted (pca, engages at queue depth %d)\n", *brownout)
		}
		if *cascName != "" {
			ds := flowbench.Generate(cfg.Workflow, cfg.Seed)
			g, err := core.FitCascade(det, cascade.Config{
				Scorer: *cascName, TargetRecall: *cascRec, Seed: cfg.Seed,
			}, ds.Train)
			if err != nil {
				return err
			}
			fmt.Fprintf(stderr, "cascade calibrated: %s gate, target recall %.3f (%d calibration positives)\n",
				g.Scorer(), g.TargetRecall(), g.Positives())
			cascadeArm = func(on bool) error {
				if on {
					return reg.SetCascade(core.DefaultModel, g)
				}
				return reg.SetCascade(core.DefaultModel, nil)
			}
		}
		monReset = func() error { return reg.ResetMonitor(core.DefaultModel) }
		srv := core.NewServerRegistry(reg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return err
		}
		gate = &faultGate{next: srv}
		hsrv := &http.Server{Handler: gate}
		go hsrv.Serve(ln)
		baseURL = "http://" + ln.Addr().String()
		cleanup = func() {
			hsrv.Close()
			srv.Close()
		}
		fmt.Fprintf(stderr, "serving %s in-process at %s\n", label, baseURL)
		if *gatewayN > 0 {
			var gwCleanup func()
			gwURL, gwReset, gwKiller, gwCleanup, err = bootGatewayFleet(det, bcfg, *gatewayN, *gwKill)
			if err != nil {
				cleanup()
				return err
			}
			prev := cleanup
			cleanup = func() {
				gwCleanup()
				prev()
			}
			fmt.Fprintf(stderr, "gateway fleet: %d replicas behind %s\n", *gatewayN, gwURL)
		}
	} else {
		if len(chaosSet) > 0 {
			return fmt.Errorf("chaos replays need the in-process server (faults are injected into its handler); drop -addr or use anomalyd -faults")
		}
		if *cascName != "" {
			return fmt.Errorf("-cascade pairs off/on replays by toggling the in-process model's gate; drop -addr (a remote anomalyd arms its own cascade with -cascade)")
		}
		if *gatewayN > 0 {
			return fmt.Errorf("-gateway boots its fleet in-process; drop -addr (a remote fleet is driven by pointing -addr at anomalygw)")
		}
		if label == "" {
			label = "remote"
		}
	}
	if cleanup != nil {
		defer cleanup()
	}

	// Seed baselines are fitted once on the workflow's training split and
	// calibrated so their predicted-positive rate matches the training
	// contamination — then they score every scenario's events in-process.
	type fitted struct {
		scorer baselines.JobScorer
		cutoff float64
	}
	var fits []fitted
	if *baseNames != "none" && *baseNames != "" {
		ds := flowbench.Generate(cfg.Workflow, cfg.Seed)
		for _, name := range strings.Split(*baseNames, ",") {
			sc, err := baselines.FitScorer(strings.TrimSpace(name), ds.Train, cfg.Seed)
			if err != nil {
				return err
			}
			cut := baselines.CalibrateThreshold(sc.Score(ds.Train), baselines.AnomalyRate(ds.Train))
			fits = append(fits, fitted{scorer: sc, cutoff: cut})
		}
	}

	rcfg := scenario.ReplayConfig{BaseURL: baseURL, Speed: *speed}
	ctx := context.Background()
	report := &scenario.BenchReport{
		Recorded: time.Now().UTC().Format(time.RFC3339),
		CPU:      cpuModel(),
		Command:  "loadlab " + strings.Join(args, " "),
	}

	for _, d := range defs {
		s := d.Generate(cfg)
		displayName := d.Name
		scfg := rcfg
		var inj *faults.Injector
		if chaosSet[d.Name] {
			displayName = scenario.ChaosName(d.Name)
			plan := scenario.ChaosPlan(s, *speed, *seed)
			inj = faults.New(plan)
			scfg.FaultWindow = plan.Window
			gate.set(inj)
		}
		if *retries || remote {
			// A fresh client per scenario keeps the retry counters per-row.
			// Remote replays always ride the resilience client: a WAN hop has
			// transient failures a lab loopback doesn't, and the budget keeps
			// a sick server from being hammered by its own benchmark.
			scfg.Retry = retryClient(*seed)
		}
		fmt.Fprintf(stderr, "replaying %s: %d events over %s (speed %gx)\n",
			displayName, len(s.Events), s.Duration().Round(time.Millisecond), *speed)

		if inj != nil {
			inj.Arm()
		}
		res, err := scenario.Replay(ctx, s, scfg)
		if inj != nil {
			gate.set(nil)
		}
		if err != nil {
			return fmt.Errorf("replay %s: %w", displayName, err)
		}
		if res.Errors == res.Requests {
			return fmt.Errorf("replay %s: all %d requests to %s failed", displayName, res.Requests, baseURL)
		}
		if res.Errors > 0 {
			fmt.Fprintf(stderr, "  %d/%d requests failed (timeout %d, shed %d, server %d, transport %d)\n",
				res.Errors, res.Requests, res.Failures.Timeout, res.Failures.Shed, res.Failures.Server, res.Failures.Transport)
		}
		if res.DegradedReqs > 0 || res.Server.Shed+res.Server.Expired > 0 {
			fmt.Fprintf(stderr, "  overload: server shed %d, expired %d, degraded %d lines (%d degraded responses)\n",
				res.Server.Shed, res.Server.Expired, res.Server.Degraded, res.DegradedReqs)
		}
		if inj != nil {
			fmt.Fprintf(stderr, "  faults injected: %d %v\n", inj.Total(), inj.Counts())
			if res.Phases != nil {
				recov := fmt.Sprintf("%.0fms", res.Phases.RecoveryMs)
				if res.Phases.RecoveryMs < 0 {
					recov = "not observed"
				}
				fmt.Fprintf(stderr, "  p99 pre %.1fms / during %.1fms / post %.1fms, drain recovery %s\n",
					res.Phases.PreP99Ms, res.Phases.DuringP99Ms, res.Phases.PostP99Ms, recov)
			}
		}
		fmt.Fprintf(stderr, "  %s: %.0f lines/s, client p99 %.1fms, queue p99 %.1fms, AUC %.3f, trace F1 %.3f\n",
			label, res.LinesPerSec, res.ClientP99Ms, res.Server.QueueWaitP99Ms, res.Quality.AUC, res.Quality.TraceF1)
		entry := res.Entry(label)
		if inj != nil {
			entry.Name = fmt.Sprintf("LoadLabChaos/%s/%s", d.Name, label)
			entry.Extra["faults_injected"] = float64(inj.Total())
		}
		report.Entries = append(report.Entries, entry)

		var monBase *scenario.MonitorResult
		if monitorSet[d.Name] {
			if monReset != nil {
				if err := monReset(); err != nil {
					return err
				}
			}
			mres, err := scenario.ReplayMonitor(ctx, s, rcfg)
			if err != nil {
				return fmt.Errorf("monitor replay %s: %w", d.Name, err)
			}
			monBase = mres
			fmt.Fprintf(stderr, "  monitor: %.0f lines/s, %d alerts, %d flagged traces\n",
				mres.LinesPerSec, mres.Report.Alerts, mres.Report.FlaggedTraces)
			report.Entries = append(report.Entries, mres.Entry(label))
		}

		// Paired cascade replay: the same stream again with the stage-1 gate
		// armed, so BENCH rows diff off vs on directly. Chaos variants stay
		// unpaired — their injector state is consumed by the first replay.
		if cascadeArm != nil && inj == nil {
			if err := cascadeArm(true); err != nil {
				return err
			}
			ccfg := rcfg
			if *retries {
				ccfg.Retry = retryClient(*seed)
			}
			cres, err := scenario.Replay(ctx, s, ccfg)
			if err != nil {
				return fmt.Errorf("cascade replay %s: %w", d.Name, err)
			}
			agree, flagsEqual := cascadeAgreement(s, res, cres)
			speedup := 0.0
			if cres.LinesPerSec > 0 && res.LinesPerSec > 0 {
				speedup = cres.LinesPerSec / res.LinesPerSec
			}
			fmt.Fprintf(stderr, "  %s+cascade: %.0f lines/s (%.2fx), agreement %.4f, trace flags equal %v, pass fraction %.2f\n",
				label, cres.LinesPerSec, speedup, agree, flagsEqual, cres.Server.CascadePassFraction)
			centry := cres.Entry(label + "+cascade")
			centry.Extra["verdict_agreement"] = agree
			centry.Extra["trace_flags_equal"] = 0
			if flagsEqual {
				centry.Extra["trace_flags_equal"] = 1
			}
			report.Entries = append(report.Entries, centry)
			if monBase != nil {
				if monReset != nil {
					if err := monReset(); err != nil {
						return err
					}
				}
				mcres, err := scenario.ReplayMonitor(ctx, s, rcfg)
				if err != nil {
					return fmt.Errorf("cascade monitor replay %s: %w", d.Name, err)
				}
				mspeed := 0.0
				if monBase.LinesPerSec > 0 {
					mspeed = mcres.LinesPerSec / monBase.LinesPerSec
				}
				fmt.Fprintf(stderr, "  monitor+cascade: %.0f lines/s (%.2fx), %d alerts, %d flagged traces\n",
					mcres.LinesPerSec, mspeed, mcres.Report.Alerts, mcres.Report.FlaggedTraces)
				report.Entries = append(report.Entries, mcres.Entry(label+"+cascade"))
			}
			if err := cascadeArm(false); err != nil {
				return err
			}
		}

		// Paired gateway replay: the same stream against the replicated fleet,
		// so BENCH rows diff single-node vs gateway directly (throughput and
		// tail latency at the same error budget). Chaos variants stay
		// unpaired — their injector state is consumed by the first replay.
		if gwURL != "" && inj == nil {
			gcfg := rcfg
			gcfg.BaseURL = gwURL
			if *retries {
				gcfg.Retry = retryClient(*seed)
			}
			var killed func()
			if gwKiller != nil {
				killed = gwKiller.schedule(time.Duration(float64(s.Duration()) / *speed))
			}
			gres, err := scenario.Replay(ctx, s, gcfg)
			if killed != nil {
				killed() // cancel timers, revive the victim for the next row
			}
			if err != nil {
				return fmt.Errorf("gateway replay %s: %w", displayName, err)
			}
			if gres.Errors > 0 {
				fmt.Fprintf(stderr, "  %d/%d gateway requests failed (timeout %d, shed %d, server %d, transport %d)\n",
					gres.Errors, gres.Requests, gres.Failures.Timeout, gres.Failures.Shed, gres.Failures.Server, gres.Failures.Transport)
			}
			gspeed := 0.0
			if res.LinesPerSec > 0 {
				gspeed = gres.LinesPerSec / res.LinesPerSec
			}
			errRate := 0.0
			if gres.Requests > 0 {
				errRate = float64(gres.Errors) / float64(gres.Requests)
			}
			fmt.Fprintf(stderr, "  %s+gw: %.0f lines/s (%.2fx), client p99 %.1fms, errors %.2f%% (%d replicas)\n",
				label, gres.LinesPerSec, gspeed, gres.ClientP99Ms, 100*errRate, *gatewayN)
			gentry := gres.Entry(label + "+gw")
			gentry.Extra["replicas"] = float64(*gatewayN)
			gentry.Extra["error_rate"] = errRate
			if gwKiller != nil {
				gentry.Extra["replica_killed"] = 1
			}
			report.Entries = append(report.Entries, gentry)

			if monitorSet[d.Name] {
				if err := gwReset(); err != nil {
					return err
				}
				mcfg := rcfg
				mcfg.BaseURL = gwURL
				gmres, err := scenario.ReplayMonitor(ctx, s, mcfg)
				if err != nil {
					return fmt.Errorf("gateway monitor replay %s: %w", d.Name, err)
				}
				fmt.Fprintf(stderr, "  monitor+gw: %.0f lines/s, %d alerts, %d flagged traces\n",
					gmres.LinesPerSec, gmres.Report.Alerts, gmres.Report.FlaggedTraces)
				report.Entries = append(report.Entries, gmres.Entry(label+"+gw"))
			}
		}

		for _, f := range fits {
			report.Entries = append(report.Entries, baselineEntry(s, f.scorer, f.cutoff))
		}
	}

	if *out == "-" {
		return report.Write(stdout)
	}
	file, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := report.Write(file); err != nil {
		file.Close()
		return err
	}
	if err := file.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "report written to %s (%d rows)\n", *out, len(report.Entries))
	return nil
}

// retryClient builds one replay's resilience client: deterministic backoff
// schedule plus a Finagle-style retry budget, so a struggling server is never
// hammered by its own benchmark.
func retryClient(seed uint64) *resilience.Client {
	return &resilience.Client{
		Policy: resilience.DefaultPolicy(seed),
		Budget: resilience.NewBudget(32, 0.1),
	}
}

// bootGatewayFleet builds the -gateway drill: n in-process replicas (each
// its own registry and HTTP server, all serving the shared detector — batch
// scoring is read-only) behind a gateway with test-paced health checking.
// With kill armed, the last replica sits behind a killGate blackhole.
func bootGatewayFleet(det core.Detector, bcfg core.BatchConfig, n int, kill bool) (gwURL string, reset func() error, killer *killGate, cleanup func(), err error) {
	var cleanups []func()
	cleanup = func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	fail := func(e error) (string, func() error, *killGate, func(), error) {
		cleanup()
		return "", nil, nil, nil, e
	}
	var urls []string
	var regs []*core.Registry
	for i := 0; i < n; i++ {
		reg := core.NewRegistry()
		if err := reg.Add(core.DefaultModel, det, bcfg); err != nil {
			return fail(err)
		}
		srv := core.NewServerRegistry(reg)
		srv.SetInstance(fmt.Sprintf("r%d", i))
		var h http.Handler = srv
		if kill && i == n-1 {
			killer = &killGate{next: srv}
			h = killer
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return fail(err)
		}
		hsrv := &http.Server{Handler: h}
		go hsrv.Serve(ln)
		urls = append(urls, "http://"+ln.Addr().String())
		regs = append(regs, reg)
		cleanups = append(cleanups, func() {
			hsrv.Close()
			srv.Close()
		})
	}
	gw, err := gateway.New(context.Background(), gateway.Config{
		Replicas:       urls,
		HealthInterval: 50 * time.Millisecond, // compressed replays need compressed ejection
	})
	if err != nil {
		return fail(err)
	}
	cleanups = append(cleanups, gw.Close)
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	ghsrv := &http.Server{Handler: gw}
	go ghsrv.Serve(gln)
	cleanups = append(cleanups, func() { ghsrv.Close() })
	reset = func() error {
		for _, reg := range regs {
			if err := reg.ResetMonitor(core.DefaultModel); err != nil {
				return err
			}
		}
		return nil
	}
	return "http://" + gln.Addr().String(), reset, killer, cleanup, nil
}

// killGate is the -gateway-kill blackhole: while dead, every connection is
// hijacked and slammed shut (the gateway sees transport errors, exactly like
// a crashed replica), falling back to 503 where hijacking is unavailable.
type killGate struct {
	next http.Handler
	dead atomic.Bool
}

func (k *killGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.dead.Load() {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	k.next.ServeHTTP(w, r)
}

// schedule arms one replay's kill window — dead from 1/3 to 2/3 of the
// compressed wall duration — and returns a func that cancels the timers and
// revives the victim (idempotent; call it when the replay ends).
func (k *killGate) schedule(wall time.Duration) func() {
	killT := time.AfterFunc(wall/3, func() { k.dead.Store(true) })
	reviveT := time.AfterFunc(2*wall/3, func() { k.dead.Store(false) })
	return func() {
		killT.Stop()
		reviveT.Stop()
		k.dead.Store(false)
	}
}

// faultGate is the swap-in point for chaos campaigns: an atomically
// replaceable fault injector in front of the in-process server, so each
// scenario can arm its own deterministic campaign and clean replays pass
// through untouched.
type faultGate struct {
	next http.Handler
	inj  atomic.Pointer[faults.Injector]
}

func (g *faultGate) set(inj *faults.Injector) { g.inj.Store(inj) }

func (g *faultGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if inj := g.inj.Load(); inj != nil {
		inj.Wrap(g.next).ServeHTTP(w, r)
		return
	}
	g.next.ServeHTTP(w, r)
}

// pickScenarios resolves the -scenarios flag to scenario definitions plus
// the set of names requested as chaos variants ("chaos-bursty" replays the
// bursty stream behind the fault injector).
func pickScenarios(names string) ([]scenario.Def, map[string]bool, error) {
	chaosSet := map[string]bool{}
	if names == "all" || names == "" {
		return scenario.All(), chaosSet, nil
	}
	var defs []scenario.Def
	for _, name := range strings.Split(names, ",") {
		base, isChaos := scenario.SplitChaos(strings.TrimSpace(name))
		d, err := scenario.Lookup(base)
		if err != nil {
			return nil, nil, err
		}
		defs = append(defs, d)
		if isChaos {
			chaosSet[base] = true
		}
	}
	return defs, chaosSet, nil
}

// pickMonitorSet resolves the -monitor flag to the scenarios that also get a
// /v1/monitor replay.
func pickMonitorSet(spec string, defs []scenario.Def) (map[string]bool, error) {
	set := map[string]bool{}
	switch spec {
	case "none", "":
		return set, nil
	case "all":
		for _, d := range defs {
			set[d.Name] = true
		}
		return set, nil
	}
	for _, name := range strings.Split(spec, ",") {
		if _, err := scenario.Lookup(strings.TrimSpace(name)); err != nil {
			return nil, err
		}
		set[strings.TrimSpace(name)] = true
	}
	return set, nil
}

// buildDetector resolves the in-process detector: a loaded artifact or a
// fresh small training run.
func buildDetector(stderr io.Writer, load string, quantize bool, opts core.Options) (core.Detector, string, error) {
	if load != "" {
		det, err := core.LoadDetectorFile(load)
		if err != nil {
			return nil, "", err
		}
		if quantize && core.DetectorPrecision(det) != core.PrecisionInt8 {
			if det, err = core.QuantizeDetector(det); err != nil {
				return nil, "", err
			}
		}
		label := filepath.Base(load)
		if ext := filepath.Ext(label); ext != "" {
			label = strings.TrimSuffix(label, ext)
		}
		return det, label, nil
	}
	fmt.Fprintf(stderr, "training %s (%d jobs, %d pretrain steps, %d epochs)...\n",
		opts.Model, opts.TrainSize, opts.PretrainSteps, opts.Epochs)
	start := time.Now()
	det, rep, err := core.Train(opts)
	if err != nil {
		return nil, "", err
	}
	fmt.Fprintf(stderr, "detector ready in %s: %d params, held-out %s\n",
		time.Since(start).Round(time.Millisecond), rep.Params, rep.Test)
	label := "sft"
	if quantize {
		if det, err = core.QuantizeDetector(det); err != nil {
			return nil, "", err
		}
		label = "int8"
	}
	return det, label, nil
}

// cascadeAgreement compares the paired replays of one stream: per-event
// verdict agreement over events both runs answered, and whether the trace
// policy flags exactly the same traces under either run's verdicts — the
// parity contract the cascade is calibrated to hold.
func cascadeAgreement(s *scenario.Stream, base, casc *scenario.Result) (float64, bool) {
	policy := core.DefaultTracePolicy()
	both, same := 0, 0
	jobs := map[int]int{}
	baseAnom := map[int]int{}
	cascAnom := map[int]int{}
	for i, ev := range s.Events {
		id := ev.Job.TraceID
		jobs[id]++
		pb, pc := base.Preds[i], casc.Preds[i]
		if pb >= 0 && pc >= 0 {
			both++
			if pb == pc {
				same++
			}
		}
		if pb > 0 {
			baseAnom[id]++
		}
		if pc > 0 {
			cascAnom[id]++
		}
	}
	equal := true
	for id, n := range jobs {
		if policy.Flagged(n, baseAnom[id]) != policy.Flagged(n, cascAnom[id]) {
			equal = false
			break
		}
	}
	agree := 1.0
	if both > 0 {
		agree = float64(same) / float64(both)
	}
	return agree, equal
}

// baselineEntry scores one stream with a fitted seed baseline and packages
// the row. Baselines run in-process on the ground-truth feature vectors (the
// exact numbers the log lines render), so their quality is comparable to the
// served detector's while their cost stays a pure Score call.
func baselineEntry(s *scenario.Stream, sc baselines.JobScorer, cutoff float64) scenario.BenchEntry {
	jobs := make([]flowbench.Job, len(s.Events))
	for i, ev := range s.Events {
		j, err := logparse.ParseLogLine(ev.Line)
		if err != nil {
			j = ev.Job // generated lines always parse; belt and braces
		}
		jobs[i] = j
	}
	start := time.Now()
	scores := sc.Score(jobs)
	wall := time.Since(start)
	preds := baselines.Threshold(scores, cutoff)
	q := scenario.EvaluateScores(s, scores, preds, core.TracePolicy{})
	nsPerLine := float64(wall) / float64(len(jobs))
	linesPerSec := 0.0
	if wall > 0 {
		linesPerSec = float64(len(jobs)) / wall.Seconds()
	}
	return scenario.BenchEntry{
		Name:    fmt.Sprintf("LoadLab/%s/%s", s.Name, sc.Name()),
		NsPerOp: nsPerLine,
		Extra: map[string]float64{
			"events":        float64(len(jobs)),
			"lines_per_sec": linesPerSec,
			"roc_auc":       q.AUC,
			"avg_precision": q.AP,
			"line_f1":       q.LineF1,
			"trace_f1":      q.TraceF1,
		},
	}
}

// cpuModel reads the CPU model name for the report header.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "model name") {
				if i := strings.IndexByte(line, ':'); i >= 0 {
					return strings.TrimSpace(line[i+1:])
				}
			}
		}
	}
	return runtime.GOARCH
}
