package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, name := range []string{"steady", "bursty", "trace-heavy", "line-heavy", "drift", "near-dup"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

// TestRunSmoke is the `make loadlab-smoke` path: train a deliberately tiny
// detector, replay two scenarios at high speed, and validate the report.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loadlab smoke test skipped in -short")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-events", "200", "-speed", "200", "-workflow", "predict-future-sales", "-seed", "6",
		"-train", "150", "-pretrain", "60", "-epochs", "1",
		"-scenarios", "steady,near-dup", "-monitor", "steady",
		"-out", out,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Benchmarks []struct {
			Name    string             `json:"name"`
			NsPerOp float64            `json:"ns_per_op"`
			Extra   map[string]float64 `json:"extra"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}

	want := map[string]bool{
		"LoadLab/steady/sft":        false,
		"LoadLab/steady/pca":        false,
		"LoadLab/steady/iforest":    false,
		"LoadLabMonitor/steady/sft": false,
		"LoadLab/near-dup/sft":      false,
		"LoadLab/near-dup/pca":      false,
		"LoadLab/near-dup/iforest":  false,
	}
	for _, b := range report.Benchmarks {
		if _, ok := want[b.Name]; ok {
			want[b.Name] = true
		}
		if b.NsPerOp <= 0 {
			t.Errorf("%s: ns_per_op %v not positive", b.Name, b.NsPerOp)
		}
		if strings.HasPrefix(b.Name, "LoadLab/") {
			for _, key := range []string{"events", "roc_auc", "line_f1", "trace_f1", "lines_per_sec"} {
				if _, ok := b.Extra[key]; !ok {
					t.Errorf("%s: extra missing %s", b.Name, key)
				}
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("report missing row %s", name)
		}
	}

	// The near-dup scenario must actually exercise the dedup coalescer.
	for _, b := range report.Benchmarks {
		if b.Name == "LoadLab/near-dup/sft" && b.Extra["dedup_saved"] == 0 {
			t.Error("near-dup replay recorded dedup_saved = 0")
		}
	}
}

// TestRunChaosSmoke is the `make chaos-smoke` path: replay a chaos variant
// with admission control, brownout, deadlines, and client retries all on,
// and validate the chaos report rows.
func TestRunChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos smoke test skipped in -short")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		// Speed 1 keeps the compressed schedule ~0.5s wide so the fault
		// window (its middle third) actually brackets a run of requests;
		// heavy compression would shrink the window below arrival jitter.
		"-events", "200", "-speed", "1", "-workflow", "predict-future-sales", "-seed", "6",
		"-train", "150", "-pretrain", "60", "-epochs", "1",
		"-scenarios", "chaos-steady", "-monitor", "none", "-baselines", "none",
		"-shed-depth", "64", "-brownout", "48", "-deadline-ms", "500", "-retries",
		"-out", out,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Benchmarks []struct {
			Name  string             `json:"name"`
			Extra map[string]float64 `json:"extra"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	var row *struct {
		Name  string             `json:"name"`
		Extra map[string]float64 `json:"extra"`
	}
	for i := range report.Benchmarks {
		if report.Benchmarks[i].Name == "LoadLabChaos/steady/sft" {
			row = &report.Benchmarks[i]
		}
	}
	if row == nil {
		t.Fatalf("report has no LoadLabChaos/steady/sft row:\n%s", data)
	}
	if row.Extra["faults_injected"] <= 0 {
		t.Errorf("chaos row recorded no injected faults: %v", row.Extra)
	}
	for _, key := range []string{"pre_p99_ms", "during_p99_ms", "post_p99_ms"} {
		if _, ok := row.Extra[key]; !ok {
			t.Errorf("chaos row missing %s", key)
		}
	}
	// Shed-rate bound: with retries on, the vast majority of requests must
	// still be answered (faults hit 1 in 4 requests in the middle third).
	if events, reqs := row.Extra["events"], row.Extra["requests"]; events <= 0 || reqs <= 0 {
		t.Errorf("chaos row lost traffic counts: %v", row.Extra)
	} else if errRate := row.Extra["errors"] / reqs; errRate > 0.25 {
		t.Errorf("error rate %.2f exceeds 0.25 despite retries", errRate)
	}
}

func TestRunChaosNeedsInProcessServer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-scenarios", "chaos-steady", "-addr", "http://127.0.0.1:1"}, &stdout, &stderr); err == nil {
		t.Fatal("chaos against -addr should fail fast")
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-scenarios", "nope"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown scenario should fail")
	}
	if err := run([]string{"-monitor", "nope", "-scenarios", "steady"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown monitor scenario should fail")
	}
}
