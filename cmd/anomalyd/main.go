// Command anomalyd trains a detector and serves it over HTTP — the
// production deployment of the paper's real-time detection scenario.
//
//	anomalyd -addr :8080 -approach sft -model bert-base-uncased
//
// Endpoints:
//
//	POST /v1/detect        {"sentence": "wms_delay is 6.0 ..."} or {"log_line": "wf=... runtime=..."}
//	POST /v1/detect/batch  {"sentences": [...]}
//	GET  /healthz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/core"
	"repro/internal/flowbench"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		approach = flag.String("approach", "sft", "sft or icl")
		model    = flag.String("model", "", "model name (defaults per approach)")
		workflow = flag.String("workflow", "1000-genome", "training workflow")
		trainN   = flag.Int("train", 1000, "training subsample size")
		epochs   = flag.Int("epochs", 3, "SFT epochs")
		preSteps = flag.Int("pretrain", 400, "pre-training steps")
		debias   = flag.Bool("debias", true, "apply the empty-sentence debiasing augmentation")
		seed     = flag.Uint64("seed", 42, "seed")
	)
	flag.Parse()

	log.Printf("training %s detector on %s (%d jobs)...", *approach, *workflow, *trainN)
	det, report, err := core.Train(core.Options{
		Approach:      core.Approach(*approach),
		Workflow:      flowbench.Workflow(*workflow),
		Model:         *model,
		TrainSize:     *trainN,
		PretrainSteps: *preSteps,
		Epochs:        *epochs,
		Debias:        *debias,
		Seed:          *seed,
	})
	if err != nil {
		log.Fatal("anomalyd: ", err)
	}
	log.Printf("detector ready: %d params, held-out %s", report.Params, report.Test)
	log.Printf("listening on %s", *addr)
	srv := &http.Server{Addr: *addr, Handler: core.NewServer(det)}
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(fmt.Errorf("anomalyd: %w", err))
	}
}
