// Command anomalyd serves anomaly detectors over HTTP — the production
// deployment of the paper's real-time detection scenario.
//
// Train once, serve many:
//
//	anomalyd -approach sft -train-out genome-sft.artifact     # train + save + exit
//	anomalyd -train-out genome-int8.artifact -quantize        # train + quantize + save
//	anomalyd -load genome-sft.artifact                        # serve in milliseconds
//	anomalyd -load genome=g.artifact,montage=m.artifact       # two models, one process
//	anomalyd -load fp32=g.artifact,int8=g-int8.artifact       # both precisions, one process
//	anomalyd -approach icl -model mistral                     # legacy: train at boot, then serve
//
// -quantize switches serving to the int8 integer-compute path: artifacts
// saved with it are ~4× smaller and serve faster at ≥99% verdict agreement
// with fp32; fp32 artifacts loaded with it are quantized at boot. A registry
// can serve fp32 and int8 variants side by side under different names (GET
// /v1/models reports each model's precision).
//
// Endpoints:
//
//	POST /v1/detect[?model=]        {"sentence": "wms_delay is 6.0 ..."} or {"log_line": "wf=... runtime=..."}
//	POST /v1/detect/batch[?model=]  {"sentences": [...]}
//	POST /v1/monitor[?model=]       raw log lines (or {"lines": [...]}) → monitor report
//	GET  /v1/models                 registered models + serving stats
//	GET  /v1/alerts                 SSE stream of alerts + trace-flagged verdicts
//	GET  /healthz
//
// With -load the daemon performs zero training steps at boot: each artifact
// (written by -train-out, sfttrain -save, or iclrun -save) is loaded into the
// model registry under its name (`name=path`, or the file's base name) and
// the first is the default route. Concurrent requests are micro-batched
// through a per-model coalescing worker pool; -max-batch, -flush, and
// -workers tune it (see docs/API.md). With -tail the daemon also follows a
// growing log file (the paper's Section IV-C loop) through the default model.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, open SSE
// streams and the tail loop end, in-flight requests finish, and only then
// are the inference workers released.
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/flowbench"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		approach = flag.String("approach", "sft", "sft or icl (training modes)")
		model    = flag.String("model", "", "model name (defaults per approach)")
		workflow = flag.String("workflow", "1000-genome", "training workflow")
		trainN   = flag.Int("train", 1000, "training subsample size")
		epochs   = flag.Int("epochs", 3, "SFT epochs")
		preSteps = flag.Int("pretrain", 400, "pre-training steps")
		debias   = flag.Bool("debias", true, "apply the empty-sentence debiasing augmentation")
		seed     = flag.Uint64("seed", 42, "seed")
		trainOut = flag.String("train-out", "", "train, write the detector artifact to this path, and exit (no serving)")
		load     = flag.String("load", "", "comma-separated detector artifacts to serve ([name=]path, first is default); skips training entirely")
		quantize = flag.Bool("quantize", false, "serve/save int8-quantized weights: with -load, quantize fp32 artifacts at load; with -train-out (or train-and-serve), quantize the trained detector")
		maxBatch = flag.Int("max-batch", 32, "max sentences per batched model invocation")
		flush    = flag.Duration("flush", 2*time.Millisecond, "coalescing flush deadline for partial batches (0 = flush when idle)")
		workers  = flag.Int("workers", 0, "inference workers per model (0 = GOMAXPROCS)")
		maxReq   = flag.Int("max-request", 0, "per-request sentence cap on /v1/detect/batch (0 = default 2048)")
		tail     = flag.String("tail", "", "log file to follow and classify through the default model (empty = serve only)")
		tailPoll = flag.Duration("tail-poll", 500*time.Millisecond, "poll interval while waiting for new -tail data")
		strict   = flag.Bool("strict", false, "abort -tail on the first malformed line instead of skipping it")
	)
	flag.Parse()
	if *trainOut != "" && *load != "" {
		log.Fatal("anomalyd: -train-out and -load are mutually exclusive")
	}

	cfg := core.BatchConfig{
		MaxBatch: *maxBatch, FlushDelay: *flush, Workers: *workers, MaxRequest: *maxReq,
	}
	reg := core.NewRegistry()

	switch {
	case *load != "":
		// Serving mode: load pre-trained artifacts, zero training at boot.
		for _, spec := range strings.Split(*load, ",") {
			name, path := splitModelSpec(spec)
			start := time.Now()
			det, err := core.LoadDetectorFile(path)
			if err != nil {
				log.Fatal("anomalyd: ", err)
			}
			// int8 artifacts come back quantized already; -quantize converts
			// fp32 artifacts at load so mixed fleets can be forced to int8.
			if *quantize && core.DetectorPrecision(det) != core.PrecisionInt8 {
				if det, err = core.QuantizeDetector(det); err != nil {
					log.Fatal("anomalyd: ", err)
				}
			}
			if err := reg.Add(name, det, cfg); err != nil {
				log.Fatal("anomalyd: ", err)
			}
			log.Printf("loaded %s (%s, %s) from %s in %s",
				name, det.Approach(), core.DetectorPrecision(det), path, time.Since(start).Round(time.Millisecond))
		}
	default:
		// Training modes: -train-out saves and exits; otherwise the trained
		// detector is served as the default model (the pre-artifact behavior).
		log.Printf("training %s detector on %s (%d jobs)...", *approach, *workflow, *trainN)
		det, report, err := core.Train(core.Options{
			Approach:      core.Approach(*approach),
			Workflow:      flowbench.Workflow(*workflow),
			Model:         *model,
			TrainSize:     *trainN,
			PretrainSteps: *preSteps,
			Epochs:        *epochs,
			Debias:        *debias,
			Seed:          *seed,
		})
		if err != nil {
			log.Fatal("anomalyd: ", err)
		}
		log.Printf("detector ready: %d params, held-out %s", report.Params, report.Test)
		if *quantize {
			if det, err = core.QuantizeDetector(det); err != nil {
				log.Fatal("anomalyd: ", err)
			}
			// The held-out metrics above were measured on the fp32 weights
			// inside Train; what saves/serves from here on is int8. Use
			// sfttrain/iclrun -quantize for metrics measured on the
			// quantized detector itself.
			log.Print("detector quantized to int8 (integer inference path; held-out metrics above are the fp32 model's)")
		}
		if *trainOut != "" {
			if err := core.SaveDetectorFile(*trainOut, det); err != nil {
				log.Fatal("anomalyd: ", err)
			}
			log.Printf("artifact written to %s; serve it with: anomalyd -load %s", *trainOut, *trainOut)
			return
		}
		if err := reg.Add(core.DefaultModel, det, cfg); err != nil {
			log.Fatal("anomalyd: ", err)
		}
	}

	// Signals are only captured once there is something to wind down.
	// Installing the handler before a minutes-long training phase would
	// swallow Ctrl-C and make the process unkillable until training ends.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	handler := core.NewServerRegistry(reg)

	tailDone := make(chan struct{})
	if *tail == "" {
		close(tailDone)
	} else {
		go func() {
			defer close(tailDone)
			tailLog(ctx, handler, *tail, *tailPoll, *strict)
		}()
	}

	log.Printf("listening on %s, models %v (max batch %d, flush %s)", *addr, reg.Names(), *maxBatch, *flush)
	srv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		handler.Close()
		log.Fatal("anomalyd: ", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop the SSE streams and tail loop so Shutdown's
	// wait on active connections can complete, let in-flight requests
	// finish, then release the inference workers. log.Fatal here would skip
	// all of this and leak the worker pool.
	log.Print("shutting down...")
	stop()
	handler.CloseStreams()
	<-tailDone
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("anomalyd: shutdown: %v", err)
	}
	handler.Close()
	log.Print("bye")
}

// splitModelSpec parses one -load entry: "name=path" serves path under name;
// a bare path serves under the file's base name without extension.
func splitModelSpec(spec string) (name, path string) {
	if eq := strings.IndexByte(spec, '='); eq >= 0 {
		return spec[:eq], spec[eq+1:]
	}
	base := filepath.Base(spec)
	if ext := filepath.Ext(base); ext != "" {
		base = strings.TrimSuffix(base, ext)
	}
	return base, spec
}

// tailLog follows path like `tail -f`, feeding appended lines through the
// server's streaming monitor until ctx is cancelled. Alerts are logged and
// published to /v1/alerts subscribers.
func tailLog(ctx context.Context, srv *core.Server, path string, poll time.Duration, strict bool) {
	f, err := os.Open(path)
	if err != nil {
		log.Printf("anomalyd: tail: %v", err)
		return
	}
	defer f.Close()
	log.Printf("tailing %s (poll %s)", path, poll)
	consoleSink := core.SinkFuncs{
		OnAlert: func(a core.Alert) {
			log.Printf("ALERT trace=%d node=%d %s [%s]", a.Job.TraceID, a.Job.NodeIndex, a.Result, a.Line)
		},
		OnTrace: func(v core.TraceVerdict) {
			log.Printf("TRACE FLAGGED trace=%d anomalous=%d/%d (%.0f%%)",
				v.TraceID, v.Anomalous, v.Jobs, 100*v.Fraction())
		},
	}
	report, err := srv.MonitorIngest(ctx, &follower{ctx: ctx, f: f, poll: poll}, strict, consoleSink)
	if err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("anomalyd: tail: %v", err)
	}
	log.Printf("tail done: %d processed, %d alerts, %d malformed, %d traces flagged",
		report.Processed, report.Alerts, report.Malformed, report.FlaggedTraces)
}

// follower turns a growing file into a blocking reader: at end-of-file it
// polls for appended data instead of returning io.EOF, until ctx is done.
type follower struct {
	ctx  context.Context
	f    *os.File
	poll time.Duration
}

func (fr *follower) Read(p []byte) (int, error) {
	for {
		n, err := fr.f.Read(p)
		if n > 0 {
			return n, nil
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		select {
		case <-fr.ctx.Done():
			return 0, io.EOF
		case <-time.After(fr.poll):
		}
	}
}
