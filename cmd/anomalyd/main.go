// Command anomalyd serves anomaly detectors over HTTP — the production
// deployment of the paper's real-time detection scenario.
//
// Train once, serve many:
//
//	anomalyd -approach sft -train-out genome-sft.artifact     # train + save + exit
//	anomalyd -train-out genome-int8.artifact -quantize        # train + quantize + save
//	anomalyd -load genome-sft.artifact                        # serve in milliseconds
//	anomalyd -load genome=g.artifact,montage=m.artifact       # two models, one process
//	anomalyd -load fp32=g.artifact,int8=g-int8.artifact       # both precisions, one process
//	anomalyd -approach icl -model mistral                     # legacy: train at boot, then serve
//
// -quantize switches serving to the int8 integer-compute path: artifacts
// saved with it are ~4× smaller and serve faster at ≥99% verdict agreement
// with fp32; fp32 artifacts loaded with it are quantized at boot. A registry
// can serve fp32 and int8 variants side by side under different names (GET
// /v1/models reports each model's precision).
//
// Endpoints:
//
//	POST /v1/detect[?model=]        {"sentence": "wms_delay is 6.0 ..."} or {"log_line": "wf=... runtime=..."}
//	POST /v1/detect/batch[?model=]  {"sentences": [...]}
//	POST /v1/monitor[?model=]       raw log lines (or {"lines": [...]}) → monitor report
//	GET  /v1/models                 registered models + serving stats
//	GET  /v1/alerts                 SSE stream of alerts + trace-flagged verdicts
//	GET  /healthz                   liveness (always 200 while the process serves)
//	GET  /readyz                    readiness: 503 while any model is saturated or browned out
//
// Overload safety: -shed-depth bounds each model's queue (excess enqueues are
// answered 429 with Retry-After / Retry-After-Ms), -max-queue-wait sheds
// stale queued work at dequeue, -deadline enforces a server-side request
// deadline (clients override per request with ?deadline_ms=), and -brownout
// degrades batch detection to a calibrated PCA baseline under sustained
// saturation (responses carry "degraded": true). -faults arms a deterministic
// fault-injection campaign (see internal/faults) for chaos drills; see
// docs/RELIABILITY.md.
//
// -cascade arms two-stage inference: a calibrated cheap scorer (ngram — a
// supervised count table over the tokenizer's magnitude buckets — pca, or
// iforest) short-circuits confidently-normal lines in front of the
// transformer, always on (unlike brownout, which only engages under
// saturation). -cascade-recall sets the calibration target (default 0.995);
// per-model gating counters appear under "stats" in GET /v1/models. Gates
// fitted at training time travel inside the artifact (-train-out -cascade
// ngram) and re-arm automatically on -load; see docs/PERFORMANCE.md.
//
// With -load the daemon performs zero training steps at boot: each artifact
// (written by -train-out, sfttrain -save, or iclrun -save) is loaded into the
// model registry under its name (`name=path`, or the file's base name) and
// the first is the default route. Concurrent requests are micro-batched
// through a per-model coalescing worker pool; -max-batch, -flush, and
// -workers tune it (see docs/API.md). With -tail the daemon also follows a
// growing log file (the paper's Section IV-C loop) through the default model.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, open SSE
// streams and the tail loop end, in-flight requests finish, and only then
// are the inference workers released.
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/flowbench"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		approach     = flag.String("approach", "sft", "sft or icl (training modes)")
		model        = flag.String("model", "", "model name (defaults per approach)")
		workflow     = flag.String("workflow", "1000-genome", "training workflow")
		trainN       = flag.Int("train", 1000, "training subsample size")
		epochs       = flag.Int("epochs", 3, "SFT epochs")
		preSteps     = flag.Int("pretrain", 400, "pre-training steps")
		debias       = flag.Bool("debias", true, "apply the empty-sentence debiasing augmentation")
		seed         = flag.Uint64("seed", 42, "seed")
		trainOut     = flag.String("train-out", "", "train, write the detector artifact to this path, and exit (no serving)")
		load         = flag.String("load", "", "comma-separated detector artifacts to serve ([name=]path, first is default); skips training entirely")
		quantize     = flag.Bool("quantize", false, "serve/save int8-quantized weights: with -load, quantize fp32 artifacts at load; with -train-out (or train-and-serve), quantize the trained detector")
		maxBatch     = flag.Int("max-batch", 32, "max sentences per batched model invocation")
		flush        = flag.Duration("flush", 2*time.Millisecond, "coalescing flush deadline for partial batches (0 = flush when idle)")
		workers      = flag.Int("workers", 0, "inference workers per model (0 = GOMAXPROCS)")
		maxReq       = flag.Int("max-request", 0, "per-request sentence cap on /v1/detect/batch (0 = default 2048)")
		tail         = flag.String("tail", "", "log file to follow and classify through the default model (empty = serve only)")
		tailPoll     = flag.Duration("tail-poll", 500*time.Millisecond, "poll interval while waiting for new -tail data")
		strict       = flag.Bool("strict", false, "abort -tail on the first malformed line instead of skipping it")
		shedDepth    = flag.Int("shed-depth", 0, "admission-control queue depth: enqueues beyond it are shed with 429 + Retry-After (0 = off)")
		maxQueueWait = flag.Duration("max-queue-wait", 0, "shed queued requests older than this at dequeue (0 = off)")
		deadline     = flag.Duration("deadline", 0, "default per-request deadline, overridable per request via ?deadline_ms (0 = none)")
		brownout     = flag.Int("brownout", 0, "queue depth that engages brownout: /v1/detect/batch answers degraded from a calibrated PCA baseline until load recedes (0 = off)")
		brownHold    = flag.Duration("brownout-hold", 0, "how long the queue must stay saturated before brownout engages (0 = default 250ms)")
		faultsSpec   = flag.String("faults", "", `fault-injection campaign armed at listen, e.g. "seed=7,every=5,kinds=latency+error,window=10s:30s,path=/v1/" — chaos drills only`)
		cascScorer   = flag.String("cascade", "", "two-stage inference: stage-1 scorer (ngram, pca, or iforest) short-circuits confidently-normal lines before the transformer (empty = off)")
		cascRecall   = flag.Float64("cascade-recall", cascade.DefaultTargetRecall, "cascade calibration target: fraction of flagged calibration lines that must still reach the transformer")
		instance     = flag.String("instance", "", "replica name stamped on responses (X-Replica) and /metrics (repro_instance_info) when serving behind anomalygw")
	)
	flag.Parse()
	if *trainOut != "" && *load != "" {
		log.Fatal("anomalyd: -train-out and -load are mutually exclusive")
	}

	cfg := core.BatchConfig{
		MaxBatch: *maxBatch, FlushDelay: *flush, Workers: *workers, MaxRequest: *maxReq,
		ShedQueueDepth: *shedDepth, MaxQueueWait: *maxQueueWait,
		DefaultDeadline: *deadline, BrownoutDepth: *brownout, BrownoutHold: *brownHold,
	}
	reg := core.NewRegistry()
	// dets remembers each served detector for post-registration cascade
	// calibration; gates carries gates recovered from v3 artifacts.
	dets := make(map[string]core.Detector)
	gates := make(map[string]*cascade.Gate)

	switch {
	case *load != "":
		// Serving mode: load pre-trained artifacts, zero training at boot.
		for _, spec := range strings.Split(*load, ",") {
			name, path := splitModelSpec(spec)
			start := time.Now()
			det, gate, err := core.LoadDetectorFileWithCascade(path)
			if err != nil {
				log.Fatal("anomalyd: ", err)
			}
			// int8 artifacts come back quantized already; -quantize converts
			// fp32 artifacts at load so mixed fleets can be forced to int8.
			if *quantize && core.DetectorPrecision(det) != core.PrecisionInt8 {
				if det, err = core.QuantizeDetector(det); err != nil {
					log.Fatal("anomalyd: ", err)
				}
			}
			if err := reg.Add(name, det, cfg); err != nil {
				log.Fatal("anomalyd: ", err)
			}
			dets[name], gates[name] = det, gate
			log.Printf("loaded %s (%s, %s) from %s in %s",
				name, det.Approach(), core.DetectorPrecision(det), path, time.Since(start).Round(time.Millisecond))
		}
	default:
		// Training modes: -train-out saves and exits; otherwise the trained
		// detector is served as the default model (the pre-artifact behavior).
		log.Printf("training %s detector on %s (%d jobs)...", *approach, *workflow, *trainN)
		det, report, err := core.Train(core.Options{
			Approach:      core.Approach(*approach),
			Workflow:      flowbench.Workflow(*workflow),
			Model:         *model,
			TrainSize:     *trainN,
			PretrainSteps: *preSteps,
			Epochs:        *epochs,
			Debias:        *debias,
			Seed:          *seed,
		})
		if err != nil {
			log.Fatal("anomalyd: ", err)
		}
		log.Printf("detector ready: %d params, held-out %s", report.Params, report.Test)
		if *quantize {
			if det, err = core.QuantizeDetector(det); err != nil {
				log.Fatal("anomalyd: ", err)
			}
			// The held-out metrics above were measured on the fp32 weights
			// inside Train; what saves/serves from here on is int8. Use
			// sfttrain/iclrun -quantize for metrics measured on the
			// quantized detector itself.
			log.Print("detector quantized to int8 (integer inference path; held-out metrics above are the fp32 model's)")
		}
		if *trainOut != "" {
			// A gate fitted here ships inside the artifact, so -load re-arms
			// the cascade without refitting (thresholds are calibrated against
			// this exact detector's verdicts).
			var gate *cascade.Gate
			if *cascScorer != "" {
				ds := flowbench.Generate(flowbench.Workflow(*workflow), *seed)
				gate, err = core.FitCascade(det, cascade.Config{
					Scorer: *cascScorer, TargetRecall: *cascRecall, Seed: *seed,
				}, ds.Train)
				if err != nil {
					log.Fatal("anomalyd: ", err)
				}
				log.Printf("cascade calibrated: %s gate, target recall %.3f (%d calibration positives)",
					gate.Scorer(), gate.TargetRecall(), gate.Positives())
			}
			if err := core.SaveDetectorFileWithCascade(*trainOut, det, gate); err != nil {
				log.Fatal("anomalyd: ", err)
			}
			log.Printf("artifact written to %s; serve it with: anomalyd -load %s", *trainOut, *trainOut)
			return
		}
		if err := reg.Add(core.DefaultModel, det, cfg); err != nil {
			log.Fatal("anomalyd: ", err)
		}
		dets[core.DefaultModel] = det
	}

	// Cascade arming: an explicit -cascade fits fresh gates against each
	// served detector's own verdicts on the training split; otherwise any
	// gate that traveled inside a v3 artifact re-arms as saved.
	if *cascScorer != "" {
		ds := flowbench.Generate(flowbench.Workflow(*workflow), *seed)
		ccfg := cascade.Config{Scorer: *cascScorer, TargetRecall: *cascRecall, Seed: *seed}
		for _, name := range reg.Names() {
			g, err := core.FitCascade(dets[name], ccfg, ds.Train)
			if err != nil {
				log.Fatal("anomalyd: ", err)
			}
			if err := reg.SetCascade(name, g); err != nil {
				log.Fatal("anomalyd: ", err)
			}
			log.Printf("cascade armed on %s: %s gate, target recall %.3f (%d calibration positives)",
				name, g.Scorer(), g.TargetRecall(), g.Positives())
		}
	} else {
		for name, g := range gates {
			if g == nil {
				continue
			}
			if err := reg.SetCascade(name, g); err != nil {
				log.Fatal("anomalyd: ", err)
			}
			log.Printf("cascade armed on %s from artifact: %s gate, target recall %.3f",
				name, g.Scorer(), g.TargetRecall())
		}
	}

	// Brownout needs somewhere to degrade to: one cheap calibrated baseline,
	// fitted on the training workflow's synthetic split, shared by every
	// served model (scoring is read-only).
	if *brownout > 0 {
		ds := flowbench.Generate(flowbench.Workflow(*workflow), *seed)
		fb, err := core.FitFallback("pca", ds.Train, *seed)
		if err != nil {
			log.Fatal("anomalyd: ", err)
		}
		for _, name := range reg.Names() {
			if err := reg.SetFallback(name, fb); err != nil {
				log.Fatal("anomalyd: ", err)
			}
		}
		log.Printf("brownout armed: degrade to pca baseline at queue depth %d", *brownout)
	}

	// Signals are only captured once there is something to wind down.
	// Installing the handler before a minutes-long training phase would
	// swallow Ctrl-C and make the process unkillable until training ends.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	handler := core.NewServerRegistry(reg)
	if *instance != "" {
		handler.SetInstance(*instance)
	}
	var root http.Handler = handler
	if *faultsSpec != "" {
		fc, err := faults.Parse(*faultsSpec)
		if err != nil {
			log.Fatal("anomalyd: ", err)
		}
		inj := faults.New(fc)
		root = inj.Wrap(handler)
		inj.Arm()
		log.Printf("fault injection armed: %s", *faultsSpec)
	}

	tailDone := make(chan struct{})
	if *tail == "" {
		close(tailDone)
	} else {
		go func() {
			defer close(tailDone)
			tailLog(ctx, handler, *tail, *tailPoll, *strict)
		}()
	}

	log.Printf("listening on %s, models %v (max batch %d, flush %s)", *addr, reg.Names(), *maxBatch, *flush)
	srv := &http.Server{Addr: *addr, Handler: root}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		handler.Close()
		log.Fatal("anomalyd: ", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop the SSE streams and tail loop so Shutdown's
	// wait on active connections can complete, let in-flight requests
	// finish, then release the inference workers. log.Fatal here would skip
	// all of this and leak the worker pool.
	log.Print("shutting down...")
	stop()
	handler.CloseStreams()
	<-tailDone
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("anomalyd: shutdown: %v", err)
	}
	handler.Close()
	log.Print("bye")
}

// splitModelSpec parses one -load entry: "name=path" serves path under name;
// a bare path serves under the file's base name without extension.
func splitModelSpec(spec string) (name, path string) {
	if eq := strings.IndexByte(spec, '='); eq >= 0 {
		return spec[:eq], spec[eq+1:]
	}
	base := filepath.Base(spec)
	if ext := filepath.Ext(base); ext != "" {
		base = strings.TrimSuffix(base, ext)
	}
	return base, spec
}

// tailLog follows path like `tail -f`, feeding appended lines through the
// server's streaming monitor until ctx is cancelled. Alerts are logged and
// published to /v1/alerts subscribers.
func tailLog(ctx context.Context, srv *core.Server, path string, poll time.Duration, strict bool) {
	f, err := os.Open(path)
	if err != nil {
		log.Printf("anomalyd: tail: %v", err)
		return
	}
	defer f.Close()
	log.Printf("tailing %s (poll %s)", path, poll)
	consoleSink := core.SinkFuncs{
		OnAlert: func(a core.Alert) {
			log.Printf("ALERT trace=%d node=%d %s [%s]", a.Job.TraceID, a.Job.NodeIndex, a.Result, a.Line)
		},
		OnTrace: func(v core.TraceVerdict) {
			log.Printf("TRACE FLAGGED trace=%d anomalous=%d/%d (%.0f%%)",
				v.TraceID, v.Anomalous, v.Jobs, 100*v.Fraction())
		},
	}
	report, err := srv.MonitorIngest(ctx, &follower{ctx: ctx, f: f, poll: poll}, strict, consoleSink)
	if err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("anomalyd: tail: %v", err)
	}
	log.Printf("tail done: %d processed, %d alerts, %d malformed, %d traces flagged",
		report.Processed, report.Alerts, report.Malformed, report.FlaggedTraces)
}

// follower turns a growing file into a blocking reader: at end-of-file it
// polls for appended data instead of returning io.EOF, until ctx is done.
type follower struct {
	ctx  context.Context
	f    *os.File
	poll time.Duration
}

func (fr *follower) Read(p []byte) (int, error) {
	for {
		n, err := fr.f.Read(p)
		if n > 0 {
			return n, nil
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		select {
		case <-fr.ctx.Done():
			return 0, io.EOF
		case <-time.After(fr.poll):
		}
	}
}
