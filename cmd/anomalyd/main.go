// Command anomalyd trains a detector and serves it over HTTP — the
// production deployment of the paper's real-time detection scenario.
//
//	anomalyd -addr :8080 -approach sft -model bert-base-uncased
//
// Endpoints:
//
//	POST /v1/detect        {"sentence": "wms_delay is 6.0 ..."} or {"log_line": "wf=... runtime=..."}
//	POST /v1/detect/batch  {"sentences": [...]}
//	GET  /healthz
//
// Concurrent requests are micro-batched through a coalescing worker pool;
// -max-batch, -flush, and -workers tune it (see docs/API.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/flowbench"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		approach = flag.String("approach", "sft", "sft or icl")
		model    = flag.String("model", "", "model name (defaults per approach)")
		workflow = flag.String("workflow", "1000-genome", "training workflow")
		trainN   = flag.Int("train", 1000, "training subsample size")
		epochs   = flag.Int("epochs", 3, "SFT epochs")
		preSteps = flag.Int("pretrain", 400, "pre-training steps")
		debias   = flag.Bool("debias", true, "apply the empty-sentence debiasing augmentation")
		seed     = flag.Uint64("seed", 42, "seed")
		maxBatch = flag.Int("max-batch", 32, "max sentences per batched model invocation")
		flush    = flag.Duration("flush", 2*time.Millisecond, "coalescing flush deadline for partial batches (0 = flush when idle)")
		workers  = flag.Int("workers", 0, "inference workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	log.Printf("training %s detector on %s (%d jobs)...", *approach, *workflow, *trainN)
	det, report, err := core.Train(core.Options{
		Approach:      core.Approach(*approach),
		Workflow:      flowbench.Workflow(*workflow),
		Model:         *model,
		TrainSize:     *trainN,
		PretrainSteps: *preSteps,
		Epochs:        *epochs,
		Debias:        *debias,
		Seed:          *seed,
	})
	if err != nil {
		log.Fatal("anomalyd: ", err)
	}
	log.Printf("detector ready: %d params, held-out %s", report.Params, report.Test)
	handler := core.NewServerWith(det, core.BatchConfig{
		MaxBatch: *maxBatch, FlushDelay: *flush, Workers: *workers,
	})
	defer handler.Close()
	log.Printf("listening on %s (max batch %d, flush %s)", *addr, *maxBatch, *flush)
	srv := &http.Server{Addr: *addr, Handler: handler}
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(fmt.Errorf("anomalyd: %w", err))
	}
}
