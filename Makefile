# CI-style entry points. `make check` is the full gate: formatting, vet,
# build, tests — the tier-1 verify plus hygiene.

GO ?= go

# The kernel + end-to-end serving benchmarks `make bench` runs and records to
# BENCH_5.json: tensor kernels (fp32 and int8), the zero-allocation hot
# paths, the batched serving pairs (sequential vs batch at the same work per
# op), the fp32-vs-int8 serving pairs at default-model scale (SFTServe*,
# ICLServe*, KVCacheDecode*, MonitorServe*), the streaming-monitor pair
# (per-line vs chunked micro-batches on a 1k-line log), the quantization
# conversion itself (QuantizeInt8 also records fp32_B/int8_B model bytes),
# and the artifact startup story — StartupTrain vs StartupLoad is the same
# detector arriving by boot-time retraining vs `anomalyd -load`, and
# RegistrySwap is hot-swap latency (install + drain) under request load.
BENCH_PATTERN := MatMul128|MatMulBlockedTall|MatMulQ8Tall|AttentionForward|DecoderNextToken|KVCacheDecode|KVCacheDecodeInt8|EncodeBatch|SFTPredictSequential8|SFTPredictBatch8|SFTPredictBatch32|ICLClassifySequential8|ICLClassifyBatch8|SFTServeBatch8|SFTServeBatch8Int8|ICLServeBatch8|ICLServeBatch8Int8|QuantizeInt8|ServerCoalesced|Monitor|MonitorSequential|MonitorServe|MonitorServeInt8|StartupTrain|StartupLoad|RegistrySwap
BENCH_OUT := BENCH_5.json

# The scenario suite `make bench-scenarios` records to BENCH_6.json: every
# traffic scenario (docs/SCENARIOS.md) replayed over HTTP against an
# in-process anomalyd, with the PCA/isolation-forest seed baselines scored on
# the same streams. loadlab-smoke is the seconds-scale CI subset.
SCENARIO_OUT := BENCH_6.json

.PHONY: check fmt vet build test bench bench-all bench-scenarios loadlab-smoke

check: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the kernel and serving benchmarks with allocation reporting and
# records ns/op, B/op, allocs/op to $(BENCH_OUT) — the repo's perf
# trajectory, one file per perf PR. bench-all is the full sweep including the
# per-artifact experiment benchmarks (slow, not recorded).
bench:
	@$(GO) test -run '^$$' -bench '^Benchmark($(BENCH_PATTERN))$$' -benchmem . > bench.out || { cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	@awk -v date="$$(date -u +%FT%TZ)" -f scripts/benchjson.awk bench.out > $(BENCH_OUT)
	@rm -f bench.out
	@echo "recorded $(BENCH_OUT)"

bench-all:
	$(GO) test -bench=. -benchmem

# bench-scenarios trains the reference detector in-process, replays all six
# scenarios (detect-batch path, plus the monitor path for steady), scores the
# seed baselines on the identical streams, and records $(SCENARIO_OUT).
bench-scenarios:
	$(GO) run ./cmd/loadlab -out $(SCENARIO_OUT)
	@echo "recorded $(SCENARIO_OUT)"

# loadlab-smoke is the CI gate: a tiny detector, two scenarios, high speed —
# seconds, not minutes. The config matches the recorded loadlab-smoke-baseline.json
# baseline, so `scripts/benchdiff loadlab-smoke-baseline.json loadlab-smoke.json`
# diffs like for like (the deterministic columns — events, dedup_saved,
# baseline quality — should not move at all).
loadlab-smoke:
	$(GO) run ./cmd/loadlab -events 200 -speed 200 -train 150 -pretrain 60 -epochs 1 \
		-workflow predict-future-sales -seed 6 -scenarios steady,near-dup \
		-out loadlab-smoke.json
