# CI-style entry points. `make check` is the full gate: formatting, vet,
# build, tests — the tier-1 verify plus hygiene.

GO ?= go

.PHONY: check fmt vet build test bench

check: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem
