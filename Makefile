# CI-style entry points. `make check` is the full gate: formatting, vet,
# build, tests — the tier-1 verify plus hygiene.

GO ?= go

# The kernel + end-to-end serving benchmarks `make bench` runs and records to
# BENCH_5.json: tensor kernels (fp32 and int8), the zero-allocation hot
# paths, the batched serving pairs (sequential vs batch at the same work per
# op), the fp32-vs-int8 serving pairs at default-model scale (SFTServe*,
# ICLServe*, KVCacheDecode*, MonitorServe*), the streaming-monitor pair
# (per-line vs chunked micro-batches on a 1k-line log), the quantization
# conversion itself (QuantizeInt8 also records fp32_B/int8_B model bytes),
# and the artifact startup story — StartupTrain vs StartupLoad is the same
# detector arriving by boot-time retraining vs `anomalyd -load`, and
# RegistrySwap is hot-swap latency (install + drain) under request load.
BENCH_PATTERN := MatMul128|MatMulBlockedTall|MatMulQ8Tall|AttentionForward|DecoderNextToken|KVCacheDecode|KVCacheDecodeInt8|EncodeBatch|SFTPredictSequential8|SFTPredictBatch8|SFTPredictBatch32|ICLClassifySequential8|ICLClassifyBatch8|SFTServeBatch8|SFTServeBatch8Int8|ICLServeBatch8|ICLServeBatch8Int8|QuantizeInt8|ServerCoalesced|Monitor|MonitorSequential|MonitorServe|MonitorServeInt8|MonitorServeCascadeOff|MonitorServeCascade|StartupTrain|StartupLoad|RegistrySwap
BENCH_OUT := BENCH_5.json

# The scenario suite `make bench-scenarios` records to BENCH_9.json: every
# traffic scenario (docs/SCENARIOS.md) replayed over HTTP against an
# in-process anomalyd, with the seed baselines (PCA, isolation forest, MLP
# autoencoder) scored on the same streams, plus cascade off/on paired rows
# (`-cascade ngram`): each non-chaos scenario replayed a second time with the
# calibrated stage-1 gate armed, recording lines/sec, verdict agreement, and
# pass fraction (docs/PERFORMANCE.md). loadlab-smoke and cascade-smoke are
# the seconds-scale CI subsets.
SCENARIO_OUT := BENCH_9.json

# The chaos suite `make bench-chaos` records to BENCH_7.json: every scenario
# replayed as its chaos variant (deterministic faults over the middle third
# of the schedule, docs/RELIABILITY.md) against an in-process server running
# with admission control, deadlines, and brownout degradation armed, driven
# through the retrying resilience client. Rows carry the failure taxonomy
# (err_timeout/err_shed/err_server/err_transport), server overload counters
# (server_shed/server_expired/server_degraded), and pre/during/post-window
# p99. chaos-smoke is the seconds-scale CI subset.
CHAOS_OUT := BENCH_7.json

# The replicated-serving suite `make bench-gateway` records to BENCH_10.json:
# every scenario replayed twice — once against a single in-process anomalyd,
# once against three replicas behind the anomalygw gateway (consistent-hash
# trace routing, health-checked ejection, hedged retries; docs/RELIABILITY.md)
# — as paired rows (`label` vs `label+gw`) carrying lines/sec, client p99,
# and the error rate, plus the monitor path both ways for steady (the fleet-
# merged flagged-trace counts must match the single node's). gateway-smoke is
# the seconds-scale CI subset.
GATEWAY_OUT := BENCH_10.json

.PHONY: check fmt vet build test lint fuzz-smoke bench bench-all bench-scenarios loadlab-smoke cascade-smoke bench-chaos chaos-smoke bench-gateway gateway-smoke

check: fmt vet build test lint

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs reprolint, the repo's own go/analysis suite (internal/lint):
# determinism, hotalloc, locksafe, and ctxflow over every package. The
# binary is built once into bin/ and reused; see docs/STATIC_ANALYSIS.md
# for the analyzer catalog and the //lint:ignore suppression policy.
lint:
	@mkdir -p bin
	@$(GO) build -o bin/reprolint ./cmd/reprolint
	bin/reprolint ./...

# fuzz-smoke gives each native fuzz target a short budget — enough to catch
# parser regressions on the corpus frontier without CI-scale fuzzing time.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/tokenizer -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/faults -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/logparse -run '^$$' -fuzz '^FuzzParseSentence$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/logparse -run '^$$' -fuzz '^FuzzParseLogLine$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/logparse -run '^$$' -fuzz '^FuzzParseCSVRow$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzLoadDetector$$' -fuzztime $(FUZZTIME)

# bench runs the kernel and serving benchmarks with allocation reporting and
# records ns/op, B/op, allocs/op to $(BENCH_OUT) — the repo's perf
# trajectory, one file per perf PR. bench-all is the full sweep including the
# per-artifact experiment benchmarks (slow, not recorded).
bench:
	@$(GO) test -run '^$$' -bench '^Benchmark($(BENCH_PATTERN))$$' -benchmem . > bench.out || { cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	@awk -v date="$$(date -u +%FT%TZ)" -f scripts/benchjson.awk bench.out > $(BENCH_OUT)
	@rm -f bench.out
	@echo "recorded $(BENCH_OUT)"

bench-all:
	$(GO) test -bench=. -benchmem

# bench-scenarios trains the reference detector in-process, replays all six
# scenarios (detect-batch path, plus the monitor path for steady), scores the
# seed baselines on the identical streams, replays each scenario again with
# the stage-1 cascade gate armed (paired +cascade rows), and records
# $(SCENARIO_OUT). Speed 50 keeps the gated replays compute-bound — at the
# default speed 10 the cascade runs finish inside the paced schedule and the
# recorded lines/sec clips at the arrival rate, understating the speedup.
# Recall 0.9999 is the identity-grade calibration: at the full 2000-event
# scale it holds trace flags bit-identical on all six scenarios, where the
# serving default 0.995 leaves a boundary trace flipping on two of them
# (docs/PERFORMANCE.md).
bench-scenarios:
	$(GO) run ./cmd/loadlab -speed 50 -cascade ngram -cascade-recall 0.9999 -out $(SCENARIO_OUT)
	@echo "recorded $(SCENARIO_OUT)"

# loadlab-smoke is the CI gate: a tiny detector, two scenarios, high speed —
# seconds, not minutes. The config matches the recorded loadlab-smoke-baseline.json
# baseline, so `scripts/benchdiff loadlab-smoke-baseline.json loadlab-smoke.json`
# diffs like for like (the deterministic columns — events, dedup_saved,
# baseline quality — should not move at all).
loadlab-smoke:
	$(GO) run ./cmd/loadlab -events 200 -speed 200 -train 150 -pretrain 60 -epochs 1 \
		-workflow predict-future-sales -seed 6 -scenarios steady,near-dup \
		-out loadlab-smoke.json

# cascade-smoke is the two-stage inference CI gate: the loadlab-smoke config
# replayed with the calibrated ngram gate armed, so every scenario lands as
# an off/on row pair carrying lines/sec, verdict agreement, and pass
# fraction. Diffs against the recorded cascade-smoke-baseline.json via
# `scripts/benchdiff cascade-smoke-baseline.json cascade-smoke.json`: the
# deterministic columns (events, agreement, pass fraction, trace flags)
# should not move at all; lines/sec moves with the runner.
cascade-smoke:
	$(GO) run ./cmd/loadlab -events 200 -speed 200 -train 400 -pretrain 120 -epochs 2 \
		-workflow 1000-genome -seed 9 -scenarios steady,near-dup -cascade ngram \
		-out cascade-smoke.json
	scripts/benchdiff cascade-smoke-baseline.json cascade-smoke.json

# bench-chaos replays every scenario as its chaos variant with the full
# overload stack on. Speed 2 keeps each scenario's fault window hundreds of
# milliseconds wide — heavy compression would shrink it below arrival jitter
# and the campaign would never fire. The 20ms brownout hold matches the
# compressed timescale: bursts that would saturate a production queue for
# seconds last tens of milliseconds here, so the default 250ms hold would
# never see sustained saturation and the degraded tier would never engage.
bench-chaos:
	$(GO) run ./cmd/loadlab -chaos -retries -shed-depth 64 -brownout 48 -brownout-hold 20ms \
		-deadline-ms 500 -speed 2 -monitor none -baselines none -out $(CHAOS_OUT)
	@echo "recorded $(CHAOS_OUT)"

# chaos-smoke is the CI gate: one chaos scenario, tiny detector, real-time
# schedule (~0.5s) — seconds end to end. Diffs against the recorded
# chaos-smoke-baseline.json: deterministic columns (events, requests,
# faults_injected) should not move; latency and shed columns move with the
# runner.
chaos-smoke:
	$(GO) run ./cmd/loadlab -events 200 -speed 1 -train 150 -pretrain 60 -epochs 1 \
		-workflow predict-future-sales -seed 6 -scenarios chaos-steady -monitor none -baselines none \
		-shed-depth 64 -brownout 48 -deadline-ms 500 -retries \
		-out chaos-smoke.json

# bench-gateway replays every scenario single-node vs a 3-replica gateway
# fleet (paired rows into $(GATEWAY_OUT)). Speed 2 keeps the open-loop
# arrival rate near fleet capacity: the gateway ejects saturated replicas
# (503 /readyz) and sheds at the boundary, so an over-saturating schedule —
# where the single node merely queues — would record mostly-429 gateway rows
# and shed-inflated lines/sec instead of a like-for-like comparison at a
# near-zero error budget.
bench-gateway:
	$(GO) run ./cmd/loadlab -speed 2 -gateway 3 -baselines none -out $(GATEWAY_OUT)
	@echo "recorded $(GATEWAY_OUT)"

# gateway-smoke is the replicated-serving CI gate: the loadlab-smoke config
# with three replicas behind the gateway, paired single-node vs +gw rows in
# seconds. Diffs against the recorded gateway-smoke-baseline.json via
# scripts/benchdiff: deterministic columns (events, requests, replicas, the
# monitor path's alerts and flagged traces) should not move; lines/sec and
# latency move with the runner.
gateway-smoke:
	$(GO) run ./cmd/loadlab -events 200 -speed 200 -train 150 -pretrain 60 -epochs 1 \
		-workflow predict-future-sales -seed 6 -scenarios steady,near-dup -gateway 3 \
		-baselines none -out gateway-smoke.json
	scripts/benchdiff gateway-smoke-baseline.json gateway-smoke.json
