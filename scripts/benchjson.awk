# benchjson.awk — convert `go test -bench -benchmem` output into the
# BENCH_N.json record the repo keeps per perf PR (ns/op, B/op, allocs/op per
# benchmark). Usage:
#   go test -run '^$' -bench ... -benchmem . | awk -v date=... -f scripts/benchjson.awk
BEGIN { n = 0 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ && / ns\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	names[n] = name
	ns[n] = $3
	bytes[n] = ($5 != "" ? $5 : 0)
	allocs[n] = ($7 != "" ? $7 : 0)
	n++
}
END {
	printf "{\n"
	printf "  \"recorded\": \"%s\",\n", date
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"command\": \"make bench\",\n"
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) {
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			names[i], ns[i], bytes[i], allocs[i], (i < n-1 ? "," : "")
	}
	printf "  ]\n}\n"
}
