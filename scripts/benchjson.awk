# benchjson.awk — convert `go test -bench -benchmem` output into the
# BENCH_N.json record the repo keeps per perf PR (ns/op, B/op, allocs/op per
# benchmark, plus any custom b.ReportMetric values as an "extra" object).
# Fields are located by their unit suffix rather than position, so custom
# metrics (which Go prints between ns/op and B/op) cannot shift the parse.
# Usage:
#   go test -run '^$' -bench ... -benchmem . | awk -v date=... -f scripts/benchjson.awk
BEGIN { n = 0 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ && / ns\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	names[n] = name
	ns[n] = 0; bytes[n] = 0; allocs[n] = 0; extra[n] = ""
	for (i = 3; i < NF; i += 2) {
		v = $i; u = $(i + 1)
		if (u == "ns/op") ns[n] = v
		else if (u == "B/op") bytes[n] = v
		else if (u == "allocs/op") allocs[n] = v
		else {
			gsub(/[^A-Za-z0-9_]/, "_", u)
			extra[n] = extra[n] (extra[n] == "" ? "" : ", ") "\"" u "\": " v
		}
	}
	n++
}
END {
	printf "{\n"
	printf "  \"recorded\": \"%s\",\n", date
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"command\": \"make bench\",\n"
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) {
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s", \
			names[i], ns[i], bytes[i], allocs[i]
		if (extra[i] != "")
			printf ", \"extra\": {%s}", extra[i]
		printf "}%s\n", (i < n-1 ? "," : "")
	}
	printf "  ]\n}\n"
}
