// Package repro's benchmark harness regenerates every table and figure of
// the paper (one benchmark per artifact, at experiments.Quick scale) and
// measures the hot kernels underneath them.
//
//	go test -bench=BenchmarkTable1 -benchmem
//	go test -bench=. -benchmem          # full suite
//
// Artifact benchmarks print the regenerated table once via b.Log at -v, and
// report wall time per full regeneration.
package repro

import (
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/flowbench"
	"repro/internal/icl"
	"repro/internal/logparse"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pretrain"
	"repro/internal/sft"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
	"repro/internal/transformer"
)

var (
	labOnce sync.Once
	lab     *experiments.Lab
)

// benchScale is a reduced working scale for the artifact benchmarks so the
// full `-bench=.` sweep completes in minutes on a single core; use
// cmd/expbench (quick or standard scale) for recorded accuracy numbers.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Train: 150, Val: 50, Test: 80,
		PretrainSteps: 60, Epochs: 1, ICLFTSteps: 60, ICLEval: 24,
		Runs: 1, Fig6Epochs: 4, Fig12Shots: []int{0, 2}, Seed: 42,
	}
}

// benchLab shares one lab (datasets, tokenizer, pre-trained checkpoints)
// across all artifact benchmarks, as the experiments themselves do.
func benchLab() *experiments.Lab {
	labOnce.Do(func() { lab = experiments.NewLab(benchScale()) })
	return lab
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	def, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	l := benchLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := def.Run(l)
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + tab.String())
		}
	}
}

// Artifact benchmarks — one per paper table/figure.

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkFigure4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFigure5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkTable4(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkFigure13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFigure14(b *testing.B) { benchExperiment(b, "fig14") }

// Ablation benchmarks — design-choice sweeps beyond the paper's artifacts.

func BenchmarkAblationPretrain(b *testing.B) { benchExperiment(b, "abl-pretrain") }
func BenchmarkAblationLoRARank(b *testing.B) { benchExperiment(b, "abl-lora-rank") }
func BenchmarkAblationQuant(b *testing.B)    { benchExperiment(b, "abl-quant") }
func BenchmarkAblationDebias(b *testing.B)   { benchExperiment(b, "abl-debias") }
func BenchmarkExtensionTypes(b *testing.B)   { benchExperiment(b, "ext-types") }

// Kernel micro-benchmarks — the operations the experiments spend their time
// in.

func BenchmarkMatMul128(b *testing.B) {
	rng := tensor.NewRNG(1)
	x := tensor.New(128, 128)
	y := tensor.New(128, 128)
	tensor.Gaussian(x, 1, rng)
	tensor.Gaussian(y, 1, rng)
	dst := tensor.New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(dst, x, y)
	}
}

func BenchmarkAttentionForward(b *testing.B) {
	rng := tensor.NewRNG(2)
	attn := transformer.NewMultiHeadAttention("bench", 64, 4, true, rng)
	x := tensor.New(64, 64)
	tensor.Gaussian(x, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attn.Forward(x, false)
	}
}

func BenchmarkEncoderForwardBackward(b *testing.B) {
	cfg := transformer.Config{
		Name: "bench", VocabSize: 300, MaxSeqLen: 64, DModel: 48,
		NumHeads: 4, NumLayers: 4, FFNDim: 96, NumClasses: 2,
	}
	m := transformer.New(cfg, tensor.NewRNG(3))
	ce := nn.NewSoftmaxCrossEntropy()
	ids := make([]int, 40)
	for i := range ids {
		ids[i] = i % 300
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits := m.ForwardCls(ids, true)
		_, grad := ce.Loss(logits, []int{i % 2})
		m.BackwardCls(grad)
		nn.ZeroGrads(m.Params())
	}
}

func BenchmarkDecoderNextToken(b *testing.B) {
	cfg := transformer.Config{
		Name: "bench", VocabSize: 300, MaxSeqLen: 512, DModel: 96,
		NumHeads: 4, NumLayers: 6, FFNDim: 192, Causal: true, NumClasses: 2,
	}
	m := transformer.New(cfg, tensor.NewRNG(4))
	prompt := make([]int, 256)
	for i := range prompt {
		prompt[i] = i % 300
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NextTokenLogits(prompt)
	}
}

func BenchmarkTokenizerEncode(b *testing.B) {
	ds := flowbench.Generate(flowbench.Genome, 1).Subsample(100, 0, 0, 1)
	corpus := logparse.Corpus(ds.Train)
	tok := tokenizer.Build(corpus)
	sentence := corpus[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok.Encode(sentence, true)
	}
}

func BenchmarkDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		flowbench.Generate(flowbench.Genome, uint64(i))
	}
}

func BenchmarkSFTEpoch(b *testing.B) {
	ds := flowbench.Generate(flowbench.Genome, 1).Subsample(100, 0, 0, 1)
	corpus := logparse.Corpus(ds.Train)
	tok := tokenizer.Build(corpus)
	m := models.MustGet("distilbert-base-uncased").Build(tok.VocabSize())
	c := sft.NewClassifier(m, tok)
	examples := sft.JobExamples(ds.Train)
	cfg := sft.DefaultTrainConfig()
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sft.Train(c, examples, nil, cfg)
	}
}

func BenchmarkICLClassify(b *testing.B) {
	ds := flowbench.Generate(flowbench.Genome, 1).Subsample(200, 0, 20, 1)
	corpus := pretrain.BuildCorpus(pretrain.CorpusOptions{
		SentencesPerWorkflow: 50, ICLDocs: 20, ExamplesPerDoc: 3, Seed: 1,
	})
	corpus = append(corpus, logparse.Corpus(ds.Train)...)
	tok := tokenizer.Build(corpus)
	d := icl.NewDetector(models.MustGet("gpt2").Build(tok.VocabSize()), tok)
	exs := icl.PromptExamples(icl.SelectExamples(ds.Train, 5, icl.Mixed, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ClassifyJob(ds.Test[i%len(ds.Test)], exs)
	}
}

func BenchmarkQuantize4Bit(b *testing.B) {
	rng := tensor.NewRNG(5)
	m := tensor.New(256, 256)
	tensor.Gaussian(m, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.Quantize4Bit(m, nn.DefaultQuantBlock)
	}
}
