// Package repro's benchmark harness regenerates every table and figure of
// the paper (one benchmark per artifact, at experiments.Quick scale) and
// measures the hot kernels underneath them.
//
//	go test -bench=BenchmarkTable1 -benchmem
//	go test -bench=. -benchmem          # full suite
//
// Artifact benchmarks print the regenerated table once via b.Log at -v, and
// report wall time per full regeneration.
package repro

import (
	"bufio"
	"bytes"
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/flowbench"
	"repro/internal/icl"
	"repro/internal/logparse"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pretrain"
	"repro/internal/prompt"
	"repro/internal/scenario"
	"repro/internal/sft"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
	"repro/internal/transformer"
)

var (
	labOnce sync.Once
	lab     *experiments.Lab
)

// benchScale is a reduced working scale for the artifact benchmarks so the
// full `-bench=.` sweep completes in minutes on a single core; use
// cmd/expbench (quick or standard scale) for recorded accuracy numbers.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Train: 150, Val: 50, Test: 80,
		PretrainSteps: 60, Epochs: 1, ICLFTSteps: 60, ICLEval: 24,
		Runs: 1, Fig6Epochs: 4, Fig12Shots: []int{0, 2}, Seed: 42,
	}
}

// benchLab shares one lab (datasets, tokenizer, pre-trained checkpoints)
// across all artifact benchmarks, as the experiments themselves do.
func benchLab() *experiments.Lab {
	labOnce.Do(func() { lab = experiments.NewLab(benchScale()) })
	return lab
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	def, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	l := benchLab()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := def.Run(l)
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + tab.String())
		}
	}
}

// Artifact benchmarks — one per paper table/figure.

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkFigure4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFigure5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkTable4(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkFigure13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFigure14(b *testing.B) { benchExperiment(b, "fig14") }

// Ablation benchmarks — design-choice sweeps beyond the paper's artifacts.

func BenchmarkAblationPretrain(b *testing.B) { benchExperiment(b, "abl-pretrain") }
func BenchmarkAblationLoRARank(b *testing.B) { benchExperiment(b, "abl-lora-rank") }
func BenchmarkAblationQuant(b *testing.B)    { benchExperiment(b, "abl-quant") }
func BenchmarkAblationDebias(b *testing.B)   { benchExperiment(b, "abl-debias") }
func BenchmarkExtensionTypes(b *testing.B)   { benchExperiment(b, "ext-types") }

// Kernel micro-benchmarks — the operations the experiments spend their time
// in.

func BenchmarkMatMul128(b *testing.B) {
	rng := tensor.NewRNG(1)
	x := tensor.New(128, 128)
	y := tensor.New(128, 128)
	tensor.Gaussian(x, 1, rng)
	tensor.Gaussian(y, 1, rng)
	dst := tensor.New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(dst, x, y)
	}
}

func BenchmarkAttentionForward(b *testing.B) {
	rng := tensor.NewRNG(2)
	attn := transformer.NewMultiHeadAttention("bench", 64, 4, true, rng)
	x := tensor.New(64, 64)
	tensor.Gaussian(x, 1, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attn.Forward(x, false)
	}
}

func BenchmarkEncoderForwardBackward(b *testing.B) {
	cfg := transformer.Config{
		Name: "bench", VocabSize: 300, MaxSeqLen: 64, DModel: 48,
		NumHeads: 4, NumLayers: 4, FFNDim: 96, NumClasses: 2,
	}
	m := transformer.New(cfg, tensor.NewRNG(3))
	ce := nn.NewSoftmaxCrossEntropy()
	ids := make([]int, 40)
	for i := range ids {
		ids[i] = i % 300
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits := m.ForwardCls(ids, true)
		_, grad := ce.Loss(logits, []int{i % 2})
		m.BackwardCls(grad)
		nn.ZeroGrads(m.Params())
	}
}

func BenchmarkDecoderNextToken(b *testing.B) {
	cfg := transformer.Config{
		Name: "bench", VocabSize: 300, MaxSeqLen: 512, DModel: 96,
		NumHeads: 4, NumLayers: 6, FFNDim: 192, Causal: true, NumClasses: 2,
	}
	m := transformer.New(cfg, tensor.NewRNG(4))
	prompt := make([]int, 256)
	for i := range prompt {
		prompt[i] = i % 300
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NextTokenLogits(prompt)
	}
}

func BenchmarkTokenizerEncode(b *testing.B) {
	ds := flowbench.Generate(flowbench.Genome, 1).Subsample(100, 0, 0, 1)
	corpus := logparse.Corpus(ds.Train)
	tok := tokenizer.Build(corpus)
	sentence := corpus[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok.Encode(sentence, true)
	}
}

func BenchmarkDatasetGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		flowbench.Generate(flowbench.Genome, uint64(i))
	}
}

// Zero-allocation hot-path benchmarks — the two steady-state serving steps
// the workspace arena and strided kernels target. allocs/op on both should
// sit within a few allocations of zero (only returned results allocate).

// BenchmarkKVCacheDecode measures one cached decode step: scoring the next
// token of a 1-token suffix against a 256-token cached prefix — the ICL
// serving inner loop after the prompt cache is built.
func BenchmarkKVCacheDecode(b *testing.B) {
	cfg := transformer.Config{
		Name: "bench", VocabSize: 300, MaxSeqLen: 512, DModel: 96,
		NumHeads: 4, NumLayers: 6, FFNDim: 192, Causal: true, NumClasses: 2,
	}
	m := transformer.New(cfg, tensor.NewRNG(7))
	prefix := make([]int, 256)
	for i := range prefix {
		prefix[i] = i % 300
	}
	cache := m.InferKVCache(prefix)
	suffix := []int{7}
	choices := []int{10, 20}
	m.ScoreChoiceWithCache(cache, suffix, choices) // warm the workspace pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScoreChoiceWithCache(cache, suffix, choices)
	}
}

// BenchmarkKVCacheDecodeInt8 is BenchmarkKVCacheDecode through the int8
// inference path: the same 256-token cached prefix and 1-token suffix, with
// every projection computing in integers.
func BenchmarkKVCacheDecodeInt8(b *testing.B) {
	cfg := transformer.Config{
		Name: "bench", VocabSize: 300, MaxSeqLen: 512, DModel: 96,
		NumHeads: 4, NumLayers: 6, FFNDim: 192, Causal: true, NumClasses: 2,
	}
	m := transformer.New(cfg, tensor.NewRNG(7))
	m.QuantizeInt8(0)
	prefix := make([]int, 256)
	for i := range prefix {
		prefix[i] = i % 300
	}
	cache := m.InferKVCache(prefix)
	suffix := []int{7}
	choices := []int{10, 20}
	m.ScoreChoiceWithCache(cache, suffix, choices) // warm the workspace pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScoreChoiceWithCache(cache, suffix, choices)
	}
}

// BenchmarkEncodeBatch measures the packed batched encoder forward on a
// reused worker-owned workspace (8 sequences × 48 tokens), the SFT serving
// inner loop.
func BenchmarkEncodeBatch(b *testing.B) {
	cfg := transformer.Config{
		Name: "bench", VocabSize: 300, MaxSeqLen: 64, DModel: 96,
		NumHeads: 4, NumLayers: 4, FFNDim: 192, NumClasses: 2,
	}
	m := transformer.New(cfg, tensor.NewRNG(8))
	seqs := make([][]int, 8)
	for s := range seqs {
		seqs[s] = make([]int, 48)
		for i := range seqs[s] {
			seqs[s][i] = (s*48 + i) % 300
		}
	}
	ws := tensor.NewWorkspace()
	m.ForwardClsBatchWS(seqs, ws) // warm the arena for this batch shape
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		m.ForwardClsBatchWS(seqs, ws)
	}
}

func BenchmarkSFTEpoch(b *testing.B) {
	ds := flowbench.Generate(flowbench.Genome, 1).Subsample(100, 0, 0, 1)
	corpus := logparse.Corpus(ds.Train)
	tok := tokenizer.Build(corpus)
	m := models.MustGet("distilbert-base-uncased").Build(tok.VocabSize())
	c := sft.NewClassifier(m, tok)
	examples := sft.JobExamples(ds.Train)
	cfg := sft.DefaultTrainConfig()
	cfg.Epochs = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sft.Train(c, examples, nil, cfg)
	}
}

func BenchmarkICLClassify(b *testing.B) {
	ds := flowbench.Generate(flowbench.Genome, 1).Subsample(200, 0, 20, 1)
	corpus := pretrain.BuildCorpus(pretrain.CorpusOptions{
		SentencesPerWorkflow: 50, ICLDocs: 20, ExamplesPerDoc: 3, Seed: 1,
	})
	corpus = append(corpus, logparse.Corpus(ds.Train)...)
	tok := tokenizer.Build(corpus)
	d := icl.NewDetector(models.MustGet("gpt2").Build(tok.VocabSize()), tok)
	exs := icl.PromptExamples(icl.SelectExamples(ds.Train, 5, icl.Mixed, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ClassifyJob(ds.Test[i%len(ds.Test)], exs)
	}
}

// Batched-inference benchmarks — the serving-path speedup of the coalescing
// layer. Each Sequential/Batch pair classifies the same sentences per
// iteration, so ns/op is directly comparable; the batched path should win by
// a growing margin from batch size 8 up.

var (
	batchBenchOnce      sync.Once
	batchBenchClf       *sft.Classifier
	batchBenchSentences []string
)

// batchBench shares one (untrained) classifier and sentence pool across the
// batching benchmarks; weights don't affect throughput, so training time is
// skipped.
func batchBench() (*sft.Classifier, []string) {
	batchBenchOnce.Do(func() {
		ds := flowbench.Generate(flowbench.Genome, 1).Subsample(200, 0, 64, 1)
		corpus := logparse.Corpus(append(append([]flowbench.Job{}, ds.Train...), ds.Test...))
		tok := tokenizer.Build(corpus)
		m := models.MustGet("distilbert-base-uncased").Build(tok.VocabSize())
		batchBenchClf = sft.NewClassifier(m, tok)
		for _, j := range ds.Test {
			batchBenchSentences = append(batchBenchSentences, logparse.Sentence(j))
		}
	})
	return batchBenchClf, batchBenchSentences
}

func benchmarkPredictSequential(b *testing.B, n int) {
	c, sentences := batchBench()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sentences[:n] {
			c.Predict(s)
		}
	}
}

func benchmarkPredictBatch(b *testing.B, n int) {
	c, sentences := batchBench()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PredictBatch(sentences[:n])
	}
}

func BenchmarkSFTPredictSequential8(b *testing.B)  { benchmarkPredictSequential(b, 8) }
func BenchmarkSFTPredictBatch8(b *testing.B)       { benchmarkPredictBatch(b, 8) }
func BenchmarkSFTPredictSequential32(b *testing.B) { benchmarkPredictSequential(b, 32) }
func BenchmarkSFTPredictBatch32(b *testing.B)      { benchmarkPredictBatch(b, 32) }

// Serving-scale fp32/int8 pairs — identical batched work through the two
// compute paths, on the DEFAULT serving models (bert-base-uncased for SFT,
// mistral for ICL — what core.Train builds), not the miniature
// distilbert/gpt2 this file uses for pipeline-overhead benchmarks. The
// distinction matters: the int8 kernel's win grows with the reduction
// dimension (per-row activation quantization is O(In) overhead against
// O(In·Out) compute), so the 32–40-wide miniatures understate the win and
// production-scale models are what quantization is for.

var (
	serveBenchOnce     sync.Once
	serveBenchSFT      *sft.Classifier
	serveBenchSFTInt8  *sft.Classifier
	serveBenchICL      *icl.Detector
	serveBenchICLInt8  *icl.Detector
	serveBenchPC       *icl.PromptCache
	serveBenchPCInt8   *icl.PromptCache
	serveBenchDet      core.Detector
	serveBenchDetInt8  core.Detector
	serveBenchLog      string
	serveBenchSteady   string
	serveBenchGate     *cascade.Gate
	serveBenchSentence []string
)

func serveBench() {
	serveBenchOnce.Do(func() {
		ds := flowbench.Generate(flowbench.Genome, 1).Subsample(200, 0, 64, 1)
		corpus := pretrain.BuildCorpus(pretrain.CorpusOptions{
			SentencesPerWorkflow: 50, ICLDocs: 20, ExamplesPerDoc: 3, Seed: 1,
		})
		corpus = append(corpus, logparse.Corpus(ds.Train)...)
		tok := tokenizer.Build(corpus)
		for _, j := range ds.Test {
			serveBenchSentence = append(serveBenchSentence, logparse.Sentence(j))
		}
		exs := icl.PromptExamples(icl.SelectExamples(ds.Train, 5, icl.Mixed, 1))

		serveBenchSFT = sft.NewClassifier(models.MustGet("bert-base-uncased").Build(tok.VocabSize()), tok)
		qm := models.MustGet("bert-base-uncased").Build(tok.VocabSize())
		qm.QuantizeInt8(0)
		serveBenchSFTInt8 = sft.NewClassifier(qm, tok)

		serveBenchICL = icl.NewDetector(models.MustGet("mistral").Build(tok.VocabSize()), tok)
		qd := models.MustGet("mistral").Build(tok.VocabSize())
		qd.QuantizeInt8(0)
		serveBenchICLInt8 = icl.NewDetector(qd, tok)
		serveBenchPC = serveBenchICL.NewPromptCache(exs)
		serveBenchPCInt8 = serveBenchICLInt8.NewPromptCache(exs)

		serveBenchDet = core.NewICLDetector(serveBenchICL, exs)
		serveBenchDetInt8 = core.NewICLDetector(serveBenchICLInt8, exs)
		serveBenchDet.DetectBatch([]string{"runtime is 1.0"}) // build prompt caches outside timing
		serveBenchDetInt8.DetectBatch([]string{"runtime is 1.0"})
		jobs := flowbench.Generate(flowbench.Genome, 1).Subsample(0, 0, 300, 2).Test
		var sb strings.Builder
		for i := 0; i < 1000; i++ {
			sb.WriteString(logparse.LogLine(jobs[i%len(jobs)]))
			sb.WriteByte('\n')
		}
		serveBenchLog = sb.String()

		// Cascade pair fixture: a steady-scenario log (the monitor's
		// production traffic mix, mostly normal) plus a default ngram gate
		// calibrated on the same dataset the stream draws from. The bench
		// models are untrained, so calibration verdicts are the ground-truth
		// labels standing in for stage-2 verdicts, at a label recall of 0.75
		// — the trained transformer flags ~75% of ground-truth labels, so
		// this reproduces the operating point of the production calibration
		// (transformer verdicts at the 0.995 default). The agreement contract
		// is pinned by TestCascadeParityEndToEnd and the loadlab paired rows
		// with the real trained detector; this pair only measures throughput.
		full := flowbench.Generate(flowbench.Genome, 1)
		verdicts := make([]int, len(full.Train))
		for i, j := range full.Train {
			verdicts[i] = j.Label
		}
		gate, err := cascade.Fit(cascade.Config{TargetRecall: 0.75}, full.Train, verdicts)
		if err != nil {
			panic(err)
		}
		serveBenchGate = gate
		steady, _ := scenario.Lookup("steady")
		s := steady.Generate(scenario.Config{Workflow: flowbench.Genome, Events: 1000, Seed: 1, Rate: 400})
		var cb strings.Builder
		for _, ev := range s.Events {
			cb.WriteString(ev.Line)
			cb.WriteByte('\n')
		}
		serveBenchSteady = cb.String()
	})
}

func benchmarkSFTServe(b *testing.B, c *sft.Classifier) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PredictBatch(serveBenchSentence[:8])
	}
}

func BenchmarkSFTServeBatch8(b *testing.B) { serveBench(); benchmarkSFTServe(b, serveBenchSFT) }
func BenchmarkSFTServeBatch8Int8(b *testing.B) {
	serveBench()
	benchmarkSFTServe(b, serveBenchSFTInt8)
}

// The ICL serving pair measures the cached-prefix path exactly as the
// detection service runs it: the few-shot prefix KV cache is prebuilt and
// only the 8 query suffixes flow through the block stack per op.
func benchmarkICLServe(b *testing.B, d *icl.Detector, pc *icl.PromptCache) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ClassifyBatchCached(pc, serveBenchSentence[:8])
	}
}

func BenchmarkICLServeBatch8(b *testing.B) {
	serveBench()
	benchmarkICLServe(b, serveBenchICL, serveBenchPC)
}

func BenchmarkICLServeBatch8Int8(b *testing.B) {
	serveBench()
	benchmarkICLServe(b, serveBenchICLInt8, serveBenchPCInt8)
}

func BenchmarkICLClassifySequential8(b *testing.B) {
	d, exs, queries := iclBatchBench()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			d.Classify(q, exs)
		}
	}
}

func BenchmarkICLClassifyBatch8(b *testing.B) {
	d, exs, queries := iclBatchBench()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ClassifyBatch(queries, exs)
	}
}

var (
	iclBenchOnce    sync.Once
	iclBenchDet     *icl.Detector
	iclBenchExs     []prompt.Example
	iclBenchQueries []string
)

func iclBatchBench() (*icl.Detector, []prompt.Example, []string) {
	iclBenchOnce.Do(func() {
		ds := flowbench.Generate(flowbench.Genome, 1).Subsample(200, 0, 8, 1)
		corpus := pretrain.BuildCorpus(pretrain.CorpusOptions{
			SentencesPerWorkflow: 50, ICLDocs: 20, ExamplesPerDoc: 3, Seed: 1,
		})
		corpus = append(corpus, logparse.Corpus(ds.Train)...)
		tok := tokenizer.Build(corpus)
		iclBenchDet = icl.NewDetector(models.MustGet("gpt2").Build(tok.VocabSize()), tok)
		iclBenchExs = icl.PromptExamples(icl.SelectExamples(ds.Train, 5, icl.Mixed, 1))
		for _, j := range ds.Test {
			iclBenchQueries = append(iclBenchQueries, logparse.Sentence(j))
		}
	})
	return iclBenchDet, iclBenchExs, iclBenchQueries
}

// BenchmarkServerDirect and BenchmarkServerCoalesced measure one detection
// through, respectively, the uncoalesced per-sentence path and the full
// micro-batching layer under 8-way simulated client concurrency.

func BenchmarkServerDirect(b *testing.B) {
	c, sentences := batchBench()
	det := core.NewSFTDetector(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.DetectSentence(sentences[i%len(sentences)])
	}
}

func BenchmarkServerCoalesced(b *testing.B) {
	c, sentences := batchBench()
	det := core.NewSFTDetector(c)
	s := core.NewServerWith(det, core.BatchConfig{
		MaxBatch: 32, FlushDelay: time.Millisecond, Workers: 2,
	})
	defer s.Close()
	b.SetParallelism(8) // simulate concurrent clients so requests coalesce
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := s.Detect([]string{sentences[i%len(sentences)]}); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// Streaming-monitor benchmarks — the paper's real-time scenario at serving
// scale. Both process the same 1k-line execution log through the same ICL
// detector. BenchmarkMonitorSequential replays the pre-PR-3 core.Monitor
// loop: parse a line, classify it alone (which re-encodes the few-shot
// prompt prefix every single time). BenchmarkMonitor is the streaming
// subsystem: lines flow through chunked DetectBatchWS micro-batches over the
// shared KV prompt cache, with online trace verdicts maintained as a side
// effect. The batched path should win by ≥3× (prefix encoded once ever
// instead of once per line, plus packed batching).

var (
	monitorBenchOnce sync.Once
	monitorBenchDet  core.Detector
	monitorBenchLog  string
)

func monitorBench() (core.Detector, string) {
	monitorBenchOnce.Do(func() {
		d, exs, _ := iclBatchBench()
		monitorBenchDet = core.NewICLDetector(d, exs)
		monitorBenchDet.DetectBatch([]string{"runtime is 1.0"}) // build the prompt cache outside timing
		jobs := flowbench.Generate(flowbench.Genome, 1).Subsample(0, 0, 300, 2).Test
		var sb strings.Builder
		for i := 0; i < 1000; i++ {
			sb.WriteString(logparse.LogLine(jobs[i%len(jobs)]))
			sb.WriteByte('\n')
		}
		monitorBenchLog = sb.String()
	})
	return monitorBenchDet, monitorBenchLog
}

func BenchmarkMonitorSequential(b *testing.B) {
	det, logText := monitorBench()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanner := bufio.NewScanner(strings.NewReader(logText))
		for scanner.Scan() {
			line := scanner.Text()
			if line == "" {
				continue
			}
			job, err := logparse.ParseLogLine(line)
			if err != nil {
				b.Fatal(err)
			}
			det.DetectJob(job)
		}
		if err := scanner.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonitor(b *testing.B) {
	det, logText := monitorBench()
	// Warm the chunk pipeline's pooled workspace arenas so the benchmark
	// measures steady-state streaming, not the first-ever cold start (the
	// sequential path's per-line arenas are warmed by monitorBench already).
	warm := strings.Join(strings.SplitN(logText, "\n", 65)[:64], "\n")
	if _, err := core.MonitorWith(context.Background(), det, strings.NewReader(warm), core.MonitorConfig{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := core.MonitorWith(context.Background(), det, strings.NewReader(logText), core.MonitorConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if report.Processed != 1000 {
			b.Fatalf("processed %d lines, want 1000", report.Processed)
		}
	}
}

// BenchmarkMonitorServe / BenchmarkMonitorServeInt8 run the full streaming
// pipeline (parse, chunk, classify, trace-track) over the same 1k-line log
// through a serving-scale (mistral) ICL detector in fp32 and int8 — the
// end-to-end monitor win of quantization. (BenchmarkMonitor above keeps its
// miniature gpt2 detector for comparability with earlier BENCH records; it
// measures pipeline overhead, not model throughput.)
func benchmarkMonitorServe(b *testing.B, det core.Detector, logText string, gate *cascade.Gate) {
	serveBench()
	warm := strings.Join(strings.SplitN(logText, "\n", 65)[:64], "\n")
	if _, err := core.MonitorWith(context.Background(), det, strings.NewReader(warm), core.MonitorConfig{Gate: gate}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := core.MonitorWith(context.Background(), det, strings.NewReader(logText), core.MonitorConfig{Gate: gate})
		if err != nil {
			b.Fatal(err)
		}
		if report.Processed != 1000 {
			b.Fatalf("processed %d lines, want 1000", report.Processed)
		}
		if gate != nil && report.CascadeShort == 0 {
			b.Fatal("cascade bench gate never short-circuited")
		}
	}
}

func BenchmarkMonitorServe(b *testing.B) {
	serveBench()
	benchmarkMonitorServe(b, serveBenchDet, serveBenchLog, nil)
}

func BenchmarkMonitorServeInt8(b *testing.B) {
	serveBench()
	benchmarkMonitorServe(b, serveBenchDetInt8, serveBenchLog, nil)
}

// BenchmarkMonitorServeCascadeOff / BenchmarkMonitorServeCascade are the
// two-stage inference record: the same serving-scale detector over the same
// steady-scenario 1k-line log (the monitor's production traffic mix), first
// transformer-only, then with the calibrated ngram gate short-circuiting the
// confident-normal band. The pair is the "cascade on vs off" speedup
// scripts/benchdiff gates on.
func BenchmarkMonitorServeCascadeOff(b *testing.B) {
	serveBench()
	benchmarkMonitorServe(b, serveBenchDet, serveBenchSteady, nil)
}

func BenchmarkMonitorServeCascade(b *testing.B) {
	serveBench()
	benchmarkMonitorServe(b, serveBenchDet, serveBenchSteady, serveBenchGate)
}

func BenchmarkMatMulBlockedTall(b *testing.B) {
	rng := tensor.NewRNG(6)
	x := tensor.New(512, 128) // a packed 8×64-token batch at dModel 128
	w := tensor.New(128, 128)
	tensor.Gaussian(x, 1, rng)
	tensor.Gaussian(w, 1, rng)
	dst := tensor.New(512, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulBlocked(dst, x, w)
	}
}

func BenchmarkQuantize4Bit(b *testing.B) {
	rng := tensor.NewRNG(5)
	m := tensor.New(256, 256)
	tensor.Gaussian(m, 1, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.Quantize4Bit(m, nn.DefaultQuantBlock)
	}
}

// BenchmarkMatMulQ8Tall is the int8 GEMM on the exact shape of
// BenchmarkMatMulBlockedTall (a packed 8×64-token batch at dModel 128
// against square weights): the two together are the kernel-level fp32 vs
// int8 record.
func BenchmarkMatMulQ8Tall(b *testing.B) {
	rng := tensor.NewRNG(6)
	x := tensor.New(512, 128)
	w := tensor.New(128, 128)
	tensor.Gaussian(x, 1, rng)
	tensor.Gaussian(w, 1, rng)
	q := tensor.QuantizeInt8(w, tensor.QInt8Block)
	dst := tensor.New(512, 128)
	ws := tensor.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		tensor.MatMulQ8(dst, x, q, ws)
	}
}

// BenchmarkQuantizeInt8 measures converting a serving-scale decoder to the
// int8 inference form, and records the model-weight footprints: fp32_B is
// the projections' float32 bytes, int8_B their serialized quantized bytes —
// the ~4× weight-memory figure BENCH_5.json pins next to the speed numbers.
func BenchmarkQuantizeInt8(b *testing.B) {
	var stats transformer.QuantInt8Stats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := models.MustGet("mistral").Build(2000)
		b.StartTimer()
		stats = m.QuantizeInt8(0)
	}
	b.ReportMetric(float64(stats.FP32Bytes), "fp32_B")
	b.ReportMetric(float64(stats.CodesBytes), "int8_B")
}

// Artifact & registry benchmarks — the startup-time story of PR 4. The
// Startup pair measures the same detector arriving two ways: trained from
// scratch at boot (the pre-artifact anomalyd behavior) versus loaded from a
// detector artifact (anomalyd -load). Both produce bitwise-identical
// detectors; the ratio is the boot-latency win of treating weights as data.
// RegistrySwap measures hot-swap latency — how long Registry.Swap takes to
// install a new detector and fully drain the old engine while request
// traffic keeps flowing.

// startupTrainOptions is the tiny training recipe both startup benchmarks
// describe: small enough that BenchmarkStartupTrain finishes in seconds,
// real enough that the artifact carries trained weights.
func startupTrainOptions() core.Options {
	return core.Options{
		Approach: core.SFT, Model: "distilbert-base-uncased",
		TrainSize: 150, PretrainSteps: 60, Epochs: 1, Seed: 7,
	}
}

var (
	startupOnce     sync.Once
	startupArtifact []byte
)

// startupArtifactBytes trains the startup detector once and serializes it,
// so BenchmarkArtifactLoad measures deserialization alone.
func startupArtifactBytes(b *testing.B) []byte {
	b.Helper()
	startupOnce.Do(func() {
		det, _, err := core.Train(startupTrainOptions())
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := core.SaveDetector(&buf, det); err != nil {
			panic(err)
		}
		startupArtifact = buf.Bytes()
	})
	return startupArtifact
}

// BenchmarkStartupTrain is the "retrain at every boot" cost: the full Train
// pipeline (dataset generation, vocabulary, pre-training, fine-tuning) at
// the startup recipe's scale. Production recipes are ~10× larger.
func BenchmarkStartupTrain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Train(startupTrainOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStartupLoad is the "boot from artifact" cost for the same
// detector: parse, checksum, rebuild, and load weights.
func BenchmarkStartupLoad(b *testing.B) {
	data := startupArtifactBytes(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.LoadDetector(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// swapStubDetector is a minimal fast detector so RegistrySwap measures the
// swap/drain machinery, not model inference.
type swapStubDetector struct{ label int }

func (d swapStubDetector) DetectSentence(string) core.Result {
	return core.Result{Label: d.label}
}
func (d swapStubDetector) DetectBatch(ss []string) []core.Result {
	out := make([]core.Result, len(ss))
	for i := range out {
		out[i] = core.Result{Label: d.label}
	}
	return out
}
func (d swapStubDetector) DetectJob(flowbench.Job) core.Result { return core.Result{Label: d.label} }
func (d swapStubDetector) Approach() core.Approach             { return core.SFT }

// BenchmarkRegistrySwap measures hot-swap latency under concurrent request
// load: per op, one Registry.Swap installs a new detector and waits for the
// old engine to drain while 4 client goroutines keep issuing requests (all
// of which must succeed — the zero-drop contract).
func BenchmarkRegistrySwap(b *testing.B) {
	reg := core.NewRegistry()
	if err := reg.Add("live", swapStubDetector{}, core.BatchConfig{
		MaxBatch: 8, FlushDelay: 100 * time.Microsecond, Workers: 2,
	}); err != nil {
		b.Fatal(err)
	}
	s := core.NewServerRegistry(reg)
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failures atomic.Int64
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.DetectModelContext(context.Background(), "live", []string{"a", "b"}); err != nil {
					failures.Add(1)
				}
			}
		}()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.Swap("live", swapStubDetector{label: i % 2}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		b.Fatalf("%d requests dropped during swaps", n)
	}
}
