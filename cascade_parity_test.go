package repro

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/flowbench"
	"repro/internal/scenario"
)

// traceFlags folds per-line verdicts into per-trace flags under policy — the
// quantity that pages an operator, and the one the cascade must never move.
func traceFlags(s *scenario.Stream, res []core.Result, policy core.TracePolicy) map[int]bool {
	jobs := make(map[int]int)
	anom := make(map[int]int)
	for i, ev := range s.Events {
		jobs[ev.Job.TraceID]++
		anom[ev.Job.TraceID] += res[i].Label
	}
	out := make(map[int]bool, len(jobs))
	for id, n := range jobs {
		out[id] = policy.Flagged(n, anom[id])
	}
	return out
}

// TestCascadeParityEndToEnd is the cascade acceptance gate: on every lab
// scenario, serving with the calibrated stage-1 gate must agree with
// transformer-only serving on at least 99% of per-line verdicts and on
// *every* trace flag — on both the batch detect path and the streaming
// monitor path — while actually short-circuiting a nonzero share of traffic.
func TestCascadeParityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	det := e2eDetector(t)
	ds := flowbench.Generate(flowbench.Genome, 42)
	gate, err := core.FitCascade(det, cascade.Config{Seed: 42}, ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("gate: scorer=%s recall=%.3f positives=%d low=%.4f",
		gate.Scorer(), gate.TargetRecall(), gate.Positives(), gate.Low())

	reg := core.NewRegistry()
	if err := reg.Add("genome-sft", det, core.BatchConfig{MaxBatch: 64, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	srv := core.NewServerRegistry(reg)
	defer srv.Close()

	ctx := context.Background()
	policy := core.DefaultTracePolicy()
	totalShort := int64(0)
	for _, d := range scenario.All() {
		s := d.Generate(scenario.Config{Workflow: flowbench.Genome, Events: 400, Seed: 42, Rate: 400})
		sents := s.Sentences()

		if err := reg.SetCascade("genome-sft", nil); err != nil {
			t.Fatal(err)
		}
		base, err := srv.DetectModelContext(ctx, "genome-sft", sents)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.SetCascade("genome-sft", gate); err != nil {
			t.Fatal(err)
		}
		if err := reg.ResetStats("genome-sft"); err != nil {
			t.Fatal(err)
		}
		casc, err := srv.DetectModelContext(ctx, "genome-sft", sents)
		if err != nil {
			t.Fatal(err)
		}

		agree := 0
		for i := range base {
			if base[i].Label == casc[i].Label {
				agree++
			}
		}
		frac := float64(agree) / float64(len(base))
		st, err := reg.Stats("genome-sft")
		if err != nil {
			t.Fatal(err)
		}
		totalShort += st.CascadeShort
		t.Logf("%s: agreement %.4f (%d/%d), short-circuited %d/%d",
			d.Name, frac, agree, len(base), st.CascadeShort, st.CascadeEvaluated)
		if frac < 0.99 {
			t.Errorf("%s: verdict agreement %.4f below 0.99", d.Name, frac)
		}

		bf, cf := traceFlags(s, base, policy), traceFlags(s, casc, policy)
		for id, want := range bf {
			if cf[id] != want {
				t.Errorf("%s: trace %d flag flipped by the cascade (transformer-only %v)", d.Name, id, want)
			}
		}

		// Monitor path: same stream through the chunked monitor, flags must
		// latch for exactly the same traces with the gate on.
		var lines strings.Builder
		for _, ev := range s.Events {
			lines.WriteString(ev.Line)
			lines.WriteByte('\n')
		}
		monFlags := func(g *cascade.Gate) (map[int]bool, core.MonitorReport) {
			flagged := make(map[int]bool)
			report, err := core.MonitorWith(ctx, det, strings.NewReader(lines.String()), core.MonitorConfig{
				ChunkSize: 64,
				Gate:      g,
				Sinks:     []core.AlertSink{core.SinkFuncs{OnTrace: func(v core.TraceVerdict) { flagged[v.TraceID] = true }}},
			})
			if err != nil {
				t.Fatal(err)
			}
			return flagged, report
		}
		mBase, _ := monFlags(nil)
		mCasc, mReport := monFlags(gate)
		if mReport.CascadeEvaluated == 0 {
			t.Errorf("%s: monitor gate never evaluated", d.Name)
		}
		if len(mBase) != len(mCasc) {
			t.Errorf("%s: monitor flagged %d traces gated vs %d ungated", d.Name, len(mCasc), len(mBase))
		}
		for id := range mBase {
			if !mCasc[id] {
				t.Errorf("%s: monitor trace %d flagged only without the gate", d.Name, id)
			}
		}
	}
	if totalShort == 0 {
		t.Error("cascade never short-circuited a line on any scenario; parity is vacuous")
	}
}
