package core

// Overload safety for the serving engine: admission control (shed with
// Retry-After before compute), queue-wait budgets and request deadlines
// (enforced at dequeue so already-dead requests are dropped, not computed),
// and the brownout tier — a cheap fallback detector that answers saturated
// traffic with a degraded-but-immediate result instead of a timeout. These
// are the primitives a multi-replica gateway needs from each replica: a
// clear "back off" signal (429), a bounded worst-case queue, and a readiness
// signal (/readyz) that reflects per-model saturation.

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/baselines"
	"repro/internal/flowbench"
	"repro/internal/logparse"
)

// ErrOverloaded is the sentinel all shed decisions wrap: matched with
// errors.Is, carried with details by OverloadedError.
var ErrOverloaded = errors.New("core: overloaded")

// OverloadedError reports a request shed by admission control (the queue was
// at its budgeted depth) or by the queue-wait budget (the job sat queued past
// MaxQueueWait). RetryAfter is the server's estimate of when the backlog will
// have drained enough to accept new work — the HTTP layer surfaces it as the
// 429's Retry-After header.
type OverloadedError struct {
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("core: overloaded, retry after %s", e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadedError) Unwrap() error { return ErrOverloaded }

// brownout is the graceful-degradation state machine: a high/low watermark
// hysteresis over observed queue depth. It engages when the depth has stayed
// at or above the high watermark for at least hold (sustained saturation, not
// a single spike) and disengages when the depth falls to the low watermark —
// so the tier doesn't flap at the threshold. Observation happens on the
// request path, which means recovery is detected on the first request after
// the queue drains; an idle engine carries no timers.
type brownout struct {
	mu      sync.Mutex
	high    int           // engage at depth >= high (0 disables)
	low     int           // disengage at depth <= low
	hold    time.Duration // how long depth must stay >= high before engaging
	over    time.Time     // when depth was first observed >= high (zero: not over)
	engaged bool
}

// observe folds one queue-depth observation in and reports whether the
// brownout tier is engaged for this request.
func (b *brownout) observe(depth int, now time.Time) bool {
	if b.high <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.engaged {
		if depth <= b.low {
			b.engaged = false
			b.over = time.Time{}
		}
		return b.engaged
	}
	if depth >= b.high {
		if b.over.IsZero() {
			b.over = now
		}
		if now.Sub(b.over) >= b.hold {
			b.engaged = true
		}
	} else {
		b.over = time.Time{}
	}
	return b.engaged
}

// active reports the current engagement without folding in an observation.
func (b *brownout) active() bool {
	if b.high <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.engaged
}

// fallbackSlot is the registry-slot holder of a model's brownout detector.
// Like the trace tracker and stats recorder it belongs to the slot, not the
// engine, so SetFallback takes effect immediately and survives hot-swaps.
// The pointer is guarded by a mutex rather than an atomic so a nil fallback
// stays representable.
type fallbackSlot struct {
	mu  sync.RWMutex
	det Detector
}

func (f *fallbackSlot) load() Detector {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.det
}

func (f *fallbackSlot) store(det Detector) {
	f.mu.Lock()
	f.det = det
	f.mu.Unlock()
}

// scorerDetector adapts a fitted baselines.JobScorer (PCA, isolation forest)
// into the Detector interface: sentences are parsed back into feature
// vectors, scored in one call, and thresholded at the calibrated cutoff.
// This is the brownout tier's engine — microseconds per line instead of the
// transformer's milliseconds — and deliberately shares zero code with the
// primary path, so a saturated or wedged model cannot take the fallback down
// with it.
type scorerDetector struct {
	sc     baselines.JobScorer
	cutoff float64
	scale  float64
}

// NewScorerDetector wraps a fitted baseline scorer as a Detector. cutoff is
// the calibrated decision threshold (baselines.CalibrateThreshold); scale
// converts score distance from the cutoff into a pseudo-probability via a
// logistic, so Result.Score stays in (0, 1) like the transformer's (<= 0
// means unit scale). The resulting detector reports Approach "baseline".
func NewScorerDetector(sc baselines.JobScorer, cutoff, scale float64) Detector {
	if scale <= 0 {
		scale = 1
	}
	return &scorerDetector{sc: sc, cutoff: cutoff, scale: scale}
}

// ApproachBaseline is the Approach reported by scorer-backed (brownout)
// detectors.
const ApproachBaseline Approach = "baseline"

func (d *scorerDetector) DetectBatch(sentences []string) []Result {
	jobs := make([]flowbench.Job, len(sentences))
	parsed := make([]bool, len(sentences))
	for i, s := range sentences {
		if j, err := logparse.ParseSentence(s); err == nil {
			jobs[i] = j
			parsed[i] = true
		}
	}
	scores := d.sc.Score(jobs)
	out := make([]Result, len(sentences))
	for i, s := range scores {
		if !parsed[i] {
			// Unparseable feature sentence: the scorer saw a zero vector.
			// Answer "normal, zero confidence" rather than invent a verdict.
			out[i] = Result{Label: 0, Score: 0}
			continue
		}
		label := 0
		if s >= d.cutoff {
			label = 1
		}
		out[i] = Result{Label: label, Score: 1 / (1 + math.Exp(-(s-d.cutoff)/d.scale))}
	}
	return out
}

func (d *scorerDetector) DetectSentence(sentence string) Result {
	return d.DetectBatch([]string{sentence})[0]
}

func (d *scorerDetector) DetectJob(j flowbench.Job) Result {
	s := d.sc.Score([]flowbench.Job{j})[0]
	label := 0
	if s >= d.cutoff {
		label = 1
	}
	return Result{Label: label, Score: 1 / (1 + math.Exp(-(s-d.cutoff)/d.scale))}
}

func (d *scorerDetector) Approach() Approach { return ApproachBaseline }

// FitFallback fits the named seed baseline ("pca" or "iforest") on train,
// calibrates its decision threshold to the training contamination, and wraps
// it as a brownout Detector ready for Registry.SetFallback. The logistic
// scale is the standard deviation of the training scores, so the degraded
// Score saturates over the score range actually observed.
func FitFallback(name string, train []flowbench.Job, seed uint64) (Detector, error) {
	sc, err := baselines.FitScorer(name, train, seed)
	if err != nil {
		return nil, err
	}
	scores := sc.Score(train)
	cutoff := baselines.CalibrateThreshold(scores, baselines.AnomalyRate(train))
	var mean, sq float64
	for _, s := range scores {
		mean += s
	}
	mean /= float64(len(scores))
	for _, s := range scores {
		sq += (s - mean) * (s - mean)
	}
	scale := math.Sqrt(sq / float64(len(scores)))
	return NewScorerDetector(sc, cutoff, scale), nil
}
