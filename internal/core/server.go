package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/tensor"
)

// DetectRequest is the body of POST /v1/detect. Exactly one of Sentence or
// LogLine must be set.
type DetectRequest struct {
	// Sentence is a parsed feature sentence (Fig 2 format).
	Sentence string `json:"sentence,omitempty"`
	// LogLine is a raw key=value log entry to parse and classify.
	LogLine string `json:"log_line,omitempty"`
}

// DetectResponse is the detection outcome.
type DetectResponse struct {
	Label    int     `json:"label"`
	Category string  `json:"category"`
	Score    float64 `json:"score"`
}

// BatchRequest is the body of POST /v1/detect/batch.
type BatchRequest struct {
	Sentences []string `json:"sentences"`
}

// BatchResponse holds per-sentence outcomes in input order.
type BatchResponse struct {
	Results []DetectResponse `json:"results"`
}

// MonitorRequest is the JSON body of POST /v1/monitor (the endpoint also
// accepts a plain-text body of newline-separated log lines).
type MonitorRequest struct {
	Lines []string `json:"lines"`
}

// MonitorResponse is the body of POST /v1/monitor responses: the run report,
// plus the abort error in strict mode.
type MonitorResponse struct {
	MonitorReport
	Error string `json:"error,omitempty"`
}

// AlertEvent is the SSE wire form of an Alert (`event: alert`).
type AlertEvent struct {
	Line   string         `json:"line"`
	Trace  int            `json:"trace"`
	Node   int            `json:"node"`
	Result DetectResponse `json:"result"`
}

// TraceEvent is the SSE wire form of a trace-flagged verdict
// (`event: trace`).
type TraceEvent struct {
	Trace     int     `json:"trace"`
	Jobs      int     `json:"jobs"`
	Anomalous int     `json:"anomalous"`
	Fraction  float64 `json:"fraction"`
	Flagged   bool    `json:"flagged"`
}

// BatchConfig tunes the server's request-coalescing layer.
type BatchConfig struct {
	// MaxBatch caps the number of sentences per model invocation
	// (default 32).
	MaxBatch int
	// FlushDelay is how long a worker holding a partial batch waits for
	// more requests before running it. Zero or negative flushes as soon as
	// the queue is empty (DefaultBatchConfig uses 2ms).
	FlushDelay time.Duration
	// Workers is the number of concurrent inference workers (default
	// GOMAXPROCS). The batched detection path is read-only on the model,
	// so workers run in parallel on one detector.
	Workers int
	// QueueDepth bounds queued jobs before enqueueing blocks (default 256).
	QueueDepth int
	// MaxRequest caps the sentence count of a single HTTP batch request
	// (default 2048). QueueDepth bounds jobs, not sentences, so without
	// this cap one huge batch would bypass backpressure entirely.
	MaxRequest int
	// Policy is the trace-flagging policy for /v1/monitor ingest (zero
	// value means DefaultTracePolicy).
	Policy TracePolicy
	// MaxTraces bounds the server's online trace window (default 4096).
	MaxTraces int
}

// DefaultBatchConfig is the serving recipe used by NewServer: batches of up
// to 32 coalesced within a 2ms window across GOMAXPROCS workers.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{MaxBatch: 32, FlushDelay: 2 * time.Millisecond}
}

func (c *BatchConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxRequest <= 0 {
		c.MaxRequest = 2048
	}
	// Policy and MaxTraces zero values are resolved by NewTraceTracker.
}

// ErrServerClosed is returned by Detect after Close.
var ErrServerClosed = errors.New("core: server closed")

// maxJSONBody caps JSON request bodies that must be fully materialized
// before processing (/v1/detect/batch and /v1/monitor's JSON form). The
// plain-text /v1/monitor body streams and needs no cap.
const maxJSONBody = 32 << 20

// detectJob is one coalescable unit of work: the sentences of a single HTTP
// request (or programmatic Detect call) and the slot their results land in.
// ctx is the caller's context: a job whose caller has gone away by the time
// its batch runs is skipped instead of computed for nobody.
type detectJob struct {
	ctx       context.Context
	sentences []string
	results   []Result
	err       error // set before done closes when the job was skipped
	done      chan struct{}
}

// Server exposes a Detector over HTTP:
//
//	POST /v1/detect        {"sentence": "..."} or {"log_line": "..."}
//	POST /v1/detect/batch  {"sentences": ["...", ...]}
//	POST /v1/monitor       raw log lines (or {"lines": [...]}) → MonitorReport
//	GET  /v1/alerts        SSE stream of alerts + trace-flagged verdicts
//	GET  /healthz
//
// This is the deployment story the paper motivates: system administrators
// point their workflow logs at a running service instead of standing up an
// ML pipeline.
//
// Requests are micro-batched: handlers enqueue their sentences on a shared
// queue; a single dispatcher goroutine coalesces concurrent requests into
// batches of up to MaxBatch sentences (waiting up to FlushDelay to fill a
// partial batch) and hands each batch to a pool of inference workers. The
// dispatcher/worker split means coalescing engages for any burst of two or
// more in-flight requests, regardless of the worker count; under concurrent
// load many single-sentence forward passes become a few batched ones while
// preserving per-request result order.
type Server struct {
	det     Detector
	mux     *http.ServeMux
	cfg     BatchConfig
	jobs    chan *detectJob
	batches chan []*detectJob

	bus     *alertBus
	tracker *TraceTracker

	mu          sync.RWMutex // guards closed vs. enqueue
	closed      bool
	wg          sync.WaitGroup
	streams     chan struct{} // closed by CloseStreams: terminates SSE handlers
	streamsOnce sync.Once
}

// NewServer wraps a detector in an HTTP handler with the default batching
// configuration.
func NewServer(det Detector) *Server { return NewServerWith(det, DefaultBatchConfig()) }

// NewServerWith wraps a detector with an explicit batching configuration and
// starts the inference workers. Call Close to stop them.
func NewServerWith(det Detector, cfg BatchConfig) *Server {
	cfg.fill()
	s := &Server{
		det:     det,
		mux:     http.NewServeMux(),
		cfg:     cfg,
		jobs:    make(chan *detectJob, cfg.QueueDepth),
		batches: make(chan []*detectJob, cfg.Workers),
		bus:     newAlertBus(),
		tracker: NewTraceTracker(cfg.Policy, cfg.MaxTraces),
		streams: make(chan struct{}),
	}
	s.mux.HandleFunc("/v1/detect", s.handleDetect)
	s.mux.HandleFunc("/v1/detect/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/monitor", s.handleMonitor)
	s.mux.HandleFunc("/v1/alerts", s.handleAlerts)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.wg.Add(1)
	go s.dispatch()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close drains queued requests, stops the inference workers, terminates any
// open /v1/alerts streams, and fails subsequent Detect calls with
// ErrServerClosed. It is idempotent.
func (s *Server) Close() {
	s.CloseStreams()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()
	s.wg.Wait()
}

// CloseStreams terminates open /v1/alerts SSE connections without stopping
// the inference workers. Graceful HTTP shutdown needs this first:
// http.Server.Shutdown waits for active connections, and an SSE stream never
// goes idle on its own. Call CloseStreams, then http.Server.Shutdown (which
// lets in-flight detect requests finish), then Close. Idempotent.
func (s *Server) CloseStreams() {
	s.streamsOnce.Do(func() { close(s.streams) })
}

// Detect classifies sentences through the coalescing layer, blocking until
// their results are ready (in input order). It is the programmatic form of
// the HTTP endpoints and is safe for concurrent use.
func (s *Server) Detect(sentences []string) ([]Result, error) {
	return s.DetectContext(context.Background(), sentences)
}

// DetectContext is Detect honoring caller cancellation: it returns ctx.Err()
// as soon as ctx is done, whether the job is still queued or in flight, and
// the batch runner skips enqueued jobs whose context has already been
// cancelled instead of computing results nobody will read. The HTTP handlers
// thread their request contexts through here, so a disconnected client stops
// occupying a worker.
func (s *Server) DetectContext(ctx context.Context, sentences []string) ([]Result, error) {
	if len(sentences) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	j := &detectJob{ctx: ctx, sentences: sentences, done: make(chan struct{})}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrServerClosed
	}
	select {
	case s.jobs <- j:
		s.mu.RUnlock()
	case <-ctx.Done():
		s.mu.RUnlock()
		return nil, ctx.Err()
	}
	select {
	case <-j.done:
		// A skipped job closes done with err set; returning it (rather than
		// assuming results exist) matters because this select can win the
		// race against ctx.Done after a cancellation.
		return j.results, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// MonitorIngest streams raw log lines from r through the server's
// micro-batching monitor, folding trace state into the server's persistent
// tracker and publishing alert and trace-flagged events to /v1/alerts
// subscribers (plus any extra sinks). It backs POST /v1/monitor and
// anomalyd's -tail mode.
//
// Inference goes through the same coalescing queue as /v1/detect: each
// chunk is enqueued as one job, so concurrent ingests share the worker
// pool's backpressure (QueueDepth) instead of spawning their own unbounded
// inference — /v1/monitor cannot starve detect traffic of workers.
func (s *Server) MonitorIngest(ctx context.Context, r io.Reader, strict bool, extra ...AlertSink) (MonitorReport, error) {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return MonitorReport{}, ErrServerClosed
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	qd := &queueDetector{inner: s.det, s: s, ctx: ctx, cancel: cancel}
	cfg := MonitorConfig{
		ChunkSize: s.cfg.MaxBatch,
		Workers:   s.cfg.Workers,
		Strict:    strict,
		Tracker:   s.tracker,
		Sinks:     append([]AlertSink{busSink{s.bus}}, extra...),
	}
	report, err := MonitorWith(ctx, qd, r, cfg)
	if qerr := qd.firstErr(); qerr != nil && (err == nil || errors.Is(err, context.Canceled)) {
		err = qerr
	}
	return report, err
}

// queueDetector adapts the server's coalescing Detect path to the monitor's
// Detector interface: monitor chunks become queue jobs executed by the
// pooled inference workers (which own the workspaces), rather than direct
// model calls. On a queue error it cancels the ingest and records the cause.
type queueDetector struct {
	inner  Detector
	s      *Server
	ctx    context.Context
	cancel context.CancelFunc

	mu  sync.Mutex
	err error
}

func (d *queueDetector) DetectBatch(sentences []string) []Result {
	res, err := d.s.DetectContext(d.ctx, sentences)
	if err != nil {
		d.mu.Lock()
		if d.err == nil && !errors.Is(err, context.Canceled) {
			d.err = err
		}
		d.mu.Unlock()
		d.cancel()
		// Nil, not zeroed: the collector folds only returned results into
		// the report, so a failed chunk is dropped rather than counted as
		// len(sentences) confident "normal" classifications.
		return nil
	}
	return res
}

func (d *queueDetector) firstErr() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

func (d *queueDetector) DetectSentence(sentence string) Result {
	res := d.DetectBatch([]string{sentence})
	if len(res) == 0 {
		return Result{}
	}
	return res[0]
}
func (d *queueDetector) DetectJob(j flowbench.Job) Result {
	return d.DetectSentence(logparse.Sentence(j))
}
func (d *queueDetector) Approach() Approach { return d.inner.Approach() }

// dispatch is the single batch-forming goroutine: it takes one queued job,
// coalesces more until the batch is full, the flush deadline passes, or the
// queue goes idle, then hands the batch to the worker pool. Centralizing
// batch formation here (rather than in each worker) means two concurrent
// requests coalesce even when many workers sit idle.
func (s *Server) dispatch() {
	defer s.wg.Done()
	defer close(s.batches)
	for job := range s.jobs {
		batch := []*detectJob{job}
		n := len(job.sentences)
		if s.cfg.FlushDelay > 0 {
			timer := time.NewTimer(s.cfg.FlushDelay)
		fill:
			for n < s.cfg.MaxBatch {
				select {
				case nj, ok := <-s.jobs:
					if !ok {
						break fill
					}
					batch = append(batch, nj)
					n += len(nj.sentences)
				case <-timer.C:
					break fill
				}
			}
			timer.Stop()
		} else {
		drain:
			for n < s.cfg.MaxBatch {
				select {
				case nj, ok := <-s.jobs:
					if !ok {
						break drain
					}
					batch = append(batch, nj)
					n += len(nj.sentences)
				default:
					break drain
				}
			}
		}
		s.batches <- batch
	}
}

// worker executes dispatched batches through the detector. Each worker owns
// one tensor.Workspace for its lifetime: when the detector supports
// workspace-threaded batches (BatchWSDetector), every model invocation
// reuses the worker's arena instead of allocating its temporaries, so
// steady-state serving is allocation-free outside request plumbing.
func (s *Server) worker() {
	defer s.wg.Done()
	ws := tensor.GetWorkspace()
	defer tensor.PutWorkspace(ws)
	wsDet, _ := s.det.(BatchWSDetector)
	for batch := range s.batches {
		s.runBatch(batch, wsDet, ws)
	}
}

// runBatch classifies the coalesced sentences in MaxBatch-sized chunks and
// hands each job a private copy of its results, preserving input order.
// Copying (rather than sub-slicing one shared backing array) keeps jobs from
// aliasing each other's memory once their waiters take ownership. Jobs whose
// caller already cancelled are skipped entirely — their sentences never
// reach the model. The worker's workspace is reset between chunks, bounding
// the arena to one chunk's scratch.
func (s *Server) runBatch(batch []*detectJob, wsDet BatchWSDetector, ws *tensor.Workspace) {
	live := make([]*detectJob, 0, len(batch))
	total := 0
	for _, j := range batch {
		if j.ctx != nil && j.ctx.Err() != nil {
			j.err = j.ctx.Err()
			close(j.done) // waiter already gone; unblock any racing reader
			continue
		}
		live = append(live, j)
		total += len(j.sentences)
	}
	all := make([]string, 0, total)
	for _, j := range live {
		all = append(all, j.sentences...)
	}
	results := make([]Result, 0, total)
	for lo := 0; lo < len(all); lo += s.cfg.MaxBatch {
		hi := min(lo+s.cfg.MaxBatch, len(all))
		if wsDet != nil {
			ws.Reset()
			results = append(results, wsDet.DetectBatchWS(all[lo:hi], ws)...)
		} else {
			results = append(results, s.det.DetectBatch(all[lo:hi])...)
		}
	}
	off := 0
	for _, j := range live {
		n := len(j.sentences)
		j.results = append(make([]Result, 0, n), results[off:off+n]...)
		off += n
		close(j.done)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","approach":%q,"max_batch":%d,"workers":%d,"max_request":%d,"active_traces":%d}`,
		s.det.Approach(), s.cfg.MaxBatch, s.cfg.Workers, s.cfg.MaxRequest, s.tracker.Len())
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req DetectRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	sentence := req.Sentence
	if req.LogLine != "" {
		if sentence != "" {
			http.Error(w, "set exactly one of sentence or log_line", http.StatusBadRequest)
			return
		}
		job, err := logparse.ParseLogLine(req.LogLine)
		if err != nil {
			http.Error(w, "bad log line: "+err.Error(), http.StatusBadRequest)
			return
		}
		sentence = logparse.Sentence(job)
	}
	if sentence == "" {
		http.Error(w, "set exactly one of sentence or log_line", http.StatusBadRequest)
		return
	}
	results, err := s.DetectContext(r.Context(), []string{sentence})
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, toResponse(results[0]))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Sentences) > s.cfg.MaxRequest {
		http.Error(w, fmt.Sprintf("batch of %d sentences exceeds the per-request cap of %d",
			len(req.Sentences), s.cfg.MaxRequest), http.StatusRequestEntityTooLarge)
		return
	}
	results, err := s.DetectContext(r.Context(), req.Sentences)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	resp := BatchResponse{Results: make([]DetectResponse, len(results))}
	for i, res := range results {
		resp.Results[i] = toResponse(res)
	}
	writeJSON(w, resp)
}

// handleMonitor is POST /v1/monitor: bulk log ingest through the streaming
// monitor. The body is either plain text (one key=value log line per line)
// or JSON {"lines": [...]} with Content-Type application/json. `?strict=1`
// aborts on the first malformed line; the default skips and counts. Alerts
// and trace-flagged events stream to /v1/alerts subscribers; the response is
// the run's MonitorReport.
func (s *Server) handleMonitor(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var body io.Reader = r.Body
	if strings.Contains(r.Header.Get("Content-Type"), "application/json") {
		// The JSON form materializes the whole body, so cap it; unbounded
		// ingest should use the plain-text form, which streams.
		var req MonitorRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody)).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		for i, line := range req.Lines {
			// One array element must stay one monitor line; an embedded
			// newline would silently split into several (and skew strict
			// mode's reported line numbers).
			if strings.ContainsRune(line, '\n') {
				http.Error(w, fmt.Sprintf("bad request: lines[%d] contains a newline", i), http.StatusBadRequest)
				return
			}
		}
		body = strings.NewReader(strings.Join(req.Lines, "\n"))
	}
	strict := r.URL.Query().Get("strict") == "1" || r.URL.Query().Get("strict") == "true"
	report, err := s.MonitorIngest(r.Context(), body, strict)
	resp := MonitorResponse{MonitorReport: report}
	switch {
	case errors.Is(err, ErrServerClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		resp.Error = err.Error()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// handleAlerts is GET /v1/alerts: a Server-Sent Events stream of detection
// alerts (`event: alert`, AlertEvent data) and trace verdicts
// (`event: trace`, TraceEvent data) from monitor ingest. The stream ends
// when the client disconnects or the server shuts its streams.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch := s.bus.subscribe()
	defer s.bus.unsubscribe(ch)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprintf(w, ": streaming alerts\n\n")
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.streams:
			return
		case ev := <-ch:
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
			fl.Flush()
		}
	}
}

// sseEvent is one pre-marshalled server-sent event.
type sseEvent struct {
	name string
	data []byte
}

// alertBus fans monitor events out to SSE subscribers. Publishing never
// blocks: a subscriber whose buffer is full misses the event (alerting is
// best-effort telemetry; /v1/monitor's report holds the authoritative
// counts).
type alertBus struct {
	mu   sync.Mutex
	subs map[chan sseEvent]struct{}
}

func newAlertBus() *alertBus { return &alertBus{subs: make(map[chan sseEvent]struct{})} }

func (b *alertBus) subscribe() chan sseEvent {
	ch := make(chan sseEvent, 64)
	b.mu.Lock()
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch
}

func (b *alertBus) unsubscribe(ch chan sseEvent) {
	b.mu.Lock()
	delete(b.subs, ch)
	b.mu.Unlock()
}

func (b *alertBus) publish(name string, v interface{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.subs) == 0 {
		return // nobody listening: skip the marshal on the ingest path
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	for ch := range b.subs {
		select {
		case ch <- sseEvent{name: name, data: data}:
		default: // slow subscriber: drop rather than stall the monitor
		}
	}
}

// busSink adapts the alert bus to the monitor's AlertSink interface,
// translating core events to their SSE wire forms.
type busSink struct{ bus *alertBus }

func (b busSink) Alert(a Alert) {
	b.bus.publish("alert", AlertEvent{
		Line:   a.Line,
		Trace:  a.Job.TraceID,
		Node:   a.Job.NodeIndex,
		Result: toResponse(a.Result),
	})
}

func (b busSink) TraceFlagged(v TraceVerdict) {
	b.bus.publish("trace", TraceEvent{
		Trace:     v.TraceID,
		Jobs:      v.Jobs,
		Anomalous: v.Anomalous,
		Fraction:  v.Fraction(),
		Flagged:   v.Flagged,
	})
}

func toResponse(res Result) DetectResponse {
	category := logparse.LabelNormal
	if res.Abnormal() {
		category = logparse.LabelAbnormal
	}
	return DetectResponse{Label: res.Label, Category: category, Score: res.Score}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
