package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/flowbench"
	"repro/internal/logparse"
)

// DetectRequest is the body of POST /v1/detect. Exactly one of Sentence or
// LogLine must be set.
type DetectRequest struct {
	// Sentence is a parsed feature sentence (Fig 2 format).
	Sentence string `json:"sentence,omitempty"`
	// LogLine is a raw key=value log entry to parse and classify.
	LogLine string `json:"log_line,omitempty"`
}

// DetectResponse is the detection outcome.
type DetectResponse struct {
	Label    int     `json:"label"`
	Category string  `json:"category"`
	Score    float64 `json:"score"`
}

// BatchRequest is the body of POST /v1/detect/batch.
type BatchRequest struct {
	Sentences []string `json:"sentences"`
}

// BatchResponse holds per-sentence outcomes in input order.
type BatchResponse struct {
	Results []DetectResponse `json:"results"`
}

// MonitorRequest is the JSON body of POST /v1/monitor (the endpoint also
// accepts a plain-text body of newline-separated log lines).
type MonitorRequest struct {
	Lines []string `json:"lines"`
}

// MonitorResponse is the body of POST /v1/monitor responses: the run report,
// plus the abort error in strict mode.
type MonitorResponse struct {
	MonitorReport
	Error string `json:"error,omitempty"`
}

// ModelsResponse is the body of GET /v1/models.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

// AlertEvent is the SSE wire form of an Alert (`event: alert`). Model names
// which registry model produced the event, so subscribers to the shared
// /v1/alerts stream can attribute interleaved events in multi-model serving.
type AlertEvent struct {
	Model  string         `json:"model"`
	Line   string         `json:"line"`
	Trace  int            `json:"trace"`
	Node   int            `json:"node"`
	Result DetectResponse `json:"result"`
}

// TraceEvent is the SSE wire form of a trace-flagged verdict
// (`event: trace`).
type TraceEvent struct {
	Model     string  `json:"model"`
	Trace     int     `json:"trace"`
	Jobs      int     `json:"jobs"`
	Anomalous int     `json:"anomalous"`
	Fraction  float64 `json:"fraction"`
	Flagged   bool    `json:"flagged"`
}

// BatchConfig tunes one served model's request-coalescing layer.
type BatchConfig struct {
	// MaxBatch caps the number of sentences per model invocation
	// (default 32).
	MaxBatch int
	// FlushDelay is how long a worker holding a partial batch waits for
	// more requests before running it. Zero or negative flushes as soon as
	// the queue is empty (DefaultBatchConfig uses 2ms).
	FlushDelay time.Duration
	// Workers is the number of concurrent inference workers (default
	// GOMAXPROCS). The batched detection path is read-only on the model,
	// so workers run in parallel on one detector.
	Workers int
	// QueueDepth bounds queued jobs before enqueueing blocks (default 256).
	QueueDepth int
	// MaxRequest caps the sentence count of a single HTTP batch request
	// (default 2048). QueueDepth bounds jobs, not sentences, so without
	// this cap one huge batch would bypass backpressure entirely.
	MaxRequest int
	// Policy is the trace-flagging policy for /v1/monitor ingest (zero
	// value means DefaultTracePolicy).
	Policy TracePolicy
	// MaxTraces bounds the model's online trace window (default 4096).
	MaxTraces int
}

// DefaultBatchConfig is the serving recipe used by NewServer: batches of up
// to 32 coalesced within a 2ms window across GOMAXPROCS workers.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{MaxBatch: 32, FlushDelay: 2 * time.Millisecond}
}

func (c *BatchConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxRequest <= 0 {
		c.MaxRequest = 2048
	}
	// Policy and MaxTraces zero values are resolved by NewTraceTracker.
}

// maxJSONBody caps JSON request bodies that must be fully materialized
// before processing (/v1/detect/batch and /v1/monitor's JSON form). The
// plain-text /v1/monitor body streams and needs no cap.
const maxJSONBody = 32 << 20

// Server exposes a Registry of detectors over HTTP:
//
//	POST /v1/detect        {"sentence": "..."} or {"log_line": "..."}
//	POST /v1/detect/batch  {"sentences": ["...", ...]}
//	POST /v1/monitor       raw log lines (or {"lines": [...]}) → MonitorReport
//	GET  /v1/models        registered models and their serving stats
//	GET  /v1/alerts        SSE stream of alerts + trace-flagged verdicts
//	GET  /healthz
//
// Detection and monitor endpoints take an optional ?model=<name> query
// parameter; without it requests route to the registry's default model. This
// is the deployment story the paper motivates, grown to production shape:
// system administrators point workflow logs at one running service hosting a
// detector per workflow or per approach, and operators hot-swap retrained
// artifacts (Registry.Swap) without restarting or dropping requests.
//
// Requests are micro-batched per model: handlers enqueue their sentences on
// the model's queue; a dispatcher goroutine coalesces concurrent requests
// into batches of up to MaxBatch sentences (waiting up to FlushDelay to fill
// a partial batch) and hands each batch to the model's pool of inference
// workers. Under concurrent load many single-sentence forward passes become
// a few batched ones while preserving per-request result order.
type Server struct {
	reg *Registry
	mux *http.ServeMux

	bus *alertBus

	streams     chan struct{} // closed by CloseStreams: terminates SSE handlers
	streamsOnce sync.Once
}

// NewServer wraps a single detector in an HTTP handler with the default
// batching configuration, registered under DefaultModel.
func NewServer(det Detector) *Server { return NewServerWith(det, DefaultBatchConfig()) }

// NewServerWith wraps a single detector with an explicit batching
// configuration and starts its inference workers. Call Close to stop them.
func NewServerWith(det Detector, cfg BatchConfig) *Server {
	reg := NewRegistry()
	if err := reg.Add(DefaultModel, det, cfg); err != nil {
		panic(err) // fresh registry, fixed name: cannot fail
	}
	return NewServerRegistry(reg)
}

// NewServerRegistry wraps an existing registry — typically holding several
// models loaded from artifacts — in the HTTP layer. The server takes
// ownership: Server.Close closes the registry.
func NewServerRegistry(reg *Registry) *Server {
	s := &Server{
		reg:     reg,
		mux:     http.NewServeMux(),
		bus:     newAlertBus(),
		streams: make(chan struct{}),
	}
	s.mux.HandleFunc("/v1/detect", s.handleDetect)
	s.mux.HandleFunc("/v1/detect/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/monitor", s.handleMonitor)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.HandleFunc("/v1/stats/reset", s.handleStatsReset)
	s.mux.HandleFunc("/v1/alerts", s.handleAlerts)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// Registry returns the server's model registry, through which models are
// added, swapped, and removed while serving.
func (s *Server) Registry() *Registry { return s.reg }

// Close drains queued requests, stops every model's inference workers,
// terminates any open /v1/alerts streams, and fails subsequent Detect calls
// with ErrServerClosed. It is idempotent.
func (s *Server) Close() {
	s.CloseStreams()
	s.reg.Close()
}

// CloseStreams terminates open /v1/alerts SSE connections without stopping
// the inference workers. Graceful HTTP shutdown needs this first:
// http.Server.Shutdown waits for active connections, and an SSE stream never
// goes idle on its own. Call CloseStreams, then http.Server.Shutdown (which
// lets in-flight detect requests finish), then Close. Idempotent.
func (s *Server) CloseStreams() {
	s.streamsOnce.Do(func() { close(s.streams) })
}

// Detect classifies sentences through the default model's coalescing layer,
// blocking until their results are ready (in input order). It is the
// programmatic form of the HTTP endpoints and is safe for concurrent use.
func (s *Server) Detect(sentences []string) ([]Result, error) {
	return s.DetectModelContext(context.Background(), "", sentences)
}

// DetectContext is Detect honoring caller cancellation; see
// DetectModelContext.
func (s *Server) DetectContext(ctx context.Context, sentences []string) ([]Result, error) {
	return s.DetectModelContext(ctx, "", sentences)
}

// DetectModelContext classifies sentences through the named model ("" routes
// to the default). It returns ctx.Err() as soon as ctx is done, whether the
// job is still queued or in flight. If the model is hot-swapped between
// routing and enqueueing, the call transparently retries against the
// replacement engine — a Swap under concurrent load drops no requests.
func (s *Server) DetectModelContext(ctx context.Context, model string, sentences []string) ([]Result, error) {
	for {
		eng, err := s.reg.route(model)
		if err != nil {
			return nil, err
		}
		res, err := eng.DetectContext(ctx, sentences)
		if errors.Is(err, ErrServerClosed) {
			// The engine was swapped out (or the registry closed) between
			// route and enqueue. Re-route: a swap installs a replacement the
			// retry lands on; a closed registry surfaces ErrServerClosed from
			// route and terminates the loop.
			continue
		}
		return res, err
	}
}

// MonitorIngest streams raw log lines from r through the default model's
// micro-batching monitor; see MonitorIngestModel.
func (s *Server) MonitorIngest(ctx context.Context, r io.Reader, strict bool, extra ...AlertSink) (MonitorReport, error) {
	return s.MonitorIngestModel(ctx, "", r, strict, extra...)
}

// MonitorIngestModel streams raw log lines from r through the named model's
// micro-batching monitor ("" routes to the default), folding trace state into
// that model's persistent tracker and publishing alert and trace-flagged
// events to /v1/alerts subscribers (plus any extra sinks). It backs POST
// /v1/monitor and anomalyd's -tail mode.
//
// Inference goes through the same per-model coalescing queue as /v1/detect:
// each chunk is enqueued as one job, so concurrent ingests share the worker
// pool's backpressure (QueueDepth) instead of spawning their own unbounded
// inference — /v1/monitor cannot starve detect traffic of workers. The model
// name is resolved once at the start, so a stream keeps feeding the same
// logical model even while its detector is hot-swapped mid-ingest.
func (s *Server) MonitorIngestModel(ctx context.Context, model string, r io.Reader, strict bool, extra ...AlertSink) (MonitorReport, error) {
	name, tracker, cfg, err := s.reg.monitorState(model)
	if err != nil {
		return MonitorReport{}, err
	}
	det, err := s.reg.Detector(name)
	if err != nil {
		return MonitorReport{}, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	qd := &queueDetector{inner: det, s: s, model: name, ctx: ctx, cancel: cancel}
	mcfg := MonitorConfig{
		ChunkSize: cfg.MaxBatch,
		Workers:   cfg.Workers,
		Strict:    strict,
		Tracker:   tracker,
		Sinks:     append([]AlertSink{busSink{bus: s.bus, model: name}}, extra...),
	}
	report, err := MonitorWith(ctx, qd, r, mcfg)
	if qerr := qd.firstErr(); qerr != nil && (err == nil || errors.Is(err, context.Canceled)) {
		err = qerr
	}
	return report, err
}

// queueDetector adapts the server's coalescing per-model detect path to the
// monitor's Detector interface: monitor chunks become queue jobs executed by
// the model's pooled inference workers (which own the workspaces), rather
// than direct model calls. On a queue error it cancels the ingest and records
// the cause.
type queueDetector struct {
	inner  Detector
	s      *Server
	model  string
	ctx    context.Context
	cancel context.CancelFunc

	mu  sync.Mutex
	err error
}

func (d *queueDetector) DetectBatch(sentences []string) []Result {
	res, err := d.s.DetectModelContext(d.ctx, d.model, sentences)
	if err != nil {
		d.mu.Lock()
		if d.err == nil && !errors.Is(err, context.Canceled) {
			d.err = err
		}
		d.mu.Unlock()
		d.cancel()
		// Nil, not zeroed: the collector folds only returned results into
		// the report, so a failed chunk is dropped rather than counted as
		// len(sentences) confident "normal" classifications.
		return nil
	}
	return res
}

func (d *queueDetector) firstErr() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

func (d *queueDetector) DetectSentence(sentence string) Result {
	res := d.DetectBatch([]string{sentence})
	if len(res) == 0 {
		return Result{}
	}
	return res[0]
}
func (d *queueDetector) DetectJob(j flowbench.Job) Result {
	return d.DetectSentence(logparse.Sentence(j))
}
func (d *queueDetector) Approach() Approach { return d.inner.Approach() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// healthResponse is the /healthz body: the default model's serving knobs
// (kept flat for single-model deployments and monitoring probes) plus the
// registry size.
type healthResponse struct {
	Status       string   `json:"status"`
	Approach     Approach `json:"approach"`
	MaxBatch     int      `json:"max_batch"`
	Workers      int      `json:"workers"`
	MaxRequest   int      `json:"max_request"`
	ActiveTraces int      `json:"active_traces"`
	Models       int      `json:"models"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{Status: "ok", Models: s.reg.Len()}
	for _, info := range s.reg.Info() {
		if info.Default {
			resp.Approach = info.Approach
			resp.MaxBatch = info.MaxBatch
			resp.Workers = info.Workers
			resp.MaxRequest = info.MaxRequest
			resp.ActiveTraces = info.ActiveTraces
		}
	}
	writeJSON(w, resp)
}

// handleModels is GET /v1/models: the registered models, their approaches,
// and per-model serving stats — what an operator checks before routing
// traffic with ?model= or hot-swapping an artifact.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, ModelsResponse{Models: s.reg.Info()})
}

// handleStatsReset is POST /v1/stats/reset[?model=]: zero the model's
// serving counters and latency windows. The load lab calls this between
// scenarios so each replay's /v1/models snapshot reflects only its own
// traffic; the trace tracker is left alone.
func (s *Server) handleStatsReset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err := s.reg.ResetStats(modelParam(r)); err != nil {
		writeDetectError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// modelParam extracts the ?model= routing parameter ("" = default model).
func modelParam(r *http.Request) string { return r.URL.Query().Get("model") }

// writeDetectError maps routing/queue errors to HTTP statuses: unknown model
// names are the client's mistake (404), everything else is unavailability.
func writeDetectError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrUnknownModel) {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	http.Error(w, err.Error(), http.StatusServiceUnavailable)
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req DetectRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	sentence := req.Sentence
	if req.LogLine != "" {
		if sentence != "" {
			http.Error(w, "set exactly one of sentence or log_line", http.StatusBadRequest)
			return
		}
		job, err := logparse.ParseLogLine(req.LogLine)
		if err != nil {
			http.Error(w, "bad log line: "+err.Error(), http.StatusBadRequest)
			return
		}
		sentence = logparse.Sentence(job)
	}
	if sentence == "" {
		http.Error(w, "set exactly one of sentence or log_line", http.StatusBadRequest)
		return
	}
	results, err := s.DetectModelContext(r.Context(), modelParam(r), []string{sentence})
	if err != nil {
		writeDetectError(w, err)
		return
	}
	writeJSON(w, toResponse(results[0]))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	model := modelParam(r)
	cfg, err := s.reg.config(model)
	if err != nil {
		writeDetectError(w, err)
		return
	}
	if len(req.Sentences) > cfg.MaxRequest {
		http.Error(w, fmt.Sprintf("batch of %d sentences exceeds the per-request cap of %d",
			len(req.Sentences), cfg.MaxRequest), http.StatusRequestEntityTooLarge)
		return
	}
	results, err := s.DetectModelContext(r.Context(), model, req.Sentences)
	if err != nil {
		writeDetectError(w, err)
		return
	}
	resp := BatchResponse{Results: make([]DetectResponse, len(results))}
	for i, res := range results {
		resp.Results[i] = toResponse(res)
	}
	writeJSON(w, resp)
}

// handleMonitor is POST /v1/monitor: bulk log ingest through the streaming
// monitor of the model named by ?model= (default model otherwise). The body
// is either plain text (one key=value log line per line) or JSON
// {"lines": [...]} with Content-Type application/json. `?strict=1` aborts on
// the first malformed line; the default skips and counts. Alerts and
// trace-flagged events stream to /v1/alerts subscribers; the response is the
// run's MonitorReport.
func (s *Server) handleMonitor(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var body io.Reader = r.Body
	if strings.Contains(r.Header.Get("Content-Type"), "application/json") {
		// The JSON form materializes the whole body, so cap it; unbounded
		// ingest should use the plain-text form, which streams.
		var req MonitorRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody)).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		for i, line := range req.Lines {
			// One array element must stay one monitor line; an embedded
			// newline would silently split into several (and skew strict
			// mode's reported line numbers).
			if strings.ContainsRune(line, '\n') {
				http.Error(w, fmt.Sprintf("bad request: lines[%d] contains a newline", i), http.StatusBadRequest)
				return
			}
		}
		body = strings.NewReader(strings.Join(req.Lines, "\n"))
	}
	strict := r.URL.Query().Get("strict") == "1" || r.URL.Query().Get("strict") == "true"
	report, err := s.MonitorIngestModel(r.Context(), modelParam(r), body, strict)
	resp := MonitorResponse{MonitorReport: report}
	switch {
	case errors.Is(err, ErrUnknownModel):
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	case errors.Is(err, ErrServerClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		resp.Error = err.Error()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// handleAlerts is GET /v1/alerts: a Server-Sent Events stream of detection
// alerts (`event: alert`, AlertEvent data) and trace verdicts
// (`event: trace`, TraceEvent data) from monitor ingest. The stream ends
// when the client disconnects or the server shuts its streams.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch := s.bus.subscribe()
	defer s.bus.unsubscribe(ch)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprintf(w, ": streaming alerts\n\n")
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.streams:
			return
		case ev := <-ch:
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
			fl.Flush()
		}
	}
}

// sseEvent is one pre-marshalled server-sent event.
type sseEvent struct {
	name string
	data []byte
}

// alertBus fans monitor events out to SSE subscribers. Publishing never
// blocks: a subscriber whose buffer is full misses the event (alerting is
// best-effort telemetry; /v1/monitor's report holds the authoritative
// counts).
type alertBus struct {
	mu   sync.Mutex
	subs map[chan sseEvent]struct{}
}

func newAlertBus() *alertBus { return &alertBus{subs: make(map[chan sseEvent]struct{})} }

func (b *alertBus) subscribe() chan sseEvent {
	ch := make(chan sseEvent, 64)
	b.mu.Lock()
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch
}

func (b *alertBus) unsubscribe(ch chan sseEvent) {
	b.mu.Lock()
	delete(b.subs, ch)
	b.mu.Unlock()
}

func (b *alertBus) publish(name string, v interface{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.subs) == 0 {
		return // nobody listening: skip the marshal on the ingest path
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	for ch := range b.subs {
		select {
		case ch <- sseEvent{name: name, data: data}:
		default: // slow subscriber: drop rather than stall the monitor
		}
	}
}

// busSink adapts the alert bus to the monitor's AlertSink interface,
// translating core events to their SSE wire forms stamped with the serving
// model's name.
type busSink struct {
	bus   *alertBus
	model string
}

func (b busSink) Alert(a Alert) {
	b.bus.publish("alert", AlertEvent{
		Model:  b.model,
		Line:   a.Line,
		Trace:  a.Job.TraceID,
		Node:   a.Job.NodeIndex,
		Result: toResponse(a.Result),
	})
}

func (b busSink) TraceFlagged(v TraceVerdict) {
	b.bus.publish("trace", TraceEvent{
		Model:     b.model,
		Trace:     v.TraceID,
		Jobs:      v.Jobs,
		Anomalous: v.Anomalous,
		Fraction:  v.Fraction(),
		Flagged:   v.Flagged,
	})
}

func toResponse(res Result) DetectResponse {
	category := logparse.LabelNormal
	if res.Abnormal() {
		category = logparse.LabelAbnormal
	}
	return DetectResponse{Label: res.Label, Category: category, Score: res.Score}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
