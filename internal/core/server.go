package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/flowbench"
	"repro/internal/logparse"
)

// DetectRequest is the body of POST /v1/detect. Exactly one of Sentence or
// LogLine must be set.
type DetectRequest struct {
	// Sentence is a parsed feature sentence (Fig 2 format).
	Sentence string `json:"sentence,omitempty"`
	// LogLine is a raw key=value log entry to parse and classify.
	LogLine string `json:"log_line,omitempty"`
}

// DetectResponse is the detection outcome. Degraded is set (only on the
// single-sentence endpoint) when the brownout tier answered instead of the
// primary model.
type DetectResponse struct {
	Label    int     `json:"label"`
	Category string  `json:"category"`
	Score    float64 `json:"score"`
	Degraded bool    `json:"degraded,omitempty"`
}

// BatchRequest is the body of POST /v1/detect/batch.
type BatchRequest struct {
	Sentences []string `json:"sentences"`
}

// BatchResponse holds per-sentence outcomes in input order. Degraded is true
// when the brownout tier (the calibrated baseline scorer, not the primary
// model) produced the results — a cheap answer under saturation instead of a
// timeout.
type BatchResponse struct {
	Results  []DetectResponse `json:"results"`
	Degraded bool             `json:"degraded,omitempty"`
}

// MonitorRequest is the JSON body of POST /v1/monitor (the endpoint also
// accepts a plain-text body of newline-separated log lines).
type MonitorRequest struct {
	Lines []string `json:"lines"`
}

// MonitorResponse is the body of POST /v1/monitor responses: the run report,
// plus the abort error in strict mode.
type MonitorResponse struct {
	MonitorReport
	Error string `json:"error,omitempty"`
}

// ModelsResponse is the body of GET /v1/models.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
	// SSE reports the alert bus: subscriber count and events dropped to slow
	// subscribers (publish never blocks the monitor; a full subscriber
	// buffer loses the event, and this is where those losses become
	// visible).
	SSE SSEStats `json:"sse"`
}

// SSEStats is the alert bus's delivery telemetry in /v1/models.
type SSEStats struct {
	Subscribers int   `json:"subscribers"`
	Dropped     int64 `json:"dropped_total"`
	// PerSubscriber breaks drops down by connection, identified by a
	// monotonic id assigned at subscribe time.
	PerSubscriber []SSESubscriberStats `json:"per_subscriber,omitempty"`
}

// SSESubscriberStats is one /v1/alerts connection's delivery counters.
type SSESubscriberStats struct {
	ID      int   `json:"id"`
	Pending int   `json:"pending"`
	Dropped int64 `json:"dropped"`
}

// AlertEvent is the SSE wire form of an Alert (`event: alert`). Model names
// which registry model produced the event, so subscribers to the shared
// /v1/alerts stream can attribute interleaved events in multi-model serving.
type AlertEvent struct {
	Model  string         `json:"model"`
	Line   string         `json:"line"`
	Trace  int            `json:"trace"`
	Node   int            `json:"node"`
	Result DetectResponse `json:"result"`
}

// TraceEvent is the SSE wire form of a trace-flagged verdict
// (`event: trace`).
type TraceEvent struct {
	Model     string  `json:"model"`
	Trace     int     `json:"trace"`
	Jobs      int     `json:"jobs"`
	Anomalous int     `json:"anomalous"`
	Fraction  float64 `json:"fraction"`
	Flagged   bool    `json:"flagged"`
}

// BatchConfig tunes one served model's request-coalescing layer.
type BatchConfig struct {
	// MaxBatch caps the number of sentences per model invocation
	// (default 32).
	MaxBatch int
	// FlushDelay is how long a worker holding a partial batch waits for
	// more requests before running it. Zero or negative flushes as soon as
	// the queue is empty (DefaultBatchConfig uses 2ms).
	FlushDelay time.Duration
	// Workers is the number of concurrent inference workers (default
	// GOMAXPROCS). The batched detection path is read-only on the model,
	// so workers run in parallel on one detector.
	Workers int
	// QueueDepth bounds queued jobs before enqueueing blocks (default 256).
	QueueDepth int
	// MaxRequest caps the sentence count of a single HTTP batch request
	// (default 2048). QueueDepth bounds jobs, not sentences, so without
	// this cap one huge batch would bypass backpressure entirely.
	MaxRequest int
	// Policy is the trace-flagging policy for /v1/monitor ingest (zero
	// value means DefaultTracePolicy).
	Policy TracePolicy
	// MaxTraces bounds the model's online trace window (default 4096).
	MaxTraces int

	// ShedQueueDepth is the admission-control budget: a request arriving
	// while the queue already holds this many jobs is shed with 429
	// Retry-After instead of deepening a backlog the workers cannot drain.
	// Zero disables shedding (requests block on the queue as before);
	// values above QueueDepth are clamped to it.
	ShedQueueDepth int
	// MaxQueueWait is the per-job queue-time budget: a job that sat queued
	// longer than this is shed at dequeue (same 429 contract) instead of
	// computed — its answer would arrive too stale to matter. Zero disables.
	MaxQueueWait time.Duration
	// DefaultDeadline is applied to detect requests that carry no
	// ?deadline_ms; a request whose deadline passes while queued is dropped
	// at dequeue (504) without touching the model. Zero means no default.
	DefaultDeadline time.Duration
	// BrownoutDepth engages the graceful-degradation tier: when the queue
	// has stayed at or above this depth for BrownoutHold and the slot holds
	// a fallback detector (Registry.SetFallback), detect traffic is answered
	// by the cheap tier (degraded:true) until the queue drains to
	// BrownoutRecover. Zero disables brownout.
	BrownoutDepth int
	// BrownoutRecover is the low watermark that disengages the brownout
	// tier (default BrownoutDepth/2).
	BrownoutRecover int
	// BrownoutHold is how long the queue must stay saturated before the
	// tier engages — a single burst should shed, not degrade (default
	// 250ms when BrownoutDepth is set).
	BrownoutHold time.Duration
}

// DefaultBatchConfig is the serving recipe used by NewServer: batches of up
// to 32 coalesced within a 2ms window across GOMAXPROCS workers.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{MaxBatch: 32, FlushDelay: 2 * time.Millisecond}
}

func (c *BatchConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxRequest <= 0 {
		c.MaxRequest = 2048
	}
	if c.ShedQueueDepth > c.QueueDepth {
		c.ShedQueueDepth = c.QueueDepth
	}
	if c.BrownoutDepth > 0 {
		if c.BrownoutRecover <= 0 {
			c.BrownoutRecover = c.BrownoutDepth / 2
		}
		if c.BrownoutHold <= 0 {
			c.BrownoutHold = 250 * time.Millisecond
		}
	}
	// Policy and MaxTraces zero values are resolved by NewTraceTracker.
}

// maxJSONBody caps JSON request bodies that must be fully materialized
// before processing (/v1/detect/batch and /v1/monitor's JSON form). The
// plain-text /v1/monitor body streams and needs no cap.
const maxJSONBody = 32 << 20

// Server exposes a Registry of detectors over HTTP:
//
//	POST /v1/detect        {"sentence": "..."} or {"log_line": "..."}
//	POST /v1/detect/batch  {"sentences": ["...", ...]}
//	POST /v1/monitor       raw log lines (or {"lines": [...]}) → MonitorReport
//	GET  /v1/models        registered models and their serving stats
//	GET  /v1/alerts        SSE stream of alerts + trace-flagged verdicts
//	GET  /healthz
//
// Detection and monitor endpoints take an optional ?model=<name> query
// parameter; without it requests route to the registry's default model. This
// is the deployment story the paper motivates, grown to production shape:
// system administrators point workflow logs at one running service hosting a
// detector per workflow or per approach, and operators hot-swap retrained
// artifacts (Registry.Swap) without restarting or dropping requests.
//
// Requests are micro-batched per model: handlers enqueue their sentences on
// the model's queue; a dispatcher goroutine coalesces concurrent requests
// into batches of up to MaxBatch sentences (waiting up to FlushDelay to fill
// a partial batch) and hands each batch to the model's pool of inference
// workers. Under concurrent load many single-sentence forward passes become
// a few batched ones while preserving per-request result order.
type Server struct {
	reg *Registry
	mux *http.ServeMux

	bus *alertBus

	// instance is this replica's identity in multi-replica deployments
	// (anomalyd -instance): stamped on every response as X-Replica and
	// exported as the repro_instance_info label on /metrics, so a gateway
	// drill can attribute responses to the replica that answered.
	instance string

	streams     chan struct{} // closed by CloseStreams: terminates SSE handlers
	streamsOnce sync.Once
}

// NewServer wraps a single detector in an HTTP handler with the default
// batching configuration, registered under DefaultModel.
func NewServer(det Detector) *Server { return NewServerWith(det, DefaultBatchConfig()) }

// NewServerWith wraps a single detector with an explicit batching
// configuration and starts its inference workers. Call Close to stop them.
func NewServerWith(det Detector, cfg BatchConfig) *Server {
	reg := NewRegistry()
	if err := reg.Add(DefaultModel, det, cfg); err != nil {
		panic(err) // fresh registry, fixed name: cannot fail
	}
	return NewServerRegistry(reg)
}

// NewServerRegistry wraps an existing registry — typically holding several
// models loaded from artifacts — in the HTTP layer. The server takes
// ownership: Server.Close closes the registry.
func NewServerRegistry(reg *Registry) *Server {
	s := &Server{
		reg:     reg,
		mux:     http.NewServeMux(),
		bus:     newAlertBus(),
		streams: make(chan struct{}),
	}
	s.mux.HandleFunc("/v1/detect", s.handleDetect)
	s.mux.HandleFunc("/v1/detect/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/monitor", s.handleMonitor)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.HandleFunc("/v1/stats/reset", s.handleStatsReset)
	s.mux.HandleFunc("/v1/alerts", s.handleAlerts)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// SetInstance names this replica for multi-replica deployments: responses
// carry it as X-Replica and /metrics exports it as repro_instance_info.
// Call before serving traffic ("" leaves both off).
func (s *Server) SetInstance(name string) { s.instance = name }

// Registry returns the server's model registry, through which models are
// added, swapped, and removed while serving.
func (s *Server) Registry() *Registry { return s.reg }

// Close drains queued requests, stops every model's inference workers,
// terminates any open /v1/alerts streams, and fails subsequent Detect calls
// with ErrServerClosed. It is idempotent.
func (s *Server) Close() {
	s.CloseStreams()
	s.reg.Close()
}

// CloseStreams terminates open /v1/alerts SSE connections without stopping
// the inference workers. Graceful HTTP shutdown needs this first:
// http.Server.Shutdown waits for active connections, and an SSE stream never
// goes idle on its own. Call CloseStreams, then http.Server.Shutdown (which
// lets in-flight detect requests finish), then Close. Idempotent.
func (s *Server) CloseStreams() {
	s.streamsOnce.Do(func() { close(s.streams) })
}

// Detect classifies sentences through the default model's coalescing layer,
// blocking until their results are ready (in input order). It is the
// programmatic form of the HTTP endpoints and is safe for concurrent use.
func (s *Server) Detect(sentences []string) ([]Result, error) {
	//lint:ignore ctxflow public no-context convenience API; documented to run to completion, callers needing cancellation use DetectContext
	return s.DetectModelContext(context.Background(), "", sentences)
}

// DetectContext is Detect honoring caller cancellation; see
// DetectModelContext.
func (s *Server) DetectContext(ctx context.Context, sentences []string) ([]Result, error) {
	return s.DetectModelContext(ctx, "", sentences)
}

// DetectModelContext classifies sentences through the named model ("" routes
// to the default). It returns ctx.Err() as soon as ctx is done, whether the
// job is still queued or in flight. If the model is hot-swapped between
// routing and enqueueing, the call transparently retries against the
// replacement engine — a Swap under concurrent load drops no requests.
func (s *Server) DetectModelContext(ctx context.Context, model string, sentences []string) ([]Result, error) {
	res, _, err := s.DetectModelDegraded(ctx, model, sentences)
	return res, err
}

// DetectModelDegraded is DetectModelContext exposing whether the brownout
// fallback tier (rather than the primary model) produced the results — the
// signal the HTTP layer surfaces as `degraded:true`. Requests shed by
// admission control or the queue-wait budget fail with an *OverloadedError
// (errors.Is ErrOverloaded) carrying a Retry-After estimate.
func (s *Server) DetectModelDegraded(ctx context.Context, model string, sentences []string) ([]Result, bool, error) {
	for {
		eng, err := s.reg.route(model)
		if err != nil {
			return nil, false, err
		}
		res, degraded, err := eng.DetectContext(ctx, sentences)
		if errors.Is(err, ErrServerClosed) {
			// The engine was swapped out (or the registry closed) between
			// route and enqueue. Re-route: a swap installs a replacement the
			// retry lands on; a closed registry surfaces ErrServerClosed from
			// route and terminates the loop.
			continue
		}
		return res, degraded, err
	}
}

// MonitorIngest streams raw log lines from r through the default model's
// micro-batching monitor; see MonitorIngestModel.
func (s *Server) MonitorIngest(ctx context.Context, r io.Reader, strict bool, extra ...AlertSink) (MonitorReport, error) {
	return s.MonitorIngestModel(ctx, "", r, strict, extra...)
}

// MonitorIngestModel streams raw log lines from r through the named model's
// micro-batching monitor ("" routes to the default), folding trace state into
// that model's persistent tracker and publishing alert and trace-flagged
// events to /v1/alerts subscribers (plus any extra sinks). It backs POST
// /v1/monitor and anomalyd's -tail mode.
//
// Inference goes through the same per-model coalescing queue as /v1/detect:
// each chunk is enqueued as one job, so concurrent ingests share the worker
// pool's backpressure (QueueDepth) instead of spawning their own unbounded
// inference — /v1/monitor cannot starve detect traffic of workers. The model
// name is resolved once at the start, so a stream keeps feeding the same
// logical model even while its detector is hot-swapped mid-ingest.
func (s *Server) MonitorIngestModel(ctx context.Context, model string, r io.Reader, strict bool, extra ...AlertSink) (MonitorReport, error) {
	name, tracker, cfg, err := s.reg.monitorState(model)
	if err != nil {
		return MonitorReport{}, err
	}
	det, err := s.reg.Detector(name)
	if err != nil {
		return MonitorReport{}, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	qd := &queueDetector{inner: det, s: s, model: name, ctx: ctx, cancel: cancel}
	mcfg := MonitorConfig{
		ChunkSize: cfg.MaxBatch,
		Workers:   cfg.Workers,
		Strict:    strict,
		Tracker:   tracker,
		Sinks:     append([]AlertSink{busSink{bus: s.bus, model: name}}, extra...),
	}
	report, err := MonitorWith(ctx, qd, r, mcfg)
	if qerr := qd.firstErr(); qerr != nil && (err == nil || errors.Is(err, context.Canceled)) {
		err = qerr
	}
	return report, err
}

// queueDetector adapts the server's coalescing per-model detect path to the
// monitor's Detector interface: monitor chunks become queue jobs executed by
// the model's pooled inference workers (which own the workspaces), rather
// than direct model calls. On a queue error it cancels the ingest and records
// the cause.
type queueDetector struct {
	inner  Detector
	s      *Server
	model  string
	ctx    context.Context
	cancel context.CancelFunc

	mu  sync.Mutex
	err error
}

func (d *queueDetector) DetectBatch(sentences []string) []Result {
	res, err := d.s.DetectModelContext(d.ctx, d.model, sentences)
	if err != nil {
		d.mu.Lock()
		if d.err == nil && !errors.Is(err, context.Canceled) {
			d.err = err
		}
		d.mu.Unlock()
		d.cancel()
		// Nil, not zeroed: the collector folds only returned results into
		// the report, so a failed chunk is dropped rather than counted as
		// len(sentences) confident "normal" classifications.
		return nil
	}
	return res
}

func (d *queueDetector) firstErr() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

func (d *queueDetector) DetectSentence(sentence string) Result {
	res := d.DetectBatch([]string{sentence})
	if len(res) == 0 {
		return Result{}
	}
	return res[0]
}
func (d *queueDetector) DetectJob(j flowbench.Job) Result {
	return d.DetectSentence(logparse.Sentence(j))
}
func (d *queueDetector) Approach() Approach { return d.inner.Approach() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.instance != "" {
		w.Header().Set("X-Replica", s.instance)
	}
	s.mux.ServeHTTP(w, r)
}

// healthResponse is the /healthz body: the default model's serving knobs
// (kept flat for single-model deployments and monitoring probes) plus the
// registry size.
type healthResponse struct {
	Status       string   `json:"status"`
	Approach     Approach `json:"approach"`
	MaxBatch     int      `json:"max_batch"`
	Workers      int      `json:"workers"`
	MaxRequest   int      `json:"max_request"`
	ActiveTraces int      `json:"active_traces"`
	Models       int      `json:"models"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{Status: "ok", Models: s.reg.Len()}
	for _, info := range s.reg.Info() {
		if info.Default {
			resp.Approach = info.Approach
			resp.MaxBatch = info.MaxBatch
			resp.Workers = info.Workers
			resp.MaxRequest = info.MaxRequest
			resp.ActiveTraces = info.ActiveTraces
		}
	}
	writeJSON(w, resp)
}

// readyResponse is the /readyz body: per-model queue saturation and the
// overall verdict. Status 200 means every model is ready; 503 means at least
// one is saturated or browned out — the signal a load balancer or the future
// gateway uses to eject this replica from rotation while it drains.
type readyResponse struct {
	Ready  bool             `json:"ready"`
	Models []ModelReadiness `json:"models"`
}

// handleReady is GET /readyz: readiness, as distinct from /healthz liveness.
// A live-but-saturated replica answers 503 here while still answering 200 on
// /healthz, so orchestrators stop routing to it without restarting it.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	models, ready := s.reg.Readiness()
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(readyResponse{Ready: ready, Models: models})
}

// handleModels is GET /v1/models: the registered models, their approaches,
// and per-model serving stats — what an operator checks before routing
// traffic with ?model= or hot-swapping an artifact.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, ModelsResponse{Models: s.reg.Info(), SSE: s.bus.stats()})
}

// handleStatsReset is POST /v1/stats/reset[?model=]: zero the model's
// serving counters and latency windows. The load lab calls this between
// scenarios so each replay's /v1/models snapshot reflects only its own
// traffic; the trace tracker is left alone.
func (s *Server) handleStatsReset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err := s.reg.ResetStats(modelParam(r)); err != nil {
		writeDetectError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// modelParam extracts the ?model= routing parameter ("" = default model).
func modelParam(r *http.Request) string { return r.URL.Query().Get("model") }

// requestDeadline resolves a detect request's deadline: the ?deadline_ms
// query parameter when present, the model's DefaultDeadline otherwise. Zero
// means no deadline.
func requestDeadline(r *http.Request, cfg BatchConfig) (time.Duration, error) {
	v := r.URL.Query().Get("deadline_ms")
	if v == "" {
		return cfg.DefaultDeadline, nil
	}
	ms, err := strconv.Atoi(v)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("bad deadline_ms %q: want a positive integer of milliseconds", v)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// deadlineContext applies d (when positive) to ctx.
func deadlineContext(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// writeDetectError maps routing/queue errors to HTTP statuses: unknown model
// names are the client's mistake (404); shed requests are 429 with the
// server's drain estimate in Retry-After (integer seconds, per RFC 9110) and
// Retry-After-Ms (exact milliseconds, for clients that can back off finer
// than a second); an expired deadline is 504; everything else is 503.
func writeDetectError(w http.ResponseWriter, err error) {
	var oe *OverloadedError
	switch {
	case errors.Is(err, ErrUnknownModel):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.As(err, &oe):
		secs := int64((oe.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		w.Header().Set("Retry-After-Ms", strconv.FormatInt(oe.RetryAfter.Milliseconds(), 10))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "deadline exceeded before results were ready", http.StatusGatewayTimeout)
	default:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	}
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req DetectRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	sentence := req.Sentence
	if req.LogLine != "" {
		if sentence != "" {
			http.Error(w, "set exactly one of sentence or log_line", http.StatusBadRequest)
			return
		}
		job, err := logparse.ParseLogLine(req.LogLine)
		if err != nil {
			http.Error(w, "bad log line: "+err.Error(), http.StatusBadRequest)
			return
		}
		sentence = logparse.Sentence(job)
	}
	if sentence == "" {
		http.Error(w, "set exactly one of sentence or log_line", http.StatusBadRequest)
		return
	}
	model := modelParam(r)
	cfg, err := s.reg.config(model)
	if err != nil {
		writeDetectError(w, err)
		return
	}
	dl, err := requestDeadline(r, cfg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := deadlineContext(r.Context(), dl)
	defer cancel()
	results, degraded, err := s.DetectModelDegraded(ctx, model, []string{sentence})
	if err != nil {
		writeDetectError(w, err)
		return
	}
	resp := toResponse(results[0])
	resp.Degraded = degraded
	writeJSON(w, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	model := modelParam(r)
	cfg, err := s.reg.config(model)
	if err != nil {
		writeDetectError(w, err)
		return
	}
	if len(req.Sentences) > cfg.MaxRequest {
		http.Error(w, fmt.Sprintf("batch of %d sentences exceeds the per-request cap of %d",
			len(req.Sentences), cfg.MaxRequest), http.StatusRequestEntityTooLarge)
		return
	}
	dl, err := requestDeadline(r, cfg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := deadlineContext(r.Context(), dl)
	defer cancel()
	results, degraded, err := s.DetectModelDegraded(ctx, model, req.Sentences)
	if err != nil {
		writeDetectError(w, err)
		return
	}
	resp := BatchResponse{Results: make([]DetectResponse, len(results)), Degraded: degraded}
	for i, res := range results {
		resp.Results[i] = toResponse(res)
	}
	writeJSON(w, resp)
}

// handleMonitor is POST /v1/monitor: bulk log ingest through the streaming
// monitor of the model named by ?model= (default model otherwise). The body
// is either plain text (one key=value log line per line) or JSON
// {"lines": [...]} with Content-Type application/json. `?strict=1` aborts on
// the first malformed line; the default skips and counts. Alerts and
// trace-flagged events stream to /v1/alerts subscribers; the response is the
// run's MonitorReport.
func (s *Server) handleMonitor(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var body io.Reader = r.Body
	if strings.Contains(r.Header.Get("Content-Type"), "application/json") {
		// The JSON form materializes the whole body, so cap it; unbounded
		// ingest should use the plain-text form, which streams.
		var req MonitorRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody)).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		for i, line := range req.Lines {
			// One array element must stay one monitor line; an embedded
			// newline would silently split into several (and skew strict
			// mode's reported line numbers).
			if strings.ContainsRune(line, '\n') {
				http.Error(w, fmt.Sprintf("bad request: lines[%d] contains a newline", i), http.StatusBadRequest)
				return
			}
		}
		body = strings.NewReader(strings.Join(req.Lines, "\n"))
	}
	strict := r.URL.Query().Get("strict") == "1" || r.URL.Query().Get("strict") == "true"
	report, err := s.MonitorIngestModel(r.Context(), modelParam(r), body, strict)
	resp := MonitorResponse{MonitorReport: report}
	switch {
	case errors.Is(err, ErrUnknownModel):
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	case errors.Is(err, ErrServerClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		resp.Error = err.Error()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// handleAlerts is GET /v1/alerts: a Server-Sent Events stream of detection
// alerts (`event: alert`, AlertEvent data) and trace verdicts
// (`event: trace`, TraceEvent data) from monitor ingest. The stream ends
// when the client disconnects or the server shuts its streams.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := s.bus.subscribe()
	defer s.bus.unsubscribe(sub)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprintf(w, ": streaming alerts\n\n")
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.streams:
			return
		case ev := <-sub.ch:
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
			fl.Flush()
		}
	}
}

// sseEvent is one pre-marshalled server-sent event.
type sseEvent struct {
	name string
	data []byte
}

// sseSub is one /v1/alerts subscription: its event buffer plus delivery
// counters. dropped is written under the bus mutex and read through stats().
type sseSub struct {
	id      int
	ch      chan sseEvent
	dropped int64
}

// alertBus fans monitor events out to SSE subscribers. Publishing never
// blocks: a subscriber whose buffer is full misses the event (alerting is
// best-effort telemetry; /v1/monitor's report holds the authoritative
// counts) — but the miss is counted, per subscriber and in total, and
// surfaced in /v1/models so silent loss is at least visible loss.
type alertBus struct {
	mu      sync.Mutex
	subs    map[*sseSub]struct{}
	nextID  int
	dropped int64 // includes drops by since-departed subscribers
}

func newAlertBus() *alertBus { return &alertBus{subs: make(map[*sseSub]struct{})} }

func (b *alertBus) subscribe() *sseSub {
	b.mu.Lock()
	b.nextID++
	sub := &sseSub{id: b.nextID, ch: make(chan sseEvent, 64)}
	b.subs[sub] = struct{}{}
	b.mu.Unlock()
	return sub
}

func (b *alertBus) unsubscribe(sub *sseSub) {
	b.mu.Lock()
	delete(b.subs, sub)
	b.mu.Unlock()
}

func (b *alertBus) publish(name string, v interface{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.subs) == 0 {
		return // nobody listening: skip the marshal on the ingest path
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	for sub := range b.subs {
		select {
		case sub.ch <- sseEvent{name: name, data: data}:
		default: // slow subscriber: drop rather than stall the monitor
			sub.dropped++
			b.dropped++
		}
	}
}

// stats snapshots the bus's delivery counters, per-subscriber rows sorted by
// subscription order.
func (b *alertBus) stats() SSEStats {
	b.mu.Lock()
	st := SSEStats{Subscribers: len(b.subs), Dropped: b.dropped}
	for sub := range b.subs {
		st.PerSubscriber = append(st.PerSubscriber, SSESubscriberStats{
			ID:      sub.id,
			Pending: len(sub.ch),
			Dropped: sub.dropped,
		})
	}
	b.mu.Unlock()
	sort.Slice(st.PerSubscriber, func(i, k int) bool {
		return st.PerSubscriber[i].ID < st.PerSubscriber[k].ID
	})
	return st
}

// busSink adapts the alert bus to the monitor's AlertSink interface,
// translating core events to their SSE wire forms stamped with the serving
// model's name.
type busSink struct {
	bus   *alertBus
	model string
}

func (b busSink) Alert(a Alert) {
	b.bus.publish("alert", AlertEvent{
		Model:  b.model,
		Line:   a.Line,
		Trace:  a.Job.TraceID,
		Node:   a.Job.NodeIndex,
		Result: toResponse(a.Result),
	})
}

func (b busSink) TraceFlagged(v TraceVerdict) {
	b.bus.publish("trace", TraceEvent{
		Model:     b.model,
		Trace:     v.TraceID,
		Jobs:      v.Jobs,
		Anomalous: v.Anomalous,
		Fraction:  v.Fraction(),
		Flagged:   v.Flagged,
	})
}

func toResponse(res Result) DetectResponse {
	category := logparse.LabelNormal
	if res.Abnormal() {
		category = logparse.LabelAbnormal
	}
	return DetectResponse{Label: res.Label, Category: category, Score: res.Score}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
