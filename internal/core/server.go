package core

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/logparse"
)

// DetectRequest is the body of POST /v1/detect. Exactly one of Sentence or
// LogLine must be set.
type DetectRequest struct {
	// Sentence is a parsed feature sentence (Fig 2 format).
	Sentence string `json:"sentence,omitempty"`
	// LogLine is a raw key=value log entry to parse and classify.
	LogLine string `json:"log_line,omitempty"`
}

// DetectResponse is the detection outcome.
type DetectResponse struct {
	Label    int     `json:"label"`
	Category string  `json:"category"`
	Score    float64 `json:"score"`
}

// BatchRequest is the body of POST /v1/detect/batch.
type BatchRequest struct {
	Sentences []string `json:"sentences"`
}

// BatchResponse holds per-sentence outcomes in input order.
type BatchResponse struct {
	Results []DetectResponse `json:"results"`
}

// Server exposes a Detector over HTTP:
//
//	POST /v1/detect        {"sentence": "..."} or {"log_line": "..."}
//	POST /v1/detect/batch  {"sentences": ["...", ...]}
//	GET  /healthz
//
// This is the deployment story the paper motivates: system administrators
// point their workflow logs at a running service instead of standing up an
// ML pipeline.
type Server struct {
	det Detector
	mux *http.ServeMux
}

// NewServer wraps a detector in an HTTP handler.
func NewServer(det Detector) *Server {
	s := &Server{det: det, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/detect", s.handleDetect)
	s.mux.HandleFunc("/v1/detect/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","approach":%q}`, s.det.Approach())
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req DetectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	sentence := req.Sentence
	if req.LogLine != "" {
		if sentence != "" {
			http.Error(w, "set exactly one of sentence or log_line", http.StatusBadRequest)
			return
		}
		job, err := logparse.ParseLogLine(req.LogLine)
		if err != nil {
			http.Error(w, "bad log line: "+err.Error(), http.StatusBadRequest)
			return
		}
		sentence = logparse.Sentence(job)
	}
	if sentence == "" {
		http.Error(w, "set exactly one of sentence or log_line", http.StatusBadRequest)
		return
	}
	writeJSON(w, toResponse(s.det.DetectSentence(sentence)))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp := BatchResponse{Results: make([]DetectResponse, len(req.Sentences))}
	for i, sentence := range req.Sentences {
		resp.Results[i] = toResponse(s.det.DetectSentence(sentence))
	}
	writeJSON(w, resp)
}

func toResponse(res Result) DetectResponse {
	category := logparse.LabelNormal
	if res.Abnormal() {
		category = logparse.LabelAbnormal
	}
	return DetectResponse{Label: res.Label, Category: category, Score: res.Score}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
