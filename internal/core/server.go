package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/logparse"
	"repro/internal/tensor"
)

// DetectRequest is the body of POST /v1/detect. Exactly one of Sentence or
// LogLine must be set.
type DetectRequest struct {
	// Sentence is a parsed feature sentence (Fig 2 format).
	Sentence string `json:"sentence,omitempty"`
	// LogLine is a raw key=value log entry to parse and classify.
	LogLine string `json:"log_line,omitempty"`
}

// DetectResponse is the detection outcome.
type DetectResponse struct {
	Label    int     `json:"label"`
	Category string  `json:"category"`
	Score    float64 `json:"score"`
}

// BatchRequest is the body of POST /v1/detect/batch.
type BatchRequest struct {
	Sentences []string `json:"sentences"`
}

// BatchResponse holds per-sentence outcomes in input order.
type BatchResponse struct {
	Results []DetectResponse `json:"results"`
}

// BatchConfig tunes the server's request-coalescing layer.
type BatchConfig struct {
	// MaxBatch caps the number of sentences per model invocation
	// (default 32).
	MaxBatch int
	// FlushDelay is how long a worker holding a partial batch waits for
	// more requests before running it. Zero or negative flushes as soon as
	// the queue is empty (DefaultBatchConfig uses 2ms).
	FlushDelay time.Duration
	// Workers is the number of concurrent inference workers (default
	// GOMAXPROCS). The batched detection path is read-only on the model,
	// so workers run in parallel on one detector.
	Workers int
	// QueueDepth bounds queued jobs before enqueueing blocks (default 256).
	QueueDepth int
}

// DefaultBatchConfig is the serving recipe used by NewServer: batches of up
// to 32 coalesced within a 2ms window across GOMAXPROCS workers.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{MaxBatch: 32, FlushDelay: 2 * time.Millisecond}
}

func (c *BatchConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
}

// ErrServerClosed is returned by Detect after Close.
var ErrServerClosed = errors.New("core: server closed")

// detectJob is one coalescable unit of work: the sentences of a single HTTP
// request (or programmatic Detect call) and the slot their results land in.
type detectJob struct {
	sentences []string
	results   []Result
	done      chan struct{}
}

// Server exposes a Detector over HTTP:
//
//	POST /v1/detect        {"sentence": "..."} or {"log_line": "..."}
//	POST /v1/detect/batch  {"sentences": ["...", ...]}
//	GET  /healthz
//
// This is the deployment story the paper motivates: system administrators
// point their workflow logs at a running service instead of standing up an
// ML pipeline.
//
// Requests are micro-batched: handlers enqueue their sentences on a shared
// queue; a single dispatcher goroutine coalesces concurrent requests into
// batches of up to MaxBatch sentences (waiting up to FlushDelay to fill a
// partial batch) and hands each batch to a pool of inference workers. The
// dispatcher/worker split means coalescing engages for any burst of two or
// more in-flight requests, regardless of the worker count; under concurrent
// load many single-sentence forward passes become a few batched ones while
// preserving per-request result order.
type Server struct {
	det     Detector
	mux     *http.ServeMux
	cfg     BatchConfig
	jobs    chan *detectJob
	batches chan []*detectJob

	mu     sync.RWMutex // guards closed vs. enqueue
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a detector in an HTTP handler with the default batching
// configuration.
func NewServer(det Detector) *Server { return NewServerWith(det, DefaultBatchConfig()) }

// NewServerWith wraps a detector with an explicit batching configuration and
// starts the inference workers. Call Close to stop them.
func NewServerWith(det Detector, cfg BatchConfig) *Server {
	cfg.fill()
	s := &Server{
		det:     det,
		mux:     http.NewServeMux(),
		cfg:     cfg,
		jobs:    make(chan *detectJob, cfg.QueueDepth),
		batches: make(chan []*detectJob, cfg.Workers),
	}
	s.mux.HandleFunc("/v1/detect", s.handleDetect)
	s.mux.HandleFunc("/v1/detect/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.wg.Add(1)
	go s.dispatch()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close drains queued requests, stops the inference workers, and fails
// subsequent Detect calls with ErrServerClosed. It is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()
	s.wg.Wait()
}

// Detect classifies sentences through the coalescing layer, blocking until
// their results are ready (in input order). It is the programmatic form of
// the HTTP endpoints and is safe for concurrent use.
func (s *Server) Detect(sentences []string) ([]Result, error) {
	if len(sentences) == 0 {
		return nil, nil
	}
	j := &detectJob{sentences: sentences, done: make(chan struct{})}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrServerClosed
	}
	s.jobs <- j
	s.mu.RUnlock()
	<-j.done
	return j.results, nil
}

// dispatch is the single batch-forming goroutine: it takes one queued job,
// coalesces more until the batch is full, the flush deadline passes, or the
// queue goes idle, then hands the batch to the worker pool. Centralizing
// batch formation here (rather than in each worker) means two concurrent
// requests coalesce even when many workers sit idle.
func (s *Server) dispatch() {
	defer s.wg.Done()
	defer close(s.batches)
	for job := range s.jobs {
		batch := []*detectJob{job}
		n := len(job.sentences)
		if s.cfg.FlushDelay > 0 {
			timer := time.NewTimer(s.cfg.FlushDelay)
		fill:
			for n < s.cfg.MaxBatch {
				select {
				case nj, ok := <-s.jobs:
					if !ok {
						break fill
					}
					batch = append(batch, nj)
					n += len(nj.sentences)
				case <-timer.C:
					break fill
				}
			}
			timer.Stop()
		} else {
		drain:
			for n < s.cfg.MaxBatch {
				select {
				case nj, ok := <-s.jobs:
					if !ok {
						break drain
					}
					batch = append(batch, nj)
					n += len(nj.sentences)
				default:
					break drain
				}
			}
		}
		s.batches <- batch
	}
}

// worker executes dispatched batches through the detector. Each worker owns
// one tensor.Workspace for its lifetime: when the detector supports
// workspace-threaded batches (BatchWSDetector), every model invocation
// reuses the worker's arena instead of allocating its temporaries, so
// steady-state serving is allocation-free outside request plumbing.
func (s *Server) worker() {
	defer s.wg.Done()
	ws := tensor.GetWorkspace()
	defer tensor.PutWorkspace(ws)
	wsDet, _ := s.det.(BatchWSDetector)
	for batch := range s.batches {
		s.runBatch(batch, wsDet, ws)
	}
}

// runBatch classifies the coalesced sentences in MaxBatch-sized chunks and
// hands each job its slice of the results, preserving input order. The
// worker's workspace is reset between chunks, bounding the arena to one
// chunk's scratch.
func (s *Server) runBatch(batch []*detectJob, wsDet BatchWSDetector, ws *tensor.Workspace) {
	total := 0
	for _, j := range batch {
		total += len(j.sentences)
	}
	all := make([]string, 0, total)
	for _, j := range batch {
		all = append(all, j.sentences...)
	}
	results := make([]Result, 0, total)
	for lo := 0; lo < len(all); lo += s.cfg.MaxBatch {
		hi := min(lo+s.cfg.MaxBatch, len(all))
		if wsDet != nil {
			ws.Reset()
			results = append(results, wsDet.DetectBatchWS(all[lo:hi], ws)...)
		} else {
			results = append(results, s.det.DetectBatch(all[lo:hi])...)
		}
	}
	off := 0
	for _, j := range batch {
		j.results = results[off : off+len(j.sentences)]
		off += len(j.sentences)
		close(j.done)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","approach":%q,"max_batch":%d,"workers":%d}`,
		s.det.Approach(), s.cfg.MaxBatch, s.cfg.Workers)
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req DetectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	sentence := req.Sentence
	if req.LogLine != "" {
		if sentence != "" {
			http.Error(w, "set exactly one of sentence or log_line", http.StatusBadRequest)
			return
		}
		job, err := logparse.ParseLogLine(req.LogLine)
		if err != nil {
			http.Error(w, "bad log line: "+err.Error(), http.StatusBadRequest)
			return
		}
		sentence = logparse.Sentence(job)
	}
	if sentence == "" {
		http.Error(w, "set exactly one of sentence or log_line", http.StatusBadRequest)
		return
	}
	results, err := s.Detect([]string{sentence})
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, toResponse(results[0]))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	results, err := s.Detect(req.Sentences)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	resp := BatchResponse{Results: make([]DetectResponse, len(results))}
	for i, res := range results {
		resp.Results[i] = toResponse(res)
	}
	writeJSON(w, resp)
}

func toResponse(res Result) DetectResponse {
	category := logparse.LabelNormal
	if res.Abnormal() {
		category = logparse.LabelAbnormal
	}
	return DetectResponse{Label: res.Label, Category: category, Score: res.Score}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
