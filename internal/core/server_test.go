package core

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/tensor"
)

// TestDetectBatchMatchesSequential pins the batched detector path to the
// per-sentence path: same labels, same scores, input order preserved.
func TestDetectBatchMatchesSequential(t *testing.T) {
	det, ds := detector(t)
	sentences := make([]string, 16)
	for i := range sentences {
		sentences[i] = logparse.Sentence(ds.Test[i])
	}
	got := det.DetectBatch(sentences)
	if len(got) != len(sentences) {
		t.Fatalf("batch returned %d results, want %d", len(got), len(sentences))
	}
	for i, s := range sentences {
		want := det.DetectSentence(s)
		if got[i].Label != want.Label {
			t.Fatalf("sentence %d: batch label %d vs sequential %d", i, got[i].Label, want.Label)
		}
		if math.Abs(got[i].Score-want.Score) > 1e-5 {
			t.Fatalf("sentence %d: batch score %v vs sequential %v", i, got[i].Score, want.Score)
		}
	}
	if res := det.DetectBatch(nil); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
}

// TestServerBatchOrdering posts a batch larger than MaxBatch and checks the
// results come back in input order, matching the sequential classification
// of each sentence.
func TestServerBatchOrdering(t *testing.T) {
	det, ds := detector(t)
	s := NewServerWith(det, BatchConfig{MaxBatch: 4, FlushDelay: time.Millisecond, Workers: 2})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	sentences := make([]string, 10)
	want := make([]Result, 10)
	for i := range sentences {
		sentences[i] = logparse.Sentence(ds.Test[i])
		want[i] = det.DetectSentence(sentences[i])
	}
	body, _ := json.Marshal(BatchRequest{Sentences: sentences})
	resp, err := http.Post(srv.URL+"/v1/detect/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(sentences) {
		t.Fatalf("results = %d, want %d", len(out.Results), len(sentences))
	}
	for i, r := range out.Results {
		if r.Label != want[i].Label {
			t.Fatalf("result %d out of order: label %d, want %d", i, r.Label, want[i].Label)
		}
	}
}

// TestServerCoalescedConcurrency fires concurrent single-sentence requests
// through the coalescing layer and checks every response against the
// sequential reference — correctness must not depend on how requests are
// micro-batched together.
func TestServerCoalescedConcurrency(t *testing.T) {
	det, ds := detector(t)
	s := NewServerWith(det, BatchConfig{MaxBatch: 8, FlushDelay: 2 * time.Millisecond, Workers: 2})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	const n = 24
	sentences := make([]string, n)
	want := make([]Result, n)
	for i := range sentences {
		sentences[i] = logparse.Sentence(ds.Test[i%len(ds.Test)])
		want[i] = det.DetectSentence(sentences[i])
	}
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(DetectRequest{Sentence: sentences[i]})
			resp, err := http.Post(srv.URL+"/v1/detect", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			var out DetectResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err.Error()
				return
			}
			if out.Label != want[i].Label || math.Abs(out.Score-want[i].Score) > 1e-5 {
				errs <- "coalesced response does not match sequential reference"
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestServerBatchErrors covers the batch endpoint's error and edge paths.
func TestServerBatchErrors(t *testing.T) {
	det, _ := detector(t)
	s := NewServer(det)
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	// GET: method not allowed.
	resp, _ := http.Get(srv.URL + "/v1/detect/batch")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed JSON.
	resp, _ = http.Post(srv.URL+"/v1/detect/batch", "application/json", strings.NewReader("{"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-json status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Empty body.
	resp, _ = http.Post(srv.URL+"/v1/detect/batch", "application/json", strings.NewReader(""))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty-body status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Empty sentence list: valid, zero results.
	resp, _ = http.Post(srv.URL+"/v1/detect/batch", "application/json", strings.NewReader(`{"sentences":[]}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty-list status = %d", resp.StatusCode)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(out.Results) != 0 {
		t.Fatalf("empty list returned %d results", len(out.Results))
	}
}

// TestServerClose checks shutdown semantics: Close is idempotent, and
// subsequent requests fail with 503 / ErrServerClosed instead of hanging.
func TestServerClose(t *testing.T) {
	det, ds := detector(t)
	s := NewServer(det)
	srv := httptest.NewServer(s)
	defer srv.Close()

	sentence := logparse.Sentence(ds.Test[0])
	if _, err := s.Detect([]string{sentence}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Detect([]string{sentence}); err != ErrServerClosed {
		t.Fatalf("Detect after Close: err = %v", err)
	}
	body, _ := json.Marshal(DetectRequest{Sentence: sentence})
	resp, err := http.Post(srv.URL+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close status = %d", resp.StatusCode)
	}
}

// TestHealthReportsBatching checks the health endpoint exposes the batching
// knobs.
func TestHealthReportsBatching(t *testing.T) {
	det, _ := detector(t)
	s := NewServerWith(det, BatchConfig{MaxBatch: 16, Workers: 3})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status   string `json:"status"`
		Approach string `json:"approach"`
		MaxBatch int    `json:"max_batch"`
		Workers  int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.MaxBatch != 16 || health.Workers != 3 {
		t.Fatalf("health = %+v", health)
	}
}

// wsProbeDetector is a stub BatchWSDetector that stamps a per-call token
// into workspace scratch and re-reads it after simulated work. If the server
// ever handed one workspace to two concurrent batches, the re-read (or the
// race detector) catches it.
type wsProbeDetector struct {
	mu    sync.Mutex
	calls int
	fails int
}

func (d *wsProbeDetector) DetectSentence(string) Result     { return Result{} }
func (d *wsProbeDetector) DetectJob(j flowbench.Job) Result { return Result{} }
func (d *wsProbeDetector) Approach() Approach               { return SFT }

func (d *wsProbeDetector) DetectBatch(sentences []string) []Result {
	return make([]Result, len(sentences))
}

func (d *wsProbeDetector) DetectBatchWS(sentences []string, ws *tensor.Workspace) []Result {
	d.mu.Lock()
	d.calls++
	token := float32(d.calls)
	d.mu.Unlock()
	m := ws.Get(16, 16)
	m.Fill(token)
	scratch := ws.Get(8, 8) // exercise multiple arena slots
	scratch.Fill(-token)
	time.Sleep(time.Millisecond) // widen the overlap window across workers
	for _, v := range m.Data {
		if v != token {
			d.mu.Lock()
			d.fails++
			d.mu.Unlock()
			break
		}
	}
	return make([]Result, len(sentences))
}

// TestServerWorkersOwnWorkspaces hammers a multi-worker server under -race:
// every model invocation must see a workspace exclusively its own.
func TestServerWorkersOwnWorkspaces(t *testing.T) {
	det := &wsProbeDetector{}
	s := NewServerWith(det, BatchConfig{MaxBatch: 2, FlushDelay: 0, Workers: 4})
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := s.Detect([]string{"a", "b", "c"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	det.mu.Lock()
	defer det.mu.Unlock()
	if det.calls == 0 {
		t.Fatal("workspace-threaded batch path never ran")
	}
	if det.fails != 0 {
		t.Fatalf("%d batches observed another batch's workspace writes", det.fails)
	}
}

// countingDetector is a stub that records every sentence it classifies and
// can be slowed down to hold a worker busy.
type countingDetector struct {
	delay time.Duration
	mu    sync.Mutex
	seen  []string
}

func (d *countingDetector) record(ss []string) []Result {
	d.mu.Lock()
	d.seen = append(d.seen, ss...)
	d.mu.Unlock()
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	out := make([]Result, len(ss))
	for i, s := range ss {
		out[i] = Result{Label: len(s) % 2, Score: float64(len(s))}
	}
	return out
}

func (d *countingDetector) DetectSentence(s string) Result {
	return d.record([]string{s})[0]
}
func (d *countingDetector) DetectBatch(ss []string) []Result { return d.record(ss) }
func (d *countingDetector) DetectJob(j flowbench.Job) Result {
	return d.DetectSentence(logparse.Sentence(j))
}
func (d *countingDetector) Approach() Approach { return SFT }

func (d *countingDetector) sentences() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.seen...)
}

// TestDetectContextCancelledJobSkipped checks a job whose caller gave up is
// never classified: its sentences must not reach the model.
func TestDetectContextCancelledJobSkipped(t *testing.T) {
	det := &countingDetector{delay: 50 * time.Millisecond}
	s := NewServerWith(det, BatchConfig{MaxBatch: 8, FlushDelay: 0, Workers: 1})
	defer s.Close()

	// Occupy the single worker.
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		if _, err := s.Detect([]string{"blocker"}); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(10 * time.Millisecond)

	// Enqueue a job, then cancel its caller before the worker frees up.
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.DetectContext(ctx, []string{"cancelled-job"})
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("DetectContext err = %v, want context.Canceled", err)
	}
	<-blockerDone
	s.Close() // drain so every enqueued batch has run
	for _, seen := range det.sentences() {
		if seen == "cancelled-job" {
			t.Fatal("cancelled job's sentences were classified anyway")
		}
	}
}

// TestDetectContextPreCancelled checks an already-dead context never
// enqueues.
func TestDetectContextPreCancelled(t *testing.T) {
	det := &countingDetector{}
	s := NewServerWith(det, BatchConfig{Workers: 1})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.DetectContext(ctx, []string{"x"}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestServerCloseWithInflightDetectContext hammers Close against concurrent
// DetectContext callers (some cancelling) under -race: every call must
// return a result, a context error, or ErrServerClosed — never hang or
// panic.
func TestServerCloseWithInflightDetectContext(t *testing.T) {
	det := &countingDetector{delay: time.Millisecond}
	s := NewServerWith(det, BatchConfig{MaxBatch: 4, FlushDelay: time.Millisecond, Workers: 2, QueueDepth: 8})

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if g%2 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i)*time.Millisecond)
				}
				res, err := s.DetectContext(ctx, []string{"a", "b"})
				cancel()
				switch {
				case err == nil:
					if len(res) != 2 {
						t.Errorf("got %d results, want 2", len(res))
						return
					}
				case err == ErrServerClosed, err == context.Canceled, err == context.DeadlineExceeded:
				default:
					t.Errorf("unexpected error %v", err)
					return
				}
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond)
	s.Close()
	wg.Wait()
}

// TestRunBatchResultsNotAliased pins the fix for jobs sharing one results
// backing array: mutating one caller's results must not corrupt another's,
// even when the dispatcher coalesced them into a single batch.
func TestRunBatchResultsNotAliased(t *testing.T) {
	det := &countingDetector{delay: 50 * time.Millisecond}
	s := NewServerWith(det, BatchConfig{MaxBatch: 8, FlushDelay: 5 * time.Millisecond, Workers: 1})
	defer s.Close()

	// Hold the single worker so the next two requests coalesce.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); s.Detect([]string{"blocker"}) }()
	time.Sleep(10 * time.Millisecond)

	type out struct {
		res []Result
		err error
	}
	ch := make(chan out, 2)
	for _, sentence := range []string{"aa", "bbbb"} {
		go func(sentence string) {
			res, err := s.Detect([]string{sentence})
			ch <- out{res, err}
		}(sentence)
	}
	var got [2]out
	for i := range got {
		got[i] = <-ch
		if got[i].err != nil {
			t.Fatal(got[i].err)
		}
		if len(got[i].res) != 1 {
			t.Fatalf("request %d: %d results", i, len(got[i].res))
		}
	}
	wg.Wait()
	want1 := got[1].res[0]
	got[0].res[0] = Result{Label: -99, Score: -99}
	if got[1].res[0] != want1 {
		t.Fatalf("mutating request 0's results changed request 1's: %+v", got[1].res[0])
	}
}

// TestHandleBatchSentenceCap checks one huge request can't bypass the
// queue-depth backpressure: over-cap batches are rejected with 413.
func TestHandleBatchSentenceCap(t *testing.T) {
	det := &countingDetector{}
	s := NewServerWith(det, BatchConfig{MaxRequest: 4, Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	body, _ := json.Marshal(BatchRequest{Sentences: []string{"a", "b", "c", "d", "e"}})
	resp, err := http.Post(srv.URL+"/v1/detect/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	// At the cap is fine.
	body, _ = json.Marshal(BatchRequest{Sentences: []string{"a", "b", "c", "d"}})
	resp, err = http.Post(srv.URL+"/v1/detect/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("at-cap status = %d, want 200", resp.StatusCode)
	}
}
