package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/cascade"
	"repro/internal/flowbench"
	"repro/internal/logparse"
)

// cascadeTestJobs builds a gating fixture: jittered normal jobs (unique,
// parseable sentences) with a rare 666-marker anomaly every anomalyEvery
// jobs — the marker markDetector keys on, far enough out that the stage-1
// scorer isolates it. Verdicts are 1 exactly on the anomalies, so with the
// default target recall no anomaly's score lands below the calibrated
// confident-normal threshold: each one reaches stage 2 or short-circuits
// abnormal, never normal.
func cascadeTestJobs(n, anomalyEvery int) (jobs []flowbench.Job, verdicts []int) {
	jobs = make([]flowbench.Job, n)
	verdicts = make([]int, n)
	for i := range jobs {
		j := streamJob(i/8, i%8, false)
		for k := range j.Features {
			j.Features[k] = float64(10+k) + float64((i*7+k*13)%11)
		}
		if i%anomalyEvery == 0 {
			j.Features[2] = 666
			verdicts[i] = 1
		}
		jobs[i] = j
	}
	return jobs, verdicts
}

// testCascadeGate fits a stage-1 gate over the fixture against
// markDetector-style verdicts and sanity-checks that it actually separates:
// no anomaly short-circuits to normal (the recall guarantee), and at least
// one normal short-circuits (otherwise the tests below would vacuously
// pass).
func testCascadeGate(t *testing.T, jobs []flowbench.Job, verdicts []int) *cascade.Gate {
	t.Helper()
	g, err := cascade.Fit(cascade.Config{Scorer: "iforest", Seed: 3}, jobs, verdicts)
	if err != nil {
		t.Fatal(err)
	}
	short := 0
	for i, j := range jobs {
		d := g.Decide(g.ScoreJob(j))
		if verdicts[i] == 1 && d == cascade.ShortNormal {
			t.Fatalf("calibrated gate short-circuits anomaly %d to normal", i)
		}
		if d == cascade.ShortNormal {
			short++
		}
	}
	if short == 0 {
		t.Fatal("gate short-circuits nothing; fixture provides no gating coverage")
	}
	return g
}

// TestCascadeEngineOrderPreserving: with a gate installed, concurrent detect
// requests interleave short-circuited and transformer-answered lines, and
// every response must come back in input order with the verdict the
// transformer path would have produced (normals are 0 either way; anomalies
// must pass through and be flagged by stage 2).
func TestCascadeEngineOrderPreserving(t *testing.T) {
	jobs, verdicts := cascadeTestJobs(128, 8)
	g := testCascadeGate(t, jobs, verdicts)

	reg := NewRegistry()
	if err := reg.Add("m", markDetector{}, BatchConfig{MaxBatch: 8, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if err := reg.SetCascade("m", g); err != nil {
		t.Fatal(err)
	}
	srv := NewServerRegistry(reg)
	defer srv.Close()

	sentences := make([]string, len(jobs))
	for i, j := range jobs {
		sentences[i] = logparse.Sentence(j)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	bad := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker rotates the input so the batches mix differently.
			in := make([]string, len(sentences))
			want := make([]int, len(sentences))
			for i := range sentences {
				src := (i + w*17) % len(sentences)
				in[i] = sentences[src]
				want[i] = verdicts[src]
			}
			res, err := srv.DetectModelContext(context.Background(), "m", in)
			if err != nil {
				errs[w] = err
				return
			}
			for i := range res {
				if res[i].Label != want[i] {
					bad[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatal(errs[w])
		}
		if bad[w] != 0 {
			t.Errorf("worker %d: %d results out of order or misrouted", w, bad[w])
		}
	}

	st, err := reg.Stats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.CascadeEvaluated == 0 || st.CascadeShort == 0 {
		t.Fatalf("gate installed but counters flat: %+v", st)
	}
	if st.CascadePassed != st.CascadeEvaluated-st.CascadeShort {
		t.Errorf("passed %d != evaluated %d - short %d", st.CascadePassed, st.CascadeEvaluated, st.CascadeShort)
	}
	if st.CascadePassFraction <= 0 || st.CascadePassFraction >= 1 {
		t.Errorf("pass fraction %v outside (0, 1)", st.CascadePassFraction)
	}
}

// TestCascadeCountersResetAndSwap: the cascade counters reset with the rest
// of the model's stats, and both the gate and its counters survive a
// hot-swap of the underlying detector — the gate belongs to the registry
// slot, not the engine.
func TestCascadeCountersResetAndSwap(t *testing.T) {
	jobs, verdicts := cascadeTestJobs(64, 8)
	g := testCascadeGate(t, jobs, verdicts)

	reg := NewRegistry()
	if err := reg.Add("m", markDetector{}, BatchConfig{MaxBatch: 8, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if err := reg.SetCascade("m", g); err != nil {
		t.Fatal(err)
	}
	srv := NewServerRegistry(reg)
	defer srv.Close()

	sentences := make([]string, len(jobs))
	for i, j := range jobs {
		sentences[i] = logparse.Sentence(j)
	}
	if _, err := srv.DetectModelContext(context.Background(), "m", sentences); err != nil {
		t.Fatal(err)
	}
	st, err := reg.Stats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.CascadeEvaluated == 0 {
		t.Fatalf("no cascade evaluations recorded: %+v", st)
	}

	if err := reg.ResetStats("m"); err != nil {
		t.Fatal(err)
	}
	st, err = reg.Stats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.CascadeEvaluated != 0 || st.CascadeShort != 0 || st.CascadePassed != 0 || st.CascadePassFraction != 0 {
		t.Fatalf("cascade counters survived reset: %+v", st)
	}

	if err := reg.Swap("m", hashDetector{}); err != nil {
		t.Fatal(err)
	}
	got, err := reg.Cascade("m")
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("gate dropped by Swap")
	}
	var info *ModelInfo
	for _, mi := range reg.Info() {
		if mi.Name == "m" {
			mi := mi
			info = &mi
		}
	}
	if info == nil || !info.HasCascade || info.CascadeScorer != "iforest" {
		t.Fatalf("ModelInfo after swap = %+v, want HasCascade with iforest", info)
	}
	if _, err := srv.DetectModelContext(context.Background(), "m", sentences); err != nil {
		t.Fatal(err)
	}
	st, err = reg.Stats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.CascadeEvaluated == 0 || st.CascadeShort == 0 {
		t.Fatalf("gate inactive after swap: %+v", st)
	}

	// Removing the gate turns the counters off for new traffic.
	if err := reg.SetCascade("m", nil); err != nil {
		t.Fatal(err)
	}
	if err := reg.ResetStats("m"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.DetectModelContext(context.Background(), "m", sentences); err != nil {
		t.Fatal(err)
	}
	st, err = reg.Stats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.CascadeEvaluated != 0 {
		t.Fatalf("cascade counters moved with no gate installed: %+v", st)
	}
}

// TestCascadeMonitorParity: the monitor chunk path with a gate produces the
// same alerts and flagged traces as without one (the gate passes everything
// it was calibrated to protect), while the report shows stage 1 absorbing
// part of the stream.
func TestCascadeMonitorParity(t *testing.T) {
	jobs, verdicts := cascadeTestJobs(128, 8)
	g := testCascadeGate(t, jobs, verdicts)

	run := func(gate *cascade.Gate) (MonitorReport, []string, []int) {
		var alerts []string
		var flagged []int
		report, err := MonitorWith(context.Background(), markDetector{}, strings.NewReader(logOf(jobs)), MonitorConfig{
			ChunkSize: 16,
			Gate:      gate,
			Sinks: []AlertSink{SinkFuncs{
				OnAlert: func(a Alert) { alerts = append(alerts, a.Line) },
				OnTrace: func(v TraceVerdict) { flagged = append(flagged, v.TraceID) },
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return report, alerts, flagged
	}

	base, baseAlerts, baseFlagged := run(nil)
	casc, cascAlerts, cascFlagged := run(g)

	if base.CascadeEvaluated != 0 || base.CascadeShort != 0 {
		t.Fatalf("gate-free monitor reported cascade counters: %+v", base)
	}
	if casc.CascadeEvaluated == 0 || casc.CascadeShort == 0 {
		t.Fatalf("gated monitor never short-circuited: %+v", casc)
	}
	if casc.Processed != base.Processed || casc.Malformed != base.Malformed {
		t.Fatalf("gated monitor processed %d/%d, base %d/%d",
			casc.Processed, casc.Malformed, base.Processed, base.Malformed)
	}
	if len(cascAlerts) != len(baseAlerts) || casc.Alerts != base.Alerts {
		t.Fatalf("alerts diverge: gated %d, base %d", len(cascAlerts), len(baseAlerts))
	}
	for i := range baseAlerts {
		if cascAlerts[i] != baseAlerts[i] {
			t.Fatalf("alert %d diverges: gated %q, base %q", i, cascAlerts[i], baseAlerts[i])
		}
	}
	if len(cascFlagged) != len(baseFlagged) || casc.FlaggedTraces != base.FlaggedTraces {
		t.Fatalf("flagged traces diverge: gated %v, base %v", cascFlagged, baseFlagged)
	}
	for i := range baseFlagged {
		if cascFlagged[i] != baseFlagged[i] {
			t.Fatalf("flagged trace %d diverges: gated %d, base %d", i, cascFlagged[i], baseFlagged[i])
		}
	}
}

// TestFitCascadeUsesDetectorVerdicts: FitCascade calibrates against what the
// detector actually flags — the positives count is exactly the set of
// detector-flagged jobs.
func TestFitCascadeUsesDetectorVerdicts(t *testing.T) {
	jobs, verdicts := cascadeTestJobs(300, 10) // >256 forces the chunked DetectBatch path
	want := 0
	for _, v := range verdicts {
		want += v
	}
	g, err := FitCascade(markDetector{}, cascade.Config{Scorer: "iforest", Seed: 5}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if g.Positives() != want {
		t.Fatalf("Positives() = %d, want %d (markDetector flags exactly the 666 markers)", g.Positives(), want)
	}
	for i, j := range jobs {
		if verdicts[i] == 1 {
			if d := g.Decide(g.ScoreJob(j)); d == cascade.ShortNormal {
				t.Fatalf("anomaly %d short-circuited to normal", i)
			}
		}
	}
}
