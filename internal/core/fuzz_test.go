package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"testing"

	"repro/internal/tokenizer"
)

// artifactBytes assembles a syntactically well-formed artifact frame —
// magic, version, length-prefixed sections, CRC trailer — so the fuzzer's
// mutation effort goes into the section payloads instead of rediscovering
// the checksum.
func artifactBytes(sections ...[]byte) []byte {
	var buf bytes.Buffer
	h := crc32.NewIEEE()
	mw := io.MultiWriter(&buf, h)
	binary.Write(mw, binary.LittleEndian, artifactMagic)
	binary.Write(mw, binary.LittleEndian, ArtifactVersion)
	for _, s := range sections {
		binary.Write(mw, binary.LittleEndian, uint32(len(s)))
		mw.Write(s)
	}
	binary.Write(&buf, binary.LittleEndian, h.Sum32())
	return buf.Bytes()
}

// FuzzLoadDetector drives the artifact reader with corrupt, truncated, and
// near-valid inputs. The invariant is simple: whatever the bytes, the loader
// returns an error or a detector — never a panic, and never an unbounded
// allocation driven by attacker-controlled dimensions.
func FuzzLoadDetector(f *testing.F) {
	var tokBuf bytes.Buffer
	tok := tokenizer.Build([]string{"alpha beta gamma", "delta 42 epsilon"})
	if err := tok.Save(&tokBuf); err != nil {
		f.Fatal(err)
	}
	cfg := []byte(fmt.Sprintf(`{"VocabSize":%d,"MaxSeqLen":16,"DModel":8,"NumHeads":2,"NumLayers":1,"FFNDim":16,"NumClasses":2}`, tok.VocabSize()))

	f.Add([]byte{})
	f.Add([]byte("not an artifact"))
	f.Add(artifactBytes())
	// Frame intact, payloads empty: dies at the approach check.
	f.Add(artifactBytes(nil, nil, nil, nil, nil, nil))
	// Everything valid up to the weights, which are empty: exercises the
	// deepest error path (model built, weight load fails).
	f.Add(artifactBytes([]byte(SFT), []byte(PrecisionFP32), cfg, tokBuf.Bytes(), []byte("{}"), nil))
	// Same artifact with a flipped CRC byte: must be rejected as corrupt.
	valid := artifactBytes([]byte(SFT), []byte(PrecisionFP32), cfg, tokBuf.Bytes(), []byte("{}"), nil)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xff
	f.Add(flipped)
	// Hostile config: huge-but-positive dimensions with a valid frame.
	f.Add(artifactBytes([]byte(ICL), []byte(PrecisionFP32),
		[]byte(`{"VocabSize":1073741824,"MaxSeqLen":1073741824,"DModel":1073741824,"NumHeads":1,"NumLayers":1,"FFNDim":1}`),
		tokBuf.Bytes(), []byte("{}"), nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		det, err := LoadDetector(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the loader accepts must survive a save round-trip.
		var out bytes.Buffer
		if err := SaveDetector(&out, det); err != nil {
			t.Fatalf("loaded detector cannot be re-saved: %v", err)
		}
	})
}
