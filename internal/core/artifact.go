// Detector artifacts: the whole trained detector — transformer weights,
// tokenizer vocabulary, and approach-specific state — as one versioned,
// checksummed binary file. Train once (anomalyd -train-out, sfttrain -save,
// iclrun -save), then serve in milliseconds (anomalyd -load) and hot-swap
// into a running Registry; weights are data, not a boot-time side effect.
//
// Format (all integers little-endian; sections are uint32-length-prefixed
// byte blocks so each layer parses its own payload without over-reading):
//
//	uint32  magic "WFDA"
//	uint32  format version
//	section approach name ("sft" | "icl")
//	section weight precision ("fp32" | "int8")           [v2+]
//	section transformer.Config as JSON (full architecture; no registry needed)
//	section tokenizer vocabulary (tokenizer.Save wire format)
//	section approach metadata as JSON (ICL: LoRA shape + few-shot examples)
//	section model weights (transformer.Model.Save wire format; for int8
//	        artifacts this is the fp32 residue: embeddings, norms, biases,
//	        classification head)
//	section int8 projection weights (transformer.Model.SaveQuantized wire
//	        format)                                      [v2+, int8 only]
//	section cascade gate as JSON (cascade.Params: stage-1 scorer parameters
//	        and calibrated thresholds; zero-length when the detector was
//	        saved without a gate)                        [v3+]
//	uint32  CRC-32 (IEEE) of every preceding byte
//
// Version 1 artifacts (PR 4, fp32-only: no precision section, no int8
// section) and version 2 artifacts (PR 5, no cascade section) still load;
// version 3 is what this build writes. A wrong magic, an unknown version, or
// a checksum mismatch fails loudly with a descriptive error — old or corrupt
// artifacts never load silently.
package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/cascade"
	"repro/internal/icl"
	"repro/internal/nn"
	"repro/internal/prompt"
	"repro/internal/sft"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
	"repro/internal/transformer"
)

const (
	// artifactMagic identifies a detector artifact ("WFDA": workflow
	// detector artifact).
	artifactMagic = uint32(0x57464441)
	// ArtifactVersion is the artifact format version this build writes.
	// Versions 1 (fp32-only) and 2 (no cascade section) are still read;
	// versions above ArtifactVersion are rejected at load.
	ArtifactVersion = uint32(3)
	// artifactMinVersion is the oldest format this build still reads.
	artifactMinVersion = uint32(1)
	// maxSectionBytes bounds one artifact section (the weights of the
	// largest registry model are well under this). A larger declared length
	// means corruption, and catching it avoids a garbage-sized allocation.
	maxSectionBytes = 1 << 28
)

// iclMeta is the approach-specific artifact payload for ICL detectors: how
// to rebuild the model's LoRA structure before loading weights, and the
// few-shot examples whose PromptCache the serving layer rebuilds on first
// use. LoRAScale is stored directly (rather than alpha) so the reconstructed
// adapter scale is bit-identical to the trained one.
type iclMeta struct {
	LoRARank  int              `json:"lora_rank,omitempty"`
	LoRAScale float32          `json:"lora_scale,omitempty"`
	Examples  []prompt.Example `json:"examples"`
}

// loraShape inspects a model for LoRA-wrapped attention projections (the
// Wq/Wv target set ApplyLoRA installs) and returns the adapter shape needed
// to reconstruct an identical parameter layout at load time.
func loraShape(m *transformer.Model) (rank int, scale float32, applied bool) {
	for _, b := range m.Blocks {
		if l, ok := b.Attn.Wq.(*nn.LoRALinear); ok {
			return l.Rank, l.Scale, true
		}
	}
	return 0, 0, false
}

// applyLoRAShape re-installs rank-r adapters on a freshly built model so its
// parameter order and shapes match a saved LoRA-tuned model, then pins the
// exact trained scale (ApplyLoRA recomputes scale from alpha; assigning the
// stored float32 avoids any round-trip drift).
func applyLoRAShape(m *transformer.Model, rank int, scale float32) {
	m.ApplyLoRA(rank, float64(scale)*float64(rank), 0, tensor.NewRNG(1))
	for _, b := range m.Blocks {
		if l, ok := b.Attn.Wq.(*nn.LoRALinear); ok {
			l.Scale = scale
		}
		if l, ok := b.Attn.Wv.(*nn.LoRALinear); ok {
			l.Scale = scale
		}
	}
}

// SaveDetector writes det to w as a detector artifact with no cascade gate.
// Only detectors produced by this package (Train, NewSFTDetector,
// NewICLDetector, LoadDetector) can be saved; foreign Detector
// implementations are rejected.
func SaveDetector(w io.Writer, det Detector) error {
	return SaveDetectorWithCascade(w, det, nil)
}

// SaveDetectorWithCascade writes det and an optional calibrated stage-1 gate
// to w as one artifact, so a trained cascade ships with the detector it was
// calibrated against (thresholds are meaningless against any other model's
// verdicts). A nil gate writes an empty cascade section.
func SaveDetectorWithCascade(w io.Writer, det Detector, gate *cascade.Gate) error {
	var (
		approach Approach
		model    *transformer.Model
		tok      *tokenizer.Tokenizer
		meta     interface{}
	)
	switch d := det.(type) {
	case *sftDetector:
		approach, model, tok = SFT, d.clf.Model, d.clf.Tok
		meta = struct{}{}
	case *iclDetector:
		approach, model, tok = ICL, d.det.Model, d.det.Tok
		rank, scale, applied := loraShape(model)
		im := iclMeta{Examples: d.examples}
		if applied {
			im.LoRARank, im.LoRAScale = rank, scale
		}
		meta = im
	default:
		return fmt.Errorf("core: cannot save detector of type %T (not produced by core.Train or core.LoadDetector)", det)
	}

	precision := PrecisionFP32
	if model.IsQuantized() {
		precision = PrecisionInt8
	}
	h := crc32.NewIEEE()
	mw := io.MultiWriter(w, h)
	for _, v := range []uint32{artifactMagic, ArtifactVersion} {
		if err := binary.Write(mw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := writeSection(mw, []byte(approach)); err != nil {
		return fmt.Errorf("core: writing approach: %w", err)
	}
	if err := writeSection(mw, []byte(precision)); err != nil {
		return fmt.Errorf("core: writing precision: %w", err)
	}
	cfgJSON, err := json.Marshal(model.Config)
	if err != nil {
		return err
	}
	if err := writeSection(mw, cfgJSON); err != nil {
		return fmt.Errorf("core: writing model config: %w", err)
	}
	var tokBuf bytes.Buffer
	if err := tok.Save(&tokBuf); err != nil {
		return err
	}
	if err := writeSection(mw, tokBuf.Bytes()); err != nil {
		return fmt.Errorf("core: writing tokenizer: %w", err)
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	if err := writeSection(mw, metaJSON); err != nil {
		return fmt.Errorf("core: writing metadata: %w", err)
	}
	var wBuf bytes.Buffer
	if err := model.Save(&wBuf); err != nil {
		return err
	}
	if err := writeSection(mw, wBuf.Bytes()); err != nil {
		return fmt.Errorf("core: writing weights: %w", err)
	}
	if precision == PrecisionInt8 {
		var qBuf bytes.Buffer
		if err := model.SaveQuantized(&qBuf); err != nil {
			return err
		}
		if err := writeSection(mw, qBuf.Bytes()); err != nil {
			return fmt.Errorf("core: writing quantized weights: %w", err)
		}
	}
	var gateJSON []byte
	if gate != nil {
		if gateJSON, err = json.Marshal(gate.Params()); err != nil {
			return err
		}
	}
	if err := writeSection(mw, gateJSON); err != nil {
		return fmt.Errorf("core: writing cascade gate: %w", err)
	}
	// The checksum trailer goes to w only: it covers, not includes, itself.
	return binary.Write(w, binary.LittleEndian, h.Sum32())
}

// LoadDetector reads a detector artifact written by SaveDetector and
// reconstructs a ready-to-serve Detector: model rebuilt from the embedded
// config (including LoRA structure for fine-tuned ICL detectors), weights
// loaded bit-exactly, tokenizer restored, and — for ICL — the few-shot
// PromptCache rebuilt lazily on first batched use. Detection results are
// bitwise identical to the detector that was saved. Any embedded cascade
// gate is ignored; use LoadDetectorWithCascade to recover it.
func LoadDetector(r io.Reader) (Detector, error) {
	det, _, err := LoadDetectorWithCascade(r)
	return det, err
}

// LoadDetectorWithCascade reads a detector artifact and the calibrated
// stage-1 gate it carries, if any. v1/v2 artifacts and v3 artifacts saved
// without a gate return a nil gate; a present-but-invalid gate section fails
// the load (a detector served with a corrupt gate would silently misroute
// traffic).
func LoadDetectorWithCascade(r io.Reader) (Detector, *cascade.Gate, error) {
	h := crc32.NewIEEE()
	tr := io.TeeReader(r, h)
	var magic, version uint32
	if err := binary.Read(tr, binary.LittleEndian, &magic); err != nil {
		return nil, nil, fmt.Errorf("core: reading artifact magic: %w", err)
	}
	if magic != artifactMagic {
		return nil, nil, fmt.Errorf("core: not a detector artifact (magic %#x, want %#x)", magic, artifactMagic)
	}
	if err := binary.Read(tr, binary.LittleEndian, &version); err != nil {
		return nil, nil, fmt.Errorf("core: reading artifact version: %w", err)
	}
	if version < artifactMinVersion || version > ArtifactVersion {
		return nil, nil, fmt.Errorf("core: detector artifact format v%d; this build reads v%d–v%d",
			version, artifactMinVersion, ArtifactVersion)
	}
	approachBytes, err := readSection(tr, "approach")
	if err != nil {
		return nil, nil, err
	}
	approach := Approach(approachBytes)
	if approach != SFT && approach != ICL {
		return nil, nil, fmt.Errorf("core: artifact has unknown approach %q", approach)
	}
	// v1 predates mixed precision and is implicitly fp32.
	precision := PrecisionFP32
	if version >= 2 {
		precBytes, err := readSection(tr, "precision")
		if err != nil {
			return nil, nil, err
		}
		precision = Precision(precBytes)
		if precision != PrecisionFP32 && precision != PrecisionInt8 {
			return nil, nil, fmt.Errorf("core: artifact has unknown weight precision %q", precision)
		}
	}
	cfgJSON, err := readSection(tr, "model config")
	if err != nil {
		return nil, nil, err
	}
	var cfg transformer.Config
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return nil, nil, fmt.Errorf("core: decoding model config: %w", err)
	}
	if err := validateArtifactConfig(cfg); err != nil {
		return nil, nil, err
	}
	tokBytes, err := readSection(tr, "tokenizer")
	if err != nil {
		return nil, nil, err
	}
	tok, err := tokenizer.Load(bytes.NewReader(tokBytes))
	if err != nil {
		return nil, nil, err
	}
	if tok.VocabSize() != cfg.VocabSize {
		return nil, nil, fmt.Errorf("core: artifact tokenizer has %d words, model config expects %d", tok.VocabSize(), cfg.VocabSize)
	}
	metaJSON, err := readSection(tr, "metadata")
	if err != nil {
		return nil, nil, err
	}
	weights, err := readSection(tr, "weights")
	if err != nil {
		return nil, nil, err
	}
	var quantized []byte
	if precision == PrecisionInt8 {
		if quantized, err = readSection(tr, "quantized weights"); err != nil {
			return nil, nil, err
		}
	}
	// v3 appends the cascade gate; v1/v2 artifacts simply have none.
	var gateJSON []byte
	if version >= 3 {
		if gateJSON, err = readSection(tr, "cascade gate"); err != nil {
			return nil, nil, err
		}
	}
	sum := h.Sum32()
	var stored uint32
	if err := binary.Read(r, binary.LittleEndian, &stored); err != nil {
		return nil, nil, fmt.Errorf("core: artifact truncated reading checksum: %w", err)
	}
	if stored != sum {
		return nil, nil, fmt.Errorf("core: artifact checksum mismatch (stored %#x, computed %#x): file corrupted?", stored, sum)
	}
	var gate *cascade.Gate
	if len(gateJSON) > 0 {
		var gp cascade.Params
		if err := json.Unmarshal(gateJSON, &gp); err != nil {
			return nil, nil, fmt.Errorf("core: decoding cascade gate: %w", err)
		}
		if gate, err = cascade.FromParams(gp); err != nil {
			return nil, nil, fmt.Errorf("core: rebuilding cascade gate: %w", err)
		}
	}

	// Seed is irrelevant: every parameter is overwritten by Load below.
	model := transformer.New(cfg, tensor.NewRNG(1))
	// loadWeights restores the model's parameters for either precision. For
	// int8 artifacts the quantized projections install first, so the fp32
	// stream's parameter walk matches the residue the artifact carries.
	loadWeights := func() error {
		if precision == PrecisionInt8 {
			if err := model.LoadQuantized(bytes.NewReader(quantized)); err != nil {
				return err
			}
		}
		return model.Load(bytes.NewReader(weights))
	}
	switch approach {
	case SFT:
		if err := loadWeights(); err != nil {
			return nil, nil, err
		}
		return NewSFTDetector(sft.NewClassifier(model, tok)), gate, nil
	default: // ICL, validated above
		var meta iclMeta
		if err := json.Unmarshal(metaJSON, &meta); err != nil {
			return nil, nil, fmt.Errorf("core: decoding ICL metadata: %w", err)
		}
		// Quantized artifacts never carry LoRA structure: QuantizeInt8 merges
		// adapters into the bases before the projections are quantized.
		if meta.LoRARank > 0 && precision == PrecisionFP32 {
			applyLoRAShape(model, meta.LoRARank, meta.LoRAScale)
		}
		if err := loadWeights(); err != nil {
			return nil, nil, err
		}
		return NewICLDetector(icl.NewDetector(model, tok), meta.Examples), gate, nil
	}
}

// maxConfigDim bounds any single model dimension an artifact may declare.
// The checksum protects against corruption, not construction: a crafted
// artifact with a valid CRC and a huge-but-positive dimension would otherwise
// reach transformer.New and allocate gigabytes before Load ever saw the
// weights. 2^20 is orders of magnitude above any model this repo trains.
const maxConfigDim = 1 << 20

// validateArtifactConfig rejects model configs that transformer.New cannot
// build a sane model from, before any allocation happens: non-positive or
// absurd dimensions, head widths that do not divide the residual stream, and
// embedding tables that could not possibly fit the bounded weights section.
func validateArtifactConfig(cfg transformer.Config) error {
	for _, d := range []struct {
		name string
		v    int
	}{
		{"VocabSize", cfg.VocabSize},
		{"MaxSeqLen", cfg.MaxSeqLen},
		{"DModel", cfg.DModel},
		{"NumHeads", cfg.NumHeads},
		{"NumLayers", cfg.NumLayers},
		{"FFNDim", cfg.FFNDim},
	} {
		if d.v <= 0 || d.v > maxConfigDim {
			return fmt.Errorf("core: artifact model config is implausible: %s=%d (want 1..%d)", d.name, d.v, maxConfigDim)
		}
	}
	// Zero NumClasses is legal (transformer.New defaults it to 2).
	if cfg.NumClasses < 0 || cfg.NumClasses > maxConfigDim {
		return fmt.Errorf("core: artifact model config is implausible: NumClasses=%d", cfg.NumClasses)
	}
	if cfg.DModel%cfg.NumHeads != 0 {
		return fmt.Errorf("core: artifact model config is implausible: DModel=%d not divisible by NumHeads=%d", cfg.DModel, cfg.NumHeads)
	}
	// The token and positional embedding tables alone must fit the weights
	// section cap; anything bigger cannot be a loadable artifact.
	if int64(cfg.VocabSize)*int64(cfg.DModel)*4 > maxSectionBytes ||
		int64(cfg.MaxSeqLen)*int64(cfg.DModel)*4 > maxSectionBytes {
		return fmt.Errorf("core: artifact model config implies weights beyond the %d-byte section bound", maxSectionBytes)
	}
	return nil
}

// SaveDetectorFile writes det to path atomically: the artifact lands under a
// temporary name first and is renamed into place, so a reader (or a crash)
// never sees a half-written artifact — the property hot-swap workflows that
// watch an artifact path rely on.
func SaveDetectorFile(path string, det Detector) error {
	return SaveDetectorFileWithCascade(path, det, nil)
}

// SaveDetectorFileWithCascade is SaveDetectorFile carrying an optional
// calibrated stage-1 gate (see SaveDetectorWithCascade).
func SaveDetectorFileWithCascade(path string, det Detector, gate *cascade.Gate) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	// CreateTemp's 0600 would break the train-once/serve-many handoff when
	// training and serving run as different users; artifacts are plain data.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := SaveDetectorWithCascade(tmp, det, gate); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadDetectorFile reads a detector artifact from path, ignoring any
// embedded cascade gate.
func LoadDetectorFile(path string) (Detector, error) {
	det, _, err := LoadDetectorFileWithCascade(path)
	return det, err
}

// LoadDetectorFileWithCascade reads a detector artifact from path along with
// the calibrated stage-1 gate it carries (nil for v1/v2 artifacts or v3
// artifacts saved without one).
func LoadDetectorFileWithCascade(path string) (Detector, *cascade.Gate, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	det, gate, err := LoadDetectorWithCascade(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return det, gate, nil
}

// writeSection writes one uint32-length-prefixed byte block.
func writeSection(w io.Writer, data []byte) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(data))); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// readSection reads one length-prefixed block, rejecting implausible lengths
// and naming the section in truncation errors.
func readSection(r io.Reader, what string) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("core: artifact truncated reading %s length: %w", what, err)
	}
	if n > maxSectionBytes {
		return nil, fmt.Errorf("core: artifact %s section declares %d bytes (corrupt artifact?)", what, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("core: artifact truncated reading %s (%d bytes): %w", what, n, err)
	}
	return buf, nil
}
