package core

// Two-stage cascade inference for the detection hot path. The brownout tier
// (overload.go) answers traffic with a cheap scorer only under sustained
// saturation; the cascade runs a calibrated cheap scorer — by default a
// supervised n-gram over the tokenizer's magnitude buckets, optionally the
// same PCA/iForest family the brownout uses — as an always-on *first stage*
// in front of the transformer. The calibrated gate
// (internal/cascade) short-circuits confidently-normal lines to a verdict
// inside runBatch and the monitor chunk path, so only the uncertain band
// pays full encoder cost, pinned to ≥99% verdict agreement with
// transformer-only serving.

import (
	"sync"

	"repro/internal/cascade"
	"repro/internal/flowbench"
	"repro/internal/logparse"
)

// cascadeSlot is the registry-slot holder of a model's stage-1 gate. Like
// the trace tracker, stats recorder, and fallback slot it belongs to the
// servedModel, not the engine, so SetCascade takes effect immediately and
// the gate survives hot-swaps. Guarded by a mutex rather than an atomic so a
// nil gate (cascade off) stays representable.
type cascadeSlot struct {
	mu sync.RWMutex
	g  *cascade.Gate
}

func (s *cascadeSlot) load() *cascade.Gate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g
}

func (s *cascadeSlot) store(g *cascade.Gate) {
	s.mu.Lock()
	s.g = g
	s.mu.Unlock()
}

// FitCascade fits and calibrates a stage-1 gate against det's own verdicts
// on the training jobs: the detector classifies every training sentence
// once (a one-time training-side cost), and the gate's confident-normal
// threshold is placed so at least cfg.TargetRecall of everything the
// detector flags still reaches the transformer at serve time. The returned
// gate is ready for Registry.SetCascade or artifact persistence.
func FitCascade(det Detector, cfg cascade.Config, train []flowbench.Job) (*cascade.Gate, error) {
	verdicts := make([]int, len(train))
	sentences := make([]string, len(train))
	for i, j := range train {
		sentences[i] = logparse.Sentence(j)
	}
	const chunk = 256
	for lo := 0; lo < len(sentences); lo += chunk {
		hi := min(lo+chunk, len(sentences))
		for k, r := range det.DetectBatch(sentences[lo:hi]) {
			verdicts[lo+k] = r.Label
		}
	}
	return cascade.Fit(cfg, train, verdicts)
}
