package core

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/logparse"
)

// sseClient subscribes to /v1/alerts and forwards event names+payloads.
type sseMsg struct {
	event string
	data  string
}

func sseSubscribe(t *testing.T, url string) (<-chan sseMsg, func()) {
	t.Helper()
	resp, err := http.Get(url + "/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	ch := make(chan sseMsg, 64)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(resp.Body)
		var cur sseMsg
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				cur.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.data = strings.TrimPrefix(line, "data: ")
			case line == "" && cur.event != "":
				ch <- cur
				cur = sseMsg{}
			}
		}
	}()
	return ch, func() { resp.Body.Close() }
}

func waitEvent(t *testing.T, ch <-chan sseMsg, event string) sseMsg {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case m, ok := <-ch:
			if !ok {
				t.Fatalf("SSE stream closed before %q event", event)
			}
			if m.event == event {
				return m
			}
		case <-deadline:
			t.Fatalf("no %q event within deadline", event)
		}
	}
}

// TestMonitorEndpointAndSSE is the streaming smoke test: ingest log lines
// over POST /v1/monitor and watch the alert and trace-flagged events arrive
// on GET /v1/alerts.
func TestMonitorEndpointAndSSE(t *testing.T) {
	s := NewServerWith(markDetector{}, BatchConfig{Workers: 2})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	events, stop := sseSubscribe(t, srv.URL)
	defer stop()

	var body bytes.Buffer
	body.WriteString(logparse.LogLine(streamJob(3, 0, false)) + "\n")
	body.WriteString("this is not a log line\n")
	body.WriteString(logparse.LogLine(streamJob(3, 1, true)) + "\n")
	resp, err := http.Post(srv.URL+"/v1/monitor", "text/plain", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("monitor status = %d", resp.StatusCode)
	}
	var rep MonitorResponse
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Processed != 2 || rep.Alerts != 1 || rep.Malformed != 1 || rep.FlaggedTraces != 1 {
		t.Fatalf("report = %+v", rep.MonitorReport)
	}

	alert := waitEvent(t, events, "alert")
	var ae AlertEvent
	if err := json.Unmarshal([]byte(alert.data), &ae); err != nil {
		t.Fatal(err)
	}
	if ae.Trace != 3 || ae.Node != 1 || ae.Result.Category != "abnormal" {
		t.Fatalf("alert event = %+v", ae)
	}
	trace := waitEvent(t, events, "trace")
	var te TraceEvent
	if err := json.Unmarshal([]byte(trace.data), &te); err != nil {
		t.Fatal(err)
	}
	if te.Trace != 3 || te.Anomalous != 1 || !te.Flagged {
		t.Fatalf("trace event = %+v", te)
	}

	// CloseStreams ends the stream server-side (the graceful-shutdown path).
	s.CloseStreams()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-events:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("SSE stream still open after CloseStreams")
		}
	}
}

// TestMonitorEndpointJSONAndStrict covers the JSON body form and the strict
// query flag.
func TestMonitorEndpointJSONAndStrict(t *testing.T) {
	s := NewServerWith(markDetector{}, BatchConfig{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	body, _ := json.Marshal(MonitorRequest{Lines: []string{
		logparse.LogLine(streamJob(1, 0, true)),
		logparse.LogLine(streamJob(1, 1, false)),
	}})
	resp, err := http.Post(srv.URL+"/v1/monitor", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rep MonitorResponse
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Processed != 2 || rep.Alerts != 1 {
		t.Fatalf("status %d, report %+v", resp.StatusCode, rep.MonitorReport)
	}

	// Strict mode aborts on the malformed line with a 400 + error field.
	resp, err = http.Post(srv.URL+"/v1/monitor?strict=1", "text/plain", strings.NewReader("garbage\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(rep.Error, "line 1") {
		t.Fatalf("strict status %d, error %q", resp.StatusCode, rep.Error)
	}

	// GET is not allowed.
	resp, err = http.Get(srv.URL + "/v1/monitor")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
}

// TestMonitorIngestPersistsTraceState checks the server carries online trace
// state across ingest calls: a trace whose anomalies arrive in separate
// requests still trips the policy.
func TestMonitorIngestPersistsTraceState(t *testing.T) {
	s := NewServerWith(markDetector{}, BatchConfig{
		Workers: 1, Policy: TracePolicy{MinAnomalous: 4, MinFraction: 1.5},
	})
	defer s.Close()

	var flagged []TraceVerdict
	sink := SinkFuncs{OnTrace: func(v TraceVerdict) { flagged = append(flagged, v) }}
	lines := func(n0 int) string {
		var sb strings.Builder
		for i := 0; i < 2; i++ {
			sb.WriteString(logparse.LogLine(streamJob(9, n0+i, true)) + "\n")
		}
		return sb.String()
	}
	rep, err := s.MonitorIngest(context.Background(), strings.NewReader(lines(0)), false, sink)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlaggedTraces != 0 || len(flagged) != 0 {
		t.Fatalf("flagged after 2/4 anomalies: %+v", rep)
	}
	rep, err = s.MonitorIngest(context.Background(), strings.NewReader(lines(2)), false, sink)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlaggedTraces != 1 || len(flagged) != 1 {
		t.Fatalf("second ingest: report %+v, %d trace events", rep, len(flagged))
	}
	if flagged[0].TraceID != 9 || flagged[0].Anomalous != 4 {
		t.Fatalf("trace event = %+v", flagged[0])
	}
}

// TestServerGoroutineDrain is the leak probe behind anomalyd's graceful
// shutdown: after CloseStreams + Close, every server goroutine (dispatcher,
// workers, SSE handlers) must exit.
func TestServerGoroutineDrain(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := NewServerWith(markDetector{}, BatchConfig{Workers: 4})
	srv := httptest.NewServer(s)
	events, stop := sseSubscribe(t, srv.URL)
	if _, err := s.Detect([]string{"warm"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.DetectContext(ctx, []string{"cancelled"}); err != context.Canceled {
		t.Fatalf("err = %v", err)
	}

	s.CloseStreams()
	for range events { // drain until the handler ends the stream
	}
	stop()
	s.Close()
	srv.Close()
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
