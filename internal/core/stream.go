package core

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/flowbench"
	"repro/internal/logparse"
)

// TracePolicy decides when a workflow execution as a whole is anomalous from
// its per-job results.
type TracePolicy struct {
	// MinAnomalous is the minimum number of abnormal jobs to flag the trace.
	MinAnomalous int
	// MinFraction is the minimum abnormal fraction to flag the trace; the
	// trace is flagged when either threshold is met.
	MinFraction float64
}

// DefaultTracePolicy flags a trace when ≥5 jobs or ≥10% of its jobs are
// abnormal — tuned to Flow-Bench's contiguous-segment injections.
func DefaultTracePolicy() TracePolicy { return TracePolicy{MinAnomalous: 5, MinFraction: 0.10} }

// TraceVerdict aggregates per-job detections for one execution.
type TraceVerdict struct {
	TraceID   int
	Jobs      int
	Anomalous int
	Flagged   bool
}

// Fraction returns the abnormal share of the trace.
func (v TraceVerdict) Fraction() float64 {
	if v.Jobs == 0 {
		return 0
	}
	return float64(v.Anomalous) / float64(v.Jobs)
}

// DetectTraces runs the detector over jobs grouped by trace and applies the
// policy to each execution, returning verdicts ordered by trace id. Each
// trace's jobs are classified in one DetectBatch call, and traces are fanned
// out over a bounded worker pool (DetectBatch is read-only on the model, so
// workers share the detector safely).
func DetectTraces(d Detector, jobs []flowbench.Job, policy TracePolicy) []TraceVerdict {
	byTrace := flowbench.TraceJobs(jobs)
	ids := make([]int, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]TraceVerdict, len(ids))
	verdict := func(i int) {
		trace := byTrace[ids[i]]
		sentences := make([]string, len(trace))
		for k, j := range trace {
			sentences[k] = logparse.Sentence(j)
		}
		v := TraceVerdict{TraceID: ids[i], Jobs: len(trace)}
		for _, r := range d.DetectBatch(sentences) {
			if r.Abnormal() {
				v.Anomalous++
			}
		}
		v.Flagged = v.Anomalous >= policy.MinAnomalous ||
			(v.Jobs > 0 && v.Fraction() >= policy.MinFraction)
		out[i] = v
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers <= 1 {
		for i := range ids {
			verdict(i)
		}
		return out
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(ids) {
					return
				}
				verdict(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// Alert is one streaming detection event.
type Alert struct {
	// Line is the raw log line that triggered the alert.
	Line string
	// Job is the parsed record.
	Job flowbench.Job
	// Result is the detection outcome.
	Result Result
}

// Monitor reads raw key=value log lines (logparse.LogLine format) from r,
// classifies each, and invokes onAlert for every line detected as abnormal.
// It returns the number of lines processed and the number of alerts; parse
// errors abort with the offending line's number.
//
// This is the paper's real-time detection loop (Section IV-C) in library
// form: the workflow management system appends to a log, Monitor tails it.
func Monitor(d Detector, r io.Reader, onAlert func(Alert)) (processed, alerts int, err error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if line == "" {
			continue
		}
		job, perr := logparse.ParseLogLine(line)
		if perr != nil {
			return processed, alerts, fmt.Errorf("core: line %d: %w", lineNo, perr)
		}
		processed++
		res := d.DetectJob(job)
		if res.Abnormal() {
			alerts++
			if onAlert != nil {
				onAlert(Alert{Line: line, Job: job, Result: res})
			}
		}
	}
	return processed, alerts, scanner.Err()
}
