package core

import (
	"bufio"
	"container/list"
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cascade"
	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/tensor"
)

// TracePolicy decides when a workflow execution as a whole is anomalous from
// its per-job results.
type TracePolicy struct {
	// MinAnomalous is the minimum number of abnormal jobs to flag the trace.
	MinAnomalous int
	// MinFraction is the minimum abnormal fraction to flag the trace; the
	// trace is flagged when either threshold is met.
	MinFraction float64
}

// DefaultTracePolicy flags a trace when ≥5 jobs or ≥10% of its jobs are
// abnormal — tuned to Flow-Bench's contiguous-segment injections.
func DefaultTracePolicy() TracePolicy { return TracePolicy{MinAnomalous: 5, MinFraction: 0.10} }

// flagged applies the policy to a verdict's current counts.
func (p TracePolicy) flagged(v TraceVerdict) bool {
	return v.Anomalous >= p.MinAnomalous || (v.Jobs > 0 && v.Fraction() >= p.MinFraction)
}

// Flagged reports whether a trace with the given job and abnormal counts
// trips the policy — the exported form of the monitor's per-trace decision,
// used by the scenario lab to turn per-line ground truth (or per-line
// predictions) into trace verdicts it can score against the server's.
func (p TracePolicy) Flagged(jobs, anomalous int) bool {
	return p.flagged(TraceVerdict{Jobs: jobs, Anomalous: anomalous})
}

// TraceVerdict aggregates per-job detections for one execution.
type TraceVerdict struct {
	TraceID   int  `json:"trace"`
	Jobs      int  `json:"jobs"`
	Anomalous int  `json:"anomalous"`
	Flagged   bool `json:"flagged"`
}

// Fraction returns the abnormal share of the trace.
func (v TraceVerdict) Fraction() float64 {
	if v.Jobs == 0 {
		return 0
	}
	return float64(v.Anomalous) / float64(v.Jobs)
}

// DetectTraces runs the detector over jobs grouped by trace and applies the
// policy to each execution, returning verdicts ordered by trace id. Each
// trace's jobs are classified in one DetectBatch call, and traces are fanned
// out over a bounded worker pool (DetectBatch is read-only on the model, so
// workers share the detector safely).
func DetectTraces(d Detector, jobs []flowbench.Job, policy TracePolicy) []TraceVerdict {
	byTrace := flowbench.TraceJobs(jobs)
	ids := make([]int, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]TraceVerdict, len(ids))
	verdict := func(i int) {
		trace := byTrace[ids[i]]
		sentences := make([]string, len(trace))
		for k, j := range trace {
			sentences[k] = logparse.Sentence(j)
		}
		v := TraceVerdict{TraceID: ids[i], Jobs: len(trace)}
		for _, r := range d.DetectBatch(sentences) {
			if r.Abnormal() {
				v.Anomalous++
			}
		}
		v.Flagged = policy.flagged(v)
		out[i] = v
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers <= 1 {
		for i := range ids {
			verdict(i)
		}
		return out
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(ids) {
					return
				}
				verdict(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// Alert is one streaming detection event.
type Alert struct {
	// Line is the raw log line that triggered the alert.
	Line string
	// Job is the parsed record.
	Job flowbench.Job
	// Result is the detection outcome.
	Result Result
}

// AlertSink receives streaming monitor events. Sinks are invoked from a
// single collector goroutine, in input order; a slow sink backpressures the
// monitor, so sinks that fan out (SSE buses, remote hooks) should buffer.
type AlertSink interface {
	// Alert is called for every line classified abnormal.
	Alert(Alert)
	// TraceFlagged is called the first time a trace trips the policy.
	TraceFlagged(TraceVerdict)
}

// SinkFuncs adapts plain functions to AlertSink; nil fields are skipped.
type SinkFuncs struct {
	OnAlert func(Alert)
	OnTrace func(TraceVerdict)
}

// Alert implements AlertSink.
func (s SinkFuncs) Alert(a Alert) {
	if s.OnAlert != nil {
		s.OnAlert(a)
	}
}

// TraceFlagged implements AlertSink.
func (s SinkFuncs) TraceFlagged(v TraceVerdict) {
	if s.OnTrace != nil {
		s.OnTrace(v)
	}
}

// TraceTracker maintains online per-trace verdicts over a stream of job
// observations. State is bounded: at most MaxTraces traces are tracked, with
// least-recently-observed traces evicted first, so memory stays O(active
// traces) on unbounded streams.
//
// Each Observe updates the trace's counts and re-applies the policy, so at
// any instant Verdicts() equals what DetectTraces would compute over the
// jobs observed so far (given identical per-job results). The flag *event*
// (Observe's second return) latches: it fires once per tracked trace, the
// moment the policy first trips, even if later normal jobs dilute the
// fraction back under threshold. The latch lives with the trace's window
// state: a flagged trace that goes quiet long enough to be evicted and then
// returns starts fresh and may re-fire — the deliberate cost of keeping
// memory bounded on unbounded streams (and arguably a re-alert an operator
// wants for a trace that resumed misbehaving).
//
// All methods are safe for concurrent use.
type TraceTracker struct {
	mu      sync.Mutex
	policy  TracePolicy
	max     int
	order   *list.List // front = most recently observed; back = eviction victim
	states  map[int]*list.Element
	evicted int
}

type traceState struct {
	v       TraceVerdict
	alerted bool
}

// NewTraceTracker returns a tracker applying policy over a window of at most
// maxTraces active traces. A zero policy means DefaultTracePolicy; maxTraces
// <= 0 means 4096.
func NewTraceTracker(policy TracePolicy, maxTraces int) *TraceTracker {
	if policy == (TracePolicy{}) {
		policy = DefaultTracePolicy()
	}
	if maxTraces <= 0 {
		maxTraces = 4096
	}
	return &TraceTracker{
		policy: policy,
		max:    maxTraces,
		order:  list.New(),
		states: make(map[int]*list.Element),
	}
}

// Observe folds one job result into the trace's verdict and returns the
// updated verdict, plus true when this observation newly flagged the trace.
func (t *TraceTracker) Observe(traceID int, abnormal bool) (TraceVerdict, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.states[traceID]
	if !ok {
		if len(t.states) >= t.max {
			victim := t.order.Back()
			t.order.Remove(victim)
			delete(t.states, victim.Value.(*traceState).v.TraceID)
			t.evicted++
		}
		el = t.order.PushFront(&traceState{v: TraceVerdict{TraceID: traceID}})
		t.states[traceID] = el
	} else {
		t.order.MoveToFront(el)
	}
	st := el.Value.(*traceState)
	st.v.Jobs++
	if abnormal {
		st.v.Anomalous++
	}
	st.v.Flagged = t.policy.flagged(st.v)
	newly := st.v.Flagged && !st.alerted
	if newly {
		st.alerted = true
	}
	return st.v, newly
}

// Verdict returns the current verdict for one trace, if still tracked.
func (t *TraceTracker) Verdict(traceID int) (TraceVerdict, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.states[traceID]
	if !ok {
		return TraceVerdict{}, false
	}
	return el.Value.(*traceState).v, true
}

// Verdicts returns the verdicts of all tracked traces, ordered by trace id —
// the online counterpart of DetectTraces' return.
func (t *TraceTracker) Verdicts() []TraceVerdict {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceVerdict, 0, len(t.states))
	for _, el := range t.states {
		out = append(out, el.Value.(*traceState).v)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].TraceID < out[k].TraceID })
	return out
}

// Len returns the number of actively tracked traces.
func (t *TraceTracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.states)
}

// Evicted returns the cumulative number of traces dropped from the window.
func (t *TraceTracker) Evicted() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// Reset drops all tracked traces and their alert latches, returning the
// tracker to its freshly-constructed state (policy and window size are kept).
// After a Reset every trace starts a new window and may flag again — the hook
// replay harnesses use to make repeated ingests of the same stream report
// comparable flag counts instead of latch-suppressed zeros.
func (t *TraceTracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.order.Init()
	t.states = make(map[int]*list.Element)
	t.evicted = 0
}

// MonitorReport summarizes one monitor run.
type MonitorReport struct {
	// Processed counts successfully parsed and classified lines.
	Processed int `json:"processed"`
	// Alerts counts lines classified abnormal.
	Alerts int `json:"alerts"`
	// Malformed counts unparseable lines skipped (always 0 in strict mode,
	// which aborts instead).
	Malformed int `json:"malformed"`
	// FlaggedTraces counts traces that newly tripped the policy this run.
	FlaggedTraces int `json:"flagged_traces"`
	// ActiveTraces is the tracker's window size after the run.
	ActiveTraces int `json:"active_traces"`
	// EvictedTraces counts traces dropped from the window during the run.
	EvictedTraces int `json:"evicted_traces"`
	// CascadeEvaluated/CascadeShort count lines scored by the stage-1 gate
	// and the subset it short-circuited without the transformer (zero when
	// the run had no gate).
	CascadeEvaluated int `json:"cascade_evaluated,omitempty"`
	CascadeShort     int `json:"cascade_short_circuited,omitempty"`
}

// MonitorConfig tunes the streaming monitor.
type MonitorConfig struct {
	// ChunkSize is the micro-batch size: lines per model invocation
	// (default 32).
	ChunkSize int
	// FlushDelay bounds how long a partial chunk waits for more lines
	// before being classified anyway (default 100ms, negative disables).
	// Without it a trickling source — a tailed log growing a few lines at
	// a time — would hold alerts hostage until ChunkSize lines accumulate.
	FlushDelay time.Duration
	// Workers is the number of concurrent chunk classifiers (default
	// GOMAXPROCS). Chunks are classified in parallel but alerts and trace
	// updates are applied in input order.
	Workers int
	// Strict aborts on the first malformed line (the legacy Monitor
	// behavior); the default skips and counts it.
	Strict bool
	// Policy is the trace-flagging policy (zero value means
	// DefaultTracePolicy). Ignored when Tracker is set.
	Policy TracePolicy
	// MaxTraces bounds the online trace window (default 4096). Ignored when
	// Tracker is set.
	MaxTraces int
	// Tracker, when non-nil, carries trace state across monitor runs (the
	// server shares one tracker across /v1/monitor requests). When nil a
	// fresh tracker is created for the run.
	Tracker *TraceTracker
	// Sinks receive alert and trace-flagged events in input order.
	Sinks []AlertSink
	// Gate, when non-nil, is the calibrated stage-1 cascade
	// (internal/cascade): each parsed job is scored before the transformer
	// and the confident band short-circuits to a verdict, so only the
	// uncertain band pays encoder cost. The server's ingest path leaves this
	// nil — its chunks route through the engine queue, which applies the
	// slot's gate — so no line is ever gated twice.
	Gate *cascade.Gate
}

func (c *MonitorConfig) fill() {
	if c.ChunkSize <= 0 {
		c.ChunkSize = 32
	}
	if c.FlushDelay == 0 {
		c.FlushDelay = 100 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	// Policy and MaxTraces zero values are resolved by NewTraceTracker.
}

// maxLineBytes bounds a single monitor log line; longer lines are treated
// as malformed (skipped in lenient mode) instead of aborting the stream.
const maxLineBytes = 1 << 20

// readLogLine reads one newline-terminated line of at most max bytes. A
// longer line is consumed to its end and reported as tooLong with no
// content. End of input surfaces as ("", false, io.EOF) on the call after
// the last line.
func readLogLine(br *bufio.Reader, max int) (line string, tooLong bool, err error) {
	var buf []byte
	for {
		chunk, isPrefix, rerr := br.ReadLine()
		if len(buf)+len(chunk) > max {
			for isPrefix && rerr == nil {
				_, isPrefix, rerr = br.ReadLine()
			}
			return "", true, rerr
		}
		if buf == nil && !isPrefix {
			// Common case: the whole line fit in the reader's buffer — one
			// string copy, no intermediate accumulation buffer.
			return string(chunk), false, rerr
		}
		buf = append(buf, chunk...)
		if rerr != nil {
			return string(buf), false, rerr
		}
		if !isPrefix {
			return string(buf), false, nil
		}
	}
}

// monitorChunk is one micro-batch moving through the pipeline.
type monitorChunk struct {
	idx     int
	lines   []string
	jobs    []flowbench.Job
	results []Result
}

// Monitor reads raw key=value log lines (logparse.LogLine format) from r,
// classifies them in micro-batches, and invokes onAlert for every line
// detected as abnormal. Malformed lines are skipped and counted in the
// report; use MonitorWith with Strict for the legacy abort-on-first-error
// behavior.
//
// This is the paper's real-time detection loop (Section IV-C) in library
// form: the workflow management system appends to a log, Monitor tails it.
func Monitor(d Detector, r io.Reader, onAlert func(Alert)) (MonitorReport, error) {
	//lint:ignore ctxflow public no-context convenience API; the paper's library-form loop, callers needing cancellation use MonitorWith
	return MonitorWith(context.Background(), d, r, MonitorConfig{
		Sinks: []AlertSink{SinkFuncs{OnAlert: onAlert}},
	})
}

// MonitorWith is the fully configurable streaming monitor. Lines are parsed,
// grouped into ChunkSize micro-batches, classified by a pool of Workers
// (each owning a tensor.Workspace when the detector supports the
// workspace-threaded batch path), and folded back in input order: alerts
// fire per abnormal line, the tracker updates per job, and a trace-flagged
// event fires the moment a trace first trips the policy.
//
// ctx cancellation stops the run between lines; the partial report and
// ctx.Err() are returned. In strict mode the first malformed line aborts
// with an error naming its line number; otherwise malformed lines are
// skipped and counted.
func MonitorWith(ctx context.Context, d Detector, r io.Reader, cfg MonitorConfig) (MonitorReport, error) {
	if err := ctx.Err(); err != nil {
		return MonitorReport{}, err
	}
	cfg.fill()
	tracker := cfg.Tracker
	if tracker == nil {
		tracker = NewTraceTracker(cfg.Policy, cfg.MaxTraces)
	}
	evictedBefore := tracker.Evicted()

	chunks := make(chan *monitorChunk, cfg.Workers)
	classified := make(chan *monitorChunk, cfg.Workers)
	wsDet, _ := d.(BatchWSDetector)
	var cascEval, cascShort atomic.Int64
	var workers sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			var ws *tensor.Workspace
			if wsDet != nil {
				ws = tensor.GetWorkspace()
				defer tensor.PutWorkspace(ws)
			}
			classify := func(sentences []string) []Result {
				if wsDet != nil {
					ws.Reset()
					return wsDet.DetectBatchWS(sentences, ws)
				}
				return d.DetectBatch(sentences)
			}
			for c := range chunks {
				if g := cfg.Gate; g != nil {
					// Cascade pre-filter on the chunk path: jobs are already
					// parsed here, so stage 1 scores them directly; only the
					// uncertain band is rendered to sentences and classified,
					// fanning back by index — order-preserving, mirroring the
					// engine's dedup fan-back.
					c.results = make([]Result, len(c.jobs))
					var pass []string
					var passIdx []int
					for i, j := range c.jobs {
						score := g.ScoreJob(j)
						switch g.Decide(score) {
						case cascade.ShortNormal:
							c.results[i] = Result{Label: 0, Score: g.Prob(score)}
						case cascade.ShortAbnormal:
							c.results[i] = Result{Label: 1, Score: g.Prob(score)}
						default:
							pass = append(pass, logparse.Sentence(j))
							passIdx = append(passIdx, i)
						}
					}
					if len(pass) > 0 {
						res := classify(pass)
						for k, i := range passIdx {
							c.results[i] = res[k]
						}
					}
					cascEval.Add(int64(len(c.jobs)))
					cascShort.Add(int64(len(c.jobs) - len(pass)))
					classified <- c
					continue
				}
				sentences := make([]string, len(c.jobs))
				for i, j := range c.jobs {
					sentences[i] = logparse.Sentence(j)
				}
				c.results = classify(sentences)
				classified <- c
			}
		}()
	}
	go func() {
		workers.Wait()
		close(classified)
	}()

	// The collector owns the ordered side effects: chunks arrive in
	// completion order, are re-sequenced by index, and only then hit the
	// sinks and tracker — so event order never depends on worker scheduling.
	var report MonitorReport
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		pending := make(map[int]*monitorChunk)
		next := 0
		for c := range classified {
			pending[c.idx] = c
			for {
				cur, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				for i, res := range cur.results {
					report.Processed++
					job := cur.jobs[i]
					if res.Abnormal() {
						report.Alerts++
						a := Alert{Line: cur.lines[i], Job: job, Result: res}
						for _, s := range cfg.Sinks {
							s.Alert(a)
						}
					}
					v, newly := tracker.Observe(job.TraceID, res.Abnormal())
					if newly {
						report.FlaggedTraces++
						for _, s := range cfg.Sinks {
							s.TraceFlagged(v)
						}
					}
				}
			}
		}
	}()

	// The line reader runs in its own goroutine so the chunker below can
	// flush a partial chunk on a timer while the underlying Read blocks —
	// a tailed log trickling in below ChunkSize lines still alerts within
	// FlushDelay. The reader reports its terminal IO error on readErrCh
	// (buffered, written before lines closes) and gives up on readerQuit.
	type lineEvent struct {
		text    string
		no      int
		tooLong bool
	}
	lines := make(chan lineEvent, cfg.ChunkSize)
	readErrCh := make(chan error, 1)
	readerQuit := make(chan struct{})
	go func() {
		defer close(lines)
		br := bufio.NewReaderSize(r, 64*1024)
		lineNo := 0
		for {
			line, tooLong, rerr := readLogLine(br, maxLineBytes)
			if line != "" || tooLong {
				lineNo++
				select {
				case lines <- lineEvent{text: line, no: lineNo, tooLong: tooLong}:
				case <-readerQuit:
					readErrCh <- nil
					return
				}
			} else if rerr == nil {
				lineNo++ // blank line: counted, not forwarded
			}
			if rerr == io.EOF {
				readErrCh <- nil
				return
			}
			if rerr != nil {
				readErrCh <- rerr
				return
			}
		}
	}()

	var (
		readErr    error
		malformed  int
		idx        int
		flushTimer *time.Timer
		flushC     <-chan time.Time
	)
	cur := &monitorChunk{}
	stopFlushTimer := func() {
		if flushTimer != nil && !flushTimer.Stop() {
			select {
			case <-flushTimer.C:
			default:
			}
		}
	}
	flush := func() {
		stopFlushTimer()
		if len(cur.jobs) > 0 {
			cur.idx = idx
			idx++
			chunks <- cur
			cur = &monitorChunk{}
		}
	}
	armFlushTimer := func() {
		if cfg.FlushDelay < 0 {
			return
		}
		if flushTimer == nil {
			flushTimer = time.NewTimer(cfg.FlushDelay)
			flushC = flushTimer.C
			return
		}
		stopFlushTimer()
		flushTimer.Reset(cfg.FlushDelay)
	}
loop:
	for {
		var tc <-chan time.Time
		if len(cur.jobs) > 0 {
			tc = flushC
		}
		select {
		case <-ctx.Done():
			readErr = ctx.Err()
			break loop
		case <-tc:
			flush()
		case ev, ok := <-lines:
			if !ok {
				if err := <-readErrCh; err != nil {
					readErr = err
				}
				break loop
			}
			if ev.tooLong {
				// Unlike a Scanner (which aborts the whole stream on an
				// over-long line), the reader skips it so one garbage
				// blob can't kill a lenient tail.
				if cfg.Strict {
					readErr = fmt.Errorf("core: line %d: line exceeds %d bytes", ev.no, maxLineBytes)
					break loop
				}
				malformed++
				continue
			}
			job, perr := logparse.ParseLogLine(ev.text)
			if perr != nil {
				if cfg.Strict {
					readErr = fmt.Errorf("core: line %d: %w", ev.no, perr)
					break loop
				}
				malformed++
				continue
			}
			cur.lines = append(cur.lines, ev.text)
			cur.jobs = append(cur.jobs, job)
			if len(cur.jobs) == cfg.ChunkSize {
				flush()
			} else if len(cur.jobs) == 1 {
				armFlushTimer()
			}
		}
	}
	close(readerQuit)
	if ctx.Err() == nil {
		// Classify what was read (a strict abort still reports the lines
		// before the bad one) — but not after cancellation, where running
		// a model forward and firing sinks for a caller that already left
		// would contradict the cancellation contract.
		flush()
	}
	close(chunks)
	<-collectorDone

	report.Malformed = malformed
	report.ActiveTraces = tracker.Len()
	report.EvictedTraces = tracker.Evicted() - evictedBefore
	report.CascadeEvaluated = int(cascEval.Load())
	report.CascadeShort = int(cascShort.Load())
	return report, readErr
}
