// Package core is the high-level public API of the library: a unified
// anomaly-detector abstraction over the paper's two approaches (supervised
// fine-tuning and in-context learning), a one-call training pipeline,
// trace-level verdict aggregation, a streaming log monitor, and an HTTP
// detection service for production deployment.
//
// The paper's pitch is that LLM-based detection lets system administrators
// run anomaly detection without ML plumbing; this package is that interface:
//
//	det, _ := core.Train(core.Options{Workflow: flowbench.Genome})
//	res := det.DetectSentence("wms_delay is 6.0 queue_delay is 22.0 ...")
package core

import (
	"fmt"
	"sync"

	"repro/internal/flowbench"
	"repro/internal/icl"
	"repro/internal/logparse"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/pretrain"
	"repro/internal/prompt"
	"repro/internal/sft"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
)

// Approach selects the detection method.
type Approach string

// The two approaches from the paper.
const (
	SFT Approach = "sft" // fine-tuned encoder classifier
	ICL Approach = "icl" // prompted decoder with few-shot examples
)

// Precision names the weight format a detector serves with.
type Precision string

// Serving precisions. PrecisionFP32 is the trained form; PrecisionInt8 is
// the integer-compute form produced by QuantizeDetector.
const (
	PrecisionFP32 Precision = "fp32"
	PrecisionInt8 Precision = "int8"
)

// PrecisionReporter is optionally implemented by detectors that know their
// weight precision. Detectors that do not implement it (foreign Detector
// implementations, test stubs) are reported as fp32.
type PrecisionReporter interface {
	Precision() Precision
}

// DetectorPrecision reports det's serving precision, defaulting to fp32 for
// detectors that do not implement PrecisionReporter.
func DetectorPrecision(det Detector) Precision {
	if pr, ok := det.(PrecisionReporter); ok {
		return pr.Precision()
	}
	return PrecisionFP32
}

// Result is a single detection outcome.
type Result struct {
	// Label is 0 (normal) or 1 (abnormal).
	Label int
	// Score is the probability assigned to the abnormal class.
	Score float64
}

// Abnormal reports whether the result flags an anomaly.
func (r Result) Abnormal() bool { return r.Label == 1 }

// String renders the result like the paper's online-detection figure.
func (r Result) String() string {
	return fmt.Sprintf("label: LABEL_%d, score: %.4f", r.Label, r.Score)
}

// BatchWSDetector is implemented by detectors whose batched path can run on
// a caller-owned tensor.Workspace scratch arena. Long-lived inference
// workers (core.Server's pool) hold one workspace each and reset it between
// batches, making steady-state detection allocation-free; one workspace must
// never be shared by concurrent DetectBatchWS calls.
type BatchWSDetector interface {
	// DetectBatchWS is DetectBatch drawing scratch buffers from ws. The
	// workspace is used, not reset: the caller resets it between batches.
	DetectBatchWS(sentences []string, ws *tensor.Workspace) []Result
}

// Detector is the unified detection interface implemented by both
// approaches.
type Detector interface {
	// DetectSentence classifies a parsed feature sentence (Fig 2 format).
	// Both built-in detectors delegate to DetectBatch with a batch of one,
	// so DetectSentence is as concurrency-safe as DetectBatch.
	DetectSentence(sentence string) Result
	// DetectBatch classifies a batch of sentences in one packed forward
	// pass, returning results in input order. The batched path reads the
	// model without mutating layer state, so DetectBatch is safe to call
	// from concurrent goroutines.
	DetectBatch(sentences []string) []Result
	// DetectJob classifies a job record.
	DetectJob(j flowbench.Job) Result
	// Approach identifies the underlying method.
	Approach() Approach
}

// sftDetector adapts an sft.Classifier.
type sftDetector struct {
	clf *sft.Classifier
}

// NewSFTDetector wraps a fine-tuned classifier as a Detector.
func NewSFTDetector(clf *sft.Classifier) Detector { return &sftDetector{clf: clf} }

func (d *sftDetector) DetectSentence(sentence string) Result {
	// Delegate to the batch path (batch of 1): the batched forward reads the
	// model without mutating layer state, so a registry-held detector is safe
	// to call from any handler goroutine. The single-sentence training-path
	// forward caches activations on the layers and is not.
	return d.DetectBatch([]string{sentence})[0]
}

func (d *sftDetector) DetectBatch(sentences []string) []Result {
	labels, probs := d.clf.PredictBatch(sentences)
	return toResults(labels, probs)
}

func (d *sftDetector) DetectBatchWS(sentences []string, ws *tensor.Workspace) []Result {
	labels, probs := d.clf.PredictBatchWS(sentences, ws)
	return toResults(labels, probs)
}

func (d *sftDetector) DetectJob(j flowbench.Job) Result {
	return d.DetectSentence(logparse.Sentence(j))
}

func (d *sftDetector) Approach() Approach { return SFT }

func (d *sftDetector) Precision() Precision {
	if d.clf.Model.IsQuantized() {
		return PrecisionInt8
	}
	return PrecisionFP32
}

// iclDetector adapts an icl.Detector with a fixed few-shot context. The
// context's KV cache is built lazily on first batched use and shared by all
// subsequent (possibly concurrent) DetectBatch calls.
type iclDetector struct {
	det      *icl.Detector
	examples []prompt.Example

	cacheOnce sync.Once
	cache     *icl.PromptCache
}

// NewICLDetector wraps a prompted decoder as a Detector with the given
// in-context examples.
func NewICLDetector(det *icl.Detector, examples []prompt.Example) Detector {
	return &iclDetector{det: det, examples: examples}
}

func (d *iclDetector) DetectSentence(sentence string) Result {
	// Batch of 1 through the read-only cached path: concurrency-safe (unlike
	// icl.Detector.Classify, whose forward caches activations on the model)
	// and it reuses the shared prompt-prefix KV cache.
	return d.DetectBatch([]string{sentence})[0]
}

func (d *iclDetector) DetectBatch(sentences []string) []Result {
	d.cacheOnce.Do(func() { d.cache = d.det.NewPromptCache(d.examples) })
	labels, probs := d.det.ClassifyBatchCached(d.cache, sentences)
	return toResults(labels, probs)
}

func (d *iclDetector) DetectBatchWS(sentences []string, ws *tensor.Workspace) []Result {
	//lint:ignore hotalloc the closure escapes only on the first-call init; Once.Do's fast path keeps it on the stack
	d.cacheOnce.Do(func() { d.cache = d.det.NewPromptCache(d.examples) })
	labels, probs := d.det.ClassifyBatchCachedWS(d.cache, sentences, ws)
	return toResults(labels, probs)
}

// toResults pairs predicted labels with their abnormal-class probabilities.
func toResults(labels []int, probs [][2]float32) []Result {
	out := make([]Result, len(labels))
	for i := range labels {
		out[i] = Result{Label: labels[i], Score: float64(probs[i][1])}
	}
	return out
}

func (d *iclDetector) DetectJob(j flowbench.Job) Result {
	return d.DetectSentence(logparse.Sentence(j))
}

func (d *iclDetector) Approach() Approach { return ICL }

func (d *iclDetector) Precision() Precision {
	if d.det.Model.IsQuantized() {
		return PrecisionInt8
	}
	return PrecisionFP32
}

// QuantizeDetector converts a trained (or loaded) detector to int8 serving
// form: LoRA adapters are merged, every transformer projection switches to
// the integer compute path, and a fresh Detector wrapping the same model is
// returned (fresh so an ICL detector's prompt KV cache is rebuilt through the
// quantized weights rather than reusing fp32 activations). Quantize before
// serving traffic; the input detector must not be used afterwards. Detectors
// not produced by this package are rejected, as are already-quantized ones.
func QuantizeDetector(det Detector) (Detector, error) {
	if DetectorPrecision(det) == PrecisionInt8 {
		return nil, fmt.Errorf("core: detector is already int8-quantized")
	}
	switch d := det.(type) {
	case *sftDetector:
		d.clf.Model.QuantizeInt8(0)
		return NewSFTDetector(d.clf), nil
	case *iclDetector:
		d.det.Model.QuantizeInt8(0)
		return NewICLDetector(d.det, d.examples), nil
	default:
		return nil, fmt.Errorf("core: cannot quantize detector of type %T (not produced by core.Train or core.LoadDetector)", det)
	}
}

// Options configures the end-to-end Train pipeline.
type Options struct {
	// Approach selects SFT (default) or ICL.
	Approach Approach
	// Workflow supplies the training data (default 1000 Genome).
	Workflow flowbench.Workflow
	// Model is a registry name; empty selects bert-base-uncased (SFT) or
	// mistral (ICL).
	Model string
	// TrainSize caps the training subsample (default 1000).
	TrainSize int
	// PretrainSteps is the MLM/CLM budget (default 400).
	PretrainSteps int
	// Epochs is the SFT budget (default 3); ICL uses 300 LoRA steps.
	Epochs int
	// Shots is the ICL few-shot example count (default 5).
	Shots int
	// LoRASteps is the ICL LoRA fine-tuning budget (default 300).
	LoRASteps int
	// Debias adds the empty-sentence augmentation (SFT only).
	Debias bool
	// Seed anchors all randomness (default 42).
	Seed uint64
}

func (o *Options) fill() error {
	if o.Approach == "" {
		o.Approach = SFT
	}
	if o.Approach != SFT && o.Approach != ICL {
		return fmt.Errorf("core: unknown approach %q", o.Approach)
	}
	if o.Workflow == "" {
		o.Workflow = flowbench.Genome
	}
	if o.Model == "" {
		if o.Approach == SFT {
			o.Model = "bert-base-uncased"
		} else {
			o.Model = "mistral"
		}
	}
	spec, ok := models.Get(o.Model)
	if !ok {
		return fmt.Errorf("core: unknown model %q", o.Model)
	}
	if o.Approach == SFT && spec.Kind != models.Encoder {
		return fmt.Errorf("core: SFT requires an encoder model, %q is a decoder", o.Model)
	}
	if o.Approach == ICL && spec.Kind != models.Decoder {
		return fmt.Errorf("core: ICL requires a decoder model, %q is an encoder", o.Model)
	}
	if o.TrainSize <= 0 {
		o.TrainSize = 1000
	}
	if o.PretrainSteps <= 0 {
		o.PretrainSteps = 400
	}
	if o.Epochs <= 0 {
		o.Epochs = 3
	}
	if o.Shots <= 0 {
		o.Shots = 5
	}
	if o.LoRASteps <= 0 {
		o.LoRASteps = 300
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return nil
}

// TrainReport summarizes a Train run.
type TrainReport struct {
	// Test is the held-out confusion matrix.
	Test metrics.Confusion
	// Params is the model's parameter count.
	Params int
	// VocabSize is the tokenizer vocabulary size.
	VocabSize int
}

// Train runs the full pipeline for the chosen approach — dataset generation,
// vocabulary construction, pre-training, and task adaptation — and returns a
// ready Detector plus a training report.
func Train(opts Options) (Detector, *TrainReport, error) {
	if err := opts.fill(); err != nil {
		return nil, nil, err
	}
	ds := flowbench.Generate(opts.Workflow, opts.Seed).
		Subsample(opts.TrainSize, 200, 300, opts.Seed+1)
	corpus := pretrain.BuildCorpus(pretrain.DefaultCorpus())
	corpus = append(corpus, logparse.Corpus(ds.Train)...)
	tok := tokenizer.Build(corpus)
	spec := models.MustGet(opts.Model)
	model := spec.Build(tok.VocabSize())
	popts := pretrain.Options{Steps: opts.PretrainSteps, LR: 3e-3, Seed: opts.Seed}

	var det Detector
	switch opts.Approach {
	case SFT:
		pretrain.MLM(model, tok, corpus, popts)
		clf := sft.NewClassifier(model, tok)
		cfg := sft.DefaultTrainConfig()
		cfg.Epochs = opts.Epochs
		cfg.Seed = opts.Seed
		if opts.Debias {
			cfg.Augment = sft.DebiasAugmentation(40)
		}
		sft.Train(clf, sft.JobExamples(ds.Train), nil, cfg)
		det = NewSFTDetector(clf)
	case ICL:
		pretrain.CLM(model, tok, corpus, popts)
		d := icl.NewDetector(model, tok)
		ftCfg := icl.DefaultFineTuneConfig()
		ftCfg.Steps = opts.LoRASteps
		ftCfg.Seed = opts.Seed
		icl.FineTune(d, ds.Train, ftCfg)
		exs := icl.PromptExamples(icl.SelectExamples(ds.Train, opts.Shots, icl.Mixed, opts.Seed))
		det = NewICLDetector(d, exs)
	}

	labels := make([]int, len(ds.Test))
	preds := make([]int, len(ds.Test))
	for i, j := range ds.Test {
		labels[i] = j.Label
		preds[i] = det.DetectJob(j).Label
	}
	report := &TrainReport{
		Test:      metrics.NewConfusion(labels, preds),
		Params:    model.ParamCount(),
		VocabSize: tok.VocabSize(),
	}
	return det, report, nil
}
