package core

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// EngineStats is a snapshot of one served model's coalescing-queue counters,
// reported under "stats" in GET /v1/models. It splits serving latency into
// its two server-side stages — time spent queued before a batch formed
// (queue_wait) and time spent in the model (compute) — and records how deep
// the job queue got, which is the saturation signal the load lab watches
// while replaying open-loop traffic.
type EngineStats struct {
	// QueueLen is the number of jobs queued at snapshot time.
	QueueLen int `json:"queue_len"`
	// MaxQueueLen is the deepest the queue has been since the last reset.
	MaxQueueLen int `json:"max_queue_len"`
	// Requests and Sentences count accepted Detect jobs and their sentences.
	Requests  int64 `json:"requests"`
	Sentences int64 `json:"sentences"`
	// Batches counts coalesced batches executed; DedupSaved counts sentences
	// the sentence-dedup layer answered without a model invocation.
	Batches    int64 `json:"batches"`
	DedupSaved int64 `json:"dedup_saved"`
	// Shed counts requests refused by admission control or the queue-wait
	// budget (the 429 Retry-After path); Expired counts requests whose
	// deadline passed while queued, dropped at dequeue without compute.
	Shed    int64 `json:"shed"`
	Expired int64 `json:"expired"`
	// Degraded counts sentences answered by the brownout fallback tier;
	// BrownoutActive reports whether that tier is engaged right now.
	Degraded       int64 `json:"degraded"`
	BrownoutActive bool  `json:"brownout_active"`
	// Cascade counters: of the unique sentences the stage-1 gate evaluated,
	// how many short-circuited to a verdict without the transformer and how
	// many passed through (unparseable lines always pass). PassFraction is
	// Passed/Evaluated — the fraction of gated traffic that still pays full
	// transformer cost.
	CascadeEvaluated    int64   `json:"cascade_evaluated"`
	CascadeShort        int64   `json:"cascade_short_circuited"`
	CascadePassed       int64   `json:"cascade_passed"`
	CascadePassFraction float64 `json:"cascade_pass_fraction"`
	// BatchOccupancy is the mean number of sentences per executed batch.
	BatchOccupancy float64 `json:"batch_occupancy"`
	// Stage latency percentiles in milliseconds, over the most recent
	// samples (bounded window; see statsWindow).
	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
	ComputeP50Ms   float64 `json:"compute_p50_ms"`
	ComputeP99Ms   float64 `json:"compute_p99_ms"`
}

// statsWindow bounds the per-stage latency sample rings. 4096 batches of
// history is enough for stable p99 estimates while keeping a registry of
// many models small.
const statsWindow = 4096

// statsRecorder accumulates EngineStats for one registry slot. Like the
// slot's TraceTracker it belongs to the servedModel, not the engine, so
// counters and latency windows survive a hot-swap. All methods are safe for
// concurrent use; the recorder is written from every request goroutine and
// every inference worker, so the critical sections stay tiny (append to a
// ring, bump counters).
type statsRecorder struct {
	mu         sync.Mutex
	requests   int64
	sentences  int64
	batches    int64
	dedupSaved int64
	shed       int64
	expired    int64
	degraded   int64
	cascEval   int64
	cascShort  int64
	maxQueue   int
	queueWait  sampleRing
	compute    sampleRing
}

// sampleRing is a fixed-capacity overwrite-oldest ring of millisecond
// samples.
type sampleRing struct {
	buf []float64
	n   int // total samples ever recorded
}

func (r *sampleRing) add(ms float64) {
	if r.buf == nil {
		r.buf = make([]float64, 0, statsWindow)
	}
	if len(r.buf) < statsWindow {
		r.buf = append(r.buf, ms)
	} else {
		r.buf[r.n%statsWindow] = ms
	}
	r.n++
}

func (r *sampleRing) snapshot() []float64 {
	out := make([]float64, len(r.buf))
	copy(out, r.buf)
	return out
}

// enqueued records one accepted request and the queue depth observed at
// enqueue time.
func (s *statsRecorder) enqueued(sentences, queueLen int) {
	s.mu.Lock()
	s.requests++
	s.sentences += int64(sentences)
	if queueLen > s.maxQueue {
		s.maxQueue = queueLen
	}
	s.mu.Unlock()
}

// ranBatch records one executed batch: per-job queue waits, the model time,
// and how many sentences deduplication answered for free.
func (s *statsRecorder) ranBatch(queueWaits []time.Duration, compute time.Duration, dedupSaved int) {
	s.mu.Lock()
	s.batches++
	s.dedupSaved += int64(dedupSaved)
	for _, w := range queueWaits {
		s.queueWait.add(float64(w) / float64(time.Millisecond))
	}
	s.compute.add(float64(compute) / float64(time.Millisecond))
	s.mu.Unlock()
}

// shedRequest counts one request refused by admission control or the
// queue-wait budget.
func (s *statsRecorder) shedRequest() {
	s.mu.Lock()
	s.shed++
	s.mu.Unlock()
}

// expiredRequest counts one request whose deadline passed while it was
// queued.
func (s *statsRecorder) expiredRequest() {
	s.mu.Lock()
	s.expired++
	s.mu.Unlock()
}

// degradedServed counts sentences answered by the brownout fallback tier.
func (s *statsRecorder) degradedServed(sentences int) {
	s.mu.Lock()
	s.degraded += int64(sentences)
	s.mu.Unlock()
}

// cascadeGated records one batch's stage-1 gating: evaluated unique
// sentences, of which short were short-circuited without the transformer.
func (s *statsRecorder) cascadeGated(evaluated, short int) {
	s.mu.Lock()
	s.cascEval += int64(evaluated)
	s.cascShort += int64(short)
	s.mu.Unlock()
}

// computeP50 returns the recent median model time, the per-job drain estimate
// behind Retry-After hints. Zero when no batch has run yet.
func (s *statsRecorder) computeP50() time.Duration {
	s.mu.Lock()
	cp := s.compute.snapshot()
	s.mu.Unlock()
	return time.Duration(metrics.Percentile(cp, 0.50) * float64(time.Millisecond))
}

// snapshot renders the recorder as EngineStats. queueLen and brownoutActive
// are sampled by the caller (they live on the engine, not the recorder).
func (s *statsRecorder) snapshot(queueLen int, brownoutActive bool) EngineStats {
	s.mu.Lock()
	qw := s.queueWait.snapshot()
	cp := s.compute.snapshot()
	st := EngineStats{
		QueueLen:       queueLen,
		MaxQueueLen:    s.maxQueue,
		Requests:       s.requests,
		Sentences:      s.sentences,
		Batches:        s.batches,
		DedupSaved:     s.dedupSaved,
		Shed:           s.shed,
		Expired:        s.expired,
		Degraded:       s.degraded,
		BrownoutActive: brownoutActive,

		CascadeEvaluated: s.cascEval,
		CascadeShort:     s.cascShort,
		CascadePassed:    s.cascEval - s.cascShort,
	}
	if st.Batches > 0 {
		st.BatchOccupancy = float64(st.Sentences) / float64(st.Batches)
	}
	if st.CascadeEvaluated > 0 {
		st.CascadePassFraction = float64(st.CascadePassed) / float64(st.CascadeEvaluated)
	}
	s.mu.Unlock()
	st.QueueWaitP50Ms = metrics.Percentile(qw, 0.50)
	st.QueueWaitP99Ms = metrics.Percentile(qw, 0.99)
	st.ComputeP50Ms = metrics.Percentile(cp, 0.50)
	st.ComputeP99Ms = metrics.Percentile(cp, 0.99)
	return st
}

// reset zeroes every counter and latency window.
func (s *statsRecorder) reset() {
	s.mu.Lock()
	s.requests, s.sentences, s.batches, s.dedupSaved = 0, 0, 0, 0
	s.shed, s.expired, s.degraded = 0, 0, 0
	s.cascEval, s.cascShort = 0, 0
	s.maxQueue = 0
	s.queueWait = sampleRing{}
	s.compute = sampleRing{}
	s.mu.Unlock()
}
