package core

import (
	"bytes"
	"context"
	"hash/fnv"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/tensor"
)

// hashDetector is a deterministic stub: the label depends only on the
// sentence text, so the batched, workspace-threaded, and per-sentence paths
// agree trivially and plumbing tests need no trained model.
type hashDetector struct{}

func hashResult(s string) Result {
	h := fnv.New32a()
	h.Write([]byte(s))
	if h.Sum32()%3 == 0 {
		return Result{Label: 1, Score: 0.9}
	}
	return Result{Label: 0, Score: 0.1}
}

func (hashDetector) DetectSentence(s string) Result { return hashResult(s) }
func (hashDetector) DetectBatch(ss []string) []Result {
	out := make([]Result, len(ss))
	for i, s := range ss {
		out[i] = hashResult(s)
	}
	return out
}
func (hashDetector) DetectBatchWS(ss []string, _ *tensor.Workspace) []Result {
	return hashDetector{}.DetectBatch(ss)
}
func (d hashDetector) DetectJob(j flowbench.Job) Result {
	return d.DetectSentence(logparse.Sentence(j))
}
func (hashDetector) Approach() Approach { return SFT }

// streamJob builds a synthetic but parseable job. abnormal jobs carry the
// marker value 666 that markDetector keys on.
func streamJob(trace, node int, abnormal bool) flowbench.Job {
	j := flowbench.Job{Workflow: flowbench.Genome, TraceID: trace, NodeIndex: node, TaskType: "t"}
	for i := range j.Features {
		j.Features[i] = float64(10 + i)
	}
	if abnormal {
		j.Features[2] = 666
	}
	return j
}

// markDetector flags exactly the jobs streamJob marked abnormal.
type markDetector struct{ hashDetector }

func markResult(s string) Result {
	if strings.Contains(s, " is 666.0") {
		return Result{Label: 1, Score: 0.99}
	}
	return Result{Label: 0, Score: 0.01}
}

func (markDetector) DetectSentence(s string) Result { return markResult(s) }
func (markDetector) DetectBatch(ss []string) []Result {
	out := make([]Result, len(ss))
	for i, s := range ss {
		out[i] = markResult(s)
	}
	return out
}
func (markDetector) DetectBatchWS(ss []string, _ *tensor.Workspace) []Result {
	return markDetector{}.DetectBatch(ss)
}
func (d markDetector) DetectJob(j flowbench.Job) Result {
	return d.DetectSentence(logparse.Sentence(j))
}

func logOf(jobs []flowbench.Job) string {
	var sb strings.Builder
	for _, j := range jobs {
		sb.WriteString(logparse.LogLine(j))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestMonitorSkipsMalformed checks the lenient default: garbage lines are
// counted, not fatal, and every well-formed line is still classified.
func TestMonitorSkipsMalformed(t *testing.T) {
	jobs := []flowbench.Job{
		streamJob(1, 0, false), streamJob(1, 1, true), streamJob(2, 0, false),
	}
	var buf bytes.Buffer
	buf.WriteString("not_a_log_line\n")
	buf.WriteString(logparse.LogLine(jobs[0]) + "\n")
	buf.WriteString("trace=banana\n")
	buf.WriteString("\n") // blank lines are neither processed nor malformed
	buf.WriteString(logparse.LogLine(jobs[1]) + "\n")
	buf.WriteString(logparse.LogLine(jobs[2]) + "\n")

	var alerts []Alert
	report, err := MonitorWith(context.Background(), markDetector{}, &buf, MonitorConfig{
		ChunkSize: 2,
		Sinks:     []AlertSink{SinkFuncs{OnAlert: func(a Alert) { alerts = append(alerts, a) }}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Processed != 3 || report.Malformed != 2 {
		t.Fatalf("report = %+v, want 3 processed / 2 malformed", report)
	}
	if report.Alerts != 1 || len(alerts) != 1 {
		t.Fatalf("alerts = %d (%d delivered), want 1", report.Alerts, len(alerts))
	}
	if alerts[0].Job.TraceID != 1 || alerts[0].Job.NodeIndex != 1 {
		t.Fatalf("alert for wrong job: %+v", alerts[0].Job)
	}
}

// TestMonitorStrictAbortsWithLineNumber pins the legacy strict behavior:
// the first malformed line aborts with its line number in the error.
func TestMonitorStrictAbortsWithLineNumber(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(logparse.LogLine(streamJob(1, 0, false)) + "\n")
	buf.WriteString("garbage\n")
	buf.WriteString(logparse.LogLine(streamJob(1, 1, false)) + "\n")
	report, err := MonitorWith(context.Background(), markDetector{}, &buf, MonitorConfig{Strict: true})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2", err)
	}
	if report.Malformed != 0 {
		t.Fatalf("strict run counted %d malformed", report.Malformed)
	}
	if report.Processed > 1 {
		t.Fatalf("processed %d lines past the abort", report.Processed)
	}
}

// TestMonitorSkipsOversizedLine checks a line over the per-line byte cap is
// treated as malformed — skipped in lenient mode, aborted with its line
// number in strict mode — instead of killing the whole stream the way a
// bufio.Scanner would.
func TestMonitorSkipsOversizedLine(t *testing.T) {
	huge := strings.Repeat("x", 2<<20)
	var buf bytes.Buffer
	buf.WriteString(logparse.LogLine(streamJob(1, 0, false)) + "\n")
	buf.WriteString(huge + "\n")
	buf.WriteString(logparse.LogLine(streamJob(1, 1, true)) + "\n")

	report, err := MonitorWith(context.Background(), markDetector{}, bytes.NewReader(buf.Bytes()), MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Processed != 2 || report.Malformed != 1 || report.Alerts != 1 {
		t.Fatalf("report = %+v, want 2 processed / 1 malformed / 1 alert", report)
	}

	_, err = MonitorWith(context.Background(), markDetector{}, bytes.NewReader(buf.Bytes()), MonitorConfig{Strict: true})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("strict err = %v, want line 2", err)
	}
}

// TestMonitorOnlineTraceEquivalence is the core online-vs-batch invariant:
// after a monitor run, the tracker's verdicts must exactly equal what
// DetectTraces computes on the same jobs — for every chunk size and worker
// count, including chunks that straddle trace boundaries.
func TestMonitorOnlineTraceEquivalence(t *testing.T) {
	ds := flowbench.Generate(flowbench.Genome, 3).Subsample(0, 0, 120, 4)
	jobs := ds.Test
	want := DetectTraces(hashDetector{}, jobs, DefaultTracePolicy())

	for _, cfg := range []MonitorConfig{
		{ChunkSize: 1, Workers: 1},
		{ChunkSize: 7, Workers: 1},
		{ChunkSize: 7, Workers: 4},
		{ChunkSize: 64, Workers: 2},
	} {
		tracker := NewTraceTracker(DefaultTracePolicy(), 1<<20)
		cfg.Tracker = tracker
		report, err := MonitorWith(context.Background(), hashDetector{}, strings.NewReader(logOf(jobs)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if report.Processed != len(jobs) {
			t.Fatalf("chunk=%d workers=%d: processed %d, want %d", cfg.ChunkSize, cfg.Workers, report.Processed, len(jobs))
		}
		got := tracker.Verdicts()
		if len(got) != len(want) {
			t.Fatalf("chunk=%d workers=%d: %d verdicts, want %d", cfg.ChunkSize, cfg.Workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk=%d workers=%d: verdict %d = %+v, want %+v",
					cfg.ChunkSize, cfg.Workers, i, got[i], want[i])
			}
		}
	}
}

// TestMonitorOnlineTraceEquivalenceTrained repeats the invariant with the
// real fine-tuned detector: the chunked workspace-threaded monitor path and
// DetectTraces' per-trace DetectBatch path must assign identical labels, so
// the verdicts match bitwise.
func TestMonitorOnlineTraceEquivalenceTrained(t *testing.T) {
	det, ds := detector(t)
	jobs := ds.Test[:80]
	want := DetectTraces(det, jobs, DefaultTracePolicy())

	tracker := NewTraceTracker(DefaultTracePolicy(), 1<<20)
	_, err := MonitorWith(context.Background(), det, strings.NewReader(logOf(jobs)), MonitorConfig{
		ChunkSize: 13, // deliberately offset from trace boundaries
		Tracker:   tracker,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := tracker.Verdicts()
	if len(got) != len(want) {
		t.Fatalf("%d online verdicts, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("verdict %d: online %+v != batch %+v", i, got[i], want[i])
		}
	}
}

// TestMonitorAlertOrder checks alerts arrive in input order even with many
// workers racing over chunks.
func TestMonitorAlertOrder(t *testing.T) {
	var jobs []flowbench.Job
	for i := 0; i < 97; i++ {
		jobs = append(jobs, streamJob(i/10, i%10, true)) // every line alerts
	}
	var got []int
	_, err := MonitorWith(context.Background(), markDetector{}, strings.NewReader(logOf(jobs)), MonitorConfig{
		ChunkSize: 3, Workers: 8,
		Sinks: []AlertSink{SinkFuncs{OnAlert: func(a Alert) {
			got = append(got, a.Job.TraceID*10+a.Job.NodeIndex)
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("%d alerts, want %d", len(got), len(jobs))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("alert %d out of order: got job %d", i, v)
		}
	}
}

// TestTraceTrackerEviction bounds the window: with MaxTraces 4 and 10
// distinct traces, only 4 states survive and the rest are counted evicted.
func TestTraceTrackerEviction(t *testing.T) {
	tr := NewTraceTracker(DefaultTracePolicy(), 4)
	for trace := 0; trace < 10; trace++ {
		for n := 0; n < 3; n++ {
			tr.Observe(trace, false)
		}
	}
	if tr.Len() != 4 {
		t.Fatalf("window holds %d traces, want 4", tr.Len())
	}
	if tr.Evicted() != 6 {
		t.Fatalf("evicted = %d, want 6", tr.Evicted())
	}
	// The survivors are the most recently observed traces 6..9.
	for trace := 6; trace < 10; trace++ {
		if _, ok := tr.Verdict(trace); !ok {
			t.Fatalf("trace %d missing from window", trace)
		}
	}
	// Re-observing keeps a trace alive: touch 6, add a new trace, 7 dies first.
	tr.Observe(6, false)
	tr.Observe(100, false)
	if _, ok := tr.Verdict(6); !ok {
		t.Fatal("recently touched trace 6 was evicted")
	}
	if _, ok := tr.Verdict(7); ok {
		t.Fatal("LRU trace 7 survived past the window")
	}
}

// TestTraceTrackerFlagOnce checks the flag event fires exactly once, the
// moment the policy trips, while the verdict keeps tracking current counts.
func TestTraceTrackerFlagOnce(t *testing.T) {
	tr := NewTraceTracker(TracePolicy{MinAnomalous: 2, MinFraction: 1.5}, 16)
	events := 0
	observe := func(abnormal bool) TraceVerdict {
		v, newly := tr.Observe(7, abnormal)
		if newly {
			events++
		}
		return v
	}
	observe(true)
	if v := observe(false); v.Flagged {
		t.Fatalf("flagged too early: %+v", v)
	}
	if events != 0 {
		t.Fatal("event before threshold")
	}
	v := observe(true) // second abnormal: trips MinAnomalous=2
	if !v.Flagged || events != 1 {
		t.Fatalf("trip: verdict %+v, events %d", v, events)
	}
	observe(true) // stays flagged, no second event
	if events != 1 {
		t.Fatalf("flag event fired %d times", events)
	}
}

// TestTraceTrackerReset checks Reset drops windows, latches, and the eviction
// count, so a replayed stream flags again — what the load lab's paired
// cascade replays rely on for comparable flagged-trace counts.
func TestTraceTrackerReset(t *testing.T) {
	tr := NewTraceTracker(TracePolicy{MinAnomalous: 1, MinFraction: 1.5}, 2)
	tr.Observe(1, true)
	tr.Observe(2, false)
	tr.Observe(3, false) // evicts trace 1
	if tr.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", tr.Evicted())
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Evicted() != 0 {
		t.Fatalf("after Reset: len %d, evicted %d, want 0/0", tr.Len(), tr.Evicted())
	}
	if _, ok := tr.Verdict(2); ok {
		t.Fatal("trace survived Reset")
	}
	if _, newly := tr.Observe(1, true); !newly {
		t.Fatal("latch survived Reset: replayed trace did not re-flag")
	}
}

// TestMonitorContextCancel checks a cancelled context stops the run between
// lines with ctx.Err and a partial report rather than draining the whole
// stream.
func TestMonitorContextCancel(t *testing.T) {
	var jobs []flowbench.Job
	for i := 0; i < 500; i++ {
		jobs = append(jobs, streamJob(i, 0, true)) // every line alerts
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The first alert (delivered from the collector while the reader is
	// still feeding) cancels the run mid-stream.
	report, err := MonitorWith(ctx, markDetector{}, strings.NewReader(logOf(jobs)), MonitorConfig{
		ChunkSize: 4, Workers: 2,
		Sinks: []AlertSink{SinkFuncs{OnAlert: func(Alert) { cancel() }}},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if report.Processed == 0 || report.Processed >= 500 {
		t.Fatalf("processed = %d, want a partial run", report.Processed)
	}

	// Cancelled before the first line: nothing is processed.
	report, err = MonitorWith(ctx, markDetector{}, strings.NewReader(logOf(jobs)), MonitorConfig{ChunkSize: 4})
	if err != context.Canceled {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}
	if report.Processed != 0 {
		t.Fatalf("pre-cancelled run processed %d lines", report.Processed)
	}
}

// TestMonitorFlushDelayPartialChunk pins the tail-mode latency contract: a
// trickling source that never fills a chunk still gets its lines classified
// within FlushDelay, while the stream stays open.
func TestMonitorFlushDelayPartialChunk(t *testing.T) {
	pr, pw := io.Pipe()
	alerts := make(chan Alert, 8)
	type result struct {
		report MonitorReport
		err    error
	}
	done := make(chan result, 1)
	go func() {
		report, err := MonitorWith(context.Background(), markDetector{}, pr, MonitorConfig{
			ChunkSize:  32,
			FlushDelay: 20 * time.Millisecond,
			Sinks:      []AlertSink{SinkFuncs{OnAlert: func(a Alert) { alerts <- a }}},
		})
		done <- result{report, err}
	}()

	// Two lines — far below ChunkSize — with the pipe held open.
	if _, err := io.WriteString(pw, logOf([]flowbench.Job{
		streamJob(1, 0, true), streamJob(1, 1, false),
	})); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-alerts:
		if a.Job.NodeIndex != 0 {
			t.Fatalf("alert for wrong job: %+v", a.Job)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("partial chunk never flushed while the stream stayed open")
	}
	pw.Close()
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.report.Processed != 2 || res.report.Alerts != 1 {
		t.Fatalf("report = %+v", res.report)
	}
}

// TestMonitorLegacyWrapper keeps the simple Monitor entry point honest.
func TestMonitorLegacyWrapper(t *testing.T) {
	jobs := []flowbench.Job{streamJob(1, 0, true), streamJob(1, 1, false)}
	alerts := 0
	report, err := Monitor(markDetector{}, strings.NewReader(logOf(jobs)), func(Alert) { alerts++ })
	if err != nil {
		t.Fatal(err)
	}
	if report.Processed != 2 || report.Alerts != 1 || alerts != 1 {
		t.Fatalf("report = %+v, alerts = %d", report, alerts)
	}
}
