package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/tensor"
)

// stallDetector blocks each batch until released (or for a fixed delay),
// letting tests pile up a queue deterministically.
type stallDetector struct {
	hashDetector
	delay   time.Duration
	release chan struct{} // when non-nil, batches block here instead of sleeping
	batches atomic.Int64
}

func (d *stallDetector) DetectBatch(ss []string) []Result {
	d.batches.Add(1)
	if d.release != nil {
		<-d.release
	} else if d.delay > 0 {
		time.Sleep(d.delay)
	}
	return d.hashDetector.DetectBatch(ss)
}

func (d *stallDetector) DetectBatchWS(ss []string, _ *tensor.Workspace) []Result {
	return d.DetectBatch(ss)
}

// TestAdmissionControlSheds floods a single-worker engine past its shed
// budget and checks that the excess is refused with an OverloadedError
// carrying a sane Retry-After, before any of it reaches the model.
func TestAdmissionControlSheds(t *testing.T) {
	det := &stallDetector{release: make(chan struct{})}
	reg := NewRegistry()
	cfg := BatchConfig{MaxBatch: 1, Workers: 1, QueueDepth: 64, ShedQueueDepth: 4}
	if err := reg.Add("m", det, cfg); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	eng, _ := reg.route("m")

	// First request occupies the worker; the queue then fills to the budget.
	var wg sync.WaitGroup
	var shed, ok atomic.Int64
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := eng.DetectContext(context.Background(), []string{fmt.Sprintf("s%d", i)})
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				var oe *OverloadedError
				if !errors.As(err, &oe) {
					t.Errorf("shed error is not *OverloadedError: %v", err)
					return
				}
				if oe.RetryAfter < 50*time.Millisecond || oe.RetryAfter > 5*time.Second {
					t.Errorf("retry-after %s outside [50ms, 5s]", oe.RetryAfter)
				}
				shed.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	// Let the flood settle against the blocked worker, then release it.
	time.Sleep(100 * time.Millisecond)
	close(det.release)
	wg.Wait()

	if shed.Load() == 0 {
		t.Fatal("nothing shed with queue past its budget")
	}
	if ok.Load() == 0 {
		t.Fatal("everything shed; admitted requests should still complete")
	}
	st, err := reg.Stats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed != shed.Load() {
		t.Fatalf("stats shed = %d, want %d", st.Shed, shed.Load())
	}
}

// TestShedOverHTTP pins the 429 wire contract: status, Retry-After in whole
// seconds, and Retry-After-Ms agreeing with it.
func TestShedOverHTTP(t *testing.T) {
	det := &stallDetector{release: make(chan struct{})}
	srv := NewServerWith(det, BatchConfig{MaxBatch: 1, Workers: 1, QueueDepth: 64, ShedQueueDepth: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// LIFO: the worker must unblock before ts.Close waits on connections.
	defer close(det.release)

	post := func(query string) *http.Response {
		resp, err := ts.Client().Post(ts.URL+"/v1/detect/batch"+query, "application/json",
			strings.NewReader(`{"sentences": ["x is 1.0"]}`))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// Saturate: worker blocked + queue at budget. Requests run in goroutines
	// since admitted ones block until release.
	for i := 0; i < 8; i++ {
		go func() {
			resp := post("")
			resp.Body.Close()
		}()
	}
	// Each probe carries a deadline: one that slips in under the budget
	// expires (504) instead of blocking the loop, deepens the stuck queue,
	// and the next probe meets the shed threshold.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := post("?deadline_ms=100")
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			ra := resp.Header.Get("Retry-After")
			raMs := resp.Header.Get("Retry-After-Ms")
			if ra == "" || raMs == "" {
				t.Fatalf("429 missing Retry-After headers: %q %q", ra, raMs)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("never observed a 429 despite a blocked worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDeadlineExpiresQueuedRequest checks both halves of the deadline
// contract: the HTTP 504 on expiry, and the expired counter proving the job
// was dropped at dequeue rather than computed.
func TestDeadlineExpiresQueuedRequest(t *testing.T) {
	det := &stallDetector{release: make(chan struct{})}
	srv := NewServerWith(det, BatchConfig{MaxBatch: 1, Workers: 1, QueueDepth: 64})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Occupy the worker so the deadlined request waits in queue.
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/detect/batch", "application/json",
			strings.NewReader(`{"sentences": ["blocker"]}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	for det.batches.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/detect/batch?deadline_ms=30", "application/json",
		strings.NewReader(`{"sentences": ["x is 1.0"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadlined request status = %d, want 504", resp.StatusCode)
	}
	close(det.release)

	// The queued job is skipped at dequeue and counted as expired.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := srv.Registry().Stats("")
		if err != nil {
			t.Fatal(err)
		}
		if st.Expired >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("expired counter never advanced: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Malformed deadline is the client's mistake.
	resp, err = ts.Client().Post(ts.URL+"/v1/detect/batch?deadline_ms=nope", "application/json",
		strings.NewReader(`{"sentences": ["x is 1.0"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad deadline_ms status = %d, want 400", resp.StatusCode)
	}
}

// TestMaxQueueWaitSheds checks the queue-time budget: jobs that outstay
// MaxQueueWait are shed at dequeue with the 429 contract, not computed.
func TestMaxQueueWaitSheds(t *testing.T) {
	det := &stallDetector{release: make(chan struct{})}
	reg := NewRegistry()
	cfg := BatchConfig{MaxBatch: 1, Workers: 1, QueueDepth: 64, MaxQueueWait: 20 * time.Millisecond}
	if err := reg.Add("m", det, cfg); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	eng, _ := reg.route("m")

	var wg sync.WaitGroup
	var shed atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := eng.DetectContext(context.Background(), []string{fmt.Sprintf("s%d", i)})
			if errors.Is(err, ErrOverloaded) {
				shed.Add(1)
			} else if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	// Hold the worker well past the budget, then let the backlog dequeue.
	time.Sleep(100 * time.Millisecond)
	close(det.release)
	wg.Wait()
	if shed.Load() == 0 {
		t.Fatal("no request shed by the queue-wait budget")
	}
}

// TestBrownoutStateMachine unit-tests the hysteresis: engage only after the
// hold, stay engaged until the low watermark, and never flap in between.
func TestBrownoutStateMachine(t *testing.T) {
	b := &brownout{high: 10, low: 2, hold: 100 * time.Millisecond}
	t0 := time.Unix(0, 0)
	if b.observe(12, t0) {
		t.Fatal("engaged instantly; saturation must be sustained")
	}
	if b.observe(12, t0.Add(50*time.Millisecond)) {
		t.Fatal("engaged before hold elapsed")
	}
	// A dip below the high watermark resets the hold clock.
	if b.observe(5, t0.Add(60*time.Millisecond)) {
		t.Fatal("engaged on a dip")
	}
	if b.observe(12, t0.Add(70*time.Millisecond)) {
		t.Fatal("hold clock survived the dip")
	}
	if !b.observe(12, t0.Add(200*time.Millisecond)) {
		t.Fatal("not engaged after sustained saturation")
	}
	// Engaged: mid-range depth keeps the tier on (hysteresis).
	if !b.observe(5, t0.Add(210*time.Millisecond)) {
		t.Fatal("disengaged above the low watermark")
	}
	if !b.active() {
		t.Fatal("active() disagrees with observe")
	}
	if b.observe(1, t0.Add(220*time.Millisecond)) {
		t.Fatal("still engaged at the low watermark")
	}
	// Disabled watermark never engages.
	off := &brownout{}
	if off.observe(1000, t0) || off.active() {
		t.Fatal("zero-value brownout engaged")
	}
}

// TestBrownoutServesDegraded drives a saturated engine with a fallback
// installed and checks that traffic flips to the degraded tier (marked
// degraded, counted in stats) and recovers after the queue drains.
func TestBrownoutServesDegraded(t *testing.T) {
	det := &stallDetector{release: make(chan struct{})}
	reg := NewRegistry()
	cfg := BatchConfig{
		MaxBatch: 1, Workers: 1, QueueDepth: 64,
		BrownoutDepth: 3, BrownoutRecover: 1, BrownoutHold: 10 * time.Millisecond,
	}
	if err := reg.Add("m", det, cfg); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if err := reg.SetFallback("m", labelDetector{label: 1}); err != nil {
		t.Fatal(err)
	}
	eng, _ := reg.route("m")

	// Build a sustained backlog against the blocked worker.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng.DetectContext(context.Background(), []string{fmt.Sprintf("s%d", i)})
		}(i)
	}
	var sawDegraded bool
	deadline := time.Now().Add(5 * time.Second)
	for !sawDegraded {
		if time.Now().After(deadline) {
			t.Fatal("brownout never engaged under sustained saturation")
		}
		time.Sleep(15 * time.Millisecond)
		// Probes before the tier engages enqueue against the blocked worker
		// and would wait forever; a short context bounds each observation.
		pctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		res, degraded, err := eng.DetectContext(pctx, []string{"probe"})
		cancel()
		if err != nil {
			continue // timed out in queue: tier not engaged yet
		}
		if degraded {
			if len(res) != 1 || res[0].Label != 1 {
				t.Fatalf("degraded result not from fallback: %+v", res)
			}
			sawDegraded = true
		}
	}
	if !eng.brownoutActive() {
		t.Fatal("brownoutActive false while serving degraded")
	}
	st, _ := reg.Stats("m")
	if st.Degraded == 0 || !st.BrownoutActive {
		t.Fatalf("stats missed the brownout: %+v", st)
	}

	// Drain and recover: with the worker released the queue empties and the
	// next observation at/below the low watermark disengages the tier.
	close(det.release)
	wg.Wait()
	deadline = time.Now().Add(5 * time.Second)
	for {
		_, degraded, err := eng.DetectContext(context.Background(), []string{"probe"})
		if err != nil {
			t.Fatal(err)
		}
		if !degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("brownout never recovered after drain")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if eng.brownoutActive() {
		t.Fatal("brownoutActive true after recovery")
	}
}

// TestFitFallbackScoresSentences round-trips the brownout tier: fit the
// calibrated baseline on Flow-Bench training data and check the sentence path
// (parse → score → threshold) agrees with the direct job path.
func TestFitFallbackScoresSentences(t *testing.T) {
	ds := flowbench.Generate(flowbench.Genome, 7)
	train := ds.Train[:600]
	det, err := FitFallback("pca", train, 7)
	if err != nil {
		t.Fatal(err)
	}
	if det.Approach() != ApproachBaseline {
		t.Fatalf("approach = %q, want %q", det.Approach(), ApproachBaseline)
	}
	jobs := ds.Test[:200]
	sentences := make([]string, len(jobs))
	for i, j := range jobs {
		sentences[i] = logparse.Sentence(j)
	}
	res := det.DetectBatch(sentences)
	if len(res) != len(jobs) {
		t.Fatalf("results = %d, want %d", len(res), len(jobs))
	}
	flagged := 0
	for i, r := range res {
		if r.Score <= 0 || r.Score >= 1 {
			t.Fatalf("score %v outside (0, 1)", r.Score)
		}
		// Compare against the job the sentence actually encodes (FormatValue
		// rounds, so the original job can sit on the other side of the
		// threshold for borderline scores).
		parsed, err := logparse.ParseSentence(sentences[i])
		if err != nil {
			t.Fatal(err)
		}
		direct := det.DetectJob(parsed)
		if direct.Label != r.Label {
			t.Fatalf("sentence path label %d != job path label %d at %d", r.Label, direct.Label, i)
		}
		flagged += r.Label
	}
	if flagged == 0 || flagged == len(jobs) {
		t.Fatalf("degenerate fallback: flagged %d of %d", flagged, len(jobs))
	}
	// Unparseable input answers "normal, zero confidence", never an error.
	junk := det.DetectBatch([]string{"not a feature sentence"})
	if junk[0].Label != 0 || junk[0].Score != 0 {
		t.Fatalf("junk sentence result = %+v, want zero result", junk[0])
	}
}

// TestReadyzReflectsSaturation pins the liveness/readiness split: /healthz
// stays 200 while /readyz answers 503 the moment a model's brownout tier is
// engaged, with per-model saturation in the body.
func TestReadyzReflectsSaturation(t *testing.T) {
	srv := NewServerWith(hashDetector{}, BatchConfig{MaxBatch: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(path string) (int, readyResponse) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body readyResponse
		json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}
	code, body := get("/readyz")
	if code != http.StatusOK || !body.Ready {
		t.Fatalf("idle server not ready: %d %+v", code, body)
	}
	if len(body.Models) != 1 || body.Models[0].QueueCap == 0 {
		t.Fatalf("readiness body missing model rows: %+v", body)
	}

	// Engage the default model's brownout tier directly (same package).
	eng, err := srv.Registry().route("")
	if err != nil {
		t.Fatal(err)
	}
	eng.brown.mu.Lock()
	eng.brown.high = 1
	eng.brown.engaged = true
	eng.brown.mu.Unlock()

	code, body = get("/readyz")
	if code != http.StatusServiceUnavailable || body.Ready {
		t.Fatalf("browned-out server reported ready: %d %+v", code, body)
	}
	if !body.Models[0].Degraded {
		t.Fatalf("model row not marked degraded: %+v", body.Models[0])
	}
	if code, _ = get("/healthz"); code != http.StatusOK {
		t.Fatalf("liveness flipped with readiness: /healthz = %d", code)
	}
}
