package core

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flowbench"
	"repro/internal/logparse"
)

// labelDetector is a fast stub whose every result carries a fixed label and
// score, so routing tests can tell which model answered.
type labelDetector struct {
	label int
	score float64
	delay time.Duration // per-batch model latency, to widen race windows
}

func (d labelDetector) DetectSentence(string) Result {
	return Result{Label: d.label, Score: d.score}
}

func (d labelDetector) DetectBatch(ss []string) []Result {
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	out := make([]Result, len(ss))
	for i := range out {
		out[i] = Result{Label: d.label, Score: d.score}
	}
	return out
}

func (d labelDetector) DetectJob(flowbench.Job) Result {
	return Result{Label: d.label, Score: d.score}
}

func (d labelDetector) Approach() Approach { return SFT }

func TestRegistryAddAndNames(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	if err := reg.Add("beta", labelDetector{label: 1}, BatchConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("alpha", labelDetector{label: 0}, BatchConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("beta", labelDetector{}, BatchConfig{}); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if err := reg.Add("", labelDetector{}, BatchConfig{}); err == nil {
		t.Fatal("empty-name Add succeeded")
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("names = %v", got)
	}
	// First added is the default, regardless of sort order.
	if reg.Default() != "beta" {
		t.Fatalf("default = %q, want beta", reg.Default())
	}
	if err := reg.SetDefault("alpha"); err != nil {
		t.Fatal(err)
	}
	if reg.Default() != "alpha" {
		t.Fatalf("default = %q after SetDefault", reg.Default())
	}
	if err := reg.SetDefault("nope"); err == nil {
		t.Fatal("SetDefault on unknown model succeeded")
	}
}

// TestServerRoutesByModelName serves two models from one process and checks
// that ?model= routing reaches the right one by name — the "train once,
// serve many" acceptance path.
func TestServerRoutesByModelName(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("genome-sft", labelDetector{label: 0, score: 0.25}, BatchConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("montage-sft", labelDetector{label: 1, score: 0.75}, BatchConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	s := NewServerRegistry(reg)
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	post := func(model string) (DetectResponse, int) {
		t.Helper()
		url := srv.URL + "/v1/detect"
		if model != "" {
			url += "?model=" + model
		}
		resp, err := http.Post(url, "application/json", strings.NewReader(`{"sentence":"runtime is 5.0"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out DetectResponse
		json.NewDecoder(resp.Body).Decode(&out)
		return out, resp.StatusCode
	}

	if out, code := post("genome-sft"); code != http.StatusOK || out.Label != 0 || out.Score != 0.25 {
		t.Fatalf("genome-sft → %+v (status %d)", out, code)
	}
	if out, code := post("montage-sft"); code != http.StatusOK || out.Label != 1 || out.Score != 0.75 {
		t.Fatalf("montage-sft → %+v (status %d)", out, code)
	}
	// No ?model= routes to the default (first added).
	if out, code := post(""); code != http.StatusOK || out.Label != 0 {
		t.Fatalf("default route → %+v (status %d)", out, code)
	}
	if _, code := post("no-such-model"); code != http.StatusNotFound {
		t.Fatalf("unknown model status = %d, want 404", code)
	}

	// The batch endpoint routes too.
	resp, err := http.Post(srv.URL+"/v1/detect/batch?model=montage-sft", "application/json",
		strings.NewReader(`{"sentences":["a","b","c"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var batch BatchResponse
	json.NewDecoder(resp.Body).Decode(&batch)
	resp.Body.Close()
	if len(batch.Results) != 3 || batch.Results[2].Label != 1 {
		t.Fatalf("batch via montage-sft = %+v", batch)
	}
}

func TestServerModelsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Add("m1", labelDetector{}, BatchConfig{MaxBatch: 8, Workers: 2})
	reg.Add("m2", labelDetector{}, BatchConfig{MaxBatch: 16, Workers: 1})
	s := NewServerRegistry(reg)
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Models) != 2 {
		t.Fatalf("models = %+v", out.Models)
	}
	if out.Models[0].Name != "m1" || !out.Models[0].Default || out.Models[0].MaxBatch != 8 {
		t.Fatalf("m1 info = %+v", out.Models[0])
	}
	if out.Models[1].Name != "m2" || out.Models[1].Default || out.Models[1].MaxBatch != 16 {
		t.Fatalf("m2 info = %+v", out.Models[1])
	}
}

// TestRegistrySwapZeroDrops is the hot-swap acceptance test: while client
// goroutines hammer one model, the detector is swapped repeatedly. Every
// request must succeed — none dropped, none failed — and by the end results
// must come from the final detector. Run under -race in CI.
func TestRegistrySwapZeroDrops(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("live", labelDetector{label: 0, delay: 200 * time.Microsecond}, BatchConfig{
		MaxBatch: 4, FlushDelay: 100 * time.Microsecond, Workers: 2,
	}); err != nil {
		t.Fatal(err)
	}
	s := NewServerRegistry(reg)
	defer s.Close()

	const (
		clients   = 8
		perClient = 150
		swaps     = 20
	)
	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		answered atomic.Int64
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				res, err := s.DetectModelContext(context.Background(), "live", []string{"x", "y"})
				if err != nil || len(res) != 2 {
					failures.Add(1)
					continue
				}
				answered.Add(1)
			}
		}()
	}
	for swapped := 0; swapped < swaps; swapped++ {
		if err := reg.Swap("live", labelDetector{label: swapped % 2, delay: 200 * time.Microsecond}); err != nil {
			t.Fatalf("swap %d: %v", swapped, err)
		}
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d requests dropped across %d swaps", failures.Load(), clients*perClient, swaps)
	}
	if answered.Load() != clients*perClient {
		t.Fatalf("answered %d, want %d", answered.Load(), clients*perClient)
	}
	// After the last swap completes, traffic reaches the final detector.
	final := (swaps - 1) % 2
	res, err := s.DetectModelContext(context.Background(), "live", []string{"z"})
	if err != nil || res[0].Label != final {
		t.Fatalf("post-swap result = %+v, %v (want label %d)", res, err, final)
	}
}

// TestRegistrySwapDrainsInFlight checks the drain contract: a request
// in flight on the old engine when Swap begins completes on the old
// detector, and Swap does not return until it has.
func TestRegistrySwapDrainsInFlight(t *testing.T) {
	reg := NewRegistry()
	slow := labelDetector{label: 0, delay: 100 * time.Millisecond}
	if err := reg.Add("m", slow, BatchConfig{MaxBatch: 2, FlushDelay: -1, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	s := NewServerRegistry(reg)
	defer s.Close()

	type outcome struct {
		res []Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := s.DetectModelContext(context.Background(), "m", []string{"a"})
		done <- outcome{res, err}
	}()
	time.Sleep(20 * time.Millisecond) // let the job reach the old engine

	start := time.Now()
	if err := reg.Swap("m", labelDetector{label: 1}); err != nil {
		t.Fatal(err)
	}
	swapTook := time.Since(start)

	out := <-done
	if out.err != nil || len(out.res) != 1 || out.res[0].Label != 0 {
		t.Fatalf("in-flight request = %+v, %v (want old model's label 0)", out.res, out.err)
	}
	// Swap must have waited for the old engine's in-flight batch.
	if swapTook < 50*time.Millisecond {
		t.Fatalf("Swap returned in %v; expected it to block on the old engine's drain", swapTook)
	}
	// New traffic lands on the new detector.
	res, err := s.Detect([]string{"b"})
	if err != nil || res[0].Label != 1 {
		t.Fatalf("post-swap = %+v, %v", res, err)
	}
}

func TestRegistryRemoveAndDefaultPromotion(t *testing.T) {
	reg := NewRegistry()
	reg.Add("zeta", labelDetector{label: 1}, BatchConfig{})
	reg.Add("alpha", labelDetector{label: 0}, BatchConfig{})
	if reg.Default() != "zeta" {
		t.Fatalf("default = %q", reg.Default())
	}
	if err := reg.Remove("zeta"); err != nil {
		t.Fatal(err)
	}
	if reg.Default() != "alpha" {
		t.Fatalf("default after remove = %q, want alpha", reg.Default())
	}
	if err := reg.Remove("zeta"); err == nil {
		t.Fatal("double remove succeeded")
	}
	if _, err := reg.Detector("zeta"); err == nil {
		t.Fatal("removed model still routable")
	}
	det, err := reg.Detector("") // default
	if err != nil {
		t.Fatal(err)
	}
	if det.(labelDetector).label != 0 {
		t.Fatal("default detector wrong after promotion")
	}
}

func TestRegistryCloseFailsLookups(t *testing.T) {
	reg := NewRegistry()
	reg.Add("m", labelDetector{}, BatchConfig{})
	s := NewServerRegistry(reg)
	s.Close()
	if _, err := s.Detect([]string{"a"}); err != ErrServerClosed {
		t.Fatalf("Detect after close = %v, want ErrServerClosed", err)
	}
	if err := reg.Add("late", labelDetector{}, BatchConfig{}); err != ErrServerClosed {
		t.Fatalf("Add after close = %v", err)
	}
	if err := reg.Swap("m", labelDetector{}); err != ErrServerClosed {
		t.Fatalf("Swap after close = %v", err)
	}
	s.Close() // idempotent
}

// TestMonitorRoutesByModel runs monitor ingest against a named model and
// checks trace state stays per-model.
func TestMonitorRoutesByModel(t *testing.T) {
	reg := NewRegistry()
	reg.Add("quiet", labelDetector{label: 0}, BatchConfig{Workers: 1})
	reg.Add("noisy", markDetector{}, BatchConfig{Workers: 1})
	s := NewServerRegistry(reg)
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	var body strings.Builder
	for i := 0; i < 3; i++ {
		body.WriteString(logparse.LogLine(streamJob(7, i, true)) + "\n")
	}
	resp, err := http.Post(srv.URL+"/v1/monitor?model=noisy", "text/plain", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	var rep MonitorResponse
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if rep.Processed != 3 || rep.Alerts != 3 {
		t.Fatalf("noisy report = %+v", rep.MonitorReport)
	}

	// The quiet model's tracker was untouched; the noisy model's holds the
	// trace.
	var models ModelsResponse
	mresp, err := http.Get(srv.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(mresp.Body).Decode(&models)
	mresp.Body.Close()
	for _, m := range models.Models {
		want := 0
		if m.Name == "noisy" {
			want = 1
		}
		if m.ActiveTraces != want {
			t.Fatalf("model %s has %d active traces, want %d", m.Name, m.ActiveTraces, want)
		}
	}

	// ResetMonitor clears the noisy model's tracker so a replayed stream
	// starts a fresh window (and re-flags — the paired-replay contract).
	if err := reg.ResetMonitor("noisy"); err != nil {
		t.Fatal(err)
	}
	for _, m := range reg.Info() {
		if m.ActiveTraces != 0 {
			t.Fatalf("model %s holds %d traces after ResetMonitor", m.Name, m.ActiveTraces)
		}
	}
	if err := reg.ResetMonitor("ghost"); err == nil {
		t.Fatal("ResetMonitor(ghost) succeeded for unknown model")
	}

	// Unknown model on monitor → 404.
	resp, err = http.Post(srv.URL+"/v1/monitor?model=ghost", "text/plain", strings.NewReader("x=1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost monitor status = %d", resp.StatusCode)
	}
}

// TestHealthReportsModels checks /healthz carries the registry size next to
// the default model's knobs.
func TestHealthReportsModels(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 3; i++ {
		reg.Add(fmt.Sprintf("m%d", i), labelDetector{}, BatchConfig{})
	}
	s := NewServerRegistry(reg)
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Models != 3 {
		t.Fatalf("health = %+v", health)
	}
}
