package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/flowbench"
)

// loadedCopy round-trips det through an artifact so tests can hold two
// independent detectors with identical weights (Clone is unavailable for
// LoRA/quantized models; the artifact layer is the supported path).
func loadedCopy(t *testing.T, det Detector) Detector {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveDetector(&buf, det); err != nil {
		t.Fatal(err)
	}
	copyDet, err := LoadDetector(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return copyDet
}

// quantizedPair returns (fp32, int8) detectors with the same trained weights.
func quantizedPair(t *testing.T, det Detector) (Detector, Detector) {
	t.Helper()
	q, err := QuantizeDetector(loadedCopy(t, det))
	if err != nil {
		t.Fatal(err)
	}
	return det, q
}

// assertQuantizedParity is the detection-accuracy parity pin: int8 and fp32
// must agree on ≥ 99% of fixture-corpus verdicts, anomaly scores must stay
// within scoreTol everywhere, and per-trace verdicts must match.
func assertQuantizedParity(t *testing.T, fp32, int8Det Detector, ds *flowbench.Dataset) {
	t.Helper()
	sentences := fixtureSentences(ds, 200)
	fr := fp32.DetectBatch(sentences)
	qr := int8Det.DetectBatch(sentences)
	agree := 0
	maxScoreDiff := 0.0
	for i := range fr {
		if fr[i].Label == qr[i].Label {
			agree++
		}
		if d := math.Abs(fr[i].Score - qr[i].Score); d > maxScoreDiff {
			maxScoreDiff = d
		}
	}
	if frac := float64(agree) / float64(len(fr)); frac < 0.99 {
		t.Fatalf("int8 verdict agreement %.4f (%d/%d), want ≥ 0.99", frac, agree, len(fr))
	}
	if maxScoreDiff > 0.15 {
		t.Fatalf("int8 max anomaly-score drift %.4f, want ≤ 0.15", maxScoreDiff)
	}
	jobs := ds.Test[:80]
	fv := DetectTraces(fp32, jobs, DefaultTracePolicy())
	qv := DetectTraces(int8Det, jobs, DefaultTracePolicy())
	for i := range fv {
		if fv[i].Flagged != qv[i].Flagged {
			t.Fatalf("trace %d flagged %v under fp32, %v under int8", fv[i].TraceID, fv[i].Flagged, qv[i].Flagged)
		}
	}
}

func TestQuantizedParitySFT(t *testing.T) {
	det, ds := detector(t)
	fp32, q := quantizedPair(t, det)
	if DetectorPrecision(fp32) != PrecisionFP32 {
		t.Fatalf("trained detector reports %q", DetectorPrecision(fp32))
	}
	if DetectorPrecision(q) != PrecisionInt8 {
		t.Fatalf("quantized detector reports %q", DetectorPrecision(q))
	}
	assertQuantizedParity(t, fp32, q, ds)
}

func TestQuantizedParityICL(t *testing.T) {
	det := iclDetectorForTest(t)
	_, ds := detector(t)
	fp32, q := quantizedPair(t, det)
	if DetectorPrecision(q) != PrecisionInt8 {
		t.Fatalf("quantized detector reports %q", DetectorPrecision(q))
	}
	assertQuantizedParity(t, fp32, q, ds)
}

// TestQuantizedArtifactRoundTrip pins the v2 int8 artifact: a quantized
// detector saves, loads bitwise-identically, and the artifact is
// substantially smaller than its fp32 counterpart.
func TestQuantizedArtifactRoundTrip(t *testing.T) {
	det, ds := detector(t)
	var fp32Buf bytes.Buffer
	if err := SaveDetector(&fp32Buf, det); err != nil {
		t.Fatal(err)
	}
	_, q := quantizedPair(t, det)
	var qBuf bytes.Buffer
	if err := SaveDetector(&qBuf, q); err != nil {
		t.Fatal(err)
	}
	if qBuf.Len() >= fp32Buf.Len() {
		t.Fatalf("int8 artifact %dB not smaller than fp32 %dB", qBuf.Len(), fp32Buf.Len())
	}
	loaded, err := LoadDetector(bytes.NewReader(qBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if DetectorPrecision(loaded) != PrecisionInt8 {
		t.Fatalf("loaded artifact reports %q", DetectorPrecision(loaded))
	}
	assertDetectorsBitwiseEqual(t, q, loaded, ds)
}

// TestQuantizedArtifactRoundTripICL pins the int8 artifact for the LoRA-tuned
// ICL detector: adapters merge at quantization, so the artifact carries no
// LoRA structure and still restores bitwise-identical detection.
func TestQuantizedArtifactRoundTripICL(t *testing.T) {
	det := iclDetectorForTest(t)
	_, ds := detector(t)
	_, q := quantizedPair(t, det)
	loaded := loadedCopy(t, q)
	if DetectorPrecision(loaded) != PrecisionInt8 {
		t.Fatalf("loaded artifact reports %q", DetectorPrecision(loaded))
	}
	assertDetectorsBitwiseEqual(t, q, loaded, ds)
}

// TestQuantizeDetectorRejects pins the error paths: double quantization and
// foreign detector implementations.
func TestQuantizeDetectorRejects(t *testing.T) {
	det, _ := detector(t)
	_, q := quantizedPair(t, det)
	if _, err := QuantizeDetector(q); err == nil {
		t.Fatal("double quantization accepted")
	}
	if _, err := QuantizeDetector(markDetector{}); err == nil || !strings.Contains(err.Error(), "cannot quantize") {
		t.Fatalf("foreign detector: err = %v", err)
	}
}

// writeV1Artifact reproduces the PR 4 (version 1) artifact layout byte for
// byte: no precision section, no quantized-weights section.
func writeV1Artifact(t *testing.T, det Detector) []byte {
	t.Helper()
	d, ok := det.(*sftDetector)
	if !ok {
		t.Fatalf("v1 writer test helper supports SFT detectors, got %T", det)
	}
	model, tok := d.clf.Model, d.clf.Tok
	var out bytes.Buffer
	h := crc32.NewIEEE()
	mw := io.MultiWriter(&out, h)
	for _, v := range []uint32{artifactMagic, 1} {
		if err := binary.Write(mw, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	cfgJSON, err := json.Marshal(model.Config)
	if err != nil {
		t.Fatal(err)
	}
	var tokBuf, wBuf bytes.Buffer
	if err := tok.Save(&tokBuf); err != nil {
		t.Fatal(err)
	}
	if err := model.Save(&wBuf); err != nil {
		t.Fatal(err)
	}
	metaJSON, _ := json.Marshal(struct{}{})
	for _, sec := range [][]byte{[]byte(SFT), cfgJSON, tokBuf.Bytes(), metaJSON, wBuf.Bytes()} {
		if err := writeSection(mw, sec); err != nil {
			t.Fatal(err)
		}
	}
	if err := binary.Write(&out, binary.LittleEndian, h.Sum32()); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestArtifactV1BackCompat pins that fp32 artifacts written by the previous
// format version still load, bitwise-identically, and report fp32 precision.
func TestArtifactV1BackCompat(t *testing.T) {
	det, ds := detector(t)
	v1 := writeV1Artifact(t, det)
	loaded, err := LoadDetector(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 artifact rejected: %v", err)
	}
	if DetectorPrecision(loaded) != PrecisionFP32 {
		t.Fatalf("v1 artifact reports %q", DetectorPrecision(loaded))
	}
	assertDetectorsBitwiseEqual(t, det, loaded, ds)
}

// TestRegistryServesMixedPrecision pins the serving story: fp32 and int8
// variants of the same model registered side by side, routed by name, with
// precision surfaced in the registry snapshot.
func TestRegistryServesMixedPrecision(t *testing.T) {
	det, ds := detector(t)
	fp32, q := quantizedPair(t, det)
	reg := NewRegistry()
	cfg := BatchConfig{MaxBatch: 8, FlushDelay: time.Millisecond, Workers: 1}
	if err := reg.Add("genome", fp32, cfg); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("genome-int8", q, cfg); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	byName := map[string]Precision{}
	for _, info := range reg.Info() {
		byName[info.Name] = info.Precision
	}
	if byName["genome"] != PrecisionFP32 || byName["genome-int8"] != PrecisionInt8 {
		t.Fatalf("registry precisions = %v", byName)
	}

	sentences := fixtureSentences(ds, 16)
	s := NewServerRegistry(reg)
	ctx := context.Background()
	fpRes, err := s.DetectModelContext(ctx, "genome", sentences)
	if err != nil {
		t.Fatal(err)
	}
	qRes, err := s.DetectModelContext(ctx, "genome-int8", sentences)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := range fpRes {
		if fpRes[i].Label == qRes[i].Label {
			agree++
		}
	}
	if agree < len(fpRes)-1 {
		t.Fatalf("served precisions agree on %d/%d sentences", agree, len(fpRes))
	}
}
