package core

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestMetricsEndpoint drives traffic through the server and checks the
// Prometheus exposition: content type, per-model labels, counter values
// matching /v1/models, and the instance label when set.
func TestMetricsEndpoint(t *testing.T) {
	srv := NewServerWith(hashDetector{}, BatchConfig{MaxBatch: 8, FlushDelay: time.Millisecond})
	defer srv.Close()
	srv.SetInstance("r7")
	hs := httptest.NewServer(srv)
	defer hs.Close()

	if _, err := srv.Detect([]string{"a b c", "d e f"}); err != nil {
		t.Fatal(err)
	}

	resp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if got := resp.Header.Get("X-Replica"); got != "r7" {
		t.Fatalf("X-Replica = %q, want r7", got)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE repro_requests_total counter",
		`repro_requests_total{model="default"} 1`,
		`repro_sentences_total{model="default"} 2`,
		`repro_queue_len{model="default"}`,
		`repro_batch_occupancy{model="default"}`,
		`repro_stage_latency_ms{model="default",stage="compute",quantile="0.99"}`,
		`repro_shed_total{model="default"} 0`,
		`repro_instance_info{instance="r7"} 1`,
		"repro_ready 1",
		"repro_sse_subscribers 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestMetricsMethodNotAllowed pins /metrics to GET.
func TestMetricsMethodNotAllowed(t *testing.T) {
	srv := NewServerWith(hashDetector{}, BatchConfig{MaxBatch: 4})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()
	resp, err := hs.Client().Post(hs.URL+"/metrics", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("POST /metrics: %d, want 405", resp.StatusCode)
	}
}
