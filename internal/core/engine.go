package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/cascade"
	"repro/internal/tensor"
)

// ErrServerClosed is returned by Detect calls after the serving engine (or
// the registry/server that owns it) has been closed.
var ErrServerClosed = errors.New("core: server closed")

// detectJob is one coalescable unit of work: the sentences of a single HTTP
// request (or programmatic Detect call) and the slot their results land in.
// ctx is the caller's context: a job whose caller has gone away by the time
// its batch runs is skipped instead of computed for nobody.
type detectJob struct {
	ctx       context.Context
	sentences []string
	enqueued  time.Time // when the job entered the queue (stage-latency stats)
	results   []Result
	err       error // set before done closes when the job was skipped
	done      chan struct{}
}

// engine is the inference machinery behind one served detector: a coalescing
// job queue, a single batch-forming dispatcher, and a pool of workers that
// own tensor workspaces. PR 1–3 baked this into Server; it is now a
// free-standing unit so a Registry can run one engine per model and swap
// engines atomically without touching the HTTP layer.
//
// Lifecycle: newEngine starts the goroutines; Close drains queued jobs, waits
// for in-flight batches to finish, and releases the workers. After Close,
// DetectContext fails with ErrServerClosed — callers holding a stale engine
// (one swapped out of a registry) re-fetch and retry, so a hot-swap drops no
// requests.
type engine struct {
	det     Detector
	cfg     BatchConfig
	stats   *statsRecorder // owned by the registry slot; survives swaps
	fb      *fallbackSlot  // owned by the registry slot; may hold no detector
	gate    *cascadeSlot   // owned by the registry slot; may hold no gate
	brown   brownout
	jobs    chan *detectJob
	batches chan []*detectJob

	mu     sync.RWMutex // guards closed vs. enqueue
	closed bool
	wg     sync.WaitGroup
}

// newEngine starts the dispatcher and worker pool for det. cfg must already
// be filled. stats may be nil (engines outside a registry slot run
// uninstrumented); fb may be nil (no brownout tier); gate may be nil (no
// cascade first stage).
func newEngine(det Detector, cfg BatchConfig, stats *statsRecorder, fb *fallbackSlot, gate *cascadeSlot) *engine {
	if fb == nil {
		fb = &fallbackSlot{}
	}
	if gate == nil {
		gate = &cascadeSlot{}
	}
	e := &engine{
		det:   det,
		cfg:   cfg,
		stats: stats,
		fb:    fb,
		gate:  gate,
		brown: brownout{
			high: cfg.BrownoutDepth,
			low:  cfg.BrownoutRecover,
			hold: cfg.BrownoutHold,
		},
		jobs:    make(chan *detectJob, cfg.QueueDepth),
		batches: make(chan []*detectJob, cfg.Workers),
	}
	e.wg.Add(1)
	go e.dispatch()
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Close drains queued requests, stops the inference workers, and fails
// subsequent DetectContext calls with ErrServerClosed. It blocks until every
// in-flight batch has completed — the drain guarantee Registry.Swap relies on
// — and is idempotent.
func (e *engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.jobs)
	e.mu.Unlock()
	e.wg.Wait()
}

// DetectContext classifies sentences through the coalescing layer, blocking
// until their results are ready (in input order). It returns ctx.Err() as
// soon as ctx is done, whether the job is still queued or in flight, and the
// batch runner skips enqueued jobs whose context has already been cancelled
// instead of computing results nobody will read.
//
// Overload handling happens here, before any work is queued. When the slot
// holds a brownout fallback and sustained saturation has engaged it, the
// request is answered by the cheap tier immediately (degraded=true) without
// touching the queue. Otherwise, if the queue already holds ShedQueueDepth
// jobs, the request is shed with an OverloadedError carrying a Retry-After
// estimate — the 429 path — rather than deepening a backlog the workers
// cannot drain.
func (e *engine) DetectContext(ctx context.Context, sentences []string) (results []Result, degraded bool, err error) {
	if len(sentences) == 0 {
		return nil, false, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	depth := len(e.jobs)
	if fb := e.fb.load(); fb != nil && e.brown.observe(depth, time.Now()) {
		res := fb.DetectBatch(sentences)
		if e.stats != nil {
			e.stats.degradedServed(len(sentences))
		}
		return res, true, nil
	}
	if shed := e.cfg.ShedQueueDepth; shed > 0 && depth >= shed {
		if e.stats != nil {
			e.stats.shedRequest()
		}
		return nil, false, &OverloadedError{RetryAfter: e.retryAfter(depth)}
	}
	j := &detectJob{ctx: ctx, sentences: sentences, enqueued: time.Now(), done: make(chan struct{})}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, false, ErrServerClosed
	}
	// The send below blocks while e.mu is read-held on purpose: holding the
	// RLock across the send is the shutdown handshake — Close takes the
	// write lock before closing e.jobs, so it waits out any sender in
	// flight, and ctx.Done bounds how long that can be.
	//lint:ignore locksafe send under RLock is the close-safe handoff; Close's write lock waits for senders, ctx bounds the wait
	select {
	case e.jobs <- j:
		if e.stats != nil {
			// len(e.jobs) right after our send is the queue depth this
			// request observed — the saturation signal /v1/models reports.
			e.stats.enqueued(len(sentences), len(e.jobs))
		}
		e.mu.RUnlock()
	case <-ctx.Done():
		e.mu.RUnlock()
		return nil, false, ctx.Err()
	}
	select {
	case <-j.done:
		// A skipped job closes done with err set; returning it (rather than
		// assuming results exist) matters because this select can win the
		// race against ctx.Done after a cancellation.
		return j.results, false, j.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// retryAfter estimates how long a shed client should wait before retrying:
// the expected time for the backlog ahead of it to drain, assuming each
// queued job becomes roughly one batch served by Workers parallel workers at
// the recent median compute time. Clamped to [50ms, 5s] so a cold stats
// window or a pathological p50 still yields a sane hint.
func (e *engine) retryAfter(depth int) time.Duration {
	per := 25 * time.Millisecond
	if e.stats != nil {
		if p50 := e.stats.computeP50(); p50 > 0 {
			per = p50
		}
	}
	workers := e.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	d := time.Duration(float64(depth+1) / float64(workers) * float64(per))
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// brownoutActive reports whether the degradation tier is currently engaged,
// without folding in a queue-depth observation — the /readyz and /v1/models
// view of the state machine.
func (e *engine) brownoutActive() bool { return e.brown.active() }

// dispatch is the single batch-forming goroutine: it takes one queued job,
// coalesces more until the batch is full, the flush deadline passes, or the
// queue goes idle, then hands the batch to the worker pool. Centralizing
// batch formation here (rather than in each worker) means two concurrent
// requests coalesce even when many workers sit idle.
func (e *engine) dispatch() {
	defer e.wg.Done()
	defer close(e.batches)
	for job := range e.jobs {
		batch := []*detectJob{job}
		n := len(job.sentences)
		if e.cfg.FlushDelay > 0 {
			timer := time.NewTimer(e.cfg.FlushDelay)
		fill:
			for n < e.cfg.MaxBatch {
				select {
				case nj, ok := <-e.jobs:
					if !ok {
						break fill
					}
					batch = append(batch, nj)
					n += len(nj.sentences)
				case <-timer.C:
					break fill
				}
			}
			timer.Stop()
		} else {
		drain:
			for n < e.cfg.MaxBatch {
				select {
				case nj, ok := <-e.jobs:
					if !ok {
						break drain
					}
					batch = append(batch, nj)
					n += len(nj.sentences)
				default:
					break drain
				}
			}
		}
		e.batches <- batch
	}
}

// worker executes dispatched batches through the detector. Each worker owns
// one tensor.Workspace for its lifetime: when the detector supports
// workspace-threaded batches (BatchWSDetector), every model invocation
// reuses the worker's arena instead of allocating its temporaries, so
// steady-state serving is allocation-free outside request plumbing.
func (e *engine) worker() {
	defer e.wg.Done()
	w := &batchWorker{e: e, ws: tensor.GetWorkspace()}
	defer tensor.PutWorkspace(w.ws)
	wsDet, _ := e.det.(BatchWSDetector)
	for batch := range e.batches {
		w.runBatch(batch, wsDet)
	}
}

// batchWorker is one worker goroutine's state: the engine it serves and the
// scratch arena it owns. The workspace is a field, not a parameter, by
// design: reprolint's hotalloc contract is that a function *taking* a
// *tensor.Workspace is a zero-allocation kernel, while a component *owning*
// one is an orchestrator whose per-batch bookkeeping (job fan-out copies,
// dedup maps) amortizes across the whole coalesced batch.
type batchWorker struct {
	e  *engine
	ws *tensor.Workspace
}

// runBatch classifies the coalesced sentences in MaxBatch-sized chunks and
// hands each job a private copy of its results, preserving input order.
// Copying (rather than sub-slicing one shared backing array) keeps jobs from
// aliasing each other's memory once their waiters take ownership. Jobs whose
// caller already cancelled are skipped entirely — their sentences never
// reach the model. The worker's workspace is reset between chunks, bounding
// the arena to one chunk's scratch.
//
// Identical sentences inside the coalesced batch are classified once:
// production log streams are highly repetitive (a stuck job re-emitting the
// same line, fleets of identical workers), so deduplication converts repeats
// into near-free throughput. Detection is a pure function of the sentence
// text, which makes the fan-back exact, not approximate.
func (w *batchWorker) runBatch(batch []*detectJob, wsDet BatchWSDetector) {
	e := w.e
	started := time.Now()
	live := make([]*detectJob, 0, len(batch))
	total := 0
	for _, j := range batch {
		if j.ctx != nil && j.ctx.Err() != nil {
			// Deadline enforcement at dequeue: a request whose deadline (or
			// caller) died while it sat queued is dropped before compute —
			// the model never runs for a client that has already given up.
			j.err = j.ctx.Err()
			if e.stats != nil && errors.Is(j.err, context.DeadlineExceeded) {
				e.stats.expiredRequest()
			}
			close(j.done) // waiter already gone; unblock any racing reader
			continue
		}
		if mw := e.cfg.MaxQueueWait; mw > 0 && started.Sub(j.enqueued) > mw {
			// Queue-wait budget: the job outstayed its queue allowance, so the
			// answer would arrive too stale to be worth the compute. Shed it
			// with the same 429 contract as admission control.
			j.err = &OverloadedError{RetryAfter: e.retryAfter(len(e.jobs))}
			if e.stats != nil {
				e.stats.shedRequest()
			}
			close(j.done)
			continue
		}
		live = append(live, j)
		total += len(j.sentences)
	}
	all := make([]string, 0, total)
	for _, j := range live {
		all = append(all, j.sentences...)
	}
	// Dedup before inference: uniq holds the distinct sentences in first-seen
	// order, remap[i] is sentence i's index into uniq's results.
	uniq := all
	var remap []int
	if total > 1 {
		seen := make(map[string]int, total)
		uniq = make([]string, 0, total)
		remap = make([]int, total)
		for i, s := range all {
			if u, dup := seen[s]; dup {
				remap[i] = u
				continue
			}
			seen[s] = len(uniq)
			remap[i] = len(uniq)
			uniq = append(uniq, s)
		}
		if len(uniq) == total {
			remap = nil // nothing repeated; skip the fan-out below
		}
	}
	// Cascade pre-filter after dedup: the stage-1 gate scores each unique
	// sentence and short-circuits the confident band to a verdict in place;
	// only the uncertain band (run/runIdx) reaches the transformer, and its
	// results fan back into gated by exact index — order-preserving, like the
	// dedup remap below.
	run := uniq
	var gated []Result
	var runIdx []int
	if g := e.gate.load(); g != nil && len(uniq) > 0 {
		gated = make([]Result, len(uniq))
		run = make([]string, 0, len(uniq))
		runIdx = make([]int, 0, len(uniq))
		for i, s := range uniq {
			score, parsed := g.ScoreSentence(s)
			if parsed {
				switch g.Decide(score) {
				case cascade.ShortNormal:
					gated[i] = Result{Label: 0, Score: g.Prob(score)}
					continue
				case cascade.ShortAbnormal:
					gated[i] = Result{Label: 1, Score: g.Prob(score)}
					continue
				}
			}
			run = append(run, s)
			runIdx = append(runIdx, i)
		}
		if e.stats != nil {
			e.stats.cascadeGated(len(uniq), len(uniq)-len(run))
		}
	}
	results := make([]Result, 0, len(run))
	for lo := 0; lo < len(run); lo += e.cfg.MaxBatch {
		hi := min(lo+e.cfg.MaxBatch, len(run))
		if wsDet != nil {
			w.ws.Reset()
			results = append(results, wsDet.DetectBatchWS(run[lo:hi], w.ws)...)
		} else {
			results = append(results, e.det.DetectBatch(run[lo:hi])...)
		}
	}
	if gated != nil {
		for k, i := range runIdx {
			gated[i] = results[k]
		}
		results = gated
	}
	if e.stats != nil && len(live) > 0 {
		waits := make([]time.Duration, len(live))
		for i, j := range live {
			waits[i] = started.Sub(j.enqueued)
		}
		e.stats.ranBatch(waits, time.Since(started), total-len(uniq))
	}
	if remap != nil {
		expanded := make([]Result, total)
		for i, u := range remap {
			expanded[i] = results[u]
		}
		results = expanded
	}
	off := 0
	for _, j := range live {
		n := len(j.sentences)
		j.results = append(make([]Result, 0, n), results[off:off+n]...)
		off += n
		close(j.done)
	}
}
