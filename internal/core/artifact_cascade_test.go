package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"reflect"
	"strings"
	"testing"
)

// TestArtifactCascadeRoundTrip: a gate saved with its detector comes back
// parameter-identical, scoring and routing bit-exactly, while the detector
// itself stays bitwise equal — and the old gate-blind entry points still
// load the same artifact.
func TestArtifactCascadeRoundTrip(t *testing.T) {
	det, ds := detector(t)
	jobs, verdicts := cascadeTestJobs(128, 8)
	gate := testCascadeGate(t, jobs, verdicts)

	var buf bytes.Buffer
	if err := SaveDetectorWithCascade(&buf, det, gate); err != nil {
		t.Fatal(err)
	}
	loaded, got, err := LoadDetectorWithCascade(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("gate lost in round-trip")
	}
	if !reflect.DeepEqual(got.Params(), gate.Params()) {
		t.Fatal("gate params changed across artifact round-trip")
	}
	for i, j := range jobs {
		ws, gs := gate.ScoreJob(j), got.ScoreJob(j)
		if ws != gs || gate.Decide(ws) != got.Decide(gs) {
			t.Fatalf("job %d scores/routes differently after round-trip (%v vs %v)", i, ws, gs)
		}
	}
	assertDetectorsBitwiseEqual(t, det, loaded, ds)

	// The gate-blind loader reads the same bytes and simply drops the gate.
	blind, err := LoadDetector(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertDetectorsBitwiseEqual(t, det, blind, ds)
}

// TestArtifactNoGateRoundTrip: SaveDetector writes a v3 artifact with an
// empty cascade section, and loading reports no gate rather than inventing
// one.
func TestArtifactNoGateRoundTrip(t *testing.T) {
	det, _ := detector(t)
	var buf bytes.Buffer
	if err := SaveDetector(&buf, det); err != nil {
		t.Fatal(err)
	}
	_, gate, err := LoadDetectorWithCascade(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gate != nil {
		t.Fatalf("gate-free artifact loaded a gate: %+v", gate.Params())
	}
}

// TestArtifactFileCascadeRoundTrip exercises the atomic file path with an
// embedded gate — the anomalyd -train-out -cascade → -load handoff.
func TestArtifactFileCascadeRoundTrip(t *testing.T) {
	det, ds := detector(t)
	jobs, verdicts := cascadeTestJobs(64, 8)
	gate := testCascadeGate(t, jobs, verdicts)

	path := t.TempDir() + "/det.wfda"
	if err := SaveDetectorFileWithCascade(path, det, gate); err != nil {
		t.Fatal(err)
	}
	loaded, got, err := LoadDetectorFileWithCascade(path)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || !reflect.DeepEqual(got.Params(), gate.Params()) {
		t.Fatal("gate did not survive the file round-trip")
	}
	assertDetectorsBitwiseEqual(t, det, loaded, ds)
}

// reencodeArtifact rewrites a v3 fp32 artifact at an older format version:
// v2 drops the cascade section, v1 additionally drops the precision section,
// and the checksum trailer is recomputed. mutateGate, when non-nil, replaces
// the cascade section payload (version 3 only) — for corrupt-gate tests that
// must get past the CRC.
func reencodeArtifact(t *testing.T, art []byte, version uint32, mutateGate func([]byte) []byte) []byte {
	t.Helper()
	r := bytes.NewReader(art)
	var magic, ver uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		t.Fatal(err)
	}
	if err := binary.Read(r, binary.LittleEndian, &ver); err != nil {
		t.Fatal(err)
	}
	if ver != ArtifactVersion {
		t.Fatalf("fixture artifact is v%d, want v%d", ver, ArtifactVersion)
	}
	readSec := func() []byte {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			t.Fatal(err)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			t.Fatal(err)
		}
		return b
	}
	approach := readSec()
	precision := readSec()
	if string(precision) != string(PrecisionFP32) {
		t.Fatalf("reencodeArtifact only handles fp32 fixtures, got %q", precision)
	}
	body := [][]byte{readSec(), readSec(), readSec()} // config, tokenizer, meta
	weights := readSec()
	gate := readSec()
	if mutateGate != nil {
		gate = mutateGate(gate)
	}

	var out bytes.Buffer
	h := crc32.NewIEEE()
	mw := io.MultiWriter(&out, h)
	for _, v := range []uint32{magic, version} {
		if err := binary.Write(mw, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	write := func(sec []byte) {
		if err := writeSection(mw, sec); err != nil {
			t.Fatal(err)
		}
	}
	write(approach)
	if version >= 2 {
		write(precision)
	}
	for _, sec := range body {
		write(sec)
	}
	write(weights)
	if version >= 3 {
		write(gate)
	}
	if err := binary.Write(&out, binary.LittleEndian, h.Sum32()); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestArtifactBackCompat: v1 (fp32-only) and v2 (no cascade section)
// artifacts still load on this build, detector intact and gate absent.
func TestArtifactBackCompat(t *testing.T) {
	det, ds := detector(t)
	jobs, verdicts := cascadeTestJobs(64, 8)
	gate := testCascadeGate(t, jobs, verdicts)
	var buf bytes.Buffer
	// Save WITH a gate: the downgrade drops the section, proving old layouts
	// are read by structure, not by luck of an empty trailer.
	if err := SaveDetectorWithCascade(&buf, det, gate); err != nil {
		t.Fatal(err)
	}
	for _, version := range []uint32{1, 2} {
		old := reencodeArtifact(t, buf.Bytes(), version, nil)
		loaded, g, err := LoadDetectorWithCascade(bytes.NewReader(old))
		if err != nil {
			t.Fatalf("v%d artifact failed to load: %v", version, err)
		}
		if g != nil {
			t.Fatalf("v%d artifact produced a gate", version)
		}
		assertDetectorsBitwiseEqual(t, det, loaded, ds)
	}
}

// TestArtifactCorruptGateFailsLoad: a present-but-invalid gate section must
// fail the whole load loudly, not serve the detector with a broken stage 1.
func TestArtifactCorruptGateFailsLoad(t *testing.T) {
	det, _ := detector(t)
	jobs, verdicts := cascadeTestJobs(64, 8)
	gate := testCascadeGate(t, jobs, verdicts)
	var buf bytes.Buffer
	if err := SaveDetectorWithCascade(&buf, det, gate); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want string
	}{
		{"truncated JSON", func([]byte) []byte { return []byte("{") }, "decoding cascade gate"},
		{"invalid params", func([]byte) []byte {
			return []byte(`{"scorer":"pca","low":0,"high":0,"scale":0,"target_recall":0.995}`)
		}, "rebuilding cascade gate"},
	}
	for _, tc := range cases {
		bad := reencodeArtifact(t, buf.Bytes(), ArtifactVersion, tc.mut)
		_, _, err := LoadDetectorWithCascade(bytes.NewReader(bad))
		if err == nil {
			t.Errorf("%s: corrupt gate loaded silently", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the gate (want %q)", tc.name, err, tc.want)
		}
	}
}
