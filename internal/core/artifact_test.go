package core

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/flowbench"
	"repro/internal/logparse"
)

// iclOnce shares one small trained ICL detector across artifact tests: it
// exercises the full save path complexity (quantized base weights, LoRA
// structure, few-shot examples + prompt cache).
var (
	iclOnce sync.Once
	iclDet  Detector
)

func iclDetectorForTest(t *testing.T) Detector {
	t.Helper()
	iclOnce.Do(func() {
		det, _, err := Train(Options{
			Approach: ICL, Model: "gpt2",
			TrainSize: 200, PretrainSteps: 100, Shots: 3, LoRASteps: 40, Seed: 9,
		})
		if err != nil {
			panic(err)
		}
		iclDet = det
	})
	return iclDet
}

// fixtureSentences returns a deterministic slab of feature sentences.
func fixtureSentences(ds *flowbench.Dataset, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = logparse.Sentence(ds.Test[i%len(ds.Test)])
	}
	return out
}

// assertDetectorsBitwiseEqual checks that two detectors produce *identical*
// (not merely close) results on sentences, and identical trace verdicts on a
// fixture job log — the artifact round-trip contract.
func assertDetectorsBitwiseEqual(t *testing.T, want, got Detector, ds *flowbench.Dataset) {
	t.Helper()
	sentences := fixtureSentences(ds, 32)
	wr := want.DetectBatch(sentences)
	gr := got.DetectBatch(sentences)
	if len(wr) != len(gr) {
		t.Fatalf("batch sizes differ: %d vs %d", len(wr), len(gr))
	}
	for i := range wr {
		if wr[i] != gr[i] {
			t.Fatalf("sentence %d: loaded detector returned %+v, trained returned %+v (not bitwise identical)", i, gr[i], wr[i])
		}
	}
	if w, g := want.DetectSentence(sentences[0]), got.DetectSentence(sentences[0]); w != g {
		t.Fatalf("DetectSentence differs: %+v vs %+v", g, w)
	}
	jobs := ds.Test[:80]
	wv := DetectTraces(want, jobs, DefaultTracePolicy())
	gv := DetectTraces(got, jobs, DefaultTracePolicy())
	if len(wv) != len(gv) {
		t.Fatalf("verdict counts differ: %d vs %d", len(wv), len(gv))
	}
	for i := range wv {
		if wv[i] != gv[i] {
			t.Fatalf("trace %d: loaded verdict %+v, trained verdict %+v", i, gv[i], wv[i])
		}
	}
}

func TestArtifactRoundTripSFT(t *testing.T) {
	det, ds := detector(t)
	var buf bytes.Buffer
	if err := SaveDetector(&buf, det); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetector(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Approach() != SFT {
		t.Fatalf("approach = %q", loaded.Approach())
	}
	assertDetectorsBitwiseEqual(t, det, loaded, ds)
}

func TestArtifactRoundTripICL(t *testing.T) {
	det := iclDetectorForTest(t)
	_, ds := detector(t)
	var buf bytes.Buffer
	if err := SaveDetector(&buf, det); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetector(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Approach() != ICL {
		t.Fatalf("approach = %q", loaded.Approach())
	}
	assertDetectorsBitwiseEqual(t, det, loaded, ds)
}

// TestArtifactSecondGeneration loads an artifact, re-saves the loaded
// detector, and loads again: the format must be stable under save→load→save.
func TestArtifactSecondGeneration(t *testing.T) {
	det, ds := detector(t)
	var gen1 bytes.Buffer
	if err := SaveDetector(&gen1, det); err != nil {
		t.Fatal(err)
	}
	loaded1, err := LoadDetector(bytes.NewReader(gen1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var gen2 bytes.Buffer
	if err := SaveDetector(&gen2, loaded1); err != nil {
		t.Fatal(err)
	}
	loaded2, err := LoadDetector(bytes.NewReader(gen2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertDetectorsBitwiseEqual(t, det, loaded2, ds)
}

func TestArtifactFileRoundTrip(t *testing.T) {
	det, ds := detector(t)
	path := filepath.Join(t.TempDir(), "det.artifact")
	if err := SaveDetectorFile(path, det); err != nil {
		t.Fatal(err)
	}
	// Atomic write: no temp litter next to the artifact.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("artifact dir has %d entries, want 1 (temp file leaked?)", len(entries))
	}
	loaded, err := LoadDetectorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertDetectorsBitwiseEqual(t, det, loaded, ds)
}

func TestArtifactRejectsCorruption(t *testing.T) {
	det, _ := detector(t)
	var buf bytes.Buffer
	if err := SaveDetector(&buf, det); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr string
	}{
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xFF
			return c
		}, "not a detector artifact"},
		{"future version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[4] = 99
			return c
		}, "artifact format v99"},
		{"flipped payload byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x01
			return c
		}, ""}, // checksum or a section-level validation error; either is loud
		{"truncated", func(b []byte) []byte {
			return b[:len(b)*2/3]
		}, "truncated"},
		{"empty", func(b []byte) []byte { return nil }, "magic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadDetector(bytes.NewReader(tc.mutate(good)))
			if err == nil {
				t.Fatalf("%s: expected load error", tc.name)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("%s: error = %v, want substring %q", tc.name, err, tc.wantErr)
			}
		})
	}
}

func TestSaveDetectorRejectsForeignImplementations(t *testing.T) {
	var buf bytes.Buffer
	err := SaveDetector(&buf, markDetector{})
	if err == nil || !strings.Contains(err.Error(), "cannot save") {
		t.Fatalf("err = %v", err)
	}
}

// TestArtifactServesWithZeroTraining is the acceptance path of anomalyd
// -load: a detector loaded from an artifact answers its first HTTP request
// with no training step at boot.
func TestArtifactServesWithZeroTraining(t *testing.T) {
	det, ds := detector(t)
	var buf bytes.Buffer
	if err := SaveDetector(&buf, det); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetector(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(loaded)
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()
	body, _ := json.Marshal(DetectRequest{Sentence: logparse.Sentence(ds.Test[0])})
	resp, err := http.Post(srv.URL+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out DetectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if want := det.DetectSentence(logparse.Sentence(ds.Test[0])); out.Label != want.Label {
		t.Fatalf("served label %d, trained label %d", out.Label, want.Label)
	}
}
