package core

import (
	"net/http"

	"repro/internal/metrics"
)

// handleMetrics is GET /metrics: the Prometheus text exposition of every
// served model's EngineStats — the same numbers GET /v1/models reports as
// JSON, rendered for scrapers. This is the observability half of the
// replicated-serving story: the gateway's health checker watches /readyz for
// the routing decision, while /metrics is how saturation (queue depth, batch
// occupancy, stage p50/p99, shed/expired/degraded/cascade counters) becomes
// visible to humans and dashboards across a fleet of replicas.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var p metrics.PromWriter
	if s.instance != "" {
		p.Gauge("repro_instance_info", "replica identity; the instance label carries anomalyd -instance", 1, "instance", s.instance)
	}
	readiness, ready := s.reg.Readiness()
	p.Gauge("repro_ready", "1 when every model is ready (the /readyz verdict)", boolGauge(ready))
	for _, mr := range readiness {
		p.Gauge("repro_model_saturation", "queue depth over admission capacity, per model", mr.Saturation, "model", mr.Name)
	}
	for _, info := range s.reg.Info() {
		m := info.Name
		st := info.Stats
		p.Gauge("repro_queue_len", "jobs queued right now", float64(st.QueueLen), "model", m)
		p.Gauge("repro_queue_cap", "coalescing queue capacity", float64(info.QueueDepth), "model", m)
		p.Gauge("repro_shed_queue_depth", "admission-control budget (0: shedding disabled)", float64(info.ShedQueueDepth), "model", m)
		p.Gauge("repro_max_queue_len", "deepest queue since the last stats reset", float64(st.MaxQueueLen), "model", m)
		p.Gauge("repro_active_traces", "traces tracked by the online monitor", float64(info.ActiveTraces), "model", m)
		p.Counter("repro_requests_total", "accepted detect jobs", float64(st.Requests), "model", m)
		p.Counter("repro_sentences_total", "sentences across accepted jobs", float64(st.Sentences), "model", m)
		p.Counter("repro_batches_total", "coalesced batches executed", float64(st.Batches), "model", m)
		p.Counter("repro_dedup_saved_total", "sentences answered by the dedup layer without a model invocation", float64(st.DedupSaved), "model", m)
		p.Counter("repro_shed_total", "requests refused by admission control or the queue-wait budget (429)", float64(st.Shed), "model", m)
		p.Counter("repro_expired_total", "requests whose deadline passed while queued (504)", float64(st.Expired), "model", m)
		p.Counter("repro_degraded_total", "sentences answered by the brownout fallback tier", float64(st.Degraded), "model", m)
		p.Gauge("repro_brownout_active", "1 while the brownout tier is engaged", boolGauge(st.BrownoutActive), "model", m)
		p.Counter("repro_cascade_evaluated_total", "unique sentences the stage-1 gate scored", float64(st.CascadeEvaluated), "model", m)
		p.Counter("repro_cascade_short_circuited_total", "sentences the gate answered without the transformer", float64(st.CascadeShort), "model", m)
		p.Counter("repro_cascade_passed_total", "sentences that passed the gate to the transformer", float64(st.CascadePassed), "model", m)
		p.Gauge("repro_batch_occupancy", "mean sentences per executed batch", st.BatchOccupancy, "model", m)
		p.Gauge("repro_stage_latency_ms", "server-side stage latency percentiles over the recent sample window",
			st.QueueWaitP50Ms, "model", m, "stage", "queue_wait", "quantile", "0.5")
		p.Gauge("repro_stage_latency_ms", "server-side stage latency percentiles over the recent sample window",
			st.QueueWaitP99Ms, "model", m, "stage", "queue_wait", "quantile", "0.99")
		p.Gauge("repro_stage_latency_ms", "server-side stage latency percentiles over the recent sample window",
			st.ComputeP50Ms, "model", m, "stage", "compute", "quantile", "0.5")
		p.Gauge("repro_stage_latency_ms", "server-side stage latency percentiles over the recent sample window",
			st.ComputeP99Ms, "model", m, "stage", "compute", "quantile", "0.99")
	}
	sse := s.bus.stats()
	p.Gauge("repro_sse_subscribers", "open /v1/alerts connections", float64(sse.Subscribers))
	p.Counter("repro_sse_dropped_total", "alert events dropped to slow SSE subscribers", float64(sse.Dropped))
	w.Header().Set("Content-Type", metrics.ContentType)
	w.Write(p.Bytes())
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
