package core

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEngineStatsCounters drives requests through a registry and checks the
// serving counters: request/sentence totals, batch accounting, dedup
// savings, and non-negative stage latencies.
func TestEngineStatsCounters(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("m", hashDetector{}, BatchConfig{MaxBatch: 8, FlushDelay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	var wg sync.WaitGroup
	const requests, perReq = 16, 4
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sentences := make([]string, perReq)
			for k := range sentences {
				// Half the sentences repeat across requests so the dedup
				// layer has work to account for.
				sentences[k] = fmt.Sprintf("sentence %d", (i*perReq+k)%(requests*perReq/2))
			}
			eng, err := reg.route("m")
			if err != nil {
				t.Error(err)
				return
			}
			if _, _, err := eng.DetectContext(context.Background(), sentences); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	st, err := reg.Stats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != requests {
		t.Fatalf("requests = %d, want %d", st.Requests, requests)
	}
	if st.Sentences != requests*perReq {
		t.Fatalf("sentences = %d, want %d", st.Sentences, requests*perReq)
	}
	if st.Batches == 0 {
		t.Fatal("no batches recorded")
	}
	if st.BatchOccupancy <= 0 {
		t.Fatalf("batch occupancy = %v, want > 0", st.BatchOccupancy)
	}
	if st.QueueWaitP99Ms < st.QueueWaitP50Ms || st.ComputeP99Ms < st.ComputeP50Ms {
		t.Fatalf("p99 below p50: %+v", st)
	}
	if st.QueueLen != 0 {
		t.Fatalf("queue_len = %d after drain, want 0", st.QueueLen)
	}

	// Reset zeroes everything.
	if err := reg.ResetStats("m"); err != nil {
		t.Fatal(err)
	}
	st, err = reg.Stats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 0 || st.Sentences != 0 || st.Batches != 0 || st.MaxQueueLen != 0 || st.QueueWaitP99Ms != 0 {
		t.Fatalf("stats not zeroed by reset: %+v", st)
	}
}

// TestEngineStatsSurviveSwap pins that stats, like the trace tracker, belong
// to the registry slot: a hot-swap must not lose the counters.
func TestEngineStatsSurviveSwap(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("m", hashDetector{}, BatchConfig{MaxBatch: 4}); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	eng, _ := reg.route("m")
	if _, _, err := eng.DetectContext(context.Background(), []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Swap("m", hashDetector{}); err != nil {
		t.Fatal(err)
	}
	st, err := reg.Stats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.Sentences != 2 {
		t.Fatalf("stats lost across swap: %+v", st)
	}
}

// TestStatsOverHTTP checks the /v1/models stats snapshot and the
// /v1/stats/reset endpoint end to end.
func TestStatsOverHTTP(t *testing.T) {
	srv := NewServerWith(hashDetector{}, BatchConfig{MaxBatch: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := `{"sentences": ["x is 1.0", "x is 2.0", "x is 1.0"]}`
	resp, err := ts.Client().Post(ts.URL+"/v1/detect/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d", resp.StatusCode)
	}

	get := func() ModelInfo {
		resp, err := ts.Client().Get(ts.URL + "/v1/models")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var mr ModelsResponse
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
		if len(mr.Models) != 1 {
			t.Fatalf("models = %d, want 1", len(mr.Models))
		}
		return mr.Models[0]
	}
	info := get()
	if info.Stats.Requests != 1 || info.Stats.Sentences != 3 {
		t.Fatalf("stats over HTTP: %+v", info.Stats)
	}
	if info.Stats.DedupSaved != 1 {
		t.Fatalf("dedup_saved = %d, want 1 (one repeated sentence)", info.Stats.DedupSaved)
	}

	resp, err = ts.Client().Post(ts.URL+"/v1/stats/reset", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Fatalf("reset status %d, want 204", resp.StatusCode)
	}
	if info = get(); info.Stats.Requests != 0 {
		t.Fatalf("stats not reset over HTTP: %+v", info.Stats)
	}

	// Unknown model on reset is a 404.
	resp, err = ts.Client().Post(ts.URL+"/v1/stats/reset?model=nope", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("reset unknown model status %d, want 404", resp.StatusCode)
	}
}

// TestTracePolicyFlaggedExported pins the exported policy decision against
// the monitor's internal one.
func TestTracePolicyFlaggedExported(t *testing.T) {
	p := DefaultTracePolicy()
	cases := []struct {
		jobs, anom int
		want       bool
	}{
		{100, 0, false},
		{100, 4, false},
		{100, 5, true}, // MinAnomalous
		{20, 2, true},  // MinFraction (10%)
		{20, 1, false}, // 5% < 10%
		{0, 0, false},  // empty trace never flags
		{3, 3, true},   // 100%
	}
	for _, c := range cases {
		if got := p.Flagged(c.jobs, c.anom); got != c.want {
			t.Errorf("Flagged(%d, %d) = %v, want %v", c.jobs, c.anom, got, c.want)
		}
		if got := p.flagged(TraceVerdict{Jobs: c.jobs, Anomalous: c.anom}); got != c.want {
			t.Errorf("exported/unexported disagree at (%d, %d)", c.jobs, c.anom)
		}
	}
}
