package core

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/flowbench"
	"repro/internal/logparse"
)

// trainedOnce shares one small SFT detector across tests (training is the
// slow part).
var (
	once    sync.Once
	testDet Detector
	testDS  *flowbench.Dataset
)

// testArtifactPath caches the trained test detector as an artifact between
// test runs. The cache is honored only when REPRO_DETECTOR_CACHE is set: CI
// sets it and caches this directory keyed on the hash of internal/ sources
// (any code change invalidates the key and retrains), so registry and server
// tests load in milliseconds instead of retraining per run. Local runs
// always retrain — an unkeyed local cache would silently pin tests to
// weights trained by pre-change code.
const testArtifactPath = "testdata/cache/sft-distilbert-tiny.artifact"

func detector(t *testing.T) (Detector, *flowbench.Dataset) {
	t.Helper()
	once.Do(func() {
		testDS = flowbench.Generate(flowbench.Genome, 9).Subsample(100, 50, 200, 10)
		useCache := os.Getenv("REPRO_DETECTOR_CACHE") != ""
		if useCache {
			if det, err := LoadDetectorFile(testArtifactPath); err == nil {
				testDet = det
				return
			}
		}
		det, report, err := Train(Options{
			Approach: SFT, Model: "distilbert-base-uncased",
			TrainSize: 400, PretrainSteps: 120, Epochs: 2, Seed: 9,
		})
		if err != nil {
			panic(err)
		}
		if report.Test.Accuracy() < 0.6 {
			panic("test detector too weak")
		}
		testDet = det
		// Best-effort cache write: detection through a loaded artifact is
		// bitwise identical to the trained detector, so later cached runs
		// start from the file.
		if useCache {
			if err := os.MkdirAll(filepath.Dir(testArtifactPath), 0o755); err == nil {
				_ = SaveDetectorFile(testArtifactPath, det)
			}
		}
	})
	return testDet, testDS
}

func TestOptionsValidation(t *testing.T) {
	cases := []Options{
		{Approach: "banana"},
		{Model: "no-such-model"},
		{Approach: SFT, Model: "gpt2"},              // decoder under SFT
		{Approach: ICL, Model: "bert-base-uncased"}, // encoder under ICL
	}
	for i, o := range cases {
		if _, _, err := Train(o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestTrainSFTEndToEnd(t *testing.T) {
	det, ds := detector(t)
	if det.Approach() != SFT {
		t.Fatal("approach mismatch")
	}
	res := det.DetectJob(ds.Test[0])
	if res.Label != 0 && res.Label != 1 {
		t.Fatalf("label = %d", res.Label)
	}
	if res.Score < 0 || res.Score > 1 {
		t.Fatalf("score = %v", res.Score)
	}
	if !strings.HasPrefix(res.String(), "label: LABEL_") {
		t.Fatalf("result string = %q", res.String())
	}
}

func TestTrainICLEndToEnd(t *testing.T) {
	det, report, err := Train(Options{
		Approach: ICL, Model: "gpt2",
		TrainSize: 200, PretrainSteps: 100, Shots: 3, LoRASteps: 40, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if det.Approach() != ICL {
		t.Fatal("approach mismatch")
	}
	if report.Params == 0 || report.VocabSize == 0 {
		t.Fatalf("report = %+v", report)
	}
	res := det.DetectSentence("runtime is 50.0")
	if res.Label != 0 && res.Label != 1 {
		t.Fatalf("label = %d", res.Label)
	}
}

func TestDetectTraces(t *testing.T) {
	det, ds := detector(t)
	verdicts := DetectTraces(det, ds.Test, DefaultTracePolicy())
	if len(verdicts) == 0 {
		t.Fatal("no verdicts")
	}
	total := 0
	for _, v := range verdicts {
		total += v.Jobs
		if v.Anomalous > v.Jobs {
			t.Fatalf("verdict %+v inconsistent", v)
		}
		wantFlag := v.Anomalous >= 5 || v.Fraction() >= 0.10
		if v.Flagged != wantFlag {
			t.Fatalf("policy misapplied: %+v", v)
		}
	}
	if total != len(ds.Test) {
		t.Fatalf("verdicts cover %d jobs, want %d", total, len(ds.Test))
	}
}

func TestMonitorStream(t *testing.T) {
	det, ds := detector(t)
	var buf bytes.Buffer
	for _, j := range ds.Test[:40] {
		buf.WriteString(logparse.LogLine(j))
		buf.WriteByte('\n')
	}
	buf.WriteString("\n") // blank lines are skipped
	var alerts []Alert
	report, err := Monitor(det, &buf, func(a Alert) { alerts = append(alerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	if report.Processed != 40 {
		t.Fatalf("processed %d, want 40", report.Processed)
	}
	if report.Alerts != len(alerts) {
		t.Fatalf("alert count mismatch: %d vs %d", report.Alerts, len(alerts))
	}
	if report.Malformed != 0 {
		t.Fatalf("malformed = %d, want 0", report.Malformed)
	}
	for _, a := range alerts {
		if !a.Result.Abnormal() {
			t.Fatal("alert for normal result")
		}
	}
}

func TestMonitorParseError(t *testing.T) {
	det, _ := detector(t)
	r := strings.NewReader("not_a_log_line\n")
	_, err := MonitorWith(context.Background(), det, r, MonitorConfig{Strict: true})
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("err = %v", err)
	}
}

func TestServerDetect(t *testing.T) {
	det, ds := detector(t)
	srv := httptest.NewServer(NewServer(det))
	defer srv.Close()

	body, _ := json.Marshal(DetectRequest{Sentence: logparse.Sentence(ds.Test[0])})
	resp, err := http.Post(srv.URL+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out DetectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Category != "normal" && out.Category != "abnormal" {
		t.Fatalf("category = %q", out.Category)
	}
}

func TestServerDetectLogLine(t *testing.T) {
	det, ds := detector(t)
	srv := httptest.NewServer(NewServer(det))
	defer srv.Close()
	body, _ := json.Marshal(DetectRequest{LogLine: logparse.LogLine(ds.Test[1])})
	resp, err := http.Post(srv.URL+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestServerBatch(t *testing.T) {
	det, ds := detector(t)
	srv := httptest.NewServer(NewServer(det))
	defer srv.Close()
	req := BatchRequest{Sentences: []string{
		logparse.Sentence(ds.Test[0]),
		logparse.Sentence(ds.Test[1]),
	}}
	body, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+"/v1/detect/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("results = %d", len(out.Results))
	}
}

func TestServerErrors(t *testing.T) {
	det, _ := detector(t)
	srv := httptest.NewServer(NewServer(det))
	defer srv.Close()

	// GET on detect: method not allowed.
	resp, _ := http.Get(srv.URL + "/v1/detect")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Both fields set: bad request.
	body, _ := json.Marshal(DetectRequest{Sentence: "a", LogLine: "wf=x"})
	resp, _ = http.Post(srv.URL+"/v1/detect", "application/json", bytes.NewReader(body))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("both-fields status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Neither field set.
	resp, _ = http.Post(srv.URL+"/v1/detect", "application/json", strings.NewReader("{}"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed JSON.
	resp, _ = http.Post(srv.URL+"/v1/detect", "application/json", strings.NewReader("{"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-json status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Bad log line.
	body, _ = json.Marshal(DetectRequest{LogLine: "label=banana"})
	resp, _ = http.Post(srv.URL+"/v1/detect", "application/json", bytes.NewReader(body))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-logline status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Health endpoint.
	resp, _ = http.Get(srv.URL + "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}
