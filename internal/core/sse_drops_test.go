package core

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestAlertBusCountsDrops pins the slow-subscriber contract: publish never
// blocks, events past a full 64-slot buffer are dropped, and both the
// per-subscriber and total drop counters account for every loss.
func TestAlertBusCountsDrops(t *testing.T) {
	b := newAlertBus()
	slow := b.subscribe() // never drained
	fast := b.subscribe() // drained between publishes: loses nothing
	const published = 100
	received := 0
	for i := 0; i < published; i++ {
		b.publish("alert", AlertEvent{Model: "m", Trace: i})
		for len(fast.ch) > 0 {
			<-fast.ch
			received++
		}
	}
	if received != published {
		t.Fatalf("fast subscriber received %d of %d", received, published)
	}

	st := b.stats()
	if st.Subscribers != 2 {
		t.Fatalf("subscribers = %d, want 2", st.Subscribers)
	}
	wantDropped := int64(published - cap(slow.ch))
	if st.Dropped != wantDropped {
		t.Fatalf("dropped_total = %d, want %d", st.Dropped, wantDropped)
	}
	var slowRow, fastRow *SSESubscriberStats
	for i := range st.PerSubscriber {
		switch st.PerSubscriber[i].ID {
		case slow.id:
			slowRow = &st.PerSubscriber[i]
		case fast.id:
			fastRow = &st.PerSubscriber[i]
		}
	}
	if slowRow == nil || fastRow == nil {
		t.Fatalf("missing per-subscriber rows: %+v", st.PerSubscriber)
	}
	if slowRow.Dropped != wantDropped || slowRow.Pending != cap(slow.ch) {
		t.Fatalf("slow subscriber row = %+v, want %d dropped with a full buffer", slowRow, wantDropped)
	}
	if fastRow.Dropped != 0 {
		t.Fatalf("fast subscriber dropped %d events", fastRow.Dropped)
	}

	// The total survives the slow subscriber leaving; its row does not.
	b.unsubscribe(slow)
	st = b.stats()
	if st.Dropped != wantDropped || st.Subscribers != 1 {
		t.Fatalf("stats after unsubscribe = %+v", st)
	}
	b.unsubscribe(fast)
}

// TestModelsExposesSSEStats checks the /v1/models surface: subscriber count
// and drop totals ride along with the model rows, under the JSON field names
// the docs promise.
func TestModelsExposesSSEStats(t *testing.T) {
	srv := NewServerWith(hashDetector{}, BatchConfig{MaxBatch: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sub := srv.bus.subscribe() // a subscriber that never reads
	defer srv.bus.unsubscribe(sub)
	for i := 0; i < 70; i++ {
		srv.bus.publish("alert", AlertEvent{Model: "default", Trace: i})
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"sse"`, `"dropped_total"`, `"per_subscriber"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("models JSON missing %s: %s", want, raw)
		}
	}
	var mr ModelsResponse
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.SSE.Subscribers != 1 {
		t.Fatalf("sse subscribers = %d, want 1", mr.SSE.Subscribers)
	}
	if mr.SSE.Dropped != int64(70-cap(sub.ch)) {
		t.Fatalf("sse dropped_total = %d, want %d", mr.SSE.Dropped, 70-cap(sub.ch))
	}
	if len(mr.SSE.PerSubscriber) != 1 || mr.SSE.PerSubscriber[0].Dropped != mr.SSE.Dropped {
		t.Fatalf("per-subscriber rows = %+v", mr.SSE.PerSubscriber)
	}
}
