package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cascade"
)

// DefaultModel is the name under which single-model constructors
// (NewServer/NewServerWith) register their detector, and the model requests
// without a ?model= parameter route to when no explicit default is set.
const DefaultModel = "default"

// ErrUnknownModel is returned (wrapped with the requested name) when routing
// names a model the registry does not hold.
var ErrUnknownModel = errors.New("core: unknown model")

// servedModel is one registry slot: a named engine plus the serving state
// that belongs to the slot rather than the weights — the per-model trace
// tracker and batching configuration survive a hot-swap, so an operator can
// replace a detector's weights without losing online trace verdicts.
type servedModel struct {
	name     string
	cfg      BatchConfig
	eng      *engine
	tracker  *TraceTracker
	stats    *statsRecorder
	fallback *fallbackSlot
	gate     *cascadeSlot
}

// Registry holds named detectors, each served by its own coalescing queue and
// worker pool (engine). It is the multi-model core of the server: the HTTP
// layer resolves ?model= names here, and Swap atomically replaces a model's
// detector — draining the old engine's in-flight work before releasing it —
// without dropping requests or leaking workers.
//
// All methods are safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*servedModel
	def    string
	closed bool
}

// NewRegistry returns an empty registry. Add at least one model before
// serving.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*servedModel)}
}

// Add registers det under name with its own engine and trace tracker. The
// first model added becomes the default route. Adding an existing name or an
// empty name is an error; use Swap to replace a model's detector.
func (r *Registry) Add(name string, det Detector, cfg BatchConfig) error {
	if name == "" {
		return errors.New("core: model name must not be empty")
	}
	if det == nil {
		return fmt.Errorf("core: model %q: nil detector", name)
	}
	cfg.fill()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrServerClosed
	}
	if _, dup := r.models[name]; dup {
		return fmt.Errorf("core: model %q already registered", name)
	}
	stats := &statsRecorder{}
	fb := &fallbackSlot{}
	gate := &cascadeSlot{}
	r.models[name] = &servedModel{
		name:     name,
		cfg:      cfg,
		eng:      newEngine(det, cfg, stats, fb, gate),
		tracker:  NewTraceTracker(cfg.Policy, cfg.MaxTraces),
		stats:    stats,
		fallback: fb,
		gate:     gate,
	}
	if r.def == "" {
		r.def = name
	}
	return nil
}

// Swap atomically replaces name's detector with det: a new engine (with the
// slot's batching configuration) starts first, the slot flips to it, and only
// then is the old engine closed — which drains its queued and in-flight work
// before releasing the workers. Requests that raced the flip and enqueued on
// the old engine complete there; requests that arrive after it closed retry
// against the registry and land on the new engine, so no request is dropped.
// Swap returns once the old model is fully drained. The slot's trace tracker
// is retained: online trace verdicts span the swap.
func (r *Registry) Swap(name string, det Detector) error {
	if det == nil {
		return fmt.Errorf("core: model %q: nil detector", name)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrServerClosed
	}
	m, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w %q", ErrUnknownModel, name)
	}
	old := m.eng
	m.eng = newEngine(det, m.cfg, m.stats, m.fallback, m.gate)
	r.mu.Unlock()
	old.Close() // outside the lock: draining must not block other routes
	return nil
}

// Remove unregisters name, draining its engine before returning. Removing
// the default model promotes the lexicographically first remaining model to
// default (if any). Unknown names are an error.
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrServerClosed
	}
	m, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w %q", ErrUnknownModel, name)
	}
	delete(r.models, name)
	if r.def == name {
		r.def = ""
		names := make([]string, 0, len(r.models))
		for n := range r.models {
			names = append(names, n)
		}
		sort.Strings(names)
		if len(names) > 0 {
			r.def = names[0]
		}
	}
	r.mu.Unlock()
	m.eng.Close()
	return nil
}

// SetFallback installs (or, with nil, removes) the brownout fallback detector
// for name ("" = default model). The fallback lives on the registry slot like
// the trace tracker, so it takes effect immediately, survives hot-swaps, and
// engages only when the slot's BrownoutDepth watermark is configured and the
// queue stays saturated past BrownoutHold.
func (r *Registry) SetFallback(name string, det Detector) error {
	r.mu.RLock()
	m, err := r.lookupLocked(name)
	r.mu.RUnlock()
	if err != nil {
		return err
	}
	m.fallback.store(det)
	return nil
}

// SetCascade installs (or, with nil, removes) the calibrated stage-1 cascade
// gate for name ("" = default model). Like the fallback, the gate lives on
// the registry slot: it takes effect on the next coalesced batch, survives
// hot-swaps, and its counters reset with the slot's stats. Unlike the
// brownout fallback — which replaces the transformer wholesale under
// sustained saturation — the cascade is always on, short-circuiting only the
// confidently-normal band while everything uncertain still reaches the
// transformer.
func (r *Registry) SetCascade(name string, g *cascade.Gate) error {
	r.mu.RLock()
	m, err := r.lookupLocked(name)
	r.mu.RUnlock()
	if err != nil {
		return err
	}
	m.gate.store(g)
	return nil
}

// Cascade returns the stage-1 gate currently installed for name
// ("" = default model), nil when the cascade is off.
func (r *Registry) Cascade(name string) (*cascade.Gate, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, err := r.lookupLocked(name)
	if err != nil {
		return nil, err
	}
	return m.gate.load(), nil
}

// SetDefault changes which model unnamed requests route to.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrServerClosed
	}
	if _, ok := r.models[name]; !ok {
		return fmt.Errorf("%w %q", ErrUnknownModel, name)
	}
	r.def = name
	return nil
}

// Default returns the name of the default model ("" when empty).
func (r *Registry) Default() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.def
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.models))
	for n := range r.models {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}

// Detector returns the detector currently serving name ("" resolves to the
// default model). The returned detector may be swapped out at any moment;
// use Server/engine routing for request traffic.
func (r *Registry) Detector(name string) (Detector, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, err := r.lookupLocked(name)
	if err != nil {
		return nil, err
	}
	return m.eng.det, nil
}

// ModelInfo describes one registered model, as reported by GET /v1/models.
type ModelInfo struct {
	Name         string    `json:"name"`
	Approach     Approach  `json:"approach"`
	Precision    Precision `json:"precision"`
	Default      bool      `json:"default"`
	MaxBatch     int       `json:"max_batch"`
	Workers      int       `json:"workers"`
	MaxRequest   int       `json:"max_request"`
	ActiveTraces int       `json:"active_traces"`
	// QueueDepth is the engine's queue capacity; ShedQueueDepth the admission
	// budget (0: shedding disabled). Together with Stats.QueueLen they give
	// probes and the future gateway a per-model saturation fraction.
	QueueDepth     int  `json:"queue_depth"`
	ShedQueueDepth int  `json:"shed_queue_depth,omitempty"`
	HasFallback    bool `json:"has_fallback,omitempty"`
	// HasCascade reports whether a stage-1 gate is installed;
	// CascadeScorer names its cheap scorer ("ngram", "pca", "iforest").
	HasCascade    bool   `json:"has_cascade,omitempty"`
	CascadeScorer string `json:"cascade_scorer,omitempty"`
	// Stats is the slot's serving-counter snapshot: queue depth and
	// saturation, coalescing effectiveness, and the queue-wait/compute stage
	// latency percentiles the load lab records per scenario.
	Stats EngineStats `json:"stats"`
}

// Info returns a snapshot of every registered model, sorted by name.
func (r *Registry) Info() []ModelInfo {
	r.mu.RLock()
	out := make([]ModelInfo, 0, len(r.models))
	for _, m := range r.models {
		info := ModelInfo{
			Name:           m.name,
			Approach:       m.eng.det.Approach(),
			Precision:      DetectorPrecision(m.eng.det),
			Default:        m.name == r.def,
			MaxBatch:       m.cfg.MaxBatch,
			Workers:        m.cfg.Workers,
			MaxRequest:     m.cfg.MaxRequest,
			ActiveTraces:   m.tracker.Len(),
			QueueDepth:     m.cfg.QueueDepth,
			ShedQueueDepth: m.cfg.ShedQueueDepth,
			HasFallback:    m.fallback.load() != nil,
			Stats:          m.stats.snapshot(len(m.eng.jobs), m.eng.brownoutActive()),
		}
		if g := m.gate.load(); g != nil {
			info.HasCascade = true
			info.CascadeScorer = g.Scorer()
		}
		out = append(out, info)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}

// Stats returns the serving-counter snapshot for name ("" = default model).
func (r *Registry) Stats(name string) (EngineStats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, err := r.lookupLocked(name)
	if err != nil {
		return EngineStats{}, err
	}
	return m.stats.snapshot(len(m.eng.jobs), m.eng.brownoutActive()), nil
}

// ModelReadiness is one model's saturation view for /readyz: a model is not
// ready when its queue is at the shed threshold (or full, if shedding is off)
// or its brownout tier is engaged — the signals a gateway uses to eject a hot
// replica from rotation before requests start failing.
type ModelReadiness struct {
	Name       string  `json:"name"`
	QueueLen   int     `json:"queue_len"`
	QueueCap   int     `json:"queue_cap"`
	Saturation float64 `json:"saturation"`
	Degraded   bool    `json:"degraded"`
	Ready      bool    `json:"ready"`
}

// Readiness reports per-model saturation, sorted by name. The second return
// is true only when every model is ready.
func (r *Registry) Readiness() ([]ModelReadiness, bool) {
	r.mu.RLock()
	out := make([]ModelReadiness, 0, len(r.models))
	allReady := true
	for _, m := range r.models {
		cap := m.cfg.QueueDepth
		if s := m.cfg.ShedQueueDepth; s > 0 && s < cap {
			cap = s
		}
		depth := len(m.eng.jobs)
		mr := ModelReadiness{
			Name:     m.name,
			QueueLen: depth,
			QueueCap: cap,
			Degraded: m.eng.brownoutActive(),
		}
		if cap > 0 {
			mr.Saturation = float64(depth) / float64(cap)
		}
		mr.Ready = !mr.Degraded && mr.Saturation < 1
		if !mr.Ready {
			allReady = false
		}
		out = append(out, mr)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out, allReady
}

// ResetStats zeroes the serving counters and latency windows for name
// ("" = default model) — how the load lab isolates one scenario's stats from
// the previous scenario's on a long-lived server. The trace tracker is not
// touched.
func (r *Registry) ResetStats(name string) error {
	r.mu.RLock()
	m, err := r.lookupLocked(name)
	r.mu.RUnlock()
	if err != nil {
		return err
	}
	m.stats.reset()
	return nil
}

// ResetMonitor clears the model's persistent trace tracker ("" = default
// model): tracked windows and alert latches are dropped, so the next monitor
// ingest flags traces as if the stream were the first one seen. Paired
// benchmark replays (cascade off vs on over the same stream) need this —
// without it the second replay's trace flags are latch-suppressed and its
// flagged-trace count reads as zero.
func (r *Registry) ResetMonitor(name string) error {
	r.mu.RLock()
	m, err := r.lookupLocked(name)
	r.mu.RUnlock()
	if err != nil {
		return err
	}
	m.tracker.Reset()
	return nil
}

// Close drains and stops every model's engine and fails subsequent lookups
// with ErrServerClosed. Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	engines := make([]*engine, 0, len(r.models))
	for _, m := range r.models {
		engines = append(engines, m.eng)
	}
	r.mu.Unlock()
	for _, e := range engines {
		e.Close()
	}
}

// lookupLocked resolves name ("" = default) to its slot. Callers hold r.mu.
func (r *Registry) lookupLocked(name string) (*servedModel, error) {
	if r.closed {
		return nil, ErrServerClosed
	}
	if name == "" {
		name = r.def
	}
	m, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownModel, name)
	}
	return m, nil
}

// route resolves name to its current engine. The engine may be closed by a
// concurrent Swap after this returns; DetectModelContext retries on
// ErrServerClosed to pick up the replacement.
func (r *Registry) route(name string) (*engine, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, err := r.lookupLocked(name)
	if err != nil {
		return nil, err
	}
	return m.eng, nil
}

// monitorState resolves name to the pieces a monitor ingest needs: the
// resolved model name (so a "" request pins to the default model for the
// whole stream, even across swaps) and the slot's persistent tracker.
func (r *Registry) monitorState(name string) (resolved string, tracker *TraceTracker, cfg BatchConfig, err error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, err := r.lookupLocked(name)
	if err != nil {
		return "", nil, BatchConfig{}, err
	}
	return m.name, m.tracker, m.cfg, nil
}

// config resolves name ("" = default) to its slot's batching configuration.
func (r *Registry) config(name string) (BatchConfig, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, err := r.lookupLocked(name)
	if err != nil {
		return BatchConfig{}, err
	}
	return m.cfg, nil
}
