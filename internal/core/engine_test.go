package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// dedupDetector records every batch it is asked to classify and returns
// hashResult per sentence, so tests can assert both what reached the model
// and that fanned-back results stay correct and ordered.
type dedupDetector struct {
	hashDetector
	mu      sync.Mutex
	batches [][]string
}

func (d *dedupDetector) DetectBatch(ss []string) []Result {
	d.mu.Lock()
	d.batches = append(d.batches, append([]string(nil), ss...))
	d.mu.Unlock()
	return d.hashDetector.DetectBatch(ss)
}

// DetectBatchWS must record too: engine workers prefer the workspace path.
func (d *dedupDetector) DetectBatchWS(ss []string, _ *tensor.Workspace) []Result {
	return d.DetectBatch(ss)
}

func (d *dedupDetector) seen() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for _, b := range d.batches {
		out = append(out, b...)
	}
	return out
}

// TestRunBatchDedupsRepeatedSentences pins the coalescing dedup: repeated
// sentences in one batch reach the model once, and every caller still gets
// the right result in input order.
func TestRunBatchDedupsRepeatedSentences(t *testing.T) {
	det := &dedupDetector{}
	s := NewServerWith(det, BatchConfig{MaxBatch: 64, FlushDelay: 0, Workers: 1})
	defer s.Close()

	// 24 sentences over 4 distinct values, shuffled deterministically.
	sentences := make([]string, 24)
	for i := range sentences {
		sentences[i] = fmt.Sprintf("sentence %d", (i*7)%4)
	}
	got, err := s.Detect(sentences)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sentences) {
		t.Fatalf("got %d results for %d sentences", len(got), len(sentences))
	}
	for i, snt := range sentences {
		if want := hashResult(snt); got[i] != want {
			t.Fatalf("result %d = %+v, want %+v (input order broken?)", i, got[i], want)
		}
	}
	seen := det.seen()
	if len(seen) != 4 {
		t.Fatalf("model classified %d sentences, want 4 distinct (dedup missing): %v", len(seen), seen)
	}
	distinct := map[string]bool{}
	for _, s := range seen {
		if distinct[s] {
			t.Fatalf("model saw %q twice", s)
		}
		distinct[s] = true
	}
}

// TestRunBatchDedupAcrossCoalescedJobs pins that deduplication spans request
// boundaries inside one coalesced batch: two concurrent requests carrying the
// same sentence share one model invocation and both get correct results.
func TestRunBatchDedupAcrossCoalescedJobs(t *testing.T) {
	det := &dedupDetector{}
	s := NewServerWith(det, BatchConfig{MaxBatch: 32, FlushDelay: 20 * time.Millisecond, Workers: 1})
	defer s.Close()

	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := []string{"shared line", fmt.Sprintf("own line %d", c%2)}
			res, err := s.DetectContext(context.Background(), req)
			if err != nil {
				errs <- err
				return
			}
			for i, snt := range req {
				if res[i] != hashResult(snt) {
					errs <- fmt.Errorf("client %d result %d wrong", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	if err, ok := <-errs; ok {
		t.Fatal(err)
	}
	// Coalescing is timing-dependent, so the exact batch shapes vary — but
	// the model must never have seen more sentences than the 12 submitted,
	// and if any coalescing happened, strictly fewer.
	if seen := det.seen(); len(seen) > 2*clients {
		t.Fatalf("model classified %d sentences for %d submitted", len(seen), 2*clients)
	}
}

// TestRunBatchDedupSingleSentence pins the fast path: a lone sentence skips
// the dedup map entirely and still classifies correctly.
func TestRunBatchDedupSingleSentence(t *testing.T) {
	det := &dedupDetector{}
	s := NewServerWith(det, BatchConfig{MaxBatch: 8, FlushDelay: 0, Workers: 1})
	defer s.Close()
	res, err := s.Detect([]string{"only line"})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != hashResult("only line") {
		t.Fatalf("result = %+v", res[0])
	}
}
