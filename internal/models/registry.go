// Package models is the registry of pre-trained model configurations used in
// the paper's experiments: the twelve encoder-only models of Figures 4/5
// (BERT, DistilBERT, RoBERTa, ALBERT, XLNet families) and the three
// decoder-only models of Table III (GPT-2, Mistral, LLama2).
//
// Substitution note: the real checkpoints are 66M–340M (encoders) and
// 127M–7B (decoders) parameters; here each name maps to a CPU-trainable
// configuration that preserves the family's architectural signature and the
// zoo's *relative* size ordering (distilbert < base < large; ALBERT shares
// parameters across layers; XLNet is the widest per layer; GPT-2 ≪ Mistral ≈
// LLama2), which is what the paper's size-vs-accuracy and size-vs-time claims
// are about.
package models

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/transformer"
)

// Kind distinguishes encoder-only (SFT) from decoder-only (ICL) models.
type Kind int

// Model kinds.
const (
	Encoder Kind = iota
	Decoder
)

// Spec is a registry entry.
type Spec struct {
	// Name matches the HuggingFace checkpoint name used in the paper.
	Name string
	// Kind selects bidirectional (Encoder) or causal (Decoder) attention.
	Kind Kind
	// Layers, DModel, Heads, FFN define the scaled-down architecture.
	Layers, DModel, Heads, FFN int
	// Share enables ALBERT-style cross-layer parameter sharing.
	Share bool
	// Dropout is the residual dropout probability.
	Dropout float32
	// Seed decorrelates initializations of otherwise-identical configs
	// (e.g. cased vs uncased variants).
	Seed uint64
}

// encoderSpecs lists the twelve Figure 4/5 models in the paper's order.
var encoderSpecs = []Spec{
	{Name: "albert-base-v2", Kind: Encoder, Layers: 4, DModel: 48, Heads: 4, FFN: 96, Share: true, Dropout: 0.1, Seed: 101},
	{Name: "albert-large-v2", Kind: Encoder, Layers: 6, DModel: 64, Heads: 4, FFN: 128, Share: true, Dropout: 0.1, Seed: 102},
	{Name: "bert-base-cased", Kind: Encoder, Layers: 4, DModel: 48, Heads: 4, FFN: 96, Dropout: 0.1, Seed: 103},
	{Name: "bert-base-uncased", Kind: Encoder, Layers: 4, DModel: 48, Heads: 4, FFN: 96, Dropout: 0.1, Seed: 104},
	{Name: "bert-large-cased", Kind: Encoder, Layers: 6, DModel: 64, Heads: 4, FFN: 128, Dropout: 0.1, Seed: 105},
	{Name: "bert-large-uncased", Kind: Encoder, Layers: 6, DModel: 64, Heads: 4, FFN: 128, Dropout: 0.1, Seed: 106},
	{Name: "distilbert-base-cased", Kind: Encoder, Layers: 2, DModel: 40, Heads: 4, FFN: 80, Dropout: 0.1, Seed: 107},
	{Name: "distilbert-base-uncased", Kind: Encoder, Layers: 2, DModel: 40, Heads: 4, FFN: 80, Dropout: 0.1, Seed: 108},
	{Name: "roberta-base", Kind: Encoder, Layers: 4, DModel: 48, Heads: 4, FFN: 96, Dropout: 0.1, Seed: 109},
	{Name: "roberta-large", Kind: Encoder, Layers: 6, DModel: 64, Heads: 4, FFN: 128, Dropout: 0.1, Seed: 110},
	{Name: "xlnet-base-cased", Kind: Encoder, Layers: 4, DModel: 56, Heads: 4, FFN: 112, Dropout: 0.1, Seed: 111},
	{Name: "xlnet-large-cased", Kind: Encoder, Layers: 6, DModel: 72, Heads: 4, FFN: 144, Dropout: 0.1, Seed: 112},
}

// decoderSpecs lists the three Table III models. The Mistral and LLama2
// entries are the same scale tier (both 7B in the paper), far above GPT-2.
var decoderSpecs = []Spec{
	{Name: "gpt2", Kind: Decoder, Layers: 3, DModel: 32, Heads: 4, FFN: 64, Dropout: 0.1, Seed: 201},
	{Name: "mistral", Kind: Decoder, Layers: 6, DModel: 96, Heads: 4, FFN: 192, Dropout: 0.1, Seed: 202},
	{Name: "llama2", Kind: Decoder, Layers: 6, DModel: 88, Heads: 4, FFN: 176, Dropout: 0.1, Seed: 203},
}

// EncoderSpecs returns the twelve encoder entries in presentation order.
func EncoderSpecs() []Spec {
	out := make([]Spec, len(encoderSpecs))
	copy(out, encoderSpecs)
	return out
}

// DecoderSpecs returns the three decoder entries in presentation order.
func DecoderSpecs() []Spec {
	out := make([]Spec, len(decoderSpecs))
	copy(out, decoderSpecs)
	return out
}

// Get looks up a spec by checkpoint name.
func Get(name string) (Spec, bool) {
	for _, s := range append(EncoderSpecs(), DecoderSpecs()...) {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// MustGet looks up a spec by name and panics if absent.
func MustGet(name string) Spec {
	s, ok := Get(name)
	if !ok {
		panic(fmt.Sprintf("models: unknown model %q", name))
	}
	return s
}

// EncoderMaxSeq and DecoderMaxSeq are the context lengths models are built
// with: encoders see single job sentences; decoders see multi-example ICL
// prompts.
const (
	EncoderMaxSeq = 64
	DecoderMaxSeq = 512
)

// Build instantiates a randomly initialized model for the spec over a
// vocabulary of the given size, with a binary classification head. The
// caller pre-trains it (internal/pretrain) to obtain the "pre-trained
// checkpoint" the experiments start from.
func (s Spec) Build(vocabSize int) *transformer.Model {
	return s.BuildClasses(vocabSize, 2)
}

// BuildClasses is Build with a K-way classification head, used by the
// anomaly-type extension (normal / CPU / HDD).
func (s Spec) BuildClasses(vocabSize, numClasses int) *transformer.Model {
	maxSeq := EncoderMaxSeq
	causal := false
	if s.Kind == Decoder {
		maxSeq = DecoderMaxSeq
		causal = true
	}
	cfg := transformer.Config{
		Name:        s.Name,
		VocabSize:   vocabSize,
		MaxSeqLen:   maxSeq,
		DModel:      s.DModel,
		NumHeads:    s.Heads,
		NumLayers:   s.Layers,
		FFNDim:      s.FFN,
		Dropout:     s.Dropout,
		Causal:      causal,
		ShareLayers: s.Share,
		NumClasses:  numClasses,
	}
	return transformer.New(cfg, tensor.NewRNG(s.Seed))
}
