package models

import (
	"testing"
)

func TestRegistryCompleteness(t *testing.T) {
	if len(EncoderSpecs()) != 12 {
		t.Fatalf("encoder zoo has %d entries, want 12 (Fig 4)", len(EncoderSpecs()))
	}
	if len(DecoderSpecs()) != 3 {
		t.Fatalf("decoder zoo has %d entries, want 3 (Table III)", len(DecoderSpecs()))
	}
	names := map[string]bool{}
	for _, s := range append(EncoderSpecs(), DecoderSpecs()...) {
		if names[s.Name] {
			t.Fatalf("duplicate model name %q", s.Name)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"bert-base-uncased", "distilbert-base-cased", "xlnet-large-cased", "gpt2", "mistral", "llama2"} {
		if !names[want] {
			t.Fatalf("registry missing %q", want)
		}
	}
}

func TestGetAndMustGet(t *testing.T) {
	if _, ok := Get("bert-base-uncased"); !ok {
		t.Fatal("Get failed for known model")
	}
	if _, ok := Get("nonexistent"); ok {
		t.Fatal("Get succeeded for unknown model")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet must panic on unknown model")
		}
	}()
	MustGet("nonexistent")
}

func TestSizeOrderingMatchesFamilies(t *testing.T) {
	const vocab = 300
	count := func(name string) int { return MustGet(name).Build(vocab).ParamCount() }
	distil := count("distilbert-base-uncased")
	base := count("bert-base-uncased")
	large := count("bert-large-uncased")
	if !(distil < base && base < large) {
		t.Fatalf("size ordering broken: distil=%d base=%d large=%d", distil, base, large)
	}
	// ALBERT shares layers, so albert-large is smaller than bert-large.
	albertLarge := count("albert-large-v2")
	if albertLarge >= large {
		t.Fatalf("albert-large (%d) must be smaller than bert-large (%d)", albertLarge, large)
	}
	// Decoders: gpt2 is far smaller than mistral/llama2.
	gpt2 := count("gpt2")
	mistral := count("mistral")
	llama := count("llama2")
	if !(gpt2 < mistral && gpt2 < llama) {
		t.Fatalf("decoder ordering broken: gpt2=%d mistral=%d llama=%d", gpt2, mistral, llama)
	}
}

func TestBuildKinds(t *testing.T) {
	enc := MustGet("bert-base-uncased").Build(100)
	if enc.Config.Causal {
		t.Fatal("encoder must not be causal")
	}
	if enc.Config.MaxSeqLen != EncoderMaxSeq {
		t.Fatalf("encoder max seq = %d", enc.Config.MaxSeqLen)
	}
	dec := MustGet("gpt2").Build(100)
	if !dec.Config.Causal {
		t.Fatal("decoder must be causal")
	}
	if dec.Config.MaxSeqLen != DecoderMaxSeq {
		t.Fatalf("decoder max seq = %d", dec.Config.MaxSeqLen)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := MustGet("gpt2").Build(50)
	b := MustGet("gpt2").Build(50)
	la := a.ForwardCls([]int{1, 2, 3}, false)
	lb := b.ForwardCls([]int{1, 2, 3}, false)
	if !la.Equal(lb) {
		t.Fatal("Build must be deterministic per spec")
	}
}

func TestCasedUncasedDiffer(t *testing.T) {
	a := MustGet("bert-base-cased").Build(50)
	b := MustGet("bert-base-uncased").Build(50)
	la := a.ForwardCls([]int{1, 2, 3}, false)
	lb := b.ForwardCls([]int{1, 2, 3}, false)
	if la.Equal(lb) {
		t.Fatal("cased/uncased variants must have decorrelated initializations")
	}
}
