package gateway

import (
	"context"
	"io"
	"net/http"
	"time"
)

// healthLoop actively probes one replica's /readyz on HealthInterval and
// drives its admission state with hysteresis: EjectAfter consecutive
// failures take it out of rotation, ReadmitAfter consecutive successes
// bring it back. /readyz (not /healthz) is deliberate — a live-but-saturated
// replica answers 503 there, so saturation ejects it from rotation exactly
// like a crash does, and the gateway's admission control (shed when nothing
// is routable) becomes "shed when the whole fleet is saturated".
//
// Probe state (probeFails/probeOKs) is owned by this goroutine; only the
// healthy bit is shared, atomically.
func (g *Gateway) healthLoop(rep *replica) {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-g.closed:
			return
		case <-t.C:
		}
		if g.probe(rep) {
			rep.probeFails = 0
			rep.probeOKs++
			if !rep.healthy.Load() && rep.probeOKs >= g.cfg.ReadmitAfter {
				rep.healthy.Store(true)
			}
		} else {
			rep.probeOKs = 0
			rep.probeFails++
			if rep.healthy.Load() && rep.probeFails >= g.cfg.EjectAfter {
				rep.healthy.Store(false)
				rep.ejections.Add(1)
			}
		}
	}
}

// probe is one /readyz round trip, bounded by HealthTimeout, derived from
// the gateway's root context (not a request's — probes outlive requests).
func (g *Gateway) probe(rep *replica) bool {
	ctx, cancel := context.WithTimeout(g.ctx, g.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
