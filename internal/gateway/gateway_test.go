package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gateway/ring"
)

// fakeReplica is a scriptable anomalyd stand-in: ready/unready, sheddy,
// slow, and it records which traces its monitor endpoint saw.
type fakeReplica struct {
	srv *httptest.Server

	ready   atomic.Bool
	shed429 atomic.Bool
	delay   atomic.Int64 // ns applied to detect forwards

	detects atomic.Int64
	resets  atomic.Int64

	mu     sync.Mutex
	traces map[string]int // trace id -> monitor lines seen
}

func newFakeReplica(t *testing.T) *fakeReplica {
	t.Helper()
	f := &fakeReplica{traces: map[string]int{}}
	f.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !f.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ready":true}`))
	})
	detect := func(w http.ResponseWriter, r *http.Request) {
		if f.shed429.Load() {
			w.Header().Set("Retry-After-Ms", "60000")
			w.Header().Set("Retry-After", "60")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		if d := f.delay.Load(); d > 0 {
			select {
			case <-time.After(time.Duration(d)):
			case <-r.Context().Done():
				return
			}
		}
		f.detects.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"replica":%q}`, f.srv.URL)
	}
	mux.HandleFunc("/v1/detect", detect)
	mux.HandleFunc("/v1/detect/batch", detect)
	mux.HandleFunc("/v1/monitor", func(w http.ResponseWriter, r *http.Request) {
		sc := bufio.NewScanner(r.Body)
		n := 0
		local := map[string]bool{}
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				continue
			}
			n++
			if i := strings.Index(line, "trace="); i >= 0 {
				id := line[i+len("trace="):]
				if k := strings.IndexByte(id, ' '); k >= 0 {
					id = id[:k]
				}
				local[id] = true
				f.mu.Lock()
				f.traces[id]++
				f.mu.Unlock()
			}
		}
		writeJSON(w, core.MonitorResponse{MonitorReport: core.MonitorReport{
			Processed:    n,
			ActiveTraces: len(local),
		}})
	})
	mux.HandleFunc("/v1/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, core.ModelsResponse{Models: []core.ModelInfo{{
			Name:         "default",
			Default:      true,
			ActiveTraces: 3,
			QueueDepth:   64,
			Stats:        core.EngineStats{Requests: 10, Sentences: 20, Batches: 5, QueueWaitP99Ms: 7},
		}}})
	})
	mux.HandleFunc("/v1/stats/reset", func(w http.ResponseWriter, r *http.Request) {
		f.resets.Add(1)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/v1/alerts", func(w http.ResponseWriter, r *http.Request) {
		fl := w.(http.Flusher)
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, ": streaming\n\n")
		fl.Flush()
		fmt.Fprintf(w, "event: alert\ndata: {\"replica\":%q}\n\n", f.srv.URL)
		fl.Flush()
		<-r.Context().Done()
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) traceSet() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.traces))
	for k, v := range f.traces {
		out[k] = v
	}
	return out
}

// newGateway builds a gateway over the fakes with fast test timings.
func newGateway(t *testing.T, cfg Config, fakes ...*fakeReplica) (*Gateway, *httptest.Server) {
	t.Helper()
	for _, f := range fakes {
		cfg.Replicas = append(cfg.Replicas, f.srv.URL)
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 20 * time.Millisecond
	}
	g, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(g.Close)
	srv := httptest.NewServer(g)
	t.Cleanup(srv.Close)
	return g, srv
}

func postDetect(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(`{"sentences":["ok"]}`))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func drainClose(t *testing.T, resp *http.Response) {
	t.Helper()
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

func metricValue(t *testing.T, text, needle string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, needle+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(needle)+1:], "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %q not found in exposition:\n%s", needle, text)
	return 0
}

func TestForwardBasic(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	_, srv := newGateway(t, Config{}, a, b)

	resp := postDetect(t, srv.URL+"/v1/detect")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Gateway-Replica") == "" {
		t.Fatalf("missing X-Gateway-Replica header")
	}
	drainClose(t, resp)
	if a.detects.Load()+b.detects.Load() != 1 {
		t.Fatalf("fleet saw %d detects, want 1", a.detects.Load()+b.detects.Load())
	}
}

func TestTraceAffinity(t *testing.T) {
	a, b, c := newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)
	_, srv := newGateway(t, Config{}, a, b, c)

	rg := ring.New([]string{a.srv.URL, b.srv.URL, c.srv.URL}, 0)
	owner := rg.Owner(ring.TraceKey(7))
	for i := 0; i < 5; i++ {
		resp := postDetect(t, srv.URL+"/v1/detect?trace=7")
		if got := resp.Header.Get("X-Gateway-Replica"); got != owner {
			t.Fatalf("request %d went to %s, want ring owner %s", i, got, owner)
		}
		drainClose(t, resp)
	}
}

func TestHealthEjectionAndReadmission(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	g, srv := newGateway(t, Config{HealthInterval: 10 * time.Millisecond}, a, b)

	a.ready.Store(false)
	waitFor(t, time.Second, func() bool { return !g.replicas[a.srv.URL].healthy.Load() })

	// All traffic, even trace-pinned-to-a traffic, lands on b.
	for i := 0; i < 10; i++ {
		resp := postDetect(t, srv.URL+fmt.Sprintf("/v1/detect?trace=%d", i))
		if got := resp.Header.Get("X-Gateway-Replica"); got != b.srv.URL {
			t.Fatalf("with %s ejected, request went to %s", a.srv.URL, got)
		}
		drainClose(t, resp)
	}
	if ej := g.replicas[a.srv.URL].ejections.Load(); ej != 1 {
		t.Fatalf("ejections = %d, want 1", ej)
	}

	a.ready.Store(true)
	waitFor(t, time.Second, func() bool { return g.replicas[a.srv.URL].healthy.Load() })
	text := metricsText(t, srv.URL)
	if v := metricValue(t, text, fmt.Sprintf("repro_gateway_replica_healthy{replica=%q}", a.srv.URL)); v != 1 {
		t.Fatalf("replica_healthy = %v after readmission, want 1", v)
	}
}

func TestHedgeWinsOverStraggler(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	_, srv := newGateway(t, Config{HedgeDelay: 10 * time.Millisecond}, a, b)

	// Pin candidate order with a trace key, then make the owner a straggler.
	rg := ring.New([]string{a.srv.URL, b.srv.URL}, 0)
	prefs := rg.Lookup(ring.TraceKey(42))
	slow, fast := a, b
	if prefs[0] == b.srv.URL {
		slow, fast = b, a
	}
	slow.delay.Store(int64(400 * time.Millisecond))

	start := time.Now()
	resp := postDetect(t, srv.URL+"/v1/detect?trace=42")
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Gateway-Replica"); got != fast.srv.URL {
		t.Fatalf("answered by %s, want hedge target %s", got, fast.srv.URL)
	}
	drainClose(t, resp)
	if elapsed > 300*time.Millisecond {
		t.Fatalf("hedged request took %v, want well under the straggler's 400ms", elapsed)
	}
	text := metricsText(t, srv.URL)
	if v := metricValue(t, text, "repro_gateway_hedge_wins_total"); v < 1 {
		t.Fatalf("hedge_wins_total = %v, want >= 1", v)
	}
}

func TestCooldownReroutesAfter429(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	g, srv := newGateway(t, Config{HedgeDelay: time.Hour}, a, b)

	rg := ring.New([]string{a.srv.URL, b.srv.URL}, 0)
	prefs := rg.Lookup(ring.TraceKey(3))
	shedder := a
	if prefs[0] == b.srv.URL {
		shedder = b
	}
	other := a
	if shedder == a {
		other = b
	}
	shedder.shed429.Store(true)

	// First request: the owner sheds, the retry rotates to the survivor.
	resp := postDetect(t, srv.URL+"/v1/detect?trace=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 via failover", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Gateway-Replica"); got != other.srv.URL {
		t.Fatalf("answered by %s, want failover target %s", got, other.srv.URL)
	}
	drainClose(t, resp)

	// The 429's Retry-After is now a cooldown: the owner is not routable, so
	// the next request goes straight to the survivor without an attempt.
	before := other.detects.Load()
	resp = postDetect(t, srv.URL+"/v1/detect?trace=3")
	drainClose(t, resp)
	if other.detects.Load() != before+1 {
		t.Fatalf("cooldown did not route to the survivor")
	}
	if !time.Now().Before(time.Unix(0, g.replicas[shedder.srv.URL].coolUntil.Load())) {
		t.Fatalf("shedding replica has no active cooldown")
	}
	text := metricsText(t, srv.URL)
	if v := metricValue(t, text, fmt.Sprintf("repro_gateway_replica_cooling{replica=%q}", shedder.srv.URL)); v != 1 {
		t.Fatalf("replica_cooling = %v, want 1", v)
	}
	if v := metricValue(t, text, "repro_gateway_retries_total"); v < 1 {
		t.Fatalf("retries_total = %v, want >= 1", v)
	}
}

func TestShedWhenNothingRoutable(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	_, srv := newGateway(t, Config{HedgeDelay: time.Hour}, a, b)
	a.shed429.Store(true)
	b.shed429.Store(true)

	// First request: every candidate sheds; the last 429 relays as-is with
	// the replica's own Retry-After intact.
	resp := postDetect(t, srv.URL+"/v1/detect")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want relayed 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After-Ms") != "60000" {
		t.Fatalf("Retry-After-Ms = %q, want the replica's 60000", resp.Header.Get("Retry-After-Ms"))
	}
	drainClose(t, resp)

	// Both replicas now cool: the gateway sheds at the boundary without
	// forwarding anything.
	resp = postDetect(t, srv.URL+"/v1/detect")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want gateway shed 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get("Retry-After-Ms") == "" {
		t.Fatalf("gateway shed missing Retry-After hints: %v", resp.Header)
	}
	drainClose(t, resp)
	text := metricsText(t, srv.URL)
	if v := metricValue(t, text, "repro_gateway_shed_total"); v < 1 {
		t.Fatalf("shed_total = %v, want >= 1", v)
	}

	// /readyz agrees: nothing routable.
	rr, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz status = %d, want 503 while everything cools", rr.StatusCode)
	}
}

func TestModelsMergeAndStatsReset(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	_, srv := newGateway(t, Config{}, a, b)

	resp, err := http.Get(srv.URL + "/v1/models")
	if err != nil {
		t.Fatalf("GET /v1/models: %v", err)
	}
	defer resp.Body.Close()
	var agg ModelsAggregate
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatalf("decoding aggregate: %v", err)
	}
	if len(agg.Replicas) != 2 {
		t.Fatalf("replicas in aggregate = %d, want 2", len(agg.Replicas))
	}
	if len(agg.Models) != 1 || agg.Models[0].Name != "default" {
		t.Fatalf("merged models = %+v, want one 'default'", agg.Models)
	}
	m := agg.Models[0]
	if m.Stats.Requests != 20 || m.Stats.Sentences != 40 || m.ActiveTraces != 6 {
		t.Fatalf("merged stats not summed: requests=%d sentences=%d active=%d", m.Stats.Requests, m.Stats.Sentences, m.ActiveTraces)
	}
	if m.Stats.QueueWaitP99Ms != 7 {
		t.Fatalf("merged p99 = %v, want per-replica max 7", m.Stats.QueueWaitP99Ms)
	}

	rr, err := http.Post(srv.URL+"/v1/stats/reset", "", nil)
	if err != nil {
		t.Fatalf("POST /v1/stats/reset: %v", err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusNoContent {
		t.Fatalf("reset status = %d, want 204", rr.StatusCode)
	}
	if a.resets.Load() != 1 || b.resets.Load() != 1 {
		t.Fatalf("resets not fanned out: a=%d b=%d", a.resets.Load(), b.resets.Load())
	}
}

func monitorLines(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "wf=w trace=%d node=1 task=ok\n", i)
	}
	return sb.String()
}

func TestMonitorDemux(t *testing.T) {
	a, b, c := newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)
	_, srv := newGateway(t, Config{}, a, b, c)

	const n = 30
	resp, err := http.Post(srv.URL+"/v1/monitor", "text/plain", strings.NewReader(monitorLines(n)))
	if err != nil {
		t.Fatalf("POST /v1/monitor: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, body: %s", resp.StatusCode, body)
	}
	var agg MonitorAggregate
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatalf("decoding aggregate: %v", err)
	}
	if agg.Processed != n {
		t.Fatalf("merged Processed = %d, want %d", agg.Processed, n)
	}
	if agg.Gateway.Lost != 0 || agg.Gateway.Rerouted != 0 {
		t.Fatalf("healthy fleet lost=%d rerouted=%d, want 0/0", agg.Gateway.Lost, agg.Gateway.Rerouted)
	}
	// Demux correctness: every trace on exactly one replica, union complete.
	seen := map[string]string{}
	for _, f := range []*fakeReplica{a, b, c} {
		for id := range f.traceSet() {
			if prev, dup := seen[id]; dup {
				t.Fatalf("trace %s split across %s and %s", id, prev, f.srv.URL)
			}
			seen[id] = f.srv.URL
		}
	}
	if len(seen) != n {
		t.Fatalf("fleet saw %d distinct traces, want %d", len(seen), n)
	}
	// Demux agrees with the ring.
	rg := ring.New([]string{a.srv.URL, b.srv.URL, c.srv.URL}, 0)
	for id, at := range seen {
		if want := rg.Owner("trace:" + id); at != want {
			t.Fatalf("trace %s on %s, ring owner is %s", id, at, want)
		}
	}
}

func TestMonitorJSONBody(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	_, srv := newGateway(t, Config{}, a, b)

	body, _ := json.Marshal(core.MonitorRequest{Lines: []string{
		"wf=w trace=1 node=1 task=ok",
		"wf=w trace=2 node=1 task=ok",
	}})
	resp, err := http.Post(srv.URL+"/v1/monitor", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var agg MonitorAggregate
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if agg.Processed != 2 {
		t.Fatalf("Processed = %d, want 2", agg.Processed)
	}
}

func TestMonitorReroutesWhenReplicaDies(t *testing.T) {
	a, b, c := newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)
	// Long health interval: the demux must fail over on its own, before the
	// health checker notices anything.
	_, srv := newGateway(t, Config{HealthInterval: time.Hour}, a, b, c)

	victim := c
	victim.srv.CloseClientConnections()
	victim.srv.Close()

	const n = 30
	resp, err := http.Post(srv.URL+"/v1/monitor", "text/plain", strings.NewReader(monitorLines(n)))
	if err != nil {
		t.Fatalf("POST /v1/monitor: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, body: %s", resp.StatusCode, body)
	}
	var agg MonitorAggregate
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatalf("decoding aggregate: %v", err)
	}
	if agg.Gateway.Lost != 0 {
		t.Fatalf("lost %d lines with two healthy survivors", agg.Gateway.Lost)
	}
	if agg.Processed != n {
		t.Fatalf("merged Processed = %d, want %d (every line re-homed)", agg.Processed, n)
	}
	// Every trace must land whole on exactly one SURVIVOR — and specifically
	// on its next ring preference after the victim.
	rg := ring.New([]string{a.srv.URL, b.srv.URL, c.srv.URL}, 0)
	seen := map[string]string{}
	for _, f := range []*fakeReplica{a, b} {
		for id := range f.traceSet() {
			if prev, dup := seen[id]; dup {
				t.Fatalf("trace %s split across %s and %s", id, prev, f.srv.URL)
			}
			seen[id] = f.srv.URL
		}
	}
	if len(seen) != n {
		t.Fatalf("survivors saw %d distinct traces, want %d", len(seen), n)
	}
	reroutedWant := 0
	for id, at := range seen {
		prefs := rg.Lookup("trace:" + id)
		want := prefs[0]
		if want == victim.srv.URL {
			want = prefs[1]
			reroutedWant++
		}
		if at != want {
			t.Fatalf("trace %s on %s, want %s (ring order %v)", id, at, want, prefs)
		}
	}
	if reroutedWant == 0 {
		t.Fatalf("test vacuous: no trace was owned by the victim")
	}
	if agg.Gateway.Rerouted == 0 {
		t.Fatalf("rerouted counter = 0, want > 0")
	}
}

func TestAlertsFanIn(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	_, srv := newGateway(t, Config{}, a, b)

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/alerts", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatalf("GET /v1/alerts: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	want := map[string]bool{a.srv.URL: false, b.srv.URL: false}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for u := range want {
			if strings.Contains(line, u) {
				want[u] = true
			}
		}
		if want[a.srv.URL] && want[b.srv.URL] {
			return // both replicas' events reached the merged stream
		}
	}
	t.Fatalf("stream ended before both replicas' alerts arrived: %v (err %v)", want, sc.Err())
}

func TestGatewayMetricsExposition(t *testing.T) {
	a := newFakeReplica(t)
	_, srv := newGateway(t, Config{}, a)
	drainClose(t, postDetect(t, srv.URL+"/v1/detect"))

	text := metricsText(t, srv.URL)
	for _, m := range []string{
		"repro_gateway_replicas 1",
		"repro_gateway_requests_total 1",
		"# TYPE repro_gateway_requests_total counter",
		"repro_gateway_retry_budget_tokens",
		fmt.Sprintf("repro_gateway_forwarded_total{replica=%q} 1", a.srv.URL),
	} {
		if !strings.Contains(text, m) {
			t.Fatalf("exposition missing %q:\n%s", m, text)
		}
	}
	if v := metricValue(t, text, `repro_gateway_forward_latency_ms{quantile="0.99"}`); v < 0 {
		t.Fatalf("latency quantile = %v", v)
	}
}

func TestNewRejectsEmptyFleet(t *testing.T) {
	if _, err := New(context.Background(), Config{}); err == nil {
		t.Fatalf("New with no replicas succeeded")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not met within %v", timeout)
}
