package ring

import (
	"fmt"
	"reflect"
	"testing"
)

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// TestRingBalance checks key-distribution balance: over many trace keys,
// every member's share stays within tolerance of fair share.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		r := New(members(n), 0)
		const keys = 20000
		counts := map[string]int{}
		for k := 0; k < keys; k++ {
			counts[r.Owner(TraceKey(k))]++
		}
		fair := float64(keys) / float64(n)
		for m, c := range counts {
			if dev := float64(c)/fair - 1; dev < -0.25 || dev > 0.25 {
				t.Errorf("n=%d: member %s owns %d keys (fair %.0f, deviation %+.0f%%)",
					n, m, c, fair, dev*100)
			}
		}
		if len(counts) != n {
			t.Errorf("n=%d: only %d members own keys", n, len(counts))
		}
	}
}

// TestRingMinimalRemapping ejects one member and checks that only its keys
// move — and that each moves to that key's next preference, so re-admission
// restores the original assignment exactly.
func TestRingMinimalRemapping(t *testing.T) {
	ms := members(3)
	r := New(ms, 0)
	ejected := ms[1]

	route := func(key string, down string) string {
		for _, m := range r.Lookup(key) {
			if m != down {
				return m
			}
		}
		return ""
	}

	const keys = 5000
	moved := 0
	for k := 0; k < keys; k++ {
		key := TraceKey(k)
		before := route(key, "")
		during := route(key, ejected)
		after := route(key, "")
		if after != before {
			t.Fatalf("key %s: re-admission moved it %s → %s", key, before, after)
		}
		if before != ejected {
			if during != before {
				t.Fatalf("key %s owned by healthy %s moved to %s during ejection", key, before, during)
			}
			continue
		}
		moved++
		if during == ejected || during == "" {
			t.Fatalf("key %s still routed to ejected member", key)
		}
		if want := r.Lookup(key)[1]; during != want {
			t.Fatalf("key %s re-routed to %s, want next preference %s", key, during, want)
		}
	}
	// The ejected member owned roughly a third of the keyspace; only those
	// keys may move.
	if fair := keys / 3; moved < fair/2 || moved > fair*2 {
		t.Fatalf("%d keys moved on ejection, want ≈%d", moved, fair)
	}
}

// TestRingDeterminism pins the layout as a pure function of the member set:
// insertion order and duplicates must not matter, and preference orders must
// be identical across independently built rings.
func TestRingDeterminism(t *testing.T) {
	a := New([]string{"r1", "r2", "r3"}, 64)
	b := New([]string{"r3", "r1", "r2", "r1"}, 64)
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("member sets differ: %v vs %v", a.Members(), b.Members())
	}
	for k := 0; k < 1000; k++ {
		key := TraceKey(k)
		if !reflect.DeepEqual(a.Lookup(key), b.Lookup(key)) {
			t.Fatalf("key %s: preference order differs: %v vs %v", key, a.Lookup(key), b.Lookup(key))
		}
	}
}

// TestRingPreferenceOrder checks Lookup's contract: every member exactly
// once, owner first.
func TestRingPreferenceOrder(t *testing.T) {
	ms := members(4)
	r := New(ms, 0)
	for k := 0; k < 200; k++ {
		key := TraceKey(k)
		order := r.Lookup(key)
		if len(order) != len(ms) {
			t.Fatalf("key %s: %d entries, want %d", key, len(order), len(ms))
		}
		if order[0] != r.Owner(key) {
			t.Fatalf("key %s: first preference %s != owner %s", key, order[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, m := range order {
			if seen[m] {
				t.Fatalf("key %s: duplicate member %s in %v", key, m, order)
			}
			seen[m] = true
		}
	}
}

// TestRingEmpty pins the degenerate cases.
func TestRingEmpty(t *testing.T) {
	r := New(nil, 0)
	if got := r.Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	if got := r.Lookup("x"); got != nil {
		t.Fatalf("empty ring lookup = %v", got)
	}
	one := New([]string{"solo"}, 3)
	if got := one.Lookup("x"); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("single-member lookup = %v", got)
	}
}
