// Package ring implements the consistent-hash ring behind anomalygw's
// trace-affinity routing. Each member (a replica base URL) owns Replicas
// virtual points on a 64-bit hash circle; a key routes to the member owning
// the first point at or clockwise of the key's hash. Two properties make it
// the right structure for trace routing:
//
//   - Affinity: all requests for one trace hash to the same point, so a
//     trace's TraceTracker window accumulates on exactly one replica.
//   - Minimal remapping: ejecting a member moves only the keys that member
//     owned (≈1/N of the keyspace) to their next-clockwise survivor; the
//     other members' traces stay put. Re-admission restores exactly the
//     original assignment, because the point layout is a pure function of
//     the member names.
//
// Lookup returns the full clockwise preference order, not just the owner —
// the gateway walks it to find the first routable member, which is what
// makes "re-route to exactly one surviving replica" deterministic when a
// replica is ejected mid-stream.
//
// The layout is deterministic: FNV-1a hashing, members sorted by name, no
// dependence on insertion order.
//
//repro:deterministic
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-member virtual point count. 128 points per
// member keeps the expected keyspace imbalance across a handful of replicas
// within ~20% of fair share (see TestRingBalance) at negligible memory cost.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a fixed member set.
// Ejection is the caller's concern: Lookup returns the preference order and
// the caller skips members it considers unroutable, so health transitions
// need no ring mutation (and therefore no locking).
type Ring struct {
	members []string
	points  []point
}

type point struct {
	hash   uint64
	member int // index into members
}

// New builds a ring over members with vnodes virtual points each
// (non-positive means DefaultVirtualNodes). Member order does not matter:
// the layout depends only on the set of names. Duplicate names collapse to
// one member.
func New(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		members: uniq,
		points:  make([]point, 0, len(uniq)*vnodes),
	}
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashKey(fmt.Sprintf("%s#%d", m, v)), member: i})
		}
	}
	sort.Slice(r.points, func(i, k int) bool {
		if r.points[i].hash != r.points[k].hash {
			return r.points[i].hash < r.points[k].hash
		}
		// Hash ties (vanishingly rare at 64 bits) break by member name so
		// the layout stays a pure function of the member set.
		return r.points[i].member < r.points[k].member
	})
	return r
}

// Members returns the member names, sorted.
func (r *Ring) Members() []string { return r.members }

// Owner returns the member owning key — the first preference. Empty ring
// returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.members[r.points[r.search(key)].member]
}

// Lookup returns every member in key's clockwise preference order: the owner
// first, then the member owning the next point belonging to a new member,
// and so on until all members appear. The caller routes to the first entry
// it considers routable — with the owner ejected, every key the owner held
// lands on the same single successor, and keys owned by healthy members do
// not move at all.
func (r *Ring) Lookup(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	order := make([]string, 0, len(r.members))
	taken := make([]bool, len(r.members))
	for i, n := r.search(key), 0; n < len(r.points); i, n = (i+1)%len(r.points), n+1 {
		m := r.points[i].member
		if !taken[m] {
			taken[m] = true
			order = append(order, r.members[m])
			if len(order) == len(r.members) {
				break
			}
		}
	}
	return order
}

// search returns the index of the first point with hash ≥ hashKey(key),
// wrapping to 0 past the end.
func (r *Ring) search(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// TraceKey renders a trace ID in the key namespace the gateway hashes —
// kept here so the forwarding path and the monitor demux route one trace
// identically.
func TraceKey(traceID int) string { return fmt.Sprintf("trace:%d", traceID) }

// hashKey is 64-bit FNV-1a through a splitmix64 finalizer: stdlib, stable
// across platforms and process runs (the layout must not depend on Go's
// per-process string hash seed), and well dispersed. Raw FNV-1a clusters on
// near-identical inputs — virtual-node names differ only in a short suffix,
// and without the avalanche step the point layout lands lopsided enough to
// break the balance tolerance.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
