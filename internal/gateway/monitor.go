package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// MonitorDemux is the gateway's addendum to a merged monitor report: where
// the lines went and what the failover did. It rides under "gateway" in the
// response, next to the single-node-shaped merged report.
type MonitorDemux struct {
	// Lines maps replica URL to the lines routed there this request.
	Lines map[string]int64 `json:"lines"`
	// Rerouted counts lines that landed on a successor because an earlier
	// preference failed mid-stream; Lost counts lines no surviving replica
	// accepted.
	Rerouted int64 `json:"rerouted"`
	Lost     int64 `json:"lost"`
	// Errors maps failed replica URLs to what killed their substream.
	Errors map[string]string `json:"errors,omitempty"`
}

// MonitorAggregate is the gateway's POST /v1/monitor body: the fleet-merged
// report in the single-node shape (scenario.ReplayMonitor and other
// core.MonitorResponse decoders work unchanged) plus the demux breakdown.
type MonitorAggregate struct {
	core.MonitorResponse
	Gateway MonitorDemux `json:"gateway"`
}

// monSub is one replica's streaming substream of a demuxed monitor request:
// lines are written into the pipe; a goroutine runs the POST and decodes the
// replica's report when the stream ends (or fails, failing the sub so the
// router stops picking it).
type monSub struct {
	rep    *replica
	pw     *io.PipeWriter
	done   chan struct{}
	lines  int64
	failed atomic.Bool

	// set by the POST goroutine before done closes
	resp   core.MonitorResponse
	status int
	err    error
}

func (s *monSub) fail(err error) {
	if s.failed.CompareAndSwap(false, true) && s.err == nil {
		s.err = err
	}
}

// openMonSub starts one replica's substream under the request's context.
func (g *Gateway) openMonSub(ctx context.Context, rep *replica, query string) *monSub {
	pr, pw := io.Pipe()
	s := &monSub{rep: rep, pw: pw, done: make(chan struct{})}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/v1/monitor"+query, pr)
	if err != nil {
		s.fail(err)
		close(s.done)
		return s
	}
	req.Header.Set("Content-Type", "text/plain")
	go func() {
		defer close(s.done)
		resp, err := g.cfg.Client.Do(req)
		if err != nil {
			s.fail(err)
			rep.failures.Add(1)
			rep.breaker.Record(false)
			// Unblock writers: every pending and future Write on the pipe
			// fails, which is what routes this sub's traces to a successor.
			pr.CloseWithError(err)
			return
		}
		defer resp.Body.Close()
		s.status = resp.StatusCode
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(&s.resp); err != nil && s.err == nil {
			s.err = err
		}
	}()
	return s
}

// handleMonitor is POST /v1/monitor, demuxed: each log line routes to the
// replica owning its trace on the hash ring, as one streaming substream per
// replica, so a trace's TraceTracker window accumulates on exactly one
// replica. When a substream dies mid-request (replica killed), the lines it
// owned re-route to each trace's next ring preference — deterministically,
// so every affected trace lands on exactly one surviving replica. The
// response merges the per-replica reports.
func (g *Gateway) handleMonitor(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	g.requests.Add(1)

	var body io.Reader = r.Body
	if strings.Contains(r.Header.Get("Content-Type"), "application/json") {
		var req core.MonitorRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		for i, line := range req.Lines {
			if strings.ContainsRune(line, '\n') {
				http.Error(w, fmt.Sprintf("bad request: lines[%d] contains a newline", i), http.StatusBadRequest)
				return
			}
		}
		body = strings.NewReader(strings.Join(req.Lines, "\n"))
	}

	// Pass the routing-relevant query (model, strict) through to every
	// substream.
	query := queryString(r)
	ctx := r.Context()
	subs := map[string]*monSub{}
	demux := MonitorDemux{Lines: map[string]int64{}, Errors: map[string]string{}}

	br := bufio.NewReaderSize(body, 64<<10)
	for {
		line, err := readLine(br)
		if len(line) > 0 {
			g.routeLine(ctx, line, query, subs, &demux)
		}
		if err != nil {
			break
		}
	}

	// End of input: close every substream (EOF to the replica) and collect.
	for _, s := range subs {
		s.pw.Close()
	}
	agg := MonitorAggregate{Gateway: demux}
	succeeded := 0
	names := make([]string, 0, len(subs))
	for name := range subs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := subs[name]
		select {
		case <-s.done:
		case <-ctx.Done():
		}
		if s.err != nil {
			demux.Errors[name] = s.err.Error()
			continue
		}
		if s.status >= 300 {
			demux.Errors[name] = fmt.Sprintf("status %d", s.status)
			if s.resp.Error != "" && agg.Error == "" {
				agg.Error = s.resp.Error
			}
			continue
		}
		succeeded++
		mergeReport(&agg.MonitorReport, s.resp.MonitorReport)
		if s.resp.Error != "" && agg.Error == "" {
			agg.Error = s.resp.Error
		}
	}
	agg.Gateway = demux
	if succeeded == 0 && len(subs) > 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		json.NewEncoder(w).Encode(agg)
		return
	}
	writeJSON(w, agg)
}

// routeLine sends one line to the first live substream in its trace's ring
// preference order, opening substreams lazily and failing over past dead
// ones.
func (g *Gateway) routeLine(ctx context.Context, line []byte, query string, subs map[string]*monSub, demux *MonitorDemux) {
	key := lineKey(line)
	now := time.Now()
	for i, name := range g.ring.Lookup(key) {
		rep := g.replicas[name]
		s := subs[name]
		if s == nil {
			// Don't open a fresh substream to a replica already out of
			// rotation; its traces belong to their successor right away.
			if !rep.routable(now) {
				continue
			}
			s = g.openMonSub(ctx, rep, query)
			subs[name] = s
		}
		if s.failed.Load() {
			continue
		}
		if _, err := s.pw.Write(append(line, '\n')); err != nil {
			s.fail(err)
			continue
		}
		s.lines++
		rep.monitorLines.Add(1)
		demux.Lines[name]++
		if i > 0 {
			demux.Rerouted++
			g.rerouted.Add(1)
		}
		return
	}
	demux.Lost++
	g.lost.Add(1)
}

// readLine reads one line (without the terminator) of any length.
func readLine(br *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		chunk, err := br.ReadSlice('\n')
		if len(chunk) > 0 && chunk[len(chunk)-1] == '\n' {
			chunk = chunk[:len(chunk)-1]
		}
		if len(chunk) > 0 && chunk[len(chunk)-1] == '\r' {
			chunk = chunk[:len(chunk)-1]
		}
		line = append(line, chunk...)
		if err == nil || !errors.Is(err, bufio.ErrBufferFull) {
			return line, err
		}
		// ErrBufferFull: the line continues; keep accumulating.
	}
}

// lineKey extracts a monitor line's routing key: the trace=N token of the
// repo's log-line grammar (logparse: "wf=... trace=N node=..."), namespaced
// like ring.TraceKey so the forwarding path and the demux agree. Lines
// without a trace token (malformed input) hash by content — they carry no
// tracker state, so any stable assignment works.
func lineKey(line []byte) string {
	s := string(line)
	i := strings.Index(s, "trace=")
	for i >= 0 {
		if i == 0 || s[i-1] == ' ' || s[i-1] == '\t' {
			rest := s[i+len("trace="):]
			end := 0
			for end < len(rest) && rest[end] >= '0' && rest[end] <= '9' {
				end++
			}
			if end > 0 {
				return "trace:" + rest[:end]
			}
		}
		k := strings.Index(s[i+1:], "trace=")
		if k < 0 {
			break
		}
		i += 1 + k
	}
	return s
}

// mergeReport folds one replica's monitor report into the fleet total.
func mergeReport(dst *core.MonitorReport, src core.MonitorReport) {
	dst.Processed += src.Processed
	dst.Alerts += src.Alerts
	dst.Malformed += src.Malformed
	dst.FlaggedTraces += src.FlaggedTraces
	dst.ActiveTraces += src.ActiveTraces
	dst.EvictedTraces += src.EvictedTraces
	dst.CascadeEvaluated += src.CascadeEvaluated
	dst.CascadeShort += src.CascadeShort
}

// handleAlerts is GET /v1/alerts: the fleet's SSE streams fanned into one.
// A reader goroutine per replica copies event blocks into the client's
// stream, reconnecting (on the health interval) while the replica is away —
// a replica dying mid-stream costs its undelivered events, not the
// subscription.
func (g *Gateway) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ctx := r.Context()
	events := make(chan []byte, 64)
	var wg sync.WaitGroup
	for _, name := range g.names {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			g.alertReader(ctx, rep, events)
		}(g.replicas[name])
	}
	defer wg.Wait()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprintf(w, ": streaming fleet alerts (%d replicas)\n\n", len(g.names))
	fl.Flush()
	for {
		select {
		case <-ctx.Done():
			return
		case <-g.closed:
			return
		case block := <-events:
			w.Write(block)
			fl.Flush()
		}
	}
}

// alertReader subscribes to one replica's /v1/alerts and forwards complete
// event blocks. It lives exactly as long as the client's request context.
func (g *Gateway) alertReader(ctx context.Context, rep *replica, events chan<- []byte) {
	for ctx.Err() == nil {
		g.copyAlerts(ctx, rep, events)
		select {
		case <-ctx.Done():
			return
		case <-g.closed:
			return
		case <-time.After(g.cfg.HealthInterval):
		}
	}
}

// copyAlerts is one subscription attempt: connect, then forward event blocks
// until the stream ends.
func (g *Gateway) copyAlerts(ctx context.Context, rep *replica, events chan<- []byte) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/v1/alerts", nil)
	if err != nil {
		return
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxBody)
	var block []byte
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			// Block boundary: forward non-comment blocks.
			if len(block) > 0 && block[0] != ':' {
				out := append(block, '\n')
				select {
				case events <- out:
				case <-ctx.Done():
					return
				case <-g.closed:
					return
				}
			}
			block = nil
			continue
		}
		block = append(block, line...)
		block = append(block, '\n')
	}
}
