// Package gateway is the replicated-serving tier over N anomalyd replicas
// (ROADMAP item 1): one HTTP front that makes a fleet look like a single
// overload-safe node. It converts PR 7's single-replica resilience contract
// into a fleet-level one:
//
//   - Routing. Monitor traffic is consistent-hash routed on trace ID
//     (internal/gateway/ring), so each trace's TraceTracker window
//     accumulates on exactly one replica; stateless detect traffic
//     load-balances to the least-outstanding routable replica. Detect
//     requests may opt into affinity with ?trace= or X-Trace-Key.
//   - Health. An active checker probes every replica's /readyz; consecutive
//     failures eject it from rotation, consecutive successes re-admit it
//     (hysteresis in both directions, so a flapping replica doesn't thrash
//     the ring).
//   - Tail latency. Forwards hedge through resilience.Hedged after a
//     p99-derived delay: the straggler is raced by a copy on the next
//     replica in preference order and the loser is cancelled. Hedges and
//     retries share one retry Budget, and each replica sits behind its own
//     circuit Breaker, so neither can amplify an outage.
//   - Backpressure. A replica's 429 Retry-After is honored as a per-replica
//     cooldown (the gateway reroutes instead of hammering it), and when no
//     replica is routable at all the gateway sheds with its own 429 before
//     forwarding — admission control at the fleet boundary.
//
// Everything rides the caller's request context; the package is declared a
// request path for reprolint's ctxflow analyzer.
//
//repro:requestpath
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gateway/ring"
	"repro/internal/metrics"
	"repro/internal/resilience"
)

// maxBody caps request and relayed response bodies the gateway must
// materialize (hedging needs a replayable request body and a fully-consumed
// response). Matches internal/core's JSON body cap.
const maxBody = 32 << 20

// Config tunes the gateway. Replicas is required; every other zero value
// gets a serving-grade default from fill.
type Config struct {
	// Replicas are the anomalyd base URLs ("http://host:port"). The
	// consistent-hash layout is a pure function of this set.
	Replicas []string
	// VirtualNodes per replica on the hash ring (default
	// ring.DefaultVirtualNodes).
	VirtualNodes int
	// Client is the forwarding HTTP client (default http.DefaultClient).
	Client *http.Client

	// HealthInterval is the /readyz probe period (default 1s);
	// HealthTimeout bounds one probe (default min(HealthInterval, 500ms)).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// EjectAfter consecutive probe failures take a replica out of rotation;
	// ReadmitAfter consecutive successes bring it back (defaults 2 and 2 —
	// hysteresis both ways).
	EjectAfter   int
	ReadmitAfter int

	// MaxAttempts is the number of distinct replicas one request may be
	// forwarded to before the gateway gives up (default 3, clamped to the
	// replica count).
	MaxAttempts int
	// HedgeDelay fixes the hedge trigger. Zero derives it per request from
	// the gateway's recent forward-latency p99, clamped to
	// [HedgeMin, HedgeMax] (defaults 5ms and 250ms) — so roughly the
	// slowest 1% of forwards grow a hedge and the rest never pay for one.
	HedgeDelay time.Duration
	HedgeMin   time.Duration
	HedgeMax   time.Duration

	// BudgetCapacity/BudgetRatio shape the shared retry+hedge token bucket
	// (resilience.NewBudget; defaults 32 tokens, ratio 0.1).
	BudgetCapacity float64
	BudgetRatio    float64
	// BreakerThreshold consecutive forward failures open a replica's
	// circuit; BreakerCooldown later one probe is let through (defaults
	// 5 and 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// CooldownDefault is the 429 cooldown applied when a shedding replica
	// sent no Retry-After hint (default 500ms).
	CooldownDefault time.Duration
}

func (c *Config) fill() {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 500 * time.Millisecond
		if c.HealthTimeout > c.HealthInterval {
			c.HealthTimeout = c.HealthInterval
		}
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 2
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 5 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 250 * time.Millisecond
	}
	if c.BudgetCapacity <= 0 {
		c.BudgetCapacity = 32
	}
	if c.BudgetRatio <= 0 {
		c.BudgetRatio = 0.1
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.CooldownDefault <= 0 {
		c.CooldownDefault = 500 * time.Millisecond
	}
}

// replica is one anomalyd behind the gateway: its routing state (health,
// cooldown, breaker, outstanding count) and telemetry counters.
type replica struct {
	url     string
	breaker *resilience.Breaker

	healthy     atomic.Bool
	coolUntil   atomic.Int64 // unixnano; 429 Retry-After honored until then
	outstanding atomic.Int64

	forwarded    atomic.Int64
	failures     atomic.Int64
	ejections    atomic.Int64
	monitorLines atomic.Int64

	// probe counters, touched only by this replica's health loop
	probeFails int
	probeOKs   int
}

// routable reports whether the gateway may send this replica new work:
// admitted by the health checker and not inside a 429 cooldown. The circuit
// breaker is consulted at attempt time (Allow mutates half-open state), not
// here.
func (r *replica) routable(now time.Time) bool {
	return r.healthy.Load() && now.UnixNano() >= r.coolUntil.Load()
}

// cool starts (or extends) the replica's 429 cooldown.
func (r *replica) cool(until time.Time) {
	n := until.UnixNano()
	for {
		cur := r.coolUntil.Load()
		if cur >= n || r.coolUntil.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Gateway is the reverse-routing tier. Create with New, serve it like any
// http.Handler, Close it to stop the health checker.
type Gateway struct {
	cfg      Config
	ctx      context.Context // root for health probes; from New's caller
	cancel   context.CancelFunc
	ring     *ring.Ring
	replicas map[string]*replica
	names    []string // sorted
	budget   *resilience.Budget
	mux      *http.ServeMux

	lat latencyRing // forward latency samples, feeds the hedge delay

	requests     atomic.Int64
	shed         atomic.Int64
	retries      atomic.Int64
	hedges       atomic.Int64
	hedgeWins    atomic.Int64
	hedgeDenied  atomic.Int64
	budgetDenied atomic.Int64
	breakerOpen  atomic.Int64
	rerouted     atomic.Int64 // monitor lines moved to a successor mid-stream
	lost         atomic.Int64 // monitor lines no surviving replica accepted

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds a gateway over cfg.Replicas and starts its health checker. ctx
// is the root the checker's probe contexts derive from — pass the process
// context; cancelling it (or calling Close) stops the probes.
func New(ctx context.Context, cfg Config) (*Gateway, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("gateway: no replicas configured")
	}
	cfg.fill()
	g := &Gateway{
		cfg:      cfg,
		ring:     ring.New(cfg.Replicas, cfg.VirtualNodes),
		replicas: make(map[string]*replica),
		budget:   resilience.NewBudget(cfg.BudgetCapacity, cfg.BudgetRatio),
		mux:      http.NewServeMux(),
		closed:   make(chan struct{}),
	}
	g.ctx, g.cancel = context.WithCancel(ctx)
	g.names = g.ring.Members()
	for _, u := range g.names {
		rep := &replica{url: u, breaker: resilience.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)}
		rep.healthy.Store(true) // optimistic: serve before the first probe lands
		g.replicas[u] = rep
	}
	g.mux.HandleFunc("/v1/detect", g.handleForward)
	g.mux.HandleFunc("/v1/detect/batch", g.handleForward)
	g.mux.HandleFunc("/v1/monitor", g.handleMonitor)
	g.mux.HandleFunc("/v1/models", g.handleModels)
	g.mux.HandleFunc("/v1/stats/reset", g.handleStatsReset)
	g.mux.HandleFunc("/v1/alerts", g.handleAlerts)
	g.mux.HandleFunc("/healthz", g.handleHealth)
	g.mux.HandleFunc("/readyz", g.handleReady)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	for _, rep := range g.replicas {
		g.wg.Add(1)
		go g.healthLoop(rep)
	}
	return g, nil
}

// Close stops the health checker. In-flight proxied requests are owned by
// their own request contexts and finish (or cancel) on their own.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		close(g.closed)
		g.cancel()
	})
	g.wg.Wait()
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// candidates returns the replicas a request may be forwarded to, in
// preference order. A trace key pins the order to the ring (affinity +
// deterministic failover); without one, routable replicas sort by
// outstanding work (ties by name, for determinism). Either way, replicas
// whose circuit is open sink to the back of the list: a just-crashed replica
// has zero outstanding work and would otherwise look like the *best* target
// until the health checker ejects it. They stay in the list — retry and
// hedge attempts reaching them drive the breaker's half-open probing — but
// nobody's first choice.
func (g *Gateway) candidates(key string) []*replica {
	now := time.Now()
	out := make([]*replica, 0, len(g.names))
	if key != "" {
		for _, name := range g.ring.Lookup(key) {
			if rep := g.replicas[name]; rep.routable(now) {
				out = append(out, rep)
			}
		}
		return partitionOpen(out)
	}
	for _, name := range g.names {
		if rep := g.replicas[name]; rep.routable(now) {
			out = append(out, rep)
		}
	}
	sort.Slice(out, func(i, k int) bool {
		oi, ok := out[i].outstanding.Load(), out[k].outstanding.Load()
		if oi != ok {
			return oi < ok
		}
		return out[i].url < out[k].url
	})
	return partitionOpen(out)
}

// partitionOpen stably moves replicas with an open circuit to the back.
func partitionOpen(reps []*replica) []*replica {
	open := 0
	for _, rep := range reps {
		if rep.breaker.State() == resilience.Open {
			open++
		}
	}
	if open == 0 || open == len(reps) {
		return reps
	}
	out := make([]*replica, 0, len(reps))
	for _, rep := range reps {
		if rep.breaker.State() != resilience.Open {
			out = append(out, rep)
		}
	}
	for _, rep := range reps {
		if rep.breaker.State() == resilience.Open {
			out = append(out, rep)
		}
	}
	return out
}

// traceKey extracts a detect request's explicit affinity key: ?trace= or the
// X-Trace-Key header. Stateless requests return "" and load-balance.
func traceKey(r *http.Request) string {
	if v := r.URL.Query().Get("trace"); v != "" {
		if id, err := strconv.Atoi(v); err == nil {
			return ring.TraceKey(id)
		}
		return "trace:" + v
	}
	if v := r.Header.Get("X-Trace-Key"); v != "" {
		return "trace:" + v
	}
	return ""
}

// proxyResponse is one fully-materialized replica answer — materialized so a
// hedged loser can be cancelled without tearing a body out from under the
// relay (see resilience.Hedged's contract).
type proxyResponse struct {
	status  int
	header  http.Header
	body    []byte
	replica string
}

// handleForward proxies /v1/detect and /v1/detect/batch: pick candidates,
// forward with hedging, rotate to the next preference on retryable failure,
// shed at the boundary when nothing is routable.
func (g *Gateway) handleForward(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		http.Error(w, "gateway: reading request body: "+err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	cands := g.candidates(traceKey(r))
	if len(cands) == 0 {
		g.shedNow(w)
		return
	}
	out, err := g.forward(r.Context(), cands, r.Method, r.URL.RequestURI(), r.Header.Get("Content-Type"), body)
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, resilience.ErrCircuitOpen) {
			status = http.StatusServiceUnavailable
		}
		if r.Context().Err() != nil {
			// The client went away; the status is a formality.
			status = http.StatusServiceUnavailable
		}
		http.Error(w, "gateway: forward failed: "+err.Error(), status)
		return
	}
	relay(w, out)
}

// forward tries candidates in order: the first attempt is hedged against the
// next preference, later attempts (budget-gated) rotate onward. It returns
// the first non-retryable response, or the last outcome when everything
// failed.
func (g *Gateway) forward(ctx context.Context, cands []*replica, method, uri, contentType string, body []byte) (*proxyResponse, error) {
	attempts := g.cfg.MaxAttempts
	if attempts > len(cands) {
		attempts = len(cands)
	}
	// Every forwarded request deposits into the shared retry+hedge budget
	// (resilience.Client.Do does the same per request): healthy traffic keeps
	// the bucket full, an outage dries deposits up and self-limits the
	// retry+hedge rate to BudgetRatio× the request rate.
	g.budget.Attempt()
	var lastResp *proxyResponse
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if ctx.Err() != nil {
				break
			}
			if !g.budget.Withdraw() {
				g.budgetDenied.Add(1)
				break
			}
			g.retries.Add(1)
		}
		rep := cands[i]
		var out *proxyResponse
		var err error
		if i+1 < len(cands) {
			next := cands[i+1]
			var hr resilience.HedgeResult
			out, hr, err = resilience.Hedged(ctx, g.hedgeDelay(), g.budget,
				func(ctx context.Context) (*proxyResponse, error) {
					return g.forwardOnce(ctx, rep, method, uri, contentType, body)
				},
				func(ctx context.Context) (*proxyResponse, error) {
					return g.forwardOnce(ctx, next, method, uri, contentType, body)
				})
			if hr.Launched {
				g.hedges.Add(1)
			}
			if hr.WonByHedge {
				g.hedgeWins.Add(1)
			}
			if hr.Denied {
				g.hedgeDenied.Add(1)
			}
		} else {
			out, err = g.forwardOnce(ctx, rep, method, uri, contentType, body)
		}
		if err == nil && !resilience.RetryableStatus(out.status) {
			return out, nil
		}
		lastResp, lastErr = out, err
	}
	if lastResp != nil {
		// A retryable status from the last replica tried (e.g. every
		// candidate shed with 429) relays as-is: its Retry-After is the
		// fleet's honest drain estimate.
		return lastResp, nil
	}
	return nil, lastErr
}

// forwardOnce sends one attempt to one replica: breaker-gated, outstanding-
// counted, response fully materialized, 429 hints turned into cooldowns, and
// the forward latency sampled into the hedge-delay window.
func (g *Gateway) forwardOnce(ctx context.Context, rep *replica, method, uri, contentType string, body []byte) (*proxyResponse, error) {
	if !rep.breaker.Allow() {
		g.breakerOpen.Add(1)
		return nil, resilience.ErrCircuitOpen
	}
	rep.outstanding.Add(1)
	defer rep.outstanding.Add(-1)
	req, err := http.NewRequestWithContext(ctx, method, rep.url+uri, bytes.NewReader(body))
	if err != nil {
		rep.breaker.Record(false)
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	start := time.Now()
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		rep.breaker.Record(false)
		rep.failures.Add(1)
		return nil, err
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	resp.Body.Close()
	if err != nil {
		rep.breaker.Record(false)
		rep.failures.Add(1)
		return nil, err
	}
	ok := resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests
	rep.breaker.Record(ok)
	if resp.StatusCode == http.StatusTooManyRequests {
		hint := resilience.RetryAfterHint(resp)
		if hint <= 0 {
			hint = g.cfg.CooldownDefault
		}
		rep.cool(time.Now().Add(hint))
	}
	if ok {
		rep.forwarded.Add(1)
		g.lat.add(float64(time.Since(start)) / float64(time.Millisecond))
	} else {
		rep.failures.Add(1)
	}
	return &proxyResponse{status: resp.StatusCode, header: resp.Header, body: respBody, replica: rep.url}, nil
}

// hedgeDelay resolves when a slow forward grows its hedge: the configured
// fixed delay, or the recent forward p99 clamped to [HedgeMin, HedgeMax].
// Before any samples exist it sits at HedgeMax — hedge conservatively until
// the gateway knows what "slow" means here.
func (g *Gateway) hedgeDelay() time.Duration {
	if g.cfg.HedgeDelay > 0 {
		return g.cfg.HedgeDelay
	}
	p99 := g.lat.p99()
	d := time.Duration(p99 * float64(time.Millisecond))
	if d < g.cfg.HedgeMin {
		d = g.cfg.HedgeMin
	}
	if p99 <= 0 || d > g.cfg.HedgeMax {
		d = g.cfg.HedgeMax
	}
	return d
}

// shedNow is gateway-level admission control: nothing is routable, so refuse
// at the boundary with the fleet's soonest-recovery estimate rather than
// queueing on a replica that already said no.
func (g *Gateway) shedNow(w http.ResponseWriter) {
	g.shed.Add(1)
	retry := g.cfg.HealthInterval
	now := time.Now().UnixNano()
	for _, rep := range g.replicas {
		if until := rep.coolUntil.Load(); until > now {
			if d := time.Duration(until - now); d < retry {
				retry = d
			}
		}
	}
	secs := int64((retry + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.Header().Set("Retry-After-Ms", strconv.FormatInt(retry.Milliseconds(), 10))
	http.Error(w, "gateway: no routable replica (all ejected, cooling, or saturated)", http.StatusTooManyRequests)
}

// relay writes a replica's materialized response through, preserving the
// overload-contract headers and stamping which replica answered.
func relay(w http.ResponseWriter, out *proxyResponse) {
	for _, h := range []string{"Content-Type", "Retry-After", "Retry-After-Ms", "X-Replica"} {
		if v := out.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Gateway-Replica", out.replica)
	w.WriteHeader(out.status)
	w.Write(out.body)
}

// ModelsAggregate is the gateway's GET /v1/models body: the fleet view
// merged into the single-node shape (so existing clients and the load lab
// decode it unchanged) plus the per-replica breakdown.
type ModelsAggregate struct {
	core.ModelsResponse
	// Replicas maps replica URL to its own /v1/models answer; ejected or
	// unreachable replicas appear in Errors instead.
	Replicas map[string]core.ModelsResponse `json:"replicas,omitempty"`
	Errors   map[string]string              `json:"replica_errors,omitempty"`
}

// handleModels is GET /v1/models: fan out to every replica and merge.
// Counters sum; queue gauges sum (the fleet's total backlog) except
// MaxQueueLen and the latency percentiles, which take the per-replica max —
// a conservative fleet tail. Zero reachable replicas is a 502.
func (g *Gateway) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	agg := ModelsAggregate{Replicas: make(map[string]core.ModelsResponse), Errors: make(map[string]string)}
	byName := map[string]*core.ModelInfo{}
	var order []string
	for _, name := range g.names {
		rep := g.replicas[name]
		var mr core.ModelsResponse
		if err := g.getJSON(r.Context(), rep.url+"/v1/models", &mr); err != nil {
			agg.Errors[name] = err.Error()
			continue
		}
		agg.Replicas[name] = mr
		agg.SSE.Subscribers += mr.SSE.Subscribers
		agg.SSE.Dropped += mr.SSE.Dropped
		for _, mi := range mr.Models {
			tgt, seen := byName[mi.Name]
			if !seen {
				cp := mi
				byName[mi.Name] = &cp
				order = append(order, mi.Name)
				continue
			}
			mergeModelInfo(tgt, mi)
		}
	}
	if len(agg.Replicas) == 0 {
		http.Error(w, "gateway: no replica answered /v1/models", http.StatusBadGateway)
		return
	}
	sort.Strings(order)
	for _, name := range order {
		agg.Models = append(agg.Models, *byName[name])
	}
	writeJSON(w, agg)
}

// mergeModelInfo folds one replica's view of a model into the aggregate row.
func mergeModelInfo(tgt *core.ModelInfo, mi core.ModelInfo) {
	tgt.ActiveTraces += mi.ActiveTraces
	tgt.QueueDepth += mi.QueueDepth
	tgt.ShedQueueDepth += mi.ShedQueueDepth
	a, b := &tgt.Stats, mi.Stats
	a.QueueLen += b.QueueLen
	if b.MaxQueueLen > a.MaxQueueLen {
		a.MaxQueueLen = b.MaxQueueLen
	}
	a.Requests += b.Requests
	a.Sentences += b.Sentences
	a.Batches += b.Batches
	a.DedupSaved += b.DedupSaved
	a.Shed += b.Shed
	a.Expired += b.Expired
	a.Degraded += b.Degraded
	a.BrownoutActive = a.BrownoutActive || b.BrownoutActive
	a.CascadeEvaluated += b.CascadeEvaluated
	a.CascadeShort += b.CascadeShort
	a.CascadePassed += b.CascadePassed
	if a.CascadeEvaluated > 0 {
		a.CascadePassFraction = float64(a.CascadePassed) / float64(a.CascadeEvaluated)
	}
	if a.Batches > 0 {
		a.BatchOccupancy = float64(a.Sentences) / float64(a.Batches)
	}
	a.QueueWaitP50Ms = maxf(a.QueueWaitP50Ms, b.QueueWaitP50Ms)
	a.QueueWaitP99Ms = maxf(a.QueueWaitP99Ms, b.QueueWaitP99Ms)
	a.ComputeP50Ms = maxf(a.ComputeP50Ms, b.ComputeP50Ms)
	a.ComputeP99Ms = maxf(a.ComputeP99Ms, b.ComputeP99Ms)
}

func maxf(a, b float64) float64 {
	if b > a {
		return b
	}
	return a
}

// handleStatsReset is POST /v1/stats/reset: fan out to every replica. The
// load lab resets between scenarios; a fleet replay must reset the whole
// fleet. Succeeds (204) when at least one replica reset — a killed replica
// mid-drill must not fail the survivors' replay.
func (g *Gateway) handleStatsReset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	okCount := 0
	var lastErr string
	for _, name := range g.names {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
			g.replicas[name].url+"/v1/stats/reset"+queryString(r), nil)
		if err != nil {
			lastErr = err.Error()
			continue
		}
		resp, err := g.cfg.Client.Do(req)
		if err != nil {
			lastErr = err.Error()
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			lastErr = fmt.Sprintf("%s: status %d", name, resp.StatusCode)
			continue
		}
		okCount++
	}
	if okCount == 0 {
		http.Error(w, "gateway: stats reset reached no replica: "+lastErr, http.StatusBadGateway)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func queryString(r *http.Request) string {
	if r.URL.RawQuery == "" {
		return ""
	}
	return "?" + r.URL.RawQuery
}

// getJSON fetches url into v under the request's context.
func (g *Gateway) getJSON(ctx context.Context, url string, v interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(v)
}

// HealthResponse is the gateway's /healthz body (liveness: the gateway
// itself is up; replica state is /readyz's concern).
type HealthResponse struct {
	Status   string `json:"status"`
	Replicas int    `json:"replicas"`
	Healthy  int    `json:"healthy"`
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok", Replicas: len(g.names)}
	for _, rep := range g.replicas {
		if rep.healthy.Load() {
			resp.Healthy++
		}
	}
	writeJSON(w, resp)
}

// ReplicaStatus is one replica's routing state in the gateway's /readyz.
type ReplicaStatus struct {
	URL         string `json:"url"`
	Healthy     bool   `json:"healthy"`
	Cooling     bool   `json:"cooling"`
	Breaker     string `json:"breaker"`
	Outstanding int64  `json:"outstanding"`
	Forwarded   int64  `json:"forwarded"`
	Failures    int64  `json:"failures"`
	Ejections   int64  `json:"ejections"`
}

// ReadyResponse is the gateway's /readyz body: ready while at least one
// replica is routable.
type ReadyResponse struct {
	Ready    bool            `json:"ready"`
	Replicas []ReplicaStatus `json:"replicas"`
}

func (g *Gateway) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	now := time.Now()
	resp := ReadyResponse{}
	for _, name := range g.names {
		rep := g.replicas[name]
		st := ReplicaStatus{
			URL:         name,
			Healthy:     rep.healthy.Load(),
			Cooling:     now.UnixNano() < rep.coolUntil.Load(),
			Breaker:     rep.breaker.State().String(),
			Outstanding: rep.outstanding.Load(),
			Forwarded:   rep.forwarded.Load(),
			Failures:    rep.failures.Load(),
			Ejections:   rep.ejections.Load(),
		}
		if rep.routable(now) {
			resp.Ready = true
		}
		resp.Replicas = append(resp.Replicas, st)
	}
	w.Header().Set("Content-Type", "application/json")
	if !resp.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp)
}

// handleMetrics is GET /metrics: the gateway's own Prometheus exposition —
// routing, hedging, shedding, and per-replica health/traffic.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var p metrics.PromWriter
	p.Gauge("repro_gateway_replicas", "configured replicas", float64(len(g.names)))
	p.Counter("repro_gateway_requests_total", "requests accepted for forwarding", float64(g.requests.Load()))
	p.Counter("repro_gateway_shed_total", "requests shed at the gateway boundary (no routable replica)", float64(g.shed.Load()))
	p.Counter("repro_gateway_retries_total", "forward attempts beyond each request's first", float64(g.retries.Load()))
	p.Counter("repro_gateway_hedges_total", "hedge attempts launched", float64(g.hedges.Load()))
	p.Counter("repro_gateway_hedge_wins_total", "requests answered by the hedge, not the primary", float64(g.hedgeWins.Load()))
	p.Counter("repro_gateway_hedge_denied_total", "hedges refused by the retry budget", float64(g.hedgeDenied.Load()))
	p.Counter("repro_gateway_budget_denied_total", "retries refused by the retry budget", float64(g.budgetDenied.Load()))
	p.Counter("repro_gateway_breaker_open_total", "attempts refused by an open replica breaker", float64(g.breakerOpen.Load()))
	p.Counter("repro_gateway_monitor_rerouted_total", "monitor lines re-routed to a successor after their replica failed mid-stream", float64(g.rerouted.Load()))
	p.Counter("repro_gateway_monitor_lost_total", "monitor lines no surviving replica accepted", float64(g.lost.Load()))
	p.Gauge("repro_gateway_retry_budget_tokens", "retry budget balance", g.budget.Tokens())
	p.Gauge("repro_gateway_forward_latency_ms", "successful forward latency percentiles over the recent window",
		g.lat.quantile(0.50), "quantile", "0.5")
	p.Gauge("repro_gateway_forward_latency_ms", "successful forward latency percentiles over the recent window",
		g.lat.quantile(0.99), "quantile", "0.99")
	p.Gauge("repro_gateway_hedge_delay_ms", "current hedge trigger delay", float64(g.hedgeDelay())/float64(time.Millisecond))
	now := time.Now()
	for _, name := range g.names {
		rep := g.replicas[name]
		p.Gauge("repro_gateway_replica_healthy", "1 while the health checker admits the replica", boolGauge(rep.healthy.Load()), "replica", name)
		p.Gauge("repro_gateway_replica_cooling", "1 while a 429 Retry-After cooldown holds", boolGauge(now.UnixNano() < rep.coolUntil.Load()), "replica", name)
		p.Gauge("repro_gateway_replica_outstanding", "in-flight forwards", float64(rep.outstanding.Load()), "replica", name)
		p.Counter("repro_gateway_forwarded_total", "successful forwards", float64(rep.forwarded.Load()), "replica", name)
		p.Counter("repro_gateway_replica_failures_total", "failed forwards (transport, 5xx, or 429)", float64(rep.failures.Load()), "replica", name)
		p.Counter("repro_gateway_ejections_total", "health-check ejections", float64(rep.ejections.Load()), "replica", name)
		p.Counter("repro_gateway_monitor_lines_total", "monitor lines routed to the replica", float64(rep.monitorLines.Load()), "replica", name)
	}
	w.Header().Set("Content-Type", metrics.ContentType)
	w.Write(p.Bytes())
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// latencyRing is a bounded mutex-guarded sample window feeding the
// p99-derived hedge delay and the /metrics latency gauges.
type latencyRing struct {
	mu  sync.Mutex
	buf []float64
	n   int
}

const latencyWindow = 1024

func (l *latencyRing) add(ms float64) {
	l.mu.Lock()
	if l.buf == nil {
		l.buf = make([]float64, 0, latencyWindow)
	}
	if len(l.buf) < latencyWindow {
		l.buf = append(l.buf, ms)
	} else {
		l.buf[l.n%latencyWindow] = ms
	}
	l.n++
	l.mu.Unlock()
}

func (l *latencyRing) quantile(q float64) float64 {
	l.mu.Lock()
	snap := make([]float64, len(l.buf))
	copy(snap, l.buf)
	l.mu.Unlock()
	return metrics.Percentile(snap, q)
}

func (l *latencyRing) p99() float64 { return l.quantile(0.99) }

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
