package faults

import (
	"testing"
	"time"
)

// FuzzParse drives the -faults flag grammar with arbitrary specs. A spec
// either errors or yields a config whose filled form satisfies the
// invariants the injector assumes (positive periods, sane status, ordered
// window) — decide() divides by Every and trusts these without rechecking.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"seed=7,every=5,kinds=latency+error,latency=200ms,stall=1s,status=503,window=5s:20s,path=/v1/",
		"every=1",
		"kinds=reset",
		"kinds=latency+latency+stall",
		"window=0s:0s",
		"window=1h:90m",
		"seed=18446744073709551615",
		"every=-3",
		"latency=xx",
		"seed=,",
		"=",
		",",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := Parse(spec)
		if err != nil {
			return
		}
		cfg.fill()
		if cfg.Every < 1 {
			t.Fatalf("parsed spec %q filled to Every=%d", spec, cfg.Every)
		}
		if cfg.Latency <= 0 || cfg.Stall <= 0 {
			t.Fatalf("parsed spec %q filled to latency=%v stall=%v", spec, cfg.Latency, cfg.Stall)
		}
		if cfg.ErrorStatus < 400 || cfg.ErrorStatus > 599 {
			t.Fatalf("parsed spec %q filled to status=%d", spec, cfg.ErrorStatus)
		}
		if cfg.Window.End != 0 && cfg.Window.End <= cfg.Window.Start {
			t.Fatalf("parsed spec %q has inverted window %v", spec, cfg.Window)
		}
		if len(cfg.Kinds) == 0 {
			t.Fatalf("parsed spec %q filled to no kinds", spec)
		}
		// The injector built from an accepted spec must schedule
		// deterministically: two injectors from the same config decide the
		// same fates.
		a, b := New(cfg), New(cfg)
		a.now = func() time.Time { return time.Unix(10, 0) }
		b.now = a.now
		a.Arm()
		b.Arm()
		for i := 0; i < 16; i++ {
			ka, oka := a.decide("/v1/detect")
			kb, okb := b.decide("/v1/detect")
			if ka != kb || oka != okb {
				t.Fatalf("spec %q: decision %d diverged: (%v,%v) vs (%v,%v)", spec, i, ka, oka, kb, okb)
			}
		}
	})
}
