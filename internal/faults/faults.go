// Package faults is a deterministic fault-injection middleware for the
// serving tier: it wraps an http.Handler and perturbs a seeded, counted
// subset of requests with the failure modes a replica actually exhibits
// under stress — latency spikes, error bursts, connection resets, and
// stalls. The load lab's chaos scenarios wrap the in-process server with it;
// `anomalyd -faults` wraps a live daemon for end-to-end drills.
//
// Determinism is the point: fault assignment is counter-based (every Nth
// matching request inside the armed window), and the kind of the k-th fault
// comes from a sequence precomputed from the seed — so a chaos replay
// perturbs the same requests with the same faults every run, and a recorded
// chaos baseline is diffable in CI.
package faults

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/tensor"
)

// Kind is one failure mode.
type Kind string

const (
	// Latency delays the request by Config.Latency, then serves it
	// normally — the slow-replica case retries and hedging must survive.
	Latency Kind = "latency"
	// Error answers Config.ErrorStatus (default 503) without invoking the
	// wrapped handler — the crashed-worker / failing-dependency case.
	Error Kind = "error"
	// Reset aborts the connection mid-request (http.ErrAbortHandler), so
	// the client sees a transport error, not an HTTP status.
	Reset Kind = "reset"
	// Stall holds the request for Config.Stall before answering — long
	// enough to trip client deadlines, unlike a Latency blip.
	Stall Kind = "stall"
)

// Kinds lists every failure mode, in the order specs accept them.
var Kinds = []Kind{Latency, Error, Reset, Stall}

// Window bounds when the injector is active, relative to Arm(). The zero
// value means always armed.
type Window struct {
	Start time.Duration // faults begin this long after Arm
	End   time.Duration // and stop after this (0 = never stop)
}

// Config describes a fault campaign.
type Config struct {
	// Seed drives the kind sequence; same seed, same faults.
	Seed uint64
	// Every injects a fault into every Nth matching request (default 5;
	// 1 = every request).
	Every int
	// Kinds is the fault palette drawn from (default: all of Kinds).
	Kinds []Kind
	// Latency is the added delay for Latency faults (default 150ms).
	Latency time.Duration
	// Stall is the hold time for Stall faults (default 2s).
	Stall time.Duration
	// ErrorStatus is the status Error faults answer (default 503).
	ErrorStatus int
	// Window bounds the campaign relative to Arm (zero = always on).
	Window Window
	// Path restricts injection to request paths with this prefix
	// ("" = all paths). Health and stats probes typically stay clean so the
	// lab can observe the wreckage.
	Path string
}

func (c *Config) fill() {
	if c.Every <= 0 {
		c.Every = 5
	}
	if len(c.Kinds) == 0 {
		c.Kinds = append([]Kind(nil), Kinds...)
	}
	if c.Latency <= 0 {
		c.Latency = 150 * time.Millisecond
	}
	if c.Stall <= 0 {
		c.Stall = 2 * time.Second
	}
	if c.ErrorStatus == 0 {
		c.ErrorStatus = http.StatusServiceUnavailable
	}
}

// Injector wraps handlers with the configured fault campaign. Safe for
// concurrent use.
type Injector struct {
	cfg Config

	// now is the injector's clock, injectable so tests can drive the
	// campaign window deterministically. Production uses the wall clock:
	// `anomalyd -faults` windows are real-time by definition, while the
	// request-count schedule (Every, kinds) stays purely seed-driven.
	now func() time.Time

	mu      sync.Mutex
	rng     *tensor.RNG
	armedAt time.Time
	armed   bool
	seen    int64 // matching requests observed
	counts  map[Kind]int64
}

// New builds an injector; call Arm to start its window, Wrap to install it.
func New(cfg Config) *Injector {
	cfg.fill()
	return &Injector{
		cfg: cfg,
		//lint:ignore determinism injectable clock's production default; the fault window is real-time, tests inject a fake
		now:    time.Now,
		rng:    tensor.NewRNG(cfg.Seed ^ 0xfa017),
		counts: make(map[Kind]int64),
	}
}

// Arm starts (or restarts) the injection window and zeroes the request
// counter and per-kind counts, so repeated replays against one process see
// identical fault schedules.
func (i *Injector) Arm() {
	i.mu.Lock()
	i.armed = true
	i.armedAt = i.now()
	i.seen = 0
	i.counts = make(map[Kind]int64)
	i.rng = tensor.NewRNG(i.cfg.Seed ^ 0xfa017)
	i.mu.Unlock()
}

// Disarm stops injection without touching the counters.
func (i *Injector) Disarm() {
	i.mu.Lock()
	i.armed = false
	i.mu.Unlock()
}

// Counts returns how many faults of each kind have fired since Arm.
func (i *Injector) Counts() map[Kind]int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[Kind]int64, len(i.counts))
	for k, v := range i.counts {
		out[k] = v
	}
	return out
}

// Total returns the total faults fired since Arm.
func (i *Injector) Total() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	var n int64
	for _, v := range i.counts {
		n += v
	}
	return n
}

// decide classifies one request: which fault to apply, if any. The counter
// and kind draw advance only for matching, in-window requests, keeping the
// schedule independent of unrelated traffic.
func (i *Injector) decide(path string) (Kind, bool) {
	if i.cfg.Path != "" && !strings.HasPrefix(path, i.cfg.Path) {
		return "", false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.armed {
		return "", false
	}
	since := i.now().Sub(i.armedAt)
	if since < i.cfg.Window.Start {
		return "", false
	}
	if end := i.cfg.Window.End; end > 0 && since >= end {
		return "", false
	}
	i.seen++
	if i.seen%int64(i.cfg.Every) != 0 {
		return "", false
	}
	k := i.cfg.Kinds[i.rng.Intn(len(i.cfg.Kinds))]
	i.counts[k]++
	return k, true
}

// Wrap installs the campaign around next.
func (i *Injector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		kind, fire := i.decide(r.URL.Path)
		if !fire {
			next.ServeHTTP(w, r)
			return
		}
		switch kind {
		case Latency:
			select {
			case <-time.After(i.cfg.Latency):
			case <-r.Context().Done():
			}
			next.ServeHTTP(w, r)
		case Error:
			http.Error(w, "faults: injected error", i.cfg.ErrorStatus)
		case Reset:
			// The canonical way to kill the connection from inside a
			// handler: the server recovers this sentinel panic and aborts
			// without logging a stack.
			panic(http.ErrAbortHandler)
		case Stall:
			select {
			case <-time.After(i.cfg.Stall):
			case <-r.Context().Done():
			}
			http.Error(w, "faults: stalled", http.StatusServiceUnavailable)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// Parse builds a Config from a comma-separated spec, the `anomalyd -faults`
// flag grammar:
//
//	seed=7,every=5,kinds=latency+error,latency=200ms,stall=1s,status=503,window=5s:20s,path=/v1/
//
// Every key is optional; an empty spec is an error (pass nothing to disable
// injection instead).
func Parse(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, fmt.Errorf("faults: empty spec")
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return cfg, fmt.Errorf("faults: malformed field %q", part)
		}
		key, val := kv[0], kv[1]
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("faults: bad seed %q", val)
			}
			cfg.Seed = n
		case "every":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return cfg, fmt.Errorf("faults: bad every %q", val)
			}
			cfg.Every = n
		case "kinds":
			for _, name := range strings.Split(val, "+") {
				k := Kind(name)
				valid := false
				for _, known := range Kinds {
					if k == known {
						valid = true
						break
					}
				}
				if !valid {
					return cfg, fmt.Errorf("faults: unknown kind %q (have %s)", name, kindNames())
				}
				cfg.Kinds = append(cfg.Kinds, k)
			}
		case "latency":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("faults: bad latency %q", val)
			}
			cfg.Latency = d
		case "stall":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("faults: bad stall %q", val)
			}
			cfg.Stall = d
		case "status":
			n, err := strconv.Atoi(val)
			if err != nil || n < 400 || n > 599 {
				return cfg, fmt.Errorf("faults: bad status %q", val)
			}
			cfg.ErrorStatus = n
		case "window":
			se := strings.SplitN(val, ":", 2)
			if len(se) != 2 {
				return cfg, fmt.Errorf("faults: bad window %q, want start:end", val)
			}
			start, err := time.ParseDuration(se[0])
			if err != nil || start < 0 {
				return cfg, fmt.Errorf("faults: bad window start %q", se[0])
			}
			end, err := time.ParseDuration(se[1])
			if err != nil || (end != 0 && end <= start) {
				return cfg, fmt.Errorf("faults: bad window end %q", se[1])
			}
			cfg.Window = Window{Start: start, End: end}
		case "path":
			cfg.Path = val
		default:
			return cfg, fmt.Errorf("faults: unknown key %q", key)
		}
	}
	return cfg, nil
}

func kindNames() string {
	names := make([]string, len(Kinds))
	for i, k := range Kinds {
		names[i] = string(k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
