package faults

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
}

// TestDeterministicSchedule pins the core guarantee: same seed, same faults
// on the same requests — across separate injector instances and across
// re-arms of one instance.
func TestDeterministicSchedule(t *testing.T) {
	run := func(inj *Injector) []string {
		ts := httptest.NewServer(inj.Wrap(okHandler()))
		defer ts.Close()
		inj.Arm()
		var outcomes []string
		for k := 0; k < 40; k++ {
			resp, err := ts.Client().Get(ts.URL + "/v1/detect")
			if err != nil {
				outcomes = append(outcomes, "reset")
				continue
			}
			resp.Body.Close()
			outcomes = append(outcomes, resp.Status)
		}
		return outcomes
	}
	cfg := Config{Seed: 11, Every: 4, Kinds: []Kind{Error, Reset}, ErrorStatus: 503}
	a := run(New(cfg))
	b := run(New(cfg))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at request %d: %q vs %q", i, a[i], b[i])
		}
	}
	faulted := 0
	for _, o := range a {
		if o != "200 OK" {
			faulted++
		}
	}
	if faulted != 40/4 {
		t.Fatalf("faulted %d of 40, want every 4th = 10", faulted)
	}

	// Re-arming one injector replays the same schedule.
	inj := New(cfg)
	c := run(inj)
	d := run(inj) // run() re-arms
	for i := range c {
		if c[i] != d[i] {
			t.Fatalf("re-armed schedule diverges at request %d", i)
		}
	}
}

// TestKindsBehave exercises each failure mode's observable behavior.
func TestKindsBehave(t *testing.T) {
	t.Run("latency", func(t *testing.T) {
		inj := New(Config{Seed: 1, Every: 1, Kinds: []Kind{Latency}, Latency: 80 * time.Millisecond})
		ts := httptest.NewServer(inj.Wrap(okHandler()))
		defer ts.Close()
		inj.Arm()
		start := time.Now()
		resp, err := ts.Client().Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("latency fault changed status: %d", resp.StatusCode)
		}
		if d := time.Since(start); d < 80*time.Millisecond {
			t.Fatalf("latency fault added only %s", d)
		}
		if inj.Counts()[Latency] != 1 {
			t.Fatalf("counts = %v", inj.Counts())
		}
	})
	t.Run("error", func(t *testing.T) {
		inj := New(Config{Seed: 1, Every: 1, Kinds: []Kind{Error}, ErrorStatus: 502})
		ts := httptest.NewServer(inj.Wrap(okHandler()))
		defer ts.Close()
		inj.Arm()
		resp, err := ts.Client().Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 502 {
			t.Fatalf("error fault status = %d, want 502", resp.StatusCode)
		}
	})
	t.Run("reset", func(t *testing.T) {
		inj := New(Config{Seed: 1, Every: 1, Kinds: []Kind{Reset}})
		ts := httptest.NewServer(inj.Wrap(okHandler()))
		defer ts.Close()
		inj.Arm()
		resp, err := ts.Client().Get(ts.URL)
		if err == nil {
			resp.Body.Close()
			t.Fatal("reset fault produced an HTTP response, want a transport error")
		}
	})
	t.Run("stall", func(t *testing.T) {
		inj := New(Config{Seed: 1, Every: 1, Kinds: []Kind{Stall}, Stall: 60 * time.Millisecond})
		ts := httptest.NewServer(inj.Wrap(okHandler()))
		defer ts.Close()
		inj.Arm()
		start := time.Now()
		resp, err := ts.Client().Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if time.Since(start) < 60*time.Millisecond || resp.StatusCode != 503 {
			t.Fatalf("stall fault: %d after %s", resp.StatusCode, time.Since(start))
		}
	})
}

// TestWindowAndPathGate checks that requests outside the armed window or the
// path prefix pass untouched and do not advance the schedule.
func TestWindowAndPathGate(t *testing.T) {
	inj := New(Config{
		Seed: 2, Every: 1, Kinds: []Kind{Error},
		Window: Window{Start: 50 * time.Millisecond, End: 150 * time.Millisecond},
		Path:   "/v1/detect",
	})
	ts := httptest.NewServer(inj.Wrap(okHandler()))
	defer ts.Close()
	inj.Arm()

	get := func(path string) int {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/v1/detect"); got != 200 {
		t.Fatalf("pre-window request faulted: %d", got)
	}
	time.Sleep(60 * time.Millisecond) // inside the window
	if got := get("/healthz"); got != 200 {
		t.Fatalf("off-path request faulted: %d", got)
	}
	if got := get("/v1/detect"); got != 503 {
		t.Fatalf("in-window request not faulted: %d", got)
	}
	time.Sleep(120 * time.Millisecond) // past the window
	if got := get("/v1/detect"); got != 200 {
		t.Fatalf("post-window request faulted: %d", got)
	}
	if unarmed := New(Config{Every: 1, Kinds: []Kind{Error}}); func() int {
		ts2 := httptest.NewServer(unarmed.Wrap(okHandler()))
		defer ts2.Close()
		resp, err := http.Get(ts2.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}() != 200 {
		t.Fatal("unarmed injector faulted")
	}
}

// TestParse covers the flag grammar, round-tripping a full spec and
// rejecting malformed fields.
func TestParse(t *testing.T) {
	cfg, err := Parse("seed=7,every=3,kinds=latency+error,latency=200ms,stall=1s,status=502,window=5s:20s,path=/v1/")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Every != 3 || len(cfg.Kinds) != 2 ||
		cfg.Latency != 200*time.Millisecond || cfg.Stall != time.Second ||
		cfg.ErrorStatus != 502 || cfg.Window.Start != 5*time.Second ||
		cfg.Window.End != 20*time.Second || cfg.Path != "/v1/" {
		t.Fatalf("parsed config = %+v", cfg)
	}
	for _, bad := range []string{
		"", "every=0", "kinds=explode", "window=20s:5s", "latency=-1s",
		"status=200", "seed=x", "nonsense", "wat=1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

// TestParseKindsSubset checks a single-kind palette drives only that kind.
func TestParseKindsSubset(t *testing.T) {
	cfg, err := Parse("seed=3,every=1,kinds=error")
	if err != nil {
		t.Fatal(err)
	}
	inj := New(cfg)
	ts := httptest.NewServer(inj.Wrap(okHandler()))
	defer ts.Close()
	inj.Arm()
	for k := 0; k < 10; k++ {
		resp, err := ts.Client().Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 503 {
			t.Fatalf("request %d status = %d, want every one injected 503", k, resp.StatusCode)
		}
	}
	counts := inj.Counts()
	if counts[Error] != 10 || inj.Total() != 10 {
		t.Fatalf("counts = %v", counts)
	}
	if strings.Contains(kindNames(), "unknown") {
		t.Fatal("kindNames leaked an unknown kind")
	}
}
