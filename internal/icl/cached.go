package icl

import (
	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/metrics"
	"repro/internal/prompt"
	"repro/internal/tokenizer"
	"repro/internal/transformer"
)

// promptCache is a KV cache over the query-independent prompt prefix (task
// description + examples + "instruct :"), shared across all queries of an
// evaluation sweep.
type promptCache struct {
	cache   *transformer.KVCache
	choices [2]int
}

// buildPromptCache precomputes the prefix cache for a fixed example set.
// Returns ok=false when the prefix alone exceeds the model's context, in
// which case callers must fall back to the uncached path.
func (d *Detector) buildPromptCache(examples []prompt.Example) (*promptCache, bool) {
	prefixText := prompt.FewShotPrefix(examples)
	ids := append([]int{tokenizer.BOS}, d.Tok.Encode(prefixText, false)...)
	if len(ids) >= d.Model.Config.MaxSeqLen {
		return nil, false
	}
	return &promptCache{
		cache:   d.Model.BuildKVCache(ids),
		choices: d.labelChoiceIDs(),
	}, true
}

// classifyCached classifies a query sentence against the cached prefix,
// falling back to the full-prompt path when the suffix would overflow the
// context window.
func (d *Detector) classifyCached(pc *promptCache, examples []prompt.Example, query string) (int, [2]float32) {
	suffix := d.Tok.Encode(prompt.QuerySuffix(query), false)
	if pc == nil || pc.cache.Len+len(suffix) > d.Model.Config.MaxSeqLen {
		return d.Classify(query, examples)
	}
	best, probs := d.Model.ScoreChoiceWithCache(pc.cache, suffix, pc.choices[:])
	return best, [2]float32{probs[0], probs[1]}
}

// EvaluateCached scores the detector over jobs with a fixed prompt context,
// reusing one KV cache of the shared prefix across all queries. Predictions
// are identical to Evaluate (the cached forward pass computes the same
// attention), at a fraction of the cost for long prompts.
func EvaluateCached(d *Detector, jobs []flowbench.Job, examples []prompt.Example) metrics.Confusion {
	pc, _ := d.buildPromptCache(examples)
	labels := make([]int, len(jobs))
	preds := make([]int, len(jobs))
	for i, j := range jobs {
		labels[i] = j.Label
		pred, _ := d.classifyCached(pc, examples, logparse.Sentence(j))
		preds[i] = pred
	}
	return metrics.NewConfusion(labels, preds)
}

// AnomalyScoresCached is AnomalyScores with a shared prefix cache.
func AnomalyScoresCached(d *Detector, jobs []flowbench.Job, examples []prompt.Example) ([]int, []float64) {
	pc, _ := d.buildPromptCache(examples)
	labels := make([]int, len(jobs))
	scores := make([]float64, len(jobs))
	for i, j := range jobs {
		labels[i] = j.Label
		_, probs := d.classifyCached(pc, examples, logparse.Sentence(j))
		scores[i] = float64(probs[1])
	}
	return labels, scores
}
