package icl

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/prompt"
)

// CoTResult is a chain-of-thought classification (Figure 13): the final
// label plus the step-by-step reasoning that compares each feature of the
// query against the class-conditional statistics visible in the prompt.
type CoTResult struct {
	// Label is the model's prediction (0 normal, 1 abnormal).
	Label int
	// Confidence is the constrained probability of the predicted label.
	Confidence float32
	// Steps are the numbered reasoning lines.
	Steps []string
	// Text is the full rendered output, headed by "sure, here's the
	// step-by-step reasoning:" as in Figure 13.
	Text string
	// Prompt is the CoT prompt presented to the model.
	Prompt string
}

// ChainOfThought classifies query with few-shot context ctx and renders an
// interpretable reasoning trace.
//
// Substitution note (see DESIGN.md): a 7B instruction-tuned model free-forms
// this reasoning; at repository scale the decoder supplies the decision
// (constrained decoding over the label words under the CoT prompt) while the
// reasoning narrative is rendered from the same class-conditional feature
// statistics the paper's example walks through — mean comparison per
// feature, then a verdict. The structure of Figure 13's output is preserved
// exactly.
func ChainOfThought(d *Detector, query flowbench.Job, ctx []flowbench.Job) CoTResult {
	examples := PromptExamples(ctx)
	cotPrompt := prompt.CoT(examples, logparse.Sentence(query))
	label, probs := d.ClassifyJob(query, examples)

	normalMean, abnormalMean, haveBoth := classMeans(ctx)
	var steps []string
	steps = append(steps, "compare the given job's features with the mean of the normal and abnormal jobs in the context.")
	votesNormal, votesAbnormal := 0, 0
	if haveBoth {
		for i, name := range flowbench.FeatureNames {
			v := query.Features[i]
			dn := math.Abs(v - normalMean[i])
			da := math.Abs(v - abnormalMean[i])
			rel := math.Abs(dn-da) / math.Max(1e-9, math.Max(dn, da))
			switch {
			case rel < 0.15:
				steps = append(steps, fmt.Sprintf(
					"the %s of the given job is %s, which is close to both the normal mean (%s) and the abnormal mean (%s), so it does not provide clear distinction.",
					name, logparse.FormatValue(v), logparse.FormatValue(normalMean[i]), logparse.FormatValue(abnormalMean[i])))
			case dn < da:
				votesNormal++
				steps = append(steps, fmt.Sprintf(
					"the %s of the given job is %s, which is closer to the mean %s of the normal jobs (%s) than the abnormal jobs (%s).",
					name, logparse.FormatValue(v), name, logparse.FormatValue(normalMean[i]), logparse.FormatValue(abnormalMean[i])))
			default:
				votesAbnormal++
				steps = append(steps, fmt.Sprintf(
					"however, the %s of the given job is %s, which is closer to the mean %s of the abnormal jobs (%s) than the normal jobs (%s).",
					name, logparse.FormatValue(v), name, logparse.FormatValue(abnormalMean[i]), logparse.FormatValue(normalMean[i])))
			}
		}
		steps = append(steps, fmt.Sprintf(
			"based on these comparisons, %d features look normal and %d look abnormal.", votesNormal, votesAbnormal))
	} else {
		steps = append(steps, "the context lacks examples of both classes, so the decision relies on the model's prior over the feature magnitudes.")
	}
	verdict := "normal"
	if label == 1 {
		verdict = "abnormal"
	}
	closeness := ""
	if haveBoth && votesNormal > 0 && votesAbnormal > 0 {
		closeness = ", but it's a close call"
	}
	steps = append(steps, fmt.Sprintf("therefore, the category is likely %s%s.", verdict, closeness))

	var sb strings.Builder
	sb.WriteString("sure, here's the step-by-step reasoning:\n")
	for i, s := range steps {
		fmt.Fprintf(&sb, "%d. %s\n", i+1, s)
	}
	return CoTResult{
		Label:      label,
		Confidence: probs[label],
		Steps:      steps,
		Text:       sb.String(),
		Prompt:     cotPrompt,
	}
}

// classMeans computes per-feature means of the normal and abnormal jobs in
// ctx; haveBoth is false unless both classes are present.
func classMeans(ctx []flowbench.Job) (normal, abnormal [flowbench.NumFeatures]float64, haveBoth bool) {
	var nN, nA int
	for _, j := range ctx {
		if j.Label == 0 {
			nN++
			for i, v := range j.Features {
				normal[i] += v
			}
		} else {
			nA++
			for i, v := range j.Features {
				abnormal[i] += v
			}
		}
	}
	if nN == 0 || nA == 0 {
		return normal, abnormal, false
	}
	for i := range normal {
		normal[i] /= float64(nN)
		abnormal[i] /= float64(nA)
	}
	return normal, abnormal, true
}
