// Package icl implements in-context learning for anomaly detection (Section
// III-B of the paper): zero- and few-shot prompting of decoder-only models,
// parameter-efficient LoRA fine-tuning under 4-bit quantization (Table III),
// ranking evaluation against unsupervised baselines (Table IV), and
// chain-of-thought interpretability (Figure 13).
package icl

import (
	"fmt"

	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/prompt"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
	"repro/internal/transformer"
)

// ExampleMix selects which labels appear among in-context demonstrations —
// the three few-shot settings of Table III.
type ExampleMix int

// Example mixes: both classes, anomalous-only ("positive"), normal-only
// ("negative") in the paper's terminology.
const (
	Mixed ExampleMix = iota
	PositiveOnly
	NegativeOnly
)

// String names the mix.
func (m ExampleMix) String() string {
	switch m {
	case Mixed:
		return "mixed"
	case PositiveOnly:
		return "pos-only"
	case NegativeOnly:
		return "neg-only"
	}
	return fmt.Sprintf("mix(%d)", int(m))
}

// SelectExamples picks n demonstration jobs from pool respecting the mix
// (alternating labels for Mixed), deterministically in seed. It returns the
// chosen jobs; use PromptExamples to render them.
func SelectExamples(pool []flowbench.Job, n int, mix ExampleMix, seed uint64) []flowbench.Job {
	rng := tensor.NewRNG(seed)
	var normal, anom []flowbench.Job
	for _, j := range pool {
		if j.Label == 0 {
			normal = append(normal, j)
		} else {
			anom = append(anom, j)
		}
	}
	pick := func(from []flowbench.Job) (flowbench.Job, bool) {
		if len(from) == 0 {
			return flowbench.Job{}, false
		}
		return from[rng.Intn(len(from))], true
	}
	out := make([]flowbench.Job, 0, n)
	for i := 0; i < n; i++ {
		var j flowbench.Job
		var ok bool
		switch mix {
		case PositiveOnly:
			j, ok = pick(anom)
		case NegativeOnly:
			j, ok = pick(normal)
		default:
			if i%2 == 0 {
				j, ok = pick(normal)
			} else {
				j, ok = pick(anom)
			}
		}
		if ok {
			out = append(out, j)
		}
	}
	return out
}

// PromptExamples renders jobs as prompt demonstrations.
func PromptExamples(jobs []flowbench.Job) []prompt.Example {
	out := make([]prompt.Example, len(jobs))
	for i, j := range jobs {
		out[i] = prompt.Example{Sentence: logparse.Sentence(j), Label: logparse.LabelWord(j.Label)}
	}
	return out
}

// Detector is a decoder-only model with its tokenizer, performing
// classification by constrained next-token decoding over the two label
// words.
type Detector struct {
	Model *transformer.Model
	Tok   *tokenizer.Tokenizer
}

// NewDetector wraps a causal model and tokenizer.
func NewDetector(m *transformer.Model, tok *tokenizer.Tokenizer) *Detector {
	if !m.Config.Causal {
		panic("icl: detector requires a causal (decoder-only) model")
	}
	return &Detector{Model: m, Tok: tok}
}

// labelChoiceIDs returns the token ids of the normal and abnormal label
// words.
func (d *Detector) labelChoiceIDs() [2]int {
	return [2]int{d.Tok.ID(logparse.LabelNormal), d.Tok.ID(logparse.LabelAbnormal)}
}

// Classify runs the few-shot prompt for a query sentence and returns the
// predicted label (0 normal, 1 abnormal) plus the constrained (normal,
// abnormal) probability pair.
func (d *Detector) Classify(query string, examples []prompt.Example) (int, [2]float32) {
	p := prompt.FewShot(examples, query)
	ids := append([]int{tokenizer.BOS}, d.Tok.Encode(p, false)...)
	choices := d.labelChoiceIDs()
	best, probs := d.Model.ScoreChoice(ids, choices[:])
	return best, [2]float32{probs[0], probs[1]}
}

// PromptCache holds the read-only KV cache of a fixed few-shot context's
// query-independent prefix (task description + examples + "instruct :").
// Build it once with NewPromptCache and reuse it across ClassifyBatchCached
// calls — including concurrent ones: construction and use touch only model
// weights and the immutable cache.
type PromptCache struct {
	examples []prompt.Example
	cache    *transformer.KVCache // nil when the prefix alone overflows the context
	choices  [2]int
}

// NewPromptCache encodes the query-independent prompt prefix for examples
// into a reusable KV cache. When the prefix alone exceeds the model's
// context the cache is empty and classification falls back to full prompts.
func (d *Detector) NewPromptCache(examples []prompt.Example) *PromptCache {
	pc := &PromptCache{examples: examples, choices: d.labelChoiceIDs()}
	prefixIDs := append([]int{tokenizer.BOS}, d.Tok.Encode(prompt.FewShotPrefix(examples), false)...)
	if len(prefixIDs) < d.Model.Config.MaxSeqLen {
		pc.cache = d.Model.InferKVCache(prefixIDs)
	}
	return pc
}

// ClassifyBatch classifies a batch of query sentences against one shared
// few-shot context, returning per-query labels and probability pairs in
// input order. The prompt prefix is encoded once into a KV cache and only
// the per-query suffixes run through the block stack as a packed batch; use
// NewPromptCache + ClassifyBatchCached to amortize the prefix encoding
// across calls as well. Predictions match Classify on each query; the
// batched path reads the model without mutating it, so it is safe to call
// concurrently.
func (d *Detector) ClassifyBatch(queries []string, examples []prompt.Example) ([]int, [][2]float32) {
	return d.ClassifyBatchCached(d.NewPromptCache(examples), queries)
}

// ClassifyBatchCached is ClassifyBatch against a prebuilt prompt cache.
// Queries whose suffix would overflow the context fall back to the
// full-prompt batched path (which keeps the right edge, as Classify does).
func (d *Detector) ClassifyBatchCached(pc *PromptCache, queries []string) ([]int, [][2]float32) {
	ws := tensor.GetWorkspace()
	defer tensor.PutWorkspace(ws)
	return d.ClassifyBatchCachedWS(pc, queries, ws)
}

// ClassifyBatchCachedWS is ClassifyBatchCached on a caller-owned
// tensor.Workspace, letting a long-lived inference worker reuse one scratch
// arena across batches. The workspace is used, not reset: the caller resets
// it between batches.
func (d *Detector) ClassifyBatchCachedWS(pc *PromptCache, queries []string, ws *tensor.Workspace) ([]int, [][2]float32) {
	if len(queries) == 0 {
		return nil, nil
	}
	//lint:ignore hotalloc returned to the caller; results must outlive the workspace's next Reset
	labels := make([]int, len(queries))
	//lint:ignore hotalloc returned to the caller; results must outlive the workspace's next Reset
	out := make([][2]float32, len(queries))
	var cachedIdx, fullIdx []int
	var suffixes, fullPrompts [][]int
	for i, q := range queries {
		if pc.cache != nil {
			suffix := d.Tok.Encode(prompt.QuerySuffix(q), false)
			if len(suffix) > 0 && pc.cache.Len+len(suffix) <= d.Model.Config.MaxSeqLen {
				cachedIdx = append(cachedIdx, i)
				suffixes = append(suffixes, suffix)
				continue
			}
		}
		fullIdx = append(fullIdx, i)
		p := prompt.FewShot(pc.examples, q)
		//lint:ignore hotalloc full-prompt fallback, taken only when the prefix cache cannot serve the query
		fullPrompts = append(fullPrompts, append([]int{tokenizer.BOS}, d.Tok.Encode(p, false)...))
	}
	if len(suffixes) > 0 {
		best, probs := d.Model.ScoreChoiceBatchWithCacheWS(pc.cache, suffixes, pc.choices[:], ws)
		for k, i := range cachedIdx {
			labels[i] = best[k]
			out[i] = [2]float32{probs[k][0], probs[k][1]}
		}
	}
	if len(fullPrompts) > 0 {
		best, probs := d.Model.ScoreChoiceBatch(fullPrompts, pc.choices[:])
		for k, i := range fullIdx {
			labels[i] = best[k]
			out[i] = [2]float32{probs[k][0], probs[k][1]}
		}
	}
	return labels, out
}

// ClassifyJob classifies a job's full sentence.
func (d *Detector) ClassifyJob(j flowbench.Job, examples []prompt.Example) (int, [2]float32) {
	return d.Classify(logparse.Sentence(j), examples)
}

// Evaluate scores the detector over jobs with a fixed prompt context.
func Evaluate(d *Detector, jobs []flowbench.Job, examples []prompt.Example) metrics.Confusion {
	labels := make([]int, len(jobs))
	preds := make([]int, len(jobs))
	for i, j := range jobs {
		labels[i] = j.Label
		pred, _ := d.ClassifyJob(j, examples)
		preds[i] = pred
	}
	return metrics.NewConfusion(labels, preds)
}

// AnomalyScores returns labels and anomaly scores (probability of the
// abnormal label) for ranking metrics.
func AnomalyScores(d *Detector, jobs []flowbench.Job, examples []prompt.Example) ([]int, []float64) {
	labels := make([]int, len(jobs))
	scores := make([]float64, len(jobs))
	for i, j := range jobs {
		labels[i] = j.Label
		_, probs := d.ClassifyJob(j, examples)
		scores[i] = float64(probs[1])
	}
	return labels, scores
}

// FineTuneConfig controls quantized LoRA fine-tuning (the "FT: Yes" rows of
// Table III).
type FineTuneConfig struct {
	// Steps is the number of prompt documents trained on.
	Steps int
	// LR is the AdamW learning rate for the adapter parameters.
	LR float64
	// Rank, Alpha, Dropout are the LoRA hyperparameters (paper: 64, 128,
	// 0.05; scaled-down default 8, 16, 0.05).
	Rank    int
	Alpha   float64
	Dropout float32
	// ExamplesPerPrompt is the number of demonstrations per training
	// document.
	ExamplesPerPrompt int
	// Mix selects demonstration labels.
	Mix ExampleMix
	// Quantize applies 4-bit quantization to the base weights before
	// adapting, as the paper does with BitsAndBytes.
	Quantize bool
	// Seed controls sampling.
	Seed uint64
}

// DefaultFineTuneConfig mirrors the paper's recipe at repository scale.
func DefaultFineTuneConfig() FineTuneConfig {
	return FineTuneConfig{
		Steps: 300, LR: 2e-3, Rank: 8, Alpha: 16, Dropout: 0.05,
		ExamplesPerPrompt: 4, Mix: Mixed, Quantize: true, Seed: 11,
	}
}

// FineTuneResult reports the parameter-efficiency numbers of Table III.
type FineTuneResult struct {
	// TrainableParams and TotalParams give the LoRA share of the model.
	TrainableParams, TotalParams int
	// QuantBytes and FP32Bytes measure base-weight memory before/after
	// quantization (0 when Quantize is false).
	QuantBytes, FP32Bytes int
	// FinalLoss is the mean answer-token loss over the last 10% of steps.
	FinalLoss float64
}

// TrainableFraction is TrainableParams/TotalParams.
func (r FineTuneResult) TrainableFraction() float64 {
	if r.TotalParams == 0 {
		return 0
	}
	return float64(r.TrainableParams) / float64(r.TotalParams)
}

// FineTune adapts the detector on labeled jobs: each step samples a few-shot
// prompt document ending in the true answer word and trains only the LoRA
// adapters on the answer token's cross-entropy. The base model is optionally
// 4-bit quantized first.
func FineTune(d *Detector, train []flowbench.Job, cfg FineTuneConfig) FineTuneResult {
	if cfg.Steps <= 0 {
		panic("icl: non-positive fine-tune steps")
	}
	var res FineTuneResult
	if cfg.Quantize {
		res.QuantBytes, res.FP32Bytes = d.Model.Quantize4Bit()
	}
	rng := tensor.NewRNG(cfg.Seed)
	res.TrainableParams, res.TotalParams = d.Model.ApplyLoRA(cfg.Rank, cfg.Alpha, cfg.Dropout, rng.Split())
	opt := nn.NewAdamW(cfg.LR, 0)
	ce := nn.NewSoftmaxCrossEntropy()
	params := d.Model.Params()
	tailStart := cfg.Steps * 9 / 10
	var tail float64
	tailN := 0
	for step := 0; step < cfg.Steps; step++ {
		q := train[rng.Intn(len(train))]
		exJobs := SelectExamples(train, cfg.ExamplesPerPrompt, cfg.Mix, rng.Uint64())
		doc := prompt.Document(PromptExamples(exJobs), logparse.Sentence(q), logparse.LabelWord(q.Label))
		ids := append([]int{tokenizer.BOS}, d.Tok.Encode(doc, false)...)
		if len(ids) > d.Model.Config.MaxSeqLen {
			// Keep the right edge: the answer token must stay in context.
			ids = ids[len(ids)-d.Model.Config.MaxSeqLen:]
		}
		inputs := ids[:len(ids)-1]
		targets := make([]int, len(inputs))
		for i := range targets {
			targets[i] = -1
		}
		targets[len(targets)-1] = ids[len(ids)-1] // supervise only the answer
		logits := d.Model.ForwardLM(inputs, true)
		loss, grad := ce.Loss(logits, targets)
		d.Model.BackwardLM(grad)
		nn.ClipGradNorm(params, 1.0)
		opt.Step(params)
		if step >= tailStart {
			tail += loss
			tailN++
		}
	}
	if tailN > 0 {
		res.FinalLoss = tail / float64(tailN)
	}
	return res
}
