package icl

import (
	"testing"

	"repro/internal/logparse"
)

func TestClassifyBatchMatchesSequential(t *testing.T) {
	d, ds := testDetector(t)
	exs := PromptExamples(SelectExamples(ds.Train, 3, Mixed, 5))
	queries := make([]string, 9)
	for i := range queries {
		queries[i] = logparse.Sentence(ds.Test[i])
	}
	labels, probs := d.ClassifyBatch(queries, exs)
	if len(labels) != len(queries) || len(probs) != len(queries) {
		t.Fatalf("batch sizes %d/%d, want %d", len(labels), len(probs), len(queries))
	}
	for i, q := range queries {
		wantLabel, wantProbs := d.Classify(q, exs)
		if labels[i] != wantLabel {
			t.Fatalf("query %d: batch label %d vs sequential %d", i, labels[i], wantLabel)
		}
		for k := 0; k < 2; k++ {
			diff := probs[i][k] - wantProbs[k]
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-4 {
				t.Fatalf("query %d prob %d: batch %v vs sequential %v", i, k, probs[i], wantProbs)
			}
		}
	}
}

func TestClassifyBatchCachedReuse(t *testing.T) {
	d, ds := testDetector(t)
	exs := PromptExamples(SelectExamples(ds.Train, 3, Mixed, 5))
	queries := make([]string, 6)
	for i := range queries {
		queries[i] = logparse.Sentence(ds.Test[i])
	}
	pc := d.NewPromptCache(exs)
	want, _ := d.ClassifyBatch(queries, exs)
	// The same cache must serve repeated calls with identical results.
	for rep := 0; rep < 2; rep++ {
		labels, _ := d.ClassifyBatchCached(pc, queries)
		for i := range labels {
			if labels[i] != want[i] {
				t.Fatalf("rep %d query %d: cached label %d vs fresh %d", rep, i, labels[i], want[i])
			}
		}
	}
}

func TestClassifyBatchEmpty(t *testing.T) {
	d, _ := testDetector(t)
	labels, probs := d.ClassifyBatch(nil, nil)
	if labels != nil || probs != nil {
		t.Fatal("empty batch should return nil results")
	}
}
