package icl

import (
	"testing"

	"repro/internal/prompt"
)

func TestPromptPrefixSuffixRecomposition(t *testing.T) {
	exs := []prompt.Example{
		{Sentence: "runtime is 5.0", Label: "normal"},
		{Sentence: "runtime is 900.0", Label: "abnormal"},
	}
	q := "runtime is 7.0"
	recomposed := prompt.FewShotPrefix(exs) + " " + prompt.QuerySuffix(q)
	if recomposed != prompt.FewShot(exs, q) {
		t.Fatalf("prefix+suffix != full prompt:\n%q\n%q", recomposed, prompt.FewShot(exs, q))
	}
	// Zero-shot too.
	recomposed = prompt.FewShotPrefix(nil) + " " + prompt.QuerySuffix(q)
	if recomposed != prompt.FewShot(nil, q) {
		t.Fatal("zero-shot prefix+suffix != full prompt")
	}
}

// TestEvaluateCachedMatchesUncached is the end-to-end equivalence check:
// the cached evaluation path must produce exactly the predictions of the
// uncached path.
func TestEvaluateCachedMatchesUncached(t *testing.T) {
	d, ds := testDetector(t)
	exs := PromptExamples(SelectExamples(ds.Train, 4, Mixed, 3))
	jobs := ds.Test[:25]
	want := Evaluate(d, jobs, exs)
	got := EvaluateCached(d, jobs, exs)
	if want != got {
		t.Fatalf("cached confusion %+v != uncached %+v", got, want)
	}
}

func TestAnomalyScoresCachedMatchesUncached(t *testing.T) {
	d, ds := testDetector(t)
	exs := PromptExamples(SelectExamples(ds.Train, 4, Mixed, 3))
	jobs := ds.Test[:15]
	_, want := AnomalyScores(d, jobs, exs)
	_, got := AnomalyScoresCached(d, jobs, exs)
	for i := range want {
		diff := want[i] - got[i]
		if diff < -1e-4 || diff > 1e-4 {
			t.Fatalf("score[%d]: cached %v vs uncached %v", i, got[i], want[i])
		}
	}
}

func TestEvaluateCachedZeroShot(t *testing.T) {
	d, ds := testDetector(t)
	jobs := ds.Test[:10]
	want := Evaluate(d, jobs, nil)
	got := EvaluateCached(d, jobs, nil)
	if want != got {
		t.Fatalf("zero-shot cached %+v != uncached %+v", got, want)
	}
}
