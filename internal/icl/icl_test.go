package icl

import (
	"strings"
	"testing"

	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/models"
	"repro/internal/pretrain"
	"repro/internal/tokenizer"
)

// testDetector builds a small pre-trained decoder over a compact corpus.
func testDetector(t *testing.T) (*Detector, *flowbench.Dataset) {
	t.Helper()
	ds := flowbench.Generate(flowbench.Genome, 42).Subsample(300, 50, 80, 7)
	corpus := pretrain.BuildCorpus(pretrain.CorpusOptions{
		SentencesPerWorkflow: 60, ICLDocs: 30, ExamplesPerDoc: 3, Seed: 2,
	})
	corpus = append(corpus, logparse.Corpus(ds.Train)...)
	tok := tokenizer.Build(corpus)
	m := models.MustGet("gpt2").Build(tok.VocabSize())
	return NewDetector(m, tok), ds
}

func TestNewDetectorRejectsEncoder(t *testing.T) {
	tok := tokenizer.Build([]string{"a"})
	m := models.MustGet("bert-base-uncased").Build(tok.VocabSize())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for encoder model")
		}
	}()
	NewDetector(m, tok)
}

func TestSelectExamplesMixes(t *testing.T) {
	ds := flowbench.Generate(flowbench.Genome, 1).Subsample(200, 1, 1, 3)
	pool := ds.Train

	pos := SelectExamples(pool, 6, PositiveOnly, 5)
	for _, j := range pos {
		if j.Label != 1 {
			t.Fatal("PositiveOnly returned a normal job")
		}
	}
	neg := SelectExamples(pool, 6, NegativeOnly, 5)
	for _, j := range neg {
		if j.Label != 0 {
			t.Fatal("NegativeOnly returned an anomalous job")
		}
	}
	mixed := SelectExamples(pool, 6, Mixed, 5)
	n0, n1 := 0, 0
	for _, j := range mixed {
		if j.Label == 0 {
			n0++
		} else {
			n1++
		}
	}
	if n0 != 3 || n1 != 3 {
		t.Fatalf("Mixed selection unbalanced: %d/%d", n0, n1)
	}
}

func TestSelectExamplesDeterministic(t *testing.T) {
	ds := flowbench.Generate(flowbench.Genome, 1).Subsample(100, 1, 1, 3)
	a := SelectExamples(ds.Train, 4, Mixed, 9)
	b := SelectExamples(ds.Train, 4, Mixed, 9)
	for i := range a {
		if a[i].Features != b[i].Features {
			t.Fatal("example selection not deterministic")
		}
	}
}

func TestSelectExamplesEmptyClassPool(t *testing.T) {
	normalOnly := []flowbench.Job{{Label: 0}, {Label: 0}}
	if got := SelectExamples(normalOnly, 4, PositiveOnly, 1); len(got) != 0 {
		t.Fatalf("PositiveOnly from normal-only pool returned %d examples", len(got))
	}
	mixed := SelectExamples(normalOnly, 4, Mixed, 1)
	if len(mixed) != 2 { // only normal slots fill
		t.Fatalf("Mixed from normal-only pool returned %d examples", len(mixed))
	}
}

func TestMixString(t *testing.T) {
	if Mixed.String() != "mixed" || PositiveOnly.String() != "pos-only" || NegativeOnly.String() != "neg-only" {
		t.Fatal("mix names wrong")
	}
}

func TestClassifyReturnsValidDistribution(t *testing.T) {
	d, ds := testDetector(t)
	exs := PromptExamples(SelectExamples(ds.Train, 4, Mixed, 3))
	label, probs := d.ClassifyJob(ds.Test[0], exs)
	if label != 0 && label != 1 {
		t.Fatalf("label = %d", label)
	}
	sum := probs[0] + probs[1]
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probs sum = %v", sum)
	}
}

func TestEvaluateCounts(t *testing.T) {
	d, ds := testDetector(t)
	conf := Evaluate(d, ds.Test[:20], nil)
	if conf.TP+conf.FP+conf.TN+conf.FN != 20 {
		t.Fatal("evaluate total mismatch")
	}
}

func TestFineTuneImprovesAccuracy(t *testing.T) {
	d, ds := testDetector(t)
	// Pre-train briefly so the model knows the log language and format.
	corpus := pretrain.BuildCorpus(pretrain.CorpusOptions{SentencesPerWorkflow: 40, ICLDocs: 40, ExamplesPerDoc: 3, Seed: 3})
	pretrain.CLM(d.Model, d.Tok, corpus, pretrain.Options{Steps: 150, LR: 3e-3, Seed: 4})

	exs := PromptExamples(SelectExamples(ds.Train, 4, Mixed, 5))
	before := Evaluate(d, ds.Test[:60], exs).Accuracy()

	cfg := DefaultFineTuneConfig()
	cfg.Steps = 250
	cfg.Quantize = false // keep full precision for the small test model
	res := FineTune(d, ds.Train, cfg)
	if res.TrainableParams == 0 || res.TrainableFraction() > 0.25 {
		t.Fatalf("LoRA fraction = %v (%d/%d)", res.TrainableFraction(), res.TrainableParams, res.TotalParams)
	}
	after := Evaluate(d, ds.Test[:60], exs).Accuracy()
	if after <= before-0.05 {
		t.Fatalf("fine-tuning hurt accuracy: %.3f -> %.3f", before, after)
	}
	if after < 0.55 {
		t.Fatalf("fine-tuned few-shot accuracy %.3f too low", after)
	}
}

func TestFineTuneQuantizeReportsMemory(t *testing.T) {
	d, ds := testDetector(t)
	cfg := DefaultFineTuneConfig()
	cfg.Steps = 5
	cfg.Quantize = true
	res := FineTune(d, ds.Train, cfg)
	if res.QuantBytes == 0 || res.FP32Bytes == 0 {
		t.Fatal("quantization memory not reported")
	}
	if float64(res.FP32Bytes)/float64(res.QuantBytes) < 4 {
		t.Fatalf("quantization savings only %.1fx", float64(res.FP32Bytes)/float64(res.QuantBytes))
	}
}

func TestFineTuneZeroStepsPanics(t *testing.T) {
	d, ds := testDetector(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FineTune(d, ds.Train, FineTuneConfig{Steps: 0})
}

func TestAnomalyScoresRange(t *testing.T) {
	d, ds := testDetector(t)
	labels, scores := AnomalyScores(d, ds.Test[:15], nil)
	if len(labels) != 15 || len(scores) != 15 {
		t.Fatal("length mismatch")
	}
	for _, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("score %v out of range", s)
		}
	}
}

func TestChainOfThoughtStructure(t *testing.T) {
	d, ds := testDetector(t)
	ctx := SelectExamples(ds.Train, 6, Mixed, 7)
	res := ChainOfThought(d, ds.Test[0], ctx)
	if res.Label != 0 && res.Label != 1 {
		t.Fatalf("label = %d", res.Label)
	}
	if len(res.Steps) < flowbench.NumFeatures {
		t.Fatalf("only %d reasoning steps", len(res.Steps))
	}
	if !strings.HasPrefix(res.Text, "sure, here's the step-by-step reasoning:") {
		t.Fatalf("text = %q", res.Text[:50])
	}
	if !strings.Contains(res.Text, "runtime") {
		t.Fatal("reasoning must discuss the runtime feature")
	}
	if !strings.Contains(res.Steps[len(res.Steps)-1], "the category is likely") {
		t.Fatalf("final step = %q", res.Steps[len(res.Steps)-1])
	}
	if !strings.Contains(res.Prompt, "step by step") {
		t.Fatal("CoT prompt missing step-by-step instruction")
	}
}

func TestChainOfThoughtSingleClassContext(t *testing.T) {
	d, ds := testDetector(t)
	ctx := SelectExamples(ds.Train, 4, NegativeOnly, 7)
	res := ChainOfThought(d, ds.Test[0], ctx)
	joined := strings.Join(res.Steps, " ")
	if !strings.Contains(joined, "lacks examples of both classes") {
		t.Fatal("single-class context must be flagged in reasoning")
	}
}
