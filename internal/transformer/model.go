package transformer

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config describes a transformer model's architecture. Encoder-only models
// (Causal=false) are used for SFT sentence classification; decoder-only
// models (Causal=true) are used for ICL text generation.
type Config struct {
	// Name identifies the model in the registry (e.g. "bert-base-uncased").
	Name string
	// VocabSize is the tokenizer vocabulary size.
	VocabSize int
	// MaxSeqLen bounds sequence length (positional embedding table size).
	MaxSeqLen int
	// DModel is the residual stream width.
	DModel int
	// NumHeads is the number of attention heads.
	NumHeads int
	// NumLayers is the number of transformer blocks.
	NumLayers int
	// FFNDim is the feed-forward hidden width.
	FFNDim int
	// Dropout is the residual dropout probability.
	Dropout float32
	// Causal selects decoder-style masked attention.
	Causal bool
	// ShareLayers enables ALBERT-style cross-layer parameter sharing: all
	// NumLayers blocks reuse one set of weights.
	ShareLayers bool
	// NumClasses sizes the classification head (2 for normal/abnormal).
	NumClasses int
}

// Model is a transformer with a token+position embedding, a stack of blocks,
// a final layer norm, and two heads: a language-model head (used for MLM/CLM
// pre-training and ICL generation) and a classification head (used for SFT).
type Model struct {
	Config  Config
	TokEmb  *nn.Embedding
	PosEmb  *nn.Embedding
	Blocks  []*Block
	FinalLN *nn.LayerNorm
	// LMHead is nn.Layer (constructed as *nn.Linear) so Model.QuantizeInt8
	// can swap it for an int8 inference layer — the LM head is the largest
	// single matmul of the decode path. ClsHead stays a concrete *nn.Linear:
	// it is a [DModel, NumClasses] sliver whose quantization would save
	// nothing, and head-only training reaches into it directly.
	LMHead  nn.Layer
	ClsHead *nn.Linear

	// cached state for backward
	lastIDs []int
	lastH   *tensor.Matrix // final hidden states [T, d]
}

// New constructs a model from cfg with weights initialized from rng.
func New(cfg Config, rng *tensor.RNG) *Model {
	if cfg.NumClasses == 0 {
		cfg.NumClasses = 2
	}
	m := &Model{
		Config:  cfg,
		TokEmb:  nn.NewEmbedding(cfg.Name+".tok_emb", cfg.VocabSize, cfg.DModel, rng),
		PosEmb:  nn.NewEmbedding(cfg.Name+".pos_emb", cfg.MaxSeqLen, cfg.DModel, rng),
		FinalLN: nn.NewLayerNorm(cfg.Name+".final_ln", cfg.DModel),
		LMHead:  nn.NewLinear(cfg.Name+".lm_head", cfg.DModel, cfg.VocabSize, rng),
		ClsHead: nn.NewLinear(cfg.Name+".cls_head", cfg.DModel, cfg.NumClasses, rng),
	}
	if cfg.ShareLayers {
		base := NewBlock(fmt.Sprintf("%s.block", cfg.Name), cfg.DModel, cfg.NumHeads, cfg.FFNDim, cfg.Causal, cfg.Dropout, rng)
		m.Blocks = append(m.Blocks, base)
		for i := 1; i < cfg.NumLayers; i++ {
			m.Blocks = append(m.Blocks, base.SharedCopy(rng))
		}
	} else {
		for i := 0; i < cfg.NumLayers; i++ {
			m.Blocks = append(m.Blocks, NewBlock(fmt.Sprintf("%s.block%d", cfg.Name, i), cfg.DModel, cfg.NumHeads, cfg.FFNDim, cfg.Causal, cfg.Dropout, rng))
		}
	}
	return m
}

// Encode embeds ids and runs the block stack, returning final hidden states
// [T, dModel]. Sequences longer than MaxSeqLen are truncated (keeping the
// head, which holds the classification token and earliest features).
func (m *Model) Encode(ids []int, train bool) *tensor.Matrix {
	if len(ids) == 0 {
		panic("transformer: Encode on empty sequence")
	}
	if len(ids) > m.Config.MaxSeqLen {
		ids = ids[:m.Config.MaxSeqLen]
	}
	pos := make([]int, len(ids))
	for i := range pos {
		pos[i] = i
	}
	h := m.TokEmb.Forward(ids)
	pe := m.PosEmb.Forward(pos)
	h = tensor.Add(nil, h, pe)
	for _, b := range m.Blocks {
		h = b.Forward(h, train)
	}
	h = m.FinalLN.Forward(h, train)
	m.lastIDs = ids
	m.lastH = h
	return h
}

// backbone backward: propagates dh [T,d] through final LN, blocks, and the
// embeddings.
func (m *Model) backwardBackbone(dh *tensor.Matrix) {
	dh = m.FinalLN.Backward(dh)
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		dh = m.Blocks[i].Backward(dh)
	}
	// Token and positional embeddings both received the same upstream grad.
	m.TokEmb.Backward(dh)
	m.PosEmb.Backward(dh)
	m.lastIDs, m.lastH = nil, nil
}

// ForwardLM returns next-token/MLM logits [T, vocab] over the sequence.
func (m *Model) ForwardLM(ids []int, train bool) *tensor.Matrix {
	h := m.Encode(ids, train)
	return m.LMHead.Forward(h, train)
}

// BackwardLM propagates dlogits [T, vocab] through the LM head and backbone.
func (m *Model) BackwardLM(dlogits *tensor.Matrix) {
	dh := m.LMHead.Backward(dlogits)
	m.backwardBackbone(dh)
}

// ForwardCls returns classification logits [1, NumClasses]. Encoders use
// mean pooling over all positions — unlike [CLS] pooling, the mean carries
// signal even when the backbone is frozen after MLM-only pre-training (our
// pre-training has no next-sentence task to give [CLS] meaning). Decoders
// pool the last position, the only one that has seen the whole sequence
// under causal masking.
func (m *Model) ForwardCls(ids []int, train bool) *tensor.Matrix {
	h := m.Encode(ids, train)
	pooled := tensor.New(1, m.Config.DModel)
	if m.Config.Causal {
		copy(pooled.Data, h.Row(h.Rows-1))
	} else {
		inv := 1 / float32(h.Rows)
		for i := 0; i < h.Rows; i++ {
			row := h.Row(i)
			for j, v := range row {
				pooled.Data[j] += v * inv
			}
		}
	}
	return m.ClsHead.Forward(pooled, train)
}

// BackwardCls propagates dlogits [1, NumClasses] back through the pooling
// and the backbone.
func (m *Model) BackwardCls(dlogits *tensor.Matrix) {
	if m.lastH == nil {
		panic("transformer: BackwardCls before ForwardCls")
	}
	dPooled := m.ClsHead.Backward(dlogits)
	dh := tensor.New(m.lastH.Rows, m.lastH.Cols)
	if m.Config.Causal {
		copy(dh.Row(dh.Rows-1), dPooled.Row(0))
	} else {
		inv := 1 / float32(dh.Rows)
		src := dPooled.Row(0)
		for i := 0; i < dh.Rows; i++ {
			row := dh.Row(i)
			for j, v := range src {
				row[j] = v * inv
			}
		}
	}
	m.backwardBackbone(dh)
}

// Pooled returns the pooled representation ForwardCls feeds the
// classification head (mean over positions for encoders, last position for
// decoders), without running the head. Used to cache frozen-backbone
// features for fast head-only training.
func (m *Model) Pooled(ids []int) []float32 {
	h := m.Encode(ids, false)
	out := make([]float32, m.Config.DModel)
	if m.Config.Causal {
		copy(out, h.Row(h.Rows-1))
	} else {
		inv := 1 / float32(h.Rows)
		for i := 0; i < h.Rows; i++ {
			for j, v := range h.Row(i) {
				out[j] += v * inv
			}
		}
	}
	m.lastIDs, m.lastH = nil, nil
	return out
}

// Params returns all parameters: backbone, LM head, and classification head.
// Shared (ALBERT) blocks contribute their parameters once.
func (m *Model) Params() []*nn.Param {
	var out []*nn.Param
	out = append(out, m.TokEmb.Params()...)
	out = append(out, m.PosEmb.Params()...)
	seen := make(map[*nn.Param]bool)
	for _, b := range m.Blocks {
		for _, p := range b.Params() {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	out = append(out, m.FinalLN.Params()...)
	out = append(out, m.LMHead.Params()...)
	out = append(out, m.ClsHead.Params()...)
	return out
}

// ParamCount returns the total number of scalar parameters (shared layers
// counted once, as ALBERT reports them).
func (m *Model) ParamCount() int { return nn.ParamCount(m.Params()) }

// FreezeBackbone freezes everything except the classification head. This is
// the "Linear" training strategy of Table II: only the last linear layer is
// updated, which prevents catastrophic forgetting of earlier tasks.
func (m *Model) FreezeBackbone() {
	nn.FreezeAll(m.Params(), true)
	nn.FreezeAll(m.ClsHead.Params(), false)
}

// Unfreeze makes every parameter trainable again.
func (m *Model) Unfreeze() { nn.FreezeAll(m.Params(), false) }

// linears returns every Linear in the model, including those inside
// attention layers (for quantization sweeps). LoRA-wrapped and int8-quantized
// projections are skipped — their bases are already frozen.
func (m *Model) linears() []*nn.Linear {
	var out []*nn.Linear
	for _, b := range m.Blocks {
		for _, l := range []nn.Layer{b.Attn.Wq, b.Attn.Wk, b.Attn.Wv, b.Attn.Wo, b.FF1, b.FF2} {
			if lin, ok := l.(*nn.Linear); ok {
				out = append(out, lin)
			}
		}
	}
	if lin, ok := m.LMHead.(*nn.Linear); ok {
		out = append(out, lin)
	}
	return out
}

// Quantize4Bit applies block-wise 4-bit quantization to every linear layer
// (attention projections, FFN, LM head), replacing weights with their
// dequantized reconstruction and freezing them. It returns the total
// quantized and original byte counts — the memory-saving figure the paper
// attributes to BitsAndBytes.
func (m *Model) Quantize4Bit() (quantBytes, fp32Bytes int) {
	if m.Config.ShareLayers {
		// Quantizing shared blocks repeatedly would re-quantize the same
		// weights; quantize block 0 only.
		panic("transformer: quantization of shared-layer models not supported")
	}
	for _, lin := range m.linears() {
		q, _ := nn.QuantizeLinear(lin, nn.DefaultQuantBlock)
		quantBytes += q.MemoryBytes()
		fp32Bytes += q.Float32Bytes()
	}
	return quantBytes, fp32Bytes
}

// ApplyLoRA wraps the query and value projections of every block with
// rank-r LoRA adapters (the standard LoRA target set), freezing all other
// parameters. Returns the trainable and total parameter counts, which Table
// III reports as "LoRA param (%)".
func (m *Model) ApplyLoRA(rank int, alpha float64, dropout float32, rng *tensor.RNG) (trainable, total int) {
	if m.Config.ShareLayers {
		panic("transformer: LoRA on shared-layer models not supported")
	}
	nn.FreezeAll(m.Params(), true)
	for _, b := range m.Blocks {
		b.Attn.Wq = nn.NewLoRA(b.Attn.Wq.(*nn.Linear), rank, alpha, dropout, rng)
		b.Attn.Wv = nn.NewLoRA(b.Attn.Wv.(*nn.Linear), rank, alpha, dropout, rng)
	}
	ps := m.Params()
	return nn.TrainableCount(ps), nn.ParamCount(ps)
}
