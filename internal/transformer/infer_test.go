package transformer

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// TestKVCacheMatchesFullForward is the core equivalence property: logits
// from the cached path must match a full forward pass over the
// concatenation.
func TestKVCacheMatchesFullForward(t *testing.T) {
	cfg := smallConfig(true)
	cfg.MaxSeqLen = 32
	m := New(cfg, tensor.NewRNG(51))
	prefix := []int{1, 4, 2, 9, 7, 3}
	suffix := []int{5, 8, 11}
	full := m.NextTokenLogits(append(append([]int{}, prefix...), suffix...))
	cache := m.BuildKVCache(prefix)
	cached := m.NextTokenLogitsWithCache(cache, suffix)
	for i := range full {
		if math.Abs(float64(full[i]-cached[i])) > 1e-4 {
			t.Fatalf("logit %d: full %v vs cached %v", i, full[i], cached[i])
		}
	}
}

func TestKVCacheReusableAcrossSuffixes(t *testing.T) {
	cfg := smallConfig(true)
	m := New(cfg, tensor.NewRNG(52))
	prefix := []int{2, 4, 6, 8}
	cache := m.BuildKVCache(prefix)
	for _, suffix := range [][]int{{1}, {3, 5}, {7, 9, 11}} {
		full := m.NextTokenLogits(append(append([]int{}, prefix...), suffix...))
		cached := m.NextTokenLogitsWithCache(cache, suffix)
		for i := range full {
			if math.Abs(float64(full[i]-cached[i])) > 1e-4 {
				t.Fatalf("suffix %v logit %d mismatch", suffix, i)
			}
		}
	}
}

func TestScoreChoiceWithCacheMatches(t *testing.T) {
	cfg := smallConfig(true)
	m := New(cfg, tensor.NewRNG(53))
	prefix := []int{1, 2, 3}
	suffix := []int{4, 5}
	choices := []int{6, 7}
	wantBest, wantProbs := m.ScoreChoice(append(append([]int{}, prefix...), suffix...), choices)
	cache := m.BuildKVCache(prefix)
	gotBest, gotProbs := m.ScoreChoiceWithCache(cache, suffix, choices)
	if gotBest != wantBest {
		t.Fatalf("best = %d, want %d", gotBest, wantBest)
	}
	for i := range wantProbs {
		if math.Abs(float64(wantProbs[i]-gotProbs[i])) > 1e-4 {
			t.Fatalf("probs mismatch: %v vs %v", gotProbs, wantProbs)
		}
	}
}

func TestBuildKVCacheRejectsNonCausal(t *testing.T) {
	m := New(smallConfig(false), tensor.NewRNG(54))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.BuildKVCache([]int{1, 2})
}

func TestBuildKVCacheRejectsOverflow(t *testing.T) {
	cfg := smallConfig(true)
	m := New(cfg, tensor.NewRNG(55))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.BuildKVCache(make([]int, cfg.MaxSeqLen+1))
}

func TestCachePathRejectsTotalOverflow(t *testing.T) {
	cfg := smallConfig(true)
	m := New(cfg, tensor.NewRNG(56))
	cache := m.BuildKVCache(make([]int, cfg.MaxSeqLen-1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.NextTokenLogitsWithCache(cache, []int{1, 2, 3})
}

func TestKVCacheNotMutatedByQueries(t *testing.T) {
	cfg := smallConfig(true)
	m := New(cfg, tensor.NewRNG(57))
	cache := m.BuildKVCache([]int{1, 2, 3, 4})
	before := cache.Layers[0].K.Clone()
	m.NextTokenLogitsWithCache(cache, []int{5, 6})
	if !cache.Layers[0].K.Equal(before) {
		t.Fatal("query mutated the shared cache")
	}
	if cache.Len != 4 {
		t.Fatalf("cache length changed to %d", cache.Len)
	}
}
