package transformer

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func smallConfig(causal bool) Config {
	return Config{
		Name: "test", VocabSize: 20, MaxSeqLen: 16, DModel: 8,
		NumHeads: 2, NumLayers: 2, FFNDim: 16, Dropout: 0, Causal: causal,
		NumClasses: 2,
	}
}

func TestAttentionShapes(t *testing.T) {
	rng := tensor.NewRNG(1)
	a := NewMultiHeadAttention("a", 8, 2, false, rng)
	x := tensor.New(5, 8)
	tensor.Gaussian(x, 1, rng)
	y := a.Forward(x, false)
	if y.Rows != 5 || y.Cols != 8 {
		t.Fatalf("attention output %dx%d, want 5x8", y.Rows, y.Cols)
	}
}

func TestAttentionBadHeadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dModel % heads != 0")
		}
	}()
	NewMultiHeadAttention("a", 8, 3, false, tensor.NewRNG(1))
}

// TestCausalMaskBlocksFuture verifies that changing a future token does not
// affect earlier positions' outputs under causal attention, but does under
// bidirectional attention.
func TestCausalMaskBlocksFuture(t *testing.T) {
	rng := tensor.NewRNG(2)
	for _, causal := range []bool{true, false} {
		a := NewMultiHeadAttention("a", 8, 2, causal, rng)
		x := tensor.New(4, 8)
		tensor.Gaussian(x, 1, tensor.NewRNG(3))
		y1 := a.Forward(x, false)
		x2 := x.Clone()
		for j := 0; j < 8; j++ {
			x2.Set(3, j, x2.At(3, j)+5) // perturb the last position
		}
		y2 := a.Forward(x2, false)
		changed := false
		for i := 0; i < 3; i++ { // earlier positions
			for j := 0; j < 8; j++ {
				if math.Abs(float64(y1.At(i, j)-y2.At(i, j))) > 1e-6 {
					changed = true
				}
			}
		}
		if causal && changed {
			t.Fatal("causal attention leaked future information")
		}
		if !causal && !changed {
			t.Fatal("bidirectional attention should see the perturbation")
		}
	}
}

// attnGradCheck compares attention's analytic gradients to finite
// differences through the scalar loss Σ dout⊙Attn(x).
func TestAttentionGradcheck(t *testing.T) {
	rng := tensor.NewRNG(4)
	for _, causal := range []bool{false, true} {
		a := NewMultiHeadAttention("a", 8, 2, causal, rng)
		x := tensor.New(4, 8)
		tensor.Gaussian(x, 1, tensor.NewRNG(5))
		dout := tensor.New(4, 8)
		tensor.Gaussian(dout, 1, tensor.NewRNG(6))
		lossFn := func() float64 {
			y := a.Forward(x, false)
			var s float64
			for i, v := range y.Data {
				s += float64(v) * float64(dout.Data[i])
			}
			return s
		}
		nn.ZeroGrads(a.Params())
		a.Forward(x, false)
		dx := a.Backward(dout)
		// Check input gradient entries.
		for k := 0; k < 8; k++ {
			idx := (k * 13) % len(x.Data)
			orig := x.Data[idx]
			const h = 1e-2
			x.Data[idx] = orig + h
			lp := lossFn()
			x.Data[idx] = orig - h
			lm := lossFn()
			x.Data[idx] = orig
			want := (lp - lm) / (2 * h)
			got := float64(dx.Data[idx])
			if math.Abs(got-want) > 5e-2*(1+math.Abs(want)) {
				t.Errorf("causal=%v dx[%d] = %v, want %v", causal, idx, got, want)
			}
		}
		// Check one weight gradient per projection.
		for _, p := range a.Params() {
			idx := 3 % len(p.W.Data)
			orig := p.W.Data[idx]
			const h = 1e-2
			p.W.Data[idx] = orig + h
			lp := lossFn()
			p.W.Data[idx] = orig - h
			lm := lossFn()
			p.W.Data[idx] = orig
			want := (lp - lm) / (2 * h)
			got := float64(p.Grad.Data[idx])
			if math.Abs(got-want) > 5e-2*(1+math.Abs(want)) {
				t.Errorf("causal=%v %s grad = %v, want %v", causal, p.Name, got, want)
			}
		}
	}
}

func TestBlockForwardBackwardShapes(t *testing.T) {
	rng := tensor.NewRNG(7)
	b := NewBlock("b", 8, 2, 16, false, 0, rng)
	x := tensor.New(5, 8)
	tensor.Gaussian(x, 1, rng)
	y := b.Forward(x, true)
	if y.Rows != 5 || y.Cols != 8 {
		t.Fatalf("block output %dx%d", y.Rows, y.Cols)
	}
	dout := tensor.New(5, 8)
	tensor.Gaussian(dout, 1, rng)
	dx := b.Backward(dout)
	if dx.Rows != 5 || dx.Cols != 8 {
		t.Fatalf("block dx %dx%d", dx.Rows, dx.Cols)
	}
}

func TestModelForwardClsShape(t *testing.T) {
	m := New(smallConfig(false), tensor.NewRNG(8))
	logits := m.ForwardCls([]int{1, 2, 3, 4}, false)
	if logits.Rows != 1 || logits.Cols != 2 {
		t.Fatalf("cls logits %dx%d, want 1x2", logits.Rows, logits.Cols)
	}
}

func TestModelForwardLMShape(t *testing.T) {
	m := New(smallConfig(true), tensor.NewRNG(9))
	logits := m.ForwardLM([]int{1, 2, 3}, false)
	if logits.Rows != 3 || logits.Cols != 20 {
		t.Fatalf("lm logits %dx%d, want 3x20", logits.Rows, logits.Cols)
	}
}

func TestModelTruncatesLongSequences(t *testing.T) {
	m := New(smallConfig(false), tensor.NewRNG(10))
	ids := make([]int, 100)
	h := m.Encode(ids, false)
	if h.Rows != m.Config.MaxSeqLen {
		t.Fatalf("encoded %d positions, want truncation to %d", h.Rows, m.Config.MaxSeqLen)
	}
}

func TestModelEmptySequencePanics(t *testing.T) {
	m := New(smallConfig(false), tensor.NewRNG(10))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty sequence")
		}
	}()
	m.Encode(nil, false)
}

// TestModelLearnsTinyClassification trains a small encoder to separate two
// token patterns and checks it fits.
func TestModelLearnsTinyClassification(t *testing.T) {
	m := New(smallConfig(false), tensor.NewRNG(11))
	ce := nn.NewSoftmaxCrossEntropy()
	opt := nn.NewAdamW(3e-3, 0.01)
	// Class 0: sequences of token 5; class 1: sequences of token 9.
	examples := [][]int{{1, 5, 5, 5}, {1, 9, 9, 9}}
	labels := []int{0, 1}
	for epoch := 0; epoch < 60; epoch++ {
		for i, ids := range examples {
			logits := m.ForwardCls(ids, true)
			_, grad := ce.Loss(logits, []int{labels[i]})
			m.BackwardCls(grad)
			opt.Step(m.Params())
		}
	}
	correct := 0
	for i, ids := range examples {
		logits := m.ForwardCls(ids, false)
		if tensor.ArgMax(logits.Row(0)) == labels[i] {
			correct++
		}
	}
	if correct != 2 {
		t.Fatalf("model failed to fit 2 trivial examples (%d/2)", correct)
	}
}

// TestDecoderLearnsNextToken trains a tiny causal LM on a fixed sequence and
// checks it memorizes the continuation.
func TestDecoderLearnsNextToken(t *testing.T) {
	cfg := smallConfig(true)
	m := New(cfg, tensor.NewRNG(12))
	ce := nn.NewSoftmaxCrossEntropy()
	opt := nn.NewAdamW(3e-3, 0.01)
	seq := []int{2, 7, 3, 11, 5, 13}
	for step := 0; step < 150; step++ {
		logits := m.ForwardLM(seq[:len(seq)-1], true)
		targets := seq[1:]
		_, grad := ce.Loss(logits, targets)
		m.BackwardLM(grad)
		opt.Step(m.Params())
	}
	got := m.Generate(seq[:2], GenerateOptions{MaxNewTokens: 4})
	want := seq[2:]
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("generated %v, want %v", got, want)
		}
	}
}

func TestNextTokenLogitsRequiresCausal(t *testing.T) {
	m := New(smallConfig(false), tensor.NewRNG(13))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-causal NextTokenLogits")
		}
	}()
	m.NextTokenLogits([]int{1, 2})
}

func TestNextTokenLogitsTruncatesLeft(t *testing.T) {
	m := New(smallConfig(true), tensor.NewRNG(14))
	long := make([]int, 50)
	for i := range long {
		long[i] = i % 20
	}
	// Must not panic, and must match using only the rightmost window.
	got := m.NextTokenLogits(long)
	want := m.NextTokenLogits(long[len(long)-m.Config.MaxSeqLen:])
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-5 {
			t.Fatal("left truncation mismatch")
		}
	}
}

func TestScoreChoice(t *testing.T) {
	m := New(smallConfig(true), tensor.NewRNG(15))
	best, probs := m.ScoreChoice([]int{1, 2, 3}, []int{4, 5})
	if best != 0 && best != 1 {
		t.Fatalf("best = %d", best)
	}
	if math.Abs(float64(probs[0]+probs[1])-1) > 1e-5 {
		t.Fatalf("choice probs sum to %v", probs[0]+probs[1])
	}
}

func TestSharedLayersParamCount(t *testing.T) {
	cfg := smallConfig(false)
	cfg.NumLayers = 4
	rng := tensor.NewRNG(16)
	dense := New(cfg, rng)
	cfg.ShareLayers = true
	shared := New(cfg, tensor.NewRNG(16))
	if shared.ParamCount() >= dense.ParamCount() {
		t.Fatalf("shared params %d !< dense params %d", shared.ParamCount(), dense.ParamCount())
	}
	// Shared model still runs and trains.
	logits := shared.ForwardCls([]int{1, 2, 3}, true)
	ce := nn.NewSoftmaxCrossEntropy()
	_, grad := ce.Loss(logits, []int{1})
	shared.BackwardCls(grad)
	nn.NewAdamW(1e-3, 0).Step(shared.Params())
}

func TestSharedLayersGradientAccumulation(t *testing.T) {
	cfg := smallConfig(false)
	cfg.NumLayers = 3
	cfg.ShareLayers = true
	m := New(cfg, tensor.NewRNG(17))
	logits := m.ForwardCls([]int{1, 2, 3, 4}, true)
	ce := nn.NewSoftmaxCrossEntropy()
	_, grad := ce.Loss(logits, []int{0})
	m.BackwardCls(grad)
	// The shared block's gradient accumulates contributions from all three
	// layer applications; it must be nonzero.
	var sum float64
	for _, p := range m.Blocks[0].Params() {
		for _, g := range p.Grad.Data {
			sum += math.Abs(float64(g))
		}
	}
	if sum == 0 {
		t.Fatal("shared block received no gradient")
	}
}

func TestFreezeBackbone(t *testing.T) {
	m := New(smallConfig(false), tensor.NewRNG(18))
	m.FreezeBackbone()
	ps := m.Params()
	trainable := nn.TrainableCount(ps)
	want := nn.ParamCount(m.ClsHead.Params())
	if trainable != want {
		t.Fatalf("trainable = %d, want cls head only = %d", trainable, want)
	}
	m.Unfreeze()
	if nn.TrainableCount(ps) != nn.ParamCount(ps) {
		t.Fatal("Unfreeze must restore all params")
	}
}

func TestApplyLoRAFraction(t *testing.T) {
	cfg := smallConfig(true)
	cfg.DModel, cfg.FFNDim, cfg.NumHeads = 32, 64, 4
	m := New(cfg, tensor.NewRNG(19))
	trainable, total := m.ApplyLoRA(4, 8, 0, tensor.NewRNG(20))
	if trainable == 0 || trainable >= total/2 {
		t.Fatalf("LoRA trainable/total = %d/%d", trainable, total)
	}
	// Forward/backward still work through the adapters.
	logits := m.ForwardLM([]int{1, 2, 3}, true)
	ce := nn.NewSoftmaxCrossEntropy()
	_, grad := ce.Loss(logits, []int{2, 3, 4})
	m.BackwardLM(grad)
	// Base weights frozen: optimizer must move only adapters.
	before := m.Blocks[0].Attn.Wk.(*nn.Linear).Weight.W.Clone()
	nn.NewAdamW(1e-2, 0).Step(m.Params())
	if !m.Blocks[0].Attn.Wk.(*nn.Linear).Weight.W.Equal(before) {
		t.Fatal("frozen base weight moved during LoRA training")
	}
}

func TestQuantize4BitModel(t *testing.T) {
	m := New(smallConfig(true), tensor.NewRNG(21))
	qb, fb := m.Quantize4Bit()
	if qb == 0 || fb == 0 || float64(fb)/float64(qb) < 4 {
		t.Fatalf("quantization savings %d/%d", qb, fb)
	}
	// Quantized model still produces finite logits.
	logits := m.ForwardLM([]int{1, 2, 3}, false)
	for _, v := range logits.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("quantized model produced non-finite logits")
		}
	}
}

func TestGenerateStopsAtStopToken(t *testing.T) {
	m := New(smallConfig(true), tensor.NewRNG(22))
	// With an untrained model we can't force a specific token, but stop==all
	// tokens must end generation immediately.
	all := make([]int, 20)
	for i := range all {
		all[i] = i
	}
	out := m.Generate([]int{1, 2}, GenerateOptions{MaxNewTokens: 10, StopTokens: all})
	if len(out) != 0 {
		t.Fatalf("generation ignored stop tokens: %v", out)
	}
}

func TestGenerateTemperatureSampling(t *testing.T) {
	m := New(smallConfig(true), tensor.NewRNG(23))
	rng := tensor.NewRNG(24)
	out := m.Generate([]int{1}, GenerateOptions{MaxNewTokens: 5, Temperature: 1.0, RNG: rng})
	if len(out) != 5 {
		t.Fatalf("generated %d tokens, want 5", len(out))
	}
	for _, tok := range out {
		if tok < 0 || tok >= 20 {
			t.Fatalf("token %d out of vocab", tok)
		}
	}
}

func TestModelDeterminism(t *testing.T) {
	m1 := New(smallConfig(false), tensor.NewRNG(25))
	m2 := New(smallConfig(false), tensor.NewRNG(25))
	l1 := m1.ForwardCls([]int{3, 1, 4}, false)
	l2 := m2.ForwardCls([]int{3, 1, 4}, false)
	if !l1.Equal(l2) {
		t.Fatal("same seed must produce identical models")
	}
}
