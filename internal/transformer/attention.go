// Package transformer implements the encoder-only (BERT-style) and
// decoder-only (GPT-style) transformer models used for supervised fine-tuning
// and in-context learning, with hand-written backpropagation on top of
// internal/nn.
//
// Training processes one token sequence at a time ([seq, d_model] matrices);
// mini-batching is done by gradient accumulation in the trainers, which
// keeps the backward pass straightforward. Inference additionally has a
// packed batched path (batch.go): B sequences run as one [ΣTᵢ, d_model]
// matrix through the position-wise layers with per-sequence attention — no
// padding, read-only on the model, safe for concurrent use.
package transformer

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// MultiHeadAttention is scaled dot-product self-attention with NumHeads heads
// over a DModel-wide residual stream. When Causal is true, position i may
// only attend to positions ≤ i (decoder-style).
type MultiHeadAttention struct {
	NumHeads int
	DModel   int
	Causal   bool

	// The projections are nn.Layer so that Wq/Wv can be swapped for
	// nn.LoRALinear adapters by Model.ApplyLoRA; they are *nn.Linear as
	// constructed.
	Wq, Wk, Wv, Wo nn.Layer

	// Cached forward state for the backward pass.
	x       *tensor.Matrix
	q, k, v *tensor.Matrix
	probs   []*tensor.Matrix // per-head [T,T] attention distributions
	concat  *tensor.Matrix   // pre-Wo head concatenation
}

// NewMultiHeadAttention constructs an attention layer. dModel must be
// divisible by numHeads.
func NewMultiHeadAttention(name string, dModel, numHeads int, causal bool, rng *tensor.RNG) *MultiHeadAttention {
	if dModel%numHeads != 0 {
		panic("transformer: dModel must be divisible by numHeads")
	}
	return &MultiHeadAttention{
		NumHeads: numHeads,
		DModel:   dModel,
		Causal:   causal,
		Wq:       nn.NewLinear(name+".wq", dModel, dModel, rng),
		Wk:       nn.NewLinear(name+".wk", dModel, dModel, rng),
		Wv:       nn.NewLinear(name+".wv", dModel, dModel, rng),
		Wo:       nn.NewLinear(name+".wo", dModel, dModel, rng),
	}
}

// sharedCopy returns an attention layer sharing a's parameters but with
// independent forward caches (used for ALBERT-style layer sharing). It
// requires plain Linear projections — LoRA is not combined with layer
// sharing.
func (a *MultiHeadAttention) sharedCopy() *MultiHeadAttention {
	share := func(l nn.Layer) nn.Layer {
		lin := l.(*nn.Linear)
		return &nn.Linear{Weight: lin.Weight, Bias: lin.Bias}
	}
	return &MultiHeadAttention{
		NumHeads: a.NumHeads, DModel: a.DModel, Causal: a.Causal,
		Wq: share(a.Wq), Wk: share(a.Wk), Wv: share(a.Wv), Wo: share(a.Wo),
	}
}

// Forward computes self-attention over x [T, dModel]. Heads are addressed as
// column windows of the packed q/k/v projections via the strided kernels —
// no per-head copies are made; only the per-head probability matrices are
// allocated (the backward pass consumes them).
func (a *MultiHeadAttention) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	T := x.Rows
	dh := a.DModel / a.NumHeads
	a.x = x
	a.q = a.Wq.Forward(x, train)
	a.k = a.Wk.Forward(x, train)
	a.v = a.Wv.Forward(x, train)
	a.probs = make([]*tensor.Matrix, a.NumHeads)
	a.concat = tensor.New(T, a.DModel)
	scale := float32(1 / math.Sqrt(float64(dh)))
	for h := 0; h < a.NumHeads; h++ {
		off := h * dh
		scores := tensor.New(T, T)
		tensor.MatMulTStrided(scores, 0, a.q, off, a.k, off, dh)
		tensor.ScaledMaskedRowSoftmax(scores, scale, 0, a.Causal)
		a.probs[h] = scores
		tensor.MatMulStrided(a.concat, off, scores, 0, T, a.v, off, dh)
	}
	return a.Wo.Forward(a.concat, train)
}

// Backward propagates dout through the attention layer, accumulating
// parameter gradients and returning dx.
func (a *MultiHeadAttention) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if a.x == nil {
		panic("transformer: attention Backward before Forward")
	}
	T := dout.Rows
	dh := a.DModel / a.NumHeads
	scale := float32(1 / math.Sqrt(float64(dh)))

	dConcat := a.Wo.Backward(dout)
	dq := tensor.New(T, a.DModel)
	dk := tensor.New(T, a.DModel)
	dv := tensor.New(T, a.DModel)
	dScores := tensor.New(T, T)
	dProbs := tensor.New(T, T)
	for h := 0; h < a.NumHeads; h++ {
		off := h * dh
		probs := a.probs[h]
		// out = probs · vh over the head's column window.
		tensor.MatMulTStrided(dProbs, 0, dConcat, off, a.v, off, dh)
		tensor.TMatMulStrided(dv, off, probs, dConcat, off, dh)
		// Softmax backward per row: dS = P ⊙ (dP - Σ dP⊙P).
		for i := 0; i < T; i++ {
			pr := probs.Row(i)
			dpr := dProbs.Row(i)
			var dot float32
			for j := range pr {
				dot += pr[j] * dpr[j]
			}
			dsr := dScores.Row(i)
			for j := range pr {
				dsr[j] = pr[j] * (dpr[j] - dot)
			}
		}
		tensor.Scale(dScores, dScores, scale)
		// scores = qh·khᵀ ⇒ dq = dS·kh, dk = dSᵀ·qh.
		tensor.MatMulStrided(dq, off, dScores, 0, T, a.k, off, dh)
		tensor.TMatMulStrided(dk, off, dScores, a.q, off, dh)
	}
	dx := a.Wq.Backward(dq)
	tensor.AddScaled(dx, a.Wk.Backward(dk), 1)
	tensor.AddScaled(dx, a.Wv.Backward(dv), 1)
	a.x, a.q, a.k, a.v, a.probs, a.concat = nil, nil, nil, nil, nil, nil
	return dx
}

// Params returns the four projection matrices' parameters.
func (a *MultiHeadAttention) Params() []*nn.Param {
	var out []*nn.Param
	out = append(out, a.Wq.Params()...)
	out = append(out, a.Wk.Params()...)
	out = append(out, a.Wv.Params()...)
	out = append(out, a.Wo.Params()...)
	return out
}
