package transformer

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/tensor"
)

// Clone returns a deep copy of the model: fresh parameter and cache storage
// with identical weights. Cloning is how experiments reuse one pre-trained
// checkpoint across many fine-tuning runs without re-pre-training.
//
// Clone requires the model to still have its constructed-time architecture
// (no LoRA wrapping or quantization applied); it panics otherwise, because
// Params() ordering would no longer match a freshly built model.
func (m *Model) Clone() *Model {
	// Rebuild with an arbitrary seed; weights are overwritten below.
	out := New(m.Config, tensor.NewRNG(1))
	src := m.Params()
	dst := out.Params()
	if len(src) != len(dst) {
		panic(fmt.Sprintf("transformer: clone param mismatch %d vs %d (model was structurally modified?)", len(src), len(dst)))
	}
	for i, p := range src {
		if p.W.Rows != dst[i].W.Rows || p.W.Cols != dst[i].W.Cols {
			panic(fmt.Sprintf("transformer: clone shape mismatch at %s", p.Name))
		}
		copy(dst[i].W.Data, p.W.Data)
		dst[i].Frozen = p.Frozen
	}
	return out
}

// checkpointMagic identifies the binary checkpoint format.
const checkpointMagic = uint32(0x57464144) // "WFAD"

// Save writes the model's parameters to w in a compact binary format
// (magic, param count, then per-parameter name/shape/float32 data).
// Architecture configuration is not serialized; Load must be called on a
// model built with the same Config.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	params := m.Params()
	if err := binary.Write(bw, binary.LittleEndian, checkpointMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.W.Rows)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.W.Cols)); err != nil {
			return err
		}
		for _, v := range p.W.Data {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads parameters written by Save into the model. The model must have
// the same architecture (parameter order and shapes) as the one saved.
func (m *Model) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("transformer: reading checkpoint magic: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("transformer: bad checkpoint magic %#x", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	params := m.Params()
	if int(count) != len(params) {
		return fmt.Errorf("transformer: checkpoint has %d params, model has %d", count, len(params))
	}
	for _, p := range params {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		var rows, cols uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return err
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return err
		}
		if int(rows) != p.W.Rows || int(cols) != p.W.Cols {
			return fmt.Errorf("transformer: checkpoint param %s is %dx%d, model expects %dx%d",
				name, rows, cols, p.W.Rows, p.W.Cols)
		}
		for i := range p.W.Data {
			var bits uint32
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return err
			}
			p.W.Data[i] = math.Float32frombits(bits)
		}
	}
	return nil
}
