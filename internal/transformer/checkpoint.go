package transformer

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/tensor"
)

// Clone returns a deep copy of the model: fresh parameter and cache storage
// with identical weights. Cloning is how experiments reuse one pre-trained
// checkpoint across many fine-tuning runs without re-pre-training.
//
// Clone requires the model to still have its constructed-time architecture
// (no LoRA wrapping or quantization applied); it panics otherwise, because
// Params() ordering would no longer match a freshly built model.
func (m *Model) Clone() *Model {
	// Rebuild with an arbitrary seed; weights are overwritten below.
	out := New(m.Config, tensor.NewRNG(1))
	src := m.Params()
	dst := out.Params()
	if len(src) != len(dst) {
		panic(fmt.Sprintf("transformer: clone param mismatch %d vs %d (model was structurally modified?)", len(src), len(dst)))
	}
	for i, p := range src {
		if p.W.Rows != dst[i].W.Rows || p.W.Cols != dst[i].W.Cols {
			panic(fmt.Sprintf("transformer: clone shape mismatch at %s", p.Name))
		}
		copy(dst[i].W.Data, p.W.Data)
		dst[i].Frozen = p.Frozen
	}
	return out
}

// checkpointMagic identifies the binary checkpoint format.
const checkpointMagic = uint32(0x57464144) // "WFAD"

// Save writes the model's parameters to w in a compact binary format
// (magic, param count, then per-parameter name/shape/float32 data).
// Architecture configuration is not serialized; Load must be called on a
// model built with the same Config.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	params := m.Params()
	if err := binary.Write(bw, binary.LittleEndian, checkpointMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.W.Rows)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.W.Cols)); err != nil {
			return err
		}
		for _, v := range p.W.Data {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// maxParamNameBytes bounds a serialized parameter name. Real names are a few
// dozen bytes; a larger length means the stream is corrupt or misaligned, and
// catching it here avoids allocating an attacker- or garbage-sized buffer.
const maxParamNameBytes = 1 << 12

// Load reads parameters written by Save into the model. The model must have
// the same architecture (parameter order, names, and shapes) as the one
// saved; any mismatch — wrong magic, wrong parameter count, a displaced or
// renamed parameter, a shape difference, or a truncated stream — is rejected
// with an error naming the offending field and the expected-vs-got values
// rather than silently mis-reading weights.
func (m *Model) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("transformer: reading checkpoint magic: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("transformer: bad checkpoint magic %#x (want %#x)", magic, checkpointMagic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("transformer: reading checkpoint param count: %w", err)
	}
	params := m.Params()
	if int(count) != len(params) {
		return fmt.Errorf("transformer: checkpoint has %d params, model has %d (architecture mismatch)", count, len(params))
	}
	for pi, p := range params {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return fmt.Errorf("transformer: checkpoint truncated at param %d (%s): %w", pi, p.Name, err)
		}
		if nameLen > maxParamNameBytes {
			return fmt.Errorf("transformer: checkpoint param %d has name length %d (corrupt checkpoint?)", pi, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return fmt.Errorf("transformer: checkpoint truncated reading name of param %d (%s): %w", pi, p.Name, err)
		}
		if string(name) != p.Name {
			return fmt.Errorf("transformer: checkpoint param %d is %q, model expects %q (architecture mismatch)",
				pi, name, p.Name)
		}
		var rows, cols uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return fmt.Errorf("transformer: checkpoint truncated reading shape of %s: %w", p.Name, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return fmt.Errorf("transformer: checkpoint truncated reading shape of %s: %w", p.Name, err)
		}
		if int(rows) != p.W.Rows || int(cols) != p.W.Cols {
			return fmt.Errorf("transformer: checkpoint param %s is %dx%d, model expects %dx%d",
				p.Name, rows, cols, p.W.Rows, p.W.Cols)
		}
		buf := make([]byte, 4*len(p.W.Data))
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("transformer: checkpoint truncated reading %s data (%d floats): %w",
				p.Name, len(p.W.Data), err)
		}
		for i := range p.W.Data {
			p.W.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return nil
}
