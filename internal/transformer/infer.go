package transformer

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// LayerKV holds the cached key and value projections of one attention layer
// over a prompt prefix ([Tprefix, dModel] each).
type LayerKV struct {
	K, V *tensor.Matrix
}

// KVCache is an inference-time cache of a causal model's per-layer keys and
// values over a fixed prompt prefix. ICL evaluation shares one few-shot
// prefix across hundreds of queries; caching it turns each query from a
// full-prompt forward pass into a suffix-only pass (the same optimization
// production LLM servers apply to shared system prompts).
//
// A cache is read-only after construction. The suffix paths that consume it
// (NextTokenLogitsWithCache, ScoreChoiceWithCache, and the batched variants)
// run on the read-only workspace-backed forwards, so one cache can serve
// concurrent queries from many goroutines.
type KVCache struct {
	Layers []LayerKV
	// Len is the prefix length in tokens.
	Len int
}

// BuildKVCache runs the prefix through the model once and captures each
// attention layer's keys and values. The model must be causal and the prefix
// must fit in MaxSeqLen.
func (m *Model) BuildKVCache(prefix []int) *KVCache {
	return m.InferKVCache(prefix)
}

// NextTokenLogitsWithCache computes the next-token logits for prefix+suffix,
// reusing the cached prefix. The cache is not mutated and the pass is
// read-only on the model. Results are identical to NextTokenLogits over the
// concatenation (up to float addition order).
func (m *Model) NextTokenLogitsWithCache(cache *KVCache, suffix []int) []float32 {
	ws := tensor.GetWorkspace()
	defer tensor.PutWorkspace(ws)
	return m.nextTokenLogitsWithCache(cache, suffix, ws)
}

func (m *Model) nextTokenLogitsWithCache(cache *KVCache, suffix []int, ws *tensor.Workspace) []float32 {
	if len(suffix) == 0 {
		panic("transformer: empty suffix")
	}
	if cache.Len+len(suffix) > m.Config.MaxSeqLen {
		panic("transformer: cached sequence exceeds MaxSeqLen")
	}
	offsets := ws.GetInts(2)
	offsets[0], offsets[1] = 0, len(suffix)
	h := m.embedBatchOne(suffix, cache.Len, ws)
	for li, b := range m.Blocks {
		h, _ = b.inferBatch(h, offsets, cache.Layers[li], ws, false)
	}
	// Only the final position feeds the next-token logits; run the LN and LM
	// head on that single row.
	last := ws.RowView(h, h.Rows-1, h.Rows)
	logits := nn.Infer(m.LMHead, m.FinalLN.Infer(last, ws), ws)
	//lint:ignore hotalloc returned to the caller; the logits row must outlive the workspace's next Reset
	out := make([]float32, logits.Cols)
	copy(out, logits.Row(0))
	return out
}

// ScoreChoiceWithCache is ScoreChoice with a cached prefix: it returns the
// best choice index and the softmax over the candidate tokens' logits.
func (m *Model) ScoreChoiceWithCache(cache *KVCache, suffix []int, choices []int) (int, []float32) {
	ws := tensor.GetWorkspace()
	defer tensor.PutWorkspace(ws)
	logits := m.nextTokenLogitsWithCache(cache, suffix, ws)
	sub := make([]float32, len(choices))
	for i, c := range choices {
		sub[i] = logits[c]
	}
	tensor.Softmax(sub)
	return tensor.ArgMax(sub), sub
}

// embedBatchOne is embedBatch for a single sequence, avoiding the packed
// batch plumbing on the per-token decode path.
func (m *Model) embedBatchOne(ids []int, posStart int, ws *tensor.Workspace) *tensor.Matrix {
	pos := ws.GetInts(len(ids))
	for i := range pos {
		pos[i] = posStart + i
	}
	h := m.TokEmb.Infer(ids, ws)
	pe := m.PosEmb.Infer(pos, ws)
	return tensor.Add(h, h, pe)
}
