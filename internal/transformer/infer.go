package transformer

import (
	"math"

	"repro/internal/tensor"
)

// LayerKV holds the cached key and value projections of one attention layer
// over a prompt prefix ([Tprefix, dModel] each).
type LayerKV struct {
	K, V *tensor.Matrix
}

// KVCache is an inference-time cache of a causal model's per-layer keys and
// values over a fixed prompt prefix. ICL evaluation shares one few-shot
// prefix across hundreds of queries; caching it turns each query from a
// full-prompt forward pass into a suffix-only pass (the same optimization
// production LLM servers apply to shared system prompts).
//
// A cache is read-only after construction and safe to share across
// sequential queries (it is NOT safe for concurrent use, since the model's
// layers cache activations during forward passes).
type KVCache struct {
	Layers []LayerKV
	// Len is the prefix length in tokens.
	Len int
}

// BuildKVCache runs the prefix through the model once and captures each
// attention layer's keys and values. The model must be causal and the prefix
// must fit in MaxSeqLen.
func (m *Model) BuildKVCache(prefix []int) *KVCache {
	if !m.Config.Causal {
		panic("transformer: KV cache requires a causal model")
	}
	if len(prefix) == 0 {
		panic("transformer: empty prefix")
	}
	if len(prefix) > m.Config.MaxSeqLen {
		panic("transformer: prefix exceeds MaxSeqLen")
	}
	cache := &KVCache{Len: len(prefix)}
	h := m.embed(prefix, 0)
	for _, b := range m.Blocks {
		var kv LayerKV
		h, kv = b.forwardCapture(h)
		cache.Layers = append(cache.Layers, kv)
	}
	return cache
}

// NextTokenLogitsWithCache computes the next-token logits for prefix+suffix,
// reusing the cached prefix. The cache is not mutated. Results are identical
// to NextTokenLogits over the concatenation (up to float addition order).
func (m *Model) NextTokenLogitsWithCache(cache *KVCache, suffix []int) []float32 {
	if len(suffix) == 0 {
		panic("transformer: empty suffix")
	}
	if cache.Len+len(suffix) > m.Config.MaxSeqLen {
		panic("transformer: cached sequence exceeds MaxSeqLen")
	}
	h := m.embed(suffix, cache.Len)
	for li, b := range m.Blocks {
		h = b.forwardWithPast(h, cache.Layers[li])
	}
	h = m.FinalLN.Forward(h, false)
	logits := m.LMHead.Forward(h, false)
	out := make([]float32, logits.Cols)
	copy(out, logits.Row(logits.Rows-1))
	return out
}

// ScoreChoiceWithCache is ScoreChoice with a cached prefix: it returns the
// best choice index and the softmax over the candidate tokens' logits.
func (m *Model) ScoreChoiceWithCache(cache *KVCache, suffix []int, choices []int) (int, []float32) {
	logits := m.NextTokenLogitsWithCache(cache, suffix)
	sub := make([]float32, len(choices))
	for i, c := range choices {
		sub[i] = logits[c]
	}
	tensor.Softmax(sub)
	return tensor.ArgMax(sub), sub
}

// embed returns token+position embeddings for ids at absolute positions
// starting at posStart (inference-only: no backward bookkeeping is kept).
func (m *Model) embed(ids []int, posStart int) *tensor.Matrix {
	pos := make([]int, len(ids))
	for i := range pos {
		pos[i] = posStart + i
	}
	h := m.TokEmb.Forward(ids)
	pe := m.PosEmb.Forward(pos)
	return tensor.Add(nil, h, pe)
}

// forwardCapture is Block.Forward in eval mode that additionally returns the
// attention layer's key/value projections for caching.
func (b *Block) forwardCapture(x *tensor.Matrix) (*tensor.Matrix, LayerKV) {
	h := b.LN1.Forward(x, false)
	attnOut, kv := b.Attn.forwardInfer(h, LayerKV{})
	x1 := tensor.Add(nil, x, attnOut)
	h2 := b.LN2.Forward(x1, false)
	h2 = b.FF1.Forward(h2, false)
	h2 = b.Act.Forward(h2, false)
	h2 = b.FF2.Forward(h2, false)
	return tensor.Add(nil, x1, h2), kv
}

// forwardWithPast is Block.Forward in eval mode where attention additionally
// attends over cached past keys/values.
func (b *Block) forwardWithPast(x *tensor.Matrix, past LayerKV) *tensor.Matrix {
	h := b.LN1.Forward(x, false)
	attnOut, _ := b.Attn.forwardInfer(h, past)
	x1 := tensor.Add(nil, x, attnOut)
	h2 := b.LN2.Forward(x1, false)
	h2 = b.FF1.Forward(h2, false)
	h2 = b.Act.Forward(h2, false)
	h2 = b.FF2.Forward(h2, false)
	return tensor.Add(nil, x1, h2)
}

// forwardInfer computes causal self-attention for x given optional past
// keys/values (attended by every query position), returning the output and
// the current K/V projections (for cache construction). Inference-only: no
// state is kept for a backward pass.
func (a *MultiHeadAttention) forwardInfer(x *tensor.Matrix, past LayerKV) (*tensor.Matrix, LayerKV) {
	if !a.Causal {
		panic("transformer: forwardInfer requires causal attention")
	}
	Tq := x.Rows
	Tp := 0
	if past.K != nil {
		Tp = past.K.Rows
	}
	dh := a.DModel / a.NumHeads
	q := a.Wq.Forward(x, false)
	k := a.Wk.Forward(x, false)
	v := a.Wv.Forward(x, false)
	concat := tensor.New(Tq, a.DModel)
	scale := float32(1 / math.Sqrt(float64(dh)))
	for h := 0; h < a.NumHeads; h++ {
		qh := headView(q, h, dh)
		kh := headView(k, h, dh)
		vh := headView(v, h, dh)
		// scores over [past | current] keys: [Tq, Tp+Tq].
		scores := tensor.New(Tq, Tp+Tq)
		if Tp > 0 {
			pkh := headView(past.K, h, dh)
			left := tensor.MatMulT(nil, qh, pkh)
			for i := 0; i < Tq; i++ {
				copy(scores.Row(i)[:Tp], left.Row(i))
			}
		}
		right := tensor.MatMulT(nil, qh, kh)
		for i := 0; i < Tq; i++ {
			row := scores.Row(i)[Tp:]
			copy(row, right.Row(i))
			// Causal mask within the current chunk: query i may attend
			// current keys 0..i (all past keys are earlier positions).
			for j := i + 1; j < Tq; j++ {
				row[j] = float32(math.Inf(-1))
			}
		}
		tensor.Scale(scores, scores, scale)
		tensor.RowSoftmax(scores)
		// out = probs_past·pastV + probs_cur·curV.
		out := tensor.New(Tq, dh)
		if Tp > 0 {
			pvh := headView(past.V, h, dh)
			probsPast := tensor.New(Tq, Tp)
			for i := 0; i < Tq; i++ {
				copy(probsPast.Row(i), scores.Row(i)[:Tp])
			}
			tensor.MatMul(out, probsPast, pvh)
		}
		probsCur := tensor.New(Tq, Tq)
		for i := 0; i < Tq; i++ {
			copy(probsCur.Row(i), scores.Row(i)[Tp:])
		}
		cur := tensor.MatMul(nil, probsCur, vh)
		tensor.AddScaled(out, cur, 1)
		headStore(concat, out, h, dh)
	}
	y := a.Wo.Forward(concat, false)
	return y, LayerKV{K: k, V: v}
}
