package transformer

import (
	"math"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// referenceAttentionForward is the pre-strided attention implementation:
// every head is copied out of the packed projections, run through the dense
// kernels, and added back. It uses the same fused softmax as the production
// path, so the strided rewrite must match it bitwise — the only difference
// is data movement, not arithmetic.
func referenceAttentionForward(a *MultiHeadAttention, x *tensor.Matrix) *tensor.Matrix {
	dh := a.DModel / a.NumHeads
	headView := func(m *tensor.Matrix, h int) *tensor.Matrix {
		out := tensor.New(m.Rows, dh)
		for i := 0; i < m.Rows; i++ {
			copy(out.Row(i), m.Row(i)[h*dh:(h+1)*dh])
		}
		return out
	}
	q := nn.Infer(a.Wq, x, nil)
	k := nn.Infer(a.Wk, x, nil)
	v := nn.Infer(a.Wv, x, nil)
	concat := tensor.New(x.Rows, a.DModel)
	scale := float32(1 / math.Sqrt(float64(dh)))
	for h := 0; h < a.NumHeads; h++ {
		scores := tensor.MatMulT(nil, headView(q, h), headView(k, h))
		tensor.ScaledMaskedRowSoftmax(scores, scale, 0, a.Causal)
		out := tensor.MatMul(nil, scores, headView(v, h))
		for i := 0; i < out.Rows; i++ {
			copy(concat.Row(i)[h*dh:(h+1)*dh], out.Row(i))
		}
	}
	return nn.Infer(a.Wo, concat, nil)
}

// TestStridedAttentionMatchesCopyingBitwise is the core strided-kernel
// equivalence property: attention over head views must equal attention over
// head copies bit for bit, for both the training Forward and the batched
// read-only path.
func TestStridedAttentionMatchesCopyingBitwise(t *testing.T) {
	for _, causal := range []bool{false, true} {
		rng := tensor.NewRNG(91)
		a := NewMultiHeadAttention("strided", 32, 4, causal, rng)
		x := tensor.New(7, 32)
		tensor.Gaussian(x, 1, rng)

		want := referenceAttentionForward(a, x)
		if got := a.Forward(x, false); !got.Equal(want) {
			t.Fatalf("causal=%v: training Forward differs from copying reference", causal)
		}
		ws := tensor.NewWorkspace()
		got, _ := a.inferBatch(x, []int{0, x.Rows}, LayerKV{}, ws, false)
		if !got.Equal(want) {
			t.Fatalf("causal=%v: batched inferBatch differs from copying reference", causal)
		}
	}
}

// TestKVCacheDecodeAllocations pins the steady-state allocation count of the
// per-token decode step (the ICL serving hot path) at near-zero: only the
// returned logits/probability slices may allocate, never the forward pass's
// temporaries.
func TestKVCacheDecodeAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	m := New(smallConfig(true), tensor.NewRNG(92))
	cache := m.InferKVCache([]int{1, 2, 3, 4, 5, 6})
	suffix := []int{7, 8}
	choices := []int{1, 2}
	m.ScoreChoiceWithCache(cache, suffix, choices) // warm the workspace pool
	allocs := testing.AllocsPerRun(100, func() {
		m.ScoreChoiceWithCache(cache, suffix, choices)
	})
	// Budget: the logits copy and the choice-probability slice (measured: 2)
	// plus headroom for pool/GC noise. The pre-workspace implementation
	// allocated hundreds of matrices per call here.
	if allocs > 4 {
		t.Fatalf("KV-cache decode step allocates %v times per op, want ≤ 4", allocs)
	}
}

// TestEncodeBatchAllocations pins the packed batched forward on a
// caller-owned workspace at near-zero steady-state allocations (the
// classification head's returned logits are the only per-call allocation).
func TestEncodeBatchAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	m := New(smallConfig(false), tensor.NewRNG(93))
	seqs := [][]int{{1, 2, 3}, {4, 5}, {6, 7, 8, 9}}
	ws := tensor.NewWorkspace()
	ws.Reset()
	m.ForwardClsBatchWS(seqs, ws) // warm the arena for this batch shape
	allocs := testing.AllocsPerRun(100, func() {
		ws.Reset()
		m.ForwardClsBatchWS(seqs, ws)
	})
	if allocs > 4 {
		t.Fatalf("ForwardClsBatchWS allocates %v times per op, want ≤ 4", allocs)
	}
}

// TestScoreChoiceBatchCachedAllocations pins the steady-state allocation
// count of the batched cached-prefix scoring path (the ICL serving inner
// loop): with the vocabulary logits arena-backed, only the returned best/
// probability slices allocate — per batch, not per vocabulary row.
func TestScoreChoiceBatchCachedAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	m := New(smallConfig(true), tensor.NewRNG(94))
	cache := m.InferKVCache([]int{1, 2, 3, 4, 5, 6})
	suffixes := [][]int{{7, 8}, {9}, {4, 5, 6}}
	choices := []int{1, 2}
	ws := tensor.NewWorkspace()
	ws.Reset()
	m.ScoreChoiceBatchWithCacheWS(cache, suffixes, choices, ws) // warm arenas
	allocs := testing.AllocsPerRun(100, func() {
		ws.Reset()
		m.ScoreChoiceBatchWithCacheWS(cache, suffixes, choices, ws)
	})
	// Budget: the best-index slice, the probability slice-of-slices, and one
	// choice-probability slice per suffix (3 here) — 5 measured — plus
	// headroom for pool noise on the double-buffered block scratch. The
	// pre-arena implementation allocated a [B, VocabSize] logits matrix and
	// hundreds of forward-pass temporaries per call.
	if allocs > 8 {
		t.Fatalf("cached batch scoring allocates %v times per op, want ≤ 8", allocs)
	}
}

// TestQuantizedBatchForwardAllocations pins that the int8 inference path
// stays as allocation-lean as fp32: the quantized projections draw their
// activation-code buffers from the same arena discipline.
func TestQuantizedBatchForwardAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	m := New(smallConfig(false), tensor.NewRNG(95))
	m.QuantizeInt8(0)
	seqs := [][]int{{1, 2, 3}, {4, 5}, {6, 7, 8, 9}}
	ws := tensor.NewWorkspace()
	ws.Reset()
	m.ForwardClsBatchWS(seqs, ws) // warm the arena for this batch shape
	allocs := testing.AllocsPerRun(100, func() {
		ws.Reset()
		m.ForwardClsBatchWS(seqs, ws)
	})
	if allocs > 4 {
		t.Fatalf("quantized ForwardClsBatchWS allocates %v times per op, want ≤ 4", allocs)
	}
}

// TestWorkspaceForwardIsConcurrencySafe exercises the workspace-threaded
// batch paths from many goroutines — each with its own arena, all sharing
// one model and one KV cache — under -race.
func TestWorkspaceForwardIsConcurrencySafe(t *testing.T) {
	enc := batchTestModel(false)
	seqs := batchTestSeqs(5, enc.Config.VocabSize, enc.Config.MaxSeqLen, 23)
	wantCls := enc.ForwardClsBatch(seqs)

	dec := batchTestModel(true)
	prefix := batchTestSeqs(1, dec.Config.VocabSize, dec.Config.MaxSeqLen/2, 29)[0]
	cache := dec.InferKVCache(prefix)
	suffixes := batchTestSeqs(4, dec.Config.VocabSize, dec.Config.MaxSeqLen-len(prefix), 31)
	wantBest, _ := dec.ScoreChoiceBatchWithCache(cache, suffixes, []int{3, 4})

	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := tensor.GetWorkspace()
			defer tensor.PutWorkspace(ws)
			for rep := 0; rep < 5; rep++ {
				ws.Reset()
				if got := enc.ForwardClsBatchWS(seqs, ws); !got.Equal(wantCls) {
					errs <- "concurrent ForwardClsBatchWS diverged"
					return
				}
				ws.Reset()
				best, _ := dec.ScoreChoiceBatchWithCacheWS(cache, suffixes, []int{3, 4}, ws)
				for i := range best {
					if best[i] != wantBest[i] {
						errs <- "concurrent cached scoring diverged"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
