// Int8 model quantization: converting a trained model's linear projections to
// the integer inference path, and serializing/restoring the int8 weights.
//
// QuantizeInt8 is the serving-time counterpart of Quantize4Bit: where the
// 4-bit path is storage-only fake-quant (dequantize, then compute in fp32),
// the int8 path swaps every projection for an nn.QuantizedLinear whose
// forward computes in integers end-to-end (tensor.MatMulQ8). LoRA adapters
// are merged into their bases first — the deployment recipe — so a quantized
// model has a uniform layer structure regardless of how it was fine-tuned.
//
// After quantization Params() no longer includes the projection weight
// matrices (only their fp32 biases), so Save/Load carry the residual fp32
// parameters while SaveQuantized/LoadQuantized carry the int8 codes and
// scales through their own section. The two streams together round-trip a
// quantized model exactly.
package transformer

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// QuantInt8Stats reports what QuantizeInt8 did.
type QuantInt8Stats struct {
	// Layers is the number of distinct projections quantized (shared-layer
	// models count each shared projection once).
	Layers int
	// PackedBytes is the resident size of the int8 compute form.
	PackedBytes int
	// CodesBytes is the serialized size (1 byte per weight plus scales).
	CodesBytes int
	// FP32Bytes is the size the same weights occupied in float32.
	FP32Bytes int
}

// quantSlot is one projection position that QuantizeInt8 may rewrite.
type quantSlot struct {
	get func() nn.Layer
	set func(nn.Layer)
}

// quantSlots returns every quantizable projection slot in canonical order —
// per block: Wq, Wk, Wv, Wo, FF1, FF2; then the LM head. The classification
// head is excluded deliberately (see Model.LMHead's comment). Serialization
// and loading both walk this order, so the stream needs no layout table.
func (m *Model) quantSlots() []quantSlot {
	var out []quantSlot
	for _, b := range m.Blocks {
		b := b
		out = append(out,
			quantSlot{func() nn.Layer { return b.Attn.Wq }, func(l nn.Layer) { b.Attn.Wq = l }},
			quantSlot{func() nn.Layer { return b.Attn.Wk }, func(l nn.Layer) { b.Attn.Wk = l }},
			quantSlot{func() nn.Layer { return b.Attn.Wv }, func(l nn.Layer) { b.Attn.Wv = l }},
			quantSlot{func() nn.Layer { return b.Attn.Wo }, func(l nn.Layer) { b.Attn.Wo = l }},
			quantSlot{func() nn.Layer { return b.FF1 }, func(l nn.Layer) { b.FF1 = l }},
			quantSlot{func() nn.Layer { return b.FF2 }, func(l nn.Layer) { b.FF2 = l }},
		)
	}
	out = append(out, quantSlot{func() nn.Layer { return m.LMHead }, func(l nn.Layer) { m.LMHead = l }})
	return out
}

// QuantizeInt8 converts the model to int8 inference form in place: LoRA
// adapters (if any) are merged into their bases, then every attention
// projection, feed-forward layer, and the LM head is replaced by an
// nn.QuantizedLinear with the given scale-block length (≤ 0 selects
// tensor.QInt8Block). Shared-layer (ALBERT) models quantize each shared
// projection once and install the same quantized layer in every block.
//
// The model afterwards serves inference only: training forwards/backwards
// through quantized projections panic. Quantizing twice panics.
func (m *Model) QuantizeInt8(block int) QuantInt8Stats {
	if m.IsQuantized() {
		panic("transformer: model is already int8-quantized")
	}
	// Merge LoRA into the bases first (deployment order: adapt, merge,
	// quantize). Walking quantSlots keeps this in lockstep with the set of
	// projections quantized below, whichever slots LoRA targets.
	for _, s := range m.quantSlots() {
		if lora, ok := s.get().(*nn.LoRALinear); ok {
			s.set(lora.Merge())
		}
	}
	var stats QuantInt8Stats
	seen := make(map[*nn.Param]*nn.QuantizedLinear)
	for _, s := range m.quantSlots() {
		lin, ok := s.get().(*nn.Linear)
		if !ok {
			panic(fmt.Sprintf("transformer: cannot quantize projection of type %T", s.get()))
		}
		q := seen[lin.Weight]
		if q == nil {
			q = nn.QuantizeLinearInt8(lin, block)
			seen[lin.Weight] = q
			stats.Layers++
			stats.PackedBytes += q.W.MemoryBytes()
			stats.CodesBytes += q.W.CodesBytes()
			stats.FP32Bytes += q.W.Float32Bytes()
		}
		s.set(q)
	}
	return stats
}

// IsQuantized reports whether the model's projections run on the int8 path.
func (m *Model) IsQuantized() bool {
	_, ok := m.LMHead.(*nn.QuantizedLinear)
	return ok
}

// QuantizedLinears returns the distinct int8 projections in canonical slot
// order (shared layers once), or nil for an fp32 model.
func (m *Model) QuantizedLinears() []*nn.QuantizedLinear {
	var out []*nn.QuantizedLinear
	seen := make(map[*nn.QuantizedLinear]bool)
	for _, s := range m.quantSlots() {
		if q, ok := s.get().(*nn.QuantizedLinear); ok && !seen[q] {
			seen[q] = true
			out = append(out, q)
		}
	}
	return out
}

// quantizedMagic identifies the int8 weights wire format ("WFQ8").
const quantizedMagic = uint32(0x57465138)

// SaveQuantized writes the model's int8 projections (codes and scales, in
// canonical slot order) to w. The fp32 residue — embeddings, layer norms,
// biases, classification head — travels through Save as usual; the two
// streams together round-trip a quantized model exactly.
func (m *Model) SaveQuantized(w io.Writer) error {
	qs := m.QuantizedLinears()
	if len(qs) == 0 {
		return fmt.Errorf("transformer: SaveQuantized on a model with no int8 layers")
	}
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, quantizedMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(qs))); err != nil {
		return err
	}
	for _, q := range qs {
		name := []byte(q.Name)
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		for _, v := range []uint32{uint32(q.W.In), uint32(q.W.Out), uint32(q.W.Block)} {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		scaleBuf := make([]byte, 4*len(q.W.Scales))
		for i, s := range q.W.Scales {
			binary.LittleEndian.PutUint32(scaleBuf[4*i:], math.Float32bits(s))
		}
		if _, err := bw.Write(scaleBuf); err != nil {
			return err
		}
		codes := q.W.Codes()
		codeBuf := make([]byte, len(codes))
		for i, c := range codes {
			codeBuf[i] = byte(c)
		}
		if _, err := bw.Write(codeBuf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadQuantized reads a SaveQuantized stream and installs the int8
// projections into the model, which must be a freshly built fp32 model with
// the same architecture (the stream's layer names and shapes are verified
// against the model's canonical slot walk; any mismatch is rejected with an
// error naming the offending layer). Call before Load: afterwards Params()
// matches the residual fp32 parameter stream a quantized checkpoint carries.
func (m *Model) LoadQuantized(r io.Reader) error {
	if m.IsQuantized() {
		return fmt.Errorf("transformer: LoadQuantized on an already-quantized model")
	}
	br := bufio.NewReader(r)
	var magic, count uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("transformer: reading quantized-weights magic: %w", err)
	}
	if magic != quantizedMagic {
		return fmt.Errorf("transformer: bad quantized-weights magic %#x (want %#x)", magic, quantizedMagic)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("transformer: reading quantized layer count: %w", err)
	}
	seen := make(map[*nn.Param]*nn.QuantizedLinear)
	read := 0
	for _, s := range m.quantSlots() {
		lin, ok := s.get().(*nn.Linear)
		if !ok {
			return fmt.Errorf("transformer: quantized load found projection of type %T (LoRA model? merge before quantizing)", s.get())
		}
		if q := seen[lin.Weight]; q != nil {
			s.set(q) // shared-layer slot: reuse the already-loaded projection
			continue
		}
		if read == int(count) {
			return fmt.Errorf("transformer: quantized stream has %d layers, model expects more (architecture mismatch)", count)
		}
		q, err := readQuantizedLayer(br, lin)
		if err != nil {
			return err
		}
		seen[lin.Weight] = q
		s.set(q)
		read++
	}
	if read != int(count) {
		return fmt.Errorf("transformer: quantized stream has %d layers, model consumed %d (architecture mismatch)", count, read)
	}
	return nil
}

// readQuantizedLayer parses one layer entry and verifies it against the slot
// it is about to fill.
func readQuantizedLayer(br *bufio.Reader, lin *nn.Linear) (*nn.QuantizedLinear, error) {
	var nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, fmt.Errorf("transformer: quantized stream truncated at %s: %w", lin.Weight.Name, err)
	}
	if nameLen > maxParamNameBytes {
		return nil, fmt.Errorf("transformer: quantized layer name length %d (corrupt stream?)", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("transformer: quantized stream truncated reading name at %s: %w", lin.Weight.Name, err)
	}
	if string(name) != lin.Weight.Name {
		return nil, fmt.Errorf("transformer: quantized layer is %q, model expects %q (architecture mismatch)", name, lin.Weight.Name)
	}
	var in, out, block uint32
	for _, p := range []*uint32{&in, &out, &block} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("transformer: quantized stream truncated reading shape of %s: %w", lin.Weight.Name, err)
		}
	}
	if int(in) != lin.In() || int(out) != lin.Out() {
		return nil, fmt.Errorf("transformer: quantized layer %s is %dx%d, model expects %dx%d",
			lin.Weight.Name, in, out, lin.In(), lin.Out())
	}
	// A block longer than In is valid (per-channel scales, nb = 1); only a
	// zero or implausibly large block marks corruption.
	if block == 0 || block > 1<<20 {
		return nil, fmt.Errorf("transformer: quantized layer %s has block %d (corrupt stream?)", lin.Weight.Name, block)
	}
	nb := (int(in) + int(block) - 1) / int(block)
	scaleBuf := make([]byte, 4*int(out)*nb)
	if _, err := io.ReadFull(br, scaleBuf); err != nil {
		return nil, fmt.Errorf("transformer: quantized stream truncated reading %s scales: %w", lin.Weight.Name, err)
	}
	scales := make([]float32, int(out)*nb)
	for i := range scales {
		scales[i] = math.Float32frombits(binary.LittleEndian.Uint32(scaleBuf[4*i:]))
	}
	codeBuf := make([]byte, int(in)*int(out))
	if _, err := io.ReadFull(br, codeBuf); err != nil {
		return nil, fmt.Errorf("transformer: quantized stream truncated reading %s codes: %w", lin.Weight.Name, err)
	}
	codes := make([]int8, len(codeBuf))
	for i, b := range codeBuf {
		codes[i] = int8(b)
	}
	qm, err := tensor.NewQInt8FromCodes(int(in), int(out), int(block), codes, scales)
	if err != nil {
		return nil, fmt.Errorf("transformer: quantized layer %s: %w", lin.Weight.Name, err)
	}
	return &nn.QuantizedLinear{Name: lin.Weight.Name, W: qm, Bias: lin.Bias}, nil
}
