package transformer

import (
	"repro/internal/tensor"
)

// NextTokenLogits runs a forward pass over prompt and returns the logits for
// the next token (the LM head output at the final position). The model must
// be causal.
func (m *Model) NextTokenLogits(prompt []int) []float32 {
	if !m.Config.Causal {
		panic("transformer: NextTokenLogits requires a causal model")
	}
	if len(prompt) > m.Config.MaxSeqLen {
		// Keep the most recent context — the right edge carries the query.
		prompt = prompt[len(prompt)-m.Config.MaxSeqLen:]
	}
	logits := m.ForwardLM(prompt, false)
	out := make([]float32, logits.Cols)
	copy(out, logits.Row(logits.Rows-1))
	m.lastIDs, m.lastH = nil, nil
	return out
}

// GenerateOptions controls autoregressive decoding.
type GenerateOptions struct {
	// MaxNewTokens bounds the generated continuation length.
	MaxNewTokens int
	// Temperature scales logits before sampling; 0 selects greedy decoding.
	Temperature float64
	// StopTokens end generation when produced (e.g. [SEP]/[EOS]).
	StopTokens []int
	// RNG supplies sampling randomness (required when Temperature > 0).
	RNG *tensor.RNG
}

// Generate autoregressively extends prompt, returning only the newly
// generated token ids.
func (m *Model) Generate(prompt []int, opts GenerateOptions) []int {
	stop := make(map[int]bool, len(opts.StopTokens))
	for _, t := range opts.StopTokens {
		stop[t] = true
	}
	ctx := make([]int, len(prompt))
	copy(ctx, prompt)
	var out []int
	for step := 0; step < opts.MaxNewTokens; step++ {
		logits := m.NextTokenLogits(ctx)
		var next int
		if opts.Temperature <= 0 {
			next = tensor.ArgMax(logits)
		} else {
			inv := float32(1 / opts.Temperature)
			for i := range logits {
				logits[i] *= inv
			}
			tensor.Softmax(logits)
			next = sampleCategorical(logits, opts.RNG)
		}
		if stop[next] {
			break
		}
		out = append(out, next)
		ctx = append(ctx, next)
	}
	return out
}

// ScoreChoice compares candidate continuation tokens and returns the index
// of the one the model assigns the highest next-token logit, along with the
// softmax probability over just those choices. This is the constrained
// decoding used for ICL classification: the choices are the first tokens of
// "Normal" and "Abnormal".
func (m *Model) ScoreChoice(prompt []int, choices []int) (best int, probs []float32) {
	logits := m.NextTokenLogits(prompt)
	sub := make([]float32, len(choices))
	for i, c := range choices {
		sub[i] = logits[c]
	}
	tensor.Softmax(sub)
	return tensor.ArgMax(sub), sub
}

func sampleCategorical(probs []float32, rng *tensor.RNG) int {
	if rng == nil {
		panic("transformer: sampling requires an RNG")
	}
	r := rng.Float32()
	var acc float32
	for i, p := range probs {
		acc += p
		if r < acc {
			return i
		}
	}
	return len(probs) - 1
}
