package transformer

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Block is one pre-norm transformer layer:
//
//	x = x + Dropout(Attn(LN1(x)))
//	x = x + Dropout(FFN(LN2(x)))
//
// Pre-norm is used (rather than the original post-norm) because it trains
// stably without a warmup-sensitive schedule at the small scales of this
// reproduction; the paper's claims do not depend on norm placement.
type Block struct {
	LN1  *nn.LayerNorm
	Attn *MultiHeadAttention
	LN2  *nn.LayerNorm
	// FF1 and FF2 are nn.Layer (constructed as *nn.Linear) so the feed-forward
	// projections can be swapped for inference-only nn.QuantizedLinear layers
	// by Model.QuantizeInt8, mirroring the Wq/Wv slots LoRA already swaps.
	FF1   nn.Layer
	Act   *nn.GELU
	FF2   nn.Layer
	dropA *nn.Dropout
	dropF *nn.Dropout
}

// NewBlock builds a transformer block with the given dimensions.
func NewBlock(name string, dModel, numHeads, ffnDim int, causal bool, dropout float32, rng *tensor.RNG) *Block {
	return &Block{
		LN1:   nn.NewLayerNorm(name+".ln1", dModel),
		Attn:  NewMultiHeadAttention(name+".attn", dModel, numHeads, causal, rng),
		LN2:   nn.NewLayerNorm(name+".ln2", dModel),
		FF1:   nn.NewLinear(name+".ff1", dModel, ffnDim, rng),
		Act:   nn.NewGELU(),
		FF2:   nn.NewLinear(name+".ff2", ffnDim, dModel, rng),
		dropA: nn.NewDropout(dropout, rng.Split()),
		dropF: nn.NewDropout(dropout, rng.Split()),
	}
}

// SharedCopy returns a block sharing b's parameters but owning its forward
// caches, enabling ALBERT-style cross-layer parameter sharing: N distinct
// Block values reuse one set of weights, and their gradients accumulate into
// the shared Param buffers.
func (b *Block) SharedCopy(rng *tensor.RNG) *Block {
	ff1, ff2 := b.FF1.(*nn.Linear), b.FF2.(*nn.Linear)
	return &Block{
		LN1:   &nn.LayerNorm{Gamma: b.LN1.Gamma, Beta: b.LN1.Beta, Eps: b.LN1.Eps},
		Attn:  b.Attn.sharedCopy(),
		LN2:   &nn.LayerNorm{Gamma: b.LN2.Gamma, Beta: b.LN2.Beta, Eps: b.LN2.Eps},
		FF1:   &nn.Linear{Weight: ff1.Weight, Bias: ff1.Bias},
		Act:   nn.NewGELU(),
		FF2:   &nn.Linear{Weight: ff2.Weight, Bias: ff2.Bias},
		dropA: nn.NewDropout(b.dropA.P, rng.Split()),
		dropF: nn.NewDropout(b.dropF.P, rng.Split()),
	}
}

// Forward runs the block over x [T, dModel].
func (b *Block) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	h := b.LN1.Forward(x, train)
	h = b.Attn.Forward(h, train)
	h = b.dropA.Forward(h, train)
	x1 := tensor.Add(nil, x, h)

	h2 := b.LN2.Forward(x1, train)
	h2 = b.FF1.Forward(h2, train)
	h2 = b.Act.Forward(h2, train)
	h2 = b.FF2.Forward(h2, train)
	h2 = b.dropF.Forward(h2, train)
	return tensor.Add(nil, x1, h2)
}

// Backward propagates dout through the block and returns dx.
func (b *Block) Backward(dout *tensor.Matrix) *tensor.Matrix {
	// Residual 2: out = x1 + drop(FF(LN2(x1))).
	dh2 := b.dropF.Backward(dout)
	dh2 = b.FF2.Backward(dh2)
	dh2 = b.Act.Backward(dh2)
	dh2 = b.FF1.Backward(dh2)
	dx1 := b.LN2.Backward(dh2)
	tensor.AddScaled(dx1, dout, 1)

	// Residual 1: x1 = x + drop(Attn(LN1(x))).
	dh := b.dropA.Backward(dx1)
	dh = b.Attn.Backward(dh)
	dx := b.LN1.Backward(dh)
	tensor.AddScaled(dx, dx1, 1)
	return dx
}

// Params returns all block parameters.
func (b *Block) Params() []*nn.Param {
	var out []*nn.Param
	out = append(out, b.LN1.Params()...)
	out = append(out, b.Attn.Params()...)
	out = append(out, b.LN2.Params()...)
	out = append(out, b.FF1.Params()...)
	out = append(out, b.FF2.Params()...)
	return out
}
