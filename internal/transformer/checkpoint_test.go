package transformer

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestCloneProducesIdenticalOutputs(t *testing.T) {
	m := New(smallConfig(false), tensor.NewRNG(31))
	c := m.Clone()
	ids := []int{1, 2, 3, 4}
	if !m.ForwardCls(ids, false).Equal(c.ForwardCls(ids, false)) {
		t.Fatal("clone output differs")
	}
	// Mutating the clone must not affect the original.
	c.ClsHead.Weight.W.Data[0] += 1
	if m.ForwardCls(ids, false).Equal(c.ForwardCls(ids, false)) {
		t.Fatal("clone shares storage with original")
	}
}

func TestClonePreservesFrozenFlags(t *testing.T) {
	m := New(smallConfig(false), tensor.NewRNG(32))
	m.FreezeBackbone()
	c := m.Clone()
	if !c.TokEmb.Table.Frozen {
		t.Fatal("clone dropped frozen flag")
	}
	if c.ClsHead.Weight.Frozen {
		t.Fatal("clone froze unfrozen param")
	}
}

func TestCloneSharedLayers(t *testing.T) {
	cfg := smallConfig(false)
	cfg.ShareLayers = true
	cfg.NumLayers = 3
	m := New(cfg, tensor.NewRNG(33))
	c := m.Clone()
	ids := []int{1, 2, 3}
	if !m.ForwardCls(ids, false).Equal(c.ForwardCls(ids, false)) {
		t.Fatal("shared-layer clone output differs")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := New(smallConfig(true), tensor.NewRNG(34))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(smallConfig(true), tensor.NewRNG(99)) // different init
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	ids := []int{2, 4, 6}
	if !m.ForwardLM(ids, false).Equal(m2.ForwardLM(ids, false)) {
		t.Fatal("loaded model differs from saved model")
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	m := New(smallConfig(false), tensor.NewRNG(35))
	if err := m.Load(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestLoadRejectsArchitectureMismatch(t *testing.T) {
	m := New(smallConfig(false), tensor.NewRNG(36))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := smallConfig(false)
	other.DModel = 16 // divisible by heads, different shape
	m2 := New(other, tensor.NewRNG(37))
	if err := m2.Load(&buf); err == nil {
		t.Fatal("expected error on architecture mismatch")
	}
}

func TestLoadRejectsTruncatedCheckpoint(t *testing.T) {
	m := New(smallConfig(false), tensor.NewRNG(38))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut mid-way through the weight data of some parameter: the error must
	// say "truncated" and name the field instead of panicking or mis-reading.
	m2 := New(smallConfig(false), tensor.NewRNG(39))
	err := m2.Load(bytes.NewReader(full[:len(full)/2]))
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncation error = %v", err)
	}
	// Cut inside the header region too.
	if err := m2.Load(bytes.NewReader(full[:6])); err == nil {
		t.Fatal("expected error on truncated header")
	}
}

func TestLoadRejectsParamNameMismatch(t *testing.T) {
	cfg := smallConfig(false)
	m := New(cfg, tensor.NewRNG(40))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Name = "different-model"
	m2 := New(other, tensor.NewRNG(41))
	err := m2.Load(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "model expects") {
		t.Fatalf("name mismatch error = %v", err)
	}
}

func TestLoadErrorNamesShapeMismatch(t *testing.T) {
	cfg := smallConfig(false)
	m := New(cfg, tensor.NewRNG(42))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.DModel = 16
	other.FFNDim = 32
	m2 := New(other, tensor.NewRNG(43))
	err := m2.Load(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("expected shape mismatch error")
	}
	// The message must carry the field name and both shapes.
	if !strings.Contains(err.Error(), "tok_emb") || !strings.Contains(err.Error(), "expects") {
		t.Fatalf("shape mismatch error lacks field/shape detail: %v", err)
	}
}
