package transformer

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// quantCloseEnough compares an int8-path output against the fp32 reference:
// quantization error must stay a small fraction of the reference magnitude.
func quantCloseEnough(t *testing.T, what string, got, want *tensor.Matrix, relTol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", what, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	var maxAbs, maxErr float64
	for i, v := range want.Data {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
		if e := math.Abs(float64(v - got.Data[i])); e > maxErr {
			maxErr = e
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	if maxErr > relTol*maxAbs {
		t.Fatalf("%s: int8 max error %.5f vs fp32 max magnitude %.3f (rel %.4f > %.4f)",
			what, maxErr, maxAbs, maxErr/maxAbs, relTol)
	}
}

// TestQuantizeInt8BatchForwardParity pins the quantized batched forwards —
// encoder classification and decoder cached-prefix scoring — against the fp32
// model they were quantized from.
func TestQuantizeInt8BatchForwardParity(t *testing.T) {
	// Encoder classification path.
	enc := batchTestModel(false)
	seqs := batchTestSeqs(6, enc.Config.VocabSize, enc.Config.MaxSeqLen, 41)
	wantCls := enc.ForwardClsBatch(seqs)
	stats := enc.QuantizeInt8(0)
	if !enc.IsQuantized() {
		t.Fatal("model does not report quantized")
	}
	if stats.Layers != 6*enc.Config.NumLayers+1 {
		t.Fatalf("quantized %d layers, want %d", stats.Layers, 6*enc.Config.NumLayers+1)
	}
	if stats.CodesBytes*3 >= stats.FP32Bytes {
		t.Fatalf("serialized int8 %dB not well under fp32 %dB", stats.CodesBytes, stats.FP32Bytes)
	}
	gotCls := enc.ForwardClsBatch(seqs)
	quantCloseEnough(t, "ForwardClsBatch", gotCls, wantCls, 0.15)

	// Decoder cached-prefix path (the ICL serving loop).
	dec := batchTestModel(true)
	prefix := batchTestSeqs(1, dec.Config.VocabSize, dec.Config.MaxSeqLen/2, 43)[0]
	suffixes := batchTestSeqs(5, dec.Config.VocabSize, dec.Config.MaxSeqLen-len(prefix), 47)
	wantLogits := dec.NextTokenLogitsBatchWithCache(dec.InferKVCache(prefix), suffixes)
	dec.QuantizeInt8(0)
	cache := dec.InferKVCache(prefix)
	gotLogits := dec.NextTokenLogitsBatchWithCache(cache, suffixes)
	quantCloseEnough(t, "NextTokenLogitsBatchWithCache", gotLogits, wantLogits, 0.15)

	// Single-suffix decode agrees with its own batched path bitwise.
	one := dec.NextTokenLogitsWithCache(cache, suffixes[0])
	for j, v := range gotLogits.Row(0) {
		if one[j] != v {
			t.Fatal("quantized single decode diverged from batched decode")
		}
	}
}

// TestQuantizeInt8MergesLoRA pins that quantization folds adapters in: the
// quantized model approximates the adapted (merged) weights, not the base.
func TestQuantizeInt8MergesLoRA(t *testing.T) {
	m := batchTestModel(true)
	rng := tensor.NewRNG(91)
	m.ApplyLoRA(4, 8, 0, rng)
	// Nudge the adapters off LoRA's B=0 init so merging visibly changes Wq.
	for _, b := range m.Blocks {
		lora := b.Attn.Wq.(*nn.LoRALinear)
		tensor.Gaussian(lora.B.W, 0.05, rng)
	}
	seqs := batchTestSeqs(4, m.Config.VocabSize, m.Config.MaxSeqLen, 53)
	want := m.ForwardClsBatch(seqs)
	m.QuantizeInt8(0)
	for _, b := range m.Blocks {
		if _, ok := b.Attn.Wq.(*nn.QuantizedLinear); !ok {
			t.Fatalf("LoRA-wrapped Wq not quantized: %T", b.Attn.Wq)
		}
	}
	got := m.ForwardClsBatch(seqs)
	quantCloseEnough(t, "LoRA-merged ForwardClsBatch", got, want, 0.15)
}

// TestQuantizeInt8SharedLayers pins ALBERT-style models: shared projections
// are quantized once and every block serves the same quantized layer.
func TestQuantizeInt8SharedLayers(t *testing.T) {
	cfg := smallConfig(false)
	cfg.ShareLayers = true
	cfg.NumLayers = 3
	m := New(cfg, tensor.NewRNG(61))
	seqs := batchTestSeqs(3, cfg.VocabSize, cfg.MaxSeqLen, 67)
	want := m.ForwardClsBatch(seqs)
	stats := m.QuantizeInt8(0)
	// 6 projections shared across blocks + the LM head.
	if stats.Layers != 7 {
		t.Fatalf("shared-layer model quantized %d distinct layers, want 7", stats.Layers)
	}
	if m.Blocks[0].FF1 != m.Blocks[1].FF1 || m.Blocks[1].FF1 != m.Blocks[2].FF1 {
		t.Fatal("shared blocks do not share the quantized FF1")
	}
	got := m.ForwardClsBatch(seqs)
	quantCloseEnough(t, "shared-layer ForwardClsBatch", got, want, 0.15)
}

// TestQuantizedSaveLoadRoundTrip pins the two-stream checkpoint: residual
// fp32 params through Save/Load, int8 codes through SaveQuantized/
// LoadQuantized, restoring bitwise-identical inference.
func TestQuantizedSaveLoadRoundTrip(t *testing.T) {
	m := batchTestModel(true)
	m.QuantizeInt8(0)
	var wBuf, qBuf bytes.Buffer
	if err := m.SaveQuantized(&qBuf); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(&wBuf); err != nil {
		t.Fatal(err)
	}

	rt := New(m.Config, tensor.NewRNG(99))
	if err := rt.LoadQuantized(bytes.NewReader(qBuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := rt.Load(bytes.NewReader(wBuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	seqs := batchTestSeqs(5, m.Config.VocabSize, m.Config.MaxSeqLen, 71)
	if !rt.ForwardClsBatch(seqs).Equal(m.ForwardClsBatch(seqs)) {
		t.Fatal("round-tripped quantized model is not bitwise identical")
	}
}

// TestLoadQuantizedRejectsMismatch pins the load-time validation paths.
func TestLoadQuantizedRejectsMismatch(t *testing.T) {
	m := batchTestModel(true)
	m.QuantizeInt8(0)
	var qBuf bytes.Buffer
	if err := m.SaveQuantized(&qBuf); err != nil {
		t.Fatal(err)
	}

	// Wrong architecture: different dModel.
	cfg := m.Config
	cfg.DModel, cfg.FFNDim = 16, 32
	other := New(cfg, tensor.NewRNG(1))
	if err := other.LoadQuantized(bytes.NewReader(qBuf.Bytes())); err == nil {
		t.Fatal("shape mismatch accepted")
	}

	// Truncated stream.
	fresh := New(m.Config, tensor.NewRNG(1))
	if err := fresh.LoadQuantized(bytes.NewReader(qBuf.Bytes()[:qBuf.Len()/2])); err == nil {
		t.Fatal("truncated stream accepted")
	}

	// Wrong magic.
	bad := append([]byte(nil), qBuf.Bytes()...)
	bad[0] ^= 0xFF
	if err := fresh.LoadQuantized(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Double load.
	loaded := New(m.Config, tensor.NewRNG(1))
	if err := loaded.LoadQuantized(bytes.NewReader(qBuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := loaded.LoadQuantized(bytes.NewReader(qBuf.Bytes())); err == nil {
		t.Fatal("double quantized load accepted")
	}
}

// TestQuantizedBackwardPanics pins that the quantized model refuses to train.
func TestQuantizedBackwardPanics(t *testing.T) {
	m := batchTestModel(false)
	m.QuantizeInt8(0)
	defer func() {
		if recover() == nil {
			t.Fatal("training forward/backward through a quantized model did not panic")
		}
	}()
	logits := m.ForwardCls([]int{1, 2, 3}, true)
	m.BackwardCls(logits)
}

// TestQuantizeTwicePanics pins double quantization.
func TestQuantizeTwicePanics(t *testing.T) {
	m := batchTestModel(false)
	m.QuantizeInt8(0)
	defer func() {
		if recover() == nil {
			t.Fatal("second QuantizeInt8 did not panic")
		}
	}()
	m.QuantizeInt8(0)
}
