package transformer

import (
	"sync"
	"testing"

	"repro/internal/tensor"
)

func batchTestModel(causal bool) *Model {
	cfg := Config{
		Name: "batch-test", VocabSize: 120, MaxSeqLen: 32, DModel: 32,
		NumHeads: 4, NumLayers: 2, FFNDim: 64, Causal: causal, NumClasses: 2,
	}
	return New(cfg, tensor.NewRNG(7))
}

func batchTestSeqs(n, vocab, maxLen int, seed uint64) [][]int {
	rng := tensor.NewRNG(seed)
	seqs := make([][]int, n)
	for i := range seqs {
		T := 1 + rng.Intn(maxLen)
		ids := make([]int, T)
		for t := range ids {
			ids[t] = rng.Intn(vocab)
		}
		seqs[i] = ids
	}
	return seqs
}

func TestForwardClsBatchMatchesSequential(t *testing.T) {
	for _, causal := range []bool{false, true} {
		m := batchTestModel(causal)
		seqs := batchTestSeqs(9, m.Config.VocabSize, m.Config.MaxSeqLen, 3)
		got := m.ForwardClsBatch(seqs)
		if got.Rows != len(seqs) || got.Cols != m.Config.NumClasses {
			t.Fatalf("batch logits shape %dx%d", got.Rows, got.Cols)
		}
		for i, ids := range seqs {
			want := m.ForwardCls(ids, false)
			row := tensor.NewFrom(1, got.Cols, got.Row(i))
			if !row.AllClose(want, 1e-5) {
				t.Fatalf("causal=%v seq %d: batch %v vs sequential %v", causal, i, got.Row(i), want.Row(0))
			}
		}
	}
}

func TestForwardClsBatchTruncatesKeepingHead(t *testing.T) {
	m := batchTestModel(false)
	long := make([]int, m.Config.MaxSeqLen+10)
	for i := range long {
		long[i] = i % m.Config.VocabSize
	}
	batch := [][]int{long}
	got := m.ForwardClsBatch(batch)
	want := m.ForwardCls(long, false) // Encode truncates the same way
	if !tensor.NewFrom(1, got.Cols, got.Row(0)).AllClose(want, 1e-5) {
		t.Fatal("truncated batch forward differs from sequential")
	}
	if len(batch[0]) != m.Config.MaxSeqLen+10 {
		t.Fatal("EncodeBatch mutated the caller's sequence batch")
	}
}

func TestNextTokenLogitsBatchMatchesSequential(t *testing.T) {
	m := batchTestModel(true)
	prompts := batchTestSeqs(8, m.Config.VocabSize, m.Config.MaxSeqLen, 5)
	// Include one over-length prompt: both paths keep the right edge.
	long := make([]int, m.Config.MaxSeqLen+7)
	for i := range long {
		long[i] = (i * 3) % m.Config.VocabSize
	}
	prompts = append(prompts, long)
	logits := m.NextTokenLogitsBatch(prompts)
	if logits.Rows != len(prompts) || logits.Cols != m.Config.VocabSize {
		t.Fatalf("batch logits shape %dx%d", logits.Rows, logits.Cols)
	}
	for i, p := range prompts {
		want := m.NextTokenLogits(p)
		for j, v := range logits.Row(i) {
			d := v - want[j]
			if d < 0 {
				d = -d
			}
			if d > 1e-5 {
				t.Fatalf("prompt %d logit %d: batch %v vs sequential %v", i, j, v, want[j])
			}
		}
	}
}

func TestScoreChoiceBatchMatchesSequential(t *testing.T) {
	m := batchTestModel(true)
	prompts := batchTestSeqs(8, m.Config.VocabSize, m.Config.MaxSeqLen, 9)
	choices := []int{10, 20}
	best, probs := m.ScoreChoiceBatch(prompts, choices)
	for i, p := range prompts {
		wantBest, wantProbs := m.ScoreChoice(p, choices)
		if best[i] != wantBest {
			t.Fatalf("prompt %d: batch choice %d vs sequential %d", i, best[i], wantBest)
		}
		for c := range choices {
			d := probs[i][c] - wantProbs[c]
			if d < 0 {
				d = -d
			}
			if d > 1e-5 {
				t.Fatalf("prompt %d choice %d prob mismatch", i, c)
			}
		}
	}
}

func TestInferKVCacheMatchesBuildKVCache(t *testing.T) {
	m := batchTestModel(true)
	prefix := batchTestSeqs(1, m.Config.VocabSize, m.Config.MaxSeqLen/2, 13)[0]
	want := m.BuildKVCache(prefix)
	got := m.InferKVCache(prefix)
	if got.Len != want.Len || len(got.Layers) != len(want.Layers) {
		t.Fatalf("cache shape: len %d/%d layers %d/%d", got.Len, want.Len, len(got.Layers), len(want.Layers))
	}
	for li := range want.Layers {
		if !got.Layers[li].K.AllClose(want.Layers[li].K, 1e-5) ||
			!got.Layers[li].V.AllClose(want.Layers[li].V, 1e-5) {
			t.Fatalf("layer %d cache differs between read-only and caching builders", li)
		}
	}
}

func TestNextTokenLogitsBatchWithCacheMatchesSequential(t *testing.T) {
	m := batchTestModel(true)
	prefix := batchTestSeqs(1, m.Config.VocabSize, m.Config.MaxSeqLen/2, 17)[0]
	suffixes := batchTestSeqs(6, m.Config.VocabSize, m.Config.MaxSeqLen-len(prefix), 19)
	cache := m.InferKVCache(prefix)
	logits := m.NextTokenLogitsBatchWithCache(cache, suffixes)
	if logits.Rows != len(suffixes) {
		t.Fatalf("rows = %d", logits.Rows)
	}
	for i, suffix := range suffixes {
		// Reference 1: the sequential cached path.
		cached := m.NextTokenLogitsWithCache(cache, suffix)
		// Reference 2: the uncached full concatenation.
		full := m.NextTokenLogits(append(append([]int{}, prefix...), suffix...))
		for j, v := range logits.Row(i) {
			for ref, want := range map[string]float32{"cached": cached[j], "full": full[j]} {
				d := v - want
				if d < 0 {
					d = -d
				}
				if d > 1e-4 {
					t.Fatalf("suffix %d logit %d: batch %v vs %s %v", i, j, v, ref, want)
				}
			}
		}
	}
}

func TestEmptyBatches(t *testing.T) {
	enc := batchTestModel(false)
	if got := enc.ForwardClsBatch(nil); got.Rows != 0 {
		t.Fatalf("empty cls batch rows = %d", got.Rows)
	}
	dec := batchTestModel(true)
	if got := dec.NextTokenLogitsBatch(nil); got.Rows != 0 {
		t.Fatalf("empty lm batch rows = %d", got.Rows)
	}
}

// TestBatchForwardIsConcurrencySafe hammers the read-only batch path from
// many goroutines and checks every result against a single-threaded
// reference — the property core.Server's worker pool depends on.
func TestBatchForwardIsConcurrencySafe(t *testing.T) {
	m := batchTestModel(false)
	seqs := batchTestSeqs(6, m.Config.VocabSize, m.Config.MaxSeqLen, 11)
	want := m.ForwardClsBatch(seqs)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				got := m.ForwardClsBatch(seqs)
				if !got.AllClose(want, 1e-6) {
					errs <- "concurrent batch forward diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
