package transformer

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Batched inference.
//
// A batch of B token sequences is packed into one [ΣTᵢ, dModel] matrix plus
// an offsets slice (tensor.Offsets layout). Position-wise layers — the six
// linear projections per block, layer norms, and activations — then run once
// over the packed matrix instead of B times, which is where the throughput
// win over per-sequence forwards comes from; only attention is computed per
// sequence, since softmax must not mix positions across sequences.
//
// The whole path is built on the nn.Inferer read-only forwards: it never
// touches the layers' backward caches, so one trained model can serve
// concurrent ForwardClsBatch/NextTokenLogitsBatch calls from many goroutines
// (the property core.Server's worker pool and core.DetectTraces rely on).

// EncodeBatch embeds each sequence and runs the packed batch through the
// block stack and final layer norm, returning the packed hidden states
// [ΣTᵢ, dModel] and the segment offsets. Sequences longer than MaxSeqLen are
// truncated keeping the head (as Encode does); empty sequences panic.
func (m *Model) EncodeBatch(seqs [][]int) (*tensor.Matrix, []int) {
	seqs = append([][]int(nil), seqs...) // truncation must not mutate the caller's batch
	lens := make([]int, len(seqs))
	for i, ids := range seqs {
		if len(ids) == 0 {
			panic("transformer: EncodeBatch on empty sequence")
		}
		if len(ids) > m.Config.MaxSeqLen {
			ids = ids[:m.Config.MaxSeqLen]
			seqs[i] = ids
		}
		lens[i] = len(ids)
	}
	offsets := tensor.Offsets(lens)
	h := m.embedBatch(seqs, offsets, 0)
	for _, b := range m.Blocks {
		h, _ = b.inferBatch(h, offsets, LayerKV{})
	}
	return m.FinalLN.Infer(h), offsets
}

// embedBatch gathers token+position embeddings for the packed batch.
// Positions restart at posStart for every sequence (posStart is nonzero when
// the batch continues a cached shared prefix).
func (m *Model) embedBatch(seqs [][]int, offsets []int, posStart int) *tensor.Matrix {
	total := offsets[len(offsets)-1]
	flat := make([]int, 0, total)
	pos := make([]int, 0, total)
	for _, ids := range seqs {
		flat = append(flat, ids...)
		for p := range ids {
			pos = append(pos, posStart+p)
		}
	}
	h := m.TokEmb.Infer(flat)
	pe := m.PosEmb.Infer(pos)
	return tensor.Add(h, h, pe)
}

// inferBatch runs the block over a packed batch using read-only forwards,
// returning the output and the attention layer's packed K/V projections
// (meaningful for cache construction when the batch is one sequence). When
// past holds cached keys/values, every sequence in the batch additionally
// attends over that shared prefix.
func (b *Block) inferBatch(x *tensor.Matrix, offsets []int, past LayerKV) (*tensor.Matrix, LayerKV) {
	h := b.LN1.Infer(x)
	h, kv := b.Attn.inferBatch(h, offsets, past)
	x1 := tensor.Add(h, x, h)

	h2 := b.LN2.Infer(x1)
	h2 = b.FF1.Infer(h2)
	h2 = b.Act.Infer(h2)
	h2 = b.FF2.Infer(h2)
	return tensor.Add(h2, x1, h2), kv
}

// inferBatch computes self-attention over a packed batch: the four
// projections run on the whole packed matrix, attention scores are formed
// per sequence so no position attends across a sequence boundary. With a
// non-empty past (causal models only), every sequence attends the shared
// cached prefix before its own positions — the batched form of
// forwardInfer's KV-cache reuse. Returns the packed current K/V projections.
func (a *MultiHeadAttention) inferBatch(x *tensor.Matrix, offsets []int, past LayerKV) (*tensor.Matrix, LayerKV) {
	Tp := 0
	if past.K != nil {
		if !a.Causal {
			panic("transformer: past keys require causal attention")
		}
		Tp = past.K.Rows
	}
	dh := a.DModel / a.NumHeads
	q := nn.Infer(a.Wq, x)
	k := nn.Infer(a.Wk, x)
	v := nn.Infer(a.Wv, x)
	concat := tensor.New(x.Rows, a.DModel)
	scale := float32(1 / math.Sqrt(float64(dh)))
	for h := 0; h < a.NumHeads; h++ {
		// The prefix head views are shared by every sequence in the batch.
		var pkh, pvh *tensor.Matrix
		if Tp > 0 {
			pkh = headView(past.K, h, dh)
			pvh = headView(past.V, h, dh)
		}
		for s := 0; s+1 < len(offsets); s++ {
			lo, hi := offsets[s], offsets[s+1]
			T := hi - lo
			qh := headView(q.RowView(lo, hi), h, dh)
			kh := headView(k.RowView(lo, hi), h, dh)
			vh := headView(v.RowView(lo, hi), h, dh)
			// scores over [past | current] keys: [T, Tp+T].
			scores := tensor.New(T, Tp+T)
			if Tp > 0 {
				left := tensor.MatMulT(nil, qh, pkh)
				for i := 0; i < T; i++ {
					copy(scores.Row(i)[:Tp], left.Row(i))
				}
			}
			right := tensor.MatMulT(nil, qh, kh)
			for i := 0; i < T; i++ {
				row := scores.Row(i)[Tp:]
				copy(row, right.Row(i))
				if a.Causal {
					// All past keys are earlier positions; mask only within
					// the current chunk.
					for j := i + 1; j < T; j++ {
						row[j] = float32(math.Inf(-1))
					}
				}
			}
			tensor.Scale(scores, scores, scale)
			tensor.RowSoftmax(scores)
			// out = probs_past·pastV + probs_cur·curV.
			out := tensor.New(T, dh)
			if Tp > 0 {
				probsPast := tensor.New(T, Tp)
				for i := 0; i < T; i++ {
					copy(probsPast.Row(i), scores.Row(i)[:Tp])
				}
				tensor.MatMul(out, probsPast, pvh)
			}
			probsCur := tensor.New(T, T)
			for i := 0; i < T; i++ {
				copy(probsCur.Row(i), scores.Row(i)[Tp:])
			}
			cur := tensor.MatMul(nil, probsCur, vh)
			tensor.AddScaled(out, cur, 1)
			headStore(concat.RowView(lo, hi), out, h, dh)
		}
	}
	return nn.Infer(a.Wo, concat), LayerKV{K: k, V: v}
}

// InferKVCache is BuildKVCache on the read-only inference path: it captures
// each attention layer's keys and values over the prefix without touching
// any layer's backward caches, so the resulting cache can be built and used
// while other goroutines run inference on the same model.
func (m *Model) InferKVCache(prefix []int) *KVCache {
	if !m.Config.Causal {
		panic("transformer: KV cache requires a causal model")
	}
	if len(prefix) == 0 {
		panic("transformer: empty prefix")
	}
	if len(prefix) > m.Config.MaxSeqLen {
		panic("transformer: prefix exceeds MaxSeqLen")
	}
	offsets := []int{0, len(prefix)}
	h := m.embedBatch([][]int{prefix}, offsets, 0)
	cache := &KVCache{Len: len(prefix)}
	for _, b := range m.Blocks {
		var kv LayerKV
		h, kv = b.inferBatch(h, offsets, LayerKV{})
		cache.Layers = append(cache.Layers, kv)
	}
	return cache
}

// NextTokenLogitsBatchWithCache computes next-token logits [B, VocabSize]
// for a batch of suffixes that all continue the same cached prefix. Row i
// matches NextTokenLogitsWithCache(cache, suffixes[i]) — only the suffixes
// run through the block stack, so a shared few-shot prompt is encoded once
// per cache instead of once per query. Every suffix must be non-empty and
// cache.Len+len(suffix) must fit in MaxSeqLen.
func (m *Model) NextTokenLogitsBatchWithCache(cache *KVCache, suffixes [][]int) *tensor.Matrix {
	if len(suffixes) == 0 {
		return tensor.New(0, m.Config.VocabSize)
	}
	lens := make([]int, len(suffixes))
	for i, ids := range suffixes {
		if len(ids) == 0 {
			panic("transformer: empty suffix")
		}
		if cache.Len+len(ids) > m.Config.MaxSeqLen {
			panic("transformer: cached sequence exceeds MaxSeqLen")
		}
		lens[i] = len(ids)
	}
	offsets := tensor.Offsets(lens)
	h := m.embedBatch(suffixes, offsets, cache.Len)
	for li, b := range m.Blocks {
		h, _ = b.inferBatch(h, offsets, cache.Layers[li])
	}
	h = m.FinalLN.Infer(h)
	last := tensor.New(len(suffixes), m.Config.DModel)
	for s := 0; s+1 < len(offsets); s++ {
		copy(last.Row(s), h.Row(offsets[s+1]-1))
	}
	return m.LMHead.Infer(last)
}

// ScoreChoiceBatchWithCache is ScoreChoiceWithCache over a batch of suffixes
// sharing one cached prefix.
func (m *Model) ScoreChoiceBatchWithCache(cache *KVCache, suffixes [][]int, choices []int) ([]int, [][]float32) {
	logits := m.NextTokenLogitsBatchWithCache(cache, suffixes)
	best := make([]int, len(suffixes))
	probs := make([][]float32, len(suffixes))
	for i := range suffixes {
		row := logits.Row(i)
		sub := make([]float32, len(choices))
		for c, id := range choices {
			sub[c] = row[id]
		}
		tensor.Softmax(sub)
		best[i] = tensor.ArgMax(sub)
		probs[i] = sub
	}
	return best, probs
}

// ForwardClsBatch classifies a batch of sequences in one packed forward pass,
// returning logits [B, NumClasses]. Row i matches ForwardCls(seqs[i], false)
// exactly. The classification head runs only on the B pooled vectors.
func (m *Model) ForwardClsBatch(seqs [][]int) *tensor.Matrix {
	if len(seqs) == 0 {
		return tensor.New(0, m.Config.NumClasses)
	}
	h, offsets := m.EncodeBatch(seqs)
	pooled := tensor.New(len(seqs), m.Config.DModel)
	for s := 0; s+1 < len(offsets); s++ {
		lo, hi := offsets[s], offsets[s+1]
		pr := pooled.Row(s)
		if m.Config.Causal {
			copy(pr, h.Row(hi-1))
		} else {
			inv := 1 / float32(hi-lo)
			for i := lo; i < hi; i++ {
				for j, v := range h.Row(i) {
					pr[j] += v * inv
				}
			}
		}
	}
	return m.ClsHead.Infer(pooled)
}

// NextTokenLogitsBatch returns next-token logits [B, VocabSize] for a batch
// of prompts. The model must be causal. Prompts longer than MaxSeqLen keep
// their right edge (as NextTokenLogits does). Unlike the sequential path,
// the LM head runs only on the B final positions rather than every token.
func (m *Model) NextTokenLogitsBatch(prompts [][]int) *tensor.Matrix {
	if !m.Config.Causal {
		panic("transformer: NextTokenLogitsBatch requires a causal model")
	}
	if len(prompts) == 0 {
		return tensor.New(0, m.Config.VocabSize)
	}
	seqs := make([][]int, len(prompts))
	for i, ids := range prompts {
		if len(ids) > m.Config.MaxSeqLen {
			ids = ids[len(ids)-m.Config.MaxSeqLen:]
		}
		seqs[i] = ids
	}
	h, offsets := m.EncodeBatch(seqs)
	last := tensor.New(len(seqs), m.Config.DModel)
	for s := 0; s+1 < len(offsets); s++ {
		copy(last.Row(s), h.Row(offsets[s+1]-1))
	}
	return m.LMHead.Infer(last)
}

// ScoreChoiceBatch is ScoreChoice over a batch of prompts: for each prompt it
// returns the index of the highest-logit choice token and the softmax over
// just those choices.
func (m *Model) ScoreChoiceBatch(prompts [][]int, choices []int) ([]int, [][]float32) {
	logits := m.NextTokenLogitsBatch(prompts)
	best := make([]int, len(prompts))
	probs := make([][]float32, len(prompts))
	for i := range prompts {
		row := logits.Row(i)
		sub := make([]float32, len(choices))
		for c, id := range choices {
			sub[c] = row[id]
		}
		tensor.Softmax(sub)
		best[i] = tensor.ArgMax(sub)
		probs[i] = sub
	}
	return best, probs
}
