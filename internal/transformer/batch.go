package transformer

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Batched inference.
//
// A batch of B token sequences is packed into one [ΣTᵢ, dModel] matrix plus
// an offsets slice (tensor.Offsets layout). Position-wise layers — the six
// linear projections per block, layer norms, and activations — then run once
// over the packed matrix instead of B times, which is where the throughput
// win over per-sequence forwards comes from; only attention is computed per
// sequence, since softmax must not mix positions across sequences.
//
// The whole path is built on the nn.Inferer read-only forwards: it never
// touches the layers' backward caches, so one trained model can serve
// concurrent ForwardClsBatch/NextTokenLogitsBatch calls from many goroutines
// (the property core.Server's worker pool and core.DetectTraces rely on).
//
// Every temporary — packed activations, per-sequence attention scores, even
// the per-sequence view headers — is drawn from a tensor.Workspace arena.
// The exported methods come in pairs: the plain form borrows a workspace
// from the package pool for the duration of the call, while the WS form
// (ForwardClsBatchWS, ScoreChoiceBatchWithCacheWS, ...) lets a long-lived
// owner such as a core.Server worker reuse its own arena across batches.
// Results returned by either form are always fresh heap allocations, never
// arena-backed, so callers may Reset the workspace freely afterwards.

// EncodeBatch embeds each sequence and runs the packed batch through the
// block stack and final layer norm, returning the packed hidden states
// [ΣTᵢ, dModel] and the segment offsets. Sequences longer than MaxSeqLen are
// truncated keeping the head (as Encode does); empty sequences panic.
func (m *Model) EncodeBatch(seqs [][]int) (*tensor.Matrix, []int) {
	ws := tensor.GetWorkspace()
	defer tensor.PutWorkspace(ws)
	h, offsets := m.encodeBatch(seqs, ws)
	return h.Clone(), append([]int(nil), offsets...)
}

// encodeBatch is EncodeBatch on a caller-owned workspace; the returned matrix
// and offsets slice are arena-backed and die at the workspace's next Reset.
func (m *Model) encodeBatch(seqs [][]int, ws *tensor.Workspace) (*tensor.Matrix, []int) {
	truncated := false
	for i, ids := range seqs {
		if len(ids) == 0 {
			panic("transformer: EncodeBatch on empty sequence")
		}
		if len(ids) > m.Config.MaxSeqLen {
			if !truncated {
				// Truncation must not mutate the caller's batch.
				seqs = append([][]int(nil), seqs...)
				truncated = true
			}
			seqs[i] = ids[:m.Config.MaxSeqLen]
		}
	}
	offsets := ws.GetInts(len(seqs) + 1)
	offsets[0] = 0
	for i, ids := range seqs {
		offsets[i+1] = offsets[i] + len(ids)
	}
	h := m.embedBatch(seqs, offsets, 0, ws)
	return m.runBlocksBatch(h, offsets, nil, ws), offsets
}

// runBlocksBatch drives the packed batch through the block stack and the
// final layer norm, with double-buffered scratch: block intermediates
// alternate between two pooled workspaces, each reset once its layer's
// output has been consumed by the next layer. Only the normalized output
// (and whatever the caller placed there) lands in the caller's arena, so a
// worker's resident workspace holds ~2 layers of scratch instead of the
// whole stack's — the difference between the streaming monitor's chunk
// pipeline rebuilding ~5 MB versus ~2 MB of arena on a cold start. past is
// the per-layer KV cache (nil when uncached).
func (m *Model) runBlocksBatch(h *tensor.Matrix, offsets []int, past []LayerKV, ws *tensor.Workspace) *tensor.Matrix {
	var scratch [2]*tensor.Workspace
	scratch[0], scratch[1] = tensor.GetWorkspace(), tensor.GetWorkspace()
	defer tensor.PutWorkspace(scratch[0])
	defer tensor.PutWorkspace(scratch[1])
	for li, b := range m.Blocks {
		wsi := scratch[li%2]
		if li >= 2 {
			// This arena holds layer li-2's intermediates; layer li-1 has
			// already consumed that output, so the buffers are dead.
			wsi.Reset()
		}
		kv := LayerKV{}
		if past != nil {
			kv = past[li]
		}
		h, _ = b.inferBatch(h, offsets, kv, wsi, false)
	}
	// The final norm reads the last block's output from its scratch arena
	// (still alive here) and writes into the caller's workspace.
	return m.FinalLN.Infer(h, ws)
}

// embedBatch gathers token+position embeddings for the packed batch.
// Positions restart at posStart for every sequence (posStart is nonzero when
// the batch continues a cached shared prefix).
func (m *Model) embedBatch(seqs [][]int, offsets []int, posStart int, ws *tensor.Workspace) *tensor.Matrix {
	total := offsets[len(offsets)-1]
	flat := ws.GetInts(total)
	pos := ws.GetInts(total)
	n := 0
	for _, ids := range seqs {
		for p, id := range ids {
			flat[n] = id
			pos[n] = posStart + p
			n++
		}
	}
	h := m.TokEmb.Infer(flat, ws)
	pe := m.PosEmb.Infer(pos, ws)
	return tensor.Add(h, h, pe)
}

// inferBatch runs the block over a packed batch using read-only forwards on
// the workspace arena. When past holds cached keys/values, every sequence in
// the batch additionally attends over that shared prefix. With capture set,
// the attention layer's packed K/V projections are heap-allocated and
// returned for cache construction (meaningful when the batch is one
// sequence); otherwise the returned LayerKV is empty.
func (b *Block) inferBatch(x *tensor.Matrix, offsets []int, past LayerKV, ws *tensor.Workspace, capture bool) (*tensor.Matrix, LayerKV) {
	h := b.LN1.Infer(x, ws)
	h, kv := b.Attn.inferBatch(h, offsets, past, ws, capture)
	x1 := tensor.Add(h, x, h)

	h2 := b.LN2.Infer(x1, ws)
	h2 = nn.Infer(b.FF1, h2, ws)
	h2 = b.Act.Infer(h2, ws)
	h2 = nn.Infer(b.FF2, h2, ws)
	return tensor.Add(h2, x1, h2), kv
}

// inferBatch computes self-attention over a packed batch: the four
// projections run on the whole packed matrix; attention heads are column
// windows of the packed projections addressed by the strided kernels, so no
// per-head (or per-sequence) data is copied and no scores cross a sequence
// boundary. With a non-empty past (causal models only), every sequence
// attends the shared cached prefix before its own positions. The fused
// ScaledMaskedRowSoftmax applies scaling, causal masking, and softmax in one
// pass over each score row.
func (a *MultiHeadAttention) inferBatch(x *tensor.Matrix, offsets []int, past LayerKV, ws *tensor.Workspace, capture bool) (*tensor.Matrix, LayerKV) {
	Tp := 0
	if past.K != nil {
		if !a.Causal {
			panic("transformer: past keys require causal attention")
		}
		Tp = past.K.Rows
	}
	dh := a.DModel / a.NumHeads
	kvws := ws
	if capture {
		kvws = nil // captured K/V must outlive the workspace
	}
	var q, k, v *tensor.Matrix
	wq, qok := a.Wq.(*nn.QuantizedLinear)
	wk, kok := a.Wk.(*nn.QuantizedLinear)
	wv, vok := a.Wv.(*nn.QuantizedLinear)
	if qok && kok && vok && wq.W.Block == wk.W.Block && wq.W.Block == wv.W.Block {
		// Int8 path: the three projections read the same input, so quantize
		// it once and run all three from the shared codes.
		qa := tensor.QuantizeRowsQ8(x, wq.W.Block, ws)
		q = wq.InferQuantized(qa, ws)
		k = wk.InferQuantized(qa, kvws)
		v = wv.InferQuantized(qa, kvws)
	} else {
		q = nn.Infer(a.Wq, x, ws)
		k = nn.Infer(a.Wk, x, kvws)
		v = nn.Infer(a.Wv, x, kvws)
	}
	concat := ws.Get(x.Rows, a.DModel)
	scale := float32(1 / math.Sqrt(float64(dh)))
	// One max-shaped score buffer serves every sequence of the batch (the
	// sequences run serially): without this, a 32-sequence chunk through a
	// 6-layer model would pin ~200 distinct score buffers in the arena, and
	// rebuilding that arena dominated the streaming monitor's allocations.
	maxT := 0
	for s := 0; s+1 < len(offsets); s++ {
		if T := offsets[s+1] - offsets[s]; T > maxT {
			maxT = T
		}
	}
	scoresBuf := ws.Get(maxT, Tp+maxT)
	for s := 0; s+1 < len(offsets); s++ {
		lo, hi := offsets[s], offsets[s+1]
		T := hi - lo
		qs := ws.RowView(q, lo, hi)
		ks := ws.RowView(k, lo, hi)
		vs := ws.RowView(v, lo, hi)
		cs := ws.RowView(concat, lo, hi)
		// scores over [past | current] keys: [T, Tp+T], reused across heads.
		scores := ws.ShapedView(scoresBuf, T, Tp+T)
		for h := 0; h < a.NumHeads; h++ {
			off := h * dh
			if Tp > 0 {
				tensor.MatMulTStrided(scores, 0, qs, off, past.K, off, dh)
			}
			tensor.MatMulTStrided(scores, Tp, qs, off, ks, off, dh)
			tensor.ScaledMaskedRowSoftmax(scores, scale, Tp, a.Causal)
			// out = probs_past·pastV + probs_cur·curV, straight into the
			// head's column window of concat.
			if Tp > 0 {
				tensor.MatMulStrided(cs, off, scores, 0, Tp, past.V, off, dh)
				tensor.MatMulStridedAcc(cs, off, scores, Tp, T, vs, off, dh)
			} else {
				tensor.MatMulStrided(cs, off, scores, 0, T, vs, off, dh)
			}
		}
	}
	out := nn.Infer(a.Wo, concat, ws)
	if capture {
		return out, LayerKV{K: k, V: v}
	}
	return out, LayerKV{}
}

// InferKVCache captures each attention layer's keys and values over the
// prefix on the read-only inference path, so a cache can be built while other
// goroutines run inference on the same model.
func (m *Model) InferKVCache(prefix []int) *KVCache {
	if !m.Config.Causal {
		panic("transformer: KV cache requires a causal model")
	}
	if len(prefix) == 0 {
		panic("transformer: empty prefix")
	}
	if len(prefix) > m.Config.MaxSeqLen {
		panic("transformer: prefix exceeds MaxSeqLen")
	}
	ws := tensor.GetWorkspace()
	defer tensor.PutWorkspace(ws)
	offsets := ws.GetInts(2)
	offsets[0], offsets[1] = 0, len(prefix)
	h := m.embedBatchOne(prefix, 0, ws)
	cache := &KVCache{Len: len(prefix)}
	for _, b := range m.Blocks {
		var kv LayerKV
		h, kv = b.inferBatch(h, offsets, LayerKV{}, ws, true)
		cache.Layers = append(cache.Layers, kv)
	}
	return cache
}

// NextTokenLogitsBatchWithCache computes next-token logits [B, VocabSize]
// for a batch of suffixes that all continue the same cached prefix. Row i
// matches NextTokenLogitsWithCache(cache, suffixes[i]) — only the suffixes
// run through the block stack, so a shared few-shot prompt is encoded once
// per cache instead of once per query. Every suffix must be non-empty and
// cache.Len+len(suffix) must fit in MaxSeqLen.
func (m *Model) NextTokenLogitsBatchWithCache(cache *KVCache, suffixes [][]int) *tensor.Matrix {
	ws := tensor.GetWorkspace()
	defer tensor.PutWorkspace(ws)
	return m.NextTokenLogitsBatchWithCacheWS(cache, suffixes, ws)
}

// NextTokenLogitsBatchWithCacheWS is NextTokenLogitsBatchWithCache on a
// caller-owned workspace. The returned logits are heap-allocated.
func (m *Model) NextTokenLogitsBatchWithCacheWS(cache *KVCache, suffixes [][]int, ws *tensor.Workspace) *tensor.Matrix {
	return m.nextTokenLogitsBatchCached(cache, suffixes, ws, nil)
}

// nextTokenLogitsBatchCached computes the batched cached-prefix logits with
// the [B, VocabSize] output drawn from out (nil allocates — the public
// contract; the choice-scoring path passes the scratch workspace instead,
// since it reduces the logits to the few choice columns before returning and
// a full vocabulary row per suffix is the batch's largest single garbage
// producer otherwise).
func (m *Model) nextTokenLogitsBatchCached(cache *KVCache, suffixes [][]int, ws, out *tensor.Workspace) *tensor.Matrix {
	if len(suffixes) == 0 {
		return tensor.New(0, m.Config.VocabSize)
	}
	offsets := ws.GetInts(len(suffixes) + 1)
	offsets[0] = 0
	for i, ids := range suffixes {
		if len(ids) == 0 {
			panic("transformer: empty suffix")
		}
		if cache.Len+len(ids) > m.Config.MaxSeqLen {
			panic("transformer: cached sequence exceeds MaxSeqLen")
		}
		offsets[i+1] = offsets[i] + len(ids)
	}
	h := m.embedBatch(suffixes, offsets, cache.Len, ws)
	h = m.runBlocksBatch(h, offsets, cache.Layers, ws)
	last := ws.Get(len(suffixes), m.Config.DModel)
	for s := 0; s+1 < len(offsets); s++ {
		copy(last.Row(s), h.Row(offsets[s+1]-1))
	}
	return nn.Infer(m.LMHead, last, out)
}

// ScoreChoiceBatchWithCache is ScoreChoiceWithCache over a batch of suffixes
// sharing one cached prefix.
func (m *Model) ScoreChoiceBatchWithCache(cache *KVCache, suffixes [][]int, choices []int) ([]int, [][]float32) {
	ws := tensor.GetWorkspace()
	defer tensor.PutWorkspace(ws)
	return m.ScoreChoiceBatchWithCacheWS(cache, suffixes, choices, ws)
}

// ScoreChoiceBatchWithCacheWS is ScoreChoiceBatchWithCache on a caller-owned
// workspace. The full-vocabulary logits stay in the workspace arena — only
// the per-choice probabilities are returned, freshly allocated.
func (m *Model) ScoreChoiceBatchWithCacheWS(cache *KVCache, suffixes [][]int, choices []int, ws *tensor.Workspace) ([]int, [][]float32) {
	logits := m.nextTokenLogitsBatchCached(cache, suffixes, ws, ws)
	return chooseFromLogits(logits, len(suffixes), choices)
}

// ForwardClsBatch classifies a batch of sequences in one packed forward pass,
// returning logits [B, NumClasses]. Row i matches ForwardCls(seqs[i], false)
// exactly. The classification head runs only on the B pooled vectors.
func (m *Model) ForwardClsBatch(seqs [][]int) *tensor.Matrix {
	ws := tensor.GetWorkspace()
	defer tensor.PutWorkspace(ws)
	return m.ForwardClsBatchWS(seqs, ws)
}

// ForwardClsBatchWS is ForwardClsBatch on a caller-owned workspace. The
// returned logits are heap-allocated.
func (m *Model) ForwardClsBatchWS(seqs [][]int, ws *tensor.Workspace) *tensor.Matrix {
	if len(seqs) == 0 {
		return tensor.New(0, m.Config.NumClasses)
	}
	h, offsets := m.encodeBatch(seqs, ws)
	pooled := ws.GetZeroed(len(seqs), m.Config.DModel)
	for s := 0; s+1 < len(offsets); s++ {
		lo, hi := offsets[s], offsets[s+1]
		pr := pooled.Row(s)
		if m.Config.Causal {
			copy(pr, h.Row(hi-1))
		} else {
			inv := 1 / float32(hi-lo)
			for i := lo; i < hi; i++ {
				for j, v := range h.Row(i) {
					pr[j] += v * inv
				}
			}
		}
	}
	return m.ClsHead.Infer(pooled, nil)
}

// NextTokenLogitsBatch returns next-token logits [B, VocabSize] for a batch
// of prompts. The model must be causal. Prompts longer than MaxSeqLen keep
// their right edge (as NextTokenLogits does). Unlike the sequential path,
// the LM head runs only on the B final positions rather than every token.
func (m *Model) NextTokenLogitsBatch(prompts [][]int) *tensor.Matrix {
	if !m.Config.Causal {
		panic("transformer: NextTokenLogitsBatch requires a causal model")
	}
	if len(prompts) == 0 {
		return tensor.New(0, m.Config.VocabSize)
	}
	ws := tensor.GetWorkspace()
	defer tensor.PutWorkspace(ws)
	seqs := make([][]int, len(prompts))
	for i, ids := range prompts {
		if len(ids) > m.Config.MaxSeqLen {
			ids = ids[len(ids)-m.Config.MaxSeqLen:]
		}
		seqs[i] = ids
	}
	h, offsets := m.encodeBatch(seqs, ws)
	last := ws.Get(len(seqs), m.Config.DModel)
	for s := 0; s+1 < len(offsets); s++ {
		copy(last.Row(s), h.Row(offsets[s+1]-1))
	}
	return nn.Infer(m.LMHead, last, nil)
}

// ScoreChoiceBatch is ScoreChoice over a batch of prompts: for each prompt it
// returns the index of the highest-logit choice token and the softmax over
// just those choices.
func (m *Model) ScoreChoiceBatch(prompts [][]int, choices []int) ([]int, [][]float32) {
	logits := m.NextTokenLogitsBatch(prompts)
	return chooseFromLogits(logits, len(prompts), choices)
}

// chooseFromLogits reduces per-row vocabulary logits to the best index and
// softmax over the candidate choice tokens.
func chooseFromLogits(logits *tensor.Matrix, n int, choices []int) ([]int, [][]float32) {
	best := make([]int, n)
	probs := make([][]float32, n)
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		sub := make([]float32, len(choices))
		for c, id := range choices {
			sub[c] = row[id]
		}
		tensor.Softmax(sub)
		best[i] = tensor.ArgMax(sub)
		probs[i] = sub
	}
	return best, probs
}
