package transformer

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// isFinite checks every element of a matrix.
func isFinite(m *tensor.Matrix) bool {
	for _, v := range m.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}

// TestModelFiniteUnderExtremeEmbeddings injects huge values into the
// embedding table and checks layer norm keeps the forward pass finite —
// failure-injection for numerical robustness.
func TestModelFiniteUnderExtremeEmbeddings(t *testing.T) {
	m := New(smallConfig(false), tensor.NewRNG(71))
	for i := range m.TokEmb.Table.W.Data {
		m.TokEmb.Table.W.Data[i] *= 1e6
	}
	logits := m.ForwardCls([]int{1, 2, 3, 4}, false)
	if !isFinite(logits) {
		t.Fatal("extreme embeddings produced non-finite logits")
	}
}

// TestTrainingSurvivesOutlierGradients drives a training step with an
// extreme loss gradient through clipping and checks weights stay finite.
func TestTrainingSurvivesOutlierGradients(t *testing.T) {
	m := New(smallConfig(false), tensor.NewRNG(72))
	opt := nn.NewAdamW(1e-3, 0.01)
	params := m.Params()
	logits := m.ForwardCls([]int{1, 2, 3}, true)
	grad := tensor.New(logits.Rows, logits.Cols)
	grad.Fill(1e8) // absurd upstream gradient
	m.BackwardCls(grad)
	nn.ClipGradNorm(params, 1.0)
	opt.Step(params)
	for _, p := range params {
		if !isFinite(p.W) {
			t.Fatalf("param %s became non-finite", p.Name)
		}
	}
	// The model must still produce finite outputs afterwards.
	if !isFinite(m.ForwardCls([]int{1, 2, 3}, false)) {
		t.Fatal("model broken after outlier gradient step")
	}
}

// Property: classification probabilities are a valid distribution for
// arbitrary token sequences.
func TestClsLogitsFiniteProperty(t *testing.T) {
	m := New(smallConfig(false), tensor.NewRNG(73))
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(m.Config.MaxSeqLen+10) // may exceed MaxSeqLen (truncation path)
		ids := make([]int, n)
		for i := range ids {
			ids[i] = rng.Intn(m.Config.VocabSize)
		}
		logits := m.ForwardCls(ids, false)
		return isFinite(logits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: generation never emits out-of-vocabulary ids and respects
// MaxNewTokens for arbitrary prompts.
func TestGenerateBoundsProperty(t *testing.T) {
	m := New(smallConfig(true), tensor.NewRNG(74))
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(8)
		prompt := make([]int, n)
		for i := range prompt {
			prompt[i] = rng.Intn(m.Config.VocabSize)
		}
		maxNew := 1 + rng.Intn(6)
		out := m.Generate(prompt, GenerateOptions{MaxNewTokens: maxNew, Temperature: 0.8, RNG: rng})
		if len(out) > maxNew {
			return false
		}
		for _, tok := range out {
			if tok < 0 || tok >= m.Config.VocabSize {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestOptimizerZeroGradientNoop: stepping with zero gradients must not move
// SGD weights, and AdamW must keep them finite (weight decay may move them).
func TestOptimizerZeroGradientNoop(t *testing.T) {
	m := New(smallConfig(false), tensor.NewRNG(75))
	params := m.Params()
	before := m.TokEmb.Table.W.Clone()
	nn.NewSGD(0.1, 0.9).Step(params)
	if !m.TokEmb.Table.W.Equal(before) {
		t.Fatal("SGD moved weights with zero gradients")
	}
	nn.NewAdamW(0.1, 0).Step(params)
	if !m.TokEmb.Table.W.Equal(before) {
		t.Fatal("AdamW (no weight decay) moved weights with zero gradients")
	}
	if nn.ClipGradNorm(params, 1.0) != 0 {
		t.Fatal("zero gradients have nonzero norm")
	}
}
