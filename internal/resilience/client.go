package resilience

import (
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// ErrCircuitOpen is returned by Client.Do when the circuit breaker refuses
// the request without sending it.
var ErrCircuitOpen = errors.New("resilience: circuit open")

// Client retries HTTP requests under a Policy, within a retry Budget, behind
// a circuit Breaker. It retries transport errors and retryable statuses
// (429, 502, 503, 504), honoring the server's Retry-After / Retry-After-Ms
// drain estimate over its own schedule. Requests with a body must carry
// GetBody (http.NewRequest sets it for the common in-memory readers) —
// a consumed body that cannot be rebuilt fails rather than retrying with an
// empty payload.
//
// Budget and Breaker are optional and may be shared across Clients: the
// budget is per-destination-service in spirit, the breaker per-replica.
type Client struct {
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// Policy is the backoff schedule; a zero MaxAttempts means DefaultPolicy
	// with Policy.Seed.
	Policy Policy
	// Budget, when set, bounds the retry rate; exhausting it fails the
	// request with the last response/error rather than retrying.
	Budget *Budget
	// Breaker, when set, is consulted before every attempt and fed every
	// outcome.
	Breaker *Breaker
	// Sleep is injectable for tests (time.Sleep when nil).
	Sleep func(time.Duration)

	// Counters (atomic): total retries sent, retries denied by the budget,
	// requests refused by the breaker.
	RetriesSent  atomic.Int64
	BudgetDenied atomic.Int64
	BreakerOpen  atomic.Int64
}

// RetryableStatus reports whether a response status is worth retrying: the
// server shed (429) or a hop failed transiently (502/503/504). Other 5xx
// (500, 501) are bugs, not load. Exported for the gateway, whose
// replica-rotation loop applies the same taxonomy as Client.Do.
func RetryableStatus(code int) bool { return retryableStatus(code) }

// RetryAfterHint extracts a response's server-side drain estimate —
// Retry-After-Ms (milliseconds) over RFC 9110 Retry-After (whole seconds) —
// or zero. Exported for the gateway's per-replica 429 cooldowns.
func RetryAfterHint(resp *http.Response) time.Duration { return retryAfterHint(resp) }

// retryableStatus reports whether a response status is worth retrying: the
// server shed (429) or a hop failed transiently (502/503/504). Other 5xx
// (500, 501) are bugs, not load.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfterHint extracts the server's drain estimate: Retry-After-Ms
// (milliseconds, the sub-second channel core's 429s use) wins over the
// RFC 9110 Retry-After in whole seconds.
func retryAfterHint(resp *http.Response) time.Duration {
	if v := resp.Header.Get("Retry-After-Ms"); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if s, err := strconv.Atoi(v); err == nil && s > 0 {
			return time.Duration(s) * time.Second
		}
	}
	return 0
}

// Do sends req with retries. It returns the first success (any
// non-retryable status counts: a 404 is an answer, not a failure), or the
// last response/error once attempts, budget, or the request context run out.
// On a returned response the body is open and owned by the caller, as with
// http.Client.Do.
func (c *Client) Do(req *http.Request) (*http.Response, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	pol := c.Policy
	if pol.MaxAttempts <= 0 {
		pol = DefaultPolicy(pol.Seed)
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	bo := NewBackoff(pol)

	if c.Budget != nil {
		c.Budget.Attempt()
	}
	var resp *http.Response
	var err error
	for {
		if c.Breaker != nil && !c.Breaker.Allow() {
			c.BreakerOpen.Add(1)
			return nil, ErrCircuitOpen
		}
		resp, err = httpc.Do(req)
		success := err == nil && !retryableStatus(resp.StatusCode)
		if c.Breaker != nil {
			// Transport errors and retryable statuses are replica-health
			// signals; application-level 4xx are not failures of the replica.
			c.Breaker.Record(err == nil && (resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests))
		}
		if success {
			return resp, nil
		}
		var hint time.Duration
		if err == nil {
			hint = retryAfterHint(resp)
		}
		delay, ok := bo.Next(hint)
		if !ok {
			return resp, err // attempts exhausted: surface the last outcome
		}
		if req.Context().Err() != nil {
			return resp, errOr(err, req.Context().Err())
		}
		if c.Budget != nil && !c.Budget.Withdraw() {
			c.BudgetDenied.Add(1)
			return resp, err // out of retry budget: fail fast, don't amplify
		}
		// This attempt's response is superseded; release its connection.
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}
		if req.GetBody != nil {
			body, berr := req.GetBody()
			if berr != nil {
				return nil, berr
			}
			req.Body = body
		} else if req.Body != nil {
			// A consumed one-shot body cannot be replayed; retrying would
			// send an empty payload.
			return nil, errors.New("resilience: request body is not replayable (no GetBody)")
		}
		sleep(delay)
		c.RetriesSent.Add(1)
	}
}

func errOr(err, fallback error) error {
	if err != nil {
		return err
	}
	return fallback
}
