package resilience

import (
	"context"
	"time"
)

// HedgeResult reports what a Hedged call actually did — the telemetry the
// gateway exports (hedges launched, hedges that won).
type HedgeResult struct {
	// Launched is true when the hedge attempt was actually started (the
	// primary outlived the delay and the budget granted a token).
	Launched bool
	// WonByHedge is true when the returned value came from the hedge
	// attempt rather than the primary.
	WonByHedge bool
	// Denied is true when the hedge was due but the retry budget refused
	// it — the backstop that keeps hedging from amplifying an outage.
	Denied bool
}

// Hedged runs primary immediately and, if it has not finished after delay,
// launches hedge concurrently — the classic tail-latency move: the p99
// straggler is overtaken by a second copy of the request on another replica,
// while the p50 case never pays for it. The first success wins and the
// loser's context is cancelled. Safety rails:
//
//   - The hedge only launches if budget grants a retry token (nil budget
//     means always), so hedges self-limit exactly like retries when the
//     fleet is unhealthy.
//   - A primary that fails before the delay returns immediately without
//     hedging: fast failures are the retry loop's job (the caller decides
//     whether another attempt is in budget), hedging is for slowness.
//   - If the first finisher failed while the other attempt is still in
//     flight, Hedged waits for the other — a failed primary must not
//     discard a hedge that is about to succeed.
//
// Both attempt callbacks must tolerate context cancellation and must fully
// consume any resources before returning (Hedged cancels both attempt
// contexts when it returns, so e.g. an *http.Response body must be read
// before the callback returns, not after).
func Hedged[T any](ctx context.Context, delay time.Duration, budget *Budget,
	primary, hedge func(context.Context) (T, error)) (T, HedgeResult, error) {

	type outcome struct {
		v         T
		err       error
		fromHedge bool
	}
	var hr HedgeResult
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	ch := make(chan outcome, 2) // buffered: a losing attempt must not leak its goroutine
	go func() {
		v, err := primary(pctx)
		ch <- outcome{v: v, err: err}
	}()

	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.v, hr, out.err
	case <-ctx.Done():
		var zero T
		return zero, hr, ctx.Err()
	case <-timer.C:
	}

	// The primary is slow. Hedge if the budget allows; otherwise keep
	// waiting on the primary alone.
	if budget != nil && !budget.Withdraw() {
		hr.Denied = true
		select {
		case out := <-ch:
			return out.v, hr, out.err
		case <-ctx.Done():
			var zero T
			return zero, hr, ctx.Err()
		}
	}
	hr.Launched = true
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	go func() {
		v, err := hedge(hctx)
		ch <- outcome{v: v, err: err, fromHedge: true}
	}()

	first := <-ch
	if first.err == nil {
		// Winner: cancel the loser and return.
		hr.WonByHedge = first.fromHedge
		return first.v, hr, nil
	}
	// The first finisher failed; the other attempt may still succeed.
	second := <-ch
	hr.WonByHedge = second.fromHedge && second.err == nil
	if second.err == nil {
		return second.v, hr, nil
	}
	// Both failed: report the primary's error (the hedge usually fails
	// with a cancellation-shaped error that would mask the real cause).
	if first.fromHedge {
		return second.v, hr, second.err
	}
	return first.v, hr, first.err
}
