// Package resilience is the client half of the serving tier's overload
// contract: the server sheds with 429 Retry-After and browns out under
// saturation (internal/core); this package is how well-behaved clients react
// — jittered exponential backoff that honors the server's drain estimate, a
// retry budget so retries cannot amplify an outage, and a circuit breaker
// that stops hammering a replica that is failing fast. cmd/loadlab uses it
// for replay-with-retries today; the multi-replica gateway (ROADMAP item 1)
// is its intended second consumer.
//
// Everything is deterministic under a fixed Seed: jitter comes from the
// repo's splittable RNG, not math/rand, so a chaos replay with retries is
// reproducible bit-for-bit.
package resilience

import (
	"sync"
	"time"

	"repro/internal/tensor"
)

// Policy describes a retry schedule: capped exponential backoff with
// proportional jitter. The zero value retries nothing; DefaultPolicy is a
// sane serving-client schedule.
type Policy struct {
	// MaxAttempts is the total number of tries including the first
	// (1 = no retries).
	MaxAttempts int
	// Base is the pre-jitter backoff before the first retry; each further
	// retry multiplies it by Multiplier, capped at Max.
	Base       time.Duration
	Max        time.Duration
	Multiplier float64
	// Jitter is the proportional jitter width: the delay is drawn uniformly
	// from [d·(1−Jitter), d·(1+Jitter)], clamped at Max. Zero means no
	// jitter; 0.2 is the usual herd-breaking default.
	Jitter float64
	// Seed makes the jitter sequence deterministic. Two clients with the
	// same Seed draw the same delays — what a reproducible chaos replay
	// needs, and distinct seeds are what break the thundering herd.
	Seed uint64
}

// DefaultPolicy is 4 attempts backing off 50ms → 100ms → 200ms (±20%),
// capped at 2s.
func DefaultPolicy(seed uint64) Policy {
	return Policy{MaxAttempts: 4, Base: 50 * time.Millisecond, Max: 2 * time.Second, Multiplier: 2, Jitter: 0.2, Seed: seed}
}

// Backoff is the stateful delay sequence of one Policy. Not safe for
// concurrent use; each request (or each worker) takes its own.
type Backoff struct {
	p    Policy
	rng  *tensor.RNG
	next time.Duration
	try  int
}

// NewBackoff starts a fresh delay sequence.
func NewBackoff(p Policy) *Backoff {
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	return &Backoff{p: p, rng: tensor.NewRNG(p.Seed ^ 0xb0ffed), next: p.Base}
}

// Next returns the delay before the upcoming retry and whether a retry is
// allowed at all. hint is the server's Retry-After when it sent one: the
// server knows its backlog better than any client-side schedule, so a hint
// replaces the exponential delay (jitter still applies — synchronized
// hint-followers are a herd too).
func (b *Backoff) Next(hint time.Duration) (time.Duration, bool) {
	b.try++
	if b.try >= b.p.MaxAttempts {
		return 0, false
	}
	d := b.next
	b.next = time.Duration(float64(b.next) * b.p.Multiplier)
	if b.p.Max > 0 && b.next > b.p.Max {
		b.next = b.p.Max
	}
	if hint > 0 {
		d = hint
	}
	if j := b.p.Jitter; j > 0 {
		lo := float64(d) * (1 - j)
		width := float64(d) * 2 * j
		d = time.Duration(lo + b.rng.Float64()*width)
	}
	if b.p.Max > 0 && d > b.p.Max {
		d = b.p.Max
	}
	return d, true
}

// Budget is a retry token bucket in the Finagle/gRPC style: first attempts
// deposit a fraction of a token, retries withdraw a whole one. When the
// server is healthy the bucket stays full and every retry is allowed; when
// most requests fail, deposits dry up and the retry rate self-limits to
// Ratio× the first-attempt rate — retries stop amplifying an outage into a
// bigger one. Safe for concurrent use.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	cap    float64
	ratio  float64
}

// NewBudget starts a full bucket holding capacity tokens; each first attempt
// deposits ratio tokens (capped), each retry costs 1. Non-positive capacity
// or ratio fall back to 10 and 0.1.
func NewBudget(capacity, ratio float64) *Budget {
	if capacity <= 0 {
		capacity = 10
	}
	if ratio <= 0 {
		ratio = 0.1
	}
	return &Budget{tokens: capacity, cap: capacity, ratio: ratio}
}

// Attempt records a first attempt (deposit).
func (b *Budget) Attempt() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

// Withdraw takes one retry token, reporting whether the retry is within
// budget. A refused retry costs nothing.
func (b *Budget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the current balance (tests and telemetry).
func (b *Budget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// Closed: traffic flows, failures are counted.
	Closed BreakerState = iota
	// Open: traffic is refused locally until the cooldown passes.
	Open
	// HalfOpen: one probe is allowed through to test recovery.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a consecutive-failure circuit breaker: Threshold failures in a
// row open it, Cooldown later one probe is let through (half-open), and that
// probe's outcome either closes the circuit or re-opens it for another
// cooldown. It protects a failing replica from retry pressure and the client
// from burning its retry budget on a replica that is down. Safe for
// concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// NewBreaker opens after threshold consecutive failures and probes again
// after cooldown. Non-positive arguments fall back to 5 failures / 1s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	//lint:ignore determinism injectable clock's production default; deterministic chaos replays inject a fake
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed. In the open state it starts
// returning true again once the cooldown has passed — but only for one probe
// at a time (half-open); concurrent requests stay refused until the probe
// reports.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Record reports a request outcome. A success closes the circuit and zeroes
// the failure count; a failure counts toward the threshold (closed) or
// re-opens the circuit (half-open probe failed).
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.state = Closed
		b.failures = 0
		b.probing = false
		return
	}
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = Open
			b.openedAt = b.now()
		}
	case HalfOpen:
		b.state = Open
		b.openedAt = b.now()
		b.probing = false
	case Open:
		// A straggler from before the trip; the circuit is already open.
	}
}

// State returns the breaker's current position (telemetry; the answer may be
// stale by the time it is read).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
