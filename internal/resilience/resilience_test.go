package resilience

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestBackoffSchedule pins the exponential shape, the cap, and determinism
// under a fixed seed.
func TestBackoffSchedule(t *testing.T) {
	p := Policy{MaxAttempts: 5, Base: 100 * time.Millisecond, Max: 500 * time.Millisecond, Multiplier: 2, Seed: 3}
	b := NewBackoff(p)
	var delays []time.Duration
	for {
		d, ok := b.Next(0)
		if !ok {
			break
		}
		delays = append(delays, d)
	}
	want := []time.Duration{100, 200, 400, 500} // ms; 800 capped to 500
	if len(delays) != len(want) {
		t.Fatalf("retries = %d, want %d", len(delays), len(want))
	}
	for i, d := range delays {
		if d != want[i]*time.Millisecond {
			t.Fatalf("delay[%d] = %s, want %s (no jitter)", i, d, want[i]*time.Millisecond)
		}
	}

	// Jitter stays within the proportional band and repeats under the seed.
	p.Jitter = 0.2
	j1, j2 := NewBackoff(p), NewBackoff(p)
	for i := 0; ; i++ {
		d1, ok1 := j1.Next(0)
		d2, ok2 := j2.Next(0)
		if ok1 != ok2 {
			t.Fatal("seeded sequences diverge in length")
		}
		if !ok1 {
			break
		}
		if d1 != d2 {
			t.Fatalf("seeded jitter not deterministic: %s vs %s", d1, d2)
		}
		base := want[i] * time.Millisecond
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		if hi > p.Max {
			hi = p.Max
		}
		if d1 < lo || d1 > hi {
			t.Fatalf("jittered delay[%d] = %s outside [%s, %s]", i, d1, lo, hi)
		}
	}
}

// TestBackoffHonorsHint checks that a server Retry-After hint replaces the
// schedule's own delay.
func TestBackoffHonorsHint(t *testing.T) {
	b := NewBackoff(Policy{MaxAttempts: 3, Base: 10 * time.Millisecond, Max: 5 * time.Second, Multiplier: 2})
	d, ok := b.Next(1300 * time.Millisecond)
	if !ok || d != 1300*time.Millisecond {
		t.Fatalf("hinted delay = %s, want 1.3s", d)
	}
	// Without a hint the schedule resumes where it would have been.
	d, ok = b.Next(0)
	if !ok || d != 20*time.Millisecond {
		t.Fatalf("post-hint delay = %s, want 20ms", d)
	}
}

// TestBudgetSelfLimits pins the token-bucket arithmetic: a healthy stream
// keeps retries available; a failing stream drains the bucket to the deposit
// ratio.
func TestBudgetSelfLimits(t *testing.T) {
	b := NewBudget(10, 0.1)
	for i := 0; i < 10; i++ {
		if !b.Withdraw() {
			t.Fatalf("full bucket refused withdrawal %d", i)
		}
	}
	if b.Withdraw() {
		t.Fatal("empty bucket allowed a retry")
	}
	// ~10 first attempts deposit one token's worth (15 clears float
	// accumulation error at the 1.0 boundary).
	for i := 0; i < 15; i++ {
		b.Attempt()
	}
	if !b.Withdraw() {
		t.Fatal("deposits did not refill the bucket")
	}
	if b.Withdraw() {
		t.Fatal("bucket over-refilled")
	}
	// Deposits cap at capacity.
	for i := 0; i < 1000; i++ {
		b.Attempt()
	}
	if got := b.Tokens(); got != 10 {
		t.Fatalf("tokens = %v, want cap 10", got)
	}
}

// TestBreakerLifecycle walks closed → open → half-open → closed and the
// re-open path, with a fake clock.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	br := NewBreaker(3, time.Second)
	br.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if !br.Allow() {
			t.Fatal("closed breaker refused traffic")
		}
		br.Record(false)
	}
	if br.State() != Closed {
		t.Fatalf("state = %s before threshold", br.State())
	}
	br.Allow()
	br.Record(false) // third consecutive failure trips it
	if br.State() != Open {
		t.Fatalf("state = %s after threshold, want open", br.State())
	}
	if br.Allow() {
		t.Fatal("open breaker allowed traffic inside cooldown")
	}

	now = now.Add(1500 * time.Millisecond)
	if !br.Allow() {
		t.Fatal("cooldown passed but probe refused")
	}
	if br.State() != HalfOpen {
		t.Fatalf("state = %s during probe, want half-open", br.State())
	}
	if br.Allow() {
		t.Fatal("second concurrent probe allowed")
	}
	br.Record(false) // probe failed: re-open
	if br.State() != Open {
		t.Fatalf("state = %s after failed probe, want open", br.State())
	}

	now = now.Add(2 * time.Second)
	if !br.Allow() {
		t.Fatal("second probe refused")
	}
	br.Record(true)
	if br.State() != Closed {
		t.Fatalf("state = %s after successful probe, want closed", br.State())
	}
	if !br.Allow() {
		t.Fatal("closed breaker refused traffic after recovery")
	}
}

// TestClientRetriesUntilSuccess drives the full client against a server that
// sheds twice with Retry-After-Ms before answering, and checks the request
// body is replayed intact on every attempt.
func TestClientRetriesUntilSuccess(t *testing.T) {
	var calls atomic.Int64
	var bodies []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b := make([]byte, 64)
		n, _ := r.Body.Read(b)
		bodies = append(bodies, string(b[:n]))
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Retry-After-Ms", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	var slept []time.Duration
	c := &Client{
		Policy: Policy{MaxAttempts: 4, Base: 50 * time.Millisecond, Max: time.Second, Multiplier: 2, Seed: 1},
		Sleep:  func(d time.Duration) { slept = append(slept, d) },
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL, strings.NewReader(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d after retries, want 200", resp.StatusCode)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if c.RetriesSent.Load() != 2 {
		t.Fatalf("retries sent = %d, want 2", c.RetriesSent.Load())
	}
	for i, b := range bodies {
		if b != `{"x":1}` {
			t.Fatalf("attempt %d body = %q; not replayed", i, b)
		}
	}
	// The millisecond hint wins over both the 1s Retry-After and the 50ms
	// schedule.
	for i, d := range slept {
		if d != 7*time.Millisecond {
			t.Fatalf("sleep[%d] = %s, want the server's 7ms hint", i, d)
		}
	}
}

// TestClientStopsAtBudget checks that an exhausted retry budget surfaces the
// last shed response instead of retrying forever.
func TestClientStopsAtBudget(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	budget := NewBudget(1, 0.0001) // one retry, effectively no refill
	c := &Client{
		Policy: Policy{MaxAttempts: 10, Base: time.Millisecond, Max: time.Millisecond, Multiplier: 1},
		Budget: budget,
		Sleep:  func(time.Duration) {},
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want the last 503", resp.StatusCode)
	}
	if c.RetriesSent.Load() != 1 || c.BudgetDenied.Load() != 1 {
		t.Fatalf("retries = %d, denied = %d; want 1 and 1", c.RetriesSent.Load(), c.BudgetDenied.Load())
	}
}

// TestClientBreakerRefusesFast checks that a tripped breaker fails without
// touching the network.
func TestClientBreakerRefusesFast(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	br := NewBreaker(2, time.Hour)
	c := &Client{
		Policy:  Policy{MaxAttempts: 1},
		Breaker: br,
		Sleep:   func(time.Duration) {},
	}
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
		resp, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if br.State() != Open {
		t.Fatalf("breaker state = %s after failures, want open", br.State())
	}
	before := calls.Load()
	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	if _, err := c.Do(req); err != ErrCircuitOpen {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker still sent traffic")
	}
	if c.BreakerOpen.Load() != 1 {
		t.Fatalf("breaker-open counter = %d, want 1", c.BreakerOpen.Load())
	}
}
