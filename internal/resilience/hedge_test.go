package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestHedgedFastPrimary: a primary finishing inside the delay wins without a
// hedge ever launching.
func TestHedgedFastPrimary(t *testing.T) {
	hedged := make(chan struct{}, 1)
	v, hr, err := Hedged(context.Background(), 500*time.Millisecond, nil,
		func(ctx context.Context) (string, error) { return "primary", nil },
		func(ctx context.Context) (string, error) { hedged <- struct{}{}; return "hedge", nil },
	)
	if err != nil || v != "primary" {
		t.Fatalf("got %q, %v", v, err)
	}
	if hr.Launched || hr.WonByHedge {
		t.Fatalf("hedge launched on a fast primary: %+v", hr)
	}
	select {
	case <-hedged:
		t.Fatal("hedge callback ran")
	default:
	}
}

// TestHedgedSlowPrimary: the hedge launches after the delay, wins, and the
// primary's context is cancelled.
func TestHedgedSlowPrimary(t *testing.T) {
	primaryCancelled := make(chan struct{})
	v, hr, err := Hedged(context.Background(), 5*time.Millisecond, nil,
		func(ctx context.Context) (string, error) {
			<-ctx.Done()
			close(primaryCancelled)
			return "", ctx.Err()
		},
		func(ctx context.Context) (string, error) { return "hedge", nil },
	)
	if err != nil || v != "hedge" {
		t.Fatalf("got %q, %v", v, err)
	}
	if !hr.Launched || !hr.WonByHedge {
		t.Fatalf("outcome %+v, want launched hedge win", hr)
	}
	select {
	case <-primaryCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("loser's context was not cancelled")
	}
}

// TestHedgedBudgetDenied: an empty budget suppresses the hedge; the slow
// primary still answers.
func TestHedgedBudgetDenied(t *testing.T) {
	b := NewBudget(1, 0.1)
	if !b.Withdraw() {
		t.Fatal("setup: bucket should start full")
	} // drain it
	v, hr, err := Hedged(context.Background(), time.Millisecond, b,
		func(ctx context.Context) (string, error) {
			time.Sleep(20 * time.Millisecond)
			return "primary", nil
		},
		func(ctx context.Context) (string, error) { return "hedge", nil },
	)
	if err != nil || v != "primary" {
		t.Fatalf("got %q, %v", v, err)
	}
	if hr.Launched || !hr.Denied {
		t.Fatalf("outcome %+v, want denied, not launched", hr)
	}
}

// TestHedgedFastFailure: a primary failing before the delay returns
// immediately — fast failures belong to the retry loop, not the hedger.
func TestHedgedFastFailure(t *testing.T) {
	boom := errors.New("boom")
	start := time.Now()
	_, hr, err := Hedged(context.Background(), time.Hour, nil,
		func(ctx context.Context) (string, error) { return "", boom },
		func(ctx context.Context) (string, error) { return "hedge", nil },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if hr.Launched {
		t.Fatal("hedge launched on a fast failure")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("waited for the delay despite a fast failure")
	}
}

// TestHedgedPrimaryFailsHedgeWins: a failure after the hedge launched waits
// for the in-flight hedge instead of discarding it.
func TestHedgedPrimaryFailsHedgeWins(t *testing.T) {
	v, hr, err := Hedged(context.Background(), time.Millisecond, nil,
		func(ctx context.Context) (string, error) {
			time.Sleep(10 * time.Millisecond)
			return "", errors.New("primary died")
		},
		func(ctx context.Context) (string, error) {
			time.Sleep(30 * time.Millisecond)
			return "hedge", nil
		},
	)
	if err != nil || v != "hedge" {
		t.Fatalf("got %q, %v", v, err)
	}
	if !hr.WonByHedge {
		t.Fatalf("outcome %+v, want hedge win", hr)
	}
}

// TestHedgedBothFail: the primary's error surfaces, not the hedge's.
func TestHedgedBothFail(t *testing.T) {
	pErr, hErr := errors.New("primary err"), errors.New("hedge err")
	_, _, err := Hedged(context.Background(), time.Millisecond, nil,
		func(ctx context.Context) (string, error) {
			time.Sleep(10 * time.Millisecond)
			return "", pErr
		},
		func(ctx context.Context) (string, error) { return "", hErr },
	)
	if !errors.Is(err, pErr) {
		t.Fatalf("err = %v, want the primary's", err)
	}
}

// TestHedgedParentCancel: cancelling the caller's context unblocks Hedged.
func TestHedgedParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := Hedged(ctx, time.Hour, nil,
			func(ctx context.Context) (string, error) { <-ctx.Done(); return "", ctx.Err() },
			func(ctx context.Context) (string, error) { return "hedge", nil },
		)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Hedged did not observe parent cancellation")
	}
}
