// Package cascade implements two-stage inference for the detection hot path
// (ROADMAP item 5): a calibrated cheap first stage short-circuits
// confidently-normal and confidently-abnormal log lines to a verdict and
// passes only the uncertain band to the transformer. The default stage-1 scorer is a supervised n-gram
// over the tokenizer's magnitude buckets (ngram.go) — the transformer's own
// discretized view of a job — with the seed's unsupervised PCA and
// isolation-forest scorers as alternatives. The gate is calibrated on
// training data against the transformer's own verdicts so end-to-end
// verdicts stay in ≥99% agreement with transformer-only serving; the serving
// integration lives in internal/core (engine pre-filter, monitor chunk
// pre-filter, artifact v3 persistence, per-model counters).
//
// Calibration is a pure function of (config, training jobs, stage-2
// verdicts): no clocks, no global randomness.
//
//repro:deterministic
package cascade

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/baselines"
	"repro/internal/flowbench"
	"repro/internal/logparse"
)

// Defaults for Config zero values.
const (
	DefaultScorer       = "ngram"
	DefaultTargetRecall = 0.995
)

// Config selects and calibrates the first stage.
type Config struct {
	// Scorer names the stage-1 scorer: "ngram" (default), "pca", or
	// "iforest".
	Scorer string
	// TargetRecall is the fraction of calibration positives (the
	// transformer-flagged training jobs) whose stage-1 score must clear the
	// confident-normal threshold and reach the transformer. Default
	// DefaultTargetRecall.
	TargetRecall float64
	// NormalOnly disables the confident-abnormal band: the gate then only
	// ever short-circuits toward normal, and every score at or above Low
	// pays for the transformer. By default both thresholds are calibrated —
	// the highest-scoring lines short-circuit to an abnormal verdict, with
	// the false-abnormal rate on calibration negatives bounded by
	// (1 − TargetRecall) — because on Flow-Bench streams a large share of
	// traffic is confidently abnormal and passing it through would forfeit
	// most of the cascade speedup.
	NormalOnly bool
	// Seed seeds the stage-1 fit (PCA power iteration, forest sampling).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Scorer == "" {
		c.Scorer = DefaultScorer
	}
	if c.TargetRecall == 0 {
		c.TargetRecall = DefaultTargetRecall
	}
	return c
}

// Gate is a calibrated two-threshold first stage. Scores below Low
// short-circuit to a normal verdict, scores at or above High (unless fitted
// with NormalOnly) short-circuit to an abnormal verdict, and the band in
// between passes to the transformer.
type Gate struct {
	scorer    string
	low       float64
	high      float64
	scale     float64
	recall    float64
	positives int

	pca    *baselines.PCADetector
	forest *baselines.IsolationForest
	ngram  *ngramModel
}

// Fit fits the stage-1 scorer on train and calibrates the thresholds.
// verdicts are the stage-2 (transformer) 0/1 verdicts over the same jobs, in
// order, and are the calibration positives: the gate protects exactly what
// stage 2 would flag, not the synthetic ground-truth labels. (A label the
// transformer does not flag scores like a normal line by construction;
// calibrating on it would only collapse the confident-normal band without
// changing any serving verdict.)
func Fit(cfg Config, train []flowbench.Job, verdicts []int) (*Gate, error) {
	cfg = cfg.withDefaults()
	if len(train) == 0 {
		return nil, fmt.Errorf("cascade: no training jobs")
	}
	if len(verdicts) != len(train) {
		return nil, fmt.Errorf("cascade: %d verdicts for %d jobs", len(verdicts), len(train))
	}
	if cfg.TargetRecall <= 0 || cfg.TargetRecall > 1 {
		return nil, fmt.Errorf("cascade: target recall %v out of (0, 1]", cfg.TargetRecall)
	}
	g := &Gate{scorer: cfg.Scorer, recall: cfg.TargetRecall, high: math.MaxFloat64}
	switch cfg.Scorer {
	case "ngram":
		g.ngram = fitNGram(train, verdicts)
	case "pca":
		g.pca = baselines.FitPCA(train, 4, cfg.Seed)
	case "iforest":
		fc := baselines.DefaultIForestConfig()
		fc.Seed = cfg.Seed
		g.forest = baselines.FitIsolationForest(train, fc)
	default:
		return nil, fmt.Errorf("cascade: unknown scorer %q (want ngram, pca, or iforest)", cfg.Scorer)
	}

	scores := make([]float64, len(train))
	var pos, neg []float64
	for i, j := range train {
		s := g.ScoreJob(j)
		scores[i] = s
		if verdicts[i] == 1 {
			pos = append(pos, s)
		} else {
			neg = append(neg, s)
		}
	}
	g.positives = len(pos)
	g.scale = stddev(scores)
	if g.scale <= 0 {
		g.scale = 1
	}

	// Low: the (1−recall) quantile of positive scores, so at least recall of
	// the positives score >= low and reach the transformer. No positives at
	// all means nothing to protect — but also nothing to calibrate against,
	// so fail open: pass everything.
	if len(pos) == 0 {
		g.low = -math.MaxFloat64
		return g, nil
	}
	sort.Float64s(pos)
	idx := int(float64(len(pos)) * (1 - cfg.TargetRecall))
	if idx >= len(pos) {
		idx = len(pos) - 1
	}
	g.low = pos[idx]
	// The ngram scorer assigns exactly ngramUnseen to keys with no
	// calibration evidence; those must always reach stage 2, so the
	// confident-normal band is structurally capped below that score no matter
	// where the recall quantile lands. (Capping only lowers the threshold —
	// the recall guarantee, a lower bound, is preserved.)
	if g.ngram != nil && g.low > ngramUnseen {
		g.low = ngramUnseen
	}

	// High: unless NormalOnly, the quantile of negative scores that bounds
	// false-abnormal short circuits to (1−recall) of the negatives. Kept
	// beyond every training score otherwise.
	if !cfg.NormalOnly && len(neg) > 0 {
		sort.Float64s(neg)
		hi := int(math.Ceil(float64(len(neg)) * cfg.TargetRecall))
		if hi >= len(neg) {
			g.high = neg[len(neg)-1] + 1
		} else {
			g.high = neg[hi]
		}
		// Mirror of the Low cap: an ngram key with no calibration evidence
		// scores exactly ngramUnseen and must pass to stage 2, never short
		// abnormal. Raising the threshold only tightens the calibrated
		// false-abnormal bound.
		if g.ngram != nil && g.high <= ngramUnseen {
			g.high = math.Nextafter(ngramUnseen, 1)
		}
		if g.high < g.low {
			g.high = g.low
		}
	}
	return g, nil
}

func stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// ScoreJob returns the stage-1 score of one parsed job. Alloc-free.
//
//repro:hotpath
func (g *Gate) ScoreJob(j flowbench.Job) float64 {
	switch {
	case g.ngram != nil:
		return g.ngram.score(&j.Features)
	case g.pca != nil:
		return g.pca.ScoreOne(j)
	default:
		return g.forest.ScoreOne(j)
	}
}

// ScoreSentence scores one feature sentence. ok is false when the sentence
// does not parse as feature triples; such lines must pass to stage 2.
// Alloc-free.
//
//repro:hotpath
func (g *Gate) ScoreSentence(s string) (score float64, ok bool) {
	var j flowbench.Job
	if !logparse.ScanSentence(s, &j.Features) {
		return 0, false
	}
	return g.ScoreJob(j), true
}

// Decision is the gate's routing verdict for one line.
type Decision int

// Decisions: short-circuit to a normal verdict, pass to the transformer, or
// (abnormal band only) short-circuit to an abnormal verdict.
const (
	ShortNormal Decision = iota
	PassThrough
	ShortAbnormal
)

// Decide routes a stage-1 score.
//
//repro:hotpath
func (g *Gate) Decide(score float64) Decision {
	if score < g.low {
		return ShortNormal
	}
	if score >= g.high {
		return ShortAbnormal
	}
	return PassThrough
}

// Prob maps a stage-1 score to the logistic pseudo-probability reported on
// short-circuited verdicts — the same shape the brownout tier reports, so
// clients see comparable scores from both cheap paths.
//
//repro:hotpath
func (g *Gate) Prob(score float64) float64 {
	return 1 / (1 + math.Exp(-(score-g.low)/g.scale))
}

// Scorer names the fitted stage-1 scorer.
func (g *Gate) Scorer() string { return g.scorer }

// Low is the calibrated confident-normal threshold.
func (g *Gate) Low() float64 { return g.low }

// High is the calibrated confident-abnormal threshold (math.MaxFloat64 when
// the abnormal band is off).
func (g *Gate) High() float64 { return g.high }

// TargetRecall is the recall the gate was calibrated to.
func (g *Gate) TargetRecall() float64 { return g.recall }

// Positives is the number of calibration positives behind Low.
func (g *Gate) Positives() int { return g.positives }

// Params is the serialized form of a calibrated gate — what the artifact v3
// cascade section stores.
type Params struct {
	Scorer       string                   `json:"scorer"`
	Low          float64                  `json:"low"`
	High         float64                  `json:"high"`
	Scale        float64                  `json:"scale"`
	TargetRecall float64                  `json:"target_recall"`
	Positives    int                      `json:"positives"`
	PCA          *baselines.PCAParams     `json:"pca,omitempty"`
	IForest      *baselines.IForestParams `json:"iforest,omitempty"`
	NGram        *NGramParams             `json:"ngram,omitempty"`
}

// Params exports the gate for serialization.
func (g *Gate) Params() Params {
	p := Params{
		Scorer:       g.scorer,
		Low:          g.low,
		High:         g.high,
		Scale:        g.scale,
		TargetRecall: g.recall,
		Positives:    g.positives,
	}
	if g.pca != nil {
		pp := g.pca.Params()
		p.PCA = &pp
	}
	if g.forest != nil {
		fp := g.forest.Params()
		p.IForest = &fp
	}
	if g.ngram != nil {
		np := g.ngram.params()
		p.NGram = &np
	}
	return p
}

// FromParams reconstructs a gate from serialized parameters, validating them
// (artifacts are untrusted input).
func FromParams(p Params) (*Gate, error) {
	for _, v := range [...]float64{p.Low, p.High, p.Scale, p.TargetRecall} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("cascade: non-finite threshold in gate params")
		}
	}
	if p.Scale <= 0 {
		return nil, fmt.Errorf("cascade: scale %v must be positive", p.Scale)
	}
	g := &Gate{
		scorer:    p.Scorer,
		low:       p.Low,
		high:      p.High,
		scale:     p.Scale,
		recall:    p.TargetRecall,
		positives: p.Positives,
	}
	switch {
	case p.Scorer == "ngram" && p.NGram != nil:
		m, err := ngramFromParams(*p.NGram)
		if err != nil {
			return nil, err
		}
		g.ngram = m
	case p.Scorer == "pca" && p.PCA != nil:
		pca, err := baselines.PCAFromParams(*p.PCA)
		if err != nil {
			return nil, fmt.Errorf("cascade: %w", err)
		}
		g.pca = pca
	case p.Scorer == "iforest" && p.IForest != nil:
		f, err := baselines.IForestFromParams(*p.IForest)
		if err != nil {
			return nil, fmt.Errorf("cascade: %w", err)
		}
		g.forest = f
	default:
		return nil, fmt.Errorf("cascade: gate params name scorer %q without matching parameters", p.Scorer)
	}
	return g, nil
}
