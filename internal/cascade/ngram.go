package cascade

import (
	"fmt"

	"repro/internal/flowbench"
	"repro/internal/tokenizer"
)

// The "ngram" stage-1 scorer keys on the transformer's own view of a job.
// The tokenizer discretizes every numeral into one of tokenizer.NumBuckets
// logarithmic magnitude buckets before the encoder ever sees it, so the
// stage-2 verdict for a feature sentence is a function of the 9-byte bucket
// vector — a small discrete space that training traffic covers densely. The
// scorer counts, per hashed bucket vector, how often stage 2 flagged it
// during calibration, and scores a line by the smoothed positive rate
//
//	p = (pos + α) / (n + 2α)
//
// of its key. A never-seen key scores exactly ngramUnseen = α/2α = 0.5: no
// evidence either way, so it must reach the transformer — Fit caps the
// confident-normal threshold below that score.
//
// Unlike pca/iforest, this scorer is supervised by the calibration verdicts,
// which is what lets it short-circuit the bulk of steady traffic while
// holding ≥99% verdict agreement: it reproduces the transformer's decision
// boundary on seen keys instead of approximating it with reconstruction
// error.
const (
	// ngramBits sizes the hashed count table (1<<17 slots ≈ 9× the distinct
	// keys in a Flow-Bench training split; collisions merge counts, which can
	// only push a key toward PassThrough in practice since merged positives
	// raise the smoothed rate).
	ngramBits = 17
	ngramSize = 1 << ngramBits
	// ngramAlpha is the Laplace smoothing mass. Small enough that a single
	// observed positive (p ≈ 1/n) clears any calibrated threshold, large
	// enough that the unseen score is well-defined.
	ngramAlpha = 0.01
	// ngramUnseen is the score of a key with no calibration evidence
	// (α / 2α). Fit keeps the confident-normal threshold at or below this so
	// unseen keys always pass to stage 2.
	ngramUnseen = 0.5
)

// ngramModel is the hashed count table: n[k] calibration jobs hashed to slot
// k, pos[k] of them flagged by stage 2.
type ngramModel struct {
	n   []uint32
	pos []uint32
}

func fitNGram(train []flowbench.Job, verdicts []int) *ngramModel {
	m := &ngramModel{n: make([]uint32, ngramSize), pos: make([]uint32, ngramSize)}
	for i := range train {
		k := ngramIndex(&train[i].Features)
		m.n[k]++
		if verdicts[i] == 1 {
			m.pos[k]++
		}
	}
	return m
}

// ngramIndex hashes the per-feature magnitude buckets (FNV-1a over one byte
// per feature) into the count table. Alloc-free.
//
//repro:hotpath
func ngramIndex(f *[flowbench.NumFeatures]float64) uint32 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := range f {
		h ^= uint64(uint8(tokenizer.NumBucket(f[i])))
		h *= fnvPrime
	}
	return uint32(h) & (ngramSize - 1)
}

// score returns the smoothed positive rate of the job's bucket-vector key.
// Alloc-free.
//
//repro:hotpath
func (m *ngramModel) score(f *[flowbench.NumFeatures]float64) float64 {
	k := ngramIndex(f)
	return (float64(m.pos[k]) + ngramAlpha) / (float64(m.n[k]) + 2*ngramAlpha)
}

// NGramParams serializes the non-empty slots of the hashed count table in
// ascending slot order: Idx[i] saw N[i] calibration jobs, Pos[i] of them
// flagged.
type NGramParams struct {
	Bits int      `json:"bits"`
	Idx  []uint32 `json:"idx"`
	N    []uint32 `json:"n"`
	Pos  []uint32 `json:"pos"`
}

func (m *ngramModel) params() NGramParams {
	p := NGramParams{Bits: ngramBits}
	for k, n := range m.n {
		if n == 0 {
			continue
		}
		p.Idx = append(p.Idx, uint32(k))
		p.N = append(p.N, n)
		p.Pos = append(p.Pos, m.pos[k])
	}
	return p
}

func ngramFromParams(p NGramParams) (*ngramModel, error) {
	if p.Bits != ngramBits {
		return nil, fmt.Errorf("cascade: ngram table has %d bits, this build expects %d", p.Bits, ngramBits)
	}
	if len(p.N) != len(p.Idx) || len(p.Pos) != len(p.Idx) {
		return nil, fmt.Errorf("cascade: ngram params arrays disagree (%d idx, %d n, %d pos)",
			len(p.Idx), len(p.N), len(p.Pos))
	}
	m := &ngramModel{n: make([]uint32, ngramSize), pos: make([]uint32, ngramSize)}
	for i, k := range p.Idx {
		if k >= ngramSize {
			return nil, fmt.Errorf("cascade: ngram slot %d out of range", k)
		}
		if p.N[i] == 0 || p.Pos[i] > p.N[i] {
			return nil, fmt.Errorf("cascade: ngram slot %d has %d positives of %d observations", k, p.Pos[i], p.N[i])
		}
		if m.n[k] != 0 {
			return nil, fmt.Errorf("cascade: ngram slot %d repeated", k)
		}
		m.n[k] = p.N[i]
		m.pos[k] = p.Pos[i]
	}
	return m, nil
}
