package cascade

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/flowbench"
	"repro/internal/logparse"
)

// calJobs builds a deterministic calibration set: mostly-normal jobs with
// integer-valued jittered features (so their sentences parse back bit-exactly)
// and a rare point anomaly carrying the far-out marker value 666 in feature 2.
// Returns the jobs and the stage-2 verdicts (1 exactly on the anomalies).
func calJobs(n, anomalyEvery int) ([]flowbench.Job, []int) {
	jobs := make([]flowbench.Job, n)
	verdicts := make([]int, n)
	for i := range jobs {
		j := flowbench.Job{Workflow: flowbench.Genome, TraceID: i / 8, NodeIndex: i % 8, TaskType: "t"}
		for k := range j.Features {
			j.Features[k] = float64(10+k) + float64((i*7+k*13)%11)
		}
		if anomalyEvery > 0 && i%anomalyEvery == 0 {
			j.Features[2] = 666
			j.Label = 1
			verdicts[i] = 1
		}
		jobs[i] = j
	}
	return jobs, verdicts
}

func fitGate(t *testing.T, cfg Config, jobs []flowbench.Job, verdicts []int) *Gate {
	t.Helper()
	g, err := Fit(cfg, jobs, verdicts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFitValidation pins the loud-failure contract on bad calibration input.
func TestFitValidation(t *testing.T) {
	jobs, verdicts := calJobs(32, 8)
	cases := []struct {
		name     string
		cfg      Config
		jobs     []flowbench.Job
		verdicts []int
	}{
		{"no jobs", Config{}, nil, nil},
		{"verdict count mismatch", Config{}, jobs, verdicts[:len(verdicts)-1]},
		{"recall above one", Config{TargetRecall: 1.5}, jobs, verdicts},
		{"negative recall", Config{TargetRecall: -0.1}, jobs, verdicts},
		{"unknown scorer", Config{Scorer: "magic8ball"}, jobs, verdicts},
	}
	for _, tc := range cases {
		if _, err := Fit(tc.cfg, tc.jobs, tc.verdicts); err == nil {
			t.Errorf("%s: Fit accepted invalid input", tc.name)
		}
	}
}

// TestFitDeterminism: calibration is a pure function of (config, jobs,
// verdicts) — two fits on identical input export identical parameters, for
// both stage-1 scorers. This is what makes artifact-embedded gates and
// re-fits at serve startup interchangeable.
func TestFitDeterminism(t *testing.T) {
	jobs, verdicts := calJobs(256, 16)
	for _, scorer := range []string{"ngram", "pca", "iforest"} {
		cfg := Config{Scorer: scorer, Seed: 7}
		a := fitGate(t, cfg, jobs, verdicts)
		b := fitGate(t, cfg, jobs, verdicts)
		if !reflect.DeepEqual(a.Params(), b.Params()) {
			t.Errorf("%s: identical fits exported different params", scorer)
		}
	}
}

// TestCalibratedRecall: on real Flow-Bench traffic, at least TargetRecall of
// the calibration positives must score at or above the confident-normal
// threshold — the property that bounds how much stage 1 can cost stage 2.
func TestCalibratedRecall(t *testing.T) {
	ds := flowbench.Generate(flowbench.Genome, 42)
	verdicts := make([]int, len(ds.Train))
	for i, j := range ds.Train {
		verdicts[i] = j.Label
	}
	for _, scorer := range []string{"ngram", "pca", "iforest"} {
		const recall = 0.9 // off-default so the quantile index is nonzero
		g := fitGate(t, Config{Scorer: scorer, TargetRecall: recall, Seed: 3}, ds.Train, verdicts)
		var pos, kept int
		for i, j := range ds.Train {
			if verdicts[i] != 1 {
				continue
			}
			pos++
			if g.ScoreJob(j) >= g.Low() {
				kept++
			}
		}
		if pos == 0 {
			t.Fatalf("%s: dataset has no calibration positives", scorer)
		}
		if got := float64(kept) / float64(pos); got < recall {
			t.Errorf("%s: %d/%d positives (%.3f) reach the transformer, want >= %.3f",
				scorer, kept, pos, got, recall)
		}
		if g.Positives() != pos {
			t.Errorf("%s: Positives() = %d, want %d", scorer, g.Positives(), pos)
		}
		if g.TargetRecall() != recall {
			t.Errorf("%s: TargetRecall() = %v, want %v", scorer, g.TargetRecall(), recall)
		}
	}
}

// TestFailOpenWithoutPositives: nothing flagged by either the transformer or
// the ground truth means nothing to calibrate against, so the gate must pass
// every line rather than inventing a threshold.
func TestFailOpenWithoutPositives(t *testing.T) {
	jobs, verdicts := calJobs(64, 0)
	g := fitGate(t, Config{}, jobs, verdicts)
	if g.Positives() != 0 {
		t.Fatalf("Positives() = %d, want 0", g.Positives())
	}
	for _, j := range jobs {
		if d := g.Decide(g.ScoreJob(j)); d != PassThrough {
			t.Fatalf("fail-open gate decided %v, want PassThrough", d)
		}
	}
}

// TestAbnormalBand: calibrated by default — the highest training scores
// short-circuit abnormal with the thresholds ordered — and NormalOnly
// disarms it so even an extreme score only passes through.
func TestAbnormalBand(t *testing.T) {
	jobs, verdicts := calJobs(256, 16)
	on := fitGate(t, Config{Seed: 7}, jobs, verdicts)
	if on.High() == math.MaxFloat64 {
		t.Fatal("default gate never calibrated High()")
	}
	if on.High() < on.Low() {
		t.Fatalf("High() %v < Low() %v", on.High(), on.Low())
	}
	if d := on.Decide(on.High()); d != ShortAbnormal {
		t.Fatalf("score at High() decided %v, want ShortAbnormal", d)
	}

	off := fitGate(t, Config{Seed: 7, NormalOnly: true}, jobs, verdicts)
	if off.High() != math.MaxFloat64 {
		t.Fatalf("NormalOnly High() = %v, want math.MaxFloat64", off.High())
	}
	if d := off.Decide(1e300); d != PassThrough {
		t.Fatalf("NormalOnly gate decided %v on an extreme score, want PassThrough", d)
	}
}

// TestNGramUnseenPasses: a key never observed during calibration has no
// evidence either way, so it must reach stage 2 regardless of where the
// recall quantiles landed — the structural caps on both thresholds.
func TestNGramUnseenPasses(t *testing.T) {
	jobs, verdicts := calJobs(256, 2) // half the traffic flagged: High lands low
	g := fitGate(t, Config{Seed: 7}, jobs, verdicts)
	unseen := flowbench.Job{TaskType: "t"}
	for k := range unseen.Features {
		unseen.Features[k] = 1e9 + float64(k)*1e10 // buckets no calJobs feature hits
	}
	sc := g.ScoreJob(unseen)
	if sc != 0.5 {
		t.Fatalf("unseen key scored %v, want 0.5", sc)
	}
	if d := g.Decide(sc); d != PassThrough {
		t.Fatalf("unseen key decided %v, want PassThrough (low %v, high %v)", d, g.Low(), g.High())
	}
}

// TestDecideBands pins the routing arithmetic around the thresholds.
func TestDecideBands(t *testing.T) {
	jobs, verdicts := calJobs(256, 16)
	g := fitGate(t, Config{Seed: 7}, jobs, verdicts)
	if d := g.Decide(g.Low() - 1e-9); d != ShortNormal {
		t.Errorf("just below Low: %v, want ShortNormal", d)
	}
	if d := g.Decide(g.Low()); d != PassThrough {
		t.Errorf("at Low: %v, want PassThrough", d)
	}
	// Prob is monotone in the score and crosses 0.5 exactly at Low.
	if p := g.Prob(g.Low()); p != 0.5 {
		t.Errorf("Prob(Low) = %v, want 0.5", p)
	}
	if !(g.Prob(g.Low()-g.scale) < 0.5 && g.Prob(g.Low()+g.scale) > 0.5) {
		t.Error("Prob not monotone around Low")
	}
}

// TestParamsRoundTrip: export → rebuild must preserve every score and routing
// decision bit-exactly, for both scorers — the artifact v3 contract.
func TestParamsRoundTrip(t *testing.T) {
	jobs, verdicts := calJobs(256, 16)
	for _, scorer := range []string{"ngram", "pca", "iforest"} {
		g := fitGate(t, Config{Scorer: scorer, Seed: 7}, jobs, verdicts)
		back, err := FromParams(g.Params())
		if err != nil {
			t.Fatalf("%s: %v", scorer, err)
		}
		if !reflect.DeepEqual(back.Params(), g.Params()) {
			t.Errorf("%s: params changed across round-trip", scorer)
		}
		for i, j := range jobs {
			ws, bs := g.ScoreJob(j), back.ScoreJob(j)
			if ws != bs {
				t.Fatalf("%s: job %d scored %v before, %v after round-trip", scorer, i, ws, bs)
			}
			if g.Decide(ws) != back.Decide(bs) {
				t.Fatalf("%s: job %d routed differently after round-trip", scorer, i)
			}
		}
	}
}

// TestFromParamsRejectsInvalid: artifacts are untrusted input, so corrupt
// gate parameters must fail loudly instead of misrouting traffic.
func TestFromParamsRejectsInvalid(t *testing.T) {
	jobs, verdicts := calJobs(64, 8)
	good := fitGate(t, Config{Scorer: "pca", Seed: 7}, jobs, verdicts).Params()
	goodNG := fitGate(t, Config{Scorer: "ngram", Seed: 7}, jobs, verdicts).Params()
	mutate := func(f func(*Params)) Params {
		p := good
		f(&p)
		return p
	}
	// mutateNG deep-copies the ngram table so each case corrupts its own copy.
	mutateNG := func(f func(*Params)) Params {
		p := goodNG
		ng := *p.NGram
		ng.Idx = append([]uint32(nil), ng.Idx...)
		ng.N = append([]uint32(nil), ng.N...)
		ng.Pos = append([]uint32(nil), ng.Pos...)
		p.NGram = &ng
		f(&p)
		return p
	}
	cases := []struct {
		name string
		p    Params
	}{
		{"NaN low", mutate(func(p *Params) { p.Low = math.NaN() })},
		{"infinite high", mutate(func(p *Params) { p.High = math.Inf(1) })},
		{"zero scale", mutate(func(p *Params) { p.Scale = 0 })},
		{"negative scale", mutate(func(p *Params) { p.Scale = -1 })},
		{"scorer without params", mutate(func(p *Params) { p.PCA = nil })},
		{"scorer/params mismatch", mutate(func(p *Params) { p.Scorer = "iforest" })},
		{"unknown scorer", mutate(func(p *Params) { p.Scorer = "magic8ball" })},
		{"ngram without table", mutateNG(func(p *Params) { p.NGram = nil })},
		{"ngram bits mismatch", mutateNG(func(p *Params) { p.NGram.Bits = 4 })},
		{"ngram ragged arrays", mutateNG(func(p *Params) { p.NGram.Pos = p.NGram.Pos[:1] })},
		{"ngram slot out of range", mutateNG(func(p *Params) { p.NGram.Idx[0] = 1 << 30 })},
		{"ngram pos exceeds n", mutateNG(func(p *Params) { p.NGram.Pos[0] = p.NGram.N[0] + 1 })},
		{"ngram repeated slot", mutateNG(func(p *Params) { p.NGram.Idx[1] = p.NGram.Idx[0] })},
	}
	for _, tc := range cases {
		if _, err := FromParams(tc.p); err == nil {
			t.Errorf("%s: FromParams accepted corrupt params", tc.name)
		}
	}
}

// TestScoreSentence: a rendered feature sentence scores identically to its
// job (integer-valued features round-trip the wire format bit-exactly), and
// unparseable text reports ok=false so the caller routes it to stage 2.
func TestScoreSentence(t *testing.T) {
	jobs, verdicts := calJobs(64, 8)
	g := fitGate(t, Config{Seed: 7}, jobs, verdicts)
	for i, j := range jobs {
		s := logparse.Sentence(j)
		got, ok := g.ScoreSentence(s)
		if !ok {
			t.Fatalf("sentence %d did not parse: %q", i, s)
		}
		if want := g.ScoreJob(j); got != want {
			t.Fatalf("sentence %d scored %v, job scored %v", i, got, want)
		}
	}
	for _, s := range []string{"not a sentence", "The value of x is banana."} {
		if _, ok := g.ScoreSentence(s); ok {
			t.Errorf("ScoreSentence parsed garbage %q", s)
		}
	}
}

// TestHotPathAllocFree: the per-line stage-1 path (score, route, report)
// must not allocate — it runs inside the engine's batch loop and the monitor
// chunk loop for every ingested line.
func TestHotPathAllocFree(t *testing.T) {
	jobs, verdicts := calJobs(256, 16)
	for _, scorer := range []string{"ngram", "pca", "iforest"} {
		g := fitGate(t, Config{Scorer: scorer, Seed: 7}, jobs, verdicts)
		j := jobs[1]
		s := logparse.Sentence(j)
		var sink float64
		allocs := testing.AllocsPerRun(200, func() {
			sc := g.ScoreJob(j)
			sink += g.Prob(sc)
			sink += float64(g.Decide(sc))
			sc2, _ := g.ScoreSentence(s)
			sink += sc2
		})
		if allocs != 0 {
			t.Errorf("%s: stage-1 hot path allocates %.1f/op, want 0", scorer, allocs)
		}
		_ = sink
	}
}
