package baselines

import (
	"errors"
	"math"
	"testing"

	"repro/internal/flowbench"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

func testData(t *testing.T) *flowbench.Dataset {
	t.Helper()
	return flowbench.Generate(flowbench.Genome, 42).Subsample(800, 100, 300, 7)
}

func TestStandardizerZeroMeanUnitVar(t *testing.T) {
	ds := testData(t)
	s := FitStandardizer(ds.Train)
	x := s.Matrix(ds.Train)
	for j := 0; j < flowbench.NumFeatures; j++ {
		var mean, varsum float64
		for i := 0; i < x.Rows; i++ {
			mean += float64(x.At(i, j))
		}
		mean /= float64(x.Rows)
		for i := 0; i < x.Rows; i++ {
			d := float64(x.At(i, j)) - mean
			varsum += d * d
		}
		varsum /= float64(x.Rows)
		if math.Abs(mean) > 0.05 || math.Abs(varsum-1) > 0.1 {
			t.Fatalf("feature %d standardized to mean=%v var=%v", j, mean, varsum)
		}
	}
}

func TestStandardizerEmptyInput(t *testing.T) {
	s := FitStandardizer(nil)
	f := s.Transform(flowbench.Job{})
	for _, v := range f {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("empty-fit standardizer produced non-finite output")
		}
	}
}

func TestMLPBeatsMajority(t *testing.T) {
	ds := testData(t)
	m := TrainMLP(ds.Train, DefaultMLPConfig())
	conf := m.Evaluate(ds.Test)
	majority := 1 - ds.Stats()[2].Fraction()
	if conf.Accuracy() <= majority+0.05 {
		t.Fatalf("MLP accuracy %.3f not above majority %.3f", conf.Accuracy(), majority)
	}
}

func TestNormalizedAdjacencySymmetricRows(t *testing.T) {
	adj := NormalizedAdjacency(3, [][2]int{{0, 1}, {1, 2}})
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if adj.At(i, j) != adj.At(j, i) {
				t.Fatal("normalized adjacency not symmetric")
			}
		}
	}
	// Isolated self-loop only node: Â[i][i] = 1 when degree is 1.
	solo := NormalizedAdjacency(1, nil)
	if math.Abs(float64(solo.At(0, 0))-1) > 1e-6 {
		t.Fatalf("singleton adjacency = %v", solo.At(0, 0))
	}
}

func TestBuildTraceGraphs(t *testing.T) {
	ds := testData(t)
	graphs := BuildTraceGraphs(ds.DAG, ds.Train)
	total := 0
	for _, g := range graphs {
		total += len(g.Jobs)
		if g.Adj.Rows != len(g.Jobs) || g.Adj.Cols != len(g.Jobs) {
			t.Fatal("adjacency shape mismatch")
		}
	}
	if total != len(ds.Train) {
		t.Fatalf("trace graphs cover %d jobs, want %d", total, len(ds.Train))
	}
}

func TestGCNBeatsMajority(t *testing.T) {
	ds := testData(t)
	cfg := DefaultGCNConfig()
	cfg.Epochs = 15
	g := TrainGCN(ds.DAG, ds.Train, cfg)
	conf := g.Evaluate(ds.DAG, ds.Test)
	majority := 1 - ds.Stats()[2].Fraction()
	if conf.Accuracy() <= majority {
		t.Fatalf("GCN accuracy %.3f not above majority %.3f", conf.Accuracy(), majority)
	}
}

func TestIsolationForestSeparates(t *testing.T) {
	ds := testData(t)
	f := FitIsolationForest(ds.Train, DefaultIForestConfig())
	scores := f.Score(ds.Test)
	for _, s := range scores {
		if s <= 0 || s >= 1 {
			t.Fatalf("iforest score %v outside (0,1)", s)
		}
	}
	auc := metrics.ROCAUC(Labels(ds.Test), scores)
	if auc < 0.5 {
		t.Fatalf("iforest AUC %.3f below chance", auc)
	}
}

func TestPCADetectorScores(t *testing.T) {
	ds := testData(t)
	p := FitPCA(ds.Train, 4, 5)
	scores := p.Score(ds.Test)
	if len(scores) != len(ds.Test) {
		t.Fatal("score length mismatch")
	}
	for _, s := range scores {
		if s < 0 || math.IsNaN(s) {
			t.Fatalf("pca score %v", s)
		}
	}
	// k clamps to feature count; full-rank PCA reconstructs near-perfectly.
	full := FitPCA(ds.Train, 100, 5)
	fullScores := full.Score(ds.Test[:50])
	for _, s := range fullScores {
		if s > 0.5 {
			t.Fatalf("full-rank PCA reconstruction error %v, want ≈0", s)
		}
	}
}

func TestPCAComponentsOrthonormal(t *testing.T) {
	ds := testData(t)
	p := FitPCA(ds.Train, 3, 6)
	for i := 0; i < 3; i++ {
		ri := p.components.Row(i)
		var norm float64
		for _, v := range ri {
			norm += float64(v) * float64(v)
		}
		if math.Abs(norm-1) > 1e-3 {
			t.Fatalf("component %d norm %v", i, norm)
		}
		for j := i + 1; j < 3; j++ {
			rj := p.components.Row(j)
			var dot float64
			for k := range ri {
				dot += float64(ri[k]) * float64(rj[k])
			}
			if math.Abs(dot) > 0.05 {
				t.Fatalf("components %d,%d not orthogonal: %v", i, j, dot)
			}
		}
	}
}

func TestMLPAEScoresAnomaliesHigher(t *testing.T) {
	ds := testData(t)
	// Unsupervised: fit on the (unlabeled) training jobs.
	ae := FitMLPAE(ds.Train, DefaultAEConfig())
	scores := ae.Score(ds.Test)
	auc := metrics.ROCAUC(Labels(ds.Test), scores)
	if auc < 0.45 {
		t.Fatalf("MLPAE AUC %.3f far below chance", auc)
	}
}

func TestGCNAEScores(t *testing.T) {
	ds := testData(t)
	cfg := DefaultAEConfig()
	cfg.Epochs = 10
	ae := FitGCNAE(ds.DAG, ds.Train, cfg)
	scores := ae.Score(ds.DAG, ds.Test)
	if len(scores) != len(ds.Test) {
		t.Fatal("score length mismatch")
	}
	for _, s := range scores {
		if math.IsNaN(s) || s < 0 {
			t.Fatalf("gcnae score %v", s)
		}
	}
}

func TestAnomalyDAEOOMGuard(t *testing.T) {
	ds := flowbench.Generate(flowbench.Genome, 42)
	// Full training split (38469 jobs) needs ~11.8 GB for the n×n structure
	// reconstruction — over a 8 GB guard, reproducing the paper's OOM row.
	_, err := FitAnomalyDAE(ds.DAG, ds.Train, DefaultAEConfig(), 8<<30)
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("expected ErrOOM on full split, got %v", err)
	}
}

func TestAnomalyDAESmallGraph(t *testing.T) {
	ds := testData(t)
	cfg := DefaultAEConfig()
	cfg.Epochs = 3
	a, err := FitAnomalyDAE(ds.DAG, ds.Train[:300], cfg, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	scores := a.Score(ds.DAG, ds.Test[:100])
	if len(scores) != 100 {
		t.Fatal("score length mismatch")
	}
	for _, s := range scores {
		if math.IsNaN(s) || s < 0 {
			t.Fatalf("anomalydae score %v", s)
		}
	}
}

func TestAnomalyDAEMemoryEstimateMonotone(t *testing.T) {
	if AnomalyDAEMemoryEstimate(1000) >= AnomalyDAEMemoryEstimate(10000) {
		t.Fatal("memory estimate must grow with node count")
	}
	// 48k nodes ≈ 18 GB > A100's 40GB? No — but over our 8 GB guard.
	if AnomalyDAEMemoryEstimate(48087) <= 8<<30 {
		t.Fatal("full genome graph must exceed the 8 GB guard")
	}
}

func TestLabelsHelper(t *testing.T) {
	jobs := []flowbench.Job{{Label: 1}, {Label: 0}, {Label: 1}}
	l := Labels(jobs)
	if l[0] != 1 || l[1] != 0 || l[2] != 1 {
		t.Fatalf("labels = %v", l)
	}
}

func TestIForestDeterministic(t *testing.T) {
	ds := testData(t)
	cfg := IForestConfig{Trees: 10, Subsample: 64, Seed: 9}
	a := FitIsolationForest(ds.Train[:200], cfg).Score(ds.Test[:20])
	b := FitIsolationForest(ds.Train[:200], cfg).Score(ds.Test[:20])
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("iforest not deterministic")
		}
	}
	_ = tensor.NewRNG(0) // keep tensor import for potential extension
}
