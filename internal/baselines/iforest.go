package baselines

import (
	"fmt"
	"math"

	"repro/internal/flowbench"
	"repro/internal/tensor"
)

// IsolationForest is the unsupervised anomaly detector of Liu et al. (2008),
// the "IF" row of Table IV: an ensemble of random isolation trees whose
// average path length scores how easily a point is isolated.
type IsolationForest struct {
	std       *Standardizer
	trees     []*iNode
	subsample int
}

// iNode is one node of an isolation tree.
type iNode struct {
	feature     int
	split       float32
	left, right *iNode
	size        int // leaf size for path-length correction
}

// IForestConfig controls forest construction.
type IForestConfig struct {
	Trees     int
	Subsample int
	Seed      uint64
}

// DefaultIForestConfig matches the standard 100-tree, 256-sample setting.
func DefaultIForestConfig() IForestConfig { return IForestConfig{Trees: 100, Subsample: 256, Seed: 3} }

// FitIsolationForest builds the forest on (unlabeled) training jobs.
func FitIsolationForest(train []flowbench.Job, cfg IForestConfig) *IsolationForest {
	f := &IsolationForest{std: FitStandardizer(train), subsample: cfg.Subsample}
	rng := tensor.NewRNG(cfg.Seed)
	x := f.std.Matrix(train)
	maxDepth := int(math.Ceil(math.Log2(float64(max(2, cfg.Subsample)))))
	for t := 0; t < cfg.Trees; t++ {
		idx := make([]int, min(cfg.Subsample, x.Rows))
		for i := range idx {
			idx[i] = rng.Intn(x.Rows)
		}
		f.trees = append(f.trees, buildITree(x, idx, 0, maxDepth, rng))
	}
	return f
}

func buildITree(x *tensor.Matrix, idx []int, depth, maxDepth int, rng *tensor.RNG) *iNode {
	if len(idx) <= 1 || depth >= maxDepth {
		return &iNode{size: len(idx)}
	}
	feat := rng.Intn(x.Cols)
	lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
	for _, i := range idx {
		v := x.At(i, feat)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		return &iNode{size: len(idx)}
	}
	split := lo + rng.Float32()*(hi-lo)
	var left, right []int
	for _, i := range idx {
		if x.At(i, feat) < split {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &iNode{
		feature: feat,
		split:   split,
		left:    buildITree(x, left, depth+1, maxDepth, rng),
		right:   buildITree(x, right, depth+1, maxDepth, rng),
		size:    len(idx),
	}
}

// avgPathLength is c(n), the expected path length of an unsuccessful BST
// search, used to normalize isolation depths.
func avgPathLength(n int) float64 {
	if n <= 1 {
		return 0
	}
	h := math.Log(float64(n-1)) + 0.5772156649
	return 2*h - 2*float64(n-1)/float64(n)
}

func (f *IsolationForest) pathLength(node *iNode, row []float32, depth float64) float64 {
	if node.left == nil {
		return depth + avgPathLength(node.size)
	}
	if row[node.feature] < node.split {
		return f.pathLength(node.left, row, depth+1)
	}
	return f.pathLength(node.right, row, depth+1)
}

// ScoreOne scores a single job without heap allocation — the cascade gate's
// stage-1 hot path. Equivalent to Score on a one-job slice.
//
//repro:hotpath
func (f *IsolationForest) ScoreOne(j flowbench.Job) float64 {
	z := f.std.Transform(j)
	c := avgPathLength(f.subsample)
	var sum float64
	for _, tr := range f.trees {
		sum += f.pathLength(tr, z[:], 0)
	}
	mean := sum / float64(len(f.trees))
	return math.Pow(2, -mean/c)
}

// IFNode is one serialized isolation-tree node. Left and Right index into
// the tree's flat node slice; -1 marks a leaf.
type IFNode struct {
	Feature int     `json:"f"`
	Split   float32 `json:"s"`
	Left    int     `json:"l"`
	Right   int     `json:"r"`
	Size    int     `json:"n"`
}

// IForestParams is the serializable form of a fitted IsolationForest — what
// the cascade section of detector artifacts persists. Each tree is its nodes
// in preorder with index links.
type IForestParams struct {
	Std       Standardizer `json:"std"`
	Subsample int          `json:"subsample"`
	Trees     [][]IFNode   `json:"trees"`
}

// Params exports the fitted forest for serialization.
func (f *IsolationForest) Params() IForestParams {
	out := IForestParams{Std: *f.std, Subsample: f.subsample}
	out.Trees = make([][]IFNode, len(f.trees))
	for t, tr := range f.trees {
		out.Trees[t] = flattenITree(tr, nil)
	}
	return out
}

// flattenITree appends node and its subtree to out in preorder, returning
// the extended slice.
func flattenITree(node *iNode, out []IFNode) []IFNode {
	idx := len(out)
	out = append(out, IFNode{Feature: node.feature, Split: node.split, Left: -1, Right: -1, Size: node.size})
	if node.left != nil {
		out[idx].Left = len(out)
		out = flattenITree(node.left, out)
		out[idx].Right = len(out)
		out = flattenITree(node.right, out)
	}
	return out
}

// IForestFromParams reconstructs a forest from serialized parameters,
// validating indices and statistics (artifacts are untrusted input).
func IForestFromParams(p IForestParams) (*IsolationForest, error) {
	if len(p.Trees) == 0 || p.Subsample < 2 {
		return nil, fmt.Errorf("baselines: iforest params need trees and subsample >= 2")
	}
	for i := range p.Std.Std {
		if !(p.Std.Std[i] > 0) || math.IsInf(p.Std.Std[i], 0) ||
			math.IsNaN(p.Std.Mean[i]) || math.IsInf(p.Std.Mean[i], 0) {
			return nil, fmt.Errorf("baselines: iforest standardizer stats invalid at feature %d", i)
		}
	}
	std := p.Std
	f := &IsolationForest{std: &std, subsample: p.Subsample}
	for t, nodes := range p.Trees {
		root, err := buildFromFlat(nodes, 0, 0)
		if err != nil {
			return nil, fmt.Errorf("baselines: iforest tree %d: %w", t, err)
		}
		f.trees = append(f.trees, root)
	}
	return f, nil
}

// maxITreeDepth bounds decode recursion; fitted trees are depth <= ~log2
// subsample, so 64 is far beyond any honest artifact and guards cycles.
const maxITreeDepth = 64

func buildFromFlat(nodes []IFNode, i, depth int) (*iNode, error) {
	if depth > maxITreeDepth {
		return nil, fmt.Errorf("node depth exceeds %d", maxITreeDepth)
	}
	if i < 0 || i >= len(nodes) {
		return nil, fmt.Errorf("node index %d out of range", i)
	}
	n := nodes[i]
	node := &iNode{feature: n.Feature, split: n.Split, size: n.Size}
	if (n.Left < 0) != (n.Right < 0) {
		return nil, fmt.Errorf("node %d has exactly one child", i)
	}
	if n.Left >= 0 {
		if n.Feature < 0 || n.Feature >= flowbench.NumFeatures {
			return nil, fmt.Errorf("node %d splits on feature %d", i, n.Feature)
		}
		var err error
		if node.left, err = buildFromFlat(nodes, n.Left, depth+1); err != nil {
			return nil, err
		}
		if node.right, err = buildFromFlat(nodes, n.Right, depth+1); err != nil {
			return nil, err
		}
	}
	return node, nil
}

// Score returns anomaly scores in (0,1); higher means more anomalous
// (shorter average isolation path).
func (f *IsolationForest) Score(jobs []flowbench.Job) []float64 {
	x := f.std.Matrix(jobs)
	c := avgPathLength(f.subsample)
	out := make([]float64, len(jobs))
	for i := range out {
		var sum float64
		for _, tr := range f.trees {
			sum += f.pathLength(tr, x.Row(i), 0)
		}
		mean := sum / float64(len(f.trees))
		out[i] = math.Pow(2, -mean/c)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
