package baselines

import (
	"math"

	"repro/internal/flowbench"
	"repro/internal/tensor"
)

// IsolationForest is the unsupervised anomaly detector of Liu et al. (2008),
// the "IF" row of Table IV: an ensemble of random isolation trees whose
// average path length scores how easily a point is isolated.
type IsolationForest struct {
	std       *Standardizer
	trees     []*iNode
	subsample int
}

// iNode is one node of an isolation tree.
type iNode struct {
	feature     int
	split       float32
	left, right *iNode
	size        int // leaf size for path-length correction
}

// IForestConfig controls forest construction.
type IForestConfig struct {
	Trees     int
	Subsample int
	Seed      uint64
}

// DefaultIForestConfig matches the standard 100-tree, 256-sample setting.
func DefaultIForestConfig() IForestConfig { return IForestConfig{Trees: 100, Subsample: 256, Seed: 3} }

// FitIsolationForest builds the forest on (unlabeled) training jobs.
func FitIsolationForest(train []flowbench.Job, cfg IForestConfig) *IsolationForest {
	f := &IsolationForest{std: FitStandardizer(train), subsample: cfg.Subsample}
	rng := tensor.NewRNG(cfg.Seed)
	x := f.std.Matrix(train)
	maxDepth := int(math.Ceil(math.Log2(float64(max(2, cfg.Subsample)))))
	for t := 0; t < cfg.Trees; t++ {
		idx := make([]int, min(cfg.Subsample, x.Rows))
		for i := range idx {
			idx[i] = rng.Intn(x.Rows)
		}
		f.trees = append(f.trees, buildITree(x, idx, 0, maxDepth, rng))
	}
	return f
}

func buildITree(x *tensor.Matrix, idx []int, depth, maxDepth int, rng *tensor.RNG) *iNode {
	if len(idx) <= 1 || depth >= maxDepth {
		return &iNode{size: len(idx)}
	}
	feat := rng.Intn(x.Cols)
	lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
	for _, i := range idx {
		v := x.At(i, feat)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		return &iNode{size: len(idx)}
	}
	split := lo + rng.Float32()*(hi-lo)
	var left, right []int
	for _, i := range idx {
		if x.At(i, feat) < split {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &iNode{
		feature: feat,
		split:   split,
		left:    buildITree(x, left, depth+1, maxDepth, rng),
		right:   buildITree(x, right, depth+1, maxDepth, rng),
		size:    len(idx),
	}
}

// avgPathLength is c(n), the expected path length of an unsuccessful BST
// search, used to normalize isolation depths.
func avgPathLength(n int) float64 {
	if n <= 1 {
		return 0
	}
	h := math.Log(float64(n-1)) + 0.5772156649
	return 2*h - 2*float64(n-1)/float64(n)
}

func (f *IsolationForest) pathLength(node *iNode, row []float32, depth float64) float64 {
	if node.left == nil {
		return depth + avgPathLength(node.size)
	}
	if row[node.feature] < node.split {
		return f.pathLength(node.left, row, depth+1)
	}
	return f.pathLength(node.right, row, depth+1)
}

// Score returns anomaly scores in (0,1); higher means more anomalous
// (shorter average isolation path).
func (f *IsolationForest) Score(jobs []flowbench.Job) []float64 {
	x := f.std.Matrix(jobs)
	c := avgPathLength(f.subsample)
	out := make([]float64, len(jobs))
	for i := range out {
		var sum float64
		for _, tr := range f.trees {
			sum += f.pathLength(tr, x.Row(i), 0)
		}
		mean := sum / float64(len(f.trees))
		out[i] = math.Pow(2, -mean/c)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
