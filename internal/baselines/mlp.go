package baselines

import (
	"repro/internal/flowbench"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// MLP is the supervised multi-layer-perceptron baseline of Figure 4: two
// hidden ReLU layers over standardized job features with a softmax output.
type MLP struct {
	std *Standardizer
	net *nn.Sequential
}

// MLPConfig controls MLP training.
type MLPConfig struct {
	Hidden int
	Epochs int
	LR     float64
	Batch  int
	Seed   uint64
}

// DefaultMLPConfig is the baseline recipe.
func DefaultMLPConfig() MLPConfig {
	return MLPConfig{Hidden: 32, Epochs: 20, LR: 1e-3, Batch: 32, Seed: 1}
}

// TrainMLP fits an MLP on labeled jobs.
func TrainMLP(train []flowbench.Job, cfg MLPConfig) *MLP {
	rng := tensor.NewRNG(cfg.Seed)
	m := &MLP{
		std: FitStandardizer(train),
		net: nn.NewSequential(
			nn.NewLinear("mlp.l1", flowbench.NumFeatures, cfg.Hidden, rng),
			nn.NewReLU(),
			nn.NewLinear("mlp.l2", cfg.Hidden, cfg.Hidden, rng),
			nn.NewReLU(),
			nn.NewLinear("mlp.out", cfg.Hidden, 2, rng),
		),
	}
	x := m.std.Matrix(train)
	y := Labels(train)
	opt := nn.NewAdamW(cfg.LR, 1e-4)
	ce := nn.NewSoftmaxCrossEntropy()
	order := rng.Perm(len(train))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(order)
		for lo := 0; lo < len(order); lo += cfg.Batch {
			hi := lo + cfg.Batch
			if hi > len(order) {
				hi = len(order)
			}
			xb := tensor.New(hi-lo, flowbench.NumFeatures)
			yb := make([]int, hi-lo)
			for k, idx := range order[lo:hi] {
				copy(xb.Row(k), x.Row(idx))
				yb[k] = y[idx]
			}
			logits := m.net.Forward(xb, true)
			_, grad := ce.Loss(logits, yb)
			m.net.Backward(grad)
			opt.Step(m.net.Params())
		}
	}
	return m
}

// Predict classifies jobs, returning 0/1 labels.
func (m *MLP) Predict(jobs []flowbench.Job) []int {
	x := m.std.Matrix(jobs)
	logits := m.net.Forward(x, false)
	out := make([]int, len(jobs))
	for i := range out {
		out[i] = tensor.ArgMax(logits.Row(i))
	}
	return out
}

// Evaluate scores the MLP on jobs.
func (m *MLP) Evaluate(jobs []flowbench.Job) metrics.Confusion {
	return metrics.NewConfusion(Labels(jobs), m.Predict(jobs))
}
