package baselines

import (
	"fmt"
	"math"

	"repro/internal/flowbench"
	"repro/internal/tensor"
)

// PCADetector is the principal-component anomaly detector of Shyu et al.
// (2003), the "PCA" row of Table IV: points are scored by their
// reconstruction error from the top-k principal components of the training
// distribution.
type PCADetector struct {
	std        *Standardizer
	components *tensor.Matrix // [k, d] row-wise principal directions
}

// FitPCA fits a detector keeping k components (k clamped to the feature
// count). Eigenvectors are extracted by power iteration with deflation on
// the d×d covariance — d is 9 here, so this is exact enough at tolerance.
func FitPCA(train []flowbench.Job, k int, seed uint64) *PCADetector {
	d := flowbench.NumFeatures
	if k > d {
		k = d
	}
	if k < 1 {
		k = 1
	}
	p := &PCADetector{std: FitStandardizer(train)}
	x := p.std.Matrix(train)
	// Covariance (features are already centered by the standardizer).
	cov := tensor.TMatMul(nil, x, x)
	tensor.Scale(cov, cov, 1/float32(max(1, x.Rows)))

	rng := tensor.NewRNG(seed)
	p.components = tensor.New(k, d)
	work := cov.Clone()
	for c := 0; c < k; c++ {
		v := powerIteration(work, rng)
		copy(p.components.Row(c), v)
		// Deflate: work -= λ v vᵀ.
		lambda := rayleigh(work, v)
		for i := 0; i < d; i++ {
			row := work.Row(i)
			for j := 0; j < d; j++ {
				row[j] -= float32(lambda) * v[i] * v[j]
			}
		}
	}
	return p
}

func powerIteration(m *tensor.Matrix, rng *tensor.RNG) []float32 {
	d := m.Rows
	v := make([]float32, d)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	normalize(v)
	tmp := make([]float32, d)
	for iter := 0; iter < 200; iter++ {
		for i := 0; i < d; i++ {
			var s float32
			row := m.Row(i)
			for j, vj := range v {
				s += row[j] * vj
			}
			tmp[i] = s
		}
		copy(v, tmp)
		normalize(v)
	}
	return v
}

func normalize(v []float32) {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	n := float32(math.Sqrt(s))
	if n == 0 {
		v[0] = 1
		return
	}
	for i := range v {
		v[i] /= n
	}
}

func rayleigh(m *tensor.Matrix, v []float32) float64 {
	d := m.Rows
	var num float64
	for i := 0; i < d; i++ {
		var s float64
		row := m.Row(i)
		for j, vj := range v {
			s += float64(row[j]) * float64(vj)
		}
		num += float64(v[i]) * s
	}
	return num
}

// ScoreOne scores a single job without heap allocation — the cascade gate's
// stage-1 hot path. It computes the same projection/reconstruction error as
// Score on a one-job slice, up to float32 summation order.
//
//repro:hotpath
func (p *PCADetector) ScoreOne(j flowbench.Job) float64 {
	z := p.std.Transform(j)
	var recon [flowbench.NumFeatures]float32
	for c := 0; c < p.components.Rows; c++ {
		row := p.components.Row(c)
		var dot float32
		for i, v := range z {
			dot += v * row[i]
		}
		for i, v := range row {
			recon[i] += dot * v
		}
	}
	var e float64
	for i, v := range z {
		d := float64(v - recon[i])
		e += d * d
	}
	return e
}

// PCAParams is the serializable form of a fitted PCADetector — what the
// cascade section of detector artifacts persists.
type PCAParams struct {
	Std        Standardizer `json:"std"`
	Components [][]float32  `json:"components"`
}

// Params exports the fitted detector for serialization.
func (p *PCADetector) Params() PCAParams {
	out := PCAParams{Std: *p.std}
	out.Components = make([][]float32, p.components.Rows)
	for r := range out.Components {
		row := make([]float32, p.components.Cols)
		copy(row, p.components.Row(r))
		out.Components[r] = row
	}
	return out
}

// PCAFromParams reconstructs a detector from serialized parameters,
// validating shape and statistics (artifacts are untrusted input).
func PCAFromParams(p PCAParams) (*PCADetector, error) {
	if len(p.Components) == 0 || len(p.Components) > flowbench.NumFeatures {
		return nil, fmt.Errorf("baselines: pca params have %d components, want 1..%d", len(p.Components), flowbench.NumFeatures)
	}
	m := tensor.New(len(p.Components), flowbench.NumFeatures)
	for r, row := range p.Components {
		if len(row) != flowbench.NumFeatures {
			return nil, fmt.Errorf("baselines: pca component %d has %d dims, want %d", r, len(row), flowbench.NumFeatures)
		}
		for _, v := range row {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return nil, fmt.Errorf("baselines: pca component %d has non-finite entry", r)
			}
		}
		copy(m.Row(r), row)
	}
	for i := range p.Std.Std {
		if !(p.Std.Std[i] > 0) || math.IsInf(p.Std.Std[i], 0) ||
			math.IsNaN(p.Std.Mean[i]) || math.IsInf(p.Std.Mean[i], 0) {
			return nil, fmt.Errorf("baselines: pca standardizer stats invalid at feature %d", i)
		}
	}
	std := p.Std
	return &PCADetector{std: &std, components: m}, nil
}

// Score returns per-job reconstruction errors from the retained components;
// higher means more anomalous.
func (p *PCADetector) Score(jobs []flowbench.Job) []float64 {
	x := p.std.Matrix(jobs)
	// proj = x·Cᵀ ; recon = proj·C ; err = ‖x-recon‖².
	proj := tensor.MatMulT(nil, x, p.components)
	recon := tensor.MatMul(nil, proj, p.components)
	out := make([]float64, len(jobs))
	for i := range out {
		xr, rr := x.Row(i), recon.Row(i)
		var e float64
		for j := range xr {
			d := float64(xr[j] - rr[j])
			e += d * d
		}
		out[i] = e
	}
	return out
}
