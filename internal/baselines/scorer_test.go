package baselines

import (
	"testing"

	"repro/internal/flowbench"
)

func TestFitScorerNames(t *testing.T) {
	ds := flowbench.Generate(flowbench.Sales, 11)
	for _, name := range []string{"pca", "iforest"} {
		sc, err := FitScorer(name, ds.Train, 11)
		if err != nil {
			t.Fatalf("FitScorer(%q): %v", name, err)
		}
		if sc.Name() != name {
			t.Errorf("Name() = %q, want %q", sc.Name(), name)
		}
		scores := sc.Score(ds.Test[:50])
		if len(scores) != 50 {
			t.Fatalf("%s: got %d scores, want 50", name, len(scores))
		}
	}
	if _, err := FitScorer("nope", ds.Train, 1); err == nil {
		t.Fatal("FitScorer(nope): expected error")
	}
}

func TestCalibrateThreshold(t *testing.T) {
	scores := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cut := CalibrateThreshold(scores, 0.3)
	preds := Threshold(scores, cut)
	pos := 0
	for _, p := range preds {
		pos += p
	}
	if pos != 3 {
		t.Errorf("rate 0.3 over 10 scores: %d positives, want 3", pos)
	}
	// Rate 0 flags nothing, rate 1 flags all but possibly ties at min.
	if cut := CalibrateThreshold(scores, 0); Threshold(scores, cut)[9] != 0 {
		t.Error("rate 0 should flag nothing")
	}
	if cut := CalibrateThreshold(scores, 1); Threshold(scores, cut)[1] != 1 {
		t.Error("rate 1 should flag nearly everything")
	}
	if CalibrateThreshold(nil, 0.5) != 0 {
		t.Error("empty scores should calibrate to 0")
	}
}

func TestAnomalyRateMatchesLabels(t *testing.T) {
	ds := flowbench.Generate(flowbench.Sales, 11)
	rate := AnomalyRate(ds.Train)
	if rate <= 0 || rate >= 1 {
		t.Fatalf("train anomaly rate %v out of (0,1)", rate)
	}
	n := 0
	for _, l := range Labels(ds.Train) {
		n += l
	}
	if want := float64(n) / float64(len(ds.Train)); rate != want {
		t.Errorf("AnomalyRate = %v, want %v", rate, want)
	}
}
