package baselines

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/flowbench"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// MLPAE is the MLP autoencoder of Sakurada & Yairi (2014), the "MLPAE" row
// of Table IV: jobs are scored by feature reconstruction error through a
// bottleneck.
type MLPAE struct {
	std *Standardizer
	net *nn.Sequential
}

// AEConfig controls autoencoder training.
type AEConfig struct {
	Bottleneck int
	Epochs     int
	LR         float64
	Batch      int
	Seed       uint64
}

// DefaultAEConfig is the unsupervised baseline recipe.
func DefaultAEConfig() AEConfig {
	return AEConfig{Bottleneck: 4, Epochs: 30, LR: 1e-3, Batch: 32, Seed: 4}
}

// FitMLPAE trains the autoencoder to reconstruct (unlabeled) training jobs.
func FitMLPAE(train []flowbench.Job, cfg AEConfig) *MLPAE {
	rng := tensor.NewRNG(cfg.Seed)
	d := flowbench.NumFeatures
	m := &MLPAE{
		std: FitStandardizer(train),
		net: nn.NewSequential(
			nn.NewLinear("mlpae.enc", d, cfg.Bottleneck, rng),
			nn.NewTanh(),
			nn.NewLinear("mlpae.dec", cfg.Bottleneck, d, rng),
		),
	}
	x := m.std.Matrix(train)
	opt := nn.NewAdamW(cfg.LR, 0)
	order := rng.Perm(x.Rows)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(order)
		for lo := 0; lo < len(order); lo += cfg.Batch {
			hi := lo + cfg.Batch
			if hi > len(order) {
				hi = len(order)
			}
			xb := tensor.New(hi-lo, d)
			for k, idx := range order[lo:hi] {
				copy(xb.Row(k), x.Row(idx))
			}
			recon := m.net.Forward(xb, true)
			_, grad := nn.MSE(recon, xb)
			m.net.Backward(grad)
			opt.Step(m.net.Params())
		}
	}
	return m
}

// Score returns per-job reconstruction errors; higher means more anomalous.
func (m *MLPAE) Score(jobs []flowbench.Job) []float64 {
	x := m.std.Matrix(jobs)
	recon := m.net.Forward(x, false)
	return rowSquaredErrors(x, recon)
}

// GCNAE is the graph autoencoder of Kipf & Welling (2016) adapted for
// attribute reconstruction, the "GCNAE" row of Table IV: a GCN encoder over
// each trace graph with a linear decoder back to node features.
type GCNAE struct {
	std  *Standardizer
	enc1 *gcnLayer
	act  *nn.ReLU
	enc2 *gcnLayer
	dec  *nn.Linear
}

// FitGCNAE trains the graph autoencoder on the training jobs' trace graphs.
func FitGCNAE(dag *flowbench.DAG, train []flowbench.Job, cfg AEConfig) *GCNAE {
	rng := tensor.NewRNG(cfg.Seed)
	d := flowbench.NumFeatures
	g := &GCNAE{
		std:  FitStandardizer(train),
		enc1: newGCNLayer("gcnae.enc1", d, 16, rng),
		act:  nn.NewReLU(),
		enc2: newGCNLayer("gcnae.enc2", 16, cfg.Bottleneck, rng),
		dec:  nn.NewLinear("gcnae.dec", cfg.Bottleneck, d, rng),
	}
	graphs := BuildTraceGraphs(dag, train)
	opt := nn.NewAdamW(cfg.LR, 0)
	params := g.params()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, tg := range graphs {
			x := g.std.Matrix(tg.Jobs)
			recon := g.forward(tg.Adj, x, true)
			_, grad := nn.MSE(recon, x)
			g.backward(grad)
			opt.Step(params)
		}
	}
	return g
}

func (g *GCNAE) params() []*nn.Param {
	var out []*nn.Param
	out = append(out, g.enc1.params()...)
	out = append(out, g.enc2.params()...)
	out = append(out, g.dec.Params()...)
	return out
}

func (g *GCNAE) forward(adj, x *tensor.Matrix, train bool) *tensor.Matrix {
	h := g.enc1.forward(adj, x, train)
	h = g.act.Forward(h, train)
	h = g.enc2.forward(adj, h, train)
	return g.dec.Forward(h, train)
}

func (g *GCNAE) backward(grad *tensor.Matrix) {
	d := g.dec.Backward(grad)
	d = g.enc2.backward(d)
	d = g.act.Backward(d)
	g.enc1.backward(d)
}

// Score returns per-job reconstruction errors over trace graphs, aligned
// with the input order.
func (g *GCNAE) Score(dag *flowbench.DAG, jobs []flowbench.Job) []float64 {
	graphs := BuildTraceGraphs(dag, jobs)
	scores := make(map[[2]int]float64, len(jobs))
	for _, tg := range graphs {
		x := g.std.Matrix(tg.Jobs)
		recon := g.forward(tg.Adj, x, false)
		errs := rowSquaredErrors(x, recon)
		for i, j := range tg.Jobs {
			scores[[2]int{j.TraceID, j.NodeIndex}] = errs[i]
		}
	}
	out := make([]float64, len(jobs))
	for i, j := range jobs {
		out[i] = scores[[2]int{j.TraceID, j.NodeIndex}]
	}
	return out
}

// ErrOOM is returned when a detector's memory requirement exceeds its
// configured limit — reproducing Table IV's AnomalyDAE OOM entry.
var ErrOOM = errors.New("baselines: estimated memory exceeds limit")

// AnomalyDAE is the dual autoencoder of Fan et al. (2020): a structure
// autoencoder that reconstructs the full n×n adjacency from node embeddings
// (A ≈ σ(ZZᵀ)) plus an attribute autoencoder. The structure reconstruction
// is what makes it memory-hungry — on the full 1000 Genome job graph
// (≈48k nodes) the n×n matrix alone is ≈9 GB, which is why the paper
// reports OOM on an A100-40GB. FitAnomalyDAE estimates that requirement up
// front and returns ErrOOM when it exceeds memLimitBytes.
type AnomalyDAE struct {
	std  *Standardizer
	enc  *gcnLayer
	act  *nn.ReLU
	attr *nn.Linear // attribute decoder from embeddings

	embedDim int
}

// AnomalyDAEMemoryEstimate returns the bytes needed for the structure
// decoder's dense n×n reconstruction (forward + gradient, float32).
func AnomalyDAEMemoryEstimate(nodes int) uint64 {
	return 2 * 4 * uint64(nodes) * uint64(nodes)
}

// FitAnomalyDAE trains the dual autoencoder over the union graph of all
// training traces, or fails with ErrOOM when the structure reconstruction
// would exceed memLimitBytes.
func FitAnomalyDAE(dag *flowbench.DAG, train []flowbench.Job, cfg AEConfig, memLimitBytes uint64) (*AnomalyDAE, error) {
	n := len(train)
	if need := AnomalyDAEMemoryEstimate(n); need > memLimitBytes {
		return nil, fmt.Errorf("anomalydae on %d nodes needs %d bytes (limit %d): %w", n, need, memLimitBytes, ErrOOM)
	}
	rng := tensor.NewRNG(cfg.Seed)
	d := flowbench.NumFeatures
	a := &AnomalyDAE{
		std:      FitStandardizer(train),
		enc:      newGCNLayer("adae.enc", d, 8, rng),
		act:      nn.NewReLU(),
		attr:     nn.NewLinear("adae.attr", 8, d, rng),
		embedDim: 8,
	}
	graphs := BuildTraceGraphs(dag, train)
	opt := nn.NewAdamW(cfg.LR, 0)
	params := append(a.enc.params(), a.attr.Params()...)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, tg := range graphs {
			x := a.std.Matrix(tg.Jobs)
			z := a.act.Forward(a.enc.forward(tg.Adj, x, true), true)
			// Structure loss: ‖σ(ZZᵀ) - Â‖²; attribute loss: ‖dec(Z) - X‖².
			zzT := tensor.MatMulT(nil, z, z)
			sigmoidInPlace(zzT)
			_, gradS := nn.MSE(zzT, tg.Adj)
			// d/dZ of σ(ZZᵀ): chain through sigmoid then both Z factors.
			for i := range gradS.Data {
				s := zzT.Data[i]
				gradS.Data[i] *= s * (1 - s)
			}
			dz := tensor.MatMul(nil, gradS, z)
			dzT := tensor.TMatMul(nil, gradS, z)
			tensor.AddScaled(dz, dzT, 1)

			xr := a.attr.Forward(z, true)
			_, gradA := nn.MSE(xr, x)
			dzAttr := a.attr.Backward(gradA)
			tensor.AddScaled(dz, dzAttr, 1)

			dh := a.act.Backward(dz)
			a.enc.backward(dh)
			opt.Step(params)
		}
	}
	return a, nil
}

// Score returns combined structure+attribute reconstruction errors.
func (a *AnomalyDAE) Score(dag *flowbench.DAG, jobs []flowbench.Job) []float64 {
	graphs := BuildTraceGraphs(dag, jobs)
	scores := make(map[[2]int]float64, len(jobs))
	for _, tg := range graphs {
		x := a.std.Matrix(tg.Jobs)
		z := a.act.Forward(a.enc.forward(tg.Adj, x, false), false)
		zzT := tensor.MatMulT(nil, z, z)
		sigmoidInPlace(zzT)
		xr := a.attr.Forward(z, false)
		attrErr := rowSquaredErrors(x, xr)
		for i, j := range tg.Jobs {
			var structErr float64
			ar, zr := tg.Adj.Row(i), zzT.Row(i)
			for k := range ar {
				d := float64(zr[k] - ar[k])
				structErr += d * d
			}
			scores[[2]int{j.TraceID, j.NodeIndex}] = attrErr[i] + structErr/float64(len(ar))
		}
	}
	out := make([]float64, len(jobs))
	for i, j := range jobs {
		out[i] = scores[[2]int{j.TraceID, j.NodeIndex}]
	}
	return out
}

func sigmoidInPlace(m *tensor.Matrix) {
	for i, v := range m.Data {
		m.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}

func rowSquaredErrors(x, recon *tensor.Matrix) []float64 {
	out := make([]float64, x.Rows)
	for i := range out {
		xr, rr := x.Row(i), recon.Row(i)
		var e float64
		for j := range xr {
			d := float64(xr[j] - rr[j])
			e += d * d
		}
		out[i] = e
	}
	return out
}
