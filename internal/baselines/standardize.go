// Package baselines implements the classical comparators the paper evaluates
// against:
//
//   - supervised: an MLP and a graph neural network (GCN) over the workflow
//     DAG, following Jin et al. (the paper's reference [30]) — the "MLP" and
//     "GNN" bars of Figure 4;
//   - unsupervised: Isolation Forest, PCA reconstruction, MLP autoencoder,
//     GCN autoencoder, and AnomalyDAE — the Table IV rows, including
//     AnomalyDAE's out-of-memory failure, which is reproduced faithfully by
//     a memory guard on its n×n structure reconstruction.
package baselines

import (
	"math"

	"repro/internal/flowbench"
	"repro/internal/tensor"
)

// Standardizer transforms raw job features into z-scored log-space values.
// Workflow features are heavy-tailed (lognormal durations, byte counts), so
// features are log1p-transformed before centering — the preprocessing used
// by the Flow-Bench reference pipelines.
type Standardizer struct {
	Mean [flowbench.NumFeatures]float64
	Std  [flowbench.NumFeatures]float64
}

// FitStandardizer estimates per-feature statistics from jobs.
func FitStandardizer(jobs []flowbench.Job) *Standardizer {
	s := &Standardizer{}
	if len(jobs) == 0 {
		for i := range s.Std {
			s.Std[i] = 1
		}
		return s
	}
	n := float64(len(jobs))
	for _, j := range jobs {
		for i, v := range j.Features {
			s.Mean[i] += math.Log1p(v)
		}
	}
	for i := range s.Mean {
		s.Mean[i] /= n
	}
	for _, j := range jobs {
		for i, v := range j.Features {
			d := math.Log1p(v) - s.Mean[i]
			s.Std[i] += d * d
		}
	}
	for i := range s.Std {
		s.Std[i] = math.Sqrt(s.Std[i] / n)
		if s.Std[i] < 1e-9 {
			s.Std[i] = 1
		}
	}
	return s
}

// Transform returns the standardized feature vector of one job.
func (s *Standardizer) Transform(j flowbench.Job) [flowbench.NumFeatures]float32 {
	var out [flowbench.NumFeatures]float32
	for i, v := range j.Features {
		out[i] = float32((math.Log1p(v) - s.Mean[i]) / s.Std[i])
	}
	return out
}

// Matrix stacks the standardized features of jobs into an n×NumFeatures
// matrix.
func (s *Standardizer) Matrix(jobs []flowbench.Job) *tensor.Matrix {
	m := tensor.New(len(jobs), flowbench.NumFeatures)
	for r, j := range jobs {
		f := s.Transform(j)
		copy(m.Row(r), f[:])
	}
	return m
}

// Labels extracts the 0/1 labels of jobs.
func Labels(jobs []flowbench.Job) []int {
	out := make([]int, len(jobs))
	for i, j := range jobs {
		out[i] = j.Label
	}
	return out
}
