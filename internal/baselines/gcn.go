package baselines

import (
	"math"

	"repro/internal/flowbench"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// gcnLayer is one graph-convolution layer H' = Â·H·W + b with symmetric
// normalization Â = D^{-1/2}(A+I)D^{-1/2}. The adjacency is supplied per
// forward call (graphs differ per trace).
type gcnLayer struct {
	lin *nn.Linear

	adj *tensor.Matrix // cached Â for backward
}

func newGCNLayer(name string, in, out int, rng *tensor.RNG) *gcnLayer {
	return &gcnLayer{lin: nn.NewLinear(name, in, out, rng)}
}

// forward computes Â·(H·W + b); adj must be the normalized adjacency.
func (g *gcnLayer) forward(adj, h *tensor.Matrix, train bool) *tensor.Matrix {
	g.adj = adj
	hw := g.lin.Forward(h, train)
	// Â has one nonzero per neighbor per row — the sparse-rows kernel skips
	// the (majority) zero entries the dense branch-free MatMul would stream.
	return tensor.MatMulOneHotRows(nil, adj, hw)
}

// backward: dHW = Âᵀ·dout = Â·dout (symmetric), then through the linear.
func (g *gcnLayer) backward(dout *tensor.Matrix) *tensor.Matrix {
	dhw := tensor.MatMulOneHotRows(nil, g.adj, dout)
	g.adj = nil
	return g.lin.Backward(dhw)
}

func (g *gcnLayer) params() []*nn.Param { return g.lin.Params() }

// NormalizedAdjacency builds Â = D^{-1/2}(A+I)D^{-1/2} over the undirected
// version of the edges among n nodes. Edges reference local indices.
func NormalizedAdjacency(n int, edges [][2]int) *tensor.Matrix {
	a := tensor.New(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	for _, e := range edges {
		a.Set(e[0], e[1], 1)
		a.Set(e[1], e[0], 1)
	}
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		var d float64
		for _, v := range a.Row(i) {
			d += float64(v)
		}
		deg[i] = 1 / math.Sqrt(d)
	}
	for i := 0; i < n; i++ {
		row := a.Row(i)
		for j := range row {
			row[j] = float32(float64(row[j]) * deg[i] * deg[j])
		}
	}
	return a
}

// TraceGraph is one workflow execution as a graph: node features, labels,
// and the induced normalized adjacency over the jobs present.
type TraceGraph struct {
	Jobs []flowbench.Job
	Adj  *tensor.Matrix
}

// BuildTraceGraphs groups jobs by trace and builds induced subgraphs of the
// workflow DAG over the jobs present in each trace (splits are job-level, so
// a split may hold only part of a trace).
func BuildTraceGraphs(dag *flowbench.DAG, jobs []flowbench.Job) []TraceGraph {
	byTrace := flowbench.TraceJobs(jobs)
	// Deterministic order over trace ids.
	ids := make([]int, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0 && ids[k] < ids[k-1]; k-- {
			ids[k], ids[k-1] = ids[k-1], ids[k]
		}
	}
	var out []TraceGraph
	for _, id := range ids {
		trace := byTrace[id]
		local := make(map[int]int, len(trace))
		for i, j := range trace {
			local[j.NodeIndex] = i
		}
		var edges [][2]int
		for _, e := range dag.Edges {
			u, okU := local[e[0]]
			v, okV := local[e[1]]
			if okU && okV {
				edges = append(edges, [2]int{u, v})
			}
		}
		out = append(out, TraceGraph{Jobs: trace, Adj: NormalizedAdjacency(len(trace), edges)})
	}
	return out
}

// GCN is the supervised graph-neural-network baseline of Figure 4 (following
// the paper's reference [30]): two graph-convolution layers over trace
// graphs with a per-node classification head.
type GCN struct {
	std    *Standardizer
	l1, l2 *gcnLayer
	act    *nn.ReLU
	head   *nn.Linear
}

// GCNConfig controls GCN training.
type GCNConfig struct {
	Hidden int
	Epochs int
	LR     float64
	Seed   uint64
}

// DefaultGCNConfig is the baseline recipe.
func DefaultGCNConfig() GCNConfig { return GCNConfig{Hidden: 16, Epochs: 30, LR: 5e-3, Seed: 2} }

// TrainGCN fits the GCN on the trace graphs of the training jobs.
func TrainGCN(dag *flowbench.DAG, train []flowbench.Job, cfg GCNConfig) *GCN {
	rng := tensor.NewRNG(cfg.Seed)
	g := &GCN{
		std:  FitStandardizer(train),
		l1:   newGCNLayer("gcn.l1", flowbench.NumFeatures, cfg.Hidden, rng),
		l2:   newGCNLayer("gcn.l2", cfg.Hidden, cfg.Hidden, rng),
		act:  nn.NewReLU(),
		head: nn.NewLinear("gcn.head", cfg.Hidden, 2, rng),
	}
	graphs := BuildTraceGraphs(dag, train)
	opt := nn.NewAdamW(cfg.LR, 1e-4)
	ce := nn.NewSoftmaxCrossEntropy()
	params := g.params()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, tg := range graphs {
			logits := g.forward(tg, true)
			_, grad := ce.Loss(logits, Labels(tg.Jobs))
			g.backward(tg, grad)
			opt.Step(params)
		}
	}
	return g
}

func (g *GCN) params() []*nn.Param {
	var out []*nn.Param
	out = append(out, g.l1.params()...)
	out = append(out, g.l2.params()...)
	out = append(out, g.head.Params()...)
	return out
}

func (g *GCN) forward(tg TraceGraph, train bool) *tensor.Matrix {
	h := g.std.Matrix(tg.Jobs)
	h = g.l1.forward(tg.Adj, h, train)
	h = g.act.Forward(h, train)
	h = g.l2.forward(tg.Adj, h, train)
	return g.head.Forward(h, train)
}

func (g *GCN) backward(tg TraceGraph, grad *tensor.Matrix) {
	d := g.head.Backward(grad)
	d = g.l2.backward(d)
	d = g.act.Backward(d)
	g.l1.backward(d)
}

// Predict classifies all jobs grouped into trace graphs, returning labels
// aligned with the input order.
func (g *GCN) Predict(dag *flowbench.DAG, jobs []flowbench.Job) []int {
	graphs := BuildTraceGraphs(dag, jobs)
	pred := make(map[[2]int]int, len(jobs)) // (trace, node) → label
	for _, tg := range graphs {
		logits := g.forward(tg, false)
		for i, j := range tg.Jobs {
			pred[[2]int{j.TraceID, j.NodeIndex}] = tensor.ArgMax(logits.Row(i))
		}
	}
	out := make([]int, len(jobs))
	for i, j := range jobs {
		out[i] = pred[[2]int{j.TraceID, j.NodeIndex}]
	}
	return out
}

// Evaluate scores the GCN on jobs.
func (g *GCN) Evaluate(dag *flowbench.DAG, jobs []flowbench.Job) metrics.Confusion {
	return metrics.NewConfusion(Labels(jobs), g.Predict(dag, jobs))
}
