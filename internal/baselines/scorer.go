package baselines

import (
	"fmt"
	"sort"

	"repro/internal/flowbench"
)

// JobScorer is the interface the scenario load lab drives the seed baselines
// through: a fitted detector that scores jobs with higher = more anomalous.
// PCA and the isolation forest satisfy the Score half natively; Named wraps
// them with the identifier used in report rows.
type JobScorer interface {
	Name() string
	Score(jobs []flowbench.Job) []float64
}

type namedScorer struct {
	name  string
	score func([]flowbench.Job) []float64
}

func (n namedScorer) Name() string                         { return n.name }
func (n namedScorer) Score(jobs []flowbench.Job) []float64 { return n.score(jobs) }

// Named wraps any Score function as a JobScorer.
func Named(name string, score func([]flowbench.Job) []float64) JobScorer {
	return namedScorer{name: name, score: score}
}

// FitScorer fits the named seed baseline on train. Supported names: "pca",
// "iforest", "mlpae" (the Table IV MLP autoencoder). These are the cheap
// unsupervised comparison detectors the load lab reports next to the
// transformer; pca and iforest double as the first stage of the two-stage
// cascade (internal/cascade).
func FitScorer(name string, train []flowbench.Job, seed uint64) (JobScorer, error) {
	switch name {
	case "pca":
		p := FitPCA(train, 4, seed)
		return Named("pca", p.Score), nil
	case "iforest":
		cfg := DefaultIForestConfig()
		cfg.Seed = seed
		f := FitIsolationForest(train, cfg)
		return Named("iforest", f.Score), nil
	case "mlpae":
		cfg := DefaultAEConfig()
		cfg.Seed = seed
		m := FitMLPAE(train, cfg)
		return Named("mlpae", m.Score), nil
	}
	return nil, fmt.Errorf("baselines: unknown scorer %q (want pca, iforest, or mlpae)", name)
}

// CalibrateThreshold returns the score cutoff above which a sample is
// predicted anomalous, chosen so the predicted-positive rate on the
// calibration scores equals rate — the standard way to turn an unsupervised
// anomaly score into hard labels when the contamination level is known (here
// from the training split's ground truth).
func CalibrateThreshold(scores []float64, rate float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	s := make([]float64, len(scores))
	copy(s, scores)
	sort.Float64s(s)
	cut := int(float64(len(s)) * (1 - rate))
	if cut >= len(s) {
		return s[len(s)-1] + 1 // rate 0: nothing reaches the cutoff
	}
	if cut < 0 {
		cut = 0
	}
	return s[cut]
}

// Threshold applies a calibrated cutoff, returning 0/1 predictions
// (score >= cutoff ⇒ anomalous).
func Threshold(scores []float64, cutoff float64) []int {
	out := make([]int, len(scores))
	for i, v := range scores {
		if v >= cutoff {
			out[i] = 1
		}
	}
	return out
}

// AnomalyRate is the labeled anomalous fraction of jobs — the contamination
// estimate CalibrateThreshold consumes.
func AnomalyRate(jobs []flowbench.Job) float64 {
	if len(jobs) == 0 {
		return 0
	}
	n := 0
	for _, j := range jobs {
		n += j.Label
	}
	return float64(n) / float64(len(jobs))
}
