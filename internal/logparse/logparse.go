// Package logparse converts between the three representations of a workflow
// job used in the paper's pipeline (Figure 2):
//
//	raw log line  →  tabular record  →  natural-language sentence
//
// Sentences follow the template `<FEAT_1> is <VAL_1> ... <FEAT_n> is
// <VAL_n>`, optionally suffixed with `, <LABEL>` for supervised fine-tuning
// data. Prefix sentences over the first k features implement the online
// detection setting of Figures 7 and 8.
package logparse

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/flowbench"
)

// Label words used in sentences and prompts.
const (
	LabelNormal   = "normal"
	LabelAbnormal = "abnormal"
)

// LabelWord returns the sentence label word for a 0/1 label.
func LabelWord(label int) string {
	if label == 1 {
		return LabelAbnormal
	}
	return LabelNormal
}

// FormatValue renders a feature value the way the paper's examples do
// (e.g. "6.0", "2090.0"). Byte counters are rendered without decimals.
func FormatValue(v float64) string {
	if v >= 1e6 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}

// Sentence renders the full feature sentence for a job (no label).
func Sentence(j flowbench.Job) string {
	return Prefix(j, flowbench.NumFeatures)
}

// SentenceWithLabel renders the Figure 2 training sentence
// `<features>, <LABEL>`.
func SentenceWithLabel(j flowbench.Job) string {
	return Sentence(j) + " , " + LabelWord(j.Label)
}

// Prefix renders the sentence over only the first k features in arrival
// order — the partial information available mid-execution for online
// detection. k is clamped to [0, NumFeatures].
func Prefix(j flowbench.Job, k int) string {
	if k < 0 {
		k = 0
	}
	if k > flowbench.NumFeatures {
		k = flowbench.NumFeatures
	}
	var sb strings.Builder
	for i := 0; i < k; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(flowbench.FeatureNames[i])
		sb.WriteString(" is ")
		sb.WriteString(FormatValue(j.Features[i]))
	}
	return sb.String()
}

// ParseSentence parses a feature sentence (the Sentence/Prefix format,
// `<FEAT_1> is <VAL_1> <FEAT_2> is <VAL_2> ...`) back into a Job carrying
// only the feature vector — the inverse of Sentence up to FormatValue's
// rendering precision. Metadata (workflow, trace identity, label) does not
// appear in sentences and stays zero. Features absent from the sentence (a
// Prefix over k < NumFeatures) are zero; unknown feature names or malformed
// triples are errors. The brownout tier uses this to score detect-endpoint
// traffic with the numeric seed baselines.
func ParseSentence(s string) (flowbench.Job, error) {
	var j flowbench.Job
	fields := strings.Fields(s)
	if len(fields)%3 != 0 {
		return j, fmt.Errorf("logparse: sentence is not `<feature> is <value>` triples: %q", s)
	}
	featIdx := make(map[string]int, flowbench.NumFeatures)
	for i, n := range flowbench.FeatureNames {
		featIdx[n] = i
	}
	for i := 0; i < len(fields); i += 3 {
		idx, ok := featIdx[fields[i]]
		if !ok {
			return j, fmt.Errorf("logparse: unknown feature %q", fields[i])
		}
		if fields[i+1] != "is" {
			return j, fmt.Errorf("logparse: expected %q after %q, got %q", "is", fields[i], fields[i+1])
		}
		v, err := strconv.ParseFloat(fields[i+2], 64)
		if err != nil {
			return j, fmt.Errorf("logparse: bad value for %s: %q", fields[i], fields[i+2])
		}
		j.Features[idx] = v
	}
	return j, nil
}

// sentenceFeatIdx maps feature names to their index, built once so the
// zero-allocation scanner can look names up without per-call map builds.
var sentenceFeatIdx = func() map[string]int {
	m := make(map[string]int, flowbench.NumFeatures)
	for i, n := range flowbench.FeatureNames {
		m[n] = i
	}
	return m
}()

// isSentenceSpace matches the whitespace Sentence/Prefix emit (and the
// strings.Fields superset ParseSentence accepts for ASCII input).
func isSentenceSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// ScanSentence is ParseSentence's zero-allocation twin: it parses a feature
// sentence into feats (resetting it first) and reports whether the sentence
// was well formed. The cascade's stage-1 scoring path calls this per log
// line, so it must not allocate; unparseable lines return false and are
// passed through to the transformer rather than gated.
//
//repro:hotpath
func ScanSentence(s string, feats *[flowbench.NumFeatures]float64) bool {
	for i := range feats {
		feats[i] = 0
	}
	idx := -1
	field := 0 // position within the current `<feature> is <value>` triple
	pos := 0
	for pos < len(s) {
		for pos < len(s) && isSentenceSpace(s[pos]) {
			pos++
		}
		if pos == len(s) {
			break
		}
		start := pos
		for pos < len(s) && !isSentenceSpace(s[pos]) {
			pos++
		}
		tok := s[start:pos]
		switch field {
		case 0:
			i, known := sentenceFeatIdx[tok]
			if !known {
				return false
			}
			idx = i
		case 1:
			if tok != "is" {
				return false
			}
		default:
			v, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return false
			}
			feats[idx] = v
		}
		field = (field + 1) % 3
	}
	return field == 0
}

// LogLine renders a job as a raw key=value log entry, the format produced by
// the workflow management system before parsing.
func LogLine(j flowbench.Job) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "wf=%s trace=%d node=%d task=%s", j.Workflow, j.TraceID, j.NodeIndex, j.TaskType)
	for i, name := range flowbench.FeatureNames {
		fmt.Fprintf(&sb, " %s=%s", name, FormatValue(j.Features[i]))
	}
	fmt.Fprintf(&sb, " label=%d anomaly=%s", j.Label, j.Anomaly)
	return sb.String()
}

// ParseLogLine parses a LogLine-formatted entry back into a Job. Unknown
// keys are ignored; missing features are zero.
func ParseLogLine(line string) (flowbench.Job, error) {
	var j flowbench.Job
	fields := strings.Fields(line)
	featIdx := make(map[string]int, flowbench.NumFeatures)
	for i, n := range flowbench.FeatureNames {
		featIdx[n] = i
	}
	anomalyByName := map[string]flowbench.AnomalyClass{}
	for _, a := range append([]flowbench.AnomalyClass{flowbench.None}, flowbench.AnomalyClasses...) {
		anomalyByName[a.String()] = a
	}
	for _, f := range fields {
		eq := strings.IndexByte(f, '=')
		if eq < 0 {
			return j, fmt.Errorf("logparse: malformed field %q", f)
		}
		key, val := f[:eq], f[eq+1:]
		switch key {
		case "wf":
			j.Workflow = flowbench.Workflow(val)
		case "trace":
			n, err := strconv.Atoi(val)
			if err != nil {
				return j, fmt.Errorf("logparse: bad trace %q", val)
			}
			j.TraceID = n
		case "node":
			n, err := strconv.Atoi(val)
			if err != nil {
				return j, fmt.Errorf("logparse: bad node %q", val)
			}
			j.NodeIndex = n
		case "task":
			j.TaskType = val
		case "label":
			n, err := strconv.Atoi(val)
			if err != nil || (n != 0 && n != 1) {
				return j, fmt.Errorf("logparse: bad label %q", val)
			}
			j.Label = n
		case "anomaly":
			a, ok := anomalyByName[val]
			if !ok {
				return j, fmt.Errorf("logparse: unknown anomaly %q", val)
			}
			j.Anomaly = a
		default:
			if idx, ok := featIdx[key]; ok {
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return j, fmt.Errorf("logparse: bad value for %s: %q", key, val)
				}
				j.Features[idx] = v
			}
		}
	}
	return j, nil
}

// CSVHeader returns the column header of the tabular representation.
func CSVHeader() string {
	cols := append([]string{"workflow", "trace", "node", "task"}, flowbench.FeatureNames...)
	cols = append(cols, "label", "anomaly")
	return strings.Join(cols, ",")
}

// CSVRow renders a job as one CSV row matching CSVHeader.
func CSVRow(j flowbench.Job) string {
	cols := []string{string(j.Workflow), strconv.Itoa(j.TraceID), strconv.Itoa(j.NodeIndex), j.TaskType}
	for _, v := range j.Features {
		cols = append(cols, FormatValue(v))
	}
	cols = append(cols, strconv.Itoa(j.Label), j.Anomaly.String())
	return strings.Join(cols, ",")
}

// ParseCSVRow parses one CSVRow-formatted line back into a Job.
func ParseCSVRow(line string) (flowbench.Job, error) {
	var j flowbench.Job
	cols := strings.Split(line, ",")
	want := 4 + flowbench.NumFeatures + 2
	if len(cols) != want {
		return j, fmt.Errorf("logparse: csv row has %d columns, want %d", len(cols), want)
	}
	j.Workflow = flowbench.Workflow(cols[0])
	trace, err := strconv.Atoi(cols[1])
	if err != nil {
		return j, fmt.Errorf("logparse: bad trace %q", cols[1])
	}
	j.TraceID = trace
	node, err := strconv.Atoi(cols[2])
	if err != nil {
		return j, fmt.Errorf("logparse: bad node %q", cols[2])
	}
	j.NodeIndex = node
	j.TaskType = cols[3]
	for i := 0; i < flowbench.NumFeatures; i++ {
		v, err := strconv.ParseFloat(cols[4+i], 64)
		if err != nil {
			return j, fmt.Errorf("logparse: bad %s value %q", flowbench.FeatureNames[i], cols[4+i])
		}
		j.Features[i] = v
	}
	label, err := strconv.Atoi(cols[4+flowbench.NumFeatures])
	if err != nil || (label != 0 && label != 1) {
		return j, fmt.Errorf("logparse: bad label %q", cols[4+flowbench.NumFeatures])
	}
	j.Label = label
	anomCol := cols[4+flowbench.NumFeatures+1]
	found := false
	for _, a := range append([]flowbench.AnomalyClass{flowbench.None}, flowbench.AnomalyClasses...) {
		if a.String() == anomCol {
			j.Anomaly = a
			found = true
			break
		}
	}
	if !found {
		return j, fmt.Errorf("logparse: unknown anomaly %q", anomCol)
	}
	return j, nil
}

// ReadCSV parses a CSVHeader+rows document (as written by cmd/flowgen) into
// jobs.
func ReadCSV(r io.Reader) ([]flowbench.Job, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var jobs []flowbench.Job
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if lineNo == 1 {
			if line != CSVHeader() {
				return nil, fmt.Errorf("logparse: unexpected csv header %q", line)
			}
			continue
		}
		if line == "" {
			continue
		}
		j, err := ParseCSVRow(line)
		if err != nil {
			return nil, fmt.Errorf("logparse: line %d: %w", lineNo, err)
		}
		jobs = append(jobs, j)
	}
	return jobs, scanner.Err()
}

// Corpus renders the labelled sentences of jobs (used to build tokenizer
// vocabularies and pre-training corpora). The output is sorted for
// determinism when jobs come from map iteration.
func Corpus(jobs []flowbench.Job) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = SentenceWithLabel(j)
	}
	sort.Strings(out)
	return out
}
