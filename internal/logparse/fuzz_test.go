package logparse

import (
	"strings"
	"testing"

	"repro/internal/flowbench"
)

// seedJob renders one synthetic job through render for use as a seed input.
func seedJob(render func(flowbench.Job) string) string {
	var j flowbench.Job
	j.Workflow = flowbench.Workflow("montage")
	j.TraceID = 7
	j.NodeIndex = 3
	j.TaskType = "mProject"
	for i := range j.Features {
		j.Features[i] = float64(i) * 1.5
	}
	j.Label = 1
	j.Anomaly = flowbench.AnomalyClasses[0]
	return render(j)
}

// FuzzParseSentence checks that the sentence grammar never panics and that
// anything it accepts renders back into a parseable sentence.
func FuzzParseSentence(f *testing.F) {
	f.Add(seedJob(Sentence))
	f.Add("cpu_usage is 0.5")
	f.Add("cpu_usage is NaN")
	f.Add("not a sentence")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		j, err := ParseSentence(s)
		if err != nil {
			return
		}
		if _, err := ParseSentence(Sentence(j)); err != nil {
			t.Fatalf("accepted sentence %q renders to unparseable %q: %v", s, Sentence(j), err)
		}
	})
}

// FuzzParseLogLine checks the key=value log grammar the same way.
func FuzzParseLogLine(f *testing.F) {
	f.Add(seedJob(LogLine))
	f.Add("wf=montage trace=1 node=0 task=x label=0 anomaly=none")
	f.Add("wf= trace=zz")
	f.Add("= = =")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		j, err := ParseLogLine(line)
		if err != nil {
			return
		}
		if _, err := ParseLogLine(LogLine(j)); err != nil {
			t.Fatalf("accepted line %q renders to unparseable %q: %v", line, LogLine(j), err)
		}
	})
}

// FuzzParseCSVRow checks the CSV grammar, including the full-document reader
// over a header plus the row.
func FuzzParseCSVRow(f *testing.F) {
	f.Add(seedJob(CSVRow))
	f.Add(strings.Repeat(",", 4+flowbench.NumFeatures+1))
	f.Add("a,b,c")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		j, err := ParseCSVRow(line)
		if err != nil {
			return
		}
		if _, err := ParseCSVRow(CSVRow(j)); err != nil {
			t.Fatalf("accepted row %q renders to unparseable %q: %v", line, CSVRow(j), err)
		}
		doc := CSVHeader() + "\n" + CSVRow(j) + "\n"
		jobs, err := ReadCSV(strings.NewReader(doc))
		if err != nil || len(jobs) != 1 {
			t.Fatalf("ReadCSV over accepted row failed: %v (%d jobs)", err, len(jobs))
		}
	})
}
