package logparse

import (
	"strings"
	"testing"

	"repro/internal/flowbench"
)

func TestParseCSVRowRoundTrip(t *testing.T) {
	j := sampleJob()
	got, err := ParseCSVRow(CSVRow(j))
	if err != nil {
		t.Fatal(err)
	}
	if got.Workflow != j.Workflow || got.TraceID != j.TraceID || got.NodeIndex != j.NodeIndex ||
		got.TaskType != j.TaskType || got.Label != j.Label || got.Anomaly != j.Anomaly {
		t.Fatalf("metadata mismatch: %+v vs %+v", got, j)
	}
	for i := range j.Features {
		if diff := got.Features[i] - j.Features[i]; diff > 0.05 || diff < -0.05 {
			t.Fatalf("feature %d: %v vs %v", i, got.Features[i], j.Features[i])
		}
	}
}

func TestParseCSVRowErrors(t *testing.T) {
	cases := []string{
		"too,few,columns",
		strings.Replace(CSVRow(sampleJob()), "7", "x", 1),      // bad trace
		strings.Replace(CSVRow(sampleJob()), "cpu_2", "zz", 1), // bad anomaly
	}
	for _, c := range cases {
		if _, err := ParseCSVRow(c); err == nil {
			t.Errorf("ParseCSVRow(%q): expected error", c)
		}
	}
}

func TestReadCSVRoundTrip(t *testing.T) {
	ds := flowbench.Generate(flowbench.Genome, 1).Subsample(40, 1, 1, 2)
	var sb strings.Builder
	sb.WriteString(CSVHeader())
	sb.WriteByte('\n')
	for _, j := range ds.Train {
		sb.WriteString(CSVRow(j))
		sb.WriteByte('\n')
	}
	jobs, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 40 {
		t.Fatalf("read %d jobs, want 40", len(jobs))
	}
	for i, j := range jobs {
		if j.Label != ds.Train[i].Label || j.TraceID != ds.Train[i].TraceID {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestReadCSVRejectsBadHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("not,a,header\n")); err == nil {
		t.Fatal("expected header error")
	}
}

func TestReadCSVReportsLineNumber(t *testing.T) {
	doc := CSVHeader() + "\n" + "garbage row\n"
	_, err := ReadCSV(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}
