package logparse

import (
	"strings"
	"testing"

	"repro/internal/flowbench"
)

func sampleJob() flowbench.Job {
	j := flowbench.Job{
		Workflow:  flowbench.Genome,
		TraceID:   7,
		NodeIndex: 12,
		TaskType:  "individuals",
		Label:     1,
		Anomaly:   flowbench.CPU2,
	}
	for i := range j.Features {
		j.Features[i] = float64(i+1) * 10.5
	}
	return j
}

func TestSentenceTemplate(t *testing.T) {
	j := sampleJob()
	s := Sentence(j)
	// Must follow "<feat> is <val>" for every feature, in order.
	for _, name := range flowbench.FeatureNames {
		if !strings.Contains(s, name+" is ") {
			t.Fatalf("sentence missing %q: %s", name, s)
		}
	}
	if strings.Contains(s, LabelAbnormal) {
		t.Fatal("unlabelled sentence contains label word")
	}
	if !strings.HasPrefix(s, "wms_delay is 10.5") {
		t.Fatalf("sentence = %q", s)
	}
}

func TestSentenceWithLabel(t *testing.T) {
	j := sampleJob()
	s := SentenceWithLabel(j)
	if !strings.HasSuffix(s, ", "+LabelAbnormal) {
		t.Fatalf("labelled sentence = %q", s)
	}
	j.Label = 0
	if !strings.HasSuffix(SentenceWithLabel(j), ", "+LabelNormal) {
		t.Fatal("normal label suffix wrong")
	}
}

func TestPrefixClamping(t *testing.T) {
	j := sampleJob()
	if Prefix(j, 0) != "" {
		t.Fatal("prefix(0) must be empty")
	}
	if Prefix(j, -3) != "" {
		t.Fatal("negative prefix must clamp to empty")
	}
	if Prefix(j, 100) != Sentence(j) {
		t.Fatal("oversized prefix must clamp to full sentence")
	}
	p2 := Prefix(j, 2)
	if !strings.Contains(p2, "wms_delay") || !strings.Contains(p2, "queue_delay") || strings.Contains(p2, "runtime") {
		t.Fatalf("prefix(2) = %q", p2)
	}
}

func TestPrefixGrowsMonotonically(t *testing.T) {
	j := sampleJob()
	for k := 1; k <= flowbench.NumFeatures; k++ {
		if !strings.HasPrefix(Prefix(j, k), Prefix(j, k-1)) {
			t.Fatalf("prefix(%d) does not extend prefix(%d)", k, k-1)
		}
	}
}

func TestFormatValue(t *testing.T) {
	if got := FormatValue(6); got != "6.0" {
		t.Fatalf("FormatValue(6) = %q", got)
	}
	if got := FormatValue(2090.04); got != "2090.0" {
		t.Fatalf("FormatValue(2090.04) = %q", got)
	}
	if got := FormatValue(2.5e8); got != "250000000" {
		t.Fatalf("FormatValue(2.5e8) = %q", got)
	}
}

func TestLabelWord(t *testing.T) {
	if LabelWord(0) != "normal" || LabelWord(1) != "abnormal" {
		t.Fatal("label words wrong")
	}
}

func TestLogLineRoundTrip(t *testing.T) {
	j := sampleJob()
	line := LogLine(j)
	got, err := ParseLogLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workflow != j.Workflow || got.TraceID != j.TraceID || got.NodeIndex != j.NodeIndex ||
		got.TaskType != j.TaskType || got.Label != j.Label || got.Anomaly != j.Anomaly {
		t.Fatalf("round trip metadata mismatch: %+v vs %+v", got, j)
	}
	for i := range j.Features {
		// Values round-trip through FormatValue's precision.
		if diff := got.Features[i] - j.Features[i]; diff > 0.05 || diff < -0.05 {
			t.Fatalf("feature %d: %v vs %v", i, got.Features[i], j.Features[i])
		}
	}
}

func TestParseLogLineErrors(t *testing.T) {
	cases := []string{
		"nokey",                // malformed field
		"trace=abc",            // bad int
		"label=7",              // bad label
		"anomaly=volcano",      // unknown anomaly
		"runtime=not_a_number", // bad float
	}
	for _, c := range cases {
		if _, err := ParseLogLine(c); err == nil {
			t.Errorf("ParseLogLine(%q): expected error", c)
		}
	}
}

func TestParseLogLineIgnoresUnknownKeys(t *testing.T) {
	j, err := ParseLogLine("wf=montage host=worker3 runtime=5.0")
	if err != nil {
		t.Fatal(err)
	}
	if j.Workflow != flowbench.Montage || j.Features[flowbench.FRuntime] != 5.0 {
		t.Fatalf("parsed %+v", j)
	}
}

func TestCSVRowMatchesHeader(t *testing.T) {
	header := CSVHeader()
	row := CSVRow(sampleJob())
	if strings.Count(header, ",") != strings.Count(row, ",") {
		t.Fatalf("column count mismatch:\n%s\n%s", header, row)
	}
	if !strings.HasPrefix(header, "workflow,trace,node,task,wms_delay") {
		t.Fatalf("header = %s", header)
	}
}

func TestCorpusSortedAndComplete(t *testing.T) {
	ds := flowbench.Generate(flowbench.Genome, 1).Subsample(50, 1, 1, 2)
	corpus := Corpus(ds.Train)
	if len(corpus) != 50 {
		t.Fatalf("corpus size %d", len(corpus))
	}
	for i := 1; i < len(corpus); i++ {
		if corpus[i] < corpus[i-1] {
			t.Fatal("corpus not sorted")
		}
	}
	for _, s := range corpus {
		if !strings.Contains(s, " , normal") && !strings.Contains(s, " , abnormal") {
			t.Fatalf("corpus sentence missing label: %q", s)
		}
	}
}
