// Package sft implements supervised fine-tuning of encoder models for
// workflow anomaly detection (Section III-A of the paper): sentence
// classification over log-derived job sentences, with the debiasing
// augmentation of Figure 9, the parameter-freezing strategy of Table II,
// transfer learning (Figures 10/11), and the online/early detection analyses
// of Figures 7/8.
package sft

import (
	"time"

	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
	"repro/internal/transformer"
)

// Example is one labeled training sentence.
type Example struct {
	// Text is the feature sentence (possibly a prefix, or empty for the
	// debiasing probe).
	Text string
	// Label is 0 (normal) or 1 (abnormal).
	Label int
}

// JobExamples converts jobs to labeled sentence examples.
func JobExamples(jobs []flowbench.Job) []Example {
	out := make([]Example, len(jobs))
	for i, j := range jobs {
		out[i] = Example{Text: logparse.Sentence(j), Label: j.Label}
	}
	return out
}

// DebiasAugmentation returns n empty-sentence examples with alternating
// labels. Adding these to the training set forces the model to predict
// normal and abnormal with near-equal probability given no evidence — the
// augmentation that produces Figure 9(b).
func DebiasAugmentation(n int) []Example {
	out := make([]Example, n)
	for i := range out {
		out[i] = Example{Text: "", Label: i % 2}
	}
	return out
}

// Classifier couples a transformer with the tokenizer that feeds it.
type Classifier struct {
	Model *transformer.Model
	Tok   *tokenizer.Tokenizer
}

// NewClassifier wraps a model and tokenizer.
func NewClassifier(m *transformer.Model, tok *tokenizer.Tokenizer) *Classifier {
	return &Classifier{Model: m, Tok: tok}
}

// Predict classifies a sentence, returning the predicted label and the
// class-probability pair (normal, abnormal).
func (c *Classifier) Predict(text string) (int, [2]float32) {
	ids := c.Tok.Encode(text, true)
	logits := c.Model.ForwardCls(ids, false)
	row := make([]float32, 2)
	copy(row, logits.Row(0))
	tensor.Softmax(row)
	return tensor.ArgMax(row), [2]float32{row[0], row[1]}
}

// PredictBatch classifies a batch of sentences in one packed forward pass,
// returning per-sentence labels and (normal, abnormal) probability pairs in
// input order. Predictions match Predict on each sentence; the batched path
// reads the model without mutating it, so it is safe to call concurrently.
func (c *Classifier) PredictBatch(texts []string) ([]int, [][2]float32) {
	ws := tensor.GetWorkspace()
	defer tensor.PutWorkspace(ws)
	return c.PredictBatchWS(texts, ws)
}

// PredictBatchWS is PredictBatch on a caller-owned tensor.Workspace, letting
// a long-lived inference worker reuse one scratch arena across batches. The
// workspace is used, not reset: the caller resets it between batches.
func (c *Classifier) PredictBatchWS(texts []string, ws *tensor.Workspace) ([]int, [][2]float32) {
	if len(texts) == 0 {
		return nil, nil
	}
	//lint:ignore hotalloc per-batch token-id scratch; workspace arenas hold flat buffers, not slices of slices
	seqs := make([][]int, len(texts))
	for i, t := range texts {
		seqs[i] = c.Tok.Encode(t, true)
	}
	logits := c.Model.ForwardClsBatchWS(seqs, ws)
	//lint:ignore hotalloc returned to the caller; results must outlive the workspace's next Reset
	labels := make([]int, len(texts))
	//lint:ignore hotalloc returned to the caller; results must outlive the workspace's next Reset
	probs := make([][2]float32, len(texts))
	for i := range texts {
		// A fixed-size array keeps the softmax scratch on the stack — the
		// old make([]float32, 2) here was one heap allocation per sentence.
		var row [2]float32
		copy(row[:], logits.Row(i))
		tensor.Softmax(row[:])
		labels[i] = tensor.ArgMax(row[:])
		probs[i] = row
	}
	return labels, probs
}

// PredictJob classifies a job's full sentence.
func (c *Classifier) PredictJob(j flowbench.Job) (int, [2]float32) {
	return c.Predict(logparse.Sentence(j))
}

// Score returns the anomaly score (probability of the abnormal class) for a
// sentence, used for ranking metrics.
func (c *Classifier) Score(text string) float64 {
	_, p := c.Predict(text)
	return float64(p[1])
}

// TrainConfig controls fine-tuning.
type TrainConfig struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// LR is the peak AdamW learning rate.
	LR float64
	// WeightDecay is the decoupled weight decay.
	WeightDecay float64
	// BatchSize is the gradient-accumulation window (sequences per step).
	BatchSize int
	// ClipNorm bounds the global gradient norm (0 disables clipping).
	ClipNorm float64
	// Seed controls example shuffling.
	Seed uint64
	// Augment is appended to the training set each epoch (e.g.
	// DebiasAugmentation).
	Augment []Example
	// ValEvery evaluates on the validation set every ValEvery epochs
	// (0 = never); per-epoch scores land in the returned stats.
	ValEvery int
	// Patience stops training early when validation accuracy has not
	// improved for Patience consecutive evaluations (0 disables). Requires
	// ValEvery > 0 and a validation set. The Figure 6 finding — a few
	// epochs suffice and long training overfits — is what this knob acts
	// on.
	Patience int
}

// DefaultTrainConfig is the fine-tuning recipe used across experiments.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 3, LR: 1e-3, WeightDecay: 0.01, BatchSize: 8, ClipNorm: 1.0, Seed: 1}
}

// EpochStats records one epoch of fine-tuning.
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	Val       metrics.Scores
	HasVal    bool
	Duration  time.Duration
}

// Train fine-tunes the classifier on train, optionally tracking validation
// scores, and returns per-epoch statistics. Training mutates c.Model in
// place.
func Train(c *Classifier, train, val []Example, cfg TrainConfig) []EpochStats {
	if cfg.Epochs <= 0 {
		panic("sft: non-positive epochs")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	data := make([]Example, 0, len(train)+len(cfg.Augment))
	data = append(data, train...)
	data = append(data, cfg.Augment...)
	rng := tensor.NewRNG(cfg.Seed)
	opt := nn.NewAdamW(cfg.LR, cfg.WeightDecay)
	ce := nn.NewSoftmaxCrossEntropy()
	params := c.Model.Params()
	stats := make([]EpochStats, 0, cfg.Epochs)
	order := make([]int, len(data))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		start := time.Now()
		rng.Shuffle(order)
		var totalLoss float64
		pending := 0
		invBatch := 1 / float32(cfg.BatchSize)
		for _, idx := range order {
			ex := data[idx]
			ids := c.Tok.Encode(ex.Text, true)
			logits := c.Model.ForwardCls(ids, true)
			loss, grad := ce.Loss(logits, []int{ex.Label})
			totalLoss += loss
			tensor.Scale(grad, grad, invBatch)
			c.Model.BackwardCls(grad)
			pending++
			if pending == cfg.BatchSize {
				if cfg.ClipNorm > 0 {
					nn.ClipGradNorm(params, cfg.ClipNorm)
				}
				opt.Step(params)
				pending = 0
			}
		}
		if pending > 0 {
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, cfg.ClipNorm)
			}
			opt.Step(params)
		}
		st := EpochStats{
			Epoch:     epoch,
			TrainLoss: totalLoss / float64(max(1, len(data))),
			Duration:  time.Since(start),
		}
		if cfg.ValEvery > 0 && (epoch%cfg.ValEvery == cfg.ValEvery-1 || epoch == cfg.Epochs-1) && len(val) > 0 {
			st.Val = metrics.FromConfusion(EvaluateExamples(c, val))
			st.HasVal = true
		}
		stats = append(stats, st)
		if cfg.Patience > 0 && st.HasVal && shouldStop(stats, cfg.Patience) {
			break
		}
	}
	return stats
}

// shouldStop reports whether the last Patience validation scores failed to
// improve on the best seen so far.
func shouldStop(stats []EpochStats, patience int) bool {
	best := -1.0
	bestAt := -1
	evals := 0
	for i, st := range stats {
		if !st.HasVal {
			continue
		}
		evals++
		if st.Val.Accuracy > best {
			best = st.Val.Accuracy
			bestAt = i
		}
	}
	if evals <= patience {
		return false
	}
	// Count evaluations after the best one.
	since := 0
	for _, st := range stats[bestAt+1:] {
		if st.HasVal {
			since++
		}
	}
	return since >= patience
}

// EvaluateExamples scores the classifier on labeled sentences.
func EvaluateExamples(c *Classifier, examples []Example) metrics.Confusion {
	labels := make([]int, len(examples))
	preds := make([]int, len(examples))
	for i, ex := range examples {
		labels[i] = ex.Label
		pred, _ := c.Predict(ex.Text)
		preds[i] = pred
	}
	return metrics.NewConfusion(labels, preds)
}

// Evaluate scores the classifier on a job set.
func Evaluate(c *Classifier, jobs []flowbench.Job) metrics.Confusion {
	return EvaluateExamples(c, JobExamples(jobs))
}

// AnomalyScores returns per-job anomaly scores and labels for ranking
// metrics (Table IV style evaluation of classifiers).
func AnomalyScores(c *Classifier, jobs []flowbench.Job) (labels []int, scores []float64) {
	labels = make([]int, len(jobs))
	scores = make([]float64, len(jobs))
	for i, j := range jobs {
		labels[i] = j.Label
		scores[i] = c.Score(logparse.Sentence(j))
	}
	return labels, scores
}

// BiasProbe predicts the empty sentence and returns the (normal, abnormal)
// probability pair — the Figure 9 probe. An unbiased model returns ≈(0.5,
// 0.5).
func BiasProbe(c *Classifier) [2]float32 {
	_, p := c.Predict("")
	return p
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
