package sft

import (
	"fmt"
	"time"

	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
	"repro/internal/transformer"
)

// Anomaly-type classification is this repository's extension beyond the
// paper's binary task: Flow-Bench labels each anomaly with its injection
// template (CPU core-capping vs HDD throttling), and the same SFT machinery
// can recover the type — which tells an operator *what* to fix, not just
// that something is wrong.

// Type-class indices for TypedLabel.
const (
	ClassNormal = 0
	ClassCPU    = 1
	ClassHDD    = 2
	// NumTypeClasses is the class count of the anomaly-type task.
	NumTypeClasses = 3
)

// TypeClassNames names the three classes.
var TypeClassNames = []string{"normal", "cpu", "hdd"}

// TypedLabel maps a job to its anomaly-type class.
func TypedLabel(j flowbench.Job) int {
	switch {
	case j.Anomaly.IsCPU():
		return ClassCPU
	case j.Anomaly.IsHDD():
		return ClassHDD
	default:
		return ClassNormal
	}
}

// TypedExamples converts jobs to anomaly-type classification examples.
func TypedExamples(jobs []flowbench.Job) []Example {
	out := make([]Example, len(jobs))
	for i, j := range jobs {
		out[i] = Example{Text: logparse.Sentence(j), Label: TypedLabel(j)}
	}
	return out
}

// MultiClassifier is a K-way sentence classifier (the binary Classifier
// generalized). The wrapped model must have been built with
// Config.NumClasses == classes.
type MultiClassifier struct {
	Model   *transformer.Model
	Tok     *tokenizer.Tokenizer
	Classes int
}

// NewMultiClassifier wraps a model whose classification head has the given
// class count.
func NewMultiClassifier(m *transformer.Model, tok *tokenizer.Tokenizer, classes int) *MultiClassifier {
	if m.Config.NumClasses != classes {
		panic(fmt.Sprintf("sft: model has %d classes, want %d", m.Config.NumClasses, classes))
	}
	return &MultiClassifier{Model: m, Tok: tok, Classes: classes}
}

// Predict classifies a sentence, returning the argmax class and the full
// class distribution.
func (c *MultiClassifier) Predict(text string) (int, []float32) {
	ids := c.Tok.Encode(text, true)
	logits := c.Model.ForwardCls(ids, false)
	probs := make([]float32, c.Classes)
	copy(probs, logits.Row(0))
	tensor.Softmax(probs)
	return tensor.ArgMax(probs), probs
}

// TrainMulti fine-tunes the multi-class classifier; the recipe matches the
// binary Train.
func TrainMulti(c *MultiClassifier, train []Example, cfg TrainConfig) []EpochStats {
	if cfg.Epochs <= 0 {
		panic("sft: non-positive epochs")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	rng := tensor.NewRNG(cfg.Seed)
	opt := nn.NewAdamW(cfg.LR, cfg.WeightDecay)
	ce := nn.NewSoftmaxCrossEntropy()
	params := c.Model.Params()
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	stats := make([]EpochStats, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		start := time.Now()
		rng.Shuffle(order)
		var total float64
		pending := 0
		invBatch := 1 / float32(cfg.BatchSize)
		for _, idx := range order {
			ex := train[idx]
			if ex.Label < 0 || ex.Label >= c.Classes {
				panic(fmt.Sprintf("sft: label %d out of range for %d classes", ex.Label, c.Classes))
			}
			ids := c.Tok.Encode(ex.Text, true)
			logits := c.Model.ForwardCls(ids, true)
			loss, grad := ce.Loss(logits, []int{ex.Label})
			total += loss
			tensor.Scale(grad, grad, invBatch)
			c.Model.BackwardCls(grad)
			pending++
			if pending == cfg.BatchSize {
				if cfg.ClipNorm > 0 {
					nn.ClipGradNorm(params, cfg.ClipNorm)
				}
				opt.Step(params)
				pending = 0
			}
		}
		if pending > 0 {
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, cfg.ClipNorm)
			}
			opt.Step(params)
		}
		stats = append(stats, EpochStats{
			Epoch:     epoch,
			TrainLoss: total / float64(max(1, len(train))),
			Duration:  time.Since(start),
		})
	}
	return stats
}

// MultiConfusion is a K×K confusion matrix; rows are true classes, columns
// predictions.
type MultiConfusion struct {
	Classes int
	Counts  [][]int
}

// EvaluateMulti scores the classifier on labeled examples.
func EvaluateMulti(c *MultiClassifier, examples []Example) MultiConfusion {
	mc := MultiConfusion{Classes: c.Classes, Counts: make([][]int, c.Classes)}
	for i := range mc.Counts {
		mc.Counts[i] = make([]int, c.Classes)
	}
	for _, ex := range examples {
		pred, _ := c.Predict(ex.Text)
		mc.Counts[ex.Label][pred]++
	}
	return mc
}

// Accuracy is the trace of the confusion matrix over its total.
func (m MultiConfusion) Accuracy() float64 {
	correct, total := 0, 0
	for i, row := range m.Counts {
		for j, n := range row {
			total += n
			if i == j {
				correct += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Recall returns per-class recall (diagonal over row sums).
func (m MultiConfusion) Recall(class int) float64 {
	row := m.Counts[class]
	total := 0
	for _, n := range row {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(row[class]) / float64(total)
}
