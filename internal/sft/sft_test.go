package sft

import (
	"math"
	"strings"
	"testing"

	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/models"
	"repro/internal/tokenizer"
)

// testSetup builds a small classifier and dataset shared by training tests.
func testSetup(t *testing.T, nTrain int) (*Classifier, *flowbench.Dataset) {
	t.Helper()
	ds := flowbench.Generate(flowbench.Genome, 42).Subsample(nTrain, 100, 150, 7)
	corpus := logparse.Corpus(append(append([]flowbench.Job{}, ds.Train...), ds.Test...))
	tok := tokenizer.Build(corpus)
	m := models.MustGet("distilbert-base-uncased").Build(tok.VocabSize())
	return NewClassifier(m, tok), ds
}

func TestJobExamples(t *testing.T) {
	_, ds := testSetup(t, 10)
	exs := JobExamples(ds.Train)
	if len(exs) != 10 {
		t.Fatalf("examples = %d", len(exs))
	}
	for i, ex := range exs {
		if ex.Label != ds.Train[i].Label {
			t.Fatal("label mismatch")
		}
		if !strings.HasPrefix(ex.Text, "wms_delay is ") {
			t.Fatalf("example text = %q", ex.Text)
		}
		if strings.Contains(ex.Text, "normal") {
			t.Fatal("training text must not embed the label word (it is the target)")
		}
	}
}

func TestDebiasAugmentation(t *testing.T) {
	aug := DebiasAugmentation(6)
	if len(aug) != 6 {
		t.Fatalf("augmentation size %d", len(aug))
	}
	zeros, ones := 0, 0
	for _, ex := range aug {
		if ex.Text != "" {
			t.Fatal("debias examples must be empty sentences")
		}
		if ex.Label == 0 {
			zeros++
		} else {
			ones++
		}
	}
	if zeros != 3 || ones != 3 {
		t.Fatalf("labels unbalanced: %d/%d", zeros, ones)
	}
}

func TestTrainImprovesOverMajority(t *testing.T) {
	c, ds := testSetup(t, 300)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 4
	stats := Train(c, JobExamples(ds.Train), nil, cfg)
	if len(stats) != 4 {
		t.Fatalf("stats for %d epochs", len(stats))
	}
	if stats[len(stats)-1].TrainLoss >= stats[0].TrainLoss {
		t.Fatalf("loss did not fall: %v -> %v", stats[0].TrainLoss, stats[len(stats)-1].TrainLoss)
	}
	conf := Evaluate(c, ds.Test)
	majority := 1 - ds.Stats()[2].Fraction() // always-normal baseline
	if conf.Accuracy() <= majority {
		t.Fatalf("SFT accuracy %.3f not above majority baseline %.3f", conf.Accuracy(), majority)
	}
}

func TestTrainValidationTracking(t *testing.T) {
	c, ds := testSetup(t, 60)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	cfg.ValEvery = 1
	stats := Train(c, JobExamples(ds.Train), JobExamples(ds.Val[:40]), cfg)
	for _, st := range stats {
		if !st.HasVal {
			t.Fatal("ValEvery=1 must evaluate every epoch")
		}
		if st.Val.Accuracy < 0 || st.Val.Accuracy > 1 {
			t.Fatalf("val accuracy %v", st.Val.Accuracy)
		}
		if st.Duration <= 0 {
			t.Fatal("epoch duration not recorded")
		}
	}
}

func TestTrainZeroEpochsPanics(t *testing.T) {
	c, ds := testSetup(t, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Train(c, JobExamples(ds.Train), nil, TrainConfig{Epochs: 0})
}

func TestEvaluateMatchesPredict(t *testing.T) {
	c, ds := testSetup(t, 5)
	conf := Evaluate(c, ds.Test[:20])
	total := conf.TP + conf.FP + conf.TN + conf.FN
	if total != 20 {
		t.Fatalf("confusion total %d", total)
	}
}

func TestPredictProbsSumToOne(t *testing.T) {
	c, ds := testSetup(t, 5)
	_, p := c.PredictJob(ds.Test[0])
	if math.Abs(float64(p[0]+p[1])-1) > 1e-5 {
		t.Fatalf("probs = %v", p)
	}
}

func TestAnomalyScores(t *testing.T) {
	c, ds := testSetup(t, 5)
	labels, scores := AnomalyScores(c, ds.Test[:30])
	if len(labels) != 30 || len(scores) != 30 {
		t.Fatal("length mismatch")
	}
	for i, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("score[%d] = %v", i, s)
		}
		if labels[i] != ds.Test[i].Label {
			t.Fatal("label mismatch")
		}
	}
}

func TestBiasProbeAndDebiasing(t *testing.T) {
	// Train on normal-only data: the model becomes biased toward "normal"
	// for the empty input.
	c, ds := testSetup(t, 400)
	var normalOnly []Example
	for _, j := range ds.Train {
		if j.Label == 0 && len(normalOnly) < 120 {
			normalOnly = append(normalOnly, Example{Text: logparse.Sentence(j), Label: 0})
		}
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	Train(c, normalOnly, nil, cfg)
	biased := BiasProbe(c)
	gapBiased := math.Abs(float64(biased[0] - biased[1]))
	if biased[0] < biased[1] {
		t.Fatalf("normal-only training should bias toward normal: %v", biased)
	}

	// Same data plus debias augmentation: the gap must shrink.
	c2, _ := testSetup(t, 5)
	cfg.Augment = DebiasAugmentation(40)
	Train(c2, normalOnly, nil, cfg)
	debiased := BiasProbe(c2)
	gapDebiased := math.Abs(float64(debiased[0] - debiased[1]))
	if gapDebiased >= gapBiased {
		t.Fatalf("debiasing did not shrink bias gap: %.3f -> %.3f", gapBiased, gapDebiased)
	}
}

func TestFreezeBackboneOnlyMovesHead(t *testing.T) {
	c, ds := testSetup(t, 40)
	c.Model.FreezeBackbone()
	before := c.Model.TokEmb.Table.W.Clone()
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	Train(c, JobExamples(ds.Train), nil, cfg)
	if !c.Model.TokEmb.Table.W.Equal(before) {
		t.Fatal("frozen backbone moved during training")
	}
}

func TestOnlineTrace(t *testing.T) {
	c, ds := testSetup(t, 5)
	steps := OnlineTrace(c, ds.Test[0])
	if len(steps) != flowbench.NumFeatures {
		t.Fatalf("steps = %d", len(steps))
	}
	for i, st := range steps {
		if st.K != i+1 || st.Feature != flowbench.FeatureNames[i] {
			t.Fatalf("step %d = %+v", i, st)
		}
		if st.Label != 0 && st.Label != 1 {
			t.Fatalf("bad label %d", st.Label)
		}
		if i > 0 && !strings.HasPrefix(st.Sentence, steps[i-1].Sentence) {
			t.Fatal("prefix sentences must grow")
		}
	}
}

func TestEarlyDetectionAccounting(t *testing.T) {
	c, ds := testSetup(t, 5)
	jobs := ds.Test[:25]
	hist, missed := EarlyDetection(c, jobs)
	total := missed
	for _, n := range hist {
		total += n
	}
	if total != len(jobs) {
		t.Fatalf("histogram+missed = %d, want %d", total, len(jobs))
	}
}
