package sft

import (
	"strings"
	"testing"

	"repro/internal/flowbench"
)

func TestSentenceWithout(t *testing.T) {
	var j flowbench.Job
	for i := range j.Features {
		j.Features[i] = float64(i + 1)
	}
	s := sentenceWithout(j, flowbench.FRuntime)
	if strings.Contains(s, "runtime") {
		t.Fatalf("occluded sentence still mentions runtime: %q", s)
	}
	if !strings.Contains(s, "wms_delay") || !strings.Contains(s, "cpu_time") {
		t.Fatalf("occlusion removed too much: %q", s)
	}
	// Occluding the first feature must not leave a leading space.
	s0 := sentenceWithout(j, 0)
	if strings.HasPrefix(s0, " ") {
		t.Fatalf("leading space after occluding first feature: %q", s0)
	}
}

func TestAttributeCoversAllFeatures(t *testing.T) {
	c, ds := testSetup(t, 5)
	attrs := Attribute(c, ds.Test[0])
	if len(attrs) != flowbench.NumFeatures {
		t.Fatalf("attributions = %d", len(attrs))
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		seen[a.Feature] = true
	}
	for _, name := range flowbench.FeatureNames {
		if !seen[name] {
			t.Fatalf("missing attribution for %s", name)
		}
	}
	// Sorted by |Delta| descending.
	abs := func(v float64) float64 {
		if v < 0 {
			return -v
		}
		return v
	}
	for i := 1; i < len(attrs); i++ {
		if abs(attrs[i].Delta) > abs(attrs[i-1].Delta)+1e-12 {
			t.Fatal("attributions not sorted by magnitude")
		}
	}
}

// TestAttributionFindsCPUAnomalySignal trains a classifier, then checks the
// occlusion attribution for CPU-anomalous jobs points at runtime/cpu_time
// signals more often than chance.
func TestAttributionFindsCPUAnomalySignal(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	c, ds := testSetup(t, 300)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	Train(c, JobExamples(ds.Train), nil, cfg)

	hits, total := 0, 0
	for _, j := range ds.Test {
		if !j.Anomaly.IsCPU() {
			continue
		}
		if pred, _ := c.PredictJob(j); pred != 1 {
			continue // only explain detected anomalies
		}
		total++
		culprit := TopCulprit(Attribute(c, j))
		if culprit == "runtime" || culprit == "cpu_time" {
			hits++
		}
	}
	if total == 0 {
		t.Skip("no detected CPU anomalies at this scale")
	}
	// Chance level would be ~2/9 ≈ 0.22; require a clear majority.
	if frac := float64(hits) / float64(total); frac < 0.5 {
		t.Fatalf("runtime/cpu_time blamed for only %.0f%% of CPU anomalies", 100*frac)
	}
}

func TestTopCulprit(t *testing.T) {
	attrs := []FeatureAttribution{
		{Feature: "a", Delta: -0.5},
		{Feature: "b", Delta: 0.3},
		{Feature: "c", Delta: 0.1},
	}
	if got := TopCulprit(attrs); got != "b" {
		t.Fatalf("TopCulprit = %q", got)
	}
	if got := TopCulprit([]FeatureAttribution{{Feature: "a", Delta: -1}}); got != "" {
		t.Fatalf("all-negative TopCulprit = %q", got)
	}
}

func TestEarlyStoppingPatience(t *testing.T) {
	c, ds := testSetup(t, 120)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 12
	cfg.ValEvery = 1
	cfg.Patience = 2
	stats := Train(c, JobExamples(ds.Train), JobExamples(ds.Val[:50]), cfg)
	if len(stats) == 0 {
		t.Fatal("no epochs ran")
	}
	// With patience 2 on a quickly saturating task, training should stop
	// before the full 12 epochs (or at worst run them all — but the stop
	// logic must never produce more).
	if len(stats) > 12 {
		t.Fatalf("ran %d epochs, budget 12", len(stats))
	}
}

func TestShouldStopLogic(t *testing.T) {
	mk := func(accs ...float64) []EpochStats {
		out := make([]EpochStats, len(accs))
		for i, a := range accs {
			out[i] = EpochStats{Epoch: i, HasVal: true}
			out[i].Val.Accuracy = a
		}
		return out
	}
	if shouldStop(mk(0.5, 0.6), 2) {
		t.Fatal("must not stop while improving")
	}
	if !shouldStop(mk(0.7, 0.6, 0.6), 2) {
		t.Fatal("must stop after 2 non-improving evals")
	}
	if shouldStop(mk(0.5, 0.6, 0.7), 2) {
		t.Fatal("must not stop when best is latest")
	}
}
