package sft

import (
	"sort"
	"strings"

	"repro/internal/flowbench"
	"repro/internal/logparse"
)

// FeatureAttribution quantifies how much each log feature contributed to a
// classification by occlusion: each feature clause is dropped from the
// sentence in turn and the change in the anomaly score is recorded. A large
// positive attribution means the feature's presence pushed the prediction
// toward abnormal — the "which feature tripped the alarm" question an
// operator asks after an alert, complementing the CoT narrative on the ICL
// side.
type FeatureAttribution struct {
	// Feature is the occluded feature's name.
	Feature string
	// Value is the feature's value in the job.
	Value float64
	// Delta is fullScore − occludedScore: the anomaly-score mass the
	// feature accounts for.
	Delta float64
}

// Attribute computes occlusion attributions for every feature of a job,
// returned in descending |Delta| order.
func Attribute(c *Classifier, j flowbench.Job) []FeatureAttribution {
	full := c.Score(logparse.Sentence(j))
	out := make([]FeatureAttribution, 0, flowbench.NumFeatures)
	for i, name := range flowbench.FeatureNames {
		occluded := c.Score(sentenceWithout(j, i))
		out = append(out, FeatureAttribution{
			Feature: name,
			Value:   j.Features[i],
			Delta:   full - occluded,
		})
	}
	sort.SliceStable(out, func(a, b int) bool {
		da, db := out[a].Delta, out[b].Delta
		if da < 0 {
			da = -da
		}
		if db < 0 {
			db = -db
		}
		return da > db
	})
	return out
}

// sentenceWithout renders the job sentence with feature k's clause removed.
func sentenceWithout(j flowbench.Job, k int) string {
	var sb strings.Builder
	first := true
	for i := 0; i < flowbench.NumFeatures; i++ {
		if i == k {
			continue
		}
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		sb.WriteString(flowbench.FeatureNames[i])
		sb.WriteString(" is ")
		sb.WriteString(logparse.FormatValue(j.Features[i]))
	}
	return sb.String()
}

// TopCulprit returns the feature with the largest positive attribution (the
// strongest abnormal signal), or "" when no feature pushes abnormal.
func TopCulprit(attrs []FeatureAttribution) string {
	best := ""
	bestDelta := 0.0
	for _, a := range attrs {
		if a.Delta > bestDelta {
			bestDelta = a.Delta
			best = a.Feature
		}
	}
	return best
}
