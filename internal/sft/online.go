package sft

import (
	"repro/internal/flowbench"
	"repro/internal/logparse"
)

// StepPrediction is the classifier's output after observing the first K
// features of a job — one row of the Figure 7 online-detection timeline.
type StepPrediction struct {
	// K is the number of features observed (1-based).
	K int
	// Feature is the newest feature's name.
	Feature string
	// Sentence is the prefix sentence presented to the model.
	Sentence string
	// Label is the predicted label.
	Label int
	// Score is the probability of the predicted label.
	Score float32
}

// OnlineTrace classifies every prefix of a job's feature sequence,
// simulating real-time detection as log fields stream in (Figure 7).
func OnlineTrace(c *Classifier, j flowbench.Job) []StepPrediction {
	out := make([]StepPrediction, 0, flowbench.NumFeatures)
	for k := 1; k <= flowbench.NumFeatures; k++ {
		text := logparse.Prefix(j, k)
		pred, probs := c.Predict(text)
		out = append(out, StepPrediction{
			K:        k,
			Feature:  flowbench.FeatureNames[k-1],
			Sentence: text,
			Label:    pred,
			Score:    probs[pred],
		})
	}
	return out
}

// EarlyDetection computes the Figure 8 histogram: for each job, the first
// prefix length at which the model predicts the job's true label; the
// result counts jobs per feature index (0-based). Jobs never classified
// correctly at any prefix are counted in the returned missed total.
func EarlyDetection(c *Classifier, jobs []flowbench.Job) (histogram [flowbench.NumFeatures]int, missed int) {
	for _, j := range jobs {
		if k := firstCorrectPrefix(c, j); k == 0 {
			missed++
		} else {
			histogram[k-1]++
		}
	}
	return histogram, missed
}

// firstCorrectPrefix returns the 1-based prefix length at which the
// classifier first predicts j's true label, or 0 if it never does.
func firstCorrectPrefix(c *Classifier, j flowbench.Job) int {
	for k := 1; k <= flowbench.NumFeatures; k++ {
		if pred, _ := c.Predict(logparse.Prefix(j, k)); pred == j.Label {
			return k
		}
	}
	return 0
}
