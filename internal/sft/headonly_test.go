package sft

import (
	"testing"
	"time"
)

func TestTrainHeadOnlyFreezesBackbone(t *testing.T) {
	c, ds := testSetup(t, 60)
	before := c.Model.TokEmb.Table.W.Clone()
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	TrainHeadOnly(c, JobExamples(ds.Train), cfg)
	if !c.Model.TokEmb.Table.W.Equal(before) {
		t.Fatal("head-only training moved the backbone")
	}
}

func TestTrainHeadOnlyLearns(t *testing.T) {
	c, ds := testSetup(t, 200)
	// Give the backbone some MLM-free structure by fine-tuning fully first,
	// then resetting the head and re-learning it head-only.
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	Train(c, JobExamples(ds.Train), nil, cfg)
	c.Model.ClsHead.Weight.W.Zero()
	c.Model.ClsHead.Bias.W.Zero()

	headCfg := DefaultTrainConfig()
	headCfg.Epochs = 20
	stats := TrainHeadOnly(c, JobExamples(ds.Train), headCfg)
	if len(stats) != 20 {
		t.Fatalf("ran %d epochs", len(stats))
	}
	if stats[len(stats)-1].TrainLoss >= stats[0].TrainLoss {
		t.Fatalf("head-only loss did not fall: %v -> %v", stats[0].TrainLoss, stats[len(stats)-1].TrainLoss)
	}
	conf := Evaluate(c, ds.Test)
	majority := 1 - ds.Stats()[2].Fraction()
	if conf.Accuracy() <= majority {
		t.Fatalf("head-only accuracy %.3f not above majority %.3f on learned features", conf.Accuracy(), majority)
	}
}

func TestTrainHeadOnlyMuchFasterPerEpoch(t *testing.T) {
	c, ds := testSetup(t, 150)
	examples := JobExamples(ds.Train)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	full := Train(c, examples, nil, cfg)

	c2, _ := testSetup(t, 5)
	cfg.Epochs = 5
	headStats := TrainHeadOnly(c2, examples, cfg)
	// Epochs after the first (which includes feature extraction in setup,
	// measured outside EpochStats) must be far cheaper than a full epoch.
	var lastHead time.Duration = headStats[len(headStats)-1].Duration
	if lastHead*5 > full[0].Duration {
		t.Fatalf("head-only epoch %v not ≫ faster than full epoch %v", lastHead, full[0].Duration)
	}
}

func TestTrainHeadOnlyZeroEpochsPanics(t *testing.T) {
	c, ds := testSetup(t, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TrainHeadOnly(c, JobExamples(ds.Train), TrainConfig{Epochs: 0})
}
