package sft

import (
	"testing"

	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/models"
	"repro/internal/tokenizer"
)

func TestTypedLabel(t *testing.T) {
	cases := []struct {
		anomaly flowbench.AnomalyClass
		want    int
	}{
		{flowbench.None, ClassNormal},
		{flowbench.CPU2, ClassCPU},
		{flowbench.CPU3, ClassCPU},
		{flowbench.CPU4, ClassCPU},
		{flowbench.HDD5, ClassHDD},
		{flowbench.HDD10, ClassHDD},
	}
	for _, c := range cases {
		if got := TypedLabel(flowbench.Job{Anomaly: c.anomaly}); got != c.want {
			t.Fatalf("TypedLabel(%v) = %d, want %d", c.anomaly, got, c.want)
		}
	}
}

func TestNewMultiClassifierChecksHead(t *testing.T) {
	tok := tokenizer.Build([]string{"a"})
	m := models.MustGet("distilbert-base-uncased").Build(tok.VocabSize()) // 2 classes
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for class mismatch")
		}
	}()
	NewMultiClassifier(m, tok, 3)
}

// TestAnomalyTypeClassification trains the 3-way classifier and verifies it
// separates CPU from HDD anomalies — the extension claim: the same SFT
// machinery recovers the anomaly type, not just its presence.
func TestAnomalyTypeClassification(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	ds := flowbench.Generate(flowbench.Genome, 42).Subsample(450, 100, 200, 7)
	corpus := logparse.Corpus(append(append([]flowbench.Job{}, ds.Train...), ds.Test...))
	tok := tokenizer.Build(corpus)
	m := models.MustGet("distilbert-base-uncased").BuildClasses(tok.VocabSize(), NumTypeClasses)
	c := NewMultiClassifier(m, tok, NumTypeClasses)

	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	stats := TrainMulti(c, TypedExamples(ds.Train), cfg)
	if stats[len(stats)-1].TrainLoss >= stats[0].TrainLoss {
		t.Fatalf("multi-class loss did not fall: %v -> %v",
			stats[0].TrainLoss, stats[len(stats)-1].TrainLoss)
	}

	mc := EvaluateMulti(c, TypedExamples(ds.Test))
	// Majority baseline: always-normal.
	normals := 0
	for _, j := range ds.Test {
		if j.Label == 0 {
			normals++
		}
	}
	majority := float64(normals) / float64(len(ds.Test))
	if mc.Accuracy() <= majority {
		t.Fatalf("3-way accuracy %.3f not above majority %.3f", mc.Accuracy(), majority)
	}
	// CPU and HDD have disjoint feature signatures; both classes must have
	// nonzero recall.
	if mc.Recall(ClassCPU) == 0 || mc.Recall(ClassHDD) == 0 {
		t.Fatalf("type recalls: cpu=%.3f hdd=%.3f", mc.Recall(ClassCPU), mc.Recall(ClassHDD))
	}
}

func TestTrainMultiRejectsBadLabel(t *testing.T) {
	tok := tokenizer.Build([]string{"a"})
	m := models.MustGet("distilbert-base-uncased").BuildClasses(tok.VocabSize(), 3)
	c := NewMultiClassifier(m, tok, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range label")
		}
	}()
	TrainMulti(c, []Example{{Text: "a", Label: 7}}, TrainConfig{Epochs: 1})
}

func TestMultiConfusionMetrics(t *testing.T) {
	mc := MultiConfusion{Classes: 3, Counts: [][]int{
		{8, 1, 1},
		{2, 7, 1},
		{0, 0, 10},
	}}
	if got := mc.Accuracy(); got != 25.0/30 {
		t.Fatalf("accuracy = %v", got)
	}
	if got := mc.Recall(0); got != 0.8 {
		t.Fatalf("recall(0) = %v", got)
	}
	if got := mc.Recall(2); got != 1.0 {
		t.Fatalf("recall(2) = %v", got)
	}
	empty := MultiConfusion{Classes: 1, Counts: [][]int{{0}}}
	if empty.Accuracy() != 0 || empty.Recall(0) != 0 {
		t.Fatal("empty confusion must score 0")
	}
}
