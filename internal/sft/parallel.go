package sft

import (
	"runtime"
	"sync"

	"repro/internal/flowbench"
	"repro/internal/metrics"
)

// EvaluateParallel scores the classifier on labeled sentences using up to
// GOMAXPROCS worker replicas. Each worker owns a deep clone of the model
// (forward passes cache activations in the layers, so a single model is not
// safe for concurrent use); weights are identical, so results match
// EvaluateExamples exactly.
func EvaluateParallel(c *Classifier, examples []Example) metrics.Confusion {
	preds := predictParallel(c, examples)
	labels := make([]int, len(examples))
	for i, ex := range examples {
		labels[i] = ex.Label
	}
	return metrics.NewConfusion(labels, preds)
}

// EvaluateJobsParallel is EvaluateParallel over a job set.
func EvaluateJobsParallel(c *Classifier, jobs []flowbench.Job) metrics.Confusion {
	return EvaluateParallel(c, JobExamples(jobs))
}

// AnomalyScoresParallel computes per-job anomaly scores with worker
// replicas; results match AnomalyScores exactly.
func AnomalyScoresParallel(c *Classifier, jobs []flowbench.Job) (labels []int, scores []float64) {
	examples := JobExamples(jobs)
	labels = make([]int, len(jobs))
	scores = make([]float64, len(jobs))
	for i, j := range jobs {
		labels[i] = j.Label
	}
	forEachParallel(c, len(examples), func(worker *Classifier, i int) {
		_, p := worker.Predict(examples[i].Text)
		scores[i] = float64(p[1])
	})
	return labels, scores
}

// predictParallel classifies every example with worker replicas.
func predictParallel(c *Classifier, examples []Example) []int {
	preds := make([]int, len(examples))
	forEachParallel(c, len(examples), func(worker *Classifier, i int) {
		pred, _ := worker.Predict(examples[i].Text)
		preds[i] = pred
	})
	return preds
}

// EarlyDetectionParallel is EarlyDetection with worker replicas: for each
// job, the first prefix length at which the model predicts the true label.
// Results match EarlyDetection exactly.
func EarlyDetectionParallel(c *Classifier, jobs []flowbench.Job) (histogram [flowbench.NumFeatures]int, missed int) {
	firsts := make([]int, len(jobs)) // 1-based first-correct k; 0 = never
	forEachParallel(c, len(jobs), func(worker *Classifier, i int) {
		firsts[i] = firstCorrectPrefix(worker, jobs[i])
	})
	for _, k := range firsts {
		if k == 0 {
			missed++
		} else {
			histogram[k-1]++
		}
	}
	return histogram, missed
}

// forEachParallel fans fn over [0, n) with per-worker classifier replicas.
// Small inputs run serially on the original classifier to avoid clone cost.
func forEachParallel(c *Classifier, n int, fn func(worker *Classifier, i int)) {
	workers := runtime.GOMAXPROCS(0)
	const minPerWorker = 16
	if workers <= 1 || n < 2*minPerWorker {
		for i := 0; i < n; i++ {
			fn(c, i)
		}
		return
	}
	if workers > n/minPerWorker {
		workers = n / minPerWorker
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		replica := c
		if w > 0 { // worker 0 reuses the original
			replica = NewClassifier(c.Model.Clone(), c.Tok)
		}
		wg.Add(1)
		go func(r *Classifier) {
			defer wg.Done()
			for i := range next {
				fn(r, i)
			}
		}(replica)
	}
	wg.Wait()
}
