package sft

import (
	"sync"
	"testing"

	"repro/internal/logparse"
)

func TestPredictBatchMatchesSequential(t *testing.T) {
	c, ds := testSetup(t, 30)
	texts := make([]string, 0, 12)
	for _, j := range ds.Test[:11] {
		texts = append(texts, logparse.Sentence(j))
	}
	texts = append(texts, "") // the debias probe sentence must batch too
	labels, probs := c.PredictBatch(texts)
	if len(labels) != len(texts) || len(probs) != len(texts) {
		t.Fatalf("batch sizes %d/%d, want %d", len(labels), len(probs), len(texts))
	}
	for i, text := range texts {
		wantLabel, wantProbs := c.Predict(text)
		if labels[i] != wantLabel {
			t.Fatalf("text %d: batch label %d vs sequential %d", i, labels[i], wantLabel)
		}
		for k := 0; k < 2; k++ {
			d := probs[i][k] - wantProbs[k]
			if d < 0 {
				d = -d
			}
			if d > 1e-5 {
				t.Fatalf("text %d prob %d: batch %v vs sequential %v", i, k, probs[i], wantProbs)
			}
		}
	}
}

func TestPredictBatchEmpty(t *testing.T) {
	c, _ := testSetup(t, 5)
	labels, probs := c.PredictBatch(nil)
	if labels != nil || probs != nil {
		t.Fatal("empty batch should return nil results")
	}
}

func TestPredictBatchConcurrent(t *testing.T) {
	c, ds := testSetup(t, 20)
	texts := make([]string, 8)
	for i := range texts {
		texts[i] = logparse.Sentence(ds.Test[i])
	}
	wantLabels, _ := c.PredictBatch(texts)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			labels, _ := c.PredictBatch(texts)
			for i := range labels {
				if labels[i] != wantLabels[i] {
					errs <- "concurrent PredictBatch diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
