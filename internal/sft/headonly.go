package sft

import (
	"time"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// TrainHeadOnly implements the Table II "Linear" strategy the way it is fast
// in practice: the backbone is frozen, every training sentence is encoded
// ONCE to its pooled representation, and only the classification head is
// trained on the cached features. Epochs after the first cost a single
// [n, d]×[d, classes] matmul instead of n transformer forward passes — this
// is where the paper's 2849s → 314s speedup comes from.
//
// The model's backbone is frozen as a side effect; predictions afterwards go
// through the updated head as usual.
func TrainHeadOnly(c *Classifier, train []Example, cfg TrainConfig) []EpochStats {
	if cfg.Epochs <= 0 {
		panic("sft: non-positive epochs")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	c.Model.FreezeBackbone()
	data := make([]Example, 0, len(train)+len(cfg.Augment))
	data = append(data, train...)
	data = append(data, cfg.Augment...)

	// One-time feature extraction through the frozen backbone.
	d := c.Model.Config.DModel
	feats := tensor.New(len(data), d)
	labels := make([]int, len(data))
	for i, ex := range data {
		copy(feats.Row(i), c.Model.Pooled(c.Tok.Encode(ex.Text, true)))
		labels[i] = ex.Label
	}

	head := c.Model.ClsHead
	opt := nn.NewAdamW(cfg.LR, cfg.WeightDecay)
	ce := nn.NewSoftmaxCrossEntropy()
	rng := tensor.NewRNG(cfg.Seed)
	order := make([]int, len(data))
	for i := range order {
		order[i] = i
	}
	stats := make([]EpochStats, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		start := time.Now()
		rng.Shuffle(order)
		var total float64
		for lo := 0; lo < len(order); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			xb := tensor.New(hi-lo, d)
			yb := make([]int, hi-lo)
			for k, idx := range order[lo:hi] {
				copy(xb.Row(k), feats.Row(idx))
				yb[k] = labels[idx]
			}
			logits := head.Forward(xb, true)
			loss, grad := ce.Loss(logits, yb)
			total += loss * float64(hi-lo)
			head.Backward(grad)
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(head.Params(), cfg.ClipNorm)
			}
			opt.Step(head.Params())
		}
		stats = append(stats, EpochStats{
			Epoch:     epoch,
			TrainLoss: total / float64(max(1, len(data))),
			Duration:  time.Since(start),
		})
	}
	return stats
}
