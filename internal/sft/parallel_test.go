package sft

import (
	"testing"
)

// TestEvaluateParallelMatchesSerial verifies the parallel evaluation path
// produces the exact confusion matrix of the serial path.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	c, ds := testSetup(t, 60)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	Train(c, JobExamples(ds.Train), nil, cfg)
	want := Evaluate(c, ds.Test)
	got := EvaluateJobsParallel(c, ds.Test)
	if want != got {
		t.Fatalf("parallel %+v != serial %+v", got, want)
	}
}

func TestAnomalyScoresParallelMatchesSerial(t *testing.T) {
	c, ds := testSetup(t, 20)
	wantLabels, wantScores := AnomalyScores(c, ds.Test)
	gotLabels, gotScores := AnomalyScoresParallel(c, ds.Test)
	for i := range wantScores {
		if wantLabels[i] != gotLabels[i] || wantScores[i] != gotScores[i] {
			t.Fatalf("index %d: parallel (%d, %v) != serial (%d, %v)",
				i, gotLabels[i], gotScores[i], wantLabels[i], wantScores[i])
		}
	}
}

func TestEarlyDetectionParallelMatchesSerial(t *testing.T) {
	c, ds := testSetup(t, 20)
	jobs := ds.Test[:60]
	wantHist, wantMissed := EarlyDetection(c, jobs)
	gotHist, gotMissed := EarlyDetectionParallel(c, jobs)
	if wantHist != gotHist || wantMissed != gotMissed {
		t.Fatalf("parallel (%v, %d) != serial (%v, %d)", gotHist, gotMissed, wantHist, wantMissed)
	}
}

// TestEvaluateParallelSmallInputServesSerially exercises the serial
// fallback for tiny inputs.
func TestEvaluateParallelSmallInput(t *testing.T) {
	c, ds := testSetup(t, 5)
	want := Evaluate(c, ds.Test[:3])
	got := EvaluateJobsParallel(c, ds.Test[:3])
	if want != got {
		t.Fatalf("small-input parallel %+v != serial %+v", got, want)
	}
}
