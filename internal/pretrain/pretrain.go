// Package pretrain produces the "pre-trained checkpoints" that the paper's
// SFT and ICL experiments start from. Since no off-the-shelf Go checkpoints
// exist, pre-training is simulated in-process on a synthetic log-language
// corpus:
//
//   - encoder models are trained with masked-language modelling (MLM) over
//     unlabeled job sentences, learning feature-name/magnitude statistics;
//   - decoder models are trained with causal next-token prediction over the
//     same sentences plus prompt-formatted documents whose labels come from
//     RANDOM feature/threshold rules — this teaches prompt-format following
//     and in-context rule induction without leaking the true anomaly labels.
//
// The result mirrors what the paper gets from HuggingFace: models that know
// the log language and the prompt format but have never seen the anomaly
// task's ground truth.
package pretrain

import (
	"fmt"

	"repro/internal/flowbench"
	"repro/internal/logparse"
	"repro/internal/nn"
	"repro/internal/prompt"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
	"repro/internal/transformer"
)

// CorpusOptions configures BuildCorpus.
type CorpusOptions struct {
	// SentencesPerWorkflow is the number of unlabeled job sentences sampled
	// from each of the three workflows.
	SentencesPerWorkflow int
	// ICLDocs is the number of prompt-formatted random-rule documents.
	ICLDocs int
	// ExamplesPerDoc is the number of demonstrations in each ICL document.
	ExamplesPerDoc int
	// Seed controls sampling.
	Seed uint64
}

// DefaultCorpus is a corpus sized for the repository's experiments.
func DefaultCorpus() CorpusOptions {
	return CorpusOptions{SentencesPerWorkflow: 400, ICLDocs: 200, ExamplesPerDoc: 6, Seed: 0xc0de}
}

// labelPairs are the word pairs random-rule documents use, so that
// "normal"/"abnormal" appear as generic in-context categories rather than
// being bound to any fixed rule.
var labelPairs = [][2]string{
	{"normal", "abnormal"},
	{"low", "high"},
	{"small", "large"},
	{"good", "bad"},
}

// BuildCorpus generates the pre-training corpus. Job features come from
// fresh synthetic traces (seeded independently of the experiment datasets);
// true anomaly labels are never included.
func BuildCorpus(opts CorpusOptions) []string {
	rng := tensor.NewRNG(opts.Seed)
	var corpus []string
	// Pool of unlabeled job sentences across all workflows.
	var pool []flowbench.Job
	for _, wf := range flowbench.Workflows {
		ds := flowbench.Generate(wf, opts.Seed^0xabcd)
		sub := ds.Subsample(opts.SentencesPerWorkflow, 0, 0, opts.Seed+uint64(len(wf)))
		for _, j := range sub.Train {
			corpus = append(corpus, logparse.Sentence(j))
			pool = append(pool, j)
		}
	}
	// One instance of the full task description so every template word is in
	// vocabulary.
	corpus = append(corpus, prompt.TaskDescription(), prompt.CoTSuffix)
	// Random-rule ICL documents.
	for d := 0; d < opts.ICLDocs && len(pool) > 0; d++ {
		corpus = append(corpus, randomRuleDoc(pool, opts.ExamplesPerDoc, rng))
	}
	return corpus
}

// randomRuleDoc builds one prompt-formatted document: jobs labeled by a
// random feature/threshold rule with a random label-word pair.
func randomRuleDoc(pool []flowbench.Job, k int, rng *tensor.RNG) string {
	feat := rng.Intn(flowbench.NumFeatures)
	pair := labelPairs[rng.Intn(len(labelPairs))]
	if rng.Intn(2) == 0 {
		pair[0], pair[1] = pair[1], pair[0]
	}
	// Threshold at the median of a small sample so both labels occur.
	sample := make([]float64, 16)
	for i := range sample {
		sample[i] = pool[rng.Intn(len(pool))].Features[feat]
	}
	for i := 1; i < len(sample); i++ {
		for j := i; j > 0 && sample[j] < sample[j-1]; j-- {
			sample[j], sample[j-1] = sample[j-1], sample[j]
		}
	}
	threshold := sample[len(sample)/2]
	label := func(j flowbench.Job) string {
		if j.Features[feat] >= threshold {
			return pair[1]
		}
		return pair[0]
	}
	var examples []prompt.Example
	for i := 0; i < k; i++ {
		j := pool[rng.Intn(len(pool))]
		examples = append(examples, prompt.Example{Sentence: logparse.Sentence(j), Label: label(j)})
	}
	q := pool[rng.Intn(len(pool))]
	return prompt.Document(examples, logparse.Sentence(q), label(q))
}

// BuildTokenizer constructs the shared vocabulary over the corpus.
func BuildTokenizer(corpus []string) *tokenizer.Tokenizer {
	return tokenizer.Build(corpus)
}

// Options configures a pre-training run.
type Options struct {
	// Steps is the number of optimization steps (one sequence per step).
	Steps int
	// LR is the AdamW learning rate.
	LR float64
	// Seed controls masking/sampling.
	Seed uint64
}

// DefaultOptions is a pre-training budget that makes SFT-vs-pretrain
// comparisons meaningful at repository scale.
func DefaultOptions() Options { return Options{Steps: 600, LR: 3e-3, Seed: 7} }

// MLM pre-trains an encoder with masked-language modelling (BERT's 15%
// masking: 80% [MASK], 10% random token, 10% unchanged) and returns the mean
// loss over the final 10% of steps.
func MLM(m *transformer.Model, tok *tokenizer.Tokenizer, corpus []string, opts Options) float64 {
	if m.Config.Causal {
		panic("pretrain: MLM requires an encoder model")
	}
	if len(corpus) == 0 {
		panic("pretrain: empty corpus")
	}
	rng := tensor.NewRNG(opts.Seed)
	opt := nn.NewAdamW(opts.LR, 0.01)
	ce := nn.NewSoftmaxCrossEntropy()
	params := m.Params()
	return runSteps(opts.Steps, func(step int) float64 {
		ids := tok.Encode(corpus[rng.Intn(len(corpus))], true)
		if len(ids) > m.Config.MaxSeqLen {
			ids = ids[:m.Config.MaxSeqLen]
		}
		input := make([]int, len(ids))
		targets := make([]int, len(ids))
		copy(input, ids)
		for i := range targets {
			targets[i] = -1
		}
		masked := 0
		for i, id := range ids {
			if id == tokenizer.CLS || id == tokenizer.SEP {
				continue
			}
			if rng.Float64() < 0.15 {
				targets[i] = id
				masked++
				switch r := rng.Float64(); {
				case r < 0.8:
					input[i] = tokenizer.MASK
				case r < 0.9:
					input[i] = rng.Intn(tok.VocabSize())
				}
			}
		}
		if masked == 0 && len(ids) > 2 {
			i := 1 + rng.Intn(len(ids)-2)
			targets[i] = ids[i]
			input[i] = tokenizer.MASK
		}
		logits := m.ForwardLM(input, true)
		loss, grad := ce.Loss(logits, targets)
		m.BackwardLM(grad)
		nn.ClipGradNorm(params, 1.0)
		opt.Step(params)
		return loss
	})
}

// CLM pre-trains a decoder with next-token prediction and returns the mean
// loss over the final 10% of steps.
func CLM(m *transformer.Model, tok *tokenizer.Tokenizer, corpus []string, opts Options) float64 {
	if !m.Config.Causal {
		panic("pretrain: CLM requires a decoder model")
	}
	if len(corpus) == 0 {
		panic("pretrain: empty corpus")
	}
	rng := tensor.NewRNG(opts.Seed)
	opt := nn.NewAdamW(opts.LR, 0.01)
	ce := nn.NewSoftmaxCrossEntropy()
	params := m.Params()
	return runSteps(opts.Steps, func(step int) float64 {
		text := corpus[rng.Intn(len(corpus))]
		ids := append([]int{tokenizer.BOS}, tok.Encode(text, false)...)
		ids = append(ids, tokenizer.EOS)
		if len(ids) > m.Config.MaxSeqLen {
			ids = ids[:m.Config.MaxSeqLen]
		}
		if len(ids) < 2 {
			return 0
		}
		logits := m.ForwardLM(ids[:len(ids)-1], true)
		loss, grad := ce.Loss(logits, ids[1:])
		m.BackwardLM(grad)
		nn.ClipGradNorm(params, 1.0)
		opt.Step(params)
		return loss
	})
}

func runSteps(steps int, stepFn func(int) float64) float64 {
	if steps <= 0 {
		panic(fmt.Sprintf("pretrain: non-positive steps %d", steps))
	}
	tailStart := steps * 9 / 10
	var tail float64
	n := 0
	for s := 0; s < steps; s++ {
		loss := stepFn(s)
		if s >= tailStart {
			tail += loss
			n++
		}
	}
	return tail / float64(n)
}
