package pretrain

import (
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/tokenizer"
)

func tinyCorpusOpts() CorpusOptions {
	return CorpusOptions{SentencesPerWorkflow: 30, ICLDocs: 10, ExamplesPerDoc: 3, Seed: 1}
}

func TestBuildCorpusContents(t *testing.T) {
	corpus := BuildCorpus(tinyCorpusOpts())
	if len(corpus) != 3*30+2+10 {
		t.Fatalf("corpus size = %d", len(corpus))
	}
	// No true anomaly labels may leak: plain sentences have no ", normal"
	// suffix, and ICL docs use random rules (checked structurally here).
	sawICL := false
	for _, doc := range corpus {
		if strings.Contains(doc, "### example ###") {
			sawICL = true
			if !strings.Contains(doc, "category :") {
				t.Fatal("ICL doc missing category slot")
			}
		}
	}
	if !sawICL {
		t.Fatal("corpus has no ICL documents")
	}
}

func TestBuildCorpusDeterministic(t *testing.T) {
	a := BuildCorpus(tinyCorpusOpts())
	b := BuildCorpus(tinyCorpusOpts())
	if len(a) != len(b) {
		t.Fatal("corpus not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("corpus not deterministic")
		}
	}
}

func TestBuildTokenizerCoversCorpus(t *testing.T) {
	corpus := BuildCorpus(tinyCorpusOpts())
	tok := BuildTokenizer(corpus)
	for _, doc := range corpus[:20] {
		if r := tok.UnknownRate(doc); r != 0 {
			t.Fatalf("unknown rate %v on own corpus", r)
		}
	}
}

func TestMLMReducesLoss(t *testing.T) {
	corpus := BuildCorpus(tinyCorpusOpts())
	tok := BuildTokenizer(corpus)
	m := models.MustGet("distilbert-base-uncased").Build(tok.VocabSize())
	early := MLM(m, tok, corpus, Options{Steps: 20, LR: 3e-3, Seed: 2})
	late := MLM(m, tok, corpus, Options{Steps: 200, LR: 3e-3, Seed: 3})
	if late >= early {
		t.Fatalf("MLM loss did not improve: %v -> %v", early, late)
	}
}

func TestCLMReducesLoss(t *testing.T) {
	corpus := BuildCorpus(tinyCorpusOpts())
	tok := BuildTokenizer(corpus)
	m := models.MustGet("gpt2").Build(tok.VocabSize())
	early := CLM(m, tok, corpus, Options{Steps: 20, LR: 3e-3, Seed: 2})
	late := CLM(m, tok, corpus, Options{Steps: 200, LR: 3e-3, Seed: 3})
	if late >= early {
		t.Fatalf("CLM loss did not improve: %v -> %v", early, late)
	}
}

func TestMLMRejectsDecoder(t *testing.T) {
	corpus := []string{"a b c"}
	tok := tokenizer.Build(corpus)
	m := models.MustGet("gpt2").Build(tok.VocabSize())
	defer func() {
		if recover() == nil {
			t.Fatal("MLM must reject causal models")
		}
	}()
	MLM(m, tok, corpus, Options{Steps: 1, LR: 1e-3})
}

func TestCLMRejectsEncoder(t *testing.T) {
	corpus := []string{"a b c"}
	tok := tokenizer.Build(corpus)
	m := models.MustGet("distilbert-base-cased").Build(tok.VocabSize())
	defer func() {
		if recover() == nil {
			t.Fatal("CLM must reject encoder models")
		}
	}()
	CLM(m, tok, corpus, Options{Steps: 1, LR: 1e-3})
}
