package prompt

import (
	"strings"
	"testing"
)

func TestTaskDescriptionMentionsAllFeatures(t *testing.T) {
	desc := TaskDescription()
	for _, f := range []string{"wms_delay", "queue_delay", "runtime", "cpu_time"} {
		if !strings.Contains(desc, f) {
			t.Fatalf("task description missing %q", f)
		}
	}
	if !strings.Contains(desc, "normal abnormal") {
		t.Fatal("task description missing category list")
	}
}

func TestZeroShotPrompt(t *testing.T) {
	p := FewShot(nil, "runtime is 5.0")
	if strings.Contains(p, "### example ###") {
		t.Fatal("zero-shot prompt must not contain example header")
	}
	if !strings.HasSuffix(p, "instruct : runtime is 5.0 category :") {
		t.Fatalf("prompt = %q", p)
	}
}

func TestFewShotPromptStructure(t *testing.T) {
	exs := []Example{
		{Sentence: "runtime is 5.0", Label: "normal"},
		{Sentence: "runtime is 900.0", Label: "abnormal"},
	}
	p := FewShot(exs, "runtime is 7.0")
	if !strings.Contains(p, "### example ###") {
		t.Fatal("few-shot prompt missing example header")
	}
	if strings.Count(p, "instruct :") != 3 {
		t.Fatalf("want 3 instruct blocks, got %d", strings.Count(p, "instruct :"))
	}
	// Query comes last and has no label.
	if !strings.HasSuffix(p, "instruct : runtime is 7.0 category :") {
		t.Fatalf("prompt tail = %q", p[len(p)-60:])
	}
	// Examples precede the query.
	if strings.Index(p, "900.0") > strings.Index(p, "7.0") {
		t.Fatal("examples must precede query")
	}
}

func TestDocumentAppendsAnswer(t *testing.T) {
	d := Document(nil, "runtime is 5.0", "normal")
	if !strings.HasSuffix(d, "category : normal") {
		t.Fatalf("document = %q", d)
	}
}

func TestCoTPrompt(t *testing.T) {
	p := CoT(nil, "runtime is 5.0")
	if !strings.HasSuffix(p, CoTSuffix) {
		t.Fatalf("CoT prompt must end with the step-by-step instruction: %q", p)
	}
}
