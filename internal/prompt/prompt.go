// Package prompt renders the in-context-learning prompt templates of
// Figure 3: a task description, optional few-shot examples, and the query
// job, ending with "category :" so a decoder's next token is the predicted
// label. The same templates are used to build the decoders' pre-training
// corpus, so prompt structure is in-distribution at inference time.
package prompt

import (
	"strings"

	"repro/internal/flowbench"
)

// Example is one in-context demonstration.
type Example struct {
	// Sentence is the job's feature sentence (logparse.Sentence).
	Sentence string
	// Label is the demonstrated category word ("normal"/"abnormal").
	Label string
}

// TaskDescription returns the Figure 3 system-prompt text (lower-cased to
// match the tokenizer's normalization).
func TaskDescription() string {
	return "you are a system administration bot . your task is to assess a job description " +
		"with a couple of features into one of the following categories : normal abnormal . " +
		"you will only respond with the category . do not include the word category . " +
		"do not provide explanations or notes . a single job includes " +
		strings.Join(flowbench.FeatureNames, " ")
}

// CoTSuffix is appended to elicit chain-of-thought reasoning (Figure 13):
// the "respond with the category only" instruction is replaced by a
// step-by-step request.
const CoTSuffix = "please think about it step by step ."

// FewShot renders a complete ICL prompt: the task description, the examples
// under an "### example ###" header, and the query, ending with "category :".
// With no examples this is the zero-shot prompt.
func FewShot(examples []Example, query string) string {
	var sb strings.Builder
	sb.WriteString(TaskDescription())
	if len(examples) > 0 {
		sb.WriteString(" ### example ### ")
		for _, ex := range examples {
			sb.WriteString("instruct : ")
			sb.WriteString(ex.Sentence)
			sb.WriteString(" category : ")
			sb.WriteString(ex.Label)
			sb.WriteByte(' ')
		}
	} else {
		sb.WriteByte(' ')
	}
	sb.WriteString("instruct : ")
	sb.WriteString(query)
	sb.WriteString(" category :")
	return sb.String()
}

// FewShotPrefix renders the query-independent part of a FewShot prompt:
// task description, examples, and the final "instruct :" marker. Combined
// with QuerySuffix it reproduces FewShot exactly:
//
//	FewShot(examples, q) == FewShotPrefix(examples) + " " + QuerySuffix(q)
//
// The split lets inference reuse one KV cache of the prefix across many
// queries.
func FewShotPrefix(examples []Example) string {
	full := FewShot(examples, "\x00")
	// The query placeholder appears exactly once; cut just before it.
	idx := strings.Index(full, "\x00")
	return strings.TrimSuffix(full[:idx], " ")
}

// QuerySuffix renders the query-dependent tail of a FewShot prompt.
func QuerySuffix(query string) string {
	return query + " category :"
}

// Document renders a training document for decoder pre-training / LoRA
// fine-tuning: a FewShot prompt followed by the query's answer.
func Document(examples []Example, query, answer string) string {
	return FewShot(examples, query) + " " + answer
}

// CoT renders the chain-of-thought variant of the prompt: same structure,
// but with the step-by-step instruction instead of the category-only
// constraint.
func CoT(examples []Example, query string) string {
	base := FewShot(examples, query)
	return base + " " + CoTSuffix
}
