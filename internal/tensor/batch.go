package tensor

import "fmt"

// Batched-inference kernels.
//
// A batch of B sequences with lengths T₀..T_{B-1} over a d-wide feature space
// is stored as one packed row-major matrix of shape [ΣTᵢ, d] plus an offsets
// slice of length B+1 (sequence i owns rows [offsets[i], offsets[i+1])). All
// position-wise operations (linear layers, layer norm, activations) then run
// as a single kernel call over the packed matrix, which is where batched
// inference gets its throughput: one large matmul amortizes goroutine fan-out
// and streams the weight matrix through cache once instead of B times.

// Offsets builds the B+1 prefix-sum offsets slice for sequence lengths lens.
func Offsets(lens []int) []int {
	out := make([]int, len(lens)+1)
	for i, n := range lens {
		if n < 0 {
			panic(fmt.Sprintf("tensor: negative segment length %d", n))
		}
		out[i+1] = out[i] + n
	}
	return out
}

// RowView returns a matrix aliasing rows [lo, hi) of m — no data is copied,
// so writes through the view mutate m. Used to address one sequence of a
// packed batch.
func (m *Matrix) RowView(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic(fmt.Sprintf("tensor: row view [%d,%d) of %d rows", lo, hi, m.Rows))
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// PackRows stacks matrices with a shared column count into one packed matrix,
// returning it and the segment offsets. The data is copied.
func PackRows(mats []*Matrix) (*Matrix, []int) {
	if len(mats) == 0 {
		return New(0, 0), []int{0}
	}
	cols := mats[0].Cols
	lens := make([]int, len(mats))
	for i, m := range mats {
		if m.Cols != cols {
			panic(fmt.Sprintf("tensor: pack column mismatch %d vs %d", m.Cols, cols))
		}
		lens[i] = m.Rows
	}
	offsets := Offsets(lens)
	packed := New(offsets[len(mats)], cols)
	for i, m := range mats {
		copy(packed.Data[offsets[i]*cols:], m.Data)
	}
	return packed, offsets
}

// UnpackRows splits a packed matrix back into per-segment views (aliasing,
// not copying).
func UnpackRows(packed *Matrix, offsets []int) []*Matrix {
	out := make([]*Matrix, len(offsets)-1)
	for i := range out {
		out[i] = packed.RowView(offsets[i], offsets[i+1])
	}
	return out
}

// matMulBlockK is the panel height (rows of b) of the cache-blocked matmul:
// a 128-row panel of a 128-wide float32 weight matrix is 64 KiB, sized to
// stay resident in L1/L2 while every row of the packed batch streams against
// it.
const matMulBlockK = 128

// MatMulBlocked computes a×b into dst (allocated if nil) with a k-panel
// blocked kernel: b is processed in matMulBlockK-row panels that stay hot in
// cache across all rows of a. For the tall packed matrices of batched
// inference ([ΣTᵢ, d] against [d, d] weights) this is the cache-friendly
// schedule; results are bitwise identical to MatMul because each output
// element still accumulates over k in increasing order.
func MatMulBlocked(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == nil {
		dst = New(a.Rows, b.Cols)
	} else {
		if dst.Rows != a.Rows || dst.Cols != b.Cols {
			panic(fmt.Sprintf("tensor: matmul dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
		}
		if dst == a || dst == b {
			panic("tensor: matmul dst must not alias an input")
		}
		dst.Zero()
	}
	n, k, p := a.Rows, a.Cols, b.Cols
	if !parallelWorth(n, k*p) {
		matMulBlockedRows(dst, a, b, 0, n)
		return dst
	}
	parallelRows(n, k*p, func(lo, hi int) {
		matMulBlockedRows(dst, a, b, lo, hi)
	})
	return dst
}

func matMulBlockedRows(dst, a, b *Matrix, lo, hi int) {
	k, p := a.Cols, b.Cols
	for k0 := 0; k0 < k; k0 += matMulBlockK {
		k1 := k0 + matMulBlockK
		if k1 > k {
			k1 = k
		}
		for i := lo; i < hi; i++ {
			ar := a.Data[i*k : (i+1)*k]
			dr := dst.Data[i*p : (i+1)*p]
			for kk := k0; kk < k1; kk++ {
				av := ar[kk]
				br := b.Data[kk*p : (kk+1)*p]
				for j, bv := range br {
					dr[j] += av * bv
				}
			}
		}
	}
}
