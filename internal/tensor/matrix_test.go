package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewFromPanicsOnBadLength(t *testing.T) {
	defer expectPanic(t, "NewFrom with wrong length")
	NewFrom(2, 3, []float32{1, 2})
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row(1)[2] = %v, want 7", row[2])
	}
	row[0] = 3 // Row aliases the backing array.
	if m.At(1, 0) != 3 {
		t.Fatal("Row must alias backing data")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewFrom(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone must not share data")
	}
}

func TestTranspose(t *testing.T) {
	m := NewFrom(2, 3, []float32{1, 2, 3, 4, 5, 6})
	got := m.T()
	want := NewFrom(3, 2, []float32{1, 4, 2, 5, 3, 6})
	if !got.Equal(want) {
		t.Fatalf("T() = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := NewFrom(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := NewFrom(3, 2, []float32{7, 8, 9, 10, 11, 12})
	got := MatMul(nil, a, b)
	want := NewFrom(2, 2, []float32{58, 64, 139, 154})
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := New(5, 5)
	Gaussian(a, 1, rng)
	eye := New(5, 5)
	for i := 0; i < 5; i++ {
		eye.Set(i, i, 1)
	}
	if !MatMul(nil, a, eye).AllClose(a, 1e-6) {
		t.Fatal("A×I must equal A")
	}
	if !MatMul(nil, eye, a).AllClose(a, 1e-6) {
		t.Fatal("I×A must equal A")
	}
}

func TestMatMulDstReuse(t *testing.T) {
	a := NewFrom(2, 2, []float32{1, 2, 3, 4})
	b := NewFrom(2, 2, []float32{5, 6, 7, 8})
	dst := New(2, 2)
	dst.Fill(42) // stale contents must be overwritten
	MatMul(dst, a, b)
	want := NewFrom(2, 2, []float32{19, 22, 43, 50})
	if !dst.Equal(want) {
		t.Fatalf("MatMul dst = %v, want %v", dst.Data, want.Data)
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "matmul shape mismatch")
	MatMul(nil, New(2, 3), New(4, 2))
}

func TestMatMulAliasPanics(t *testing.T) {
	defer expectPanic(t, "matmul alias")
	a := New(2, 2)
	MatMul(a, a, New(2, 2))
}

// TestMatMulTMatchesExplicitTranspose cross-checks the fused kernels against
// the naive compose-with-T reference on random inputs.
func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(7)
	a := New(4, 6)
	b := New(5, 6)
	Gaussian(a, 1, rng)
	Gaussian(b, 1, rng)
	got := MatMulT(nil, a, b)
	want := MatMul(nil, a, b.T())
	if !got.AllClose(want, 1e-4) {
		t.Fatal("MatMulT disagrees with explicit transpose")
	}
}

func TestTMatMulMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(9)
	a := New(6, 4)
	b := New(6, 5)
	Gaussian(a, 1, rng)
	Gaussian(b, 1, rng)
	got := TMatMul(nil, a, b)
	want := MatMul(nil, a.T(), b)
	if !got.AllClose(want, 1e-4) {
		t.Fatal("TMatMul disagrees with explicit transpose")
	}
}

// TestMatMulParallelMatchesSerial checks that the parallel path (large
// matrices) agrees with small-matrix results composed blockwise.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := NewRNG(3)
	const n = 97 // odd size to exercise ragged chunking
	a := New(n, n)
	b := New(n, n)
	Gaussian(a, 1, rng)
	Gaussian(b, 1, rng)
	got := MatMul(nil, a, b)
	// Serial reference.
	want := New(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			av := a.At(i, k)
			for j := 0; j < n; j++ {
				want.Data[i*n+j] += av * b.At(k, j)
			}
		}
	}
	if !got.AllClose(want, 1e-3) {
		t.Fatal("parallel matmul disagrees with serial reference")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := NewFrom(1, 3, []float32{1, 2, 3})
	b := NewFrom(1, 3, []float32{4, 5, 6})
	if got := Add(nil, a, b); !got.Equal(NewFrom(1, 3, []float32{5, 7, 9})) {
		t.Fatalf("Add = %v", got.Data)
	}
	if got := Sub(nil, a, b); !got.Equal(NewFrom(1, 3, []float32{-3, -3, -3})) {
		t.Fatalf("Sub = %v", got.Data)
	}
	if got := Mul(nil, a, b); !got.Equal(NewFrom(1, 3, []float32{4, 10, 18})) {
		t.Fatalf("Mul = %v", got.Data)
	}
	if got := Scale(nil, a, 2); !got.Equal(NewFrom(1, 3, []float32{2, 4, 6})) {
		t.Fatalf("Scale = %v", got.Data)
	}
}

func TestAddScaled(t *testing.T) {
	a := NewFrom(1, 2, []float32{1, 2})
	b := NewFrom(1, 2, []float32{10, 20})
	AddScaled(a, b, 0.5)
	if !a.Equal(NewFrom(1, 2, []float32{6, 12})) {
		t.Fatalf("AddScaled = %v", a.Data)
	}
}

func TestAddRowVec(t *testing.T) {
	a := NewFrom(2, 2, []float32{1, 2, 3, 4})
	got := AddRowVec(nil, a, []float32{10, 20})
	want := NewFrom(2, 2, []float32{11, 22, 13, 24})
	if !got.Equal(want) {
		t.Fatalf("AddRowVec = %v", got.Data)
	}
}

func TestColSums(t *testing.T) {
	m := NewFrom(2, 3, []float32{1, 2, 3, 4, 5, 6})
	got := ColSums(m)
	want := []float32{5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ColSums = %v, want %v", got, want)
		}
	}
}

func TestRowSoftmax(t *testing.T) {
	m := NewFrom(2, 3, []float32{1, 2, 3, 1000, 1000, 1000})
	RowSoftmax(m)
	for i := 0; i < 2; i++ {
		var s float64
		for _, v := range m.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d softmax sums to %v", i, s)
		}
	}
	// Monotone: bigger logit ⇒ bigger probability.
	if !(m.At(0, 2) > m.At(0, 1) && m.At(0, 1) > m.At(0, 0)) {
		t.Fatal("softmax is not monotone")
	}
	// Large equal logits must not overflow to NaN.
	if m.At(1, 0) != m.At(1, 1) {
		t.Fatal("equal logits must map to equal probabilities")
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float32{1, 5, 3}); got != 1 {
		t.Fatalf("ArgMax = %d, want 1", got)
	}
	if got := ArgMax([]float32{2, 2}); got != 0 {
		t.Fatalf("ArgMax tie = %d, want 0 (first)", got)
	}
}

func TestNorm2SumMean(t *testing.T) {
	m := NewFrom(1, 2, []float32{3, 4})
	if got := Norm2(m); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Sum(m); got != 7 {
		t.Fatalf("Sum = %v, want 7", got)
	}
	if got := Mean(m); got != 3.5 {
		t.Fatalf("Mean = %v, want 3.5", got)
	}
	if got := Mean(New(0, 0)); got != 0 {
		t.Fatalf("Mean of empty = %v, want 0", got)
	}
}

// Property: matmul distributes over addition, (A+B)C = AC + BC.
func TestMatMulDistributesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 2 + rng.Intn(6)
		k := 2 + rng.Intn(6)
		p := 2 + rng.Intn(6)
		a1, a2, b := New(n, k), New(n, k), New(k, p)
		Gaussian(a1, 1, rng)
		Gaussian(a2, 1, rng)
		Gaussian(b, 1, rng)
		left := MatMul(nil, Add(nil, a1, a2), b)
		right := Add(nil, MatMul(nil, a1, b), MatMul(nil, a2, b))
		return left.AllClose(right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m := New(1+rng.Intn(8), 1+rng.Intn(8))
		Gaussian(m, 1, rng)
		return m.T().T().Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax rows sum to one for arbitrary finite inputs.
func TestSoftmaxSumsToOneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m := New(1+rng.Intn(4), 1+rng.Intn(10))
		Gaussian(m, 10, rng)
		RowSoftmax(m)
		for i := 0; i < m.Rows; i++ {
			var s float64
			for _, v := range m.Row(i) {
				s += float64(v)
			}
			if math.Abs(s-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func expectPanic(t *testing.T, name string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("%s: expected panic", name)
	}
}
