package tensor

import "sync"

// Workspace is an arena of reusable scratch buffers for the steady-state
// inference path. Layers request temporaries with Get/GetZeroed/GetInts/
// RowView; the owner calls Reset between requests, which rewinds the arena so
// the same buffers (headers and backing slices) are handed out again. After a
// warm-up call per batch shape, a forward pass through the whole block stack
// performs zero heap allocations.
//
// A Workspace is NOT safe for concurrent use: it belongs to one goroutine at
// a time (a core.Server inference worker owns one for its lifetime; one-shot
// callers borrow one from the package pool via GetWorkspace/PutWorkspace).
// Buffers returned by Get remain valid until the next Reset — never retain
// one past that point; copy results that must outlive the workspace.
//
// A nil *Workspace is valid everywhere one is accepted and degrades to plain
// allocation, so cold paths can pass nil instead of threading an arena.
type Workspace struct {
	bufs  []*Matrix
	next  int
	views []*Matrix
	vnext int
	ints  [][]int
	inext int
	bytes [][]byte
	bnext int
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Get returns a rows×cols scratch matrix whose contents are unspecified
// (kernels that assign or zero their destination — every MatMul* variant —
// can use it directly; accumulating callers want GetZeroed).
func (w *Workspace) Get(rows, cols int) *Matrix {
	if w == nil {
		return New(rows, cols)
	}
	if w.next == len(w.bufs) {
		w.bufs = append(w.bufs, &Matrix{})
	}
	m := w.bufs[w.next]
	w.next++
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float32, n)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
	return m
}

// GetZeroed returns a zeroed rows×cols scratch matrix.
func (w *Workspace) GetZeroed(rows, cols int) *Matrix {
	if w == nil {
		return New(rows, cols)
	}
	m := w.Get(rows, cols)
	m.Zero()
	return m
}

// GetInts returns a length-n int scratch slice with unspecified contents.
func (w *Workspace) GetInts(n int) []int {
	if w == nil {
		return make([]int, n)
	}
	if w.inext == len(w.ints) {
		w.ints = append(w.ints, nil)
	}
	s := w.ints[w.inext]
	if cap(s) < n {
		s = make([]int, n)
		w.ints[w.inext] = s
	}
	w.inext++
	return s[:n]
}

// GetBytes returns a length-n byte scratch slice with unspecified contents.
// The int8 inference path draws its quantized-activation buffers from here.
func (w *Workspace) GetBytes(n int) []byte {
	if w == nil {
		return make([]byte, n)
	}
	if w.bnext == len(w.bytes) {
		w.bytes = append(w.bytes, nil)
	}
	s := w.bytes[w.bnext]
	if cap(s) < n {
		s = make([]byte, n)
		w.bytes[w.bnext] = s
	}
	w.bnext++
	return s[:n]
}

// RowView returns a matrix header aliasing rows [lo, hi) of m, like
// Matrix.RowView but with the header itself drawn from the arena so repeated
// per-sequence views allocate nothing.
func (w *Workspace) RowView(m *Matrix, lo, hi int) *Matrix {
	if w == nil {
		return m.RowView(lo, hi)
	}
	if lo < 0 || hi < lo || hi > m.Rows {
		panic("tensor: workspace row view out of range")
	}
	if w.vnext == len(w.views) {
		w.views = append(w.views, &Matrix{})
	}
	v := w.views[w.vnext]
	w.vnext++
	v.Rows, v.Cols, v.Data = hi-lo, m.Cols, m.Data[lo*m.Cols:hi*m.Cols]
	return v
}

// ShapedView returns a rows×cols matrix header over the first rows*cols
// elements of m's backing slice, with the header drawn from the arena. It is
// how one max-sized scratch buffer serves a sequence of smaller shapes (the
// attention kernel reuses a single score buffer across every sequence of a
// batch): the data is shared, only the shape differs. m must hold at least
// rows*cols elements.
func (w *Workspace) ShapedView(m *Matrix, rows, cols int) *Matrix {
	n := rows * cols
	if n > len(m.Data) {
		panic("tensor: workspace shaped view larger than its buffer")
	}
	if w == nil {
		return NewFrom(rows, cols, m.Data[:n])
	}
	if w.vnext == len(w.views) {
		w.views = append(w.views, &Matrix{})
	}
	v := w.views[w.vnext]
	w.vnext++
	v.Rows, v.Cols, v.Data = rows, cols, m.Data[:n]
	return v
}

// Reset rewinds the arena: every buffer handed out since the previous Reset
// is considered free and will be reused by subsequent Gets. Capacity is
// retained.
func (w *Workspace) Reset() {
	if w == nil {
		return
	}
	w.next, w.vnext, w.inext, w.bnext = 0, 0, 0, 0
}

var workspacePool = sync.Pool{New: func() any { return &Workspace{} }}

// GetWorkspace borrows a workspace from the package pool. Pair it with
// PutWorkspace (typically via defer); long-lived owners such as server
// workers may hold one for many Reset cycles before returning it.
func GetWorkspace() *Workspace { return workspacePool.Get().(*Workspace) }

// PutWorkspace resets w and returns it to the pool. w must not be used after.
func PutWorkspace(w *Workspace) {
	if w == nil {
		return
	}
	w.Reset()
	workspacePool.Put(w)
}
