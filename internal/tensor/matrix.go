// Package tensor provides the dense linear-algebra substrate used by every
// model in this repository: a float32 row-major matrix type, parallel blocked
// matrix multiplication, fused element-wise kernels, and reductions.
//
// The package is deliberately small and allocation-conscious: all training
// loops in internal/nn and internal/transformer run on top of these kernels,
// so matmul throughput dominates end-to-end experiment time. Parallelism
// follows the standard Go worker-pool idiom — work is split into row blocks
// and fanned out over a bounded set of goroutines sized by GOMAXPROCS.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major float32 matrix. The zero value is an empty
// matrix; use New or NewFrom to construct one with a shape.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewFrom wraps data as a rows×cols matrix without copying. len(data) must
// equal rows*cols.
func NewFrom(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a slice aliasing row i.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Equal reports whether m and other have the same shape and elements.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != other.Data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether m and other have the same shape and all elements
// within tol of each other.
func (m *Matrix) AllClose(other *Matrix, tol float32) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - other.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// String renders a small matrix for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// transposeBlock is the tile edge of the blocked transpose: a 32×32 float32
// tile is 4 KiB, so the read tile and the write tile together stay resident
// in L1 while the tile is turned.
const transposeBlock = 32

// T returns the transpose of m as a new matrix. The copy is blocked into
// square tiles so both the row-major reads and the (inherently strided)
// transposed writes hit each cache line transposeBlock times instead of once.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i0 := 0; i0 < m.Rows; i0 += transposeBlock {
		i1 := min(i0+transposeBlock, m.Rows)
		for j0 := 0; j0 < m.Cols; j0 += transposeBlock {
			j1 := min(j0+transposeBlock, m.Cols)
			for i := i0; i < i1; i++ {
				row := m.Data[i*m.Cols+j0 : i*m.Cols+j1]
				for j, v := range row {
					out.Data[(j0+j)*m.Rows+i] = v
				}
			}
		}
	}
	return out
}

// parallelThreshold is the minimum amount of scalar work below which kernels
// stay single-threaded; goroutine fan-out costs more than it saves on tiny
// matrices.
const parallelThreshold = 16 * 1024

// parallelWorth reports whether rows×workPerRow scalar operations are enough
// work to amortize goroutine fan-out. Hot-path kernels consult it before
// constructing their parallel closure: a func literal referenced by a `go`
// statement is forced onto the heap, so allocation-free serial fast paths
// must branch before the literal is evaluated.
func parallelWorth(rows, workPerRow int) bool {
	return rows*workPerRow >= parallelThreshold && rows > 1 && runtime.GOMAXPROCS(0) > 1
}

// parallelRows fans fn out over row ranges [lo,hi) using up to GOMAXPROCS
// workers. fn must be safe to call concurrently on disjoint ranges.
func parallelRows(rows, workPerRow int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if rows*workPerRow < parallelThreshold || workers <= 1 || rows <= 1 {
		fn(0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul computes a×b and stores the result into dst, returning dst. If dst
// is nil a new matrix is allocated. Panics if shapes are incompatible.
//
// The kernel is an i-k-j loop with a branch-free inner j loop the compiler
// can vectorize, parallelized over blocks of rows of a. Inputs with mostly
// zero rows should use MatMulOneHotRows, which keeps the skip-zero branch.
func MatMul(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == nil {
		dst = New(a.Rows, b.Cols)
	} else {
		if dst.Rows != a.Rows || dst.Cols != b.Cols {
			panic(fmt.Sprintf("tensor: matmul dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
		}
		if dst == a || dst == b {
			panic("tensor: matmul dst must not alias an input")
		}
		dst.Zero()
	}
	n, k, p := a.Rows, a.Cols, b.Cols
	parallelRows(n, k*p, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Data[i*k : (i+1)*k]
			dr := dst.Data[i*p : (i+1)*p]
			for kk, av := range ar {
				br := b.Data[kk*p : (kk+1)*p]
				for j, bv := range br {
					dr[j] += av * bv
				}
			}
		}
	})
	return dst
}

// MatMulT computes a×bᵀ without materializing the transpose, storing into
// dst (allocated if nil). a is n×k, b is p×k, result is n×p.
func MatMulT(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulT shape mismatch %dx%d × (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == nil {
		dst = New(a.Rows, b.Rows)
	} else if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulT dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	n, k, p := a.Rows, a.Cols, b.Rows
	parallelRows(n, k*p, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Data[i*k : (i+1)*k]
			dr := dst.Data[i*p : (i+1)*p]
			for j := 0; j < p; j++ {
				// dotUnrolled4 keeps this kernel bitwise identical to its
				// strided twin (MatMulTStrided), which the head-window tests
				// pin; the four-way split also pipelines the add chain.
				dr[j] = dotUnrolled4(ar, b.Data[j*k:(j+1)*k])
			}
		}
	})
	return dst
}

// TMatMul computes aᵀ×b without materializing the transpose, storing into
// dst (allocated if nil). a is k×n, b is k×p, result is n×p. Used by linear
// layer weight gradients (dW = xᵀ·dy).
func TMatMul(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: tmatmul shape mismatch (%dx%d)ᵀ × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == nil {
		dst = New(a.Cols, b.Cols)
	} else {
		if dst.Rows != a.Cols || dst.Cols != b.Cols {
			panic(fmt.Sprintf("tensor: tmatmul dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
		}
		dst.Zero()
	}
	k, n, p := a.Rows, a.Cols, b.Cols
	// Parallelize over output rows (columns of a). Each worker owns a
	// disjoint slice of dst rows, so no synchronization is needed.
	parallelRows(n, k*p, func(lo, hi int) {
		for kk := 0; kk < k; kk++ {
			ar := a.Data[kk*n : (kk+1)*n]
			br := b.Data[kk*p : (kk+1)*p]
			for i := lo; i < hi; i++ {
				av := ar[i]
				dr := dst.Data[i*p : (i+1)*p]
				for j, bv := range br {
					dr[j] += av * bv
				}
			}
		}
	})
	return dst
}

// Add computes a+b element-wise into dst (allocated if nil).
func Add(dst, a, b *Matrix) *Matrix {
	checkSameShape("add", a, b)
	dst = ensureLike(dst, a)
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
	return dst
}

// Sub computes a-b element-wise into dst (allocated if nil).
func Sub(dst, a, b *Matrix) *Matrix {
	checkSameShape("sub", a, b)
	dst = ensureLike(dst, a)
	for i, v := range a.Data {
		dst.Data[i] = v - b.Data[i]
	}
	return dst
}

// Mul computes the Hadamard product a⊙b into dst (allocated if nil).
func Mul(dst, a, b *Matrix) *Matrix {
	checkSameShape("mul", a, b)
	dst = ensureLike(dst, a)
	for i, v := range a.Data {
		dst.Data[i] = v * b.Data[i]
	}
	return dst
}

// Scale multiplies every element of a by s into dst (allocated if nil).
func Scale(dst, a *Matrix, s float32) *Matrix {
	dst = ensureLike(dst, a)
	for i, v := range a.Data {
		dst.Data[i] = v * s
	}
	return dst
}

// AddScaled computes dst += s*a in place. dst and a must share a shape.
func AddScaled(dst, a *Matrix, s float32) {
	checkSameShape("addscaled", dst, a)
	for i, v := range a.Data {
		dst.Data[i] += s * v
	}
}

// AddRowVec adds the 1×cols vector v to every row of a, into dst.
func AddRowVec(dst, a *Matrix, v []float32) *Matrix {
	if len(v) != a.Cols {
		panic(fmt.Sprintf("tensor: addrowvec length %d, want %d", len(v), a.Cols))
	}
	dst = ensureLike(dst, a)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		for j, x := range ar {
			dr[j] = x + v[j]
		}
	}
	return dst
}

// ColSums returns the per-column sums of m as a length-Cols slice. Used for
// bias gradients.
func ColSums(m *Matrix) []float32 {
	out := make([]float32, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// RowSoftmax applies a numerically stable softmax to every row of m in place.
func RowSoftmax(m *Matrix) {
	parallelRows(m.Rows, m.Cols*4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			softmaxInPlace(row)
		}
	})
}

func softmaxInPlace(row []float32) {
	maxv := row[0]
	for _, v := range row[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float32
	for j, v := range row {
		e := float32(math.Exp(float64(v - maxv)))
		row[j] = e
		sum += e
	}
	inv := 1 / sum
	for j := range row {
		row[j] *= inv
	}
}

// Softmax applies a numerically stable softmax to a single vector in place.
func Softmax(v []float32) { softmaxInPlace(v) }

// Norm2 returns the Frobenius norm of m.
func Norm2(m *Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements of m.
func Sum(m *Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the mean of all elements of m, or 0 for an empty matrix.
func Mean(m *Matrix) float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return Sum(m) / float64(len(m.Data))
}

// ArgMax returns the index of the largest element of v, breaking ties toward
// the lowest index. Panics on an empty slice.
func ArgMax(v []float32) int {
	best, bi := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, bi = x, i+1
		}
	}
	return bi
}

func ensureLike(dst, a *Matrix) *Matrix {
	if dst == nil {
		return New(a.Rows, a.Cols)
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, a.Cols))
	}
	return dst
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
