package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield identical streams")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(1)
	s := r.Split()
	// The split stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 50; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream collides with parent %d/50 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer expectPanic(t, "Intn(0)")
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.08 {
		t.Fatalf("normal variance = %v, want ≈1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(17)
	idx := []int{1, 2, 3, 4, 5}
	r.Shuffle(idx)
	sum := 0
	for _, v := range idx {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("shuffle lost elements: %v", idx)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(19)
	for i := 0; i < 1000; i++ {
		if r.LogNormal(1, 0.5) <= 0 {
			t.Fatal("lognormal must be positive")
		}
	}
}

func TestGaussianFill(t *testing.T) {
	m := New(100, 100)
	Gaussian(m, 2, NewRNG(23))
	var sumsq float64
	for _, v := range m.Data {
		sumsq += float64(v) * float64(v)
	}
	std := math.Sqrt(sumsq / float64(len(m.Data)))
	if math.Abs(std-2) > 0.1 {
		t.Fatalf("Gaussian std = %v, want ≈2", std)
	}
}

func TestXavierInitBounds(t *testing.T) {
	m := New(10, 20)
	XavierInit(m, 10, 20, NewRNG(29))
	limit := float32(math.Sqrt(6.0 / 30.0))
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Xavier sample %v outside ±%v", v, limit)
		}
	}
}
