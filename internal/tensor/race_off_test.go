//go:build !race

package tensor

// raceEnabled gates allocation-regression assertions: the race runtime
// instruments allocations, so alloc counts are only meaningful without it.
const raceEnabled = false
