package tensor

import (
	"math"
	"testing"
)

// refMatMulQ8 is a naive reference of the exact arithmetic MatMulQ8 promises:
// quantize the activation row, quantize the weights (already done by q), take
// integer dot products per scale block, and scale back per block in float32.
func refMatMulQ8(x *Matrix, q *QInt8Matrix) *Matrix {
	codes := q.Codes()
	nb := q.Blocks()
	out := New(x.Rows, q.Out)
	for i := 0; i < x.Rows; i++ {
		xrow := x.Row(i)
		var absmax float32
		for _, v := range xrow {
			if v < 0 {
				v = -v
			}
			if v > absmax {
				absmax = v
			}
		}
		var inv, sxi float32
		if absmax > 0 {
			inv = 127 / absmax
			sxi = absmax / 127
		}
		xq := make([]int32, q.In)
		for k, v := range xrow {
			xq[k] = roundToInt32(v * inv)
		}
		for j := 0; j < q.Out; j++ {
			crow := codes[j*q.In : (j+1)*q.In]
			var f float32
			for b := 0; b < nb; b++ {
				lo, hi := b*q.Block, min(b*q.Block+q.Block, q.In)
				var s int32
				for k := lo; k < hi; k++ {
					s += xq[k] * int32(crow[k])
				}
				f += float32(s) * q.Scales[j*nb+b]
			}
			out.Set(i, j, f*sxi)
		}
	}
	return out
}

func randomMatrix(rows, cols int, seed uint64, scale float32) *Matrix {
	m := New(rows, cols)
	rng := NewRNG(seed)
	Gaussian(m, float64(scale), rng)
	return m
}

// TestMatMulQ8MatchesReference pins the packed SWAR kernel to the naive
// integer reference bitwise, across shapes that exercise every edge: rows/1,
// Out % 3 remainders, In not a multiple of the block or of the 16-step flush,
// and block lengths from sub-flush to whole-row.
func TestMatMulQ8MatchesReference(t *testing.T) {
	shapes := []struct{ m, in, out, block int }{
		{1, 16, 3, 16},
		{3, 64, 96, 64},
		{5, 96, 40, 64},  // Out % 3 == 1
		{4, 80, 80, 64},  // Out % 3 == 2, In % 16 == 0 but In % 64 != 0
		{2, 50, 7, 17},   // nothing divides anything
		{7, 33, 1, 8},    // single output channel
		{1, 192, 2, 256}, // block larger than In (per-channel scales)
	}
	for _, s := range shapes {
		x := randomMatrix(s.m, s.in, uint64(s.m*1000+s.in), 1)
		w := randomMatrix(s.in, s.out, uint64(s.out*7+3), 0.5)
		q := QuantizeInt8(w, s.block)
		got := MatMulQ8(nil, x, q, nil)
		want := refMatMulQ8(x, q)
		if !got.Equal(want) {
			t.Fatalf("shape %+v: MatMulQ8 differs from integer reference", s)
		}
	}
}

// TestMatMulQ8ApproximatesFP32 bounds the end-to-end quantization error of
// one W8A8 matmul against the fp32 kernel: per-element error should stay
// within a small multiple of the combined quantization steps.
func TestMatMulQ8ApproximatesFP32(t *testing.T) {
	x := randomMatrix(16, 96, 1, 1)
	w := randomMatrix(96, 96, 2, 0.5)
	q := QuantizeInt8(w, QInt8Block)
	got := MatMulQ8(nil, x, q, nil)
	want := MatMul(nil, x, w)
	var maxErr, maxAbs float64
	for i, v := range want.Data {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
		if e := math.Abs(float64(v - got.Data[i])); e > maxErr {
			maxErr = e
		}
	}
	// ~1% of the output range is generous for 96-long int8 dot products; a
	// packing or correction bug is off by orders of magnitude, not percent.
	if maxErr > 0.01*maxAbs {
		t.Fatalf("int8 matmul max error %.5f vs output max %.3f", maxErr, maxAbs)
	}
}

// TestMatMulQ8Deterministic pins that the result is identical for every row
// partitioning (integer accumulation has no order sensitivity), including
// with and without a workspace and with a preallocated destination.
func TestMatMulQ8Deterministic(t *testing.T) {
	x := randomMatrix(64, 128, 3, 1)
	w := randomMatrix(128, 96, 4, 1)
	q := QuantizeInt8(w, QInt8Block)
	base := MatMulQ8(nil, x, q, nil)
	ws := NewWorkspace()
	for rep := 0; rep < 3; rep++ {
		ws.Reset()
		got := MatMulQ8(ws.Get(64, 96), x, q, ws)
		if !got.Equal(base) {
			t.Fatal("workspace-backed MatMulQ8 diverged from allocation path")
		}
	}
}

// TestQInt8CodesRoundTrip pins serialization: Codes + Scales rebuild an
// identical compute form.
func TestQInt8CodesRoundTrip(t *testing.T) {
	w := randomMatrix(80, 41, 9, 1)
	q := QuantizeInt8(w, 32)
	rt, err := NewQInt8FromCodes(q.In, q.Out, q.Block, q.Codes(), q.Scales)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Packed) != len(q.Packed) {
		t.Fatalf("packed length %d vs %d", len(rt.Packed), len(q.Packed))
	}
	for i, p := range q.Packed {
		if rt.Packed[i] != p {
			t.Fatalf("packed word %d differs after round trip", i)
		}
	}
	for i, a := range q.BlockAdj {
		if rt.BlockAdj[i] != a {
			t.Fatalf("block adjustment %d differs after round trip", i)
		}
	}
	x := randomMatrix(4, 80, 10, 1)
	if !MatMulQ8(nil, x, rt, nil).Equal(MatMulQ8(nil, x, q, nil)) {
		t.Fatal("round-tripped matrix computes different results")
	}
}

// TestQInt8FromCodesValidation pins the error paths: wrong lengths and the
// unused -128 code are rejected rather than silently mis-packed.
func TestQInt8FromCodesValidation(t *testing.T) {
	w := randomMatrix(8, 3, 11, 1)
	q := QuantizeInt8(w, 8)
	if _, err := NewQInt8FromCodes(8, 3, 8, q.Codes()[:10], q.Scales); err == nil {
		t.Fatal("short codes accepted")
	}
	if _, err := NewQInt8FromCodes(8, 3, 8, q.Codes(), q.Scales[:1]); err == nil {
		t.Fatal("short scales accepted")
	}
	bad := q.Codes()
	bad[0] = -128
	if _, err := NewQInt8FromCodes(8, 3, 8, bad, q.Scales); err == nil {
		t.Fatal("-128 code accepted")
	}
	if _, err := NewQInt8FromCodes(0, 3, 8, nil, nil); err == nil {
		t.Fatal("zero dimension accepted")
	}
}

// TestQInt8Dequantize pins that dequantization inverts the codes exactly
// (code · scale per element) and that quantization error is bounded by half a
// scale step per element.
func TestQInt8Dequantize(t *testing.T) {
	w := randomMatrix(96, 40, 12, 1)
	q := QuantizeInt8(w, QInt8Block)
	deq := q.Dequantize()
	nb := q.Blocks()
	for k := 0; k < q.In; k++ {
		for j := 0; j < q.Out; j++ {
			step := q.Scales[j*nb+k/q.Block]
			diff := math.Abs(float64(w.At(k, j) - deq.At(k, j)))
			if diff > float64(step)/2+1e-6 {
				t.Fatalf("dequantized [%d,%d] off by %.6f, step %.6f", k, j, diff, step)
			}
		}
	}
}

// TestQInt8ZeroInputs pins the degenerate cases: an all-zero activation row
// and an all-zero weight block both produce exact zeros.
func TestQInt8ZeroInputs(t *testing.T) {
	x := New(2, 64) // row 0 all zero
	for k := 0; k < 64; k++ {
		x.Set(1, k, float32(k%7)-3)
	}
	w := randomMatrix(64, 6, 13, 1)
	for k := 0; k < 64; k++ {
		w.Set(k, 2, 0) // channel 2 all zero
	}
	q := QuantizeInt8(w, 16)
	got := MatMulQ8(nil, x, q, nil)
	for j := 0; j < 6; j++ {
		if got.At(0, j) != 0 {
			t.Fatalf("zero activation row produced %v at column %d", got.At(0, j), j)
		}
	}
	if got.At(1, 2) != 0 {
		t.Fatalf("zero weight channel produced %v", got.At(1, 2))
	}
}

// TestMatMulQ8ShapePanics pins the dimension checks.
func TestMatMulQ8ShapePanics(t *testing.T) {
	w := randomMatrix(8, 3, 14, 1)
	q := QuantizeInt8(w, 8)
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("mismatched inner", func() { MatMulQ8(nil, New(2, 9), q, nil) })
	assertPanics("bad dst", func() { MatMulQ8(New(2, 2), New(2, 8), q, nil) })
}

// TestMatMulQ8Allocations pins the int8 kernel's zero-allocation steady
// state on a warmed workspace, for both the single-row decode shape and a
// small packed batch (shapes chosen under the parallel threshold so the
// count is machine-independent: the serial path allocates nothing, ever).
func TestMatMulQ8Allocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	w := randomMatrix(96, 48, 21, 1)
	q := QuantizeInt8(w, QInt8Block)
	decode := randomMatrix(1, 96, 22, 1)
	batch := randomMatrix(3, 96, 23, 1)
	ws := NewWorkspace()
	for _, x := range []*Matrix{decode, batch} {
		ws.Reset()
		MatMulQ8(ws.Get(x.Rows, q.Out), x, q, ws) // warm the arena
		allocs := testing.AllocsPerRun(100, func() {
			ws.Reset()
			MatMulQ8(ws.Get(x.Rows, q.Out), x, q, ws)
		})
		if allocs != 0 {
			t.Fatalf("MatMulQ8 on %d rows allocates %v times per op, want 0", x.Rows, allocs)
		}
	}
}

// BenchmarkMatMulQ8 vs BenchmarkMatMulBlockedFP32 compares the int8 kernel
// against the fp32 cache-blocked kernel on the packed-batch shape the serving
// path feeds them (tall activations against square weights).
func benchmarkQ8(b *testing.B, m, in, out int) {
	x := randomMatrix(m, in, 1, 1)
	w := randomMatrix(in, out, 2, 1)
	q := QuantizeInt8(w, QInt8Block)
	ws := NewWorkspace()
	dst := New(m, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		MatMulQ8(dst, x, q, ws)
	}
}

func benchmarkFP32(b *testing.B, m, in, out int) {
	x := randomMatrix(m, in, 1, 1)
	w := randomMatrix(in, out, 2, 1)
	dst := New(m, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulBlocked(dst, x, w)
	}
}

func BenchmarkMatMulQ8Tall(b *testing.B)   { benchmarkQ8(b, 512, 128, 128) }
func BenchmarkMatMulFP32Tall(b *testing.B) { benchmarkFP32(b, 512, 128, 128) }
func BenchmarkMatMulQ8Row(b *testing.B)    { benchmarkQ8(b, 1, 96, 96) }
func BenchmarkMatMulFP32Row(b *testing.B)  { benchmarkFP32(b, 1, 96, 96) }

func BenchmarkMatMulQ8Small(b *testing.B)   { benchmarkQ8(b, 384, 40, 40) }
func BenchmarkMatMulFP32Small(b *testing.B) { benchmarkFP32(b, 384, 40, 40) }
func BenchmarkMatMulQ8Mid(b *testing.B)     { benchmarkQ8(b, 256, 96, 192) }
func BenchmarkMatMulFP32Mid(b *testing.B)   { benchmarkFP32(b, 256, 96, 192) }

func BenchmarkMatMulQ8Bert(b *testing.B)     { benchmarkQ8(b, 384, 48, 96) }
func BenchmarkMatMulFP32Bert(b *testing.B)   { benchmarkFP32(b, 384, 48, 96) }
func BenchmarkMatMulQ8Bert64(b *testing.B)   { benchmarkQ8(b, 384, 64, 128) }
func BenchmarkMatMulFP32Bert64(b *testing.B) { benchmarkFP32(b, 384, 64, 128) }
