package tensor

import "math"

// RNG is a deterministic SplitMix64 pseudo-random generator. Every stochastic
// component in the repository (data generation, weight init, dropout,
// sampling) draws from an explicitly seeded RNG so that experiments are
// bit-reproducible across runs and platforms.
//
// RNG is not safe for concurrent use; derive per-goroutine streams with
// Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent stream from r, advancing r once.
func (r *RNG) Split() *RNG { return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// NormFloat64 returns a standard-normal sample via Box–Muller.
func (r *RNG) NormFloat64() float64 {
	// Reject u1 == 0 to keep Log finite.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n) via Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes idx in place via Fisher–Yates.
func (r *RNG) Shuffle(idx []int) {
	for i := len(idx) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
}

// LogNormal returns a sample from a log-normal distribution with the given
// log-space mean and standard deviation.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Gaussian fills m with N(0, std²) samples.
func Gaussian(m *Matrix, std float64, rng *RNG) {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// XavierInit fills m with Xavier/Glorot-uniform samples appropriate for a
// fanIn×fanOut weight matrix.
func XavierInit(m *Matrix, fanIn, fanOut int, rng *RNG) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = float32((rng.Float64()*2 - 1) * limit)
	}
}
