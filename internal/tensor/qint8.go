package tensor

import (
	"fmt"
	"math"
)

// Int8 quantized weights and the integer matmul kernel.
//
// QInt8Matrix stores a weight matrix W [In, Out] (the y = x·W orientation of
// every linear layer) in blockwise symmetric int8: along the reduction
// dimension In, each run of Block values of one output channel shares a
// float32 scale, and codes are round(w/scale) clamped to [-127, 127]. That is
// the llama.cpp/BitsAndBytes-style storage; serialized it is ~4× smaller than
// fp32 (1 byte per weight plus one float32 per block).
//
// MatMulQ8 computes y = x·W without ever dequantizing W to float: activations
// are quantized per row on the fly (dynamic symmetric int8, one scale per
// row), the dot products run in integer arithmetic, and only the final
// per-block partial sums are scaled back to float32 — the W8A8 dynamic scheme.
//
// The compute layout is the interesting part. Pure Go has no SIMD, and a
// scalar 32-bit integer multiply is no faster than a scalar float32 multiply
// (on current x86 it is slower: IMUL issues on one port, MULSS on two). The
// kernel instead packs THREE output channels into one uint64 — their
// offset-encoded unsigned codes sit at bit offsets 0, 20, and 40 — so a
// single 64-bit multiply by an activation byte produces three 16-bit products
// that accumulate in parallel inside one register:
//
//	acc += uint64(xu[k]) * packed[k]   // 3 MACs per multiply
//
// Field capacity bounds the run length: each 20-bit lane holds at most
// 255·255·16 < 2²⁰, so lanes are drained into int32 accumulators every 16
// steps (qFlush). Signedness is handled by offset encoding — codes are stored
// as code+128 ∈ [1, 255], activations as code+128 likewise — and corrected
// exactly afterwards:
//
//	Σ x·w = Σ xu·wu − 128·Σxu − 128·Σwu + 16384·n
//
// where Σwu per (channel, block) is precomputed at quantization time
// (BlockAdj) and Σxu per (row, block) falls out of activation quantization.
// All arithmetic is integer until the per-block scale multiply, so results
// are exactly reproducible regardless of row partitioning across goroutines.

// QInt8Block is the default scale-block length along the reduction dimension.
// 64 keeps the worst-case quantization range per scale tight (the accuracy
// knob) while amortizing the per-block correction to ~2 ops per 64 MACs.
const QInt8Block = 64

const (
	// qLaneShift is the bit spacing of the three packed output channels.
	qLaneShift = 20
	qLaneMask  = 1<<qLaneShift - 1
	// qFlush is how many packed multiply-accumulates fit before a 20-bit
	// lane could overflow (255·255·16 = 1040400 < 2²⁰ = 1048576).
	qFlush = 16
)

// QInt8Matrix is a weight matrix held in blockwise symmetric int8 form,
// pre-packed for the three-channel SWAR kernel. Construct with QuantizeInt8
// (from fp32 weights) or NewQInt8FromCodes (from serialized codes); treat as
// read-only afterwards — one matrix can serve concurrent MatMulQ8 calls.
type QInt8Matrix struct {
	// In, Out are the logical fp32 shape [In, Out] of the weight matrix.
	In, Out int
	// Block is the scale-block length along In.
	Block int
	// Packed holds offset-encoded codes (code+128), three output channels
	// per word: channel 3t+f of the weight's column j lives in bits
	// [20f, 20f+8) of Packed[t·In+k]. Lanes of channels beyond Out are zero.
	Packed []uint64
	// Scales holds the per-(channel, block) quantization scales, indexed
	// [j·nBlocks + b].
	Scales []float32
	// BlockAdj holds 128·Σ(code+128) per (channel, block) — the precomputed
	// weight half of the offset correction, same indexing as Scales.
	BlockAdj []int32
}

// Blocks returns the number of scale blocks along the reduction dimension.
func (q *QInt8Matrix) Blocks() int { return (q.In + q.Block - 1) / q.Block }

func (q *QInt8Matrix) triples() int { return (q.Out + 2) / 3 }

// MemoryBytes reports the resident footprint of the packed compute form
// (the three-channel packing spends 8 bytes per 3 weights, ~1.5× under fp32;
// the serialized form — Codes plus Scales — is the ~4× smaller one).
func (q *QInt8Matrix) MemoryBytes() int {
	return 8*len(q.Packed) + 4*len(q.Scales) + 4*len(q.BlockAdj)
}

// CodesBytes reports the serialized footprint: one byte per weight plus the
// per-block scales.
func (q *QInt8Matrix) CodesBytes() int { return q.In*q.Out + 4*len(q.Scales) }

// Float32Bytes reports the footprint of the unquantized form.
func (q *QInt8Matrix) Float32Bytes() int { return 4 * q.In * q.Out }

// String summarizes the quantized matrix.
func (q *QInt8Matrix) String() string {
	return fmt.Sprintf("QInt8Matrix(%dx%d, block=%d, %dB packed vs %dB fp32)",
		q.In, q.Out, q.Block, q.MemoryBytes(), q.Float32Bytes())
}

// roundToInt32 rounds half away from zero, matching the reference rounding of
// both weight and activation quantization. Branchless: int32() truncates
// toward zero, so adding a sign-matched 0.5 implements half-away without the
// data-dependent branch that mispredicts on every random-signed activation.
func roundToInt32(f float32) int32 {
	half := math.Float32frombits(0x3F000000 | math.Float32bits(f)&0x80000000)
	return int32(f + half)
}

// QuantizeInt8 converts w [In, Out] to blockwise symmetric int8 form with the
// given scale-block length (≤ 0 selects QInt8Block). An all-zero block gets
// scale 0 and all-zero codes, which dequantizes and computes exactly to zero.
func QuantizeInt8(w *Matrix, block int) *QInt8Matrix {
	if block <= 0 {
		block = QInt8Block
	}
	in, out := w.Rows, w.Cols
	nb := (in + block - 1) / block
	q := &QInt8Matrix{
		In: in, Out: out, Block: block,
		Packed:   make([]uint64, ((out+2)/3)*in),
		Scales:   make([]float32, out*nb),
		BlockAdj: make([]int32, out*nb),
	}
	for j := 0; j < out; j++ {
		prow := q.Packed[(j/3)*in : (j/3+1)*in]
		shift := uint(j%3) * qLaneShift
		for b := 0; b < nb; b++ {
			lo, hi := b*block, min(b*block+block, in)
			var absmax float32
			for k := lo; k < hi; k++ {
				v := w.Data[k*out+j]
				if v < 0 {
					v = -v
				}
				if v > absmax {
					absmax = v
				}
			}
			var scale, inv float32
			if absmax > 0 {
				scale = absmax / 127
				inv = 127 / absmax
			}
			var usum int32
			for k := lo; k < hi; k++ {
				c := roundToInt32(w.Data[k*out+j] * inv)
				if c > 127 {
					c = 127
				} else if c < -127 {
					c = -127
				}
				u := c + 128
				prow[k] |= uint64(u) << shift
				usum += u
			}
			q.Scales[j*nb+b] = scale
			q.BlockAdj[j*nb+b] = 128 * usum
		}
	}
	return q
}

// Codes returns the raw int8 codes in output-channel-major order
// ([Out][In]; channel j's codes are Codes()[j·In:(j+1)·In]) — the
// serialization layout, unpacked from the compute form.
func (q *QInt8Matrix) Codes() []int8 {
	out := make([]int8, q.Out*q.In)
	for j := 0; j < q.Out; j++ {
		prow := q.Packed[(j/3)*q.In : (j/3+1)*q.In]
		shift := uint(j%3) * qLaneShift
		for k, p := range prow {
			out[j*q.In+k] = int8(int32((p>>shift)&0xFF) - 128)
		}
	}
	return out
}

// NewQInt8FromCodes rebuilds the packed compute form from serialized codes
// (output-channel-major, as returned by Codes) and per-(channel, block)
// scales. Lengths must match the shape exactly.
func NewQInt8FromCodes(in, out, block int, codes []int8, scales []float32) (*QInt8Matrix, error) {
	if in <= 0 || out <= 0 || block <= 0 {
		return nil, fmt.Errorf("tensor: qint8 shape %dx%d block %d is invalid", in, out, block)
	}
	nb := (in + block - 1) / block
	if len(codes) != in*out {
		return nil, fmt.Errorf("tensor: qint8 has %d codes, shape %dx%d needs %d", len(codes), in, out, in*out)
	}
	if len(scales) != out*nb {
		return nil, fmt.Errorf("tensor: qint8 has %d scales, shape %dx%d block %d needs %d", len(scales), in, out, block, out*nb)
	}
	q := &QInt8Matrix{
		In: in, Out: out, Block: block,
		Packed:   make([]uint64, ((out+2)/3)*in),
		Scales:   append([]float32(nil), scales...),
		BlockAdj: make([]int32, out*nb),
	}
	for j := 0; j < out; j++ {
		prow := q.Packed[(j/3)*in : (j/3+1)*in]
		shift := uint(j%3) * qLaneShift
		crow := codes[j*in : (j+1)*in]
		for b := 0; b < nb; b++ {
			lo, hi := b*block, min(b*block+block, in)
			var usum int32
			for k := lo; k < hi; k++ {
				if crow[k] == -128 {
					return nil, fmt.Errorf("tensor: qint8 code -128 at channel %d, row %d (corrupt stream?)", j, k)
				}
				u := int32(crow[k]) + 128
				prow[k] |= uint64(u) << shift
				usum += u
			}
			q.BlockAdj[j*nb+b] = 128 * usum
		}
	}
	return q, nil
}

// Dequantize reconstructs the fp32 weight matrix [In, Out] from the codes and
// scales (the reference the parity tests compare against).
func (q *QInt8Matrix) Dequantize() *Matrix {
	w := New(q.In, q.Out)
	nb := q.Blocks()
	for j := 0; j < q.Out; j++ {
		prow := q.Packed[(j/3)*q.In : (j/3+1)*q.In]
		shift := uint(j%3) * qLaneShift
		for k, p := range prow {
			code := int32((p>>shift)&0xFF) - 128
			w.Data[k*q.Out+j] = float32(code) * q.Scales[j*nb+k/q.Block]
		}
	}
	return w
}

// MatMulQ8 computes x·W for int8-quantized W into dst (allocated if nil),
// quantizing each activation row on the fly and accumulating in integers.
// Scratch (quantized activations, row scales, per-row block corrections) is
// drawn from ws; a nil workspace allocates. Row fan-out follows the same
// GOMAXPROCS schedule as the fp32 kernels, and integer accumulation makes the
// result independent of the partitioning.
func MatMulQ8(dst, x *Matrix, w *QInt8Matrix, ws *Workspace) *Matrix {
	if x.Cols != w.In {
		panic(fmt.Sprintf("tensor: matmulQ8 shape mismatch %dx%d × %dx%d", x.Rows, x.Cols, w.In, w.Out))
	}
	if dst == nil {
		dst = New(x.Rows, w.Out)
	} else if dst.Rows != x.Rows || dst.Cols != w.Out {
		panic(fmt.Sprintf("tensor: matmulQ8 dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, x.Rows, w.Out))
	}
	n := x.Rows
	if n == 0 {
		return dst
	}
	nb := w.Blocks()
	xu := ws.GetBytes(n * w.In)
	sx := ws.Get(1, n)
	adj := ws.GetInts(n * nb)
	if !parallelWorth(n, w.In*w.Out) {
		matMulQ8Rows(dst, x, w, xu, sx.Data, adj, 0, n)
		return dst
	}
	//lint:ignore hotalloc one fan-out closure per matmul, amortized over the whole parallel row sweep
	parallelRows(n, w.In*w.Out, func(lo, hi int) {
		matMulQ8Rows(dst, x, w, xu, sx.Data, adj, lo, hi)
	})
	return dst
}

// QuantizedRows is a batch of activation rows quantized once for reuse
// against several weight matrices that share In and Block — the attention
// layer quantizes its input a single time and runs the Q, K, and V
// projections from the same codes. Buffers are workspace-backed: a value is
// valid until its workspace's next Reset.
type QuantizedRows struct {
	Rows, In, Block int
	xu              []byte
	sx              []float32
	adj             []int
}

// QuantizeRowsQ8 quantizes every row of x (dynamic symmetric, per-row scale)
// against the given scale-block length (≤ 0 selects QInt8Block), drawing
// buffers from ws (nil allocates).
func QuantizeRowsQ8(x *Matrix, block int, ws *Workspace) QuantizedRows {
	if block <= 0 {
		block = QInt8Block
	}
	n, in := x.Rows, x.Cols
	nb := (in + block - 1) / block
	qa := QuantizedRows{
		Rows: n, In: in, Block: block,
		xu:  ws.GetBytes(n * in),
		sx:  ws.Get(1, n).Data,
		adj: ws.GetInts(n * nb),
	}
	for i := 0; i < n; i++ {
		qa.sx[i] = quantizeRowQ8(x.Data[i*in:(i+1)*in], qa.xu[i*in:(i+1)*in], qa.adj[i*nb:(i+1)*nb], block)
	}
	return qa
}

// MatMulQ8Pre is MatMulQ8 over pre-quantized activations: qa must have been
// built with the same In and Block as w (the per-block correction layout
// depends on both). Results are bitwise identical to MatMulQ8 on the
// original rows.
func MatMulQ8Pre(dst *Matrix, qa QuantizedRows, w *QInt8Matrix) *Matrix {
	if qa.In != w.In || qa.Block != w.Block {
		panic(fmt.Sprintf("tensor: matmulQ8 prequantized rows are %d-wide block %d, weights want %d-wide block %d",
			qa.In, qa.Block, w.In, w.Block))
	}
	if dst == nil {
		dst = New(qa.Rows, w.Out)
	} else if dst.Rows != qa.Rows || dst.Cols != w.Out {
		panic(fmt.Sprintf("tensor: matmulQ8 dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, qa.Rows, w.Out))
	}
	n := qa.Rows
	// Branch before constructing the parallel closure: a func literal
	// referenced by parallelRows is forced onto the heap, and the serial
	// fast path must stay allocation-free.
	if !parallelWorth(n, qa.In*w.Out) {
		matMulQ8PreRows(dst, qa, w, 0, n)
		return dst
	}
	parallelRows(n, qa.In*w.Out, func(lo, hi int) {
		matMulQ8PreRows(dst, qa, w, lo, hi)
	})
	return dst
}

func matMulQ8PreRows(dst *Matrix, qa QuantizedRows, w *QInt8Matrix, lo, hi int) {
	in, nb := qa.In, w.Blocks()
	for i := lo; i < hi; i++ {
		matMulQ8Row(dst.Data[i*w.Out:(i+1)*w.Out], qa.xu[i*in:(i+1)*in], qa.adj[i*nb:(i+1)*nb], qa.sx[i], w)
	}
}

func matMulQ8Rows(dst, x *Matrix, w *QInt8Matrix, xu []byte, sx []float32, adj []int, lo, hi int) {
	in := w.In
	nb := w.Blocks()
	for i := lo; i < hi; i++ {
		xrow := x.Data[i*in : (i+1)*in]
		urow := xu[i*in : (i+1)*in]
		radj := adj[i*nb : (i+1)*nb]
		sx[i] = quantizeRowQ8(xrow, urow, radj, w.Block)
		matMulQ8Row(dst.Data[i*w.Out:(i+1)*w.Out], urow, radj, sx[i], w)
	}
}

// quantizeRowQ8 performs dynamic symmetric per-row activation quantization:
// xrow is encoded into offset codes (code+128) in urow, the per-scale-block
// offset-correction terms land in radj, and the row's dequantization scale is
// returned.
func quantizeRowQ8(xrow []float32, urow []byte, radj []int, block int) float32 {
	in := len(xrow)
	var absmax float32
	for _, v := range xrow {
		// Branchless |v|: clear the sign bit rather than compare-and-negate.
		v = math.Float32frombits(math.Float32bits(v) &^ 0x80000000)
		if v > absmax {
			absmax = v
		}
	}
	var inv, scale float32
	if absmax > 0 {
		inv = 127 / absmax
		scale = absmax / 127
	}
	for b := range radj {
		klo, khi := b*block, min(b*block+block, in)
		usum := 0
		for k := klo; k < khi; k++ {
			u := roundToInt32(xrow[k]*inv) + 128
			urow[k] = byte(u)
			usum += int(u)
		}
		radj[b] = usum*128 - 16384*(khi-klo)
	}
	return scale
}

// matMulQ8Row computes one output row of x·W from a quantized activation row.
func matMulQ8Row(drow []float32, urow []byte, radj []int, sxi float32, w *QInt8Matrix) {
	in, out, block := w.In, w.Out, w.Block
	nb := w.Blocks()
	nt := w.triples()
	// Integer dots against the packed channel triples. Full triples run in
	// pairs — six output channels per k-pass — so each activation byte
	// load and each loop iteration feeds two packed multiplies (the two
	// accumulator chains also pipeline the 3-cycle multiply latency).
	pairs := out / 6
	for p := 0; p < pairs; p++ {
		t := 2 * p
		p0 := w.Packed[t*in : (t+1)*in]
		p1 := w.Packed[(t+1)*in : (t+2)*in]
		j0 := t * 3
		var f0, f1, f2, f3, f4, f5 float32
		for b := 0; b < nb; b++ {
			klo, khi := b*block, min(b*block+block, in)
			var s0, s1, s2, s3, s4, s5 int32
			for kk := klo; kk < khi; kk += qFlush {
				var a0, a1 uint64
				if kk+qFlush <= khi {
					ur := urow[kk : kk+qFlush : kk+qFlush]
					q0 := p0[kk : kk+qFlush : kk+qFlush]
					q1 := p1[kk : kk+qFlush : kk+qFlush]
					u0, u1, u2, u3 := uint64(ur[0]), uint64(ur[1]), uint64(ur[2]), uint64(ur[3])
					u4, u5, u6, u7 := uint64(ur[4]), uint64(ur[5]), uint64(ur[6]), uint64(ur[7])
					u8, u9, u10, u11 := uint64(ur[8]), uint64(ur[9]), uint64(ur[10]), uint64(ur[11])
					u12, u13, u14, u15 := uint64(ur[12]), uint64(ur[13]), uint64(ur[14]), uint64(ur[15])
					a0 = u0*q0[0] + u1*q0[1] + u2*q0[2] + u3*q0[3] +
						u4*q0[4] + u5*q0[5] + u6*q0[6] + u7*q0[7] +
						u8*q0[8] + u9*q0[9] + u10*q0[10] + u11*q0[11] +
						u12*q0[12] + u13*q0[13] + u14*q0[14] + u15*q0[15]
					a1 = u0*q1[0] + u1*q1[1] + u2*q1[2] + u3*q1[3] +
						u4*q1[4] + u5*q1[5] + u6*q1[6] + u7*q1[7] +
						u8*q1[8] + u9*q1[9] + u10*q1[10] + u11*q1[11] +
						u12*q1[12] + u13*q1[13] + u14*q1[14] + u15*q1[15]
				} else {
					ur := urow[kk:khi]
					q0 := p0[kk:khi]
					q1 := p1[kk:khi]
					for k2, uv := range ur {
						u := uint64(uv)
						a0 += u * q0[k2]
						a1 += u * q1[k2]
					}
				}
				s0 += int32(a0 & qLaneMask)
				s1 += int32((a0 >> qLaneShift) & qLaneMask)
				s2 += int32((a0 >> (2 * qLaneShift)) & qLaneMask)
				s3 += int32(a1 & qLaneMask)
				s4 += int32((a1 >> qLaneShift) & qLaneMask)
				s5 += int32((a1 >> (2 * qLaneShift)) & qLaneMask)
			}
			a := int32(radj[b])
			f0 += float32(s0-w.BlockAdj[j0*nb+b]-a) * w.Scales[j0*nb+b]
			f1 += float32(s1-w.BlockAdj[(j0+1)*nb+b]-a) * w.Scales[(j0+1)*nb+b]
			f2 += float32(s2-w.BlockAdj[(j0+2)*nb+b]-a) * w.Scales[(j0+2)*nb+b]
			f3 += float32(s3-w.BlockAdj[(j0+3)*nb+b]-a) * w.Scales[(j0+3)*nb+b]
			f4 += float32(s4-w.BlockAdj[(j0+4)*nb+b]-a) * w.Scales[(j0+4)*nb+b]
			f5 += float32(s5-w.BlockAdj[(j0+5)*nb+b]-a) * w.Scales[(j0+5)*nb+b]
		}
		drow[j0] = f0 * sxi
		drow[j0+1] = f1 * sxi
		drow[j0+2] = f2 * sxi
		drow[j0+3] = f3 * sxi
		drow[j0+4] = f4 * sxi
		drow[j0+5] = f5 * sxi
	}
	// Remaining triples (including the Out % 3 remainder channels).
	for t := 2 * pairs; t < nt; t++ {
		prow := w.Packed[t*in : (t+1)*in]
		j0 := t * 3
		var f0, f1, f2 float32
		for b := 0; b < nb; b++ {
			klo, khi := b*block, min(b*block+block, in)
			var s0, s1, s2 int32
			for kk := klo; kk < khi; kk += qFlush {
				var acc uint64
				if kk+qFlush <= khi {
					ur := urow[kk : kk+qFlush : kk+qFlush]
					pr := prow[kk : kk+qFlush : kk+qFlush]
					acc = uint64(ur[0])*pr[0] + uint64(ur[1])*pr[1] +
						uint64(ur[2])*pr[2] + uint64(ur[3])*pr[3] +
						uint64(ur[4])*pr[4] + uint64(ur[5])*pr[5] +
						uint64(ur[6])*pr[6] + uint64(ur[7])*pr[7] +
						uint64(ur[8])*pr[8] + uint64(ur[9])*pr[9] +
						uint64(ur[10])*pr[10] + uint64(ur[11])*pr[11] +
						uint64(ur[12])*pr[12] + uint64(ur[13])*pr[13] +
						uint64(ur[14])*pr[14] + uint64(ur[15])*pr[15]
				} else {
					ur := urow[kk:khi]
					pr := prow[kk:khi]
					for k2, uv := range ur {
						acc += uint64(uv) * pr[k2]
					}
				}
				s0 += int32(acc & qLaneMask)
				s1 += int32((acc >> qLaneShift) & qLaneMask)
				s2 += int32((acc >> (2 * qLaneShift)) & qLaneMask)
			}
			a := int32(radj[b])
			f0 += float32(s0-w.BlockAdj[j0*nb+b]-a) * w.Scales[j0*nb+b]
			if j0+1 < out {
				f1 += float32(s1-w.BlockAdj[(j0+1)*nb+b]-a) * w.Scales[(j0+1)*nb+b]
			}
			if j0+2 < out {
				f2 += float32(s2-w.BlockAdj[(j0+2)*nb+b]-a) * w.Scales[(j0+2)*nb+b]
			}
		}
		drow[j0] = f0 * sxi
		if j0+1 < out {
			drow[j0+1] = f1 * sxi
		}
		if j0+2 < out {
			drow[j0+2] = f2 * sxi
		}
	}
}
